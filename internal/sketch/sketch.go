// Package sketch implements the Trajectory Activity Sketch (TAS), GAT
// component (iii). A sketch summarizes the set of activity IDs a trajectory
// contains as M compact intervals over the frequency-ranked ID space. The
// partition is optimal for the paper's objective (minimum total interval
// size): split at the M−1 largest gaps between consecutive IDs. A sketch
// admits false positives (an ID inside an interval need not be present) but
// never false dismissals, so it is a safe pre-filter before fetching the
// Activity Posting List from disk.
package sketch

import (
	"sort"

	"activitytraj/internal/trajectory"
)

// Interval is a closed ID range [Lo, Hi].
type Interval struct {
	Lo, Hi trajectory.ActivityID
}

// Sketch is an ordered, non-overlapping list of intervals. The zero value
// is the sketch of the empty activity set (it covers nothing).
type Sketch []Interval

// Build returns the optimal M-interval sketch of the given activity ID set.
// ids need not be sorted; m must be >= 1. When the trajectory has at most m
// distinct IDs the sketch is exact (one degenerate interval per ID).
func Build(ids trajectory.ActivitySet, m int) Sketch {
	if m < 1 {
		m = 1
	}
	if len(ids) == 0 {
		return nil
	}
	sorted := ids.Clone()
	sorted.Normalize()
	if len(sorted) <= m {
		out := make(Sketch, len(sorted))
		for i, id := range sorted {
			out[i] = Interval{Lo: id, Hi: id}
		}
		return out
	}
	// Choose the m-1 largest gaps between consecutive IDs as split points.
	// Relocating any chosen split to a smaller gap increases the summed
	// interval size, so this greedy choice is the optimal partition.
	type gap struct {
		pos  int // split before sorted[pos]
		size uint32
	}
	gaps := make([]gap, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		gaps = append(gaps, gap{pos: i, size: uint32(sorted[i] - sorted[i-1])})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].size != gaps[j].size {
			return gaps[i].size > gaps[j].size
		}
		return gaps[i].pos < gaps[j].pos // deterministic tie-break
	})
	splits := make([]int, 0, m-1)
	for _, g := range gaps[:m-1] {
		splits = append(splits, g.pos)
	}
	sort.Ints(splits)

	out := make(Sketch, 0, m)
	start := 0
	for _, s := range splits {
		out = append(out, Interval{Lo: sorted[start], Hi: sorted[s-1]})
		start = s
	}
	out = append(out, Interval{Lo: sorted[start], Hi: sorted[len(sorted)-1]})
	return out
}

// Covers reports whether id falls inside one of the sketch's intervals.
func (s Sketch) Covers(id trajectory.ActivityID) bool {
	// Intervals are sorted; binary-search the first interval with Hi >= id.
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid].Hi < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo].Lo <= id
}

// CoversAll reports whether every id is covered — the candidate-validation
// check of Section V-C ("∀α ∈ Q.Φ, α.ID ∈ TAS(Tr)").
func (s Sketch) CoversAll(ids trajectory.ActivitySet) bool {
	for _, id := range ids {
		if !s.Covers(id) {
			return false
		}
	}
	return true
}

// Size returns the summed interval size Σ|Ia| (the minimized objective).
func (s Sketch) Size() uint64 {
	var n uint64
	for _, iv := range s {
		n += uint64(iv.Hi - iv.Lo)
	}
	return n
}

// MemBytes returns the footprint of the sketch: the paper charges 8 bytes
// per interval (two integers).
func (s Sketch) MemBytes() int64 { return int64(len(s)) * 8 }

package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"activitytraj/internal/trajectory"
)

func TestBuildExactWhenSmall(t *testing.T) {
	s := Build(trajectory.NewActivitySet(4, 9, 30), 4)
	if len(s) != 3 {
		t.Fatalf("sketch = %v, want 3 degenerate intervals", s)
	}
	for _, iv := range s {
		if iv.Lo != iv.Hi {
			t.Fatalf("interval %v not degenerate", iv)
		}
	}
	if !s.Covers(9) || s.Covers(10) {
		t.Fatal("exact sketch must not admit false positives")
	}
}

func TestBuildSplitsLargestGaps(t *testing.T) {
	// IDs 1,2,3, 100,101, 900 with M=3 → splits at the two largest gaps
	// (3→100 and 101→900): intervals [1,3][100,101][900,900].
	s := Build(trajectory.NewActivitySet(1, 2, 3, 100, 101, 900), 3)
	want := Sketch{{1, 3}, {100, 101}, {900, 900}}
	if len(s) != len(want) {
		t.Fatalf("sketch = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sketch = %v, want %v", s, want)
		}
	}
	if s.Size() != 2+1+0 {
		t.Fatalf("size = %d, want 3", s.Size())
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if s := Build(nil, 4); s != nil {
		t.Fatalf("empty set sketch = %v", s)
	}
	var empty Sketch
	if empty.Covers(3) {
		t.Fatal("empty sketch covers nothing")
	}
	if !empty.CoversAll(nil) {
		t.Fatal("empty requirement is vacuously covered")
	}
	if s := Build(trajectory.NewActivitySet(7), 0); len(s) != 1 {
		t.Fatalf("m<1 must clamp to 1, got %v", s)
	}
}

// TestNoFalseDismissals is the sketch's contract: every ID present in the
// input must be covered (false positives allowed, dismissals never).
func TestNoFalseDismissals(t *testing.T) {
	f := func(bs []byte, m8 uint8) bool {
		ids := make([]trajectory.ActivityID, len(bs))
		for i, b := range bs {
			ids[i] = trajectory.ActivityID(b) * 17 % 1024
		}
		set := trajectory.NewActivitySet(ids...)
		m := int(m8%8) + 1
		s := Build(set, m)
		if len(set) > 0 && len(s) > m {
			return false // must respect the interval budget
		}
		return s.CoversAll(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalPartition: the greedy largest-gap split minimizes the summed
// interval size; verify against brute force over all split choices.
func TestOptimalPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		ids := make([]trajectory.ActivityID, n)
		for i := range ids {
			ids[i] = trajectory.ActivityID(rng.Intn(500))
		}
		set := trajectory.NewActivitySet(ids...)
		if len(set) < 2 {
			continue
		}
		m := 1 + rng.Intn(4)
		got := Build(set, m).Size()
		best := bruteBestPartition(set, m)
		if got != best {
			t.Fatalf("set %v m=%d: greedy %d, brute %d", set, m, got, best)
		}
	}
}

// bruteBestPartition enumerates all ways to cut the sorted IDs into at most
// m runs and returns the minimal summed interval size.
func bruteBestPartition(sorted trajectory.ActivitySet, m int) uint64 {
	n := len(sorted)
	if n <= m {
		return 0
	}
	// Choose m-1 split positions among n-1 gaps.
	best := ^uint64(0)
	var rec func(start, splitsLeft int, acc uint64)
	rec = func(start, splitsLeft int, acc uint64) {
		if splitsLeft == 0 {
			total := acc + uint64(sorted[n-1]-sorted[start])
			if total < best {
				best = total
			}
			return
		}
		for cut := start + 1; cut <= n-splitsLeft; cut++ {
			rec(cut, splitsLeft-1, acc+uint64(sorted[cut-1]-sorted[start]))
		}
	}
	rec(0, m-1, 0)
	return best
}

func TestMemBytes(t *testing.T) {
	s := Build(trajectory.NewActivitySet(1, 50, 900, 1000), 2)
	if s.MemBytes() != 16 {
		t.Fatalf("2 intervals must cost 16 bytes, got %d", s.MemBytes())
	}
}

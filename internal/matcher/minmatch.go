package matcher

// QueryRow is one query point's view of a candidate trajectory: the indexes
// (ascending trajectory positions), distances and coverage masks of the
// points that carry at least one of the query point's activities. NumActs
// is |q.Φ| for that query point. Rows are built either from Activity
// Posting Lists (GAT, IL) or by scanning trajectory points (RT, IRT); see
// rows.go.
type QueryRow struct {
	NumActs int
	Idx     []int32
	Dist    []float64
	Mask    []uint32
}

// Empty reports whether the row has no relevant points (no point match can
// exist for this query point).
func (r QueryRow) Empty() bool { return len(r.Idx) == 0 }

// MinMatch computes Dmm(Q, Tr), the minimum match distance of Definition 6.
// By Lemma 1 it is the sum of per-query-point minimum point match distances.
// The computation abandons early and returns Inf once the partial sum
// exceeds threshold (pass Inf to disable): such a candidate can never enter
// the current top-k, which is the same pruning every engine applies.
func (m *Matcher) MinMatch(rows []QueryRow, threshold float64) float64 {
	var sum float64
	for _, row := range rows {
		if row.Empty() && row.NumActs > 0 {
			return Inf
		}
		m.wpts = m.wpts[:0]
		for i := range row.Idx {
			m.wpts = append(m.wpts, WeightedPoint{Dist: row.Dist[i], Mask: row.Mask[i]})
		}
		d := m.MinPointMatch(row.NumActs, m.wpts)
		if d == Inf {
			return Inf
		}
		sum += d
		if sum > threshold {
			return Inf
		}
	}
	return sum
}

// BruteMinMatch is the exhaustive reference for MinMatch (test-only).
func BruteMinMatch(rows []QueryRow) float64 {
	var sum float64
	for _, row := range rows {
		pts := make([]WeightedPoint, len(row.Idx))
		for i := range row.Idx {
			pts[i] = WeightedPoint{Dist: row.Dist[i], Mask: row.Mask[i]}
		}
		d := BruteMinPointMatch(row.NumActs, pts)
		if d == Inf {
			return Inf
		}
		sum += d
	}
	return sum
}

package matcher

import (
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// BuildRowsFromPoints builds the per-query-point candidate rows for a
// trajectory whose points are fully in memory — the path used by the R-tree
// and IR-tree baselines, which fetch whole trajectories.
func BuildRowsFromPoints(qpts []query.Point, pts []trajectory.Point) []QueryRow {
	rows := make([]QueryRow, len(qpts))
	for qi, qp := range qpts {
		row := QueryRow{NumActs: len(qp.Acts)}
		for pi, p := range pts {
			mask := p.Acts.MaskAgainst(qp.Acts)
			if mask == 0 {
				continue
			}
			row.Idx = append(row.Idx, int32(pi))
			row.Dist = append(row.Dist, geo.Dist(qp.Loc, p.Loc))
			row.Mask = append(row.Mask, mask)
		}
		rows[qi] = row
	}
	return rows
}

// RowBuilder builds candidate rows from posting lists into reusable scratch,
// so the per-candidate hot path of a search allocates nothing once warm.
// The returned rows alias the builder and are valid until the next Build.
type RowBuilder struct {
	rows  []QueryRow
	lists [][]uint32
	pos   []int
}

// Build builds candidate rows from Activity Posting Lists — the path used
// by GAT and IL, which read only the relevant point indexes from disk.
// postings returns the ascending point indexes of the trajectory that carry
// activity a (nil when absent); coords are the trajectory's point
// locations. The per-activity lists are k-way-merged directly (they are
// already ascending), so no scatter map and no sort.
func (rb *RowBuilder) Build(
	qpts []query.Point,
	postings func(a trajectory.ActivityID) []uint32,
	coords []geo.Point,
) []QueryRow {
	if cap(rb.rows) < len(qpts) {
		grown := make([]QueryRow, len(qpts))
		copy(grown, rb.rows)
		rb.rows = grown
	}
	rb.rows = rb.rows[:len(qpts)]
	for qi := range qpts {
		qp := &qpts[qi]
		row := &rb.rows[qi]
		row.NumActs = len(qp.Acts)
		row.Idx = row.Idx[:0]
		row.Dist = row.Dist[:0]
		row.Mask = row.Mask[:0]

		rb.lists = rb.lists[:0]
		rb.pos = rb.pos[:0]
		for _, a := range qp.Acts {
			rb.lists = append(rb.lists, postings(a))
			rb.pos = append(rb.pos, 0)
		}
		for {
			// Next unconsumed point index across the activity lists.
			min := uint32(0)
			found := false
			for b, l := range rb.lists {
				if p := rb.pos[b]; p < len(l) && (!found || l[p] < min) {
					min = l[p]
					found = true
				}
			}
			if !found {
				break
			}
			var mask uint32
			for b, l := range rb.lists {
				if p := rb.pos[b]; p < len(l) && l[p] == min {
					mask |= 1 << uint(b)
					rb.pos[b]++
				}
			}
			row.Idx = append(row.Idx, int32(min))
			row.Dist = append(row.Dist, geo.Dist(qp.Loc, coords[min]))
			row.Mask = append(row.Mask, mask)
		}
	}
	return rb.rows
}

package matcher

import (
	"sort"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// BuildRowsFromPoints builds the per-query-point candidate rows for a
// trajectory whose points are fully in memory — the path used by the R-tree
// and IR-tree baselines, which fetch whole trajectories.
func BuildRowsFromPoints(qpts []query.Point, pts []trajectory.Point) []QueryRow {
	rows := make([]QueryRow, len(qpts))
	for qi, qp := range qpts {
		row := QueryRow{NumActs: len(qp.Acts)}
		for pi, p := range pts {
			mask := p.Acts.MaskAgainst(qp.Acts)
			if mask == 0 {
				continue
			}
			row.Idx = append(row.Idx, int32(pi))
			row.Dist = append(row.Dist, geo.Dist(qp.Loc, p.Loc))
			row.Mask = append(row.Mask, mask)
		}
		rows[qi] = row
	}
	return rows
}

// BuildRowsFromPostings builds candidate rows from Activity Posting Lists —
// the path used by GAT and IL, which read only the relevant point indexes
// from disk. postings returns the ascending point indexes of the trajectory
// that carry activity a (nil when absent); coords are the trajectory's point
// locations.
func BuildRowsFromPostings(
	qpts []query.Point,
	postings func(a trajectory.ActivityID) []uint32,
	coords []geo.Point,
) []QueryRow {
	rows := make([]QueryRow, len(qpts))
	for qi, qp := range qpts {
		row := QueryRow{NumActs: len(qp.Acts)}
		masks := make(map[int32]uint32)
		for b, a := range qp.Acts {
			for _, idx := range postings(a) {
				masks[int32(idx)] |= 1 << uint(b)
			}
		}
		if len(masks) > 0 {
			idxs := make([]int32, 0, len(masks))
			for idx := range masks {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			row.Idx = idxs
			row.Dist = make([]float64, len(idxs))
			row.Mask = make([]uint32, len(idxs))
			for i, idx := range idxs {
				row.Dist[i] = geo.Dist(qp.Loc, coords[idx])
				row.Mask[i] = masks[idx]
			}
		}
		rows[qi] = row
	}
	return rows
}

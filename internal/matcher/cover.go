package matcher

import "slices"

// Cover extraction: recompute a match's distance together with WHICH
// trajectory points form it. The search hot path never tracks covers (the
// subset DP of Algorithm 3 keeps costs only); these functions re-derive the
// argmin for the handful of final top-k results when Request.WithMatches is
// set, so they are free to allocate.

// coverState is one subset-DP entry with enough parent information to walk
// an optimal cover back: reaching mask costs cost, by adding point pt (an
// index into the row) to the cover of prev.
type coverState struct {
	cost float64
	prev uint32
	pt   int32
}

// windowCover runs the 0/1 set-cover DP over the row's points in positions
// [lo, hi) of the row (NOT trajectory positions) and returns the minimum
// cost of covering the full activity set plus the covering row positions.
// Each point is relaxed once against a snapshot of the table, so a point
// enters a cover at most once; with non-negative distances that loses
// nothing against the unbounded relaxation the search uses, so the cost
// equals MinPointMatch over the same points. Returns (Inf, nil) when no
// cover exists.
func windowCover(nq int, row *QueryRow, lo, hi int) (float64, []int32) {
	if nq <= 0 {
		return 0, nil
	}
	if nq > maxArrayActs {
		return windowCoverMap(nq, row, lo, hi)
	}
	full := uint32(1)<<uint(nq) - 1
	size := 1 << uint(nq)
	dp := make([]coverState, size)
	for i := 1; i < size; i++ {
		dp[i].cost = Inf
	}
	snap := make([]coverState, size)
	for r := lo; r < hi; r++ {
		mask := row.Mask[r] & full
		if mask == 0 {
			continue
		}
		d := row.Dist[r]
		copy(snap, dp)
		for s := 0; s < size; s++ {
			if snap[s].cost == Inf {
				continue
			}
			t := uint32(s) | mask
			if nv := snap[s].cost + d; nv < dp[t].cost {
				dp[t] = coverState{cost: nv, prev: uint32(s), pt: int32(r)}
			}
		}
	}
	if dp[full].cost == Inf {
		return Inf, nil
	}
	var picked []int32
	for m := full; m != 0; {
		st := dp[m]
		picked = append(picked, st.pt)
		m = st.prev
	}
	slices.Sort(picked)
	return dp[full].cost, slices.Compact(picked)
}

// windowCoverMap is windowCover for very wide query activity sets
// (nq > maxArrayActs), with the dense table replaced by a map.
func windowCoverMap(nq int, row *QueryRow, lo, hi int) (float64, []int32) {
	full := uint32(1)<<uint(nq) - 1
	dp := map[uint32]coverState{0: {}}
	for r := lo; r < hi; r++ {
		mask := row.Mask[r] & full
		if mask == 0 {
			continue
		}
		d := row.Dist[r]
		snap := make(map[uint32]coverState, len(dp))
		for k, v := range dp {
			snap[k] = v
		}
		for s, st := range snap {
			t := s | mask
			if cur, ok := dp[t]; !ok || st.cost+d < cur.cost {
				dp[t] = coverState{cost: st.cost + d, prev: s, pt: int32(r)}
			}
		}
	}
	st, ok := dp[full]
	if !ok {
		return Inf, nil
	}
	var picked []int32
	for m := full; m != 0; {
		s := dp[m]
		picked = append(picked, s.pt)
		m = s.prev
	}
	slices.Sort(picked)
	return st.cost, slices.Compact(picked)
}

// rowIndexes maps row positions back to the trajectory point indexes the
// caller reports.
func rowIndexes(row *QueryRow, positions []int32) []int32 {
	out := make([]int32, len(positions))
	for i, r := range positions {
		out[i] = row.Idx[r]
	}
	return out
}

// MinMatchCover recomputes Dmm together with its covers: for every query
// point, the ascending trajectory point indexes of a minimum point match.
// The summed distance equals MinMatch(rows, Inf); (Inf, nil) when no match
// exists.
func (m *Matcher) MinMatchCover(rows []QueryRow) (float64, [][]int32) {
	covers := make([][]int32, len(rows))
	var sum float64
	for i := range rows {
		row := &rows[i]
		d, picked := windowCover(row.NumActs, row, 0, len(row.Idx))
		if d == Inf {
			return Inf, nil
		}
		sum += d
		covers[i] = rowIndexes(row, picked)
	}
	return sum, covers
}

// MinOrderMatchCover recomputes Dmom together with order-compliant covers:
// covers[i] holds query point i's matched trajectory point indexes, and
// every index of covers[i] is >= the largest index of covers[i-1]'s window
// start, per Definition 7 (consecutive matches may share one boundary
// point). The summed distance over all covers equals MinOrderMatch(n, rows,
// Inf); (Inf, nil) when no order-sensitive match exists. n is the candidate
// trajectory's point count.
func (m *Matcher) MinOrderMatchCover(n int, rows []QueryRow) (float64, [][]int32) {
	if len(rows) == 0 {
		return 0, [][]int32{}
	}
	if n == 0 {
		return Inf, nil
	}
	// Full G matrix of Algorithm 4: g[i][j] is the best cost of matching
	// query points 0..i-1 with every match confined to Tr[0..j] and query
	// point i-1's match ending at or before j.
	g := make([][]float64, len(rows)+1)
	g[0] = make([]float64, n)
	for i, row := range rows {
		cur := make([]float64, n)
		prev := g[i]
		for j := 0; j < n; j++ {
			cur[j] = Inf
		}
		m.fillOrderRow(n, &row, prev, cur)
		g[i+1] = cur
	}
	if g[len(rows)][n-1] == Inf {
		return Inf, nil
	}

	// Backtrack: at level i with window end j, re-derive the window start
	// k = rel[r] minimizing G(i-1,k) + Dmpm(q_i, Tr[k..j]) and extract that
	// window's cover; the previous level's matches end at or before k.
	covers := make([][]int32, len(rows))
	j := n - 1
	const eps = 1e-9
	for i := len(rows) - 1; i >= 0; i-- {
		row := &rows[i]
		if row.NumActs == 0 {
			covers[i] = []int32{}
			continue // vacuous requirement: no points, j unchanged
		}
		hi := upperBound(row.Idx, int32(j))
		target := g[i+1][j]
		found := false
		for r := hi - 1; r >= 0 && !found; r-- {
			k := row.Idx[r]
			if g[i][k] == Inf {
				break // Lemma 4: earlier starts are Inf too
			}
			d, picked := windowCover(row.NumActs, row, r, hi)
			if d == Inf {
				continue
			}
			if v := g[i][k] + d; v <= target+eps {
				covers[i] = rowIndexes(row, picked)
				j = int(k)
				found = true
			}
		}
		if !found {
			// Float noise kept every decomposition above target; fall back
			// to the best decomposition seen (exactness of the returned
			// indexes matters more than the eps).
			best, bestR := Inf, -1
			var bestPick []int32
			for r := hi - 1; r >= 0; r-- {
				k := row.Idx[r]
				if g[i][k] == Inf {
					break
				}
				d, picked := windowCover(row.NumActs, row, r, hi)
				if d == Inf {
					continue
				}
				if v := g[i][k] + d; v < best {
					best, bestR, bestPick = v, r, picked
				}
			}
			if bestR < 0 {
				return Inf, nil
			}
			covers[i] = rowIndexes(row, bestPick)
			j = int(row.Idx[bestR])
		}
	}
	return g[len(rows)][n-1], covers
}

package matcher

import (
	"math"
	"testing"
)

// TestAlgorithm3PaperExample reproduces Table II of the paper: the query
// point has activities {a,b,c,d} and the candidate points below; the
// minimum point match distance is 30, reached after processing p5 and
// confirmed by the early stop at p7 (d=31 > 30).
func TestAlgorithm3PaperExample(t *testing.T) {
	// Bits: a=0, b=1, c=2, d=3.
	pts := []WeightedPoint{
		{Dist: 10, Mask: 0b0001}, // p1 {a}
		{Dist: 11, Mask: 0b0110}, // p2 {b,c}
		{Dist: 13, Mask: 0b0011}, // p3 {a,b}
		{Dist: 15, Mask: 0b1000}, // p4 {d}
		{Dist: 17, Mask: 0b1100}, // p5 {c,d}
		{Dist: 26, Mask: 0b0111}, // p6 {a,b,c}
		{Dist: 31, Mask: 0b1111}, // p7 {a,b,c,d}
	}
	var m Matcher
	got := m.MinPointMatchSorted(4, pts)
	if got != 30 {
		t.Fatalf("Dmpm = %v, want 30 (Table II)", got)
	}
	// Cross-checks with the reference implementations.
	if dp := m.MinPointMatchDP(4, pts); dp != 30 {
		t.Fatalf("DP Dmpm = %v, want 30", dp)
	}
	if bf := BruteMinPointMatch(4, pts); bf != 30 {
		t.Fatalf("brute Dmpm = %v, want 30", bf)
	}
}

// Figure 1's running example: trajectory Tr1 has 5 points with the listed
// activities and per-query-point distances from the distance matrix.
func fig1Tr1Rows() []QueryRow {
	// Query activities: q1 {a,b}, q2 {c,d}, q3 {e}.
	// Tr1 points: p11 {d}, p12 {a,c}, p13 {b}, p14 {c}, p15 {d,e}.
	// Distance matrix rows (q1;q2;q3) × (p11..p15):
	//   q1: 2  8 16 24 32
	//   q2: 14  6  3 11 20
	//   q3: 33 25 17  8  1
	return []QueryRow{
		{ // q1 = {a,b}: relevant p12 (a → bit0), p13 (b → bit1)
			NumActs: 2,
			Idx:     []int32{1, 2},
			Dist:    []float64{8, 16},
			Mask:    []uint32{0b01, 0b10},
		},
		{ // q2 = {c,d}: p11 {d}→bit1, p12 {c}→bit0, p14 {c}→bit0, p15 {d}→bit1
			NumActs: 2,
			Idx:     []int32{0, 1, 3, 4},
			Dist:    []float64{14, 6, 11, 20},
			Mask:    []uint32{0b10, 0b01, 0b01, 0b10},
		},
		{ // q3 = {e}: p15 only
			NumActs: 1,
			Idx:     []int32{4},
			Dist:    []float64{1},
			Mask:    []uint32{0b1},
		},
	}
}

func fig1Tr2Rows() []QueryRow {
	// Tr2 points: p21 {a}, p22 {b,c}, p23 {c,d}, p24 {e}, p25 {f}.
	// Distance matrix rows (q1;q2;q3) × (p21..p25):
	//   q1: 6  8 17 26 31
	//   q2: 14 13  4 13 20
	//   q3: 32 28 16  7  3
	return []QueryRow{
		{NumActs: 2, Idx: []int32{0, 1}, Dist: []float64{6, 8}, Mask: []uint32{0b01, 0b10}},
		{NumActs: 2, Idx: []int32{1, 2}, Dist: []float64{13, 4}, Mask: []uint32{0b01, 0b11}},
		{NumActs: 1, Idx: []int32{3}, Dist: []float64{7}, Mask: []uint32{0b1}},
	}
}

// TestMinMatchFigure1 verifies the paper's claim that Dmm(Q,Tr1)=45 (24 for
// q1 via {p12,p13}, 20 for q2 via {p11,p12}, 1 for q3 via {p15}) and
// Dmm(Q,Tr2)=25, making Tr2 the better match.
func TestMinMatchFigure1(t *testing.T) {
	var m Matcher
	d1 := m.MinMatch(fig1Tr1Rows(), Inf)
	if d1 != 45 {
		t.Fatalf("Dmm(Q,Tr1) = %v, want 45", d1)
	}
	d2 := m.MinMatch(fig1Tr2Rows(), Inf)
	if d2 != 25 {
		t.Fatalf("Dmm(Q,Tr2) = %v, want 25", d2)
	}
	if d2 >= d1 {
		t.Fatalf("expected Tr2 more similar than Tr1 (got %v vs %v)", d2, d1)
	}
}

// TestAlgorithm4PaperExample reproduces Table III: the order-sensitive
// match distance between Q and Tr1 is G(3,5) = 56, with intermediate
// G(1,3)=24 and G(2,5)=55.
func TestAlgorithm4PaperExample(t *testing.T) {
	var m Matcher
	rows := fig1Tr1Rows()
	got := m.MinOrderMatch(5, rows, Inf)
	if got != 56 {
		t.Fatalf("Dmom(Q,Tr1) = %v, want 56 (Table III)", got)
	}
	if naive := m.MinOrderMatchNaive(5, fig1Tr1Rows(), Inf); naive != 56 {
		t.Fatalf("naive Dmom = %v, want 56", naive)
	}
	if bf := BruteMinOrderMatch(5, fig1Tr1Rows()); bf != 56 {
		t.Fatalf("brute Dmom = %v, want 56", bf)
	}

	// Tr2's minimum order-sensitive match equals its minimum match
	// (the paper notes Tr2.MOM(Q) = Tr2.MM(Q) = 25).
	if got := m.MinOrderMatch(5, fig1Tr2Rows(), Inf); got != 25 {
		t.Fatalf("Dmom(Q,Tr2) = %v, want 25", got)
	}
}

// TestLemma3 checks Dmm ≤ Dmom on the running example (the bound the
// order-sensitive search relies on for candidate retrieval).
func TestLemma3(t *testing.T) {
	var m Matcher
	for name, rows := range map[string][]QueryRow{"Tr1": fig1Tr1Rows(), "Tr2": fig1Tr2Rows()} {
		mm := m.MinMatch(rows, Inf)
		mom := m.MinOrderMatch(5, rows, Inf)
		if mm > mom {
			t.Errorf("%s: Dmm %v > Dmom %v violates Lemma 3", name, mm, mom)
		}
	}
}

// TestAlgorithm4Threshold verifies the early-abort path: with a threshold
// below the first row's best value the computation reports Inf.
func TestAlgorithm4Threshold(t *testing.T) {
	var m Matcher
	if got := m.MinOrderMatch(5, fig1Tr1Rows(), 10); !math.IsInf(got, 1) {
		t.Fatalf("thresholded Dmom = %v, want +Inf", got)
	}
	// A threshold just above the true value must not cut off the result.
	if got := m.MinOrderMatch(5, fig1Tr1Rows(), 56); got != 56 {
		t.Fatalf("Dmom with threshold 56 = %v, want 56", got)
	}
}

// Package matcher implements the paper's match-distance algorithms:
//
//   - Dmpm, the minimum point match distance (Algorithm 3): the cheapest set
//     of trajectory points whose activities jointly cover one query point's
//     activity set, weighted by Euclidean distance.
//   - Dmm, the minimum match distance (Lemma 1: the sum of Dmpm over query
//     points).
//   - Dmom, the minimum order-sensitive match distance (Algorithm 4, dynamic
//     programming over sub-query × sub-trajectory prefixes).
//   - The MIB (matching index bound) order filter of Section VI-B.
//
// Exhaustive reference implementations are provided for property testing.
//
// The algorithms operate on bitmasks over a query point's activity list:
// bit b of a point's mask is set when the point offers query activity b.
// This keeps the subset dynamic program allocation-free for the activity
// counts the paper evaluates (|q.Φ| ≤ 5).
package matcher

import "math"

// Inf is the distance reported for candidates with no (order-sensitive)
// match.
var Inf = math.Inf(1)

// WeightedPoint is one candidate trajectory point as seen from a single
// query point: its distance to that query point and the bitmask of query
// activities it covers.
type WeightedPoint struct {
	Dist float64
	Mask uint32
}

// maxArrayActs bounds the activity-count for which the subset table uses a
// dense array (2^16 float64 = 512 KiB of reusable scratch). Queries beyond
// this are rejected by query.Validate long before reaching the matcher.
const maxArrayActs = 16

// Matcher owns the reusable scratch space for the subset dynamic programs.
// A Matcher is not safe for concurrent use; each search goroutine should
// own one. The zero value is ready to use.
type Matcher struct {
	table []float64
	queue []uint32
	gPrev []float64
	gCur  []float64
	wpts  []WeightedPoint
	// Subtrajectory (span) scratch; see span.go.
	spanUnion []int32
	spanRows  []QueryRow
	spanIdx   []int32
	rowSuffix []float64
}

// resetTable returns a subset table of size 1<<nq with every entry +Inf
// and entry 0 (the empty cover) set to 0.
func (m *Matcher) resetTable(nq int) []float64 {
	size := 1 << uint(nq)
	if cap(m.table) < size {
		m.table = make([]float64, size)
	}
	t := m.table[:size]
	t[0] = 0
	for i := 1; i < size; i++ {
		t[i] = Inf
	}
	return t
}

// subsetTable is the incremental form of the cover DP used by Algorithm 4:
// AddPoint relaxes the table with one more candidate point; Best reports the
// current cost of covering the full query activity set.
type subsetTable struct {
	vals []float64
	full uint32
}

func (m *Matcher) newSubsetTable(nq int) subsetTable {
	return subsetTable{vals: m.resetTable(nq), full: uint32(1)<<uint(nq) - 1}
}

// AddPoint relaxes the table with a point covering mask at cost dist.
// Ascending in-place iteration may chain a point's contribution through
// masks it just improved; that only re-adds the same point to a cover,
// which never beats the true optimum and never dips below it (set-cover
// costs are subadditive), so the table stays exact.
func (t *subsetTable) AddPoint(mask uint32, dist float64) {
	mask &= t.full
	if mask == 0 || dist == Inf {
		return
	}
	vals := t.vals
	for s, v := range vals {
		if v == Inf {
			continue
		}
		key := uint32(s) | mask
		if nv := v + dist; nv < vals[key] {
			vals[key] = nv
		}
	}
}

// Best returns the cost of covering the full query set, or Inf.
func (t *subsetTable) Best() float64 { return t.vals[t.full] }

package matcher

// CheckMIB applies the matching-index-bound filter of Section VI-B: for
// each query point the bound is the first and last trajectory position
// carrying any of its activities; if an earlier query point's lower bound
// exceeds a later one's upper bound, no order-sensitive match can exist.
// It returns false when the candidate can be discarded.
func CheckMIB(rows []QueryRow) bool {
	for i := range rows {
		if rows[i].Empty() {
			return false
		}
	}
	for i := 0; i < len(rows); i++ {
		lbI := rows[i].Idx[0]
		for j := i + 1; j < len(rows); j++ {
			ubJ := rows[j].Idx[len(rows[j].Idx)-1]
			if lbI > ubJ {
				return false
			}
		}
	}
	return true
}

// MinOrderMatch computes Dmom(Q, Tr), the minimum order-sensitive match
// distance (Definition 7), by the dynamic program of Algorithm 4:
//
//	G(i,j) = min_{1<=k<=j} { G(i-1,k) + Dmpm(q_i, Tr[k..j]) }
//
// with G(0,·) = 0. Two optimizations preserve exactness:
//
//   - Only k equal to a relevant point index of q_i needs evaluation: for k
//     between consecutive relevant points the window's cover table is
//     unchanged and G(i-1,k) is minimized at the largest such k (Lemma 4).
//   - The cover table is built incrementally while k descends, exactly the
//     paper's "evaluation of Dmpm can be done incrementally".
//
// The k-descent stops at the first k with G(i-1,k) = +Inf (Lemma 4), and
// the whole computation aborts with Inf once a row's full-trajectory entry
// exceeds threshold (Algorithm 4, line 9); threshold is the k-th smallest
// Dmom found so far (pass Inf to disable).
//
// n is the number of points of the candidate trajectory; rows[i] describes
// query point i's relevant points with ascending 0-based trajectory indexes.
func (m *Matcher) MinOrderMatch(n int, rows []QueryRow, threshold float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	if n == 0 {
		return Inf
	}
	// G rows are 0-indexed by trajectory position j in [0,n).
	if cap(m.gPrev) < n {
		m.gPrev = make([]float64, n)
		m.gCur = make([]float64, n)
	}
	prev := m.gPrev[:n]
	cur := m.gCur[:n]
	for j := range prev {
		prev[j] = 0 // guardian row G(0,*) = 0
	}
	for i := range rows {
		row := &rows[i]
		if row.Empty() && row.NumActs > 0 {
			return Inf
		}
		for j := 0; j < n; j++ {
			cur[j] = Inf
		}
		m.fillOrderRow(n, row, prev, cur)
		if cur[n-1] > threshold {
			return Inf
		}
		prev, cur = cur, prev
	}
	return prev[n-1] // rows were swapped after the last iteration
}

// fillOrderRow computes cur[j] = G(i,j) for all j given prev = G(i-1,·).
func (m *Matcher) fillOrderRow(n int, row *QueryRow, prev, cur []float64) {
	if row.NumActs == 0 {
		// Vacuous activity requirement: the empty point match costs 0 and
		// imposes no ordering constraint, so G(i,j) = G(i-1,j).
		copy(cur, prev)
		return
	}
	rel := row.Idx
	for j := 0; j < n; j++ {
		// Find relevant points with index <= j; descend through them,
		// growing the window cover table, and relax against G(i-1,k).
		hi := upperBound(rel, int32(j))
		if hi == 0 {
			continue // no relevant point in Tr[0..j]: G(i,j) stays +Inf
		}
		t := m.newSubsetTable(row.NumActs)
		best := Inf
		for r := hi - 1; r >= 0; r-- {
			k := rel[r]
			if prev[k] == Inf {
				break // Lemma 4: G(i-1,k') is +Inf for all k' < k too
			}
			t.AddPoint(row.Mask[r], row.Dist[r])
			if d := t.Best(); d < Inf {
				if v := prev[k] + d; v < best {
					best = v
				}
			}
		}
		cur[j] = best
	}
}

// upperBound returns the number of elements of a (ascending) that are <= v.
func upperBound(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MinOrderMatchNaive is Algorithm 4 exactly as printed — the k loop visits
// every position, rebuilding the window table from scratch. It is the
// cross-check oracle for MinOrderMatch in property tests.
func (m *Matcher) MinOrderMatchNaive(n int, rows []QueryRow, threshold float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	if n == 0 {
		return Inf
	}
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range rows {
		row := &rows[i]
		for j := 0; j < n; j++ {
			if row.NumActs == 0 {
				cur[j] = prev[j]
				continue
			}
			cur[j] = Inf
			t := m.newSubsetTable(row.NumActs)
			// Incrementally extend the window leftward, k = j..0.
			for k := j; k >= 0; k-- {
				if prev[k] == Inf {
					break
				}
				if r := findIdx(row.Idx, int32(k)); r >= 0 {
					t.AddPoint(row.Mask[r], row.Dist[r])
				}
				if d := t.Best(); d < Inf {
					if v := prev[k] + d; v < cur[j] {
						cur[j] = v
					}
				}
			}
		}
		if cur[n-1] > threshold {
			return Inf
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}

func findIdx(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == v {
		return lo
	}
	return -1
}

// BruteMinOrderMatch enumerates every order-sensitive match (test-only,
// exponential). Consecutive matches may share a boundary point, per
// Definition 7's "smaller than or equal to".
func BruteMinOrderMatch(n int, rows []QueryRow) float64 {
	var rec func(i int, lo int32) float64
	rec = func(i int, lo int32) float64 {
		if i == len(rows) {
			return 0
		}
		row := rows[i]
		if row.NumActs == 0 {
			return rec(i+1, lo)
		}
		full := uint32(1)<<uint(row.NumActs) - 1
		// Candidate points at positions >= lo.
		var cand []int
		for r := range row.Idx {
			if row.Idx[r] >= lo {
				cand = append(cand, r)
			}
		}
		best := Inf
		for sub := 1; sub < 1<<uint(len(cand)); sub++ {
			var mask uint32
			var cost float64
			maxIdx := int32(-1)
			for b, r := range cand {
				if sub&(1<<uint(b)) != 0 {
					mask |= row.Mask[r]
					cost += row.Dist[r]
					if row.Idx[r] > maxIdx {
						maxIdx = row.Idx[r]
					}
				}
			}
			if mask != full {
				continue
			}
			if rest := rec(i+1, maxIdx); rest < Inf && cost+rest < best {
				best = cost + rest
			}
		}
		return best
	}
	if n == 0 && len(rows) > 0 {
		return Inf
	}
	return rec(0, 0)
}

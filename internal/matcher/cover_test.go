package matcher

import (
	"math"
	"math/rand"
	"testing"
)

// randomRows builds random candidate rows over a trajectory of n points:
// each query point gets a random subset of positions with random masks and
// distances, mirroring what RowBuilder produces (ascending indexes).
func randomCoverRows(rng *rand.Rand, nq, nrows, n int) []QueryRow {
	rows := make([]QueryRow, nrows)
	for i := range rows {
		row := QueryRow{NumActs: nq}
		for p := 0; p < n; p++ {
			if rng.Float64() < 0.4 {
				continue
			}
			mask := uint32(rng.Intn(1<<uint(nq)-1) + 1)
			row.Idx = append(row.Idx, int32(p))
			row.Dist = append(row.Dist, float64(rng.Intn(50))/4)
			row.Mask = append(row.Mask, mask)
		}
		rows[i] = row
	}
	return rows
}

// coverCost sums the distances of the covering points and verifies the
// cover actually covers the full activity set with in-row indexes.
func coverCost(t *testing.T, row QueryRow, cover []int32) float64 {
	t.Helper()
	full := uint32(1)<<uint(row.NumActs) - 1
	var mask uint32
	var cost float64
	for _, idx := range cover {
		found := false
		for r, ri := range row.Idx {
			if ri == idx {
				mask |= row.Mask[r]
				cost += row.Dist[r]
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cover references index %d not in row", idx)
		}
	}
	if mask&full != full {
		t.Fatalf("cover %v has mask %b, does not cover %b", cover, mask, full)
	}
	return cost
}

// TestMinMatchCoverAgreesWithMinMatch: the extracted covers must exist for
// every finite Dmm, cover each query point's activity set, and sum to
// exactly the distance MinMatch computes.
func TestMinMatchCoverAgreesWithMinMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m Matcher
	for trial := 0; trial < 300; trial++ {
		nq := 1 + rng.Intn(4)
		rows := randomCoverRows(rng, nq, 1+rng.Intn(3), 2+rng.Intn(8))
		want := m.MinMatch(rows, Inf)
		got, covers := m.MinMatchCover(rows)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) || covers != nil {
				t.Fatalf("trial %d: MinMatch=Inf but cover returned %v %v", trial, got, covers)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: cover dist %v != MinMatch %v", trial, got, want)
		}
		var sum float64
		for i, row := range rows {
			sum += coverCost(t, row, covers[i])
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("trial %d: summed cover cost %v != Dmm %v (covers %v)", trial, sum, want, covers)
		}
	}
}

// TestMinOrderMatchCoverAgreesWithMinOrderMatch: the order-sensitive covers
// must reproduce Dmom exactly, each cover must cover its query point, and
// consecutive covers must comply with the query order (cover i's window may
// share at most its first point with cover i-1's end, per Definition 7).
func TestMinOrderMatchCoverAgreesWithMinOrderMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var m Matcher
	for trial := 0; trial < 300; trial++ {
		nq := 1 + rng.Intn(3)
		n := 2 + rng.Intn(8)
		rows := randomCoverRows(rng, nq, 1+rng.Intn(3), n)
		want := m.MinOrderMatch(n, rows, Inf)
		got, covers := m.MinOrderMatchCover(n, rows)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) || covers != nil {
				t.Fatalf("trial %d: Dmom=Inf but cover returned %v %v", trial, got, covers)
			}
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: cover dist %v != Dmom %v", trial, got, want)
		}
		var sum float64
		prevMax := int32(0)
		for i, row := range rows {
			sum += coverCost(t, row, covers[i])
			if len(covers[i]) == 0 {
				continue
			}
			// Order compliance (Definition 7): every index of cover i is at
			// least the previous cover's maximum index (consecutive matches
			// may share exactly that boundary point). Covers are ascending,
			// so checking the first element suffices.
			if covers[i][0] < prevMax {
				t.Fatalf("trial %d: cover %d starts at %d before cover %d's end %d — order violated",
					trial, i, covers[i][0], i-1, prevMax)
			}
			prevMax = covers[i][len(covers[i])-1]
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("trial %d: summed cover cost %v != Dmom %v (covers %v)", trial, sum, want, covers)
		}
	}
}

// TestCoverVacuousRow: a query point with no activity requirement gets an
// empty cover and contributes nothing.
func TestCoverVacuousRow(t *testing.T) {
	var m Matcher
	rows := []QueryRow{
		{NumActs: 0},
		{NumActs: 1, Idx: []int32{2}, Dist: []float64{1.5}, Mask: []uint32{1}},
	}
	d, covers := m.MinMatchCover(rows)
	if d != 1.5 || len(covers) != 2 || len(covers[0]) != 0 || len(covers[1]) != 1 || covers[1][0] != 2 {
		t.Fatalf("got %v %v", d, covers)
	}
	do, coversO := m.MinOrderMatchCover(4, rows)
	if do != 1.5 || len(coversO) != 2 || len(coversO[0]) != 0 || len(coversO[1]) != 1 || coversO[1][0] != 2 {
		t.Fatalf("ordered: got %v %v", do, coversO)
	}
}

package matcher

import (
	"math"
	"math/rand"
	"testing"
)

// randomPoints builds a small random candidate set over nq activities.
func randomPoints(rng *rand.Rand, nq, n int) []WeightedPoint {
	full := uint32(1)<<uint(nq) - 1
	pts := make([]WeightedPoint, n)
	for i := range pts {
		pts[i] = WeightedPoint{
			Dist: float64(rng.Intn(100)) + rng.Float64(),
			Mask: rng.Uint32() & full,
		}
	}
	return pts
}

// TestAlgorithm3AgainstReferences: Algorithm 3, the incremental DP, and
// brute-force enumeration must agree on random inputs.
func TestAlgorithm3AgainstReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var m Matcher
	for trial := 0; trial < 3000; trial++ {
		nq := 1 + rng.Intn(4)
		n := rng.Intn(10)
		pts := randomPoints(rng, nq, n)
		want := BruteMinPointMatch(nq, pts)
		if got := m.MinPointMatchDP(nq, pts); !eqInf(got, want) {
			t.Fatalf("trial %d: DP %v, brute %v (nq=%d pts=%v)", trial, got, want, nq, pts)
		}
		if got := m.MinPointMatch(nq, pts); !eqInf(got, want) {
			t.Fatalf("trial %d: Alg3 %v, brute %v (nq=%d pts=%v)", trial, got, want, nq, pts)
		}
	}
}

// TestAlgorithm3WideQuery exercises the map-backed fallback (nq > 16).
func TestAlgorithm3WideQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var m Matcher
	nq := 18
	full := uint32(1)<<uint(nq) - 1
	// A point covering everything far away plus partial cheap points.
	pts := []WeightedPoint{
		{Dist: 100, Mask: full},
		{Dist: 1, Mask: 0x2AAAA & full},
		{Dist: 2, Mask: 0x15555 & full},
	}
	got := m.MinPointMatch(nq, pts)
	if got != 3 {
		t.Fatalf("wide Dmpm = %v, want 3", got)
	}
	for trial := 0; trial < 50; trial++ {
		pts := randomPoints(rng, nq, 6)
		want := BruteMinPointMatch(nq, pts)
		if got := m.MinPointMatch(nq, pts); !eqInf(got, want) {
			t.Fatalf("trial %d: wide Alg3 %v, brute %v", trial, got, want)
		}
	}
}

func randomRows(rng *rand.Rand, m, n int) []QueryRow {
	rows := make([]QueryRow, m)
	for i := range rows {
		nq := 1 + rng.Intn(3)
		full := uint32(1)<<uint(nq) - 1
		row := QueryRow{NumActs: nq}
		for j := 0; j < n; j++ {
			mask := rng.Uint32() & full
			if mask == 0 || rng.Intn(3) == 0 {
				continue
			}
			row.Idx = append(row.Idx, int32(j))
			row.Dist = append(row.Dist, float64(rng.Intn(50))+rng.Float64())
			row.Mask = append(row.Mask, mask)
		}
		rows[i] = row
	}
	return rows
}

// TestAlgorithm4AgainstReferences: the production DP, the literal
// Algorithm 4, and brute-force enumeration must agree on random inputs.
func TestAlgorithm4AgainstReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var m Matcher
	for trial := 0; trial < 1500; trial++ {
		nQ := 1 + rng.Intn(3)
		n := 1 + rng.Intn(7)
		rows := randomRows(rng, nQ, n)
		want := BruteMinOrderMatch(n, cloneRows(rows))
		naive := m.MinOrderMatchNaive(n, cloneRows(rows), Inf)
		got := m.MinOrderMatch(n, cloneRows(rows), Inf)
		if !eqInf(naive, want) {
			t.Fatalf("trial %d: naive %v, brute %v (n=%d rows=%+v)", trial, naive, want, n, rows)
		}
		if !eqInf(got, want) {
			t.Fatalf("trial %d: fast %v, brute %v (n=%d rows=%+v)", trial, got, want, n, rows)
		}
	}
}

// TestLemmaOneAndThree: Dmm = Σ Dmpm (Lemma 1 by construction) and
// Dmm ≤ Dmom (Lemma 3) on random inputs.
func TestLemmaOneAndThree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var m Matcher
	for trial := 0; trial < 1000; trial++ {
		nQ := 1 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		rows := randomRows(rng, nQ, n)
		mm := m.MinMatch(cloneRows(rows), Inf)
		var manual float64
		for _, row := range rows {
			pts := make([]WeightedPoint, len(row.Idx))
			for i := range row.Idx {
				pts[i] = WeightedPoint{Dist: row.Dist[i], Mask: row.Mask[i]}
			}
			d := m.MinPointMatch(row.NumActs, pts)
			manual += d
		}
		if !eqInf(mm, manual) {
			t.Fatalf("trial %d: Dmm %v != Σ Dmpm %v", trial, mm, manual)
		}
		mom := m.MinOrderMatch(n, cloneRows(rows), Inf)
		if mm > mom+1e-9 {
			t.Fatalf("trial %d: Dmm %v > Dmom %v (Lemma 3)", trial, mm, mom)
		}
	}
}

// TestMIBNeverFalseRejects: whenever a finite order-sensitive match exists,
// the MIB filter must pass the candidate (no false dismissals).
func TestMIBNeverFalseRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		nQ := 1 + rng.Intn(3)
		n := 1 + rng.Intn(7)
		rows := randomRows(rng, nQ, n)
		if BruteMinOrderMatch(n, cloneRows(rows)) < Inf && !CheckMIB(rows) {
			t.Fatalf("trial %d: MIB rejected a matchable candidate %+v", trial, rows)
		}
	}
}

// TestLemma4Monotonicity: the DP matrix G is non-increasing along columns
// and non-decreasing along rows, which the early-termination rules rely on.
func TestLemma4Monotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var m Matcher
	for trial := 0; trial < 300; trial++ {
		nQ := 1 + rng.Intn(3)
		n := 2 + rng.Intn(6)
		rows := randomRows(rng, nQ, n)
		// Recompute G row by row via the naive method on prefixes.
		prevRow := make([]float64, n)
		for j := range prevRow {
			prevRow[j] = m.MinOrderMatchNaive(j+1, cloneRows(rows[:1]), Inf)
		}
		for j := 1; j < n; j++ {
			if prevRow[j] > prevRow[j-1]+1e-9 {
				t.Fatalf("trial %d: G(1,·) increased along columns: %v", trial, prevRow)
			}
		}
		for i := 2; i <= nQ; i++ {
			cur := make([]float64, n)
			for j := range cur {
				cur[j] = m.MinOrderMatchNaive(j+1, cloneRows(rows[:i]), Inf)
			}
			for j := 0; j < n; j++ {
				if cur[j] < prevRow[j]-1e-9 {
					t.Fatalf("trial %d: G(%d,%d) < G(%d,%d)", trial, i, j, i-1, j)
				}
			}
			prevRow = cur
		}
	}
}

// TestThresholdNeverChangesFiniteResults: a threshold above the true value
// must not alter it; a threshold below must force +Inf.
func TestThresholdNeverChangesFiniteResults(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var m Matcher
	for trial := 0; trial < 800; trial++ {
		nQ := 1 + rng.Intn(3)
		n := 1 + rng.Intn(6)
		rows := randomRows(rng, nQ, n)
		want := m.MinOrderMatch(n, cloneRows(rows), Inf)
		if want == Inf {
			continue
		}
		if got := m.MinOrderMatch(n, cloneRows(rows), want+1); got != want {
			t.Fatalf("trial %d: threshold %v changed result %v -> %v", trial, want+1, want, got)
		}
		if got := m.MinOrderMatch(n, cloneRows(rows), want/2-1); got != Inf && got != want {
			// A low threshold may still return the exact value when no row
			// exceeds it mid-way; it must never return anything else.
			t.Fatalf("trial %d: low threshold produced %v (true %v)", trial, got, want)
		}
	}
}

func cloneRows(rows []QueryRow) []QueryRow {
	out := make([]QueryRow, len(rows))
	for i, r := range rows {
		out[i] = QueryRow{
			NumActs: r.NumActs,
			Idx:     append([]int32(nil), r.Idx...),
			Dist:    append([]float64(nil), r.Dist...),
			Mask:    append([]uint32(nil), r.Mask...),
		}
	}
	return out
}

func eqInf(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) < 1e-9
}

package matcher

import (
	"math"
	"math/rand"
	"testing"
)

// row is a compact test constructor for QueryRow.
func row(nq int, idx []int32, dist []float64, mask []uint32) QueryRow {
	return QueryRow{NumActs: nq, Idx: idx, Dist: dist, Mask: mask}
}

// TestSpanTableDriven pins the split-point DP's edge semantics: empty
// spans, full-trajectory equivalence, MinSpan/MaxSpan clamps, ordered vs
// unordered, and contradictory limits.
func TestSpanTableDriven(t *testing.T) {
	var m Matcher
	// One query point wanting activity bit 0; trajectory points 0,5,9 carry
	// it at distances 3, 1, 2. A second query point wanting bit 0 as well,
	// carried by points 1 and 9 at distances 10 and 1.
	rows := []QueryRow{
		row(1, []int32{0, 5, 9}, []float64{3, 1, 2}, []uint32{1, 1, 1}),
		row(1, []int32{1, 9}, []float64{10, 1}, []uint32{1, 1}),
	}
	n := 10
	cases := []struct {
		name             string
		minSpan, maxSpan int
		ordered          bool
		want             float64
	}{
		// Unlimited span = whole trajectory: best is 1 (pt 5) + 1 (pt 9).
		{"unlimited equals MinMatch", 0, 0, false, 2},
		// maxSpan >= n clamps to n: identical to unlimited.
		{"maxSpan clamps to n", 0, 100, false, 2},
		// minSpan <= n with unlimited max never binds.
		{"minSpan never binds when feasible", 7, 0, false, 2},
		// minSpan > n: no legal span at all.
		{"empty span (minSpan beyond n)", 11, 0, false, Inf},
		// Contradictory limits: no legal span length.
		{"minSpan over maxSpan", 5, 3, false, Inf},
		// Window of 5: [5..9] holds pts 5,9 (row 0) and 9 (row 1): 1+1.
		{"window 5 keeps the tail", 0, 5, false, 2},
		// Window of 3: no window holds both rows' cheap points; best is
		// [7..9]-style span with pt 9 for both rows: 2+1.
		{"window 3 forces sharing", 0, 3, false, 3},
		// Window of 1: only point 9 carries both rows: 2+1.
		{"window 1", 1, 1, false, 3},
		// Ordered, unlimited: row 0 must match at or before row 1's match;
		// (5,9) respects the order: 1+1.
		{"ordered unlimited", 0, 0, true, 2},
		// Ordered, window 3: only point 9 serves both (shared boundary is
		// allowed by Definition 7): 2+1.
		{"ordered window 3", 0, 3, true, 3},
	}
	for _, tc := range cases {
		var got float64
		if tc.ordered {
			got = m.MinOrderMatchSpan(n, rows, tc.minSpan, tc.maxSpan, Inf)
		} else {
			got = m.MinMatchSpan(n, rows, tc.minSpan, tc.maxSpan, Inf)
		}
		if !eqInf(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSpanFullTrajectoryEqualsMinMatch: with no span limits the span DP
// must return bit-identical results to the existing whole-trajectory
// algorithms on random inputs (it routes through them), and with
// maxSpan >= n the clamped window scan must agree too.
func TestSpanFullTrajectoryEqualsMinMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var m Matcher
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		rows := randomRows(rng, 1+rng.Intn(3), n)
		want := m.MinMatch(rows, Inf)
		if got := m.MinMatchSpan(n, rows, 0, 0, Inf); !eqInf(got, want) {
			t.Fatalf("trial %d: unlimited span %v, MinMatch %v", trial, got, want)
		}
		if got := m.MinMatchSpan(n, rows, 0, n+rng.Intn(3), Inf); !eqInf(got, want) {
			t.Fatalf("trial %d: clamped span %v, MinMatch %v", trial, got, want)
		}
		wantO := m.MinOrderMatch(n, rows, Inf)
		if got := m.MinOrderMatchSpan(n, rows, 0, 0, Inf); !eqInf(got, wantO) {
			t.Fatalf("trial %d: unlimited ordered span %v, MinOrderMatch %v", trial, got, wantO)
		}
	}
}

// TestSpanAgainstBrute: the run-enumeration DP must agree with the
// exhaustive window enumeration on random inputs, for both distances and
// every span-limit shape.
func TestSpanAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var m Matcher
	for trial := 0; trial < 1500; trial++ {
		n := 1 + rng.Intn(10)
		rows := randomRows(rng, 1+rng.Intn(3), n)
		minSpan := rng.Intn(n + 2)
		maxSpan := rng.Intn(n + 2)
		if rng.Intn(3) == 0 {
			minSpan = 0
		}
		if rng.Intn(3) == 0 {
			maxSpan = 0
		}
		want := BruteMinMatchSpan(n, rows, minSpan, maxSpan)
		got := m.MinMatchSpan(n, rows, minSpan, maxSpan, Inf)
		if !eqInf(got, want) {
			t.Fatalf("trial %d: span DP %v, brute %v (n=%d min=%d max=%d rows=%v)",
				trial, got, want, n, minSpan, maxSpan, rows)
		}
		wantO := BruteMinOrderMatchSpan(n, rows, minSpan, maxSpan)
		gotO := m.MinOrderMatchSpan(n, rows, minSpan, maxSpan, Inf)
		if !eqInf(gotO, wantO) {
			t.Fatalf("trial %d: ordered span DP %v, brute %v (n=%d min=%d max=%d rows=%v)",
				trial, gotO, wantO, n, minSpan, maxSpan, rows)
		}
	}
}

// TestSpanThresholdNeverChangesFiniteResults: abandoning past a threshold
// may only turn over-threshold results into Inf, never alter an
// at-or-under-threshold result (the strictly-above rule every engine's
// pruning depends on).
func TestSpanThresholdNeverChangesFiniteResults(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	var m Matcher
	for trial := 0; trial < 800; trial++ {
		n := 1 + rng.Intn(10)
		rows := randomRows(rng, 1+rng.Intn(3), n)
		maxSpan := 1 + rng.Intn(n)
		exact := m.MinMatchSpan(n, rows, 0, maxSpan, Inf)
		exactO := m.MinOrderMatchSpan(n, rows, 0, maxSpan, Inf)
		th := float64(rng.Intn(120))
		if rng.Intn(4) == 0 && !math.IsInf(exact, 1) {
			th = exact // exactly-at-threshold must still score fully
		}
		got := m.MinMatchSpan(n, rows, 0, maxSpan, th)
		if exact <= th && !eqInf(got, exact) {
			t.Fatalf("trial %d: threshold %v changed %v to %v", trial, th, exact, got)
		}
		if exact > th && !math.IsInf(got, 1) {
			t.Fatalf("trial %d: over-threshold %v not abandoned (th=%v): %v", trial, exact, th, got)
		}
		gotO := m.MinOrderMatchSpan(n, rows, 0, maxSpan, th)
		if exactO <= th && !eqInf(gotO, exactO) {
			t.Fatalf("trial %d: ordered threshold %v changed %v to %v", trial, th, exactO, gotO)
		}
		if exactO > th && !math.IsInf(gotO, 1) {
			t.Fatalf("trial %d: ordered over-threshold %v not abandoned (th=%v): %v", trial, exactO, th, gotO)
		}
	}
}

// TestSpanCoverAgreesWithSpanDP: the cover variants must report the same
// distance as the span DP, with every cover index inside one legal window
// and (ordered) order-compliant.
func TestSpanCoverAgreesWithSpanDP(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var m Matcher
	const eps = 1e-9
	for trial := 0; trial < 800; trial++ {
		n := 1 + rng.Intn(10)
		rows := randomRows(rng, 1+rng.Intn(3), n)
		maxSpan := 1 + rng.Intn(n+2)
		want := m.MinMatchSpan(n, rows, 0, maxSpan, Inf)
		d, covers := m.MinMatchSpanCover(n, rows, 0, maxSpan)
		if math.IsInf(want, 1) {
			if !math.IsInf(d, 1) || covers != nil {
				t.Fatalf("trial %d: no match but cover (%v, %v)", trial, d, covers)
			}
		} else {
			if math.Abs(d-want) > eps {
				t.Fatalf("trial %d: cover dist %v, span DP %v", trial, d, want)
			}
			checkSpanWidth(t, trial, covers, n, maxSpan)
		}
		wantO := m.MinOrderMatchSpan(n, rows, 0, maxSpan, Inf)
		dO, coversO := m.MinOrderMatchSpanCover(n, rows, 0, maxSpan)
		if math.IsInf(wantO, 1) {
			if !math.IsInf(dO, 1) || coversO != nil {
				t.Fatalf("trial %d: no ordered match but cover (%v, %v)", trial, dO, coversO)
			}
		} else {
			if math.Abs(dO-wantO) > eps {
				t.Fatalf("trial %d: ordered cover dist %v, span DP %v", trial, dO, wantO)
			}
			checkSpanWidth(t, trial, coversO, n, maxSpan)
			// Order compliance: covers[i]'s window may share only its start
			// with covers[i-1]'s end.
			last := int32(0)
			for i, c := range coversO {
				if len(c) == 0 {
					continue
				}
				for _, idx := range c {
					if idx < last {
						t.Fatalf("trial %d: cover %d index %d precedes previous window start %d",
							trial, i, idx, last)
					}
				}
				for _, idx := range c {
					if idx > last {
						last = idx
					}
				}
			}
		}
	}
}

// checkSpanWidth asserts every matched index fits one window of the allowed
// length.
func checkSpanWidth(t *testing.T, trial int, covers [][]int32, n, maxSpan int) {
	t.Helper()
	lo, hi := int32(math.MaxInt32), int32(-1)
	for _, c := range covers {
		for _, idx := range c {
			if idx < 0 || int(idx) >= n {
				t.Fatalf("trial %d: cover index %d outside trajectory of %d points", trial, idx, n)
			}
			if idx < lo {
				lo = idx
			}
			if idx > hi {
				hi = idx
			}
		}
	}
	if hi >= 0 && maxSpan > 0 && int(hi-lo)+1 > min(maxSpan, n) {
		t.Fatalf("trial %d: cover span [%d,%d] wider than the %d-point limit", trial, lo, hi, maxSpan)
	}
}

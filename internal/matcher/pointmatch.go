package matcher

import "slices"

// SortByDist orders candidate points by ascending distance — the input
// order Algorithm 3 requires for its early-termination condition. It uses
// the generic sort, which (unlike sort.Slice) does not allocate, keeping
// the per-candidate path of a search allocation-free.
func SortByDist(pts []WeightedPoint) {
	slices.SortFunc(pts, func(a, b WeightedPoint) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		default:
			return 0
		}
	})
}

// MinPointMatch computes Dmpm(q, Tr) — the minimum point match distance of
// Definition 4 — given the candidate points of Tr that carry at least one of
// the nq query activities. It sorts pts in place and runs Algorithm 3.
// It returns Inf when no point match exists, and 0 when nq == 0 (an empty
// activity requirement is vacuously matched).
func (m *Matcher) MinPointMatch(nq int, pts []WeightedPoint) float64 {
	SortByDist(pts)
	return m.MinPointMatchSorted(nq, pts)
}

// MinPointMatchSorted is MinPointMatch for pts already sorted by ascending
// distance. It is a faithful implementation of the paper's Algorithm 3:
// a hash table H keyed by query-activity subsets holds the best known match
// distance per subset; each candidate point first claims every subset of its
// own coverage it improves (the FIFO queue), then combines with every
// incomparable subset already in H; processing stops as soon as the next
// point's distance cannot beat the full-set entry.
func (m *Matcher) MinPointMatchSorted(nq int, pts []WeightedPoint) float64 {
	if nq <= 0 {
		return 0
	}
	if nq > maxArrayActs {
		return m.minPointMatchMap(nq, pts)
	}
	full := uint32(1)<<uint(nq) - 1
	h := m.resetTable(nq)
	for _, p := range pts {
		// Early termination (Algorithm 3, line 5): every unchecked point is
		// at least this far, so no cover built from them can improve H[q.Φ].
		if h[full] <= p.Dist {
			break
		}
		pm := p.Mask & full
		if pm == 0 {
			continue
		}
		m.queue = m.queue[:0]
		m.queue = append(m.queue, pm)
		for qi := 0; qi < len(m.queue); qi++ {
			ks := m.queue[qi]
			if h[ks] <= p.Dist {
				// A better match for ks exists; its subsets are at least as
				// good (H is monotone), so the whole sub-lattice is skipped.
				continue
			}
			h[ks] = p.Dist
			// Push every (|ks|-1)-size subset.
			for rest := ks; rest != 0; rest &= rest - 1 {
				if sub := ks &^ (rest & (^rest + 1)); sub != 0 {
					m.queue = append(m.queue, sub)
				}
			}
			// Combine with every incomparable subset currently in H.
			for s := uint32(1); s <= full; s++ {
				if h[s] == Inf || s&ks == s || s&ks == ks {
					continue // absent, or subset/superset of ks
				}
				key := s | ks
				if v := h[s] + h[ks]; v < h[key] {
					h[key] = v
				}
			}
		}
	}
	return h[full]
}

// minPointMatchMap is the map-backed fallback for very wide queries
// (nq > maxArrayActs). It uses the incremental cover relaxation, which
// computes the same value as Algorithm 3.
func (m *Matcher) minPointMatchMap(nq int, pts []WeightedPoint) float64 {
	full := uint32(1)<<uint(nq) - 1
	h := map[uint32]float64{0: 0}
	for _, p := range pts {
		if best, ok := h[full]; ok && best <= p.Dist {
			break
		}
		pm := p.Mask & full
		if pm == 0 {
			continue
		}
		keys := make([]uint32, 0, len(h))
		for s := range h {
			keys = append(keys, s)
		}
		for _, s := range keys {
			key := s | pm
			if v := h[s] + p.Dist; v < getInf(h, key) {
				h[key] = v
			}
		}
	}
	return getInf(h, full)
}

func getInf(h map[uint32]float64, k uint32) float64 {
	if v, ok := h[k]; ok {
		return v
	}
	return Inf
}

// MinPointMatchDP computes Dmpm by the plain incremental cover relaxation
// (no early termination, no subset queue). It is used as a polynomial-time
// cross-check for Algorithm 3 in tests and as the ablation baseline
// measuring what Algorithm 3's early termination buys.
func (m *Matcher) MinPointMatchDP(nq int, pts []WeightedPoint) float64 {
	if nq <= 0 {
		return 0
	}
	t := m.newSubsetTable(nq)
	for _, p := range pts {
		t.AddPoint(p.Mask, p.Dist)
	}
	return t.Best()
}

// BruteMinPointMatch enumerates every subset of pts — exponential, test-only.
func BruteMinPointMatch(nq int, pts []WeightedPoint) float64 {
	if nq <= 0 {
		return 0
	}
	full := uint32(1)<<uint(nq) - 1
	best := Inf
	n := len(pts)
	for sub := 0; sub < 1<<uint(n); sub++ {
		var mask uint32
		var cost float64
		for i := 0; i < n; i++ {
			if sub&(1<<uint(i)) != 0 {
				mask |= pts[i].Mask
				cost += pts[i].Dist
			}
		}
		if mask&full == full && cost < best {
			best = cost
		}
	}
	return best
}

package matcher

import "slices"

// Subtrajectory (span-constrained) match distances: the distance of a
// candidate under Request.Subtrajectory is the minimum, over contiguous
// trajectory point spans of an allowed length, of the whole-trajectory
// distance computed as if only the span's points existed. Both follow-up
// lines of work (the RL variant of arXiv:2003.02542 and the exact
// non-learning variant of arXiv:2307.10082) show the split-point structure
// this file exploits; everything here is the exact variant.
//
// Two observations turn the O(n^2) window enumeration into a scan over at
// most r "runs" (r = number of relevant trajectory points):
//
//  1. Monotonicity: growing a span can only lower its distance (every match
//     inside the smaller span is a match inside the larger, for the ordered
//     distance with unchanged relative order). Hence only spans of the
//     maximum allowed length L = min(MaxSpanPoints, n) need evaluation, and
//     MinSpanPoints only decides whether any legal span exists at all.
//  2. Only the RELEVANT points inside a span matter. Let u_1 < … < u_r be
//     the sorted union of the rows' point indexes. Every length-L window's
//     relevant content equals some maximal "run" {u_a, …, u_b(a)} with
//     u_b(a) − u_a ≤ L−1, every such run fits inside a legal window, and a
//     run with the same endpoint as its predecessor is a subset of it
//     (dominated, skipped). The scan is two-pointer, so span search costs
//     O(r) window evaluations instead of O(n).
//
// Pruning mirrors the whole-trajectory machinery and stays exact under the
// same strictly-above-threshold abandonment rule:
//
//   - prefix: the per-row UNCONSTRAINED minimum point match distances are
//     computed once; their sum lower-bounds every span's distance, so a
//     candidate over threshold is abandoned before any window is scored.
//   - suffix: inside a window evaluation, partial sum + the unconstrained
//     tail sum lower-bounds the window's distance, abandoning it early.
//   - ordered runs additionally go through the Lemma-3 layering: the
//     unordered run cost lower-bounds the ordered one and skips
//     Algorithm 4 when it already overshoots.

// spanLen returns the effective window length for a trajectory of n points
// under the request's span limits (0 = unset), and whether any legal span
// exists. minSpan never binds beyond feasibility: a shorter optimal span can
// always be padded to length L without raising its cost (monotonicity), so
// windows of length exactly L are the only ones evaluated.
func spanLen(n, minSpan, maxSpan int) (int, bool) {
	if n <= 0 {
		return 0, false
	}
	if minSpan > n {
		return 0, false // no span long enough exists
	}
	if maxSpan > 0 && minSpan > maxSpan {
		return 0, false // contradictory limits: no legal span length
	}
	if maxSpan > 0 && maxSpan < n {
		return maxSpan, true
	}
	return n, true
}

// MinMatchSpan computes the subtrajectory minimum match distance: the
// minimum of Dmm(Q, Tr[s..e]) over all contiguous spans [s, e] with
// minSpan <= e-s+1 <= maxSpan (0 = unlimited; with both unset this equals
// MinMatch exactly). Computations abandoning past threshold return Inf,
// under MinMatch's strictly-above rule. n is the candidate trajectory's
// point count.
func (m *Matcher) MinMatchSpan(n int, rows []QueryRow, minSpan, maxSpan int, threshold float64) float64 {
	L, ok := spanLen(n, minSpan, maxSpan)
	if !ok {
		return Inf
	}
	if L >= n {
		return m.MinMatch(rows, threshold)
	}
	if !m.spanRowMins(rows, threshold) {
		return Inf
	}
	u := m.spanUnionIdx(rows)
	if len(u) == 0 {
		return 0 // every requirement vacuous (spanRowMins caught the rest)
	}
	mins := m.rowSuffix[:len(rows)]
	best := Inf
	limit := threshold
	bPrev := -1
	for a := range u {
		b := max(bPrev, a)
		for b+1 < len(u) && int(u[b+1])-int(u[a]) < L {
			b++
		}
		if a > 0 && b == bPrev {
			continue // run is a subset of its predecessor: dominated
		}
		bPrev = b
		if d := m.runCostATSQ(rows, u[a], u[b], limit, mins); d < best {
			best = d
			if best < limit {
				limit = best
			}
		}
	}
	if best > threshold {
		return Inf
	}
	return best
}

// MinOrderMatchSpan is MinMatchSpan for the order-sensitive distance Dmom:
// the minimum of Dmom(Q, Tr[s..e]) over the allowed spans. Each run's DP is
// the existing MinOrderMatch over the run's rows rebased to the window
// start — leading and trailing positions without relevant points cannot
// change Algorithm 4's answer, so the rebased window is exact.
func (m *Matcher) MinOrderMatchSpan(n int, rows []QueryRow, minSpan, maxSpan int, threshold float64) float64 {
	L, ok := spanLen(n, minSpan, maxSpan)
	if !ok {
		return Inf
	}
	if L >= n {
		return m.MinOrderMatch(n, rows, threshold)
	}
	if len(rows) == 0 {
		return 0
	}
	if !m.spanRowMins(rows, threshold) {
		return Inf
	}
	u := m.spanUnionIdx(rows)
	if len(u) == 0 {
		return 0
	}
	mins := m.rowSuffix[:len(rows)]
	best := Inf
	limit := threshold
	bPrev := -1
	for a := range u {
		b := max(bPrev, a)
		for b+1 < len(u) && int(u[b+1])-int(u[a]) < L {
			b++
		}
		if a > 0 && b == bPrev {
			continue
		}
		bPrev = b
		// Lemma 3 per run: the (much cheaper) unordered run cost lower-bounds
		// the ordered one; a run already over the limit skips Algorithm 4.
		if m.runCostATSQ(rows, u[a], u[b], limit, mins) == Inf {
			continue
		}
		if d := m.runCostOATSQ(rows, u[a], u[b], limit); d < best {
			best = d
			if best < limit {
				limit = best
			}
		}
	}
	if best > threshold {
		return Inf
	}
	return best
}

// spanRowMins fills m.rowSuffix with the per-row UNCONSTRAINED minimum
// point match distances: rowSuffix[i] lower-bounds what query point i must
// cost inside ANY span. It returns false when no whole-trajectory match
// exists or the forward sum of the minima already strictly exceeds
// threshold — then every span is over threshold too. (The prefix check
// sums forward, left to right, so by monotonicity of rounded addition it
// never exceeds the forward-summed cost of any actual window — exactness
// at the threshold boundary is preserved bit-for-bit.)
func (m *Matcher) spanRowMins(rows []QueryRow, threshold float64) bool {
	if cap(m.rowSuffix) < len(rows) {
		m.rowSuffix = make([]float64, len(rows))
	}
	mins := m.rowSuffix[:len(rows)]
	for i := range rows {
		row := &rows[i]
		if row.NumActs == 0 {
			mins[i] = 0
			continue
		}
		if row.Empty() {
			return false
		}
		m.wpts = m.wpts[:0]
		for r := range row.Idx {
			m.wpts = append(m.wpts, WeightedPoint{Dist: row.Dist[r], Mask: row.Mask[r]})
		}
		d := m.MinPointMatch(row.NumActs, m.wpts)
		if d == Inf {
			return false
		}
		mins[i] = d
	}
	var total float64
	for _, d := range mins {
		total += d
	}
	return total <= threshold
}

// spanUnionIdx returns the ascending union of all rows' trajectory point
// indexes, in matcher scratch.
func (m *Matcher) spanUnionIdx(rows []QueryRow) []int32 {
	u := m.spanUnion[:0]
	for i := range rows {
		u = append(u, rows[i].Idx...)
	}
	m.spanUnion = u
	slices.Sort(u)
	return slices.Compact(u)
}

// runCostATSQ scores one run: Σ over query points of the minimum point
// match over the row entries with trajectory index in [lo, hi], abandoning
// (returning Inf) once the partial sum, continued forward with the
// unconstrained per-row tail minima, strictly exceeds limit. The tail bound
// extends the SAME left-to-right summation the real cost uses, so rounded
// addition's monotonicity guarantees bound ≤ final sum — a prune never
// fires on a run whose true computed cost is at or under limit.
func (m *Matcher) runCostATSQ(rows []QueryRow, lo, hi int32, limit float64, mins []float64) float64 {
	var sum float64
	for i := range rows {
		row := &rows[i]
		if row.NumActs == 0 {
			continue
		}
		rlo := lowerBoundIdx(row.Idx, lo)
		rhi := upperBound(row.Idx, hi)
		if rlo == rhi {
			return Inf // a required query point has no point in this window
		}
		m.wpts = m.wpts[:0]
		for r := rlo; r < rhi; r++ {
			m.wpts = append(m.wpts, WeightedPoint{Dist: row.Dist[r], Mask: row.Mask[r]})
		}
		d := m.MinPointMatch(row.NumActs, m.wpts)
		if d == Inf {
			return Inf
		}
		sum += d
		bound := sum
		for j := i + 1; j < len(rows); j++ {
			bound += mins[j]
		}
		if bound > limit {
			return Inf // suffix prune: even the best-case tail overshoots
		}
	}
	return sum
}

// runCostOATSQ scores one run with the order-sensitive DP: the rows are
// sliced to [lo, hi], rebased to lo, and handed to the existing
// MinOrderMatch over the window's n' = hi-lo+1 positions.
func (m *Matcher) runCostOATSQ(rows []QueryRow, lo, hi int32, limit float64) float64 {
	sub := m.spanSubRows(rows, lo, hi)
	return m.MinOrderMatch(int(hi-lo)+1, sub, limit)
}

// spanSubRows slices every row to the window [lo, hi] and rebases the
// trajectory indexes to the window start. Dist/Mask alias the caller's
// rows; Idx lives in matcher scratch valid until the next call.
func (m *Matcher) spanSubRows(rows []QueryRow, lo, hi int32) []QueryRow {
	if cap(m.spanRows) < len(rows) {
		m.spanRows = make([]QueryRow, len(rows))
	}
	sub := m.spanRows[:len(rows)]
	idx := m.spanIdx[:0]
	for i := range rows {
		row := &rows[i]
		rlo := lowerBoundIdx(row.Idx, lo)
		rhi := upperBound(row.Idx, hi)
		start := len(idx)
		for r := rlo; r < rhi; r++ {
			idx = append(idx, row.Idx[r]-lo)
		}
		sub[i] = QueryRow{
			NumActs: row.NumActs,
			Idx:     idx[start:len(idx):len(idx)],
			Dist:    row.Dist[rlo:rhi],
			Mask:    row.Mask[rlo:rhi],
		}
	}
	m.spanIdx = idx
	return sub
}

// MinMatchSpanCover recomputes the subtrajectory minimum match distance
// together with its covers (see MinMatchCover): the winning run is
// re-derived deterministically (ascending scan, strict improvement), then
// each row's cover comes from the existing window cover DP restricted to
// the run. (Inf, nil) when no span match exists.
func (m *Matcher) MinMatchSpanCover(n int, rows []QueryRow, minSpan, maxSpan int) (float64, [][]int32) {
	L, ok := spanLen(n, minSpan, maxSpan)
	if !ok {
		return Inf, nil
	}
	if L >= n {
		return m.MinMatchCover(rows)
	}
	if !m.spanRowMins(rows, Inf) {
		return Inf, nil
	}
	u := m.spanUnionIdx(rows)
	if len(u) == 0 {
		return 0, emptyCovers(len(rows))
	}
	mins := m.rowSuffix[:len(rows)]
	bestD := Inf
	var bestLo, bestHi int32
	bPrev := -1
	for a := range u {
		b := max(bPrev, a)
		for b+1 < len(u) && int(u[b+1])-int(u[a]) < L {
			b++
		}
		if a > 0 && b == bPrev {
			continue
		}
		bPrev = b
		if d := m.runCostATSQ(rows, u[a], u[b], bestD, mins); d < bestD {
			bestD, bestLo, bestHi = d, u[a], u[b]
		}
	}
	if bestD == Inf {
		return Inf, nil
	}
	covers := make([][]int32, len(rows))
	var sum float64
	for i := range rows {
		row := &rows[i]
		rlo := lowerBoundIdx(row.Idx, bestLo)
		rhi := upperBound(row.Idx, bestHi)
		d, picked := windowCover(row.NumActs, row, rlo, rhi)
		if d == Inf {
			return Inf, nil
		}
		sum += d
		covers[i] = rowIndexes(row, picked)
	}
	return sum, covers
}

// MinOrderMatchSpanCover is MinMatchSpanCover for the order-sensitive
// distance: the winning run's rebased rows go through the existing
// MinOrderMatchCover, and the returned indexes are shifted back to
// trajectory positions.
func (m *Matcher) MinOrderMatchSpanCover(n int, rows []QueryRow, minSpan, maxSpan int) (float64, [][]int32) {
	L, ok := spanLen(n, minSpan, maxSpan)
	if !ok {
		return Inf, nil
	}
	if L >= n {
		return m.MinOrderMatchCover(n, rows)
	}
	if len(rows) == 0 {
		return 0, [][]int32{}
	}
	if !m.spanRowMins(rows, Inf) {
		return Inf, nil
	}
	u := m.spanUnionIdx(rows)
	if len(u) == 0 {
		return 0, emptyCovers(len(rows))
	}
	mins := m.rowSuffix[:len(rows)]
	bestD := Inf
	var bestLo, bestHi int32
	bPrev := -1
	for a := range u {
		b := max(bPrev, a)
		for b+1 < len(u) && int(u[b+1])-int(u[a]) < L {
			b++
		}
		if a > 0 && b == bPrev {
			continue
		}
		bPrev = b
		if m.runCostATSQ(rows, u[a], u[b], bestD, mins) == Inf {
			continue
		}
		if d := m.runCostOATSQ(rows, u[a], u[b], bestD); d < bestD {
			bestD, bestLo, bestHi = d, u[a], u[b]
		}
	}
	if bestD == Inf {
		return Inf, nil
	}
	sub := m.spanSubRows(rows, bestLo, bestHi)
	d, covers := m.MinOrderMatchCover(int(bestHi-bestLo)+1, sub)
	if covers == nil {
		return Inf, nil
	}
	for _, c := range covers {
		for j := range c {
			c[j] += bestLo
		}
	}
	return d, covers
}

func emptyCovers(n int) [][]int32 {
	covers := make([][]int32, n)
	for i := range covers {
		covers[i] = []int32{}
	}
	return covers
}

// lowerBoundIdx returns the number of elements of a (ascending) that are
// strictly less than v — the position of the first element >= v.
func lowerBoundIdx(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RestrictRows returns fresh rows holding only the entries with trajectory
// index in [lo, hi], rebased to lo — the span a brute-force scorer feeds to
// the whole-trajectory reference algorithms (test-only; the search path
// uses matcher scratch via spanSubRows instead).
func RestrictRows(rows []QueryRow, lo, hi int32) []QueryRow {
	out := make([]QueryRow, len(rows))
	for i := range rows {
		row := &rows[i]
		r := QueryRow{NumActs: row.NumActs}
		for j, idx := range row.Idx {
			if idx >= lo && idx <= hi {
				r.Idx = append(r.Idx, idx-lo)
				r.Dist = append(r.Dist, row.Dist[j])
				r.Mask = append(r.Mask, row.Mask[j])
			}
		}
		out[i] = r
	}
	return out
}

// BruteMinMatchSpan enumerates every allowed span [s, e] and scores it with
// the exhaustive whole-trajectory reference over the restricted rows
// (test-only, O(n^2) windows).
func BruteMinMatchSpan(n int, rows []QueryRow, minSpan, maxSpan int) float64 {
	best := Inf
	for s := 0; s < n; s++ {
		for e := s; e < n; e++ {
			length := e - s + 1
			if (minSpan > 0 && length < minSpan) || (maxSpan > 0 && length > maxSpan) {
				continue
			}
			if d := BruteMinMatch(RestrictRows(rows, int32(s), int32(e))); d < best {
				best = d
			}
		}
	}
	return best
}

// BruteMinOrderMatchSpan is BruteMinMatchSpan for the order-sensitive
// distance (test-only, exponential per window).
func BruteMinOrderMatchSpan(n int, rows []QueryRow, minSpan, maxSpan int) float64 {
	best := Inf
	for s := 0; s < n; s++ {
		for e := s; e < n; e++ {
			length := e - s + 1
			if (minSpan > 0 && length < minSpan) || (maxSpan > 0 && length > maxSpan) {
				continue
			}
			if d := BruteMinOrderMatch(length, RestrictRows(rows, int32(s), int32(e))); d < best {
				best = d
			}
		}
	}
	return best
}

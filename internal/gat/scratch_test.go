package gat

import (
	"math"
	"testing"

	"activitytraj/internal/queries"
)

// TestScratchReuseMatchesFresh: an engine's recycled searcher scratch
// (generation-stamped seen array, per-point heaps, candidate buffer) must
// be invisible in results — searching many different queries on one engine
// gives exactly what a fresh engine gives for each.
func TestScratchReuseMatchesFresh(t *testing.T) {
	ds, _, idx := buildSmall(t, Config{Depth: 6, MemLevels: 4})
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 12, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	reused := NewEngine(idx)
	for round := 0; round < 2; round++ { // second round exercises fully warm scratch
		for qi, q := range qs {
			got, err := reused.SearchATSQ(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			gotStats := reused.stats
			fresh := NewEngine(idx)
			want, err := fresh.SearchATSQ(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d q%d: %d results vs %d", round, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d q%d result %d: %+v vs %+v", round, qi, i, got[i], want[i])
				}
			}
			if gotStats.Candidates != fresh.stats.Candidates || gotStats.PQPops != fresh.stats.PQPops {
				t.Fatalf("round %d q%d: reused stats %+v vs fresh %+v", round, qi, gotStats, fresh.stats)
			}
		}
	}
}

// TestGenerationWraparound: when the 32-bit search generation wraps, stale
// stamps from ~4 billion searches ago must not alias the new generation —
// begin() wipes the array and restarts at 1.
func TestGenerationWraparound(t *testing.T) {
	ds, _, idx := buildSmall(t, Config{Depth: 6, MemLevels: 4})
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 4, NumPoints: 2, ActsPerPoint: 2, DiameterKm: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(idx)
	// Warm up so the seen array exists and carries stamps.
	if _, err := e.SearchATSQ(qs[0], 5); err != nil {
		t.Fatal(err)
	}
	// Force the wrap: two searches from now gen overflows to 0.
	e.sc.gen = math.MaxUint32 - 1
	// Poison the array with the post-wrap generation value: if begin() did
	// not wipe on wrap, these entries would mask every trajectory as seen.
	for i := range e.sc.seen {
		e.sc.seen[i] = 1
	}
	fresh := NewEngine(idx)
	for round := 0; round < 3; round++ { // spans gen = MaxUint32, wrap, 2
		for qi, q := range qs {
			got, err := e.SearchATSQ(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.SearchATSQ(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d q%d: %d results vs %d (gen %d)", round, qi, len(got), len(want), e.sc.gen)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d q%d result %d: %+v vs %+v (gen %d)", round, qi, i, got[i], want[i], e.sc.gen)
				}
			}
			if e.stats.Candidates != fresh.stats.Candidates {
				t.Fatalf("round %d q%d: candidates %d vs %d (gen %d)", round, qi, e.stats.Candidates, fresh.stats.Candidates, e.sc.gen)
			}
		}
	}
	if e.sc.gen == 0 || e.sc.gen > 16 {
		t.Fatalf("generation did not restart after wrap: %d", e.sc.gen)
	}
}

package gat

import (
	"fmt"

	"activitytraj/internal/cache"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/grid"
	"activitytraj/internal/invindex"
	"activitytraj/internal/storage"
	"activitytraj/internal/trajectory"
)

// hiclKey addresses one on-disk HICL posting list.
type hiclKey struct {
	level uint8
	act   trajectory.ActivityID
}

// cellITL is the Inverted Trajectory List of one leaf cell: per activity,
// the trajectories having a point with that activity inside the cell, plus
// the cell's activity union (used for virtual points in the lower bound).
type cellITL struct {
	lists map[trajectory.ActivityID]invindex.PostingList
	acts  trajectory.ActivitySet
}

// Index is a built GAT index over a TrajStore.
type Index struct {
	cfg Config
	ts  *evaluate.TrajStore
	g   *grid.Grid

	// hiclMem[l] is the level-l inverted cell list for 1 <= l <= MemLevels:
	// per activity, a hybrid container set of the cells carrying it, so
	// presence probes and sibling masks are O(1) on dense levels.
	hiclMem []map[trajectory.ActivityID]*invindex.Set
	// hiclDir locates the on-disk lists for levels > MemLevels.
	hiclDir   map[hiclKey]storage.SegRef
	hiclStore *storage.Store
	// hicl caches decoded disk-level HICL cell sets across queries and
	// across every engine clone sharing this index (concurrency-safe).
	// Absent lists are cached as nil so repeated probes stay cheap.
	hicl *cache.Sharded[hiclKey, *invindex.Set]
	itl  map[uint32]*cellITL
}

func newHICLCache(entries int) *cache.Sharded[hiclKey, *invindex.Set] {
	return cache.New[hiclKey, *invindex.Set](entries, 0, func(k hiclKey) uint64 {
		return cache.Uint64Hash(uint64(k.level)<<32 | uint64(uint32(k.act)))
	})
}

// CacheStats exposes the HICL decoded-list cache counters.
func (idx *Index) CacheStats() cache.Stats { return idx.hicl.Stats() }

// ResetCache empties the shared decoded-HICL cache (cold-cache
// experiments). It affects every engine over this index.
func (idx *Index) ResetCache() { idx.hicl.Reset() }

// Build constructs the GAT index for the trajectories in ts.
func Build(ts *evaluate.TrajStore, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	ds := ts.Dataset()
	origin, side := grid.FitRegion(ds.Bounds(), 0.01)
	g, err := grid.New(origin, side, cfg.Depth)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		cfg:       cfg,
		ts:        ts,
		g:         g,
		hiclDir:   make(map[hiclKey]storage.SegRef),
		hiclStore: storage.NewMemStore(cfg.PoolPages),
		hicl:      newHICLCache(cfg.HICLCacheEntries),
		itl:       make(map[uint32]*cellITL),
	}

	// ITL: trajectory IDs arrive in ascending order, so PostingList.Append
	// keeps each per-cell list sorted and deduplicated for free.
	for ti := range ds.Trajs {
		tr := &ds.Trajs[ti]
		for _, p := range tr.Pts {
			if len(p.Acts) == 0 {
				continue
			}
			z := g.LeafAt(p.Loc).Z
			cell := idx.itl[z]
			if cell == nil {
				cell = &cellITL{lists: make(map[trajectory.ActivityID]invindex.PostingList)}
				idx.itl[z] = cell
			}
			for _, a := range p.Acts {
				cell.lists[a] = cell.lists[a].Append(uint32(tr.ID))
			}
			cell.acts = cell.acts.Union(p.Acts)
		}
	}

	// HICL: the leaf level is derived from the ITL cells; each coarser
	// level aggregates children into parents.
	levels := make([]map[trajectory.ActivityID][]uint32, cfg.Depth+1)
	leaf := make(map[trajectory.ActivityID][]uint32)
	for z, cell := range idx.itl {
		for a := range cell.lists {
			leaf[a] = append(leaf[a], z)
		}
	}
	levels[cfg.Depth] = leaf
	for l := cfg.Depth - 1; l >= 1; l-- {
		cur := make(map[trajectory.ActivityID][]uint32, len(levels[l+1]))
		for a, zs := range levels[l+1] {
			parents := make([]uint32, len(zs))
			for i, z := range zs {
				parents[i] = z >> 2
			}
			cur[a] = parents
		}
		levels[l] = cur
	}

	memTop := min(cfg.MemLevels, cfg.Depth)
	idx.hiclMem = make([]map[trajectory.ActivityID]*invindex.Set, memTop+1)
	var buf []byte
	for l := 1; l <= cfg.Depth; l++ {
		if l <= memTop {
			m := make(map[trajectory.ActivityID]*invindex.Set, len(levels[l]))
			for a, zs := range levels[l] {
				m[a] = invindex.SetFromUnsorted(zs)
			}
			idx.hiclMem[l] = m
			continue
		}
		for a, zs := range levels[l] {
			set := invindex.SetFromUnsorted(zs)
			buf = set.AppendEncoded(buf[:0])
			ref, err := idx.hiclStore.Append(buf)
			if err != nil {
				return nil, fmt.Errorf("gat: write HICL level %d: %w", l, err)
			}
			idx.hiclDir[hiclKey{level: uint8(l), act: a}] = ref
		}
	}
	if err := idx.hiclStore.Seal(); err != nil {
		return nil, err
	}
	return idx, nil
}

// Grid exposes the index's grid (used by tests and the index report tool).
func (idx *Index) Grid() *grid.Grid { return idx.g }

// Config returns the effective configuration.
func (idx *Index) Config() Config { return idx.cfg }

// Store returns the shared trajectory store.
func (idx *Index) Store() *evaluate.TrajStore { return idx.ts }

// MemBreakdown itemizes the index's main-memory footprint.
type MemBreakdown struct {
	HICL        int64 // in-memory levels of the hierarchical inverted cell list
	ITL         int64 // inverted trajectory lists
	TAS         int64 // trajectory activity sketches (in the TrajStore)
	Directories int64 // on-disk segment directories (HICL + APL + coords)
	Total       int64
}

// MemBytes returns the total in-memory footprint.
func (idx *Index) MemBytes() int64 { return idx.Breakdown().Total }

// Breakdown computes the per-component memory cost reported in Figure 8.
func (idx *Index) Breakdown() MemBreakdown {
	var b MemBreakdown
	for _, m := range idx.hiclMem {
		for _, s := range m {
			b.HICL += 16 + s.MemBytes()
		}
	}
	for _, cell := range idx.itl {
		b.ITL += 48
		for _, l := range cell.lists {
			b.ITL += 16 + l.MemBytes()
		}
		b.ITL += int64(len(cell.acts)) * 4
	}
	b.Directories = int64(len(idx.hiclDir)) * 24
	b.TAS = idx.ts.MemBytes()
	b.Total = b.HICL + b.ITL + b.TAS + b.Directories
	return b
}

// DiskBytes returns the on-disk footprint of the HICL low levels.
func (idx *Index) DiskBytes() int64 { return idx.hiclStore.DiskBytes() }

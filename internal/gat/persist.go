package gat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/geo"
	"activitytraj/internal/grid"
	"activitytraj/internal/invindex"
	"activitytraj/internal/storage"
	"activitytraj/internal/trajectory"
)

// Index persistence: a built GAT index can be written to a stream and
// reloaded against the same trajectory store, so production deployments
// pay the build cost once. The format stores the configuration, grid
// geometry, in-memory HICL levels, ITL, the disk directory and the raw
// pages of the HICL disk store.
//
// Version history:
//
//	1: flat delta+varint posting lists everywhere (in-memory HICL levels
//	   and the disk store's pages).
//	2: HICL cell lists — in memory and on the disk pages — use the hybrid
//	   container Set encoding (invindex.Set), length-prefixed in the
//	   stream. The ITL section is unchanged.
//
// Load accepts both: a version-1 stream is migrated on the fly — its flat
// lists are decoded and re-encoded as Sets into a fresh disk store — so
// indexes persisted before the container change keep working.
const (
	persistMagic   = "GATX"
	persistVersion = 2
)

// ErrBadIndexFormat is returned when loading a stream that is not a
// serialized GAT index.
var ErrBadIndexFormat = errors.New("gat: bad index format")

// WriteTo serializes the index. It returns the number of bytes written.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	put := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		m := binary.PutUvarint(scratch[:], v)
		return put(scratch[:m])
	}
	putF := func(f float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		return put(b[:])
	}

	if err := put([]byte(persistMagic)); err != nil {
		return n, err
	}
	if err := put([]byte{persistVersion}); err != nil {
		return n, err
	}
	cfg := idx.cfg
	flags := uint64(0)
	if cfg.DisableTAS {
		flags |= 1
	}
	if cfg.LooseLowerBound {
		flags |= 2
	}
	for _, v := range []uint64{
		uint64(cfg.Depth), uint64(cfg.MemLevels), uint64(cfg.Lambda),
		uint64(cfg.NearCells), uint64(cfg.PoolPages), flags,
	} {
		if err := putU(v); err != nil {
			return n, err
		}
	}
	region := idx.g.Region()
	for _, f := range []float64{region.MinX, region.MinY, idx.g.Side()} {
		if err := putF(f); err != nil {
			return n, err
		}
	}

	// In-memory HICL levels: per activity a length-prefixed Set blob.
	if err := putU(uint64(len(idx.hiclMem))); err != nil {
		return n, err
	}
	var buf []byte
	for _, level := range idx.hiclMem {
		if err := putU(uint64(len(level))); err != nil {
			return n, err
		}
		for _, a := range sortedActs(level) {
			if err := putU(uint64(a)); err != nil {
				return n, err
			}
			buf = level[a].AppendEncoded(buf[:0])
			if err := putU(uint64(len(buf))); err != nil {
				return n, err
			}
			if err := put(buf); err != nil {
				return n, err
			}
		}
	}

	// ITL.
	if err := putU(uint64(len(idx.itl))); err != nil {
		return n, err
	}
	zs := make([]uint32, 0, len(idx.itl))
	for z := range idx.itl {
		zs = append(zs, z)
	}
	slices.Sort(zs)
	for _, z := range zs {
		cell := idx.itl[z]
		if err := putU(uint64(z)); err != nil {
			return n, err
		}
		if err := putU(uint64(len(cell.lists))); err != nil {
			return n, err
		}
		for _, a := range sortedActs(cell.lists) {
			if err := putU(uint64(a)); err != nil {
				return n, err
			}
			buf = cell.lists[a].AppendEncoded(buf[:0])
			if err := put(buf); err != nil {
				return n, err
			}
		}
	}

	// HICL disk directory + raw store pages.
	if err := putU(uint64(len(idx.hiclDir))); err != nil {
		return n, err
	}
	for _, k := range sortedHiclKeys(idx.hiclDir) {
		ref := idx.hiclDir[k]
		for _, v := range []uint64{uint64(k.level), uint64(k.act), uint64(ref.Page), uint64(ref.Off), uint64(ref.Len)} {
			if err := putU(v); err != nil {
				return n, err
			}
		}
	}
	pages := idx.hiclStore.Pages()
	if err := putU(uint64(pages)); err != nil {
		return n, err
	}
	for p := uint32(0); p < pages; p++ {
		blob, err := idx.hiclStore.Read(storage.SegRef{Page: p, Off: 0, Len: storage.PageSize})
		if err != nil {
			return n, fmt.Errorf("gat: dump page %d: %w", p, err)
		}
		if err := put(blob); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Load reconstructs an index written by WriteTo, binding it to ts (which
// must hold the same dataset the index was built from). Version-1 streams
// are migrated to the current container format on the fly.
func Load(r io.Reader, ts *evaluate.TrajStore) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFormat, err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadIndexFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != 1 && ver != persistVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadIndexFormat, ver)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getF := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}

	var vals [6]uint64
	for i := range vals {
		if vals[i], err = getU(); err != nil {
			return nil, err
		}
	}
	cfg := Config{
		Depth:           int(vals[0]),
		MemLevels:       int(vals[1]),
		Lambda:          int(vals[2]),
		NearCells:       int(vals[3]),
		PoolPages:       int(vals[4]),
		DisableTAS:      vals[5]&1 != 0,
		LooseLowerBound: vals[5]&2 != 0,
	}
	var ox, oy, side float64
	if ox, err = getF(); err != nil {
		return nil, err
	}
	if oy, err = getF(); err != nil {
		return nil, err
	}
	if side, err = getF(); err != nil {
		return nil, err
	}
	g, err := grid.New(geo.Point{X: ox, Y: oy}, side, cfg.Depth)
	if err != nil {
		return nil, err
	}
	// HICLCacheEntries is a runtime knob, not part of the serialized
	// geometry; withDefaults re-derives it (all persisted fields are
	// already post-default values, so they pass through unchanged).
	cfg = cfg.withDefaults()
	idx := &Index{
		cfg:       cfg,
		ts:        ts,
		g:         g,
		hiclDir:   make(map[hiclKey]storage.SegRef),
		hiclStore: storage.NewMemStore(cfg.PoolPages),
		hicl:      newHICLCache(cfg.HICLCacheEntries),
		itl:       make(map[uint32]*cellITL),
	}

	readPostings := func() (invindex.PostingList, error) {
		// Mirror of invindex.AppendEncoded: uvarint count, first element,
		// then gaps — decoded straight off the buffered reader.
		count, err := getU()
		if err != nil {
			return nil, err
		}
		out := make(invindex.PostingList, 0, count)
		prev := uint64(0)
		for i := uint64(0); i < count; i++ {
			d, err := getU()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				prev = d
			} else {
				prev += d
			}
			out = append(out, uint32(prev))
		}
		return out, nil
	}
	var blob []byte
	readSet := func() (*invindex.Set, error) {
		if ver == 1 {
			// Migrate: the v1 stream holds a flat list.
			list, err := readPostings()
			if err != nil {
				return nil, err
			}
			return invindex.SetFromSorted(list), nil
		}
		n, err := getU()
		if err != nil {
			return nil, err
		}
		if n > 1<<30 {
			return nil, fmt.Errorf("%w: set blob of %d bytes", ErrBadIndexFormat, n)
		}
		if uint64(cap(blob)) < n {
			blob = make([]byte, n)
		}
		blob = blob[:n]
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, err
		}
		set, used, err := invindex.DecodeSet(blob)
		if err != nil {
			return nil, err
		}
		if used != len(blob) {
			return nil, fmt.Errorf("%w: set blob has %d trailing bytes", ErrBadIndexFormat, len(blob)-used)
		}
		return set, nil
	}

	nLevels, err := getU()
	if err != nil {
		return nil, err
	}
	idx.hiclMem = make([]map[trajectory.ActivityID]*invindex.Set, nLevels)
	for l := range idx.hiclMem {
		nActs, err := getU()
		if err != nil {
			return nil, err
		}
		if l == 0 && nActs == 0 {
			continue // level 0 is the unused slot
		}
		m := make(map[trajectory.ActivityID]*invindex.Set, nActs)
		for i := uint64(0); i < nActs; i++ {
			a, err := getU()
			if err != nil {
				return nil, err
			}
			set, err := readSet()
			if err != nil {
				return nil, err
			}
			m[trajectory.ActivityID(a)] = set
		}
		idx.hiclMem[l] = m
	}

	nCells, err := getU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nCells; i++ {
		z, err := getU()
		if err != nil {
			return nil, err
		}
		nActs, err := getU()
		if err != nil {
			return nil, err
		}
		cell := &cellITL{lists: make(map[trajectory.ActivityID]invindex.PostingList, nActs)}
		var acts trajectory.ActivitySet
		for j := uint64(0); j < nActs; j++ {
			a, err := getU()
			if err != nil {
				return nil, err
			}
			list, err := readPostings()
			if err != nil {
				return nil, err
			}
			cell.lists[trajectory.ActivityID(a)] = list
			acts = append(acts, trajectory.ActivityID(a))
		}
		acts.Normalize()
		cell.acts = acts
		idx.itl[uint32(z)] = cell
	}

	nDir, err := getU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nDir; i++ {
		var vs [5]uint64
		for j := range vs {
			if vs[j], err = getU(); err != nil {
				return nil, err
			}
		}
		idx.hiclDir[hiclKey{level: uint8(vs[0]), act: trajectory.ActivityID(vs[1])}] =
			storage.SegRef{Page: uint32(vs[2]), Off: uint32(vs[3]), Len: uint32(vs[4])}
	}
	nPages, err := getU()
	if err != nil {
		return nil, err
	}
	loaded := idx.hiclStore
	if ver == 1 {
		// The v1 pages hold flat-list segments; load them into a scratch
		// store and re-encode below.
		loaded = storage.NewMemStore(1)
	}
	page := make([]byte, storage.PageSize)
	for p := uint64(0); p < nPages; p++ {
		if _, err := io.ReadFull(br, page); err != nil {
			return nil, fmt.Errorf("gat: load page %d: %w", p, err)
		}
		if _, err := loaded.Append(page); err != nil {
			return nil, err
		}
	}
	if err := loaded.Seal(); err != nil {
		return nil, err
	}
	if ver == 1 {
		if err := idx.migrateDiskLists(loaded); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// migrateDiskLists rewrites a version-1 disk store (flat posting lists at
// the directory's segment refs) into the current hybrid-container encoding,
// replacing the index's directory refs in place.
func (idx *Index) migrateDiskLists(old *storage.Store) error {
	var buf []byte
	for _, k := range sortedHiclKeys(idx.hiclDir) {
		blob, err := old.Read(idx.hiclDir[k])
		if err != nil {
			return fmt.Errorf("gat: migrate HICL list (level %d, act %d): %w", k.level, k.act, err)
		}
		list, _, err := invindex.DecodePostings(blob)
		if err != nil {
			return fmt.Errorf("gat: migrate HICL list (level %d, act %d): %w", k.level, k.act, err)
		}
		buf = invindex.SetFromSorted(list).AppendEncoded(buf[:0])
		ref, err := idx.hiclStore.Append(buf)
		if err != nil {
			return err
		}
		idx.hiclDir[k] = ref
	}
	return idx.hiclStore.Seal()
}

func sortedActs[V any](m map[trajectory.ActivityID]V) []trajectory.ActivityID {
	out := make([]trajectory.ActivityID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

func sortedHiclKeys(m map[hiclKey]storage.SegRef) []hiclKey {
	keys := make([]hiclKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b hiclKey) int {
		if a.level != b.level {
			return int(a.level) - int(b.level)
		}
		return int(a.act) - int(b.act)
	})
	return keys
}

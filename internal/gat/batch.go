package gat

import (
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// BatchKey implements query.BatchKeyer: the Z-order code of the leaf cell
// holding the query's centroid. Z codes interleave coordinate bits, so
// numerically close keys index spatially close cells — exactly the order
// the cross-query planner wants, because co-located queries expand the
// same cells and touch the same ITL lists and APL pages. Empty queries
// (which Search rejects anyway) key to zero.
func (e *Engine) BatchKey(q query.Query) uint64 {
	if len(q.Pts) == 0 {
		return 0
	}
	var cx, cy float64
	for _, p := range q.Pts {
		cx += p.Loc.X
		cy += p.Loc.Y
	}
	n := float64(len(q.Pts))
	c := geo.Point{X: cx / n, Y: cy / n}
	return uint64(e.idx.g.LeafAt(c).Z)
}

// WarmSuperbatch implements query.SuperbatchWarmer: before a group of
// co-located requests executes, it collects the union of the trajectories
// their query points' leaf-cell ITLs post under the requested activities —
// the candidates those searches are most likely to score first — and
// issues one coalesced, ascending readahead over their APL header pages.
// Each shared page faults into the buffer pool once here instead of once
// per query. Purely a hint: it reads only immutable index structures,
// charges no per-search statistics, and changes no search's results.
func (e *Engine) WarmSuperbatch(reqs []query.Request) {
	var ids []trajectory.TrajID
	for _, req := range reqs {
		for _, p := range req.Query.Pts {
			cell, ok := e.idx.itl[e.idx.g.LeafAt(p.Loc).Z]
			if !ok {
				continue
			}
			for _, a := range p.Acts {
				for _, id := range cell.lists[a] {
					ids = append(ids, trajectory.TrajID(id))
				}
			}
		}
	}
	e.ev.PrefetchHeaders(ids)
}

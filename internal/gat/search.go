package gat

import (
	"context"
	"math"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/geo"
	"activitytraj/internal/grid"
	"activitytraj/internal/invindex"
	"activitytraj/internal/matcher"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Engine wraps an Index with the per-query machinery (evaluator, matcher
// and searcher scratch). It implements query.Engine. An Engine is NOT safe
// for concurrent use — its scratch is reused across searches precisely so
// the hot path allocates nothing — but any number of engines may share one
// (immutable) Index: use Clone or ParallelEngine for concurrent serving.
type Engine struct {
	idx *Index
	// ov, when non-nil, merges a mutable delta layer into every search; see
	// DeltaOverlay and NewEngineWithOverlay.
	ov DeltaOverlay
	// sink, when non-nil, shares the top-k bound with cooperating searches
	// over sibling shards; see SetBoundSink.
	sink query.BoundSink
	// bound and region are the current request's per-search options,
	// installed by Search: bound seeds the pruning threshold (+Inf when
	// unset), region restricts matching spatially (nil when unset).
	bound  float64
	region *geo.Rect
	ev     *evaluate.Evaluator
	m      matcher.Matcher
	stats  query.SearchStats
	sc     searcher
}

// NewEngine returns a search engine over a built index.
func NewEngine(idx *Index) *Engine {
	ev := evaluate.NewEvaluator(idx.ts)
	ev.UseSketch = !idx.cfg.DisableTAS
	e := &Engine{idx: idx, ev: ev}
	e.sc.e = e
	return e
}

// SetBoundSink attaches (or, with nil, detaches) a shared bound for
// cooperating searches: every scored result is offered to the sink, and the
// engine prunes against min(local k-th distance, sink.Threshold()) — both
// for the per-candidate scoring threshold and for the Algorithm-2
// termination test. Because the sink's threshold is an upper bound on the
// final global k-th distance (the global top-k over a superset can only be
// tighter than any shard-local one), pruning stays exact: any candidate or
// unseen trajectory pruned by the shared bound is strictly farther than the
// final global k-th result. The sink must be safe for the concurrent use
// the cooperating searches make of it; the engine itself remains
// single-goroutine.
func (e *Engine) SetBoundSink(s query.BoundSink) { e.sink = s }

// Name implements query.Engine.
func (e *Engine) Name() string { return "GAT" }

// MemBytes implements query.Engine.
func (e *Engine) MemBytes() int64 { return e.idx.MemBytes() }

// LastStats implements query.Engine.
//
// Deprecated: read Response.Stats.
func (e *Engine) LastStats() query.SearchStats { return e.stats }

// SearchATSQ implements query.Engine (Algorithm 1 with Dmm).
//
// Deprecated: use Search.
func (e *Engine) SearchATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchOATSQ implements query.Engine. Candidate retrieval and the lower
// bound are unchanged — by Lemma 3 Dmm lower-bounds Dmom, so the same
// termination test applies; validation adds the MIB order filter and the
// distance is Algorithm 4's Dmom.
//
// Deprecated: use Search.
func (e *Engine) SearchOATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k, Ordered: true})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// searcher holds the per-query state of Algorithm 1 in engine-owned scratch
// that is recycled across searches:
//
//   - pqs merges the paper's global cell priority queue with the per-point
//     cellsn structures — one hand-rolled heap per query point, no
//     interface{} boxing;
//   - seen replaces the per-search map[TrajID]struct{} with a dense
//     generation-stamped array: seen[id] == gen marks id as retrieved this
//     search, and bumping gen invalidates the whole array in O(1).
type searcher struct {
	e *Engine
	q query.Query
	// ov is the engine's overlay for the duration of one search, nil when
	// absent or currently empty — probing an empty delta on every cell
	// expansion would tax the static hot path for nothing.
	ov DeltaOverlay
	// region mirrors the request's spatial filter for the duration of one
	// search: cells disjoint from it never enter a frontier, so only
	// trajectories with an in-region relevant point are retrieved — exact
	// under the filter's semantics because the evaluator drops out-of-
	// region points from every candidate row before matching.
	region    *geo.Rect
	pqs       []pointQueue
	seen      []uint32
	gen       uint32
	cands     []trajectory.TrajID
	virtual   []matcher.WeightedPoint
	nearBuf   []nearCell
	deltaBuf  []uint32
	overflown bool
	exhausted bool
}

// begin readies the scratch for a new search.
func (s *searcher) begin(q query.Query) {
	s.q = q
	s.region = s.e.region
	s.ov = s.e.ov
	if s.ov != nil && s.ov.Empty() {
		s.ov = nil
	}
	n := s.e.idx.ts.NumTrajs()
	if ov := s.ov; ov != nil {
		if m := ov.IDSpace(); m > n {
			n = m
		}
	}
	if len(s.seen) < n {
		s.seen = make([]uint32, n)
		s.gen = 0
	}
	s.gen++
	if s.gen == 0 { // wrapped: stale stamps could collide, wipe them
		clear(s.seen)
		s.gen = 1
	}
	if cap(s.pqs) < len(q.Pts) {
		grown := make([]pointQueue, len(q.Pts))
		copy(grown, s.pqs)
		s.pqs = grown
	}
	s.pqs = s.pqs[:len(q.Pts)]
	for i := range s.pqs {
		s.pqs[i].reset()
	}
	s.cands = s.cands[:0]
	s.overflown = false
	s.exhausted = false
}

// Search implements query.Engine: Algorithm 1 with the Dmm distance, or —
// with req.Ordered — the Dmom distance behind the same retrieval and
// termination bound (Lemma 3). Cancellation is honored between λ-batches
// (the per-candidate hot path never reads the context), and an already
// cancelled or expired ctx returns before any disk page is touched. On
// cancellation the partial top-k collected so far is returned with
// Response.Truncated set, alongside ctx's error.
func (e *Engine) Search(ctx context.Context, req query.Request) (query.Response, error) {
	q, ordered := req.Query, req.Ordered
	if err := q.Validate(); err != nil {
		return query.Response{}, err
	}
	if err := req.ValidateSpan(); err != nil {
		return query.Response{}, err
	}
	e.stats = query.SearchStats{}
	if err := ctx.Err(); err != nil {
		return query.Response{Truncated: true}, err
	}
	e.bound = req.Bound()
	e.region = req.Region
	e.ev.SetRegion(req.Region)
	// Subtrajectory mode changes only the evaluator's scoring: retrieval and
	// the Algorithm-2 termination bound are untouched because Dlb lower-
	// bounds the whole-trajectory Dmm of every unseen trajectory, which in
	// turn lower-bounds its span-constrained distance (restricting a match
	// to a window can only raise its cost). The per-cell bound therefore
	// stays admissible for D_sub, and the shared BoundSink threshold remains
	// an upper bound on the final k-th D_sub — pruning stays exact.
	e.ev.SetSpan(req.Subtrajectory, req.MinSpanPoints, req.MaxSpanPoints)
	s := &e.sc
	s.begin(q)
	s.initQueue()

	topk := query.NewTopK(req.K)
	baseN := e.idx.ts.NumTrajs()
	for {
		if err := ctx.Err(); err != nil {
			return query.Response{Results: topk.Results(), Stats: e.stats, Truncated: true}, err
		}
		cands := s.retrieveBatch(e.idx.cfg.Lambda)
		e.stats.Batches++
		dlb := s.lowerBound()
		// Score the batch in APL page order with a pool readahead hint:
		// the candidates arrived in heap-pop (distance) order, which has no
		// page locality; the top-k set is order-independent, so batching
		// for locality is free.
		e.ev.PrefetchBatch(cands)
		for _, tid := range cands {
			e.stats.Candidates++
			if int(tid) >= baseN {
				e.stats.DeltaCandidates++
			}
			var d float64
			var out evaluate.Outcome
			var err error
			if ordered {
				d, out, err = e.ev.ScoreOATSQ(q, tid, e.effThreshold(topk), &e.stats)
			} else {
				d, out, err = e.ev.ScoreATSQ(q, tid, e.effThreshold(topk), &e.stats)
			}
			if err != nil {
				return query.Response{Stats: e.stats}, err
			}
			if out == evaluate.Scored {
				topk.Offer(query.Result{ID: tid, Dist: d})
				if e.sink != nil {
					e.sink.Offer(query.Result{ID: tid, Dist: d})
				}
			}
		}
		if e.effThreshold(topk) < dlb {
			break
		}
		if s.exhausted && len(cands) == 0 {
			break
		}
	}
	resp := query.Response{Results: topk.Results(), Stats: e.stats}
	if req.WithMatches {
		// The evaluator re-reads each result trajectory once and the
		// matcher re-derives the argmin covers behind the reported
		// distance; the fetch traffic is part of the request.
		if err := e.ev.FillMatches(ctx, q, ordered, &resp, &e.stats); err != nil {
			return resp, err
		}
	}
	return resp, nil
}

// MatchesFor re-derives the per-query-point matched trajectory point
// indexes for a single known result of req's query — the hook the sharded
// engine uses to answer WithMatches after its scatter-gather merge, with id
// local to this engine's index. The request's Region and span options are
// installed first so the covers match what the search scored. Fetch
// traffic is added to stats.
func (e *Engine) MatchesFor(req query.Request, id trajectory.TrajID, stats *query.SearchStats) ([][]int32, error) {
	e.ev.SetRegion(req.Region)
	e.ev.SetSpan(req.Subtrajectory, req.MinSpanPoints, req.MaxSpanPoints)
	return e.ev.MatchSets(req.Query, id, req.Ordered, stats)
}

// ScoreFor scores a single trajectory against req's query under an exact
// pruning threshold — the single-candidate core of the search loop, used by
// the subscription hub to test one freshly inserted trajectory against a
// standing query. The request's Region and span options are installed
// first, so the outcome is exactly what a full search would compute for
// this candidate: a distance with evaluate.Scored when d <= threshold holds
// finitely (the matcher abandons only STRICTLY above threshold, so a
// candidate at exactly the bound still scores fully), a non-Scored outcome
// otherwise. Fetch traffic is added to stats.
func (e *Engine) ScoreFor(req query.Request, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, evaluate.Outcome, error) {
	e.ev.SetRegion(req.Region)
	e.ev.SetSpan(req.Subtrajectory, req.MinSpanPoints, req.MaxSpanPoints)
	if req.Ordered {
		return e.ev.ScoreOATSQ(req.Query, id, threshold, stats)
	}
	return e.ev.ScoreATSQ(req.Query, id, threshold, stats)
}

// effThreshold returns the tightest exact pruning bound available: the
// local k-th distance, tightened by the shared global bound when a sink is
// attached and by the request's InitialBound when set. All three are upper
// bounds on the distance any reportable result may have, so the minimum
// prunes exactly (the matcher abandons only when a partial sum strictly
// exceeds the threshold, so candidates at exactly the bound still score
// fully and tie-break by ID).
func (e *Engine) effThreshold(topk *query.TopK) float64 {
	th := topk.Threshold()
	if e.sink != nil {
		if g := e.sink.Threshold(); g < th {
			th = g
		}
	}
	if e.bound < th {
		th = e.bound
	}
	return th
}

// cellVisible reports whether the request's region filter (if any) lets a
// cell contribute matches: a cell disjoint from the region holds no point
// that may match, so its whole subtree is pruned from the frontier.
func (s *searcher) cellVisible(cell grid.Cell) bool {
	return s.region == nil || s.e.idx.g.CellRect(cell).Intersects(*s.region)
}

// initQueue seeds each query point's frontier with every level-1 cell
// containing any of its activities (the "highest level of HICL").
func (s *searcher) initQueue() {
	g := s.e.idx.g
	for qi, qp := range s.q.Pts {
		for _, cell := range g.TopCells() {
			if !s.cellVisible(cell) {
				continue
			}
			mask := s.cellMask(cell, qp.Acts)
			if mask == 0 {
				continue
			}
			s.pqs[qi].push(nearCell{dist: g.MinDist(qp.Loc, cell), cell: cell, mask: mask})
		}
	}
}

// minQueue returns the index of the query point whose frontier head is the
// globally nearest cell (ties: lowest level, Z, then query point), or -1
// when every frontier is empty.
func (s *searcher) minQueue() int {
	best := -1
	for i := range s.pqs {
		if s.pqs[i].Len() == 0 {
			continue
		}
		if best < 0 || nearLess(s.pqs[i].head(), s.pqs[best].head()) {
			best = i
		}
	}
	return best
}

// hiclList fetches the HICL cell set for (level, act): the in-memory
// levels are consulted directly; disk-level sets go through the index's
// shared decoded-set cache, so across queries (and across engine clones)
// each set is read and decoded once while resident. Page and cache
// traffic is charged to the engine's stats at the point of the fetch so
// per-search accounting stays exact under concurrent serving; absent lists
// are cached as nil so repeated probes stay cheap.
func (s *searcher) hiclList(level int, a trajectory.ActivityID) *invindex.Set {
	idx := s.e.idx
	if level <= len(idx.hiclMem)-1 {
		return idx.hiclMem[level][a]
	}
	key := hiclKey{level: uint8(level), act: a}
	if set, ok := idx.hicl.Get(key); ok {
		s.e.stats.CacheHits++
		return set
	}
	s.e.stats.CacheMisses++
	ref, ok := idx.hiclDir[key]
	if !ok {
		idx.hicl.Put(key, nil)
		return nil
	}
	s.e.stats.PageReads += ref.PageSpan()
	blob, err := idx.hiclStore.Read(ref)
	if err != nil {
		// The store is sealed and append-only; a read failure indicates
		// corruption, which Build would have surfaced. Treat as absent.
		idx.hicl.Put(key, nil)
		return nil
	}
	set, _, err := invindex.DecodeSet(blob)
	if err != nil {
		idx.hicl.Put(key, nil)
		return nil
	}
	s.e.stats.BytesDecoded += int64(len(blob))
	idx.hicl.Put(key, set)
	return set
}

// cellMask returns which of acts are present in cell, per the HICL merged
// with the delta overlay (if any).
func (s *searcher) cellMask(cell grid.Cell, acts trajectory.ActivitySet) uint32 {
	ov := s.ov
	var mask uint32
	for b, a := range acts {
		if s.hiclList(int(cell.Level), a).Contains(cell.Z) ||
			(ov != nil && ov.CellHasAct(int(cell.Level), cell.Z, a)) {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// childMasks returns, for each of the four children of cell, the bitmask of
// query activities present (0 when the child can be pruned), merging the
// base HICL with the delta overlay. The four siblings share one container
// (and in bitmap form one word), so each activity costs a single Mask4
// probe.
func (s *searcher) childMasks(cell grid.Cell, acts trajectory.ActivitySet) [4]uint32 {
	var masks [4]uint32
	base := cell.Z << 2
	childLevel := int(cell.Level) + 1
	for b, a := range acts {
		m4 := s.hiclList(childLevel, a).Mask4(base)
		if m4 == 0 {
			continue
		}
		bit := uint32(1) << uint(b)
		for ci := uint32(0); ci < 4; ci++ {
			if m4&(1<<ci) != 0 {
				masks[ci] |= bit
			}
		}
	}
	if ov := s.ov; ov != nil {
		for b, a := range acts {
			bit := uint32(1) << uint(b)
			for ci := uint32(0); ci < 4; ci++ {
				if masks[ci]&bit == 0 && ov.CellHasAct(childLevel, base+ci, a) {
					masks[ci] |= bit
				}
			}
		}
	}
	return masks
}

// emit appends tid to out unless it is tombstoned (tombs pre-computes
// whether any tombstones exist this search) or already retrieved — the one
// candidate-emission rule shared by the overflow, base-ITL and delta-ITL
// paths.
func (s *searcher) emit(out []trajectory.TrajID, tid uint32, tombs bool) []trajectory.TrajID {
	if tombs && s.ov.Tombstoned(trajectory.TrajID(tid)) {
		return out
	}
	if s.seen[tid] != s.gen {
		s.seen[tid] = s.gen
		out = append(out, trajectory.TrajID(tid))
	}
	return out
}

// retrieveBatch runs the best-first expansion until at least lambda new
// candidate trajectories are collected (Section V-A) or every frontier
// empties. The returned slice aliases searcher scratch. With a delta
// overlay, leaf-cell pulls merge the overlay's trajectory lists with the
// base ITL, tombstoned trajectories are dropped here (keeping the merged
// search exact without inflating k), and overlay trajectories that fall
// outside the grid region — whose clamped cells cannot bound their true
// distance — are retrieved unconditionally in the first batch.
func (s *searcher) retrieveBatch(lambda int) []trajectory.TrajID {
	g := s.e.idx.g
	depth := s.e.idx.cfg.Depth
	ov := s.ov
	tombs := ov != nil && ov.HasTombstones()
	out := s.cands[:0]
	if ov != nil && !s.overflown {
		s.overflown = true
		s.deltaBuf = ov.AppendOverflow(s.deltaBuf[:0])
		for _, tid := range s.deltaBuf {
			out = s.emit(out, tid, tombs)
		}
	}
	for len(out) < lambda {
		qi := s.minQueue()
		if qi < 0 {
			s.exhausted = true
			break
		}
		c := s.pqs[qi].pop()
		s.e.stats.PQPops++
		qp := s.q.Pts[qi]
		if int(c.cell.Level) < depth {
			masks := s.childMasks(c.cell, qp.Acts)
			children := c.cell.Children()
			for ci, mask := range masks {
				if mask == 0 {
					continue
				}
				child := children[ci]
				if !s.cellVisible(child) {
					continue
				}
				s.pqs[qi].push(nearCell{dist: g.MinDist(qp.Loc, child), cell: child, mask: mask})
			}
			continue
		}
		// Leaf cell: pull matching trajectories from its ITL, merged with
		// the delta overlay's list for the same (cell, activity).
		itl := s.e.idx.itl[c.cell.Z]
		if itl == nil && ov == nil {
			continue
		}
		for _, a := range qp.Acts {
			if itl != nil {
				for _, tid := range itl.lists[a] {
					out = s.emit(out, tid, tombs)
				}
			}
			if ov != nil {
				s.deltaBuf = ov.AppendCellTrajs(s.deltaBuf[:0], c.cell.Z, a)
				for _, tid := range s.deltaBuf {
					out = s.emit(out, tid, tombs)
				}
			}
		}
	}
	s.cands = out
	return out
}

// lowerBound computes Dlb for all unseen trajectories. With the loose
// option it is the frontier's head distance; otherwise Algorithm 2:
// per query point, the better of (a) the minimum point match distance over
// virtual points standing in for the m nearest unvisited cells and (b) the
// distance of the (m+1)-th unvisited cell, summed over query points. An
// exhausted query point contributes +Inf — every trajectory containing its
// activities has been seen.
func (s *searcher) lowerBound() float64 {
	if s.e.idx.cfg.LooseLowerBound {
		qi := s.minQueue()
		if qi < 0 {
			return math.Inf(1)
		}
		return s.pqs[qi].head().dist
	}
	m := s.e.idx.cfg.NearCells
	var sum float64
	for qi := range s.q.Pts {
		qp := s.q.Pts[qi]
		cells := s.pqs[qi].firstM(s.nearBuf[:0], m+1)
		s.nearBuf = cells[:0]
		if len(cells) == 0 {
			return math.Inf(1)
		}
		s.virtual = s.virtual[:0]
		for _, c := range cells[:min(m, len(cells))] {
			s.virtual = append(s.virtual, matcher.WeightedPoint{Dist: c.dist, Mask: c.mask})
		}
		dvirt := s.e.m.MinPointMatchSorted(len(qp.Acts), s.virtual)
		bound := dvirt
		if len(cells) > m && cells[m].dist < bound {
			bound = cells[m].dist
		}
		if math.IsInf(bound, 1) {
			return math.Inf(1)
		}
		sum += bound
	}
	return sum
}

// Clone returns an independent engine over the same (immutable) index and
// delta overlay, for concurrent query execution: each goroutine owns one
// engine, while the index, its HICL cache, the trajectory store and its APL
// cache are shared. A bound sink is NOT inherited — it is a per-search
// attachment the sharded router manages on each engine it owns.
func (e *Engine) Clone() query.Engine { return NewEngineWithOverlay(e.idx, e.ov) }

// ResetCaches empties the index's shared decoded-HICL cache so cold-cache
// measurements are fair across engines and workloads (the harness calls
// this alongside TrajStore.ResetPool).
func (e *Engine) ResetCaches() { e.idx.ResetCache() }

package gat

import (
	"container/heap"
	"math"
	"sort"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/grid"
	"activitytraj/internal/invindex"
	"activitytraj/internal/matcher"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Engine wraps an Index with the per-query machinery (evaluator, matcher
// scratch). It implements query.Engine. Not safe for concurrent use.
type Engine struct {
	idx   *Index
	ev    *evaluate.Evaluator
	m     matcher.Matcher
	stats query.SearchStats
}

// NewEngine returns a search engine over a built index.
func NewEngine(idx *Index) *Engine {
	ev := evaluate.NewEvaluator(idx.ts)
	ev.UseSketch = !idx.cfg.DisableTAS
	return &Engine{idx: idx, ev: ev}
}

// Name implements query.Engine.
func (e *Engine) Name() string { return "GAT" }

// MemBytes implements query.Engine.
func (e *Engine) MemBytes() int64 { return e.idx.MemBytes() }

// LastStats implements query.Engine.
func (e *Engine) LastStats() query.SearchStats { return e.stats }

// SearchATSQ implements query.Engine (Algorithm 1 with Dmm).
func (e *Engine) SearchATSQ(q query.Query, k int) ([]query.Result, error) {
	return e.search(q, k, false)
}

// SearchOATSQ implements query.Engine. Candidate retrieval and the lower
// bound are unchanged — by Lemma 3 Dmm lower-bounds Dmom, so the same
// termination test applies; validation adds the MIB order filter and the
// distance is Algorithm 4's Dmom.
func (e *Engine) SearchOATSQ(q query.Query, k int) ([]query.Result, error) {
	return e.search(q, k, true)
}

// cellEntry is one priority-queue element: a cell to visit on behalf of
// query point qi, keyed by the minimum distance from the cell to q_i.
type cellEntry struct {
	dist float64
	cell grid.Cell
	qi   int32
	mask uint32 // query activities of q_i present in the cell
}

type cellHeap []cellEntry

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].cell.Level != h[j].cell.Level {
		return h[i].cell.Level < h[j].cell.Level
	}
	if h[i].cell.Z != h[j].cell.Z {
		return h[i].cell.Z < h[j].cell.Z
	}
	return h[i].qi < h[j].qi
}
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cellEntry)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// searcher holds the per-query state of Algorithm 1.
type searcher struct {
	idx       *Engine
	q         query.Query
	pq        cellHeap
	near      []*nearSet
	seen      map[trajectory.TrajID]struct{}
	hiclCache map[hiclKey]invindex.PostingList
	exhausted bool
}

func (e *Engine) search(q query.Query, k int, ordered bool) ([]query.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.stats = query.SearchStats{}
	poolBase := e.idx.ts.PoolStats()
	hiclBase := e.idx.hiclStore.Stats()

	s := &searcher{
		idx:       e,
		q:         q,
		near:      make([]*nearSet, len(q.Pts)),
		seen:      make(map[trajectory.TrajID]struct{}),
		hiclCache: make(map[hiclKey]invindex.PostingList),
	}
	for i := range s.near {
		s.near[i] = newNearSet()
	}
	s.initQueue()

	topk := query.NewTopK(k)
	for {
		cands := s.retrieveBatch(e.idx.cfg.Lambda)
		e.stats.Batches++
		dlb := s.lowerBound()
		for _, tid := range cands {
			e.stats.Candidates++
			var d float64
			var out evaluate.Outcome
			var err error
			if ordered {
				d, out, err = e.ev.ScoreOATSQ(q, tid, topk.Threshold(), &e.stats)
			} else {
				d, out, err = e.ev.ScoreATSQ(q, tid, topk.Threshold(), &e.stats)
			}
			if err != nil {
				return nil, err
			}
			if out == evaluate.Scored {
				topk.Offer(query.Result{ID: tid, Dist: d})
			}
		}
		if topk.Threshold() < dlb {
			break
		}
		if s.exhausted && len(cands) == 0 {
			break
		}
	}
	pool := e.idx.ts.PoolStats().Sub(poolBase)
	hicl := e.idx.hiclStore.Stats().Sub(hiclBase)
	e.stats.PageReads = int(pool.Touched + hicl.Touched)
	return topk.Results(), nil
}

// initQueue seeds the priority queue with every level-1 cell containing any
// of each query point's activities (the "highest level of HICL").
func (s *searcher) initQueue() {
	g := s.idx.idx.g
	for qi, qp := range s.q.Pts {
		for _, cell := range g.TopCells() {
			mask := s.cellMask(cell, qp.Acts)
			if mask == 0 {
				continue
			}
			ce := cellEntry{dist: g.MinDist(qp.Loc, cell), cell: cell, qi: int32(qi), mask: mask}
			heap.Push(&s.pq, ce)
			s.near[qi].Add(nearCell{dist: ce.dist, cell: cell, mask: mask})
		}
	}
}

// hiclList fetches the HICL posting list for (level, act), consulting the
// in-memory levels directly and caching disk-level fetches per search.
func (s *searcher) hiclList(level int, a trajectory.ActivityID) invindex.PostingList {
	idx := s.idx.idx
	if level <= len(idx.hiclMem)-1 {
		return idx.hiclMem[level][a]
	}
	key := hiclKey{level: uint8(level), act: a}
	if l, ok := s.hiclCache[key]; ok {
		return l
	}
	ref, ok := idx.hiclDir[key]
	if !ok {
		s.hiclCache[key] = nil
		return nil
	}
	blob, err := idx.hiclStore.Read(ref)
	if err != nil {
		// The store is sealed and append-only; a read failure indicates
		// corruption, which Build would have surfaced. Treat as absent.
		s.hiclCache[key] = nil
		return nil
	}
	list, _, err := invindex.DecodePostings(blob)
	if err != nil {
		s.hiclCache[key] = nil
		return nil
	}
	s.hiclCache[key] = list
	return list
}

// cellMask returns which of acts are present in cell, per the HICL.
func (s *searcher) cellMask(cell grid.Cell, acts trajectory.ActivitySet) uint32 {
	var mask uint32
	for b, a := range acts {
		if s.hiclList(int(cell.Level), a).Contains(cell.Z) {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// childMasks returns, for each of the four children of cell, the bitmask of
// query activities present (0 when the child can be pruned).
func (s *searcher) childMasks(cell grid.Cell, acts trajectory.ActivitySet) [4]uint32 {
	var masks [4]uint32
	base := cell.Z << 2
	childLevel := int(cell.Level) + 1
	for b, a := range acts {
		list := s.hiclList(childLevel, a)
		if len(list) == 0 {
			continue
		}
		i := sort.Search(len(list), func(i int) bool { return list[i] >= base })
		for ; i < len(list) && list[i] <= base+3; i++ {
			masks[list[i]-base] |= 1 << uint(b)
		}
	}
	return masks
}

// retrieveBatch runs the best-first expansion until at least lambda new
// candidate trajectories are collected (Section V-A) or the queue empties.
func (s *searcher) retrieveBatch(lambda int) []trajectory.TrajID {
	g := s.idx.idx.g
	depth := s.idx.idx.cfg.Depth
	var out []trajectory.TrajID
	for len(out) < lambda {
		if s.pq.Len() == 0 {
			s.exhausted = true
			break
		}
		e := heap.Pop(&s.pq).(cellEntry)
		s.idx.stats.PQPops++
		s.near[e.qi].Remove(e.cell)
		qp := s.q.Pts[e.qi]
		if int(e.cell.Level) < depth {
			masks := s.childMasks(e.cell, qp.Acts)
			children := e.cell.Children()
			for ci, mask := range masks {
				if mask == 0 {
					continue
				}
				child := children[ci]
				ce := cellEntry{dist: g.MinDist(qp.Loc, child), cell: child, qi: e.qi, mask: mask}
				heap.Push(&s.pq, ce)
				s.near[e.qi].Add(nearCell{dist: ce.dist, cell: child, mask: mask})
			}
			continue
		}
		// Leaf cell: pull matching trajectories from its ITL.
		itl := s.idx.idx.itl[e.cell.Z]
		if itl == nil {
			continue
		}
		for _, a := range qp.Acts {
			for _, tid := range itl.lists[a] {
				id := trajectory.TrajID(tid)
				if _, ok := s.seen[id]; !ok {
					s.seen[id] = struct{}{}
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// lowerBound computes Dlb for all unseen trajectories. With the loose
// option it is the priority queue's head distance; otherwise Algorithm 2:
// per query point, the better of (a) the minimum point match distance over
// virtual points standing in for the m nearest unvisited cells and (b) the
// distance of the (m+1)-th unvisited cell, summed over query points. An
// exhausted query point contributes +Inf — every trajectory containing its
// activities has been seen.
func (s *searcher) lowerBound() float64 {
	if s.idx.idx.cfg.LooseLowerBound {
		if s.pq.Len() == 0 {
			return math.Inf(1)
		}
		return s.pq[0].dist
	}
	m := s.idx.idx.cfg.NearCells
	var sum float64
	virtual := make([]matcher.WeightedPoint, 0, m)
	for qi, qp := range s.q.Pts {
		cells := s.near[qi].FirstM(m + 1)
		if len(cells) == 0 {
			return math.Inf(1)
		}
		virtual = virtual[:0]
		for _, c := range cells[:min(m, len(cells))] {
			virtual = append(virtual, matcher.WeightedPoint{Dist: c.dist, Mask: c.mask})
		}
		dvirt := s.idx.m.MinPointMatchSorted(len(qp.Acts), virtual)
		bound := dvirt
		if len(cells) > m && cells[m].dist < bound {
			bound = cells[m].dist
		}
		if math.IsInf(bound, 1) {
			return math.Inf(1)
		}
		sum += bound
	}
	return sum
}

// Clone returns an independent engine over the same (immutable) index, for
// concurrent query execution: each goroutine owns one engine.
func (e *Engine) Clone() query.Engine { return NewEngine(e.idx) }

package gat

// MemLevelsForBudget implements the paper's memory-budget rule for the
// HICL (Section IV): given a main-memory budget of budgetBytes for the
// in-memory levels and an activity vocabulary of cardinality vocabSize,
// keep in memory the largest number of levels h such that the worst-case
// cell count of levels 1..h fits:
//
//	Σ_{i=1..h} 4^i · C ≤ B   ⇒   h = ⌊log₄(3B/(4C) + 1)⌋
//
// where each (cell, activity) pair is charged one posting-list slot. The
// result is clamped to [1, depth]. Pass the returned value as
// Config.MemLevels.
func MemLevelsForBudget(budgetBytes int64, vocabSize, depth int) int {
	if vocabSize < 1 {
		vocabSize = 1
	}
	// Charge 4 bytes per worst-case (cell, activity) posting entry.
	slots := budgetBytes / 4
	h := 0
	var cum int64
	for l := 1; l <= depth; l++ {
		cells := int64(1) << (2 * uint(l)) // 4^l
		cum += cells * int64(vocabSize)
		if cum > slots {
			break
		}
		h = l
	}
	if h < 1 {
		h = 1
	}
	return h
}

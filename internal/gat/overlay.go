package gat

import (
	"activitytraj/internal/evaluate"
	"activitytraj/internal/trajectory"
)

// DeltaOverlay is the read contract a mutable delta layer presents to the
// GAT searcher so queries stay exact over base ∪ delta without touching the
// immutable base structures. Candidate generation consults the overlay's
// cell lists alongside the base HICL/ITL at every expansion step, so the
// Algorithm 2 lower bound covers unseen delta trajectories exactly like
// base ones; candidate evaluation goes through the embedded DeltaSource.
//
// Tombstones mask deleted trajectories from BOTH layers at candidate-
// collection time, which keeps the merged search exact without inflating k.
//
// Implementations must be stable for the duration of one search; the
// dynamic index guarantees this by excluding writers while a search holds
// its read lock.
type DeltaOverlay interface {
	evaluate.DeltaSource

	// IDSpace returns one past the highest trajectory ID served by either
	// layer; the searcher sizes its seen-set to it.
	IDSpace() int
	// Empty reports whether the overlay currently contributes nothing (no
	// trajectories, no tombstones). The searcher checks it once per search
	// and skips every overlay probe when true, so a dynamic index whose
	// delta has just been compacted away searches at static-index cost.
	Empty() bool
	// CellHasAct reports whether the delta layer has a point with activity
	// a inside cell (level, z) — the overlay side of the HICL probe.
	CellHasAct(level int, z uint32, a trajectory.ActivityID) bool
	// AppendCellTrajs appends the IDs of delta trajectories having a point
	// with activity a inside leaf cell z — the overlay side of the ITL.
	AppendCellTrajs(dst []uint32, z uint32, a trajectory.ActivityID) []uint32
	// Tombstoned reports whether trajectory id has been deleted.
	Tombstoned(id trajectory.TrajID) bool
	// HasTombstones reports whether any deletes are pending, letting the
	// searcher skip per-candidate tombstone probes on the common path.
	HasTombstones() bool
	// AppendOverflow appends the IDs of delta trajectories with a point
	// outside the base grid's region. Their clamped cells cannot bound
	// their true distances, so the searcher retrieves them unconditionally
	// in the first batch (they are few; validation filters them fast).
	AppendOverflow(dst []uint32) []uint32
}

// NewEngineWithOverlay returns a search engine over a built index merged
// with a delta overlay (nil behaves exactly like NewEngine). Results are
// exact over the union of both layers minus tombstoned trajectories.
func NewEngineWithOverlay(idx *Index, ov DeltaOverlay) *Engine {
	e := NewEngine(idx)
	e.ov = ov
	if ov != nil {
		e.ev.SetDelta(ov)
	}
	return e
}

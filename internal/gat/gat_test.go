package gat

import (
	"math"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/grid"
	"activitytraj/internal/queries"
	"activitytraj/internal/trajectory"
)

func buildSmall(t testing.TB, cfg Config) (*trajectory.Dataset, *evaluate.TrajStore, *Index) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "gat-test", Seed: 21, NumTrajectories: 200, NumVenues: 500,
		VocabSize: 250, RegionW: 30, RegionH: 30, Clusters: 5, TrajLenMean: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, ts, idx
}

// TestHICLHierarchyConsistency: an activity is listed for a cell at level l
// exactly when it is listed for one of the cell's children at level l+1,
// and the leaf level must agree with the ITL.
func TestHICLHierarchyConsistency(t *testing.T) {
	ds, _, idx := buildSmall(t, Config{Depth: 6, MemLevels: 6}) // all in memory
	_ = ds
	for l := 1; l < idx.cfg.Depth; l++ {
		for a, list := range idx.hiclMem[l] {
			childList := idx.hiclMem[l+1][a]
			for _, z := range list.Elements() {
				found := false
				for _, cz := range []uint32{z << 2, z<<2 + 1, z<<2 + 2, z<<2 + 3} {
					if childList.Contains(cz) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("level %d act %d cell %d has no child in level %d", l, a, z, l+1)
				}
			}
			for _, cz := range childList.Elements() {
				if !list.Contains(cz >> 2) {
					t.Fatalf("level %d act %d cell %d missing parent at level %d", l+1, a, cz, l)
				}
			}
		}
	}
	// Leaf level vs ITL.
	leaf := idx.hiclMem[idx.cfg.Depth]
	for z, cell := range idx.itl {
		for a := range cell.lists {
			if !leaf[a].Contains(z) {
				t.Fatalf("leaf HICL missing cell %d for act %d", z, a)
			}
		}
	}
}

// TestITLCompleteness: every (trajectory, activity, leaf cell) triple in
// the dataset must appear in the ITL.
func TestITLCompleteness(t *testing.T) {
	ds, _, idx := buildSmall(t, Config{Depth: 6, MemLevels: 6})
	for ti := range ds.Trajs {
		tr := &ds.Trajs[ti]
		for _, p := range tr.Pts {
			z := idx.g.LeafAt(p.Loc).Z
			cell := idx.itl[z]
			if cell == nil {
				t.Fatalf("no ITL for cell %d", z)
			}
			for _, a := range p.Acts {
				if !cell.lists[a].Contains(uint32(tr.ID)) {
					t.Fatalf("ITL cell %d act %d missing traj %d", z, a, tr.ID)
				}
				if !cell.acts.Contains(a) {
					t.Fatalf("cell %d act union missing %d", z, a)
				}
			}
		}
	}
}

// TestDiskLevelsUsed: with MemLevels < Depth the deep levels live on disk
// and are still consulted correctly (results already cross-checked in
// enginetest; here we assert the directory is populated and readable).
func TestDiskLevelsUsed(t *testing.T) {
	_, _, idx := buildSmall(t, Config{Depth: 7, MemLevels: 3})
	if len(idx.hiclDir) == 0 {
		t.Fatal("no disk-resident HICL lists despite MemLevels < Depth")
	}
	if idx.DiskBytes() <= 0 {
		t.Fatal("disk bytes must be positive")
	}
	for key, ref := range idx.hiclDir {
		if int(key.level) <= 3 {
			t.Fatalf("level %d leaked to disk", key.level)
		}
		blob, err := idx.hiclStore.Read(ref)
		if err != nil {
			t.Fatalf("read %+v: %v", key, err)
		}
		if len(blob) == 0 {
			t.Fatalf("empty HICL segment for %+v", key)
		}
	}
}

// TestTheorem1LowerBoundSoundness: at every batch boundary, the computed
// Dlb must not exceed the true minimum Dmm over trajectories not yet
// retrieved (Theorem 1). We instrument a search manually.
func TestTheorem1LowerBoundSoundness(t *testing.T) {
	ds, ts, idx := buildSmall(t, Config{Depth: 6, MemLevels: 4, Lambda: 8, NearCells: 3})
	e := NewEngine(idx)
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 5, NumPoints: 2, ActsPerPoint: 2, DiameterKm: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev := evaluate.NewEvaluator(ts)
	for qi, q := range qs {
		s := &e.sc
		s.begin(q)
		s.initQueue()
		for batch := 0; batch < 30 && !s.exhausted; batch++ {
			s.retrieveBatch(8)
			dlb := s.lowerBound()
			if math.IsInf(dlb, 1) {
				continue
			}
			// True minimum Dmm over unseen trajectories.
			trueMin := math.Inf(1)
			var stats = e.stats
			for ti := range ds.Trajs {
				id := ds.Trajs[ti].ID
				if s.seen[id] == s.gen {
					continue
				}
				d, out, err := ev.ScoreATSQ(q, id, math.Inf(1), &stats)
				if err != nil {
					t.Fatal(err)
				}
				if out == evaluate.Scored && d < trueMin {
					trueMin = d
				}
			}
			if dlb > trueMin+1e-9 {
				t.Fatalf("q%d batch %d: Dlb %v exceeds true min unseen Dmm %v (Theorem 1)",
					qi, batch, dlb, trueMin)
			}
		}
	}
}

// TestMemBreakdown: all components are accounted and granularity grows the
// footprint (the Fig. 8 memory claim).
func TestMemBreakdown(t *testing.T) {
	_, ts, coarse := buildSmall(t, Config{Depth: 5, MemLevels: 5})
	fine, err := Build(ts, Config{Depth: 8, MemLevels: 8})
	if err != nil {
		t.Fatal(err)
	}
	bc, bf := coarse.Breakdown(), fine.Breakdown()
	if bc.HICL <= 0 || bc.ITL <= 0 || bc.TAS <= 0 {
		t.Fatalf("breakdown has zero component: %+v", bc)
	}
	if bc.Total != bc.HICL+bc.ITL+bc.TAS+bc.Directories {
		t.Fatalf("total mismatch: %+v", bc)
	}
	if bf.HICL <= bc.HICL {
		t.Fatalf("finer grid should cost more HICL memory: %d vs %d", bf.HICL, bc.HICL)
	}
	if coarse.MemBytes() != bc.Total {
		t.Fatal("MemBytes != Breakdown().Total")
	}
}

// TestPointQueue: heap ordering, pop, and firstM re-insertion.
func TestPointQueue(t *testing.T) {
	var q pointQueue
	cells := []nearCell{
		{dist: 5, cell: grid.Cell{Level: 3, Z: 1}},
		{dist: 1, cell: grid.Cell{Level: 3, Z: 2}},
		{dist: 3, cell: grid.Cell{Level: 3, Z: 3}},
		{dist: 4, cell: grid.Cell{Level: 3, Z: 4}},
	}
	for _, c := range cells {
		q.push(c)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.firstM(nil, 2)
	if len(got) != 2 || got[0].dist != 1 || got[1].dist != 3 {
		t.Fatalf("firstM(2) = %+v", got)
	}
	if q.Len() != 4 {
		t.Fatalf("firstM must re-insert, Len = %d", q.Len())
	}
	// Pop removes the closest; firstM must then skip it.
	if c := q.pop(); c.dist != 1 {
		t.Fatalf("pop = %+v", c)
	}
	if q.Len() != 3 {
		t.Fatalf("Len after pop = %d", q.Len())
	}
	got = q.firstM(got[:0], 10)
	if len(got) != 3 || got[0].dist != 3 || got[1].dist != 4 || got[2].dist != 5 {
		t.Fatalf("firstM after pop = %+v", got)
	}
	// firstM must be repeatable (re-insertion works).
	again := q.firstM(nil, 3)
	if len(again) != 3 || again[0].dist != 3 {
		t.Fatalf("firstM not repeatable: %+v", again)
	}
	// Ties break by (level, Z) so expansion order is deterministic.
	q.reset()
	q.push(nearCell{dist: 2, cell: grid.Cell{Level: 4, Z: 9}})
	q.push(nearCell{dist: 2, cell: grid.Cell{Level: 3, Z: 7}})
	q.push(nearCell{dist: 2, cell: grid.Cell{Level: 3, Z: 5}})
	if c := q.pop(); c.cell.Z != 5 {
		t.Fatalf("tie-break pop = %+v", c)
	}
	if c := q.pop(); c.cell.Z != 7 {
		t.Fatalf("tie-break pop 2 = %+v", c)
	}
}

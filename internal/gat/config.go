// Package gat implements the paper's contribution: the Grid index for
// Activity Trajectories (GAT, Section IV) and its best-first search
// framework for ATSQ and OATSQ (Sections V and VI).
//
// The index has the paper's four components:
//
//	(i)   HICL — Hierarchical Inverted Cell List: per activity, the cells
//	      containing it at every grid level; high levels in memory, the
//	      finest levels on simulated disk.
//	(ii)  ITL — Inverted Trajectory List: per leaf cell and activity, the
//	      trajectories with a matching point inside the cell (in memory).
//	(iii) TAS — Trajectory Activity Sketch: per trajectory, M intervals
//	      summarizing its activity IDs (in memory, shared TrajStore).
//	(iv)  APL — Activity Posting List: per trajectory and activity, the
//	      matching point indexes (on disk, shared TrajStore).
//
// Search proceeds in λ-candidate batches (Algorithm 1): best-first cell
// expansion retrieves candidates near any query location that contain at
// least one of its activities, a lower bound for all unseen trajectories is
// maintained from the nearest unvisited cells (Algorithm 2), candidates are
// validated through TAS and APL, and match distances are computed with the
// shared evaluator.
package gat

import (
	"activitytraj/internal/evaluate"
	"activitytraj/internal/zorder"
)

// Config tunes the GAT index. The zero value selects the paper's defaults.
type Config struct {
	// Depth is d: the leaf grid has 2^Depth × 2^Depth cells. The paper's
	// default is 8 (256×256); Figure 8 sweeps 5..8.
	Depth int
	// MemLevels is the number of HICL levels kept in main memory (levels
	// 1..MemLevels); deeper levels live on disk. The paper keeps levels
	// 1..6 in memory for d=8. Values >= Depth keep the whole HICL in
	// memory.
	MemLevels int
	// Lambda is the candidate batch size λ of Algorithm 1.
	Lambda int
	// NearCells is m: how many nearest unvisited cells per query point
	// feed the virtual-trajectory lower bound of Algorithm 2.
	NearCells int
	// PoolPages is the buffer pool capacity for the HICL disk store.
	PoolPages int
	// HICLCacheEntries caps the shared cache of decoded disk-level HICL
	// posting lists (0 selects DefaultHICLCacheEntries). The cache is
	// shared by every engine clone over the index.
	HICLCacheEntries int
	// DisableTAS switches off the sketch pre-filter (ablation A2).
	DisableTAS bool
	// LooseLowerBound replaces Algorithm 2 with the "straightforward"
	// bound — the priority queue's head distance (ablation A1).
	LooseLowerBound bool
}

// Defaults mirror Section VII's experimental setup.
const (
	DefaultDepth     = 8
	DefaultMemLevels = 6
	DefaultLambda    = 32
	DefaultNearCells = 8
	// DefaultHICLCacheEntries holds every disk-level list of a depth-8,
	// multi-thousand-activity index comfortably; each entry is one decoded
	// posting list.
	DefaultHICLCacheEntries = 4096
)

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.Depth > zorder.MaxLevel {
		c.Depth = zorder.MaxLevel
	}
	if c.MemLevels <= 0 {
		c.MemLevels = DefaultMemLevels
	}
	if c.Lambda <= 0 {
		c.Lambda = DefaultLambda
	}
	if c.NearCells <= 0 {
		c.NearCells = DefaultNearCells
	}
	if c.PoolPages <= 0 {
		c.PoolPages = evaluate.DefaultPoolPages
	}
	if c.HICLCacheEntries <= 0 {
		c.HICLCacheEntries = DefaultHICLCacheEntries
	}
	return c
}

package gat

import (
	"bytes"
	"testing"

	"activitytraj/internal/queries"
)

// TestPersistRoundTrip: a saved and reloaded index must be structurally
// identical and answer queries identically.
func TestPersistRoundTrip(t *testing.T) {
	ds, ts, idx := buildSmall(t, Config{Depth: 7, MemLevels: 4, Lambda: 16, NearCells: 5})
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := Load(&buf, ts)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.cfg != idx.cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.cfg, idx.cfg)
	}
	if loaded.g.Region() != idx.g.Region() || loaded.g.Depth() != idx.g.Depth() {
		t.Fatal("grid mismatch")
	}
	if len(loaded.itl) != len(idx.itl) || len(loaded.hiclDir) != len(idx.hiclDir) {
		t.Fatalf("structure counts differ: itl %d/%d dir %d/%d",
			len(loaded.itl), len(idx.itl), len(loaded.hiclDir), len(idx.hiclDir))
	}
	bd1, bd2 := idx.Breakdown(), loaded.Breakdown()
	if bd1.HICL != bd2.HICL || bd1.ITL != bd2.ITL {
		t.Fatalf("memory breakdown differs: %+v vs %+v", bd1, bd2)
	}

	// Behavioural equality on a workload, both query types.
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 8, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := NewEngine(idx), NewEngine(loaded)
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			var a, b []float64
			if ordered {
				ra, err := e1.SearchOATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := e2.SearchOATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range ra {
					a = append(a, r.Dist)
				}
				for _, r := range rb {
					b = append(b, r.Dist)
				}
			} else {
				ra, err := e1.SearchATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := e2.SearchATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range ra {
					a = append(a, r.Dist)
				}
				for _, r := range rb {
					b = append(b, r.Dist)
				}
			}
			if len(a) != len(b) {
				t.Fatalf("q%d ordered=%v: %d vs %d results", qi, ordered, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("q%d ordered=%v: dist %v vs %v", qi, ordered, a[i], b[i])
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, ts, _ := buildSmall(t, Config{Depth: 5, MemLevels: 5})
	if _, err := Load(bytes.NewReader([]byte("bogus")), ts); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := Load(bytes.NewReader(nil), ts); err == nil {
		t.Fatal("empty stream must be rejected")
	}
}

func TestMemLevelsForBudget(t *testing.T) {
	// Σ 4^i·C·4bytes: C=1000 → level1: 16KB, +level2: 80KB, +level3: 336KB.
	cases := []struct {
		budget int64
		vocab  int
		depth  int
		want   int
	}{
		{16_000, 1000, 8, 1},
		{90_000, 1000, 8, 2},
		{400_000, 1000, 8, 3},
		{1 << 40, 1000, 6, 6}, // huge budget clamps to depth
		{0, 1000, 8, 1},       // always at least one level
	}
	for _, c := range cases {
		if got := MemLevelsForBudget(c.budget, c.vocab, c.depth); got != c.want {
			t.Errorf("MemLevelsForBudget(%d, %d, %d) = %d, want %d",
				c.budget, c.vocab, c.depth, got, c.want)
		}
	}
}

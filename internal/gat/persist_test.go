package gat

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
	"testing"

	"activitytraj/internal/invindex"
	"activitytraj/internal/queries"
	"activitytraj/internal/storage"
)

// TestPersistRoundTrip: a saved and reloaded index must be structurally
// identical and answer queries identically.
func TestPersistRoundTrip(t *testing.T) {
	ds, ts, idx := buildSmall(t, Config{Depth: 7, MemLevels: 4, Lambda: 16, NearCells: 5})
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := Load(&buf, ts)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.cfg != idx.cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.cfg, idx.cfg)
	}
	if loaded.g.Region() != idx.g.Region() || loaded.g.Depth() != idx.g.Depth() {
		t.Fatal("grid mismatch")
	}
	if len(loaded.itl) != len(idx.itl) || len(loaded.hiclDir) != len(idx.hiclDir) {
		t.Fatalf("structure counts differ: itl %d/%d dir %d/%d",
			len(loaded.itl), len(idx.itl), len(loaded.hiclDir), len(idx.hiclDir))
	}
	bd1, bd2 := idx.Breakdown(), loaded.Breakdown()
	if bd1.HICL != bd2.HICL || bd1.ITL != bd2.ITL {
		t.Fatalf("memory breakdown differs: %+v vs %+v", bd1, bd2)
	}

	// Behavioural equality on a workload, both query types.
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 8, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := NewEngine(idx), NewEngine(loaded)
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			var a, b []float64
			if ordered {
				ra, err := e1.SearchOATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := e2.SearchOATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range ra {
					a = append(a, r.Dist)
				}
				for _, r := range rb {
					b = append(b, r.Dist)
				}
			} else {
				ra, err := e1.SearchATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := e2.SearchATSQ(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range ra {
					a = append(a, r.Dist)
				}
				for _, r := range rb {
					b = append(b, r.Dist)
				}
			}
			if len(a) != len(b) {
				t.Fatalf("q%d ordered=%v: %d vs %d results", qi, ordered, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("q%d ordered=%v: dist %v vs %v", qi, ordered, a[i], b[i])
				}
			}
		}
	}
}

// writeV1 serializes idx in the legacy version-1 format (flat delta+varint
// posting lists, in memory and on the disk pages), so the migration path in
// Load can be exercised against a stream produced exactly the way PR 2's
// WriteTo produced it.
func writeV1(t *testing.T, idx *Index) []byte {
	t.Helper()
	var out bytes.Buffer
	put := func(p []byte) { out.Write(p) }
	var scratch [binary.MaxVarintLen64]byte
	putU := func(v uint64) { out.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	putF := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		put(b[:])
	}

	put([]byte(persistMagic))
	put([]byte{1})
	cfg := idx.cfg
	flags := uint64(0)
	if cfg.DisableTAS {
		flags |= 1
	}
	if cfg.LooseLowerBound {
		flags |= 2
	}
	for _, v := range []uint64{
		uint64(cfg.Depth), uint64(cfg.MemLevels), uint64(cfg.Lambda),
		uint64(cfg.NearCells), uint64(cfg.PoolPages), flags,
	} {
		putU(v)
	}
	region := idx.g.Region()
	for _, f := range []float64{region.MinX, region.MinY, idx.g.Side()} {
		putF(f)
	}

	var buf []byte
	putU(uint64(len(idx.hiclMem)))
	for _, level := range idx.hiclMem {
		putU(uint64(len(level)))
		for _, a := range sortedActs(level) {
			putU(uint64(a))
			buf = level[a].Elements().AppendEncoded(buf[:0])
			put(buf)
		}
	}

	putU(uint64(len(idx.itl)))
	zs := make([]uint32, 0, len(idx.itl))
	for z := range idx.itl {
		zs = append(zs, z)
	}
	slices.Sort(zs)
	for _, z := range zs {
		cell := idx.itl[z]
		putU(uint64(z))
		putU(uint64(len(cell.lists)))
		for _, a := range sortedActs(cell.lists) {
			putU(uint64(a))
			buf = cell.lists[a].AppendEncoded(buf[:0])
			put(buf)
		}
	}

	// Re-encode the disk lists the v1 way (flat lists) into a scratch store
	// so the dumped pages and directory refs are genuinely v1.
	v1store := storage.NewMemStore(1)
	v1dir := make(map[hiclKey]storage.SegRef, len(idx.hiclDir))
	for _, k := range sortedHiclKeys(idx.hiclDir) {
		blob, err := idx.hiclStore.Read(idx.hiclDir[k])
		if err != nil {
			t.Fatal(err)
		}
		set, _, err := invindex.DecodeSet(blob)
		if err != nil {
			t.Fatal(err)
		}
		buf = set.Elements().AppendEncoded(buf[:0])
		ref, err := v1store.Append(buf)
		if err != nil {
			t.Fatal(err)
		}
		v1dir[k] = ref
	}
	if err := v1store.Seal(); err != nil {
		t.Fatal(err)
	}
	putU(uint64(len(v1dir)))
	for _, k := range sortedHiclKeys(v1dir) {
		ref := v1dir[k]
		for _, v := range []uint64{uint64(k.level), uint64(k.act), uint64(ref.Page), uint64(ref.Off), uint64(ref.Len)} {
			putU(v)
		}
	}
	pages := v1store.Pages()
	putU(uint64(pages))
	for p := uint32(0); p < pages; p++ {
		blob, err := v1store.Read(storage.SegRef{Page: p, Off: 0, Len: storage.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		put(blob)
	}
	return out.Bytes()
}

// TestPersistV1Migration: a version-1 stream must load through the
// migration path and answer queries identically to the index it came from.
func TestPersistV1Migration(t *testing.T) {
	ds, ts, idx := buildSmall(t, Config{Depth: 7, MemLevels: 4, Lambda: 16, NearCells: 5})
	v1 := writeV1(t, idx)
	loaded, err := Load(bytes.NewReader(v1), ts)
	if err != nil {
		t.Fatalf("load v1: %v", err)
	}
	if loaded.cfg != idx.cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.cfg, idx.cfg)
	}
	if len(loaded.itl) != len(idx.itl) || len(loaded.hiclDir) != len(idx.hiclDir) {
		t.Fatalf("structure counts differ: itl %d/%d dir %d/%d",
			len(loaded.itl), len(idx.itl), len(loaded.hiclDir), len(idx.hiclDir))
	}
	// Every migrated disk list must decode as a Set with the same elements.
	for _, k := range sortedHiclKeys(idx.hiclDir) {
		want, err := idx.hiclStore.Read(idx.hiclDir[k])
		if err != nil {
			t.Fatal(err)
		}
		wantSet, _, err := invindex.DecodeSet(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.hiclStore.Read(loaded.hiclDir[k])
		if err != nil {
			t.Fatal(err)
		}
		gotSet, _, err := invindex.DecodeSet(got)
		if err != nil {
			t.Fatalf("migrated list (level %d, act %d) does not decode as a set: %v", k.level, k.act, err)
		}
		w, g := wantSet.Elements(), gotSet.Elements()
		if len(w) != len(g) {
			t.Fatalf("migrated list (level %d, act %d): %d vs %d elements", k.level, k.act, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("migrated list (level %d, act %d) differs at %d", k.level, k.act, i)
			}
		}
	}

	qs, err := queries.Generate(ds, queries.Config{NumQueries: 8, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := NewEngine(idx), NewEngine(loaded)
	for qi, q := range qs {
		ra, err := e1.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := e2.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("q%d: %d vs %d results", qi, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("q%d result %d: %+v vs %+v", qi, i, ra[i], rb[i])
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, ts, _ := buildSmall(t, Config{Depth: 5, MemLevels: 5})
	if _, err := Load(bytes.NewReader([]byte("bogus")), ts); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := Load(bytes.NewReader(nil), ts); err == nil {
		t.Fatal("empty stream must be rejected")
	}
}

func TestMemLevelsForBudget(t *testing.T) {
	// Σ 4^i·C·4bytes: C=1000 → level1: 16KB, +level2: 80KB, +level3: 336KB.
	cases := []struct {
		budget int64
		vocab  int
		depth  int
		want   int
	}{
		{16_000, 1000, 8, 1},
		{90_000, 1000, 8, 2},
		{400_000, 1000, 8, 3},
		{1 << 40, 1000, 6, 6}, // huge budget clamps to depth
		{0, 1000, 8, 1},       // always at least one level
	}
	for _, c := range cases {
		if got := MemLevelsForBudget(c.budget, c.vocab, c.depth); got != c.want {
			t.Errorf("MemLevelsForBudget(%d, %d, %d) = %d, want %d",
				c.budget, c.vocab, c.depth, got, c.want)
		}
	}
}

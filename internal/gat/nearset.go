package gat

import "activitytraj/internal/grid"

// nearCell is one unvisited cell tracked for a query point: its minimum
// distance to the query location and the bitmask of the query point's
// activities present in the cell (per the HICL), from which the lower
// bound's virtual points are made.
type nearCell struct {
	dist float64
	cell grid.Cell
	mask uint32
}

// nearLess is the strict weak order of the search frontier: ascending
// distance, ties broken by (level, Z) so expansion order — and therefore
// every statistic — is deterministic.
func nearLess(a, b nearCell) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.cell.Level != b.cell.Level {
		return a.cell.Level < b.cell.Level
	}
	return a.cell.Z < b.cell.Z
}

// pointQueue is the per-query-point search frontier: a binary min-heap of
// the unvisited cells relevant to one query point. It serves double duty as
// the paper's priority queue (Algorithm 1 pops the globally nearest cell —
// the searcher scans the per-point heads) and as the cellsn(q_i) structure
// of Algorithm 2 (firstM yields the m nearest unvisited cells). Merging the
// two removes the old lazy-deletion map entirely, and the heap is
// hand-rolled on a concrete slice — no container/heap, so pushes and pops
// never box through interface{}.
//
// Unlike the paper's truncated cellsn list we retain every unvisited cell
// and cap the bound with the (m+1)-th cell instead of the m-th — same
// intent, provably sound under any expansion order (see DESIGN.md §3).
type pointQueue struct {
	h []nearCell
}

// reset empties the queue, keeping its backing array for reuse.
func (q *pointQueue) reset() { q.h = q.h[:0] }

// Len returns the number of unvisited cells tracked.
func (q *pointQueue) Len() int { return len(q.h) }

// head returns the nearest unvisited cell. It panics on an empty queue.
func (q *pointQueue) head() nearCell { return q.h[0] }

// push tracks an unvisited cell. Each cell is pushed at most once per query
// point (it has a single parent in the hierarchy).
func (q *pointQueue) push(c nearCell) {
	q.h = append(q.h, c)
	q.up(len(q.h) - 1)
}

// pop removes and returns the nearest unvisited cell.
func (q *pointQueue) pop() nearCell {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.h = h[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

func (q *pointQueue) up(i int) {
	h := q.h
	for i > 0 {
		parent := (i - 1) / 2
		if !nearLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *pointQueue) down(i int) {
	h := q.h
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && nearLess(h[r], h[l]) {
			least = r
		}
		if !nearLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// firstM appends the min(m, Len) nearest unvisited cells to dst in
// ascending order and returns it. The queue is unchanged afterwards: the
// cells are popped in order and pushed back, so the call is O(m log n) and
// allocation-free once dst has capacity.
func (q *pointQueue) firstM(dst []nearCell, m int) []nearCell {
	if m > len(q.h) {
		m = len(q.h)
	}
	for i := 0; i < m; i++ {
		dst = append(dst, q.pop())
	}
	for _, c := range dst[len(dst)-m:] {
		q.push(c)
	}
	return dst
}

package gat

import (
	"container/heap"

	"activitytraj/internal/grid"
)

// nearCell is one unvisited cell tracked for a query point: its minimum
// distance to the query location and the bitmask of the query point's
// activities present in the cell (per the HICL), from which the lower
// bound's virtual points are made.
type nearCell struct {
	dist float64
	cell grid.Cell
	mask uint32
}

// nearSet is the cellsn(q_i) structure of Algorithm 2: the unvisited cells
// relevant to one query point ordered by distance. Unlike the paper's
// truncated list we retain every unvisited cell (a lazy-deletion heap) and
// cap the bound with the (m+1)-th cell instead of the m-th — same intent,
// provably sound under any expansion order (see DESIGN.md §3).
type nearSet struct {
	h    nearHeap
	dead map[grid.Cell]bool
	live int
}

type nearHeap []nearCell

func (h nearHeap) Len() int { return len(h) }
func (h nearHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].cell.Level != h[j].cell.Level {
		return h[i].cell.Level < h[j].cell.Level
	}
	return h[i].cell.Z < h[j].cell.Z
}
func (h nearHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nearHeap) Push(x interface{}) { *h = append(*h, x.(nearCell)) }
func (h *nearHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

func newNearSet() *nearSet {
	return &nearSet{dead: make(map[grid.Cell]bool)}
}

// Add tracks an unvisited cell. Each cell is added at most once per query
// point (it has a single parent in the hierarchy).
func (s *nearSet) Add(c nearCell) {
	heap.Push(&s.h, c)
	s.live++
}

// Remove marks a cell as visited (it was dequeued from the search queue).
func (s *nearSet) Remove(c grid.Cell) {
	s.dead[c] = true
	s.live--
}

// Len returns the number of unvisited cells tracked.
func (s *nearSet) Len() int { return s.live }

// FirstM returns the m nearest unvisited cells in ascending distance order.
// Dead entries encountered on the way are permanently discarded.
func (s *nearSet) FirstM(m int) []nearCell {
	out := make([]nearCell, 0, m)
	for len(out) < m && s.h.Len() > 0 {
		c := heap.Pop(&s.h).(nearCell)
		if s.dead[c.cell] {
			delete(s.dead, c.cell)
			continue
		}
		out = append(out, c)
	}
	// Re-insert the live cells we extracted.
	for _, c := range out {
		heap.Push(&s.h, c)
	}
	return out
}

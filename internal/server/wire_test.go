package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDecodeJSON pins the shared request-door contract every tier (single
// server, cluster nodes, cluster router) inherits: 405 for the wrong
// method, 413 — not 400 or a buffering 500 — for an oversized body, 400
// for garbage or unknown fields, strict field checking always on.
func TestDecodeJSON(t *testing.T) {
	type msg struct {
		A int `json:"a"`
	}
	decode := func(method, body string, maxBytes int64) (int, error) {
		r := httptest.NewRequest(method, "/x", strings.NewReader(body))
		var m msg
		return DecodeJSON(httptest.NewRecorder(), r, &m, maxBytes)
	}

	if status, _ := decode(http.MethodGet, `{"a":1}`, 0); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", status)
	}
	if status, _ := decode(http.MethodPost, `{"a":1}`, 0); status != 0 {
		t.Fatalf("valid body: status %d, want 0", status)
	}
	if status, _ := decode(http.MethodPost, `{"a":1,"zzz":2}`, 0); status != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", status)
	}
	if status, _ := decode(http.MethodPost, `nope`, 0); status != http.StatusBadRequest {
		t.Fatalf("garbage: status %d, want 400", status)
	}

	// One byte over the cap is 413 with the limit in the message; at the
	// cap it still decodes.
	body := `{"a":12345}`
	status, err := decode(http.MethodPost, body, int64(len(body))-1)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: status %d, want 413", status)
	}
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized: error %v should name the limit", err)
	}
	if status, err := decode(http.MethodPost, body, int64(len(body))); status != 0 {
		t.Fatalf("at cap: status %d (%v), want success", status, err)
	}
}

// TestToQueryRequestSpanValidation: malformed span options are a
// request-shape fault caught at the wire door (every tier maps
// ToQueryRequest errors to 400) — never an engine error surfacing as 500.
func TestToQueryRequestSpanValidation(t *testing.T) {
	pts := []QueryPointJSON{{X: 1, Y: 2, Acts: []int{1}}}
	bad := []SearchRequest{
		{Points: pts, K: 3, Subtrajectory: true, MinSpanPoints: 9, MaxSpanPoints: 2},
		{Points: pts, K: 3, Subtrajectory: true, MinSpanPoints: -1},
		{Points: pts, K: 3, MaxSpanPoints: 4}, // limits without the mode
	}
	for i, req := range bad {
		if _, err := ToQueryRequest(nil, req); err == nil {
			t.Fatalf("bad span request %d accepted", i)
		}
	}
	good := SearchRequest{Points: pts, K: 3, Subtrajectory: true, MaxSpanPoints: 12}
	sreq, err := ToQueryRequest(nil, good)
	if err != nil {
		t.Fatalf("valid subtrajectory request rejected: %v", err)
	}
	if !sreq.Subtrajectory || sreq.MaxSpanPoints != 12 {
		t.Fatalf("span fields lost in conversion: %+v", sreq)
	}
}

// TestServerBodyCapAndStrictMutations pins the HTTP satellite end to end:
// a body over DefaultMaxBodyBytes answers 413 on every JSON endpoint, and
// the mutation endpoints reject unknown fields rather than silently
// dropping them (a misspelled field on a mutation is data loss).
func TestServerBodyCapAndStrictMutations(t *testing.T) {
	s, _ := testServer(t, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An insert whose points array exceeds the 16 MiB cap: the server must
	// refuse with 413 instead of buffering or mislabeling it a 400.
	var big bytes.Buffer
	big.WriteString(`{"points":[`)
	point := `{"x":1.5,"y":2.5,"acts":[1]}`
	for big.Len() < DefaultMaxBodyBytes+1024 {
		if big.Len() > len(`{"points":[`) {
			big.WriteByte(',')
		}
		big.WriteString(point)
	}
	big.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(big.Bytes()))
	if err != nil {
		t.Fatalf("oversized insert: %v", err)
	}
	var e ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized insert: status %d (%s), want 413", resp.StatusCode, e.Error)
	}

	// Unknown fields on the mutation endpoints are 400s.
	for _, c := range []struct{ path, body string }{
		{"/v1/insert", `{"points":[{"x":1,"y":2,"acts":[1]}],"replica":3}`},
		{"/v1/insert", `{"points":[{"x":1,"y":2,"acts":[1],"weight":2}]}`},
		{"/v1/delete", `{"id":1,"force":true}`},
	} {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("POST %s: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"activitytraj/internal/query"
	"activitytraj/internal/subscribe"
)

// Subscription wire protocol.
//
// POST /v1/subscribe with a SearchRequest body registers a standing query
// whose top-k the server maintains incrementally against the ingest stream.
// Two consumption modes:
//
//   - Default (SSE): the response is a text/event-stream. The first frame is
//     a `resync` event carrying the seeded top-k; every later frame is a
//     `join`, `leave` or `resync` event. Each frame's SSE id is the event
//     sequence number. The subscription lives exactly as long as the stream:
//     a client hang-up frees it.
//   - ?mode=poll: the response is a SubscribeResponse carrying the new
//     subscription's ID, current sequence and seeded top-k. The client then
//     long-polls GET /v1/subscribe?id=N&from=SEQ[&wait=DUR] and must
//     eventually POST /v1/unsubscribe (poll subscriptions are owned by the
//     client, not a connection).
//
// Every event carries the full post-mutation top-k, so a consumer is wholly
// resynchronized by any single event. A consumer that falls more than an
// event ring behind receives one `resync` event (full state, current
// sequence) instead of the evicted backlog — slow consumers lose history,
// never correctness.

// DefaultLongPollWait caps how long GET /v1/subscribe parks waiting for an
// event before answering an empty page; clients pass ?wait= up to
// MaxLongPollWait to tune it.
const (
	DefaultLongPollWait = 30 * time.Second
	MaxLongPollWait     = 2 * time.Minute
	// sseKeepaliveEvery spaces comment keepalive frames on idle SSE streams
	// so intermediaries don't reap the connection and the per-write deadline
	// below keeps being re-armed.
	sseKeepaliveEvery = 15 * time.Second
	// sseWriteDeadline bounds each SSE frame write. The enclosing
	// http.Server's WriteTimeout is absolute and would kill long streams;
	// the handler re-arms this rolling deadline per frame instead, so only a
	// stalled client — not a long-lived one — times the stream out.
	sseWriteDeadline = 30 * time.Second
)

// EventJSON is one subscription event on the wire.
type EventJSON struct {
	Sub  uint64 `json:"sub"`
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// ID/Dist describe the trajectory that joined or left (absent on
	// resync). Dist is meaningful on join only.
	ID   uint32  `json:"id,omitempty"`
	Dist float64 `json:"dist,omitempty"`
	// TopK is the complete top-k after the event, ascending (dist, id).
	TopK []ResultJSON `json:"topk"`
}

// SubscribeResponse is the ?mode=poll reply to POST /v1/subscribe.
type SubscribeResponse struct {
	ID      uint64       `json:"id"`
	Seq     uint64       `json:"seq"`
	Results []ResultJSON `json:"results"`
}

// PollResponse is the GET /v1/subscribe long-poll reply. Events is empty
// when the wait expired with nothing new; Closed reports that the
// subscription is gone and polling should stop.
type PollResponse struct {
	ID     uint64      `json:"id"`
	Events []EventJSON `json:"events"`
	Closed bool        `json:"closed,omitempty"`
}

// UnsubscribeRequest is the /v1/unsubscribe body.
type UnsubscribeRequest struct {
	ID uint64 `json:"id"`
}

// UnsubscribeResponse acknowledges an unsubscribe; Removed is false when the
// ID was unknown (already removed or never existed).
type UnsubscribeResponse struct {
	Removed bool `json:"removed"`
}

func resultsJSON(rs []query.Result) []ResultJSON {
	out := make([]ResultJSON, len(rs))
	for i, r := range rs {
		out[i] = ResultJSON{ID: uint32(r.ID), Dist: r.Dist}
	}
	return out
}

func eventJSON(subID uint64, ev subscribe.Event) EventJSON {
	ej := EventJSON{Sub: subID, Seq: ev.Seq, Kind: ev.Kind.String(), TopK: resultsJSON(ev.TopK)}
	if ev.Kind != subscribe.EventResync {
		ej.ID = uint32(ev.ID)
		ej.Dist = ev.Dist
	}
	return ej
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubscribeCreate(w, r)
	case http.MethodGet:
		s.handleSubscribePoll(w, r)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST to subscribe or GET to poll"))
	}
}

func (s *Server) handleSubscribeCreate(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sreq, err := ToQueryRequest(s.vocab, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sub, err := s.hub.Subscribe(r.Context(), sreq)
	if err != nil {
		if errors.Is(err, subscribe.ErrClosed) {
			s.writeError(w, http.StatusServiceUnavailable, err)
		} else {
			// Everything else Subscribe rejects is request-shaped (span
			// options, WithMatches, a hung-up client).
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	if r.URL.Query().Get("mode") == "poll" {
		seq, topk := sub.Snapshot()
		writeJSON(w, http.StatusOK, SubscribeResponse{ID: sub.ID(), Seq: seq, Results: resultsJSON(topk)})
		return
	}
	// SSE mode: the subscription's lifetime is the stream's.
	defer s.hub.Unsubscribe(sub.ID())
	s.streamEvents(w, r, sub, 0)
}

// handleSubscribePoll long-polls an existing subscription for events after
// ?from= (or streams it as SSE when the client asks for text/event-stream —
// reattaching to a poll-created subscription after a dropped stream, resumed
// from Last-Event-ID).
func (s *Server) handleSubscribePoll(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad id %q: want the decimal subscription ID", q.Get("id")))
		return
	}
	sub, ok := s.hub.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	var from uint64
	if fs := q.Get("from"); fs != "" {
		if from, err = strconv.ParseUint(fs, 10, 64); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q: want a sequence number", fs))
			return
		}
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		if lid := r.Header.Get("Last-Event-ID"); lid != "" {
			if from, err = strconv.ParseUint(lid, 10, 64); err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q", lid))
				return
			}
		}
		s.streamEvents(w, r, sub, from)
		return
	}
	wait := DefaultLongPollWait
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: want a positive Go duration", ws))
			return
		}
		wait = min(d, MaxLongPollWait)
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, waitCh, closed := sub.Next(from)
		if len(evs) > 0 || closed {
			resp := PollResponse{ID: id, Events: make([]EventJSON, len(evs)), Closed: closed}
			for i, ev := range evs {
				resp.Events[i] = eventJSON(id, ev)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		select {
		case <-r.Context().Done():
			s.writeError(w, StatusClientClosedRequest, r.Context().Err())
			return
		case <-deadline.C:
			writeJSON(w, http.StatusOK, PollResponse{ID: id, Events: []EventJSON{}})
			return
		case <-waitCh:
		}
	}
}

// streamEvents writes the subscription as a server-sent-event stream,
// starting from cursor (0 = snapshot now). The first frame is always a
// resync carrying the state at the cursor clamp, so a consumer needs no
// state besides the frames. Returns when the client hangs up, a write
// fails, or the subscription closes.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, sub *subscribe.Subscription, cursor uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	send := func(ej EventJSON) bool {
		data, err := json.Marshal(ej)
		if err != nil {
			return false
		}
		// Rolling per-frame deadline; see sseWriteDeadline. Errors are
		// ignored: test recorders don't support deadlines, real conns do.
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteDeadline))
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ej.Seq, ej.Kind, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if cursor == 0 {
		// Opening snapshot: full state as a resync frame, then follow from
		// its sequence.
		seq, topk := sub.Snapshot()
		ej := EventJSON{Sub: sub.ID(), Seq: seq, Kind: subscribe.EventResync.String(), TopK: resultsJSON(topk)}
		if !send(ej) {
			return
		}
		cursor = seq
	}
	keepalive := time.NewTicker(sseKeepaliveEvery)
	defer keepalive.Stop()
	for {
		evs, waitCh, closed := sub.Next(cursor)
		for _, ev := range evs {
			if !send(eventJSON(sub.ID(), ev)) {
				return
			}
			cursor = ev.Seq
		}
		if closed {
			return
		}
		if len(evs) > 0 {
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-waitCh:
		case <-keepalive.C:
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteDeadline))
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	var req UnsubscribeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, UnsubscribeResponse{Removed: s.hub.Unsubscribe(req.ID)})
}

// Package server implements the HTTP JSON query service over a sharded
// activity-trajectory index: search, insert, delete and stats endpoints
// plus a health probe, each search reporting its per-request SearchStats.
// The cmd/atsqserve command is a thin main around this package; keeping the
// handlers here makes them testable with httptest.
//
// Every search runs under the HTTP request's context, so a client hanging
// up cancels the in-flight scatter-gather search; a per-request
// `?timeout=DURATION` query parameter additionally caps the search budget,
// answering 504 Gateway Timeout when it expires — distinct from 400 (bad
// request) and 500 (engine fault).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/subscribe"
	"activitytraj/internal/trajectory"
)

// QueryPointJSON is one query or trajectory point on the wire. Activities
// may be given as vocabulary IDs (acts) and/or names (names); the union is
// used.
type QueryPointJSON struct {
	X     float64  `json:"x"`
	Y     float64  `json:"y"`
	Acts  []int    `json:"acts,omitempty"`
	Names []string `json:"names,omitempty"`
}

// RectJSON is an axis-aligned rectangle on the wire.
type RectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// SearchRequest is the /v1/search body.
type SearchRequest struct {
	// K is the result count (default DefaultK).
	K int `json:"k,omitempty"`
	// Ordered selects OATSQ instead of ATSQ.
	Ordered bool `json:"ordered,omitempty"`
	// Points are the query locations with their desired activities.
	Points []QueryPointJSON `json:"points"`
	// InitialBound, when > 0, seeds the pruning threshold: results farther
	// than it are excluded (see query.Request.InitialBound).
	InitialBound float64 `json:"initial_bound,omitempty"`
	// Region, when present, restricts matching to trajectory points inside
	// the rectangle (see query.Request.Region).
	Region *RectJSON `json:"region,omitempty"`
	// WithMatches asks for each result's matched trajectory point indexes,
	// one list per query point.
	WithMatches bool `json:"with_matches,omitempty"`
	// RequireComplete makes a cluster router fail the search (503) instead
	// of answering with a partial top-k when every replica of some shard is
	// down. Single-process servers always answer completely, so the flag is
	// a no-op for them.
	RequireComplete bool `json:"require_complete,omitempty"`
	// Subtrajectory scores each trajectory by its best contiguous point
	// span instead of the whole trajectory (see
	// query.Request.Subtrajectory). Combine with with_matches to get each
	// result's winning span.
	Subtrajectory bool `json:"subtrajectory,omitempty"`
	// MinSpanPoints/MaxSpanPoints bound the allowed span length in points
	// (0 = unlimited); only valid with subtrajectory.
	MinSpanPoints int `json:"min_span_points,omitempty"`
	MaxSpanPoints int `json:"max_span_points,omitempty"`
}

// ResultJSON is one top-k entry on the wire.
type ResultJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
	// Matches is present only when the request set with_matches: one
	// ascending list of matched trajectory point indexes per query point.
	Matches [][]int32 `json:"matches,omitempty"`
	// Span is present only when the request set both subtrajectory and
	// with_matches: the [start, end] trajectory point index pair (inclusive)
	// of the winning span behind Dist.
	Span []int32 `json:"span,omitempty"`
}

// SearchResponse is the /v1/search reply.
type SearchResponse struct {
	Results []ResultJSON      `json:"results"`
	Stats   query.SearchStats `json:"stats"`
	TookUS  int64             `json:"took_us"`
	// Truncated is true when the reply carries partial results of a search
	// cut short (only on the 504 deadline path).
	Truncated bool `json:"truncated,omitempty"`
	// Partial is true when the results deliberately exclude shards whose
	// every replica was unreachable; Stats.ShardsFailed counts them and the
	// X-Atsq-Partial response header carries the same marker (see
	// query.Response.Partial for the exactness promise).
	Partial bool `json:"partial,omitempty"`
}

// InsertRequest is the /v1/insert body: the trajectory's points in order.
type InsertRequest struct {
	Points []QueryPointJSON `json:"points"`
}

// InsertResponse reports the assigned global trajectory ID.
type InsertResponse struct {
	ID uint32 `json:"id"`
}

// DeleteRequest is the /v1/delete body.
type DeleteRequest struct {
	ID uint32 `json:"id"`
}

// DeleteResponse acknowledges a delete.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// ErrorResponse carries any non-2xx reply's message.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	UptimeSec float64     `json:"uptime_sec"`
	Searches  int64       `json:"searches"`
	Inserts   int64       `json:"inserts"`
	Deletes   int64       `json:"deletes"`
	Workers   int         `json:"workers"`
	Index     shard.Stats `json:"index"`
	// MutationEpoch is the router's composed mutation counter (the sum of
	// every shard's apply count) — the same value that invalidates the
	// result cache and sequences subscription maintenance. It also appears
	// per shard inside Index; surfacing it here lets clients watch ingest
	// progress without parsing shard detail.
	MutationEpoch uint64 `json:"mutation_epoch"`
	// Subscriptions reports the standing-query hub: active subscriptions,
	// queue depth, prefilter/admission counters and event totals.
	Subscriptions subscribe.Stats `json:"subscriptions"`
}

// DefaultK is the result count used when a search request leaves K unset
// (the Table V default shared with the rest of the library).
const DefaultK = queries.DefaultK

// Options tunes a Server.
type Options struct {
	// Workers sizes the engine pool — the number of searches served
	// concurrently (each worker is one scatter-gather engine whose shard
	// fan-out shares the underlying per-shard indexes). <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Vocab resolves activity names in requests; nil restricts requests to
	// numeric activity IDs.
	Vocab *trajectory.Vocabulary
	// Recovery, when the router was opened from a durable data directory
	// (shard.OpenOrCreate), is that boot's replay summary; /healthz reports
	// it so operators can see what a restart recovered.
	Recovery *shard.RecoveryInfo
	// ErrorLog receives the server-side detail of 5xx faults, whose wire
	// bodies are sanitized. Nil uses the process-wide standard logger.
	ErrorLog *log.Logger
	// SubscriptionBuffer sizes each standing query's event ring (<= 0
	// selects subscribe.DefaultEventBuffer). A consumer that falls more than
	// a full ring behind is resynchronized with a single `resync` event
	// carrying the complete current top-k instead of the evicted backlog.
	SubscriptionBuffer int
	// ResultCacheEntries, when > 0, enables an epoch-invalidated result
	// cache of that many entries in front of the engine pool: a search
	// whose canonical request was already answered at the current mutation
	// epoch replies without borrowing an engine at all, and any insert,
	// delete or compaction on the router invalidates every older entry at
	// once (see query.ResultCache). A hit's stats carry only the
	// ResultCacheHits marker — the cached search's work was not performed
	// for the serving request. 0 (the default) disables caching, keeping
	// every reply's stats an exact account of work done for that request.
	ResultCacheEntries int
}

// Server serves ATSQ/OATSQ queries and mutations over a shard.Router.
type Server struct {
	router   *shard.Router
	vocab    *trajectory.Vocabulary
	engines  chan *shard.Engine
	workers  int
	started  time.Time
	recovery *shard.RecoveryInfo
	errlog   *log.Logger
	// rcache, when non-nil, answers repeated searches without borrowing an
	// engine; its epoch source is the router's composed mutation counter.
	rcache *query.ResultCache
	// hub maintains standing queries against the router's mutation stream.
	// Always present: with zero subscribers its per-mutation cost is one
	// atomic load, so the search/ingest fast paths are unaffected.
	hub *subscribe.Hub

	searches atomic.Int64
	inserts  atomic.Int64
	deletes  atomic.Int64
}

// New builds a server over r with a pool of opts.Workers engines.
func New(r *shard.Router, opts Options) *Server {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	errlog := opts.ErrorLog
	if errlog == nil {
		errlog = log.Default()
	}
	s := &Server{
		router:   r,
		vocab:    opts.Vocab,
		engines:  make(chan *shard.Engine, w),
		workers:  w,
		started:  time.Now(),
		recovery: opts.Recovery,
		errlog:   errlog,
	}
	for i := 0; i < w; i++ {
		s.engines <- r.NewEngine()
	}
	if opts.ResultCacheEntries > 0 {
		s.rcache = query.NewResultCache(opts.ResultCacheEntries, r)
	}
	s.hub = r.NewHub(subscribe.Options{EventBuffer: opts.SubscriptionBuffer})
	return s
}

// Hub exposes the standing-query hub (for in-process embedders and tests).
func (s *Server) Hub() *subscribe.Hub { return s.hub }

// Close stops the subscription hub: the router's mutation observers are
// detached, the dispatcher exits, and every live subscription is closed
// (streaming handlers see it and end their responses). Call after the HTTP
// listener has stopped accepting requests.
func (s *Server) Close() { s.hub.Close() }

// Handler returns the route table. Borrowed engines give each in-flight
// search an exclusive engine (and so exact per-request SearchStats); the
// channel pool applies backpressure past Workers concurrent searches.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/insert", s.handleInsert)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/unsubscribe", s.handleUnsubscribe)
	return mux
}

// handleHealth is the liveness and readiness probe. Beyond the shard count
// it reports what a durable boot recovered (replayed journal records, torn
// tails, synthesized inserts) and surfaces any persisting background
// compaction failure: a shard whose last compaction failed serves stale
// generations with a growing delta, so the probe answers 503 — flipping
// load balancers away — until a later compaction succeeds and clears it.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status": "ok",
		"shards": s.router.NumShards(),
	}
	if s.recovery != nil {
		resp["recovery"] = s.recovery
	}
	compact := map[string]string{}
	for si, ss := range s.router.Stats().PerShard {
		if ss.CompactErr != "" {
			compact[strconv.Itoa(si)] = ss.CompactErr
		}
	}
	if len(compact) > 0 {
		resp["status"] = "compaction-failed"
		resp["compact_errors"] = compact
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client hung up mid-search; the reply is rarely
// observable, but handler tests and access logs distinguish it from a
// server-side fault.
const StatusClientClosedRequest = 499

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sreq, err := ToQueryRequest(s.vocab, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// The search runs under the HTTP request's context (a client hanging up
	// cancels the scatter-gather fan-out), optionally capped by a
	// per-request ?timeout= budget.
	ctx := r.Context()
	if tstr := r.URL.Query().Get("timeout"); tstr != "" {
		d, err := time.ParseDuration(tstr)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive Go duration", tstr))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// With a result cache enabled, probe before borrowing an engine: a hit
	// replies immediately (no pool backpressure, no search). The epoch is
	// read once here and reused for the post-search Put, so a cached entry
	// can never claim mutations its search did not observe.
	var cacheEpoch uint64
	if s.rcache != nil {
		cacheEpoch = s.rcache.Epoch()
		if qresp, ok := s.rcache.Get(cacheEpoch, sreq); ok {
			s.searches.Add(1)
			writeJSON(w, http.StatusOK, searchResponseJSON(qresp, 0))
			return
		}
	}
	// Borrowing from the engine pool honors the request context too: a
	// budget spent queueing behind busy engines 504s immediately instead
	// of parking the handler until an engine frees, and a hung-up client
	// leaves the queue right away.
	var e *shard.Engine
	select {
	case e = <-s.engines:
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			writeJSON(w, http.StatusGatewayTimeout, searchResponseJSON(query.Response{Truncated: true}, 0))
		} else {
			s.writeError(w, StatusClientClosedRequest, ctx.Err())
		}
		return
	}
	start := time.Now()
	qresp, err := e.Search(ctx, sreq)
	took := time.Since(start)
	if s.rcache != nil {
		qresp.Stats.ResultCacheMisses++
		if err == nil {
			s.rcache.Put(cacheEpoch, sreq, qresp)
		}
	}
	// The response was copied out of the engine, so it can go back to the
	// pool before the response write: a client stalling on the read side
	// must not pin an engine (the pool is the serving capacity).
	s.engines <- e
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request budget ran out: 504, with whatever partial
			// top-k the search had gathered (Truncated marks it).
			writeJSON(w, http.StatusGatewayTimeout, searchResponseJSON(qresp, took))
		case errors.Is(err, context.Canceled):
			s.writeError(w, StatusClientClosedRequest, err)
		default:
			// The query already validated in toQuery, so an engine failure
			// here is a server-side fault, not a bad request.
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.searches.Add(1)
	if qresp.Partial {
		w.Header().Set(PartialHeader, "1")
	}
	writeJSON(w, http.StatusOK, searchResponseJSON(qresp, took))
}

// searchResponseJSON converts an engine response to the wire shape.
func searchResponseJSON(qresp query.Response, took time.Duration) SearchResponse {
	return SearchResponseJSON(qresp, took)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	pts, err := ToInsertPoints(s.vocab, req.Points)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.router.Insert(trajectory.Trajectory{Pts: pts})
	if err != nil {
		// Request-shaped problems were rejected above (coordinates, activity
		// resolution); what remains is a router/index fault.
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.inserts.Add(1)
	writeJSON(w, http.StatusOK, InsertResponse{ID: uint32(id)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := s.router.Delete(trajectory.TrajID(req.ID)); err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.deletes.Add(1)
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSec:     time.Since(s.started).Seconds(),
		Searches:      s.searches.Load(),
		Inserts:       s.inserts.Load(),
		Deletes:       s.deletes.Load(),
		Workers:       s.workers,
		Index:         s.router.Stats(),
		MutationEpoch: s.router.Epoch(),
		Subscriptions: s.hub.Stats(),
	})
}

// readJSON decodes a POST body into dst (size-capped, unknown fields
// rejected — see DecodeJSON), replying with the appropriate error status
// itself when it returns false.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if status, err := DecodeJSON(w, r, dst, DefaultMaxBodyBytes); status != 0 {
		s.writeError(w, status, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	WriteJSON(w, status, v)
}

// writeError replies with a JSON error body. Client-addressable statuses
// (4xx, including 499) carry the actionable detail verbatim; server-side
// faults (5xx) are sanitized on the wire — engine and router error strings
// can name files, shard layout and index internals, which belong in the
// server log, not in a reply to an arbitrary network client.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.errlog.Printf("server: %d fault: %v", status, err)
		writeJSON(w, status, ErrorResponse{Error: http.StatusText(status)})
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

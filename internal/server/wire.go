package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// DefaultMaxBodyBytes caps request bodies on every JSON endpoint. The wire
// is server-to-server inside a cluster, so an oversized body is a fault to
// reject loudly (413), not a stream to buffer.
const DefaultMaxBodyBytes = 16 << 20

// PartialHeader marks a search reply whose results deliberately exclude
// failed shards (the JSON body's "partial" field carries the same fact; the
// header lets proxies and load-balancers see it without parsing the body).
const PartialHeader = "X-Atsq-Partial"

// DecodeJSON decodes a POST body of at most maxBytes (<= 0 selects
// DefaultMaxBodyBytes) into dst, rejecting unknown fields. On failure it
// returns the HTTP status the caller should answer: 405 for a non-POST, 413
// when the body exceeds the cap, 400 for malformed JSON or unknown fields.
// On success the returned status is 0. The cluster's node and router
// servers share this with the single-process server so every tier rejects
// garbage identically.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any, maxBytes int64) (int, error) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, fmt.Errorf("use POST")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return 0, nil
}

// WriteJSON writes v as the JSON reply body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// ToQuery converts wire points to a validated query. vocab resolves
// activity names; nil restricts points to numeric activity IDs. Search
// points may reference IDs outside the vocabulary (they simply match
// nothing).
func ToQuery(vocab *trajectory.Vocabulary, pts []QueryPointJSON) (query.Query, error) {
	var q query.Query
	for i, p := range pts {
		acts, err := toActs(vocab, p, false)
		if err != nil {
			return q, fmt.Errorf("point %d: %w", i, err)
		}
		q.Pts = append(q.Pts, query.Point{Loc: pointOf(p), Acts: acts})
	}
	return q, q.Validate()
}

// ToQueryRequest converts a wire SearchRequest into the engine request,
// applying the DefaultK fallback.
func ToQueryRequest(vocab *trajectory.Vocabulary, req SearchRequest) (query.Request, error) {
	q, err := ToQuery(vocab, req.Points)
	if err != nil {
		return query.Request{}, err
	}
	sreq := query.Request{
		Query:           q,
		K:               req.K,
		Ordered:         req.Ordered,
		InitialBound:    req.InitialBound,
		WithMatches:     req.WithMatches,
		RequireComplete: req.RequireComplete,
		Subtrajectory:   req.Subtrajectory,
		MinSpanPoints:   req.MinSpanPoints,
		MaxSpanPoints:   req.MaxSpanPoints,
	}
	if sreq.K <= 0 {
		sreq.K = DefaultK
	}
	if req.Region != nil {
		rect := geo.NewRect(req.Region.MinX, req.Region.MinY, req.Region.MaxX, req.Region.MaxY)
		sreq.Region = &rect
	}
	// Span options are request-shape errors: reject at the wire door (400),
	// like malformed points, rather than surfacing an engine error as a 500.
	if err := sreq.ValidateSpan(); err != nil {
		return query.Request{}, err
	}
	return sreq, nil
}

// ToInsertPoints converts wire points into trajectory points for insertion,
// rejecting non-finite coordinates and (when vocab is non-nil) activity IDs
// outside the vocabulary.
func ToInsertPoints(vocab *trajectory.Vocabulary, pts []QueryPointJSON) ([]trajectory.Point, error) {
	if len(pts) == 0 {
		// A point-less trajectory can never match and its global ID could
		// never be reclaimed (IDs are dense and stable forever).
		return nil, fmt.Errorf("trajectory has no points")
	}
	out := make([]trajectory.Point, len(pts))
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("point %d: non-finite coordinates", i)
		}
		acts, err := toActs(vocab, p, true)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = trajectory.Point{Loc: pointOf(p), Acts: acts}
	}
	return out, nil
}

// PointsJSON converts trajectory points to the wire shape (the inverse of
// ToInsertPoints up to name resolution); the cluster router uses it to fan
// inserts out to shard replicas.
func PointsJSON(pts []trajectory.Point) []QueryPointJSON {
	out := make([]QueryPointJSON, len(pts))
	for i, p := range pts {
		out[i] = QueryPointJSON{X: p.Loc.X, Y: p.Loc.Y}
		if len(p.Acts) > 0 {
			acts := make([]int, len(p.Acts))
			for k, a := range p.Acts {
				acts[k] = int(a)
			}
			out[i].Acts = acts
		}
	}
	return out
}

// SearchResponseJSON converts an engine response to the wire shape.
func SearchResponseJSON(qresp query.Response, took time.Duration) SearchResponse {
	resp := SearchResponse{
		Results:   make([]ResultJSON, len(qresp.Results)),
		Stats:     qresp.Stats,
		TookUS:    took.Microseconds(),
		Truncated: qresp.Truncated,
		Partial:   qresp.Partial,
	}
	for i, r := range qresp.Results {
		resp.Results[i] = ResultJSON{ID: uint32(r.ID), Dist: r.Dist}
		if i < len(qresp.Matches) {
			resp.Results[i].Matches = qresp.Matches[i]
		}
		if i < len(qresp.Spans) {
			resp.Results[i].Span = []int32{qresp.Spans[i][0], qresp.Spans[i][1]}
		}
	}
	return resp
}

// toActs resolves a wire point's activity IDs and names into a normalized
// set. Inserts must stay within the vocabulary (the index would reject them
// later with a server-side status otherwise); searches may reference any ID
// and simply match nothing.
func toActs(vocab *trajectory.Vocabulary, p QueryPointJSON, forInsert bool) (trajectory.ActivitySet, error) {
	ids := make([]trajectory.ActivityID, 0, len(p.Acts)+len(p.Names))
	for _, a := range p.Acts {
		if a < 0 {
			return nil, fmt.Errorf("negative activity ID %d", a)
		}
		if forInsert && vocab != nil && a >= vocab.Size() {
			return nil, fmt.Errorf("activity ID %d outside vocabulary (size %d)", a, vocab.Size())
		}
		ids = append(ids, trajectory.ActivityID(a))
	}
	for _, name := range p.Names {
		if vocab == nil {
			return nil, fmt.Errorf("activity names not supported (no vocabulary)")
		}
		id, ok := vocab.ID(name)
		if !ok {
			return nil, fmt.Errorf("activity %q not in vocabulary", name)
		}
		ids = append(ids, id)
	}
	return trajectory.NewActivitySet(ids...), nil
}

func pointOf(p QueryPointJSON) geo.Point {
	return geo.Point{X: p.X, Y: p.Y}
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  EventJSON
}

// readFrame blocks until the next complete SSE frame, skipping keepalive
// comments.
func readFrame(t *testing.T, br *bufio.Reader) sseFrame {
	t.Helper()
	var fr sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if fr.event != "" {
				return fr
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			fr.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &fr.data); err != nil {
				t.Fatalf("sse data: %v in %q", err, line)
			}
		}
	}
}

// waitActive polls the hub until it reports want active subscriptions.
func waitActive(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Hub().Stats().Active == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub never reached %d active subscriptions: %+v", want, s.Hub().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// remotePoint places query/insert geometry far outside the generated
// corpus region, so inserted trajectories' distances dominate every corpus
// member and event sequences are deterministic.
func remotePoint(x, y float64, acts ...int) QueryPointJSON {
	return QueryPointJSON{X: x, Y: y, Acts: acts}
}

// TestSubscribeSSELifecycle drives the default streaming mode end to end:
// the opening resync frame, a join event caused by an insert that must enter
// the top-k (verified byte-identical against a fresh search), and the
// client hang-up freeing the subscription.
func TestSubscribeSSELifecycle(t *testing.T) {
	s, _ := testServer(t, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sreq := SearchRequest{K: 3, Points: []QueryPointJSON{remotePoint(500, 500, 7)}}
	body, _ := json.Marshal(sreq)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/subscribe", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("subscribe: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	br := bufio.NewReader(resp.Body)
	first := readFrame(t, br)
	if first.event != "resync" || first.data.Kind != "resync" {
		t.Fatalf("first frame = %+v, want resync", first)
	}
	waitActive(t, s, 1)

	// An insert at the query point with the exact activities scores zero:
	// it MUST join (the admissible prefilter cannot reject it).
	ins := post[InsertResponse](t, ts, "/v1/insert", InsertRequest{Points: []QueryPointJSON{remotePoint(500, 500, 7)}}, http.StatusOK)
	// A full seed top-k emits a leave (the displaced member) before the
	// join; consume frames gaplessly until the join arrives.
	seq := first.data.Seq
	var join sseFrame
	for {
		fr := readFrame(t, br)
		seq++
		if fr.data.Seq != seq {
			t.Fatalf("frame seq %d, want gapless %d", fr.data.Seq, seq)
		}
		if fr.event == "join" {
			join = fr
			break
		}
		if fr.event != "leave" {
			t.Fatalf("unexpected frame before join: %+v", fr)
		}
	}
	if join.data.ID != ins.ID || join.data.Dist != 0 {
		t.Fatalf("expected join of %d at dist 0, got %+v", ins.ID, join)
	}

	// The event's top-k snapshot must equal a from-scratch search.
	fresh := post[SearchResponse](t, ts, "/v1/search", sreq, http.StatusOK)
	if len(join.data.TopK) != len(fresh.Results) {
		t.Fatalf("event topk %v != fresh search %v", join.data.TopK, fresh.Results)
	}
	for i := range fresh.Results {
		if join.data.TopK[i].ID != fresh.Results[i].ID || join.data.TopK[i].Dist != fresh.Results[i].Dist {
			t.Fatalf("event topk[%d] %+v != fresh %+v", i, join.data.TopK[i], fresh.Results[i])
		}
	}

	// /v1/stats surfaces the hub and the mutation epoch.
	st := get[StatsResponse](t, ts, "/v1/stats")
	if st.Subscriptions.Active != 1 || st.Subscriptions.Events == 0 {
		t.Fatalf("stats subscriptions: %+v", st.Subscriptions)
	}
	if st.MutationEpoch == 0 {
		t.Fatalf("stats mutation epoch not surfaced: %+v", st)
	}

	// Hang up mid-stream: the server must free the subscription.
	cancel()
	waitActive(t, s, 0)
}

// TestSubscribeLongPollResume drives ?mode=poll: events accumulate while the
// client is away, a long-poll from an old cursor replays exactly the missed
// events, and unsubscribe invalidates the ID.
func TestSubscribeLongPollResume(t *testing.T) {
	s, _ := testServer(t, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sreq := SearchRequest{K: 4, Points: []QueryPointJSON{remotePoint(700, 700, 9)}}
	sub := post[SubscribeResponse](t, ts, "/v1/subscribe?mode=poll", sreq, http.StatusOK)
	waitActive(t, s, 1)

	// Two inserts at distinct distances, each forced into the top-k.
	post[InsertResponse](t, ts, "/v1/insert", InsertRequest{Points: []QueryPointJSON{remotePoint(700.5, 700, 9)}}, http.StatusOK)
	post[InsertResponse](t, ts, "/v1/insert", InsertRequest{Points: []QueryPointJSON{remotePoint(700.25, 700, 9)}}, http.StatusOK)
	s.Hub().Sync()

	all := get[PollResponse](t, ts, fmt.Sprintf("/v1/subscribe?id=%d&from=%d&wait=2s", sub.ID, sub.Seq))
	if len(all.Events) < 2 {
		t.Fatalf("expected >= 2 events after two admitted inserts, got %+v", all)
	}
	for i, ev := range all.Events {
		if want := sub.Seq + 1 + uint64(i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (gapless replay)", i, ev.Seq, want)
		}
	}

	// Resume from the first event's sequence: exactly the rest, verbatim.
	rest := get[PollResponse](t, ts, fmt.Sprintf("/v1/subscribe?id=%d&from=%d&wait=2s", sub.ID, all.Events[0].Seq))
	if len(rest.Events) != len(all.Events)-1 {
		t.Fatalf("resume returned %d events, want %d", len(rest.Events), len(all.Events)-1)
	}
	for i, ev := range rest.Events {
		want := all.Events[i+1]
		got, _ := json.Marshal(ev)
		exp, _ := json.Marshal(want)
		if !bytes.Equal(got, exp) {
			t.Fatalf("resumed event %d = %s, want %s", i, got, exp)
		}
	}

	// A caught-up cursor with a short wait answers an empty page.
	last := all.Events[len(all.Events)-1].Seq
	empty := get[PollResponse](t, ts, fmt.Sprintf("/v1/subscribe?id=%d&from=%d&wait=30ms", sub.ID, last))
	if len(empty.Events) != 0 || empty.Closed {
		t.Fatalf("caught-up poll = %+v, want empty open page", empty)
	}

	if r := post[UnsubscribeResponse](t, ts, "/v1/unsubscribe", UnsubscribeRequest{ID: sub.ID}, http.StatusOK); !r.Removed {
		t.Fatal("unsubscribe reported not removed")
	}
	if r := post[UnsubscribeResponse](t, ts, "/v1/unsubscribe", UnsubscribeRequest{ID: sub.ID}, http.StatusOK); r.Removed {
		t.Fatal("double unsubscribe reported removed")
	}
	resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/subscribe?id=%d&from=0", sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("poll after unsubscribe: status %d, want 404", resp.StatusCode)
	}
	waitActive(t, s, 0)
}

// TestSubscribeSlowConsumerResync shrinks the event ring to 2 and overflows
// it, asserting the consumer is handed a single documented `resync` event
// carrying the full current top-k rather than a gapped backlog.
func TestSubscribeSlowConsumerResync(t *testing.T) {
	s, _ := testServerOpts(t, 2, Options{Workers: 2, SubscriptionBuffer: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sreq := SearchRequest{K: 1, Points: []QueryPointJSON{remotePoint(1000, 1000, 5)}}
	sub := post[SubscribeResponse](t, ts, "/v1/subscribe?mode=poll", sreq, http.StatusOK)

	// Each insert is closer than the last; with k=1 every admitted insert
	// displaces the incumbent, emitting up to two events — at least 5 total,
	// overflowing the 2-slot ring.
	var lastID uint32
	for _, dx := range []float64{0.8, 0.4, 0.1} {
		ins := post[InsertResponse](t, ts, "/v1/insert", InsertRequest{Points: []QueryPointJSON{remotePoint(1000+dx, 1000, 5)}}, http.StatusOK)
		lastID = ins.ID
	}
	s.Hub().Sync()

	page := get[PollResponse](t, ts, fmt.Sprintf("/v1/subscribe?id=%d&from=%d&wait=2s", sub.ID, sub.Seq))
	if len(page.Events) != 1 || page.Events[0].Kind != "resync" {
		t.Fatalf("overflowed consumer got %+v, want a single resync event", page.Events)
	}
	rs := page.Events[0]
	if len(rs.TopK) != 1 || rs.TopK[0].ID != lastID {
		t.Fatalf("resync topk = %+v, want the final nearest insert %d", rs.TopK, lastID)
	}
	if hs := s.Hub().Stats(); hs.Resyncs == 0 {
		t.Fatalf("resync not counted: %+v", hs)
	}

	// The resync's sequence is current: following from it replays cleanly.
	after := get[PollResponse](t, ts, fmt.Sprintf("/v1/subscribe?id=%d&from=%d&wait=30ms", sub.ID, rs.Seq))
	if len(after.Events) != 0 {
		t.Fatalf("post-resync poll = %+v, want empty", after.Events)
	}
}

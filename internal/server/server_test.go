package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

func testServer(t *testing.T, shards int) (*Server, *trajectory.Dataset) {
	t.Helper()
	return testServerOpts(t, shards, Options{Workers: 2})
}

// testServerOpts builds a server over a fresh small corpus with explicit
// options (Vocab is filled in from the generated dataset).
func testServerOpts(t *testing.T, shards int, opts Options) (*Server, *trajectory.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name:            "srv",
		Seed:            3,
		NumTrajectories: 200,
		NumVenues:       400,
		VocabSize:       150,
		RegionW:         30,
		RegionH:         30,
		Clusters:        5,
		TrajLenMean:     10,
		TrajLenStd:      4,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	r, err := shard.NewRouter(ds, shard.Config{Shards: shards})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	opts.Vocab = ds.Vocab
	s := New(r, opts)
	t.Cleanup(s.Close)
	return s, ds
}

func post[T any](t *testing.T, ts *httptest.Server, path string, body any, wantStatus int) T {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, e.Error)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return out
}

func get[T any](t *testing.T, ts *httptest.Server, path string) T {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return out
}

// searchReqOf converts a generated query to its wire form.
func searchReqOf(q query.Query, k int, ordered bool) SearchRequest {
	req := SearchRequest{K: k, Ordered: ordered}
	for _, p := range q.Pts {
		wire := QueryPointJSON{X: p.Loc.X, Y: p.Loc.Y}
		for _, a := range p.Acts {
			wire.Acts = append(wire.Acts, int(a))
		}
		req.Points = append(req.Points, wire)
	}
	return req
}

// TestSearchMatchesEngine: HTTP search results must equal a direct
// single-index engine's on the same corpus, proving the whole wire path
// (decode → sharded search → encode) is lossless.
func TestSearchMatchesEngine(t *testing.T) {
	s, ds := testServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, err := delta.NewDynamic(ds, delta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := d.NewEngine()
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			var want []query.Result
			if ordered {
				want, err = oracle.SearchOATSQ(q, 9)
			} else {
				want, err = oracle.SearchATSQ(q, 9)
			}
			if err != nil {
				t.Fatal(err)
			}
			got := post[SearchResponse](t, ts, "/v1/search", searchReqOf(q, 9, ordered), http.StatusOK)
			if len(got.Results) != len(want) {
				t.Fatalf("q%d: %d results, want %d", qi, len(got.Results), len(want))
			}
			for i := range want {
				if uint32(want[i].ID) != got.Results[i].ID || want[i].Dist != got.Results[i].Dist {
					t.Fatalf("q%d result %d: got %+v want %+v", qi, i, got.Results[i], want[i])
				}
			}
			if got.Stats.ShardsSearched+got.Stats.ShardsSkipped != 4 {
				t.Fatalf("q%d: stats do not cover the 4 shards: %+v", qi, got.Stats)
			}
		}
	}
}

// TestInsertDeleteStats drives the mutation endpoints: an inserted
// trajectory becomes findable over HTTP, a deleted one disappears, and the
// stats endpoint tracks the traffic.
func TestInsertDeleteStats(t *testing.T) {
	s, ds := testServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An insert at a fresh far-away location with a distinctive activity.
	actName := ""
	for id := 0; id < ds.Vocab.Size(); id++ {
		actName = ds.Vocab.Name(trajectory.ActivityID(id))
		if actName != "" {
			break
		}
	}
	ins := post[InsertResponse](t, ts, "/v1/insert", InsertRequest{Points: []QueryPointJSON{
		{X: 1.5, Y: 2.5, Names: []string{actName}},
		{X: 1.6, Y: 2.6, Names: []string{actName}},
	}}, http.StatusOK)
	if int(ins.ID) != len(ds.Trajs) {
		t.Fatalf("insert assigned ID %d, want %d", ins.ID, len(ds.Trajs))
	}

	q := SearchRequest{K: 3, Points: []QueryPointJSON{{X: 1.5, Y: 2.5, Names: []string{actName}}}}
	res := post[SearchResponse](t, ts, "/v1/search", q, http.StatusOK)
	if len(res.Results) == 0 || res.Results[0].ID != ins.ID {
		t.Fatalf("inserted trajectory not top result: %+v", res.Results)
	}

	post[DeleteResponse](t, ts, "/v1/delete", DeleteRequest{ID: ins.ID}, http.StatusOK)
	res = post[SearchResponse](t, ts, "/v1/search", q, http.StatusOK)
	for _, r := range res.Results {
		if r.ID == ins.ID {
			t.Fatalf("deleted trajectory still served: %+v", res.Results)
		}
	}

	st := get[StatsResponse](t, ts, "/v1/stats")
	if st.Inserts != 1 || st.Deletes != 1 || st.Searches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Index.Shards != 4 || st.Index.NextID != len(ds.Trajs)+1 {
		t.Fatalf("index stats = %+v", st.Index)
	}

	hz := get[map[string]any](t, ts, "/healthz")
	if hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}
}

// TestBadRequests pins the error contract: malformed bodies, unknown
// fields, invalid queries, unknown activities and unknown deletes.
func TestBadRequests(t *testing.T) {
	s, _ := testServer(t, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path   string
		body   string
		status int
	}{
		{"/v1/search", `{"points":[]}`, http.StatusBadRequest},                              // no query points
		{"/v1/search", `{"points":[{"x":1,"y":2}]}`, http.StatusBadRequest},                 // point without activities
		{"/v1/search", `{"nope":1}`, http.StatusBadRequest},                                 // unknown field
		{"/v1/search", `{"points":[{"x":1,"y":2,"acts":[-3]}]}`, http.StatusBadRequest},     // negative ID
		{"/v1/search", `{"points":[{"x":1,"y":2,"names":["zzz"]}]}`, http.StatusBadRequest}, // unknown name
		{"/v1/search", `not json`, http.StatusBadRequest},                                   //
		{"/v1/delete", `{"id":4000000}`, http.StatusNotFound},                               // unknown trajectory
		{"/v1/insert", `{"points":[{"x":1,"y":2,"names":["zzz"]}]}`, http.StatusBadRequest}, // unknown name
		{"/v1/insert", `{"points":[{"x":1,"y":2,"acts":[999999]}]}`, http.StatusBadRequest}, // out-of-vocab insert
		{"/v1/insert", `{"points":[]}`, http.StatusBadRequest},                              // point-less trajectory
		{"/v1/insert", `{"points":[{"x":1e999,"y":2}]}`, 0},                                 // non-finite coordinate -> decode error
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatalf("POST %s: %v", c.path, err)
		}
		resp.Body.Close()
		if c.status != 0 && resp.StatusCode != c.status {
			t.Fatalf("POST %s %q: status %d, want %d", c.path, c.body, resp.StatusCode, c.status)
		}
		if c.status == 0 && resp.StatusCode == http.StatusOK {
			t.Fatalf("POST %s %q: accepted", c.path, c.body)
		}
	}

	// Method misuse.
	if resp, err := http.Get(ts.URL + "/v1/search"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/search: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/v1/stats", "application/json", bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /v1/stats: %d", resp.StatusCode)
		}
	}
}

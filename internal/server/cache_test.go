package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/queries"
	"activitytraj/internal/shard"
)

// TestSearchResultCache drives the server-side result cache end to end: a
// repeated search hits (identical results, stats reduced to the hit
// marker), a mutation through the HTTP API invalidates every cached entry,
// and the post-mutation answer reflects the new corpus.
func TestSearchResultCache(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Name:            "srvcache",
		Seed:            3,
		NumTrajectories: 200,
		NumVenues:       400,
		VocabSize:       150,
		RegionW:         30,
		RegionH:         30,
		Clusters:        5,
		TrajLenMean:     10,
		TrajLenStd:      4,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	r, err := shard.NewRouter(ds, shard.Config{Shards: 4})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	s := New(r, Options{Workers: 2, Vocab: ds.Vocab, ResultCacheEntries: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qs, err := queries.Generate(ds, queries.Config{NumQueries: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	wire := searchReqOf(qs[0], 9, false)

	first := post[SearchResponse](t, ts, "/v1/search", wire, http.StatusOK)
	if first.Stats.ResultCacheHits != 0 || first.Stats.ResultCacheMisses != 1 {
		t.Fatalf("first search stats %+v, want one recorded miss", first.Stats)
	}
	second := post[SearchResponse](t, ts, "/v1/search", wire, http.StatusOK)
	if second.Stats.ResultCacheHits != 1 {
		t.Fatalf("repeat search stats %+v, want a cache hit", second.Stats)
	}
	if second.Stats.Candidates != 0 || second.Stats.PageReads != 0 {
		t.Fatalf("hit stats %+v claim search work that was not performed", second.Stats)
	}
	if !reflect.DeepEqual(second.Results, first.Results) {
		t.Fatalf("cached results differ: %+v vs %+v", second.Results, first.Results)
	}

	// A mutation must invalidate: delete the top result and re-search.
	if len(first.Results) == 0 {
		t.Fatal("test query returned no results")
	}
	victim := first.Results[0].ID
	post[DeleteResponse](t, ts, "/v1/delete", DeleteRequest{ID: victim}, http.StatusOK)
	third := post[SearchResponse](t, ts, "/v1/search", wire, http.StatusOK)
	if third.Stats.ResultCacheHits != 0 {
		t.Fatalf("post-delete search served from cache: %+v", third.Stats)
	}
	for _, res := range third.Results {
		if res.ID == victim {
			t.Fatalf("deleted trajectory %d still in post-delete results", victim)
		}
	}
	// And the fresh answer caches again.
	fourth := post[SearchResponse](t, ts, "/v1/search", wire, http.StatusOK)
	if fourth.Stats.ResultCacheHits != 1 {
		t.Fatalf("post-delete repeat stats %+v, want a cache hit", fourth.Stats)
	}
	if !reflect.DeepEqual(fourth.Results, third.Results) {
		t.Fatal("post-delete cached results differ from their miss")
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/faultfs"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

func healthDataset(t *testing.T) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name:            "health",
		Seed:            11,
		NumTrajectories: 120,
		NumVenues:       200,
		VocabSize:       80,
		RegionW:         30,
		RegionH:         30,
		Clusters:        4,
		TrajLenMean:     8,
		TrajLenStd:      3,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return ds
}

func getHealth(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return resp.StatusCode, body
}

// TestHealthzDegradesOnCompactionFailure: a shard whose background
// compaction fails must flip /healthz to 503 with the failure surfaced,
// so load balancers route away from a server serving a wedged shard.
func TestHealthzDegradesOnCompactionFailure(t *testing.T) {
	ds := healthDataset(t)
	// The first rename is the fresh open's router.json commit; the second is
	// the first compaction's snapshot commit — failing it makes CompactNow
	// error out on the background path, which records LastCompactErr.
	ffs := faultfs.New(nil, faultfs.Plan{CrashOnRename: 2})
	r, _, err := shard.OpenOrCreate(ds, shard.Config{
		Shards: 2,
		// Threshold 1: the very first insert triggers background compaction.
		Delta:      delta.Config{CompactThreshold: 1},
		Durability: delta.Durability{Dir: t.TempDir(), FS: ffs},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := New(r, Options{Workers: 1, Vocab: ds.Vocab})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := getHealth(t, ts); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy server: status %d body %v", code, body)
	}

	// The insert itself may fail if the injected crash latches before the
	// routing journal commits; either way the background compaction must
	// record its failure.
	_, _ = r.Insert(trajectory.Trajectory{Pts: ds.Trajs[0].Pts})
	deadline := time.Now().Add(5 * time.Second)
	for {
		degraded := false
		for _, ss := range r.Stats().PerShard {
			degraded = degraded || ss.CompactErr != ""
		}
		if degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard recorded a compaction failure")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body := getHealth(t, ts)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status = %d, want 503 (body %v)", code, body)
	}
	if body["status"] != "compaction-failed" {
		t.Fatalf("degraded healthz body = %v", body)
	}
	errs, ok := body["compact_errors"].(map[string]any)
	if !ok || len(errs) == 0 {
		t.Fatalf("healthz did not surface the compaction error: %v", body)
	}
}

// TestHealthzReportsRecovery: a server booted from a recovered data
// directory reports the replay summary on /healthz.
func TestHealthzReportsRecovery(t *testing.T) {
	ds := healthDataset(t)
	cfg := shard.Config{
		Shards:     2,
		Delta:      delta.Config{CompactThreshold: -1},
		Durability: delta.Durability{Dir: t.TempDir()},
	}
	r, _, err := shard.OpenOrCreate(ds, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(trajectory.Trajectory{Pts: ds.Trajs[i].Pts}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, ri, err := shard.OpenOrCreate(ds, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	s := New(r2, Options{Workers: 1, Vocab: ds.Vocab, Recovery: &ri})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := getHealth(t, ts)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("recovered healthz: status %d body %v", code, body)
	}
	rec, ok := body["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing recovery summary: %v", body)
	}
	if replayed, _ := rec["JournalReplayed"].(float64); replayed != 5 {
		t.Fatalf("recovery.JournalReplayed = %v, want 5 (%v)", rec["JournalReplayed"], rec)
	}
}

// TestWriteErrorSanitizesServerFaults: 5xx bodies must not echo internal
// error strings to network clients — the detail goes to the server log —
// while 4xx bodies keep their actionable message verbatim.
func TestWriteErrorSanitizesServerFaults(t *testing.T) {
	s, _ := testServer(t, 2)
	var logged bytes.Buffer
	s.errlog = log.New(&logged, "", 0)

	rec := httptest.NewRecorder()
	s.writeError(rec, http.StatusInternalServerError, errors.New("shard-003: /var/db/wal-007.seg exploded"))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(e.Error, "exploded") || strings.Contains(e.Error, "wal-007") {
		t.Fatalf("500 body leaked internal detail: %q", e.Error)
	}
	if e.Error != http.StatusText(http.StatusInternalServerError) {
		t.Fatalf("500 body = %q, want the generic status text", e.Error)
	}
	if !strings.Contains(logged.String(), "wal-007.seg exploded") {
		t.Fatalf("server log lost the fault detail: %q", logged.String())
	}

	rec = httptest.NewRecorder()
	s.writeError(rec, http.StatusBadRequest, errors.New("point 3: non-finite coordinates"))
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error != "point 3: non-finite coordinates" {
		t.Fatalf("400 body = %q, want the verbatim message", e.Error)
	}
}

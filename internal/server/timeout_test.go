package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"activitytraj/internal/geo"
	"activitytraj/internal/queries"
)

// TestSearchTimeout504 pins the deadline path: a search whose per-request
// ?timeout= budget has no chance of being met answers 504 Gateway Timeout
// with a Truncated reply — distinct from the 400 a malformed request gets
// and from a 500 engine fault.
func TestSearchTimeout504(t *testing.T) {
	s, ds := testServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qs, err := queries.Generate(ds, queries.Config{NumQueries: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(searchReqOf(qs[0], 9, false))
	if err != nil {
		t.Fatal(err)
	}

	// 1ns is deterministically expired by the time the engine checks it.
	resp, err := http.Post(ts.URL+"/v1/search?timeout=1ns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode 504 body: %v", err)
	}
	if !sr.Truncated {
		t.Fatalf("504 reply not marked truncated: %+v", sr)
	}
	if sr.Stats.PageReads != 0 {
		t.Fatalf("expired budget still read %d pages", sr.Stats.PageReads)
	}

	// A generous budget answers 200 as usual; a malformed one is a 400.
	resp2, err := http.Post(ts.URL+"/v1/search?timeout=30s", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("30s budget: status %d, want 200", resp2.StatusCode)
	}
	for _, bad := range []string{"nope", "-5s", "0s"} {
		resp3, err := http.Post(ts.URL+"/v1/search?timeout="+bad, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout=%s: status %d, want 400", bad, resp3.StatusCode)
		}
	}
}

// TestSearchWithMatchesAndOptionsOnWire: with_matches returns per-result
// covers whose point distances rebuild the reported distance; region and
// initial_bound round-trip through JSON and filter like the engine-level
// options they map to.
func TestSearchWithMatchesAndOptionsOnWire(t *testing.T) {
	s, ds := testServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	qs, err := queries.Generate(ds, queries.Config{NumQueries: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		req := searchReqOf(q, 5, false)
		req.WithMatches = true
		got := post[SearchResponse](t, ts, "/v1/search", req, http.StatusOK)
		if len(got.Results) == 0 {
			continue
		}
		for ri, r := range got.Results {
			if len(r.Matches) != len(q.Pts) {
				t.Fatalf("q%d result %d: %d covers for %d query points", qi, ri, len(r.Matches), len(q.Pts))
			}
			var sum float64
			for pi, qp := range q.Pts {
				for _, idx := range r.Matches[pi] {
					sum += geo.Dist(qp.Loc, ds.Trajs[r.ID].Pts[idx].Loc)
				}
			}
			if math.Abs(sum-r.Dist) > 1e-9*(1+r.Dist) {
				t.Fatalf("q%d result %d: cover distance %v != %v", qi, ri, sum, r.Dist)
			}
		}

		// initial_bound at the median distance keeps exactly the prefix.
		bound := got.Results[len(got.Results)/2].Dist
		if bound > 0 {
			breq := searchReqOf(q, 5, false)
			breq.InitialBound = bound
			bgot := post[SearchResponse](t, ts, "/v1/search", breq, http.StatusOK)
			want := 0
			for _, r := range got.Results {
				if r.Dist <= bound {
					want++
				}
			}
			if len(bgot.Results) != want {
				t.Fatalf("q%d: initial_bound %v kept %d results, want %d", qi, bound, len(bgot.Results), want)
			}
		}

		// An all-covering region changes nothing; a far-away one empties.
		rreq := searchReqOf(q, 5, false)
		rreq.Region = &RectJSON{MinX: -1e6, MinY: -1e6, MaxX: 1e6, MaxY: 1e6}
		rgot := post[SearchResponse](t, ts, "/v1/search", rreq, http.StatusOK)
		if len(rgot.Results) != len(got.Results) {
			t.Fatalf("q%d: all-covering region changed result count %d -> %d", qi, len(got.Results), len(rgot.Results))
		}
		rreq.Region = &RectJSON{MinX: 1e5, MinY: 1e5, MaxX: 1e5 + 1, MaxY: 1e5 + 1}
		rgot = post[SearchResponse](t, ts, "/v1/search", rreq, http.StatusOK)
		if len(rgot.Results) != 0 {
			t.Fatalf("q%d: far-away region still returned %d results", qi, len(rgot.Results))
		}
	}
}

package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

func TestQueryValidate(t *testing.T) {
	ok := Query{Pts: []Point{{Loc: geo.Point{}, Acts: trajectory.NewActivitySet(1, 2)}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if err := (Query{}).Validate(); err == nil {
		t.Fatal("empty query must be rejected")
	}
	noActs := Query{Pts: []Point{{Loc: geo.Point{}}}}
	if err := noActs.Validate(); err == nil {
		t.Fatal("empty activity set must be rejected")
	}
	unsorted := Query{Pts: []Point{{Loc: geo.Point{}, Acts: trajectory.ActivitySet{3, 1}}}}
	if err := unsorted.Validate(); err == nil {
		t.Fatal("unnormalized activity set must be rejected")
	}
	wide := make(trajectory.ActivitySet, 33)
	for i := range wide {
		wide[i] = trajectory.ActivityID(i)
	}
	tooWide := Query{Pts: []Point{{Loc: geo.Point{}, Acts: wide}}}
	if err := tooWide.Validate(); err == nil {
		t.Fatal("33 activities must be rejected")
	}
}

func TestAllActsAndDiameter(t *testing.T) {
	q := Query{Pts: []Point{
		{Loc: geo.Point{X: 0, Y: 0}, Acts: trajectory.NewActivitySet(3, 1)},
		{Loc: geo.Point{X: 3, Y: 4}, Acts: trajectory.NewActivitySet(1, 7)},
	}}
	if !q.AllActs().Equal(trajectory.NewActivitySet(1, 3, 7)) {
		t.Fatalf("AllActs = %v", q.AllActs())
	}
	if q.Diameter() != 5 {
		t.Fatalf("Diameter = %v", q.Diameter())
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

// TestTopKAgainstSort: TopK must return exactly the k smallest results
// under (Dist, ID) order, for random inputs.
func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(40)
		tk := NewTopK(k)
		var all []Result
		for i := 0; i < n; i++ {
			r := Result{ID: trajectory.TrajID(rng.Intn(30)), Dist: float64(rng.Intn(10))}
			all = append(all, r)
			tk.Offer(r)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].ID < all[j].ID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d: results %v, want %v", trial, got, want)
			}
		}
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	if !math.IsInf(tk.Threshold(), 1) || tk.Full() {
		t.Fatal("empty TopK must have +Inf threshold")
	}
	tk.Offer(Result{ID: 1, Dist: 5})
	if !math.IsInf(tk.Threshold(), 1) {
		t.Fatal("underfull TopK must keep +Inf threshold")
	}
	tk.Offer(Result{ID: 2, Dist: 3})
	if tk.Threshold() != 5 || !tk.Full() {
		t.Fatalf("threshold = %v", tk.Threshold())
	}
	tk.Offer(Result{ID: 3, Dist: 4})
	if tk.Threshold() != 4 {
		t.Fatalf("threshold after improvement = %v", tk.Threshold())
	}
	// Infinite results are ignored.
	tk.Offer(Result{ID: 4, Dist: math.Inf(1)})
	if tk.Threshold() != 4 {
		t.Fatal("Inf result must be ignored")
	}
}

func TestSearchStatsAdd(t *testing.T) {
	a := SearchStats{Candidates: 1, Scored: 2, PageReads: 3}
	a.Add(SearchStats{Candidates: 10, SketchRejected: 5, PageReads: 7})
	if a.Candidates != 11 || a.SketchRejected != 5 || a.Scored != 2 || a.PageReads != 10 {
		t.Fatalf("Add = %+v", a)
	}
}

package query

import (
	"reflect"
	"testing"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

func cacheReq(x float64, k int) Request {
	return Request{
		Query: New(Point{Loc: geo.Point{X: x, Y: 2}, Acts: trajectory.NewActivitySet(1, 4)}),
		K:     k,
	}
}

// TestResultCacheRoundTrip: a Put at an epoch is visible to a Get at the
// same epoch, invisible at any other, and the hit carries only the hit
// marker in its stats plus copies of the stored result slices.
func TestResultCacheRoundTrip(t *testing.T) {
	rc := NewResultCache(8, StaticEpoch{})
	req := cacheReq(1, 5)
	resp := Response{
		Results: []Result{{ID: 3, Dist: 0.5}, {ID: 9, Dist: 1.25}},
		Matches: [][][]int32{{{0, 2}}, {{1}}},
		Stats:   SearchStats{Candidates: 42, PageReads: 7},
	}
	if _, ok := rc.Get(0, req); ok {
		t.Fatal("empty cache reported a hit")
	}
	rc.Put(0, req, resp)
	got, ok := rc.Get(0, req)
	if !ok {
		t.Fatal("stored response not found at its epoch")
	}
	if !reflect.DeepEqual(got.Results, resp.Results) || !reflect.DeepEqual(got.Matches, resp.Matches) {
		t.Fatalf("cached payload differs: %+v vs %+v", got, resp)
	}
	if got.Stats != (SearchStats{ResultCacheHits: 1}) {
		t.Fatalf("hit stats = %+v, want only the hit marker", got.Stats)
	}
	if _, ok := rc.Get(1, req); ok {
		t.Fatal("entry from epoch 0 served at epoch 1")
	}
	// The returned top-level slices are fresh: mutating them must not
	// corrupt the cached copy.
	got.Results[0].ID = 999
	again, _ := rc.Get(0, req)
	if again.Results[0].ID != 3 {
		t.Fatal("mutating a hit's Results corrupted the cached entry")
	}
}

// TestResultCacheSkipsTruncated: cancellation artifacts must never be
// cached as answers.
func TestResultCacheSkipsTruncated(t *testing.T) {
	rc := NewResultCache(8, StaticEpoch{})
	req := cacheReq(1, 5)
	rc.Put(0, req, Response{Results: []Result{{ID: 1}}, Truncated: true})
	if _, ok := rc.Get(0, req); ok {
		t.Fatal("truncated response was cached")
	}
}

// TestEncodeRequestKeyDistinct: every field of the canonical key must
// separate requests — two requests differing in any response-affecting
// field encode differently, and re-encoding the same request is stable.
func TestEncodeRequestKeyDistinct(t *testing.T) {
	base := cacheReq(1, 5)
	if encodeRequestKey(base) != encodeRequestKey(cacheReq(1, 5)) {
		t.Fatal("identical requests encode differently")
	}
	region := geo.NewRect(0, 0, 1, 1)
	region2 := geo.NewRect(0, 0, 1, 2)
	variants := []Request{
		cacheReq(2, 5), // location
		cacheReq(1, 6), // K
		{Query: base.Query, K: 5, Ordered: true},
		{Query: base.Query, K: 5, WithMatches: true},
		{Query: base.Query, K: 5, InitialBound: 1.5},
		{Query: base.Query, K: 5, Region: &region},
		{Query: base.Query, K: 5, Region: &region2},
		{Query: New(base.Query.Pts[0], base.Query.Pts[0]), K: 5}, // point count
		{Query: New(Point{Loc: base.Query.Pts[0].Loc, Acts: trajectory.NewActivitySet(1)}), K: 5}, // acts
	}
	seen := map[string]int{encodeRequestKey(base): -1}
	for i, v := range variants {
		k := encodeRequestKey(v)
		if j, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d", i, j)
		}
		seen[k] = i
	}
}

// planKeyerFunc adapts a function to BatchKeyer for tests.
type planKeyerFunc func(q Query) uint64

func (f planKeyerFunc) BatchKey(q Query) uint64 { return f(q) }

// TestPlanGroupsPartition: planGroups must emit every request index exactly
// once, keep same-ancestor-cell requests together, and respect the group
// size cap.
func TestPlanGroupsPartition(t *testing.T) {
	reqs := make([]Request, 40)
	keyer := planKeyerFunc(func(q Query) uint64 {
		// Key by the X coordinate: three spatial clusters, one oversized.
		switch x := q.Pts[0].Loc.X; {
		case x < 10:
			return 0 // 1<<planGroupShift per-cluster spacing keeps clusters apart
		case x < 20:
			return 1 << planGroupShift
		default:
			return 2 << planGroupShift
		}
	})
	for i := range reqs {
		x := float64(i % 3 * 10) // clusters of ~13 each
		if i < 20 {
			x = 0 // first half all in cluster 0: exceeds planMaxGroup
		}
		reqs[i] = cacheReq(x, 5)
	}
	groups := planGroups(reqs, keyer)
	seen := make([]bool, len(reqs))
	for _, g := range groups {
		if len(g) == 0 || len(g) > planMaxGroup {
			t.Fatalf("group size %d outside (0, %d]", len(g), planMaxGroup)
		}
		key := keyer.BatchKey(reqs[g[0]].Query) >> planGroupShift
		for _, qi := range g {
			if seen[qi] {
				t.Fatalf("request %d scheduled twice", qi)
			}
			seen[qi] = true
			if k := keyer.BatchKey(reqs[qi].Query) >> planGroupShift; k != key {
				t.Fatalf("group mixes ancestor cells %d and %d", key, k)
			}
		}
	}
	for qi, ok := range seen {
		if !ok {
			t.Fatalf("request %d never scheduled", qi)
		}
	}
}

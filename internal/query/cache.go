package query

import (
	"encoding/binary"
	"math"

	"activitytraj/internal/cache"
)

// EpochSource exposes a monotone mutation counter used to invalidate
// cached search results. Implementations must guarantee apply-then-bump
// ordering: the counter is incremented AFTER a mutation becomes visible to
// searches and BEFORE the mutation is acknowledged to its caller. Under
// that discipline a search that reads epoch S before executing observes at
// least every mutation counted in S, so a cached response tagged S can be
// served at any later probe that still reads S — no acknowledged mutation
// can be missing from it. Static indexes may use a constant source (epoch
// 0 forever); composite engines may sum per-component monotone counters
// (equal sums of non-decreasing counters imply equal components).
//
// The delta-layer generation epoch of the dynamic index is NOT a valid
// source on its own: it advances on compaction swaps, not on every
// insert/delete. delta.Dynamic.Epoch and shard.Router.Epoch implement the
// mutation-inclusive counter this interface requires.
type EpochSource interface {
	// Epoch returns the current mutation counter. It must be safe for
	// concurrent use and monotone non-decreasing.
	Epoch() uint64
}

// StaticEpoch is the EpochSource for immutable indexes: the epoch is
// constant, so cached entries never expire.
type StaticEpoch struct{}

// Epoch implements EpochSource.
func (StaticEpoch) Epoch() uint64 { return 0 }

// ResultCache is a sharded LRU cache of complete search responses, keyed
// on the canonical encoding of the Request (query points, K, Ordered,
// InitialBound, Region, WithMatches, Subtrajectory and its span limits)
// tagged with the index's mutation
// epoch. A mutation bumps the epoch, so every entry written before it
// becomes unreachable at once — stale results can never serve (see
// EpochSource for the ordering argument). All methods are safe for
// concurrent use; hot entries parked under a dead epoch age out of the LRU
// naturally.
//
// Cached responses are treated as immutable: Get returns a copy whose
// top-level Results/Matches slices are fresh, but the per-result match
// index lists are shared — callers must not mutate them (no caller in this
// repository does; the server serializes them straight to JSON).
type ResultCache struct {
	c   *cache.Sharded[resultKey, Response]
	src EpochSource
}

// resultKey tags a canonical request encoding with the epoch it was
// computed under.
type resultKey struct {
	epoch uint64
	req   string
}

func hashResultKey(k resultKey) uint64 {
	// FNV-1a over the canonical request bytes, folded with the mixed epoch.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.req); i++ {
		h ^= uint64(k.req[i])
		h *= prime64
	}
	return h ^ cache.Uint64Hash(k.epoch)
}

// DefaultResultCacheEntries is the entry capacity NewResultCache uses when
// given a non-positive size.
const DefaultResultCacheEntries = 1024

// NewResultCache returns a result cache of up to entries responses
// (entries <= 0 selects DefaultResultCacheEntries), invalidated by src's
// epoch. src must not be nil; use StaticEpoch{} for an immutable index.
func NewResultCache(entries int, src EpochSource) *ResultCache {
	if entries <= 0 {
		entries = DefaultResultCacheEntries
	}
	return &ResultCache{
		c:   cache.New[resultKey, Response](entries, 0, hashResultKey),
		src: src,
	}
}

// Get returns the cached response for req at the given epoch, which the
// caller must have read from Epoch() before probing (and must reuse for
// the Put should the probe miss — see Put). A hit's Stats carries only
// ResultCacheHits: 1 — the original search's work was not performed for
// this request, so replaying its accounting would double-count every cost
// downstream aggregation sums.
func (rc *ResultCache) Get(epoch uint64, req Request) (Response, bool) {
	key := resultKey{epoch: epoch, req: encodeRequestKey(req)}
	resp, ok := rc.c.Get(key)
	if !ok {
		return Response{}, false
	}
	out := Response{
		Results: append([]Result(nil), resp.Results...),
		Stats:   SearchStats{ResultCacheHits: 1},
	}
	if resp.Matches != nil {
		out.Matches = append([][][]int32(nil), resp.Matches...)
	}
	if resp.Spans != nil {
		out.Spans = append([][2]int32(nil), resp.Spans...)
	}
	return out, true
}

// Put stores a completed response under req at the epoch the caller read
// BEFORE running the search (see EpochSource; a tag read after the search
// could claim mutations the search never saw). Truncated responses are
// never cached — they are cancellation artifacts, not answers. Partial
// responses are not cached either: they reflect a transient outage, not the
// index's state at the epoch, and must not outlive the failed replicas'
// recovery.
func (rc *ResultCache) Put(epoch uint64, req Request, resp Response) {
	if resp.Truncated || resp.Partial {
		return
	}
	key := resultKey{epoch: epoch, req: encodeRequestKey(req)}
	stored := Response{Results: append([]Result(nil), resp.Results...)}
	if resp.Matches != nil {
		stored.Matches = append([][][]int32(nil), resp.Matches...)
	}
	if resp.Spans != nil {
		stored.Spans = append([][2]int32(nil), resp.Spans...)
	}
	rc.c.Put(key, stored)
}

// Epoch reads the source's current epoch — the tag a caller must capture
// before probing and before executing the search whose response it will
// Put.
func (rc *ResultCache) Epoch() uint64 { return rc.src.Epoch() }

// Stats returns the cache's traffic counters.
func (rc *ResultCache) Stats() cache.Stats { return rc.c.Stats() }

// Len returns the number of resident entries (stale epochs included until
// they age out).
func (rc *ResultCache) Len() int { return rc.c.Len() }

// Reset empties the cache and zeroes its counters.
func (rc *ResultCache) Reset() { rc.c.Reset() }

// encodeRequestKey builds the canonical byte encoding of a request: every
// field that affects the response, fixed-width so distinct requests can
// never collide (float64s by their IEEE bits, so -0/+0 and NaN payloads
// encode distinctly rather than comparing loosely).
func encodeRequestKey(req Request) string {
	n := 1 + 4 + 8 + 4 // flags, K, InitialBound, point count
	if req.Region != nil {
		n += 32
	}
	for _, p := range req.Query.Pts {
		n += 16 + 4 + 4*len(p.Acts)
	}
	buf := make([]byte, 0, n)
	var flags byte
	if req.Ordered {
		flags |= 1
	}
	if req.WithMatches {
		flags |= 2
	}
	if req.Region != nil {
		flags |= 4
	}
	if req.RequireComplete {
		flags |= 8
	}
	if req.Subtrajectory {
		flags |= 16
	}
	buf = append(buf, flags)
	if req.Subtrajectory {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.MinSpanPoints))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.MaxSpanPoints))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.K))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(req.InitialBound))
	if r := req.Region; r != nil {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.MaxY))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Query.Pts)))
	for _, p := range req.Query.Pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Loc.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Loc.Y))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Acts)))
		for _, a := range p.Acts {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
		}
	}
	return string(buf)
}

package query

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// CloneableEngine is an Engine that can spawn independent copies sharing
// its immutable index structures. All engines in this repository implement
// it: index structures are read-only after build, and the shared storage
// layer (buffer pool, decoded-structure caches) is concurrency-safe, so
// clones may run in parallel.
type CloneableEngine interface {
	Engine
	Clone() Engine
}

// ParallelEngine serves queries across a fixed pool of engine clones, one
// per worker, so throughput scales with cores while each clone keeps its
// allocation-free scratch. It implements Engine (single queries borrow a
// clone from the pool) and adds SearchBatch for fan-out over a whole batch.
// All methods are safe for concurrent use.
type ParallelEngine struct {
	name    string
	mem     int64
	workers int
	pool    chan Engine

	mu    sync.Mutex
	stats SearchStats // aggregate of the last SearchBatch / single search
}

// NewParallelEngine builds a pool of workers clones of e. workers <= 0
// selects GOMAXPROCS.
func NewParallelEngine(e CloneableEngine, workers int) *ParallelEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelEngine{
		name:    e.Name(),
		mem:     e.MemBytes(),
		workers: workers,
		pool:    make(chan Engine, workers),
	}
	// The prototype itself becomes the first worker: a fresh clone's
	// scratch is identical to the prototype's, and reusing it means a
	// 1-worker ParallelEngine adds no engine state at all.
	p.pool <- e
	for i := 1; i < workers; i++ {
		p.pool <- e.Clone()
	}
	return p
}

// Name implements Engine.
func (p *ParallelEngine) Name() string { return p.name }

// MemBytes implements Engine. Clones share the index, so the footprint is
// the prototype's.
func (p *ParallelEngine) MemBytes() int64 { return p.mem }

// Workers returns the pool size.
func (p *ParallelEngine) Workers() int { return p.workers }

// LastStats implements Engine: the summed statistics of the last
// SearchBatch (or single search).
func (p *ParallelEngine) LastStats() SearchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// SearchATSQ implements Engine by borrowing one clone from the pool.
func (p *ParallelEngine) SearchATSQ(q Query, k int) ([]Result, error) {
	return p.searchOne(q, k, false)
}

// SearchOATSQ implements Engine by borrowing one clone from the pool.
func (p *ParallelEngine) SearchOATSQ(q Query, k int) ([]Result, error) {
	return p.searchOne(q, k, true)
}

func (p *ParallelEngine) searchOne(q Query, k int, ordered bool) ([]Result, error) {
	e := <-p.pool
	defer func() { p.pool <- e }()
	var rs []Result
	var err error
	if ordered {
		rs, err = e.SearchOATSQ(q, k)
	} else {
		rs, err = e.SearchATSQ(q, k)
	}
	if err != nil {
		return nil, err
	}
	st := e.LastStats()
	p.mu.Lock()
	p.stats = st
	p.mu.Unlock()
	return rs, nil
}

// SearchBatch answers qs[i] into the i-th result slot, fanning the batch
// out over the worker pool. Queries are handed to workers through a single
// atomic cursor, so a slow query never stalls the rest of the batch. On
// error the first failure (by query index) is reported and the remaining
// queries are abandoned. LastStats afterwards returns the summed statistics
// of all completed searches.
func (p *ParallelEngine) SearchBatch(qs []Query, k int, ordered bool) ([][]Result, error) {
	out := make([][]Result, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	workers := p.workers
	if workers > len(qs) {
		workers = len(qs)
	}

	var cursor atomic.Int64
	var failed atomic.Bool
	type werr struct {
		qi  int
		err error
	}
	errs := make([]werr, workers)
	var agg SearchStats
	var aggMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := <-p.pool
			defer func() { p.pool <- e }()
			errs[w].qi = -1
			var local SearchStats
			for !failed.Load() {
				qi := int(cursor.Add(1)) - 1
				if qi >= len(qs) {
					break
				}
				var err error
				if ordered {
					out[qi], err = e.SearchOATSQ(qs[qi], k)
				} else {
					out[qi], err = e.SearchATSQ(qs[qi], k)
				}
				if err != nil {
					errs[w] = werr{qi: qi, err: err}
					failed.Store(true)
					break
				}
				local.Add(e.LastStats())
			}
			aggMu.Lock()
			agg.Add(local)
			aggMu.Unlock()
		}(w)
	}
	wg.Wait()

	p.mu.Lock()
	p.stats = agg
	p.mu.Unlock()
	first := werr{qi: -1}
	for _, we := range errs {
		if we.err != nil && (first.qi < 0 || we.qi < first.qi) {
			first = we
		}
	}
	if first.err != nil {
		return out, fmt.Errorf("query %d: %w", first.qi, first.err)
	}
	return out, nil
}

package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// CloneableEngine is an Engine that can spawn independent copies sharing
// its immutable index structures. All engines in this repository implement
// it: index structures are read-only after build, and the shared storage
// layer (buffer pool, decoded-structure caches) is concurrency-safe, so
// clones may run in parallel.
type CloneableEngine interface {
	Engine
	Clone() Engine
}

// ParallelEngine serves queries across a fixed pool of engine clones, one
// per worker, so throughput scales with cores while each clone keeps its
// allocation-free scratch. It implements Engine (single queries borrow a
// clone from the pool) and adds SearchAll for fan-out over a whole batch.
// All serving methods are safe for concurrent use; the Set* configuration
// methods must be called before serving starts.
//
// When the pooled engine implements BatchKeyer, SearchAll additionally
// plans the batch: requests are grouped by spatial locality key and each
// group runs consecutively on one worker (warmed up front when the engine
// also implements SuperbatchWarmer), so N co-located queries fault each
// shared page and decoded structure once instead of N times. Planning only
// changes which worker answers which request — every request still runs
// through the engine's ordinary Search, so responses are byte-identical to
// serial execution. An attached ResultCache (SetResultCache) additionally
// answers repeated requests without searching at all, invalidated by the
// index's mutation epoch.
type ParallelEngine struct {
	name    string
	mem     int64
	workers int
	pool    chan Engine

	// noPlan disables cross-query batch planning (SetBatchPlanning); rcache
	// is the optional shared result cache. Both are serving configuration:
	// set before the first search, immutable afterwards.
	noPlan bool
	rcache *ResultCache

	mu    sync.Mutex
	stats SearchStats // aggregate of the last SearchAll / single search
}

// NewParallelEngine builds a pool of workers clones of e. workers <= 0
// selects GOMAXPROCS.
func NewParallelEngine(e CloneableEngine, workers int) *ParallelEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelEngine{
		name:    e.Name(),
		mem:     e.MemBytes(),
		workers: workers,
		pool:    make(chan Engine, workers),
	}
	// The prototype itself becomes the first worker: a fresh clone's
	// scratch is identical to the prototype's, and reusing it means a
	// 1-worker ParallelEngine adds no engine state at all.
	p.pool <- e
	for i := 1; i < workers; i++ {
		p.pool <- e.Clone()
	}
	return p
}

// Name implements Engine.
func (p *ParallelEngine) Name() string { return p.name }

// MemBytes implements Engine. Clones share the index, so the footprint is
// the prototype's.
func (p *ParallelEngine) MemBytes() int64 { return p.mem }

// Workers returns the pool size.
func (p *ParallelEngine) Workers() int { return p.workers }

// SetResultCache attaches (nil detaches) a shared epoch-invalidated result
// cache: requests whose canonical encoding was answered at the current
// mutation epoch return the cached response (Stats = one ResultCacheHit)
// without borrowing search work; misses run normally, are marked with
// ResultCacheMisses in their stats, and populate the cache. Configure
// before serving starts — the field is read without synchronization on
// the hot path.
func (p *ParallelEngine) SetResultCache(rc *ResultCache) { p.rcache = rc }

// ResultCache returns the attached result cache, nil when none.
func (p *ParallelEngine) ResultCache() *ResultCache { return p.rcache }

// SetBatchPlanning enables (the default) or disables SearchAll's
// cross-query grouping. With planning off, requests are handed to workers
// through a plain request cursor in submission order — the pre-planner
// behaviour, kept addressable so benchmarks can measure the sharing win.
// Configure before serving starts.
func (p *ParallelEngine) SetBatchPlanning(on bool) { p.noPlan = !on }

// searchOne answers one request on an already-borrowed engine, going
// through the result cache when one is attached. The epoch tag is read
// before the search runs, so a cached entry can never claim mutations the
// search did not observe (see EpochSource).
func (p *ParallelEngine) searchOne(ctx context.Context, e Engine, req Request) (Response, error) {
	rc := p.rcache
	if rc == nil {
		return e.Search(ctx, req)
	}
	epoch := rc.Epoch()
	if resp, ok := rc.Get(epoch, req); ok {
		return resp, nil
	}
	resp, err := e.Search(ctx, req)
	resp.Stats.ResultCacheMisses++
	if err == nil {
		rc.Put(epoch, req, resp)
	}
	return resp, err
}

// LastStats returns the summed statistics of the last COMPLETED SearchAll
// (or single search), read under a mutex. With searches in flight the value
// is approximate by construction — it cannot say which request it describes.
//
// Deprecated: read Response.Stats, which is exact per request.
func (p *ParallelEngine) LastStats() SearchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Search implements Engine by borrowing one clone from the pool (waiting
// honors ctx: a request cancelled while queued never runs at all).
func (p *ParallelEngine) Search(ctx context.Context, req Request) (Response, error) {
	select {
	case e := <-p.pool:
		defer func() { p.pool <- e }()
		resp, err := p.searchOne(ctx, e, req)
		p.mu.Lock()
		p.stats = resp.Stats
		p.mu.Unlock()
		return resp, err
	case <-ctx.Done():
		return Response{Truncated: true}, ctx.Err()
	}
}

// SearchATSQ implements Engine by borrowing one clone from the pool.
//
// Deprecated: use Search.
func (p *ParallelEngine) SearchATSQ(q Query, k int) ([]Result, error) {
	resp, err := p.Search(context.Background(), Request{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchOATSQ implements Engine by borrowing one clone from the pool.
//
// Deprecated: use Search.
func (p *ParallelEngine) SearchOATSQ(q Query, k int) ([]Result, error) {
	resp, err := p.Search(context.Background(), Request{Query: q, K: k, Ordered: true})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchAll answers reqs[i] into the i-th response slot, fanning the batch
// out over the worker pool. The batch is first planned into groups of
// spatially co-located requests when the pooled engine implements
// BatchKeyer (see ParallelEngine's type comment; SetBatchPlanning
// disables it, and engines without a keyer degrade to one-request
// groups); groups are handed to workers through a single atomic cursor,
// so a slow group never stalls the rest of the batch. On the first
// failure (by request index) the remaining requests are abandoned;
// likewise, once ctx is cancelled no further request starts and the
// in-flight ones return early at their next batch boundary — including
// mid-group. Per-request accounting is in each Response.Stats; LastStats
// afterwards reports only the approximate batch aggregate (see LastStats).
func (p *ParallelEngine) SearchAll(ctx context.Context, reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	workers := p.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}

	groups := p.planAll(reqs)

	var cursor atomic.Int64
	var failed atomic.Bool
	type werr struct {
		qi  int
		err error
	}
	errs := make([]werr, workers)
	var agg SearchStats
	var aggMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := <-p.pool
			defer func() { p.pool <- e }()
			errs[w].qi = -1
			var local SearchStats
			var warmBuf []Request
			for !failed.Load() && ctx.Err() == nil {
				gi := int(cursor.Add(1)) - 1
				if gi >= len(groups) {
					break
				}
				group := groups[gi]
				warmBuf = p.warmGroup(e, reqs, group, warmBuf)
				for _, qi := range group {
					if failed.Load() || ctx.Err() != nil {
						break
					}
					resp, err := p.searchOne(ctx, e, reqs[qi])
					out[qi] = resp
					local.Add(resp.Stats)
					if err != nil {
						errs[w] = werr{qi: qi, err: err}
						failed.Store(true)
						break
					}
				}
			}
			aggMu.Lock()
			agg.Add(local)
			aggMu.Unlock()
		}(w)
	}
	wg.Wait()

	p.mu.Lock()
	p.stats = agg
	p.mu.Unlock()
	first := werr{qi: -1}
	for _, we := range errs {
		if we.err != nil && (first.qi < 0 || we.qi < first.qi) {
			first = we
		}
	}
	if first.err != nil {
		return out, fmt.Errorf("query %d: %w", first.qi, first.err)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// SearchBatch answers qs[i] into the i-th result slot, fanning the batch
// out over the worker pool.
//
// Deprecated: use SearchAll, which carries per-request options, a context,
// and in-band statistics.
func (p *ParallelEngine) SearchBatch(qs []Query, k int, ordered bool) ([][]Result, error) {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = Request{Query: q, K: k, Ordered: ordered}
	}
	resps, err := p.SearchAll(context.Background(), reqs)
	out := make([][]Result, len(qs))
	for i, r := range resps {
		out[i] = r.Results
	}
	return out, err
}

package query

import (
	"context"
	"errors"
	"math"

	"activitytraj/internal/geo"
)

var (
	errSpanWithoutSubtrajectory = errors.New("query: MinSpanPoints/MaxSpanPoints require Subtrajectory")
	errNegativeSpan             = errors.New("query: negative span limit")
	errSpanMinOverMax           = errors.New("query: MinSpanPoints exceeds MaxSpanPoints")
)

// Request describes one search: the query itself, the result count, the
// ATSQ/OATSQ mode, and the per-request options every engine honors. The
// zero value of each option selects the engine's default behaviour, so
// Request{Query: q, K: k} is exactly the classic SearchATSQ call.
type Request struct {
	// Query is the sequence of query locations with desired activities.
	Query Query
	// K is the number of results wanted (values < 1 are treated as 1).
	K int
	// Ordered selects the order-sensitive OATSQ distance Dmom instead of
	// the minimum match distance Dmm (folding the former SearchATSQ /
	// SearchOATSQ pair into one entry point).
	Ordered bool

	// InitialBound, when > 0, seeds the Algorithm-2 pruning threshold: the
	// search behaves as if a k-th result at this distance were already
	// known, so candidates and shards strictly beyond it are pruned from
	// the first batch on. It composes with any engine-attached BoundSink —
	// the effective threshold is the minimum of the local k-th distance,
	// the shared global bound and InitialBound. Results farther than
	// InitialBound are excluded, so fewer than K results may return; the
	// results within the bound are exact.
	InitialBound float64

	// Region, when non-nil, restricts matching spatially: only trajectory
	// points inside Region may satisfy query activities, and trajectories
	// with no qualifying match are excluded. The GAT engines prune
	// out-of-region cells during candidate retrieval and the sharded
	// planner skips non-intersecting shards; the baselines post-filter
	// candidate rows. All engines return identical results for the same
	// Region.
	Region *geo.Rect

	// WithMatches asks for Result.Matches: for every result, the per-query-
	// point trajectory point indexes forming the minimal match the reported
	// distance is built from. Computing them re-reads the k result
	// trajectories once after the search, so it adds a small per-result
	// cost but never touches the per-candidate hot path.
	WithMatches bool

	// RequireComplete fails the search instead of degrading it: a serving
	// tier that would otherwise answer with a partial top-k (some shards
	// unreachable, Response.Partial set) returns an error. Single-process
	// engines always see every shard, so they ignore the flag — their
	// responses are complete by construction.
	RequireComplete bool

	// Subtrajectory switches a candidate's distance from the whole
	// trajectory to the best contiguous portion of it: the minimum over
	// contiguous point spans [s, e] of the (Ordered or not) match distance
	// computed as if only the span's points existed. MinSpanPoints and
	// MaxSpanPoints (0 = unlimited) bound the allowed span length e-s+1.
	// With both unset a whole-trajectory span is always allowed, so every
	// distance is <= the classic one. Combine with WithMatches to learn the
	// winning span: Response.Spans reports each result's [start, end] point
	// indexes alongside the per-query-point covers in Response.Matches.
	Subtrajectory bool
	// MinSpanPoints, when > 0, excludes spans of fewer points. A trajectory
	// shorter than MinSpanPoints has no legal span and is excluded entirely.
	// Only meaningful with Subtrajectory.
	MinSpanPoints int
	// MaxSpanPoints, when > 0, excludes spans of more points. Only
	// meaningful with Subtrajectory.
	MaxSpanPoints int
}

// ValidateSpan checks the subtrajectory options for internal consistency.
// Every engine calls it up front so malformed requests fail identically
// across tiers rather than silently diverging.
func (r Request) ValidateSpan() error {
	if !r.Subtrajectory {
		if r.MinSpanPoints != 0 || r.MaxSpanPoints != 0 {
			return errSpanWithoutSubtrajectory
		}
		return nil
	}
	if r.MinSpanPoints < 0 || r.MaxSpanPoints < 0 {
		return errNegativeSpan
	}
	if r.MaxSpanPoints > 0 && r.MinSpanPoints > r.MaxSpanPoints {
		return errSpanMinOverMax
	}
	return nil
}

// Bound returns the effective initial pruning threshold: InitialBound when
// set (> 0), +Inf otherwise.
func (r Request) Bound() float64 {
	if r.InitialBound > 0 {
		return r.InitialBound
	}
	return math.Inf(1)
}

// Response is one search's complete answer.
type Response struct {
	// Results is the top-k in ascending (Dist, ID) order.
	Results []Result
	// Matches, filled only when Request.WithMatches is set, is parallel to
	// Results: Matches[i][p] holds the ascending trajectory point indexes
	// of Results[i] forming query point p's part of the minimal match
	// behind Results[i].Dist (empty for a query point with no activity
	// requirement; for Ordered requests the covers comply with the query
	// order, consecutive covers possibly sharing one boundary point).
	Matches [][][]int32
	// Spans, filled only when both Request.Subtrajectory and WithMatches
	// are set, is parallel to Results: Spans[i] is the [start, end]
	// trajectory point index pair (inclusive) of the winning span behind
	// Results[i].Dist — the tight hull of Matches[i]'s covers. A result
	// whose query has no activity requirement at all gets the empty span
	// {0, -1}.
	Spans [][2]int32
	// Stats itemizes where this search's work went. It is per-request and
	// in-band: no LastStats side channel, no clone-state ambiguity under
	// concurrent serving.
	Stats SearchStats
	// Truncated is true when the search stopped early because its context
	// was cancelled or its deadline expired. Results then holds whatever
	// the search had fully scored so far (possibly nothing) and the
	// accompanying error is the context's.
	Truncated bool
	// Partial is true when the answer deliberately excludes one or more
	// shards whose every replica was unreachable (degraded serving, see
	// Stats.ShardsFailed). The results are still the exact top-k over the
	// shards that DID answer — never a guess — but trajectories owned by
	// the failed shards could not be considered. Single-process engines
	// never set it.
	Partial bool
}

// SpansFromMatches derives Response.Spans from Response.Matches: for each
// result the tight [min, max] hull over all its covers' point indexes.
// Every tier computes spans this way from identical covers, which is what
// keeps subtrajectory responses byte-identical across single index,
// sharded, and cluster serving. A result with no matched point (query
// without activity requirements) gets {0, -1}.
func SpansFromMatches(matches [][][]int32) [][2]int32 {
	if matches == nil {
		return nil
	}
	spans := make([][2]int32, len(matches))
	for i, covers := range matches {
		lo, hi := int32(math.MaxInt32), int32(-1)
		for _, c := range covers {
			for _, idx := range c {
				if idx < lo {
					lo = idx
				}
				if idx > hi {
					hi = idx
				}
			}
		}
		if hi < 0 {
			spans[i] = [2]int32{0, -1}
		} else {
			spans[i] = [2]int32{lo, hi}
		}
	}
	return spans
}

// Engine is the contract every search method implements. The primary entry
// point is Search; the SearchATSQ/SearchOATSQ/LastStats trio is the
// pre-context API, kept as thin shims so existing callers and differential
// tests keep working unchanged.
//
// Engines are single-goroutine unless documented otherwise (ParallelEngine
// and the HTTP server wrap them in clone pools for concurrent serving).
type Engine interface {
	// Name returns the short method name used in experiment output
	// ("GAT", "IL", "RT", "IRT", ...).
	Name() string
	// Search answers req, honoring ctx: cancellation is checked between
	// candidate batches (never per candidate, keeping the hot path clean),
	// and an already-expired context returns before any disk page is
	// touched. On cancellation the Response carries the partial results
	// with Truncated set, alongside ctx's error.
	Search(ctx context.Context, req Request) (Response, error)
	// SearchATSQ answers an activity trajectory similarity query.
	//
	// Deprecated: use Search with Request{Query: q, K: k}.
	SearchATSQ(q Query, k int) ([]Result, error)
	// SearchOATSQ answers the order-sensitive variant.
	//
	// Deprecated: use Search with Request{Query: q, K: k, Ordered: true}.
	SearchOATSQ(q Query, k int) ([]Result, error)
	// LastStats reports where the previous search's work went.
	//
	// Deprecated: read Response.Stats instead; it is exact per request
	// even under concurrent serving, which LastStats cannot be.
	LastStats() SearchStats
	// MemBytes reports the engine's in-memory index footprint (excluding
	// the shared on-disk trajectory store).
	MemBytes() int64
}

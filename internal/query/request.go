package query

import (
	"context"
	"math"

	"activitytraj/internal/geo"
)

// Request describes one search: the query itself, the result count, the
// ATSQ/OATSQ mode, and the per-request options every engine honors. The
// zero value of each option selects the engine's default behaviour, so
// Request{Query: q, K: k} is exactly the classic SearchATSQ call.
type Request struct {
	// Query is the sequence of query locations with desired activities.
	Query Query
	// K is the number of results wanted (values < 1 are treated as 1).
	K int
	// Ordered selects the order-sensitive OATSQ distance Dmom instead of
	// the minimum match distance Dmm (folding the former SearchATSQ /
	// SearchOATSQ pair into one entry point).
	Ordered bool

	// InitialBound, when > 0, seeds the Algorithm-2 pruning threshold: the
	// search behaves as if a k-th result at this distance were already
	// known, so candidates and shards strictly beyond it are pruned from
	// the first batch on. It composes with any engine-attached BoundSink —
	// the effective threshold is the minimum of the local k-th distance,
	// the shared global bound and InitialBound. Results farther than
	// InitialBound are excluded, so fewer than K results may return; the
	// results within the bound are exact.
	InitialBound float64

	// Region, when non-nil, restricts matching spatially: only trajectory
	// points inside Region may satisfy query activities, and trajectories
	// with no qualifying match are excluded. The GAT engines prune
	// out-of-region cells during candidate retrieval and the sharded
	// planner skips non-intersecting shards; the baselines post-filter
	// candidate rows. All engines return identical results for the same
	// Region.
	Region *geo.Rect

	// WithMatches asks for Result.Matches: for every result, the per-query-
	// point trajectory point indexes forming the minimal match the reported
	// distance is built from. Computing them re-reads the k result
	// trajectories once after the search, so it adds a small per-result
	// cost but never touches the per-candidate hot path.
	WithMatches bool

	// RequireComplete fails the search instead of degrading it: a serving
	// tier that would otherwise answer with a partial top-k (some shards
	// unreachable, Response.Partial set) returns an error. Single-process
	// engines always see every shard, so they ignore the flag — their
	// responses are complete by construction.
	RequireComplete bool
}

// Bound returns the effective initial pruning threshold: InitialBound when
// set (> 0), +Inf otherwise.
func (r Request) Bound() float64 {
	if r.InitialBound > 0 {
		return r.InitialBound
	}
	return math.Inf(1)
}

// Response is one search's complete answer.
type Response struct {
	// Results is the top-k in ascending (Dist, ID) order.
	Results []Result
	// Matches, filled only when Request.WithMatches is set, is parallel to
	// Results: Matches[i][p] holds the ascending trajectory point indexes
	// of Results[i] forming query point p's part of the minimal match
	// behind Results[i].Dist (empty for a query point with no activity
	// requirement; for Ordered requests the covers comply with the query
	// order, consecutive covers possibly sharing one boundary point).
	Matches [][][]int32
	// Stats itemizes where this search's work went. It is per-request and
	// in-band: no LastStats side channel, no clone-state ambiguity under
	// concurrent serving.
	Stats SearchStats
	// Truncated is true when the search stopped early because its context
	// was cancelled or its deadline expired. Results then holds whatever
	// the search had fully scored so far (possibly nothing) and the
	// accompanying error is the context's.
	Truncated bool
	// Partial is true when the answer deliberately excludes one or more
	// shards whose every replica was unreachable (degraded serving, see
	// Stats.ShardsFailed). The results are still the exact top-k over the
	// shards that DID answer — never a guess — but trajectories owned by
	// the failed shards could not be considered. Single-process engines
	// never set it.
	Partial bool
}

// Engine is the contract every search method implements. The primary entry
// point is Search; the SearchATSQ/SearchOATSQ/LastStats trio is the
// pre-context API, kept as thin shims so existing callers and differential
// tests keep working unchanged.
//
// Engines are single-goroutine unless documented otherwise (ParallelEngine
// and the HTTP server wrap them in clone pools for concurrent serving).
type Engine interface {
	// Name returns the short method name used in experiment output
	// ("GAT", "IL", "RT", "IRT", ...).
	Name() string
	// Search answers req, honoring ctx: cancellation is checked between
	// candidate batches (never per candidate, keeping the hot path clean),
	// and an already-expired context returns before any disk page is
	// touched. On cancellation the Response carries the partial results
	// with Truncated set, alongside ctx's error.
	Search(ctx context.Context, req Request) (Response, error)
	// SearchATSQ answers an activity trajectory similarity query.
	//
	// Deprecated: use Search with Request{Query: q, K: k}.
	SearchATSQ(q Query, k int) ([]Result, error)
	// SearchOATSQ answers the order-sensitive variant.
	//
	// Deprecated: use Search with Request{Query: q, K: k, Ordered: true}.
	SearchOATSQ(q Query, k int) ([]Result, error)
	// LastStats reports where the previous search's work went.
	//
	// Deprecated: read Response.Stats instead; it is exact per request
	// even under concurrent serving, which LastStats cannot be.
	LastStats() SearchStats
	// MemBytes reports the engine's in-memory index footprint (excluding
	// the shared on-disk trajectory store).
	MemBytes() int64
}

package query

import (
	"cmp"
	"container/heap"
	"math"
	"slices"
)

// TopK maintains the k best (smallest-distance) results seen so far and the
// pruning threshold MMD_k — the k-th smallest match distance, +Inf until k
// results have been collected. Ties are broken by trajectory ID so engine
// outputs are deterministic.
type TopK struct {
	k int
	h resultMaxHeap
}

// NewTopK returns an empty collector for the best k results (k >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k}
}

type resultMaxHeap []Result

func (h resultMaxHeap) Len() int { return len(h) }
func (h resultMaxHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].ID > h[j].ID
}
func (h resultMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMaxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// Offer submits a result; it is kept only if it beats the current k-th best
// under (Dist, ID) order. Infinite distances are ignored.
func (t *TopK) Offer(r Result) {
	if math.IsInf(r.Dist, 1) {
		return
	}
	if len(t.h) < t.k {
		heap.Push(&t.h, r)
		return
	}
	worst := t.h[0]
	if r.Dist < worst.Dist || (r.Dist == worst.Dist && r.ID < worst.ID) {
		t.h[0] = r
		heap.Fix(&t.h, 0)
	}
}

// Full reports whether k results have been collected.
func (t *TopK) Full() bool { return len(t.h) >= t.k }

// Threshold returns MMD_k: the current k-th smallest distance, or +Inf when
// fewer than k results are held.
func (t *TopK) Threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].Dist
}

// Results returns the collected results in ascending (Dist, ID) order.
func (t *TopK) Results() []Result {
	out := make([]Result, len(t.h))
	copy(out, t.h)
	slices.SortFunc(out, func(a, b Result) int {
		if a.Dist != b.Dist {
			return cmp.Compare(a.Dist, b.Dist)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

package query

import "slices"

// BatchKeyer is implemented by engines that can map a query to a spatial
// locality key — by convention the Z-order code of the leaf cell holding
// the query's centroid, so keys that are numerically close index nearby
// cells. The cross-query batch planner sorts in-flight requests by this
// key and runs co-located ones consecutively on the same worker, so their
// searches expand the same cells and fault the same pages back to back —
// each page/block faults once into the shared buffer pool and caches
// instead of once per query. BatchKey must be cheap, must not disturb the
// engine's search scratch, and must be callable on any engine clone.
type BatchKeyer interface {
	BatchKey(q Query) uint64
}

// SuperbatchWarmer is implemented by engines that can pre-warm the shared
// storage layer for a group of co-located requests before the requests
// execute individually: one coalesced, ascending readahead over the union
// of the group's likely candidates replaces each query's first-touch
// scatter of faults. Warming is a hint — it must not change any search's
// results or its per-request accounting (PageReads charges logical
// accesses at fetch points, not physical faults).
type SuperbatchWarmer interface {
	WarmSuperbatch(reqs []Request)
}

// planGroupShift is the number of low Z-code bits ignored when cutting
// sorted requests into groups: requests within the same 4-level ancestor
// cell (2 bits per level) share a group and therefore a worker, because
// their best-first expansions overlap.
const planGroupShift = 8

// planMaxGroup caps a group's size so one hot cell cannot serialize a
// whole skewed batch onto a single worker: past the cap the planner cuts a
// new group, which a sibling worker picks up with the pages already warm.
const planMaxGroup = 16

// planAll produces the group schedule SearchAll hands to its workers. With
// planning enabled and a keyer-capable engine it borrows one clone from the
// pool just long enough to key the batch; otherwise every request is its
// own group (one shared backing array — no per-request allocations), which
// is exactly the pre-planner submission order.
func (p *ParallelEngine) planAll(reqs []Request) [][]int {
	if !p.noPlan && len(reqs) > 1 {
		e := <-p.pool
		keyer, ok := e.(BatchKeyer)
		if ok {
			groups := planGroups(reqs, keyer)
			p.pool <- e
			return groups
		}
		p.pool <- e
	}
	groups := make([][]int, len(reqs))
	idx := make([]int, len(reqs))
	for i := range reqs {
		idx[i] = i
		groups[i] = idx[i : i+1]
	}
	return groups
}

// warmGroup issues the superbatch warm-up hint for a group about to run on
// e, reusing buf across groups. Groups of one request gain nothing from
// warming — the request's own PrefetchBatch already coalesces its faults.
func (p *ParallelEngine) warmGroup(e Engine, reqs []Request, group []int, buf []Request) []Request {
	if len(group) < 2 {
		return buf
	}
	w, ok := e.(SuperbatchWarmer)
	if !ok {
		return buf
	}
	buf = buf[:0]
	for _, qi := range group {
		buf = append(buf, reqs[qi])
	}
	w.WarmSuperbatch(buf)
	return buf
}

// planGroups orders request indexes by their engine-assigned batch key and
// cuts them into groups of spatially co-located requests. The returned
// groups partition 0..len(reqs)-1; requests inside a group are sorted by
// (key, original index), so duplicate queries land adjacently and the
// second of a pair executes with every structure the first touched still
// resident. Results are unaffected: grouping only reorders which worker
// runs which request, never how a request is answered.
func planGroups(reqs []Request, keyer BatchKeyer) [][]int {
	type keyed struct {
		key uint64
		qi  int
	}
	ks := make([]keyed, len(reqs))
	for i, req := range reqs {
		ks[i] = keyed{key: keyer.BatchKey(req.Query), qi: i}
	}
	slices.SortFunc(ks, func(a, b keyed) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return a.qi - b.qi
		}
	})
	var groups [][]int
	var cur []int
	var curKey uint64
	for _, k := range ks {
		if len(cur) > 0 && (k.key>>planGroupShift != curKey || len(cur) >= planMaxGroup) {
			groups = append(groups, cur)
			cur = nil
		}
		if len(cur) == 0 {
			curKey = k.key >> planGroupShift
		}
		cur = append(cur, k.qi)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// Package query defines the query and result types shared by the GAT engine
// and the three baselines, plus the per-search statistics every engine
// reports so experiments can attribute costs (candidates retrieved, sketch
// rejections, disk page reads, ...).
package query

import (
	"fmt"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

// Point is one query location q with its desired activity set q.Φ.
type Point struct {
	Loc  geo.Point
	Acts trajectory.ActivitySet
}

// Query is a sequence of query locations. For ATSQ the order is irrelevant;
// for OATSQ the order is the one matches must comply with.
type Query struct {
	Pts []Point
}

// New builds a query from alternating locations and activity sets.
func New(pts ...Point) Query { return Query{Pts: pts} }

// Len returns the number of query locations |Q|.
func (q Query) Len() int { return len(q.Pts) }

// AllActs returns the union Q.Φ of all query activity sets — the set a
// trajectory must fully contain to be a match.
func (q Query) AllActs() trajectory.ActivitySet {
	var u trajectory.ActivitySet
	for _, p := range q.Pts {
		u = u.Union(p.Acts)
	}
	return u
}

// Diameter returns δ(Q), the maximum pairwise distance between query
// locations (Section VII).
func (q Query) Diameter() float64 {
	var d float64
	for i := 0; i < len(q.Pts); i++ {
		for j := i + 1; j < len(q.Pts); j++ {
			if v := geo.Dist(q.Pts[i].Loc, q.Pts[j].Loc); v > d {
				d = v
			}
		}
	}
	return d
}

// Validate reports structural problems: no points, empty activity sets, or
// oversized activity sets (Algorithm 3's subset DP uses 32-bit masks).
func (q Query) Validate() error {
	if len(q.Pts) == 0 {
		return fmt.Errorf("query: no query points")
	}
	for i, p := range q.Pts {
		if len(p.Acts) == 0 {
			return fmt.Errorf("query: point %d has no activities", i)
		}
		if len(p.Acts) > 32 {
			return fmt.Errorf("query: point %d has %d activities (max 32)", i, len(p.Acts))
		}
		for k := 1; k < len(p.Acts); k++ {
			if p.Acts[k-1] >= p.Acts[k] {
				return fmt.Errorf("query: point %d activity set not normalized", i)
			}
		}
	}
	return nil
}

// Result is one entry of a top-k answer. It is deliberately a comparable
// struct (differential tests compare result slices element-wise with ==);
// the per-result match covers requested via Request.WithMatches therefore
// live in Response.Matches, parallel to Results.
type Result struct {
	ID   trajectory.TrajID
	Dist float64
}

// SearchStats records where a query's work went. Engines reset it per search.
type SearchStats struct {
	Candidates      int // distinct trajectories retrieved as candidates
	SketchRejected  int // candidates rejected by the TAS check
	APLRejected     int // candidates rejected after fetching the APL
	OrderRejected   int // candidates rejected by the MIB order filter (OATSQ)
	Scored          int // candidates whose match distance was computed
	PQPops          int // priority-queue pops during candidate retrieval
	Batches         int // λ-batches of Algorithm 1
	PageReads       int // simulated disk pages read
	NodesVisited    int // R-tree / IR-tree nodes visited (baselines)
	CacheHits       int // decoded-structure cache hits (HICL lists, APLs)
	CacheMisses     int // decoded-structure cache misses
	DeltaCandidates int // candidates served by the dynamic index's delta layer

	// HeaderOnlyRejects counts candidates rejected from the APL header
	// alone — no point postings were read or decoded for them. With the
	// blocked APL format every APL rejection is header-only unless the
	// body happened to be cached already.
	HeaderOnlyRejects int

	// ShardsSearched counts the shards a sharded engine's router actually
	// fanned the query out to; ShardsSkipped counts the shards its planner
	// pruned (region lower bound above the query's reachable radius — the
	// running global k-th distance). Zero for unsharded engines.
	ShardsSearched int
	ShardsSkipped  int
	// ShardsFailed counts shards whose every replica was unreachable when a
	// cluster router served the query, so their trajectories are missing
	// from the answer (Response.Partial is then set). Zero everywhere else.
	ShardsFailed int
	// BytesDecoded sums the segment bytes actually decoded for this search
	// (posting blocks, coordinate points, HICL lists) — the work the lazy
	// blocked layout avoids compared to eagerly decoding whole segments.
	BytesDecoded int64

	// ResultCacheHits counts requests answered from an epoch-invalidated
	// ResultCache without running a search at all; ResultCacheMisses counts
	// cache probes that fell through to a real search. Both stay zero when
	// no result cache is attached. A hit's Response.Stats carries ONLY the
	// hit marker — the cached search's original work is not replayed into
	// the serving request's accounting, because it was not performed for it.
	ResultCacheHits   int
	ResultCacheMisses int
}

// Add accumulates other into s (used when averaging over a workload).
func (s *SearchStats) Add(other SearchStats) {
	s.Candidates += other.Candidates
	s.SketchRejected += other.SketchRejected
	s.APLRejected += other.APLRejected
	s.OrderRejected += other.OrderRejected
	s.Scored += other.Scored
	s.PQPops += other.PQPops
	s.Batches += other.Batches
	s.PageReads += other.PageReads
	s.NodesVisited += other.NodesVisited
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.DeltaCandidates += other.DeltaCandidates
	s.HeaderOnlyRejects += other.HeaderOnlyRejects
	s.ShardsSearched += other.ShardsSearched
	s.ShardsSkipped += other.ShardsSkipped
	s.ShardsFailed += other.ShardsFailed
	s.BytesDecoded += other.BytesDecoded
	s.ResultCacheHits += other.ResultCacheHits
	s.ResultCacheMisses += other.ResultCacheMisses
}

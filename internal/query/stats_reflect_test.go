package query

import (
	"reflect"
	"testing"
)

// TestSearchStatsAddCoversEveryField walks SearchStats with reflection and
// proves Add accumulates EVERY numeric field: a counter added to the struct
// but forgotten in Add would silently vanish from workload averages (it
// happened to almost happen with BytesDecoded/ShardsSkipped). The test
// fills each field of the addend with a distinct value, adds it onto a
// receiver holding 1 everywhere, and requires each result field to be the
// exact sum — any dropped, swapped or double-added field fails.
func TestSearchStatsAddCoversEveryField(t *testing.T) {
	var dst, src SearchStats
	dv := reflect.ValueOf(&dst).Elem()
	sv := reflect.ValueOf(&src).Elem()
	n := dv.NumField()
	if n == 0 {
		t.Fatal("SearchStats has no fields")
	}
	for i := 0; i < n; i++ {
		f := dv.Type().Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			dv.Field(i).SetInt(1)
			sv.Field(i).SetInt(int64(100 + i)) // distinct per field: catches swaps
		default:
			t.Fatalf("SearchStats.%s has kind %v; teach this test (and Add) about it", f.Name, f.Type.Kind())
		}
	}
	dst.Add(src)
	for i := 0; i < n; i++ {
		f := dv.Type().Field(i)
		got := dv.Field(i).Int()
		want := int64(1 + 100 + i)
		if got != want {
			t.Errorf("SearchStats.Add drops or corrupts %s: got %d, want %d (is the field missing from Add?)",
				f.Name, got, want)
		}
	}
}

// TestSearchStatsAddZeroIdentity pins Add's identity: adding a zero value
// changes nothing (so repeated aggregation is safe).
func TestSearchStatsAddZeroIdentity(t *testing.T) {
	a := SearchStats{Candidates: 3, PageReads: 7, BytesDecoded: 11}
	b := a
	a.Add(SearchStats{})
	if a != b {
		t.Fatalf("Add(zero) changed stats: %+v -> %+v", b, a)
	}
}

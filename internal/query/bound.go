package query

import (
	"math"
	"sync"
	"sync/atomic"
)

// BoundSink is the cross-search bound-sharing contract: cooperating searches
// (one per shard of a partitioned index) feed every scored result into a
// shared sink and read back the tightest known global top-k threshold, so
// each search's Algorithm-2 termination bound tightens as soon as ANY
// cooperating search finds closer results. Implementations must be safe for
// concurrent use; Threshold must be monotonically non-increasing over the
// sink's lifetime — engines rely on that to prune exactly.
type BoundSink interface {
	// Offer submits one fully-scored result (infinite distances are
	// ignored).
	Offer(Result)
	// Threshold returns the current global k-th smallest distance, +Inf
	// until k results have been offered.
	Threshold() float64
}

// SharedTopK is a concurrency-safe top-k collector implementing BoundSink:
// the scatter-gather merge point of a sharded search. Every shard search
// offers its scored results (with shard-local IDs translated to global ones
// by the caller); the collector's running k-th distance is published through
// an atomic so the hot-path Threshold read never takes the lock.
type SharedTopK struct {
	mu sync.Mutex
	t  *TopK
	th atomic.Uint64 // math.Float64bits of the current threshold
}

// NewSharedTopK returns an empty shared collector for the best k results.
func NewSharedTopK(k int) *SharedTopK {
	s := &SharedTopK{t: NewTopK(k)}
	s.th.Store(math.Float64bits(math.Inf(1)))
	return s
}

// Offer implements BoundSink.
func (s *SharedTopK) Offer(r Result) {
	if math.IsInf(r.Dist, 1) {
		return
	}
	s.mu.Lock()
	s.t.Offer(r)
	s.th.Store(math.Float64bits(s.t.Threshold()))
	s.mu.Unlock()
}

// Threshold implements BoundSink without locking.
func (s *SharedTopK) Threshold() float64 {
	return math.Float64frombits(s.th.Load())
}

// Results returns the collected global top-k in ascending (Dist, ID) order.
func (s *SharedTopK) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Results()
}

package query

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"activitytraj/internal/geo"
)

// fakeEngine answers query i (encoded in the X coordinate) with a single
// result whose distance is i, and fails on X == failAt.
type fakeEngine struct {
	calls  *atomic.Int64
	failAt float64
	stats  SearchStats
}

func (f *fakeEngine) Name() string    { return "fake" }
func (f *fakeEngine) MemBytes() int64 { return 1 }
func (f *fakeEngine) Clone() Engine   { return &fakeEngine{calls: f.calls, failAt: f.failAt} }
func (f *fakeEngine) LastStats() SearchStats {
	return f.stats
}
func (f *fakeEngine) Search(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{Truncated: true}, err
	}
	f.calls.Add(1)
	x := req.Query.Pts[0].Loc.X
	if f.failAt != 0 && x == f.failAt {
		f.stats = SearchStats{}
		return Response{}, fmt.Errorf("query %v failed", x)
	}
	f.stats = SearchStats{Candidates: 1, Scored: 1}
	return Response{Results: []Result{{ID: 0, Dist: x}}, Stats: f.stats}, nil
}
func (f *fakeEngine) SearchATSQ(q Query, k int) ([]Result, error) {
	resp, err := f.Search(context.Background(), Request{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}
func (f *fakeEngine) SearchOATSQ(q Query, k int) ([]Result, error) { return f.SearchATSQ(q, k) }

func fakeQueries(n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{Pts: []Point{{Loc: geo.Point{X: float64(i + 1)}}}}
	}
	return qs
}

func TestSearchBatchOrderAndStats(t *testing.T) {
	var calls atomic.Int64
	pe := NewParallelEngine(&fakeEngine{calls: &calls}, 4)
	qs := fakeQueries(37)
	out, err := pe.SearchBatch(qs, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(qs) {
		t.Fatalf("got %d result slots", len(out))
	}
	for i, rs := range out {
		if len(rs) != 1 || rs[0].Dist != float64(i+1) {
			t.Fatalf("slot %d = %+v", i, rs)
		}
	}
	if got := calls.Load(); got != int64(len(qs)) {
		t.Fatalf("engine ran %d times, want %d", got, len(qs))
	}
	st := pe.LastStats()
	if st.Candidates != len(qs) || st.Scored != len(qs) {
		t.Fatalf("aggregate stats = %+v", st)
	}
}

func TestSearchBatchError(t *testing.T) {
	var calls atomic.Int64
	pe := NewParallelEngine(&fakeEngine{calls: &calls, failAt: 5}, 3)
	qs := fakeQueries(20)
	_, err := pe.SearchBatch(qs, 1, false)
	if err == nil {
		t.Fatal("expected error")
	}
	// The failure is attributed to its query index.
	if !strings.HasPrefix(err.Error(), "query 4:") {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchBatchEmptyAndSingleWorker(t *testing.T) {
	var calls atomic.Int64
	pe := NewParallelEngine(&fakeEngine{calls: &calls}, 1)
	out, err := pe.SearchBatch(nil, 1, false)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	if pe.Workers() != 1 {
		t.Fatalf("workers = %d", pe.Workers())
	}
	qs := fakeQueries(5)
	out, err = pe.SearchBatch(qs, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if out[4][0].Dist != 5 {
		t.Fatalf("single worker batch wrong: %+v", out)
	}
}

func TestParallelEngineSingleSearch(t *testing.T) {
	var calls atomic.Int64
	pe := NewParallelEngine(&fakeEngine{calls: &calls}, 2)
	rs, err := pe.SearchATSQ(fakeQueries(1)[0], 1)
	if err != nil || len(rs) != 1 || rs[0].Dist != 1 {
		t.Fatalf("single search: %v %v", rs, err)
	}
	if st := pe.LastStats(); st.Scored != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if pe.Name() != "fake" || pe.MemBytes() != 1 {
		t.Fatal("identity not forwarded")
	}
}

func TestNewParallelEngineDefaultWorkers(t *testing.T) {
	var calls atomic.Int64
	pe := NewParallelEngine(&fakeEngine{calls: &calls}, 0)
	if pe.Workers() < 1 {
		t.Fatalf("workers = %d", pe.Workers())
	}
}

package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestMemPagerBasics(t *testing.T) {
	p := NewMemPager()
	if err := p.WritePage(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(1, bytes.Repeat([]byte{7}, PageSize)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "hello" || buf[5] != 0 {
		t.Fatalf("page 0 content %q", buf[:8])
	}
	if p.PageCount() != 2 {
		t.Fatalf("count = %d", p.PageCount())
	}
	if err := p.ReadPage(5, buf); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := p.WritePage(7, nil); err == nil {
		t.Fatal("non-contiguous write must fail")
	}
	if err := p.WritePage(0, make([]byte, PageSize+1)); err == nil {
		t.Fatal("oversized write must fail")
	}
}

func TestFilePagerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := NewFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		page := bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
		if err := p.WritePage(uint32(i), page); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 5; i++ {
		if err := p.ReadPage(uint32(i), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) || buf[100*(i+1)-1] != byte(i+1) || buf[100*(i+1)] != 0 {
			t.Fatalf("page %d corrupted", i)
		}
	}
	if err := p.ReadPage(9, buf); err == nil {
		t.Fatal("unallocated read must fail")
	}
}

func TestBufferPoolLRUAndStats(t *testing.T) {
	p := NewMemPager()
	for i := 0; i < 4; i++ {
		if err := p.WritePage(uint32(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(p, 2)
	get := func(id uint32) byte {
		data, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		return data[0]
	}
	get(0) // miss
	get(1) // miss
	get(0) // hit
	get(2) // miss, evicts 1 (LRU)
	get(1) // miss again
	st := bp.Stats()
	if st.Touched != 5 || st.Hits != 1 || st.Misses != 4 || st.Evicted < 2 {
		t.Fatalf("stats = %+v", st)
	}
	if bp.Resident() != 2 || bp.Capacity() != 2 {
		t.Fatalf("resident=%d capacity=%d", bp.Resident(), bp.Capacity())
	}
	// Snapshot arithmetic for per-query accounting.
	snap := bp.Stats()
	get(0)
	diff := bp.Stats().Sub(snap)
	if diff.Touched != 1 {
		t.Fatalf("diff = %+v", diff)
	}
	bp.Reset()
	if bp.Stats().Touched != 0 || bp.Resident() != 0 {
		t.Fatal("reset must clear everything")
	}
}

func TestStoreRoundTripAcrossPages(t *testing.T) {
	s := NewMemStore(4)
	rng := rand.New(rand.NewSource(3))
	var blobs [][]byte
	var refs []SegRef
	for i := 0; i < 200; i++ {
		blob := make([]byte, rng.Intn(3*PageSize))
		rng.Read(blob)
		ref, err := s.Append(blob)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		refs = append(refs, ref)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Random-order reads: every blob must round-trip exactly.
	for _, i := range rng.Perm(len(blobs)) {
		got, err := s.Read(refs[i])
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("blob %d mismatch (%d vs %d bytes)", i, len(got), len(blobs[i]))
		}
	}
	if s.Stats().Touched == 0 {
		t.Fatal("reads must be accounted")
	}
	if s.DiskBytes() <= 0 || s.Pages() == 0 {
		t.Fatal("disk accounting broken")
	}
}

func TestStoreSealSemantics(t *testing.T) {
	s := NewMemStore(2)
	ref, err := s.Append([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal("Seal must be idempotent")
	}
	if _, err := s.Append([]byte("more")); err == nil {
		t.Fatal("append after seal must fail")
	}
	got, err := s.Read(ref)
	if err != nil || string(got) != "abc" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Empty segment.
	if got, err := s.Read(SegRef{}); err != nil || got != nil {
		t.Fatalf("empty segment read = %v, %v", got, err)
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := NewFileStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := bytes.Repeat([]byte("xyz"), 4000) // spans multiple pages
	ref, err := s.Append(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(ref)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("file store round trip failed: %v", err)
	}
}

// TestReadSubMatchesFull: every sub-range of a multi-page segment must
// equal the corresponding slice of the full read, and its page accounting
// must match SubSpan.
func TestReadSubMatchesFull(t *testing.T) {
	s := NewMemStore(64)
	blob := make([]byte, 3*PageSize+123)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	// Offset the segment so it starts mid-page.
	if _, err := s.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	ref, err := s.Append(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	full, err := s.Read(ref)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ from, n uint32 }{
		{0, 0}, {0, 1}, {0, uint32(len(blob))},
		{1, PageSize}, {PageSize - 1, 2}, {PageSize, PageSize},
		{uint32(len(blob)) - 1, 1}, {37, 3 * PageSize},
	}
	for _, c := range cases {
		before := s.Stats().Touched
		got, err := s.ReadSub(ref, c.from, c.n, nil)
		if err != nil {
			t.Fatalf("ReadSub(%d,%d): %v", c.from, c.n, err)
		}
		if !bytes.Equal(got, full[c.from:c.from+c.n]) {
			t.Fatalf("ReadSub(%d,%d) content mismatch", c.from, c.n)
		}
		touched := int(s.Stats().Touched - before)
		if touched != ref.SubSpan(c.from, c.n) {
			t.Fatalf("ReadSub(%d,%d) touched %d pages, SubSpan says %d",
				c.from, c.n, touched, ref.SubSpan(c.from, c.n))
		}
	}
	if _, err := s.ReadSub(ref, ref.Len, 1, nil); err == nil {
		t.Fatal("out-of-segment sub-read accepted")
	}
}

// TestPrefetchCountsNoLogicalAccess: prefetched pages must load without
// touching the logical counters, and the subsequent Get must hit.
func TestPrefetchCountsNoLogicalAccess(t *testing.T) {
	pager := NewMemPager()
	for p := uint32(0); p < 8; p++ {
		page := make([]byte, PageSize)
		page[0] = byte(p)
		if err := pager.WritePage(p, page); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(pager, 8)
	bp.Prefetch(0, 4)
	st := bp.Stats()
	if st.Touched != 0 || st.Hits != 0 {
		t.Fatalf("prefetch counted logical accesses: %+v", st)
	}
	if st.Misses != 4 {
		t.Fatalf("prefetch loaded %d pages, want 4", st.Misses)
	}
	for p := uint32(0); p < 4; p++ {
		if _, err := bp.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	st = bp.Stats()
	if st.Hits != 4 || st.Misses != 4 {
		t.Fatalf("gets after prefetch: %+v, want 4 hits", st)
	}
	// Prefetching resident pages is a no-op.
	bp.Prefetch(0, 4)
	if got := bp.Stats().Misses; got != 4 {
		t.Fatalf("re-prefetch re-read pages: misses %d", got)
	}
}

// TestPageRange: the readahead interval must cover exactly the pages a
// ReadSub touches.
func TestPageRange(t *testing.T) {
	ref := SegRef{Page: 3, Off: PageSize - 10, Len: 2 * PageSize}
	if f, p := ref.PageRange(0, 10); f != 3 || p != 4 {
		t.Fatalf("tail-of-page range [%d,%d)", f, p)
	}
	if f, p := ref.PageRange(0, 11); f != 3 || p != 5 {
		t.Fatalf("crossing range [%d,%d)", f, p)
	}
	if f, p := ref.PageRange(10, 1); f != 4 || p != 5 {
		t.Fatalf("offset range [%d,%d)", f, p)
	}
	if f, p := ref.PageRange(0, 0); f != 3 || p != 3 {
		t.Fatalf("empty range [%d,%d)", f, p)
	}
}

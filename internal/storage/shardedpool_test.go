package storage

import (
	"sync"
	"testing"
)

func TestPoolShardCount(t *testing.T) {
	for _, tc := range []struct{ capacity, want int }{
		{1, 1},
		{2, 1},
		{15, 1},
		{16, 2},
		{64, 8},
		{1024, 16},
		{1 << 20, 16},
	} {
		if got := poolShardCount(tc.capacity); got != tc.want {
			t.Errorf("poolShardCount(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
}

// TestBufferPoolConcurrent hammers a sharded pool from many goroutines.
// Under -race this verifies the shard locking and that returned frames are
// safe to read even after eviction (frames are never recycled).
func TestBufferPoolConcurrent(t *testing.T) {
	p := NewMemPager()
	const pages = 64
	for i := 0; i < pages; i++ {
		buf := make([]byte, PageSize)
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := p.WritePage(uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(p, 16) // capacity << pages forces constant eviction
	if bp.Shards() < 2 {
		t.Fatalf("want a sharded pool, got %d shards", bp.Shards())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := uint32((w*13 + i*7) % pages)
				data, err := bp.Get(id)
				if err != nil {
					t.Errorf("get %d: %v", id, err)
					return
				}
				// Read the whole frame well after other goroutines may have
				// evicted the page: content must still be intact.
				if data[0] != byte(id) || data[PageSize-1] != byte(id) {
					t.Errorf("page %d corrupt: %d %d", id, data[0], data[PageSize-1])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := bp.Stats()
	if st.Touched != 8*2000 {
		t.Fatalf("touched = %d, want %d", st.Touched, 8*2000)
	}
	if st.Evicted == 0 || st.Hits == 0 {
		t.Fatalf("expected hits and evictions: %+v", st)
	}
	if bp.Resident() > bp.Capacity() {
		t.Fatalf("resident %d > capacity %d", bp.Resident(), bp.Capacity())
	}
}

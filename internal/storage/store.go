package storage

import (
	"fmt"
	"sync"
)

// SegRef locates a variable-length segment within a Store: it starts at
// byte Off of page Page and spans Len bytes, possibly crossing pages.
// Segment directories (trajectory ID → SegRef, etc.) are the small in-memory
// structures index components keep to find their on-disk payloads.
type SegRef struct {
	Page uint32
	Off  uint32
	Len  uint32
}

// Zero reports whether the reference is the zero reference. A zero SegRef
// with Len 0 denotes an empty segment.
func (r SegRef) Zero() bool { return r == SegRef{} }

// PageSpan returns the number of pages a Read of the segment touches.
// Reading through the buffer pool touches each spanned page exactly once,
// so this is the per-fetch page cost — engines sum it for the PageReads
// statistic instead of diffing the pool's global counters, which keeps
// per-search accounting exact when many searches share the pool.
func (r SegRef) PageSpan() int {
	if r.Len == 0 {
		return 0
	}
	return int((r.Off + r.Len + PageSize - 1) / PageSize)
}

// SubSpan returns the number of pages a ReadSub of bytes [from, from+n) of
// the segment touches — the page cost of a partial fetch (an APL header, a
// posting block, a coordinate range).
func (r SegRef) SubSpan(from, n uint32) int {
	if n == 0 {
		return 0
	}
	first := (r.Off + from) / PageSize
	last := (r.Off + from + n - 1) / PageSize
	return int(last - first + 1)
}

// PageRange returns the half-open page interval [first, past) a ReadSub of
// bytes [from, from+n) touches, for readahead planning.
func (r SegRef) PageRange(from, n uint32) (first, past uint32) {
	if n == 0 {
		return r.Page, r.Page
	}
	return r.Page + (r.Off+from)/PageSize, r.Page + (r.Off+from+n-1)/PageSize + 1
}

// Store packs append-only byte segments across fixed-size pages and reads
// them back through a BufferPool. It is the "hard disk" of the paper's
// Figure 2: APLs, low HICL levels, and raw trajectories are segments here.
type Store struct {
	mu     sync.Mutex
	pager  Pager
	pool   *BufferPool
	cur    []byte // page under construction (len <= PageSize)
	curID  uint32
	sealed bool
}

// NewMemStore returns a Store over an in-memory pager with the given buffer
// pool capacity (pages).
func NewMemStore(poolPages int) *Store {
	pager := NewMemPager()
	return &Store{pager: pager, pool: NewBufferPool(pager, poolPages)}
}

// NewFileStore returns a Store backed by a file at path.
func NewFileStore(path string, poolPages int) (*Store, error) {
	pager, err := NewFilePager(path)
	if err != nil {
		return nil, err
	}
	return &Store{pager: pager, pool: NewBufferPool(pager, poolPages)}, nil
}

// Append writes blob as a new segment and returns its reference. Appending
// after Seal is an error.
func (s *Store) Append(blob []byte) (SegRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return SegRef{}, fmt.Errorf("storage: append to sealed store")
	}
	// Flush an exactly-full tail page first so the returned reference
	// always has Off < PageSize.
	if len(s.cur) == PageSize {
		if err := s.flushCurLocked(); err != nil {
			return SegRef{}, err
		}
	}
	ref := SegRef{Page: s.curID, Off: uint32(len(s.cur)), Len: uint32(len(blob))}
	for len(blob) > 0 {
		space := PageSize - len(s.cur)
		if space == 0 {
			if err := s.flushCurLocked(); err != nil {
				return SegRef{}, err
			}
			continue
		}
		n := min(space, len(blob))
		s.cur = append(s.cur, blob[:n]...)
		blob = blob[n:]
	}
	return ref, nil
}

func (s *Store) flushCurLocked() error {
	if err := s.pager.WritePage(s.curID, s.cur); err != nil {
		return err
	}
	s.pool.Invalidate(s.curID)
	s.curID++
	s.cur = s.cur[:0]
	return nil
}

// Seal flushes the final partial page and freezes the store for reading.
// Reads are permitted before Seal only for fully flushed pages, so callers
// should finish all writes first.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	if len(s.cur) > 0 {
		if err := s.flushCurLocked(); err != nil {
			return err
		}
	}
	s.sealed = true
	return nil
}

// Read returns the bytes of the segment at ref, reading every spanned page
// through the buffer pool (each touched page counts toward PoolStats).
func (s *Store) Read(ref SegRef) ([]byte, error) {
	return s.ReadInto(ref, nil)
}

// ReadInto is Read appending into dst (which may be nil), letting hot paths
// reuse one segment buffer across reads instead of allocating per call.
func (s *Store) ReadInto(ref SegRef, dst []byte) ([]byte, error) {
	if ref.Len == 0 {
		return dst, nil
	}
	out := dst
	if cap(out)-len(out) < int(ref.Len) {
		grown := make([]byte, len(out), len(out)+int(ref.Len))
		copy(grown, out)
		out = grown
	}
	page := ref.Page
	off := int(ref.Off)
	remaining := int(ref.Len)
	for remaining > 0 {
		data, err := s.pool.Get(page)
		if err != nil {
			return nil, fmt.Errorf("storage: read segment {%d,%d,%d}: %w", ref.Page, ref.Off, ref.Len, err)
		}
		n := min(PageSize-off, remaining)
		out = append(out, data[off:off+n]...)
		remaining -= n
		off = 0
		page++
	}
	return out, nil
}

// ReadSub is ReadInto restricted to bytes [from, from+n) of the segment:
// only the pages spanning that sub-range go through the buffer pool, which
// is what lets partial fetches (APL headers, posting blocks, sparse
// coordinate ranges) skip the rest of a multi-page segment.
func (s *Store) ReadSub(ref SegRef, from, n uint32, dst []byte) ([]byte, error) {
	if from+n > ref.Len {
		return nil, fmt.Errorf("storage: sub-read [%d,%d) outside segment of %d bytes", from, from+n, ref.Len)
	}
	sub := SegRef{
		Page: ref.Page + (ref.Off+from)/PageSize,
		Off:  (ref.Off + from) % PageSize,
		Len:  n,
	}
	return s.ReadInto(sub, dst)
}

// PageData returns the cached content of one page (reading it through the
// buffer pool, counting toward PoolStats). The returned slice aliases the
// frame: callers must not modify it. Sparse readers use it to fetch exactly
// the pages that hold the bytes they need.
func (s *Store) PageData(page uint32) ([]byte, error) { return s.pool.Get(page) }

// Prefetch hints that pages [first, past) are about to be read: absent
// pages are loaded into the pool without counting logical accesses, so a
// batch of segment fetches sorted by page can warm the pool in one
// ascending sweep before the per-candidate reads hit it.
func (s *Store) Prefetch(first, past uint32) { s.pool.Prefetch(first, past) }

// Stats returns buffer pool counters.
func (s *Store) Stats() PoolStats { return s.pool.Stats() }

// ResetPool clears the buffer pool (cold-cache experiments).
func (s *Store) ResetPool() { s.pool.Reset() }

// Pages returns the number of pages written (including the unflushed tail).
func (s *Store) Pages() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.pager.PageCount()
	if len(s.cur) > 0 {
		n++
	}
	return n
}

// DiskBytes returns the total on-disk footprint in bytes.
func (s *Store) DiskBytes() int64 { return int64(s.Pages()) * PageSize }

// Close releases the underlying pager.
func (s *Store) Close() error { return s.pager.Close() }

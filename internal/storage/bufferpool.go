package storage

import (
	"container/list"
	"sync"
)

// PoolStats counts page traffic through a BufferPool. Touched counts every
// logical page access; Misses counts the subset served by the underlying
// pager (physical reads). Experiments report Touched as the deterministic
// "page reads" metric and Misses for cache behaviour.
type PoolStats struct {
	Touched uint64
	Hits    uint64
	Misses  uint64
	Evicted uint64
}

// Sub returns s - old, for per-query accounting via snapshots.
func (s PoolStats) Sub(old PoolStats) PoolStats {
	return PoolStats{
		Touched: s.Touched - old.Touched,
		Hits:    s.Hits - old.Hits,
		Misses:  s.Misses - old.Misses,
		Evicted: s.Evicted - old.Evicted,
	}
}

// BufferPool is a fixed-capacity LRU page cache in front of a Pager.
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	lru      *list.List // front = most recent; values are *frame
	frames   map[uint32]*list.Element
	stats    PoolStats
}

type frame struct {
	id   uint32
	data [PageSize]byte
}

// NewBufferPool returns a pool caching up to capacity pages of pager.
// capacity must be >= 1.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[uint32]*list.Element, capacity),
	}
}

// Get returns the content of page id. The returned slice aliases the cached
// frame and is valid until the next pool operation; callers must copy out
// anything they keep and must not modify it.
func (bp *BufferPool) Get(id uint32) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.Touched++
	if el, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).data[:], nil
	}
	bp.stats.Misses++
	var fr *frame
	if bp.lru.Len() >= bp.capacity {
		el := bp.lru.Back()
		fr = el.Value.(*frame)
		delete(bp.frames, fr.id)
		bp.lru.Remove(el)
		bp.stats.Evicted++
	} else {
		fr = &frame{}
	}
	if err := bp.pager.ReadPage(id, fr.data[:]); err != nil {
		return nil, err
	}
	fr.id = id
	bp.frames[id] = bp.lru.PushFront(fr)
	return fr.data[:], nil
}

// Invalidate drops page id from the cache (used after rewrites).
func (bp *BufferPool) Invalidate(id uint32) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.frames[id]; ok {
		delete(bp.frames, id)
		bp.lru.Remove(el)
	}
}

// Reset empties the cache and zeroes statistics.
func (bp *BufferPool) Reset() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.frames = make(map[uint32]*list.Element, bp.capacity)
	bp.stats = PoolStats{}
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}

package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// PoolStats counts page traffic through a BufferPool. Touched counts every
// logical page access; Misses counts the subset served by the underlying
// pager (physical reads). Experiments report Touched as the deterministic
// "page reads" metric and Misses for cache behaviour.
type PoolStats struct {
	Touched uint64
	Hits    uint64
	Misses  uint64
	Evicted uint64
}

// Sub returns s - old, for per-query accounting via snapshots.
func (s PoolStats) Sub(old PoolStats) PoolStats {
	return PoolStats{
		Touched: s.Touched - old.Touched,
		Hits:    s.Hits - old.Hits,
		Misses:  s.Misses - old.Misses,
		Evicted: s.Evicted - old.Evicted,
	}
}

// BufferPool is a fixed-capacity LRU page cache in front of a Pager, safe
// for concurrent use. The page-frame map and LRU list are sharded by page
// number so concurrent readers (engine clones serving queries in parallel)
// do not serialize on a single mutex; statistics are kept in atomics.
//
// Pools below 2 * minPagesPerShard pages use a single shard, which keeps
// exact global LRU semantics for the small deterministic pools tests and
// cold-cache experiments use.
type BufferPool struct {
	pager    Pager
	capacity int
	shards   []poolShard
	mask     uint32

	touched atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
}

type poolShard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *frame
	frames   map[uint32]*list.Element
}

type frame struct {
	id   uint32
	data [PageSize]byte
}

const (
	// maxPoolShards bounds lock splitting; past ~16 ways the mutexes are
	// no longer the bottleneck.
	maxPoolShards = 16
	// minPagesPerShard keeps shards big enough that per-shard LRU still
	// approximates global LRU.
	minPagesPerShard = 8
)

func poolShardCount(capacity int) int {
	n := 1
	for n < maxPoolShards && capacity >= n*2*minPagesPerShard {
		n <<= 1
	}
	return n
}

// NewBufferPool returns a pool caching up to capacity pages of pager.
// capacity must be >= 1.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	n := poolShardCount(capacity)
	bp := &BufferPool{
		pager:    pager,
		capacity: capacity,
		shards:   make([]poolShard, n),
		mask:     uint32(n - 1),
	}
	base, extra := capacity/n, capacity%n
	for i := range bp.shards {
		c := base
		if i < extra {
			c++
		}
		bp.shards[i] = poolShard{
			capacity: c,
			lru:      list.New(),
			frames:   make(map[uint32]*list.Element, c),
		}
	}
	return bp
}

func (bp *BufferPool) shardFor(id uint32) *poolShard { return &bp.shards[id&bp.mask] }

// Get returns the content of page id. The returned slice aliases the cached
// frame: callers must not modify it. Evicted frames are never recycled, so
// the slice stays valid (and race-free) even if the page is evicted while a
// concurrent reader still holds it.
func (bp *BufferPool) Get(id uint32) ([]byte, error) {
	bp.touched.Add(1)
	s := bp.shardFor(id)
	s.mu.Lock()
	if el, ok := s.frames[id]; ok {
		s.lru.MoveToFront(el)
		data := el.Value.(*frame).data[:]
		s.mu.Unlock()
		bp.hits.Add(1)
		return data, nil
	}
	s.mu.Unlock()
	bp.misses.Add(1)

	// Read outside the shard lock so a slow pager does not stall other
	// pages of the shard. Concurrent misses on the same page may both read
	// it; the second insert refreshes the first, which is correct because
	// pages are immutable once flushed.
	fr := &frame{id: id}
	if err := bp.pager.ReadPage(id, fr.data[:]); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if el, ok := s.frames[id]; ok {
		// Raced with another filler; keep the resident frame.
		s.lru.MoveToFront(el)
		data := el.Value.(*frame).data[:]
		s.mu.Unlock()
		return data, nil
	}
	if s.lru.Len() >= s.capacity {
		el := s.lru.Back()
		delete(s.frames, el.Value.(*frame).id)
		s.lru.Remove(el)
		bp.evicted.Add(1)
	}
	s.frames[id] = s.lru.PushFront(fr)
	s.mu.Unlock()
	return fr.data[:], nil
}

// Prefetch loads pages [first, past) that are not already resident. It is a
// readahead hint: loads count as physical reads (Misses) but not as logical
// accesses (Touched/Hits), so per-fetch accounting stays comparable whether
// or not a caller prefetches. Read errors are ignored — the subsequent Get
// will surface them.
func (bp *BufferPool) Prefetch(first, past uint32) {
	for id := first; id < past; id++ {
		s := bp.shardFor(id)
		s.mu.Lock()
		_, resident := s.frames[id]
		s.mu.Unlock()
		if resident {
			continue
		}
		fr := &frame{id: id}
		if err := bp.pager.ReadPage(id, fr.data[:]); err != nil {
			return
		}
		bp.misses.Add(1)
		s.mu.Lock()
		if _, ok := s.frames[id]; !ok {
			if s.lru.Len() >= s.capacity {
				el := s.lru.Back()
				delete(s.frames, el.Value.(*frame).id)
				s.lru.Remove(el)
				bp.evicted.Add(1)
			}
			s.frames[id] = s.lru.PushFront(fr)
		}
		s.mu.Unlock()
	}
}

// Invalidate drops page id from the cache (used after rewrites).
func (bp *BufferPool) Invalidate(id uint32) {
	s := bp.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.frames[id]; ok {
		delete(s.frames, id)
		s.lru.Remove(el)
	}
}

// Reset empties the cache and zeroes statistics.
func (bp *BufferPool) Reset() {
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		s.lru.Init()
		s.frames = make(map[uint32]*list.Element, s.capacity)
		s.mu.Unlock()
	}
	bp.touched.Store(0)
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evicted.Store(0)
}

// Stats returns a snapshot of the pool counters. Under concurrent use the
// counters are individually exact but not mutually atomic.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Touched: bp.touched.Load(),
		Hits:    bp.hits.Load(),
		Misses:  bp.misses.Load(),
		Evicted: bp.evicted.Load(),
	}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Shards returns the number of lock shards the pool uses.
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	n := 0
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Package storage simulates the secondary-storage tier of the paper's
// memory/disk split. The GAT index keeps its Activity Posting Lists, the low
// levels of the Hierarchical Inverted Cell List, and the raw trajectories on
// disk; this package provides the page-granular store those components live
// in: a Pager (in-memory or file-backed), an LRU BufferPool with hit/miss
// accounting, and a Store that packs variable-length segments across pages.
//
// All engines in this repository read trajectory data through the same
// Store, so the page-read counts reported in experiments isolate how much
// each index structure touches "disk".
package storage

import (
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes (a common DBMS default).
const PageSize = 4096

// Pager is random access to fixed-size pages identified by dense IDs.
type Pager interface {
	// ReadPage fills buf (len PageSize) with the content of page id.
	ReadPage(id uint32, buf []byte) error
	// WritePage stores data (len <= PageSize) as page id, which must be
	// either an existing page or the next unallocated ID.
	WritePage(id uint32, data []byte) error
	// PageCount returns the number of allocated pages.
	PageCount() uint32
	// Close releases underlying resources.
	Close() error
}

// MemPager is an in-memory Pager, useful for tests and for fully
// deterministic benchmarks (no filesystem variance).
type MemPager struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager { return &MemPager{} }

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id uint32, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id uint32, data []byte) error {
	if len(data) > PageSize {
		return fmt.Errorf("storage: page write of %d bytes exceeds page size", len(data))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case int(id) < len(m.pages):
		copy(m.pages[id], data)
	case int(id) == len(m.pages):
		p := make([]byte, PageSize)
		copy(p, data)
		m.pages = append(m.pages, p)
	default:
		return fmt.Errorf("storage: non-contiguous page write %d (have %d)", id, len(m.pages))
	}
	return nil
}

// PageCount implements Pager.
func (m *MemPager) PageCount() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint32(len(m.pages))
}

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// FilePager is a Pager backed by a regular file.
type FilePager struct {
	mu    sync.Mutex
	f     *os.File
	count uint32
}

// NewFilePager creates (truncating) a file-backed pager at path.
func NewFilePager(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open pager file: %w", err)
	}
	return &FilePager{f: f}, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id uint32, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.count {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, p.count)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id uint32, data []byte) error {
	if len(data) > PageSize {
		return fmt.Errorf("storage: page write of %d bytes exceeds page size", len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id > p.count {
		return fmt.Errorf("storage: non-contiguous page write %d (have %d)", id, p.count)
	}
	var page [PageSize]byte
	copy(page[:], data)
	if _, err := p.f.WriteAt(page[:], int64(id)*PageSize); err != nil {
		return err
	}
	if id == p.count {
		p.count++
	}
	return nil
}

// PageCount implements Pager.
func (p *FilePager) PageCount() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Close implements Pager.
func (p *FilePager) Close() error { return p.f.Close() }

package subscribe

import (
	"context"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// dynBackend adapts a delta.Engine to Backend. The engine is owned by the
// hub's dispatcher goroutine exclusively (delta engines are single-
// goroutine, like every engine in this library).
type dynBackend struct{ e *delta.Engine }

func (b dynBackend) Search(ctx context.Context, req query.Request) (query.Response, error) {
	return b.e.Search(ctx, req)
}

func (b dynBackend) Score(req query.Request, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, bool, error) {
	return b.e.ScoreOne(req, id, threshold, stats)
}

// dynObserver forwards a delta.Dynamic's mutation stream into the hub.
type dynObserver struct{ h *Hub }

func (o dynObserver) OnInsert(id trajectory.TrajID, pts []geo.Point, acts trajectory.ActivitySet) {
	o.h.FeedInsert(0, id, pts, acts)
}

func (o dynObserver) OnDelete(id trajectory.TrajID) { o.h.FeedDelete(0, id) }

// NewDynamicHub builds a hub over a single dynamic index: a dedicated
// serving engine backs seeds/re-searches/scoring, and the index's mutation
// observer feeds the dispatcher. Close detaches the observer. Options.
// Resolve and Options.Detach are overwritten (IDs are already global on a
// single index).
func NewDynamicHub(d *delta.Dynamic, opts Options) *Hub {
	opts.Resolve = nil
	opts.Detach = func() { d.SetObserver(nil) }
	h := New(dynBackend{d.NewEngine()}, opts)
	d.SetObserver(dynObserver{h})
	return h
}

package subscribe

import (
	"sync"

	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Subscription is one standing query: the request, its live top-k, and a
// bounded ring of the events that changed it. The hub's dispatcher is the
// only mutator; consumers read concurrently through TopK/LastSeq/Next.
type Subscription struct {
	id      uint64
	hub     *Hub
	req     query.Request
	allActs trajectory.ActivitySet
	k       int

	mu   sync.Mutex
	topk []query.Result // ascending (Dist, ID), len <= k

	// Event ring: seqs firstSeq..lastSeq live in ring[(head+i)%len].
	ring     []Event
	head     int
	n        int
	firstSeq uint64 // seq of ring[head]; lastSeq+1 when empty
	lastSeq  uint64

	notify chan struct{} // closed and replaced on every append
	closed bool
}

// ID returns the subscription's hub-unique identifier.
func (s *Subscription) ID() uint64 { return s.id }

// Request returns the standing request. The returned value shares the
// query's slices; treat it as read-only.
func (s *Subscription) Request() query.Request { return s.req }

// TopK returns a copy of the current top-k, ascending (Dist, ID).
func (s *Subscription) TopK() []query.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]query.Result(nil), s.topk...)
}

// Snapshot returns the newest sequence number together with the top-k as of
// that sequence, read atomically (TopK and LastSeq read separately can tear
// against a concurrent event; a server handing a client a resume cursor
// needs the pair to be consistent).
func (s *Subscription) Snapshot() (uint64, []query.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq, append([]query.Result(nil), s.topk...)
}

// LastSeq returns the sequence number of the newest event (0 before any).
func (s *Subscription) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Closed reports whether the subscription was unsubscribed or its hub
// closed. Events appended before closing remain readable via Next.
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Next returns the events with sequence numbers greater than after.
//
//   - If events are pending, they are returned (oldest first). When the
//     oldest requested events were evicted from the ring, a single
//     synthesized resync event is returned instead: its Seq is the current
//     newest sequence and its TopK the current full state, so the consumer
//     resumes from Seq having observed exactly the live state.
//   - If no events are pending, Next returns a nil slice and a channel that
//     is closed when the next event arrives (or the subscription closes);
//     wait on it and call Next again.
//   - closed is true once the subscription is closed AND its backlog after
//     `after` is drained; the returned events (if any) are still valid.
//
// An `after` beyond the newest sequence is treated as the newest (a client
// resuming against a restarted server cannot block forever on a stale
// cursor).
func (s *Subscription) Next(after uint64) (evs []Event, wait <-chan struct{}, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if after > s.lastSeq {
		after = s.lastSeq
	}
	if after == s.lastSeq {
		if s.closed {
			return nil, nil, true
		}
		return nil, s.notify, false
	}
	if after+1 < s.firstSeq {
		// The gap was evicted: resynchronize with full state.
		s.hub.resyncs.Add(1)
		ev := Event{Seq: s.lastSeq, Kind: EventResync, TopK: append([]query.Result(nil), s.topk...)}
		return []Event{ev}, nil, false
	}
	evs = make([]Event, 0, s.lastSeq-after)
	for seq := after + 1; seq <= s.lastSeq; seq++ {
		evs = append(evs, s.ring[(s.head+int(seq-s.firstSeq))%len(s.ring)])
	}
	return evs, nil, false
}

// contains reports membership of id in the top-k. Caller holds s.mu.
func (s *Subscription) contains(id trajectory.TrajID) bool {
	for _, r := range s.topk {
		if r.ID == id {
			return true
		}
	}
	return false
}

// insertResult places r into the ascending (Dist, ID) order. Caller holds
// s.mu and guarantees len(topk) < k.
func (s *Subscription) insertResult(r query.Result) {
	i := len(s.topk)
	for i > 0 && (s.topk[i-1].Dist > r.Dist ||
		(s.topk[i-1].Dist == r.Dist && s.topk[i-1].ID > r.ID)) {
		i--
	}
	s.topk = append(s.topk, query.Result{})
	copy(s.topk[i+1:], s.topk[i:])
	s.topk[i] = r
}

// removeID deletes id from the top-k, preserving order. Caller holds s.mu.
func (s *Subscription) removeID(id trajectory.TrajID) {
	for i, r := range s.topk {
		if r.ID == id {
			s.topk = append(s.topk[:i], s.topk[i+1:]...)
			return
		}
	}
}

// emit appends an event with the next sequence number and a snapshot of the
// current top-k, evicting the oldest ring entry when full, and wakes
// waiting consumers. Caller holds s.mu (dispatcher only).
func (s *Subscription) emit(kind EventKind, id trajectory.TrajID, dist float64) {
	s.lastSeq++
	ev := Event{Seq: s.lastSeq, Kind: kind, ID: id, Dist: dist,
		TopK: append([]query.Result(nil), s.topk...)}
	if s.n == len(s.ring) {
		s.ring[s.head] = Event{}
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.firstSeq++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.hub.events.Add(1)
	close(s.notify)
	s.notify = make(chan struct{})
}

// close marks the subscription closed and wakes waiting consumers. The
// event backlog stays readable.
func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.notify)
	s.notify = make(chan struct{})
}

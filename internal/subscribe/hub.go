package subscribe

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// ErrClosed is returned by Subscribe on a closed (or closing) hub.
var ErrClosed = errors.New("subscribe: hub closed")

type itemKind uint8

const (
	itemInsert itemKind = iota + 1
	itemDelete
	itemSubscribe
)

// item is one dispatcher queue entry: a mutation observed on the index, or
// a subscribe control (the seed search must run in the dispatcher goroutine
// — the backend is single-goroutine, and running it in queue order is what
// makes the zero-subscriber fast path sound: any mutation skipped because
// nsubs was 0 applied before the subscription's registration was enqueued,
// so the seed search sees it).
type item struct {
	kind  itemKind
	shard int32
	id    trajectory.TrajID
	pts   []geo.Point
	acts  trajectory.ActivitySet
	sub   *Subscription
	done  chan error
}

// Hub dispatches the mutation feed to every registered subscription from a
// single dispatcher goroutine. Feed methods are safe to call from mutation
// paths holding index locks: they only enqueue under the hub mutex, which
// the dispatcher never holds while touching the backend.
type Hub struct {
	backend Backend
	resolve func(int32, trajectory.TrajID) (trajectory.TrajID, bool)
	detach  func()
	bufSize int

	ctx    context.Context
	cancel context.CancelFunc

	// nsubs is the zero-subscriber fast path: feeds drop mutations with one
	// atomic load when no subscription exists (incremented before the
	// subscribe control is enqueued, decremented on unsubscribe).
	nsubs atomic.Int64

	mu        sync.Mutex
	qcond     *sync.Cond // dispatcher waits for queue items
	scond     *sync.Cond // Sync waiters wait for processed to advance
	queue     []item
	qhead     int
	closing   bool
	stopped   bool
	subs      map[uint64]*Subscription
	nextSubID uint64
	enqueued  uint64
	processed uint64

	done chan struct{} // dispatcher exited

	inserts, deletes, prefilterRejected, scored, admitted,
	researches, events, resyncs, dropped, errs atomic.Uint64

	scratch query.SearchStats // dispatcher-only scoring stats scratch
}

// New builds a hub over backend and starts its dispatcher. Wire the
// mutation feed afterwards (see NewDynamicHub / shard.Router.NewHub for the
// packaged constructors).
func New(backend Backend, opts Options) *Hub {
	h := &Hub{
		backend: backend,
		resolve: opts.Resolve,
		detach:  opts.Detach,
		bufSize: opts.EventBuffer,
		subs:    make(map[uint64]*Subscription),
		done:    make(chan struct{}),
	}
	if h.bufSize <= 0 {
		h.bufSize = DefaultEventBuffer
	}
	if h.resolve == nil {
		h.resolve = func(_ int32, local trajectory.TrajID) (trajectory.TrajID, bool) {
			return local, true
		}
	}
	h.qcond = sync.NewCond(&h.mu)
	h.scond = sync.NewCond(&h.mu)
	h.ctx, h.cancel = context.WithCancel(context.Background())
	go h.dispatch()
	return h
}

// FeedInsert reports an applied insert. It is called by mutation observers
// (under index locks): with no subscriptions it is one atomic load; with
// subscriptions it enqueues and returns. Per feed source, calls must arrive
// in apply order (delta.Dynamic fires observers under its mutation lock).
func (h *Hub) FeedInsert(shard int32, local trajectory.TrajID, pts []geo.Point, acts trajectory.ActivitySet) {
	if h.nsubs.Load() == 0 {
		return
	}
	h.feed(item{kind: itemInsert, shard: shard, id: local, pts: pts, acts: acts})
}

// FeedDelete reports an applied (first-time) delete. See FeedInsert.
func (h *Hub) FeedDelete(shard int32, local trajectory.TrajID) {
	if h.nsubs.Load() == 0 {
		return
	}
	h.feed(item{kind: itemDelete, shard: shard, id: local})
}

func (h *Hub) feed(it item) {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.queue = append(h.queue, it)
	h.enqueued++
	h.qcond.Signal()
	h.mu.Unlock()
}

// Subscribe registers a standing request: the dispatcher seeds it with a
// from-scratch search (in queue order, so every mutation skipped by the
// zero-subscriber fast path is already visible to the seed) and maintains
// it until Unsubscribe or Close. WithMatches requests are rejected —
// incremental maintenance tracks distances, not covers.
func (h *Hub) Subscribe(ctx context.Context, req query.Request) (*Subscription, error) {
	if err := req.ValidateSpan(); err != nil {
		return nil, err
	}
	if err := req.Query.Validate(); err != nil {
		return nil, err
	}
	if req.WithMatches {
		return nil, fmt.Errorf("subscribe: WithMatches is not supported for standing queries")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := req.K
	if k < 1 {
		k = 1
	}
	s := &Subscription{
		hub:      h,
		req:      req,
		allActs:  req.Query.AllActs(),
		k:        k,
		ring:     make([]Event, h.bufSize),
		firstSeq: 1,
		notify:   make(chan struct{}),
	}
	done := make(chan error, 1)
	h.mu.Lock()
	if h.closing {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	h.nextSubID++
	s.id = h.nextSubID
	h.nsubs.Add(1)
	h.queue = append(h.queue, item{kind: itemSubscribe, sub: s, done: done})
	h.enqueued++
	h.qcond.Signal()
	h.mu.Unlock()
	if err := <-done; err != nil {
		h.nsubs.Add(-1)
		return nil, err
	}
	return s, nil
}

// Unsubscribe removes subscription id, reporting whether it was registered.
// The subscription closes immediately; consumers blocked in Next wake up.
func (h *Hub) Unsubscribe(id uint64) bool {
	h.mu.Lock()
	s, ok := h.subs[id]
	if ok {
		delete(h.subs, id)
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	h.nsubs.Add(-1)
	s.close()
	return true
}

// Get returns the registered subscription with the given id.
func (h *Hub) Get(id uint64) (*Subscription, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	return s, ok
}

// Sync blocks until every feed event enqueued before the call has been
// processed (or the hub closes). Differential tests and benchmarks use it
// as the convergence barrier.
func (h *Hub) Sync() {
	h.mu.Lock()
	target := h.enqueued
	for h.processed < target && !h.stopped {
		h.scond.Wait()
	}
	h.mu.Unlock()
}

// Close detaches the mutation feed, cancels in-flight backend calls, closes
// every subscription and stops the dispatcher. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closing {
		h.mu.Unlock()
		<-h.done
		return
	}
	h.closing = true
	h.mu.Unlock()
	// Detach outside h.mu: observers fire under index locks and block on
	// h.mu in feed, while SetObserver(nil) takes the same index lock —
	// holding h.mu here would deadlock that handshake.
	if h.detach != nil {
		h.detach()
	}
	h.cancel()
	h.mu.Lock()
	h.stopped = true
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[uint64]*Subscription)
	h.qcond.Broadcast()
	h.scond.Broadcast()
	h.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	h.nsubs.Store(0)
	<-h.done
}

// Stats returns a snapshot of the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	pending := int64(len(h.queue) - h.qhead)
	h.mu.Unlock()
	return Stats{
		Active:            h.nsubs.Load(),
		Pending:           pending,
		Inserts:           h.inserts.Load(),
		Deletes:           h.deletes.Load(),
		PrefilterRejected: h.prefilterRejected.Load(),
		Scored:            h.scored.Load(),
		Admitted:          h.admitted.Load(),
		Researches:        h.researches.Load(),
		Events:            h.events.Load(),
		Resyncs:           h.resyncs.Load(),
		Dropped:           h.dropped.Load(),
		Errors:            h.errs.Load(),
	}
}

// dispatch is the hub's single worker: it pops queue items in order and
// applies them. It holds h.mu only for queue/registry operations, never
// while calling the backend, so feeders (who may hold index mutation locks)
// are never blocked behind a search.
func (h *Hub) dispatch() {
	defer close(h.done)
	for {
		h.mu.Lock()
		for h.qhead >= len(h.queue) && !h.stopped {
			h.qcond.Wait()
		}
		if h.qhead >= len(h.queue) {
			h.mu.Unlock()
			return
		}
		it := h.queue[h.qhead]
		h.queue[h.qhead] = item{}
		h.qhead++
		if h.qhead == len(h.queue) {
			h.queue = h.queue[:0]
			h.qhead = 0
		}
		stopped := h.stopped
		h.mu.Unlock()
		if stopped {
			// Drain without processing; answer subscribers so they never hang.
			if it.done != nil {
				it.done <- ErrClosed
			}
		} else {
			h.process(it)
		}
		h.mu.Lock()
		h.processed++
		h.scond.Broadcast()
		h.mu.Unlock()
	}
}

func (h *Hub) process(it item) {
	switch it.kind {
	case itemSubscribe:
		err := h.seed(it.sub)
		if err == nil {
			h.mu.Lock()
			h.subs[it.sub.id] = it.sub
			h.mu.Unlock()
		}
		it.done <- err
	case itemInsert:
		h.inserts.Add(1)
		gid, ok := h.resolve(it.shard, it.id)
		if !ok {
			h.dropped.Add(1)
			return
		}
		subs := h.snapshotSubs()
		if len(subs) == 0 {
			return
		}
		var bbox geo.Rect
		if len(it.pts) > 0 {
			bbox = ptsBounds(it.pts)
		}
		for _, s := range subs {
			h.applyInsert(s, gid, it.pts, it.acts, bbox)
		}
	case itemDelete:
		h.deletes.Add(1)
		gid, ok := h.resolve(it.shard, it.id)
		if !ok {
			h.dropped.Add(1)
			return
		}
		for _, s := range h.snapshotSubs() {
			h.applyDelete(s, gid)
		}
	}
}

func (h *Hub) snapshotSubs() []*Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		out = append(out, s)
	}
	return out
}

// seed runs the subscription's from-scratch search and installs the result.
func (h *Hub) seed(s *Subscription) error {
	req := s.req
	req.K = s.k
	resp, err := h.backend.Search(h.ctx, req)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.topk = append(s.topk[:0], resp.Results...)
	s.mu.Unlock()
	return nil
}

// applyInsert maintains one subscription against one freshly inserted
// trajectory. The insert is scored only if it passes the activity/region/
// span prefilters and its Algorithm-2 per-trajectory lower bound beats the
// current k-th distance (or the request bound while the top-k is not full);
// admission then mirrors query.TopK.Offer exactly, including the equal-
// distance smaller-ID tie-break — which is sound because a candidate at
// exactly the threshold still scores fully.
func (h *Hub) applyInsert(s *Subscription, gid trajectory.TrajID, pts []geo.Point, acts trajectory.ActivitySet, bbox geo.Rect) {
	s.mu.Lock()
	if s.closed || s.contains(gid) {
		// contains: a member-delete re-search already observed this insert
		// (it was applied to the index before this event was processed).
		s.mu.Unlock()
		return
	}
	full := len(s.topk) >= s.k
	thr := s.req.Bound()
	if full {
		if kth := s.topk[len(s.topk)-1].Dist; kth < thr {
			thr = kth
		}
	}
	s.mu.Unlock()

	// Prefilters: each implies the trajectory's distance is +Inf or above
	// the threshold, so skipping the exact scoring can never lose a member.
	if len(pts) == 0 || !acts.ContainsAll(s.allActs) {
		h.prefilterRejected.Add(1)
		return
	}
	if s.req.Region != nil && !s.req.Region.Intersects(bbox) {
		h.prefilterRejected.Add(1)
		return
	}
	if s.req.Subtrajectory && s.req.MinSpanPoints > len(pts) {
		h.prefilterRejected.Add(1)
		return
	}
	if lb := lowerBound(s.req.Query, bbox); lb > thr {
		h.prefilterRejected.Add(1)
		return
	}

	h.scored.Add(1)
	h.scratch = query.SearchStats{}
	req := s.req
	req.K = s.k
	d, ok, err := h.backend.Score(req, gid, thr, &h.scratch)
	if err != nil {
		h.errs.Add(1)
		return
	}
	if !ok || math.IsInf(d, 1) {
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.topk) < s.k {
		s.insertResult(query.Result{ID: gid, Dist: d})
		h.admitted.Add(1)
		s.emit(EventJoin, gid, d)
		return
	}
	worst := s.topk[len(s.topk)-1]
	if d < worst.Dist || (d == worst.Dist && gid < worst.ID) {
		s.topk = s.topk[:len(s.topk)-1]
		s.insertResult(query.Result{ID: gid, Dist: d})
		h.admitted.Add(1)
		s.emit(EventLeave, worst.ID, 0)
		s.emit(EventJoin, gid, d)
	}
}

// applyDelete maintains one subscription against one applied delete. A
// delete of a non-member changes nothing (a not-yet-full top-k holds every
// qualifying trajectory, so non-members stay non-members when anything is
// removed). A member delete from a full top-k triggers a re-search: first
// bounded with InitialBound = the old k-th distance — if k results come
// back they are exactly the new top-k — falling back to the request's own
// bound when fewer return (the new k-th distance may exceed the old one).
func (h *Hub) applyDelete(s *Subscription, gid trajectory.TrajID) {
	s.mu.Lock()
	if s.closed || !s.contains(gid) {
		s.mu.Unlock()
		return
	}
	if len(s.topk) < s.k {
		// Not full ⇒ the top-k holds every in-bound match; plain removal
		// is exact, no re-search can promote anything.
		s.removeID(gid)
		s.emit(EventLeave, gid, 0)
		s.mu.Unlock()
		return
	}
	old := append([]query.Result(nil), s.topk...)
	oldKth := s.topk[len(s.topk)-1].Dist
	s.mu.Unlock()

	h.researches.Add(1)
	req := s.req
	req.K = s.k
	var resp query.Response
	var err error
	if oldKth > 0 && !math.IsInf(oldKth, 1) && oldKth != req.InitialBound {
		// Bounded attempt (InitialBound == 0 means unset, so a zero k-th
		// distance cannot be expressed as a bound — search unbounded).
		breq := req
		breq.InitialBound = oldKth
		resp, err = h.backend.Search(h.ctx, breq)
		if err == nil && len(resp.Results) < s.k {
			resp, err = h.backend.Search(h.ctx, req)
		}
	} else {
		resp, err = h.backend.Search(h.ctx, req)
	}
	if err != nil {
		h.errs.Add(1)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.topk = append(s.topk[:0], resp.Results...)
	for _, r := range old {
		if !s.contains(r.ID) {
			s.emit(EventLeave, r.ID, 0)
		}
	}
	for _, r := range s.topk {
		found := false
		for _, o := range old {
			if o.ID == r.ID {
				found = true
				break
			}
		}
		if !found {
			s.emit(EventJoin, r.ID, r.Dist)
		}
	}
}

// Package subscribe maintains continuous standing queries over the ingest
// stream: a Subscription holds a standing query.Request plus its live top-k,
// and a Hub — fed by a delta.MutationObserver hooked at the index's
// apply-then-bump points — incrementally keeps every subscriber's top-k
// byte-identical to a from-scratch Search of the same Request.
//
// The paper's Algorithm-2 lower bound is admissible in reverse: a freshly
// inserted trajectory can only enter a standing top-k if the sum over query
// points of the minimum distance to the trajectory's bounding box beats the
// subscriber's current k-th distance (the per-cell bound of Algorithm 2,
// run per trajectory). Inserts that fail the bound — or the activity
// containment, region, or span prefilters before it — are rejected without
// scoring (Stats.PrefilterRejected); survivors are scored exactly with the
// k-th distance as the pruning threshold, which is exact because the
// matcher abandons only strictly above the threshold. A delete of a current
// member triggers a bounded re-search seeded with InitialBound = the old
// k-th distance, falling back to an unbounded search when fewer than k
// results come back (the new k-th distance may exceed the old one). A
// not-yet-full top-k needs no re-search on member deletes: it already holds
// every qualifying trajectory, so plain removal is exact.
//
// Every accepted update appends a monotone-sequenced Event (join/leave,
// each carrying the full post-mutation top-k) to the subscription's ring
// buffer; consumers that fall behind the buffer receive a synthesized
// resync event carrying the current state instead of the lost deltas.
//
// Lifecycle: NewDynamicHub (or shard.Router.NewHub for the sharded tier)
// attaches the hub to a live index; Subscribe seeds a subscription with a
// from-scratch search and registers it; consumers page events with
// Subscription.Next; Unsubscribe frees one subscription; Close detaches the
// observer, cancels in-flight re-searches and stops the dispatcher. With no
// subscriptions registered, a fed mutation costs one atomic load on the
// ingest path.
package subscribe

import (
	"context"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// DefaultEventBuffer is the per-subscription event ring size used when
// Options.EventBuffer is zero.
const DefaultEventBuffer = 256

// Backend is the search engine a Hub maintains subscriptions against. Both
// methods are called from the hub's single dispatcher goroutine only, so a
// single-goroutine engine (delta.Engine, shard.Engine) works unwrapped.
type Backend interface {
	// Search runs a from-scratch search (subscription seeding and member-
	// delete re-searches).
	Search(ctx context.Context, req query.Request) (query.Response, error)
	// Score computes the request's exact distance for one trajectory under
	// an exact pruning threshold: ok reports that the trajectory scored
	// finitely within the threshold (the matcher abandons only strictly
	// above it, so a candidate at exactly the threshold scores fully).
	Score(req query.Request, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, bool, error)
}

// Options tunes a Hub.
type Options struct {
	// EventBuffer is the per-subscription event ring size (default
	// DefaultEventBuffer). A consumer that falls more than EventBuffer
	// events behind is resynchronized with a full-state resync event.
	EventBuffer int
	// Resolve translates a feed's (shard, local ID) into the global ID
	// subscriptions report. nil is the identity (single-index hubs). It is
	// called from the dispatcher goroutine; returning ok=false drops the
	// event (Stats.Dropped) — the sharded tier uses this for a mapping
	// that never became visible.
	Resolve func(shard int32, local trajectory.TrajID) (trajectory.TrajID, bool)
	// Detach, when non-nil, is called exactly once by Close, before the
	// dispatcher stops: it must disconnect the hub from its mutation
	// feed(s) (e.g. delta.Dynamic.SetObserver(nil)).
	Detach func()
}

// EventKind classifies a subscription event.
type EventKind uint8

const (
	// EventJoin reports a trajectory entering the top-k (ID, Dist set).
	EventJoin EventKind = iota + 1
	// EventLeave reports a trajectory leaving the top-k (ID set).
	EventLeave
	// EventResync replaces lost history: the consumer fell behind the
	// event buffer (or asked for a pre-buffer sequence), so instead of the
	// lost deltas it gets the current full top-k and resumes from Seq.
	EventResync
)

// String returns the wire name of the kind ("join", "leave", "resync").
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventResync:
		return "resync"
	}
	return "unknown"
}

// Event is one monotone-sequenced change to a subscription's top-k. Seq
// starts at 1 and increments by one per event; TopK is the subscription's
// full top-k after the triggering mutation's effect was applied (both
// events of an insert-evicts-worst pair carry the same final state), so any
// single event is sufficient to resynchronize a consumer.
type Event struct {
	Seq  uint64
	Kind EventKind
	// ID is the joining/leaving trajectory (global ID); zero for resync.
	ID trajectory.TrajID
	// Dist is the joining trajectory's distance; zero for leave/resync.
	Dist float64
	// TopK is the full current top-k, ascending (Dist, ID).
	TopK []query.Result
}

// Stats is a snapshot of a Hub's counters (all monotone except Active and
// Pending).
type Stats struct {
	// Active is the number of registered subscriptions.
	Active int64
	// Pending is the current dispatcher queue depth.
	Pending int64
	// Inserts and Deletes count mutations the dispatcher processed (events
	// skipped by the zero-subscriber fast path are not enqueued at all).
	Inserts uint64
	Deletes uint64
	// PrefilterRejected counts insert×subscription pairs rejected without
	// scoring: activity containment, region, span length, or the
	// Algorithm-2 per-trajectory lower bound vs the current k-th distance.
	PrefilterRejected uint64
	// Scored counts insert×subscription pairs that reached exact scoring;
	// Admitted counts those that entered a top-k.
	Scored   uint64
	Admitted uint64
	// Researches counts member-delete re-searches (bounded attempt and its
	// unbounded fallback count as one).
	Researches uint64
	// Events counts events appended across all subscriptions; Resyncs
	// counts synthesized resync events served to lagging consumers.
	Events  uint64
	Resyncs uint64
	// Dropped counts feed events whose ID could not be resolved; Errors
	// counts backend failures while scoring or re-searching (normally only
	// the cancellation at Close).
	Dropped uint64
	Errors  uint64
}

// ptsBounds returns the bounding box of pts (caller guarantees len > 0).
// The box covers every point, a superset of the activity-carrying points a
// match could use, so distances to it lower-bound distances to any relevant
// point — the bound below stays admissible.
func ptsBounds(pts []geo.Point) geo.Rect {
	r := geo.Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// lowerBound is the Algorithm-2 bound run per trajectory: the sum over
// query points of the minimum distance to the trajectory's bounding box
// lower-bounds Dmm, which lower-bounds Dmom and every span-constrained
// distance — so a trajectory with lowerBound above the current k-th
// distance can be rejected without scoring, never missing a qualifier.
func lowerBound(q query.Query, bbox geo.Rect) float64 {
	var lb float64
	for _, p := range q.Pts {
		lb += bbox.MinDist(p.Loc)
	}
	return lb
}

package subscribe

import (
	"context"
	"errors"
	"sort"
	"testing"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// fakeBackend scores trajectories from a fixed distance table, so event
// sequences are fully deterministic. It mimics the real engines' contract:
// Search returns the k nearest by (dist, id); Score returns ok only when the
// distance is within the threshold.
type fakeBackend struct {
	dist map[trajectory.TrajID]float64
}

func (b *fakeBackend) Search(_ context.Context, req query.Request) (query.Response, error) {
	var rs []query.Result
	bound := req.Bound()
	for id, d := range b.dist {
		if d <= bound {
			rs = append(rs, query.Result{ID: id, Dist: d})
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
	if req.K > 0 && len(rs) > req.K {
		rs = rs[:req.K]
	}
	return query.Response{Results: rs}, nil
}

func (b *fakeBackend) Score(_ query.Request, id trajectory.TrajID, threshold float64, _ *query.SearchStats) (float64, bool, error) {
	d, ok := b.dist[id]
	if !ok || d > threshold {
		return 0, false, nil
	}
	return d, true, nil
}

func testReq() query.Request {
	return query.Request{
		Query: query.Query{Pts: []query.Point{{
			Loc:  geo.Point{X: 0, Y: 0},
			Acts: trajectory.NewActivitySet(1),
		}}},
		K: 2,
	}
}

// feed pushes an insert whose geometry sits at the query point with matching
// activities, so the prefilter admits it and the fake backend decides.
func feed(h *Hub, id trajectory.TrajID) {
	h.FeedInsert(0, id, []geo.Point{{X: 0, Y: 0}}, trajectory.NewActivitySet(1))
	h.Sync()
}

func mustSub(t *testing.T, h *Hub, req query.Request) *Subscription {
	t.Helper()
	s, err := h.Subscribe(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEventRingAndResync pins the consumer contract: in-window cursors get
// exact replay, an evicted window gets a single resync event carrying the
// full current top-k, and a future cursor clamps to the head and waits.
func TestEventRingAndResync(t *testing.T) {
	b := &fakeBackend{dist: map[trajectory.TrajID]float64{}}
	h := New(b, Options{EventBuffer: 2})
	defer h.Close()
	s := mustSub(t, h, testReq())
	if tk := s.TopK(); len(tk) != 0 {
		t.Fatalf("seed over empty store: %v", tk)
	}

	// Each insert is strictly better than the last: 1,2 join; 3 evicts 1;
	// 4 evicts 2. Six events total, ring keeps the last two.
	for id, d := range map[trajectory.TrajID]float64{1: 4, 2: 3, 3: 2, 4: 1} {
		b.dist[id] = d
	}
	for id := trajectory.TrajID(1); id <= 4; id++ {
		feed(h, id)
	}
	if got := s.LastSeq(); got != 6 {
		t.Fatalf("lastSeq = %d, want 6", got)
	}

	// Cursor before the retained window: one synthesized resync at the head.
	evs, _, closed := s.Next(0)
	if closed || len(evs) != 1 || evs[0].Kind != EventResync || evs[0].Seq != 6 {
		t.Fatalf("Next(0) = %v closed=%v, want single resync at seq 6", evs, closed)
	}
	wantTop := []query.Result{{ID: 4, Dist: 1}, {ID: 3, Dist: 2}}
	if len(evs[0].TopK) != 2 || evs[0].TopK[0] != wantTop[0] || evs[0].TopK[1] != wantTop[1] {
		t.Fatalf("resync TopK = %v, want %v", evs[0].TopK, wantTop)
	}
	if h.Stats().Resyncs == 0 {
		t.Fatal("resync not counted")
	}

	// Cursor inside the window: exact replay of events 5 and 6 (leave 2,
	// join 4), each snapshotting the final state.
	evs, _, _ = s.Next(4)
	if len(evs) != 2 || evs[0].Seq != 5 || evs[0].Kind != EventLeave || evs[0].ID != 2 ||
		evs[1].Seq != 6 || evs[1].Kind != EventJoin || evs[1].ID != 4 || evs[1].Dist != 1 {
		t.Fatalf("Next(4) = %v, want leave(2)@5 join(4)@6", evs)
	}

	// Caught-up cursor: no events, a wait channel. A future cursor clamps.
	for _, cursor := range []uint64{6, 99} {
		evs, wait, closed := s.Next(cursor)
		if evs != nil || wait == nil || closed {
			t.Fatalf("Next(%d) = (%v, %v, %v), want wait channel", cursor, evs, wait, closed)
		}
	}

	// The wait channel fires on the next event.
	_, wait, _ := s.Next(6)
	b.dist[5] = 0.5
	feed(h, 5)
	select {
	case <-wait:
	default:
		t.Fatal("wait channel did not fire after a new event")
	}
}

// TestPrefilterAndIdempotency covers the reject paths (activities, region,
// geometry bound) and duplicate/unknown-ID handling.
func TestPrefilterAndIdempotency(t *testing.T) {
	b := &fakeBackend{dist: map[trajectory.TrajID]float64{1: 0.1, 2: 0.2, 3: 3}}
	h := New(b, Options{})
	defer h.Close()
	region := geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	req := testReq()
	req.Region = &region
	req.InitialBound = 5
	s := mustSub(t, h, req)
	if tk := s.TopK(); len(tk) != 2 || tk[0].ID != 1 || tk[1].ID != 2 {
		t.Fatalf("seed = %v", tk)
	}

	// Wrong activities; outside region; lower bound beyond the k-th dist.
	h.FeedInsert(0, 10, []geo.Point{{X: 0, Y: 0}}, trajectory.NewActivitySet(2))
	h.FeedInsert(0, 11, []geo.Point{{X: 7, Y: 7}}, trajectory.NewActivitySet(1))
	h.FeedInsert(0, 12, []geo.Point{{X: 0, Y: 0.9}}, trajectory.NewActivitySet(1))
	h.Sync()
	st := h.Stats()
	if st.PrefilterRejected != 3 || st.Scored != 0 {
		t.Fatalf("prefilter stats: %+v", st)
	}

	// Duplicate insert of a current member is a no-op; deleting a
	// non-member is a no-op; neither emits events.
	before := s.LastSeq()
	feed(h, 1)
	h.FeedDelete(0, 99)
	h.Sync()
	if s.LastSeq() != before {
		t.Fatalf("idempotent mutations emitted events: %d -> %d", before, s.LastSeq())
	}

	// A member delete on a full top-k re-searches; id 3 backfills.
	delete(b.dist, 1)
	h.FeedDelete(0, 1)
	h.Sync()
	if tk := s.TopK(); len(tk) != 2 || tk[0].ID != 2 || tk[1].ID != 3 {
		t.Fatalf("after member delete: %v", tk)
	}
	if st := h.Stats(); st.Researches != 1 {
		t.Fatalf("expected one re-search: %+v", st)
	}
}

// TestLifecycle pins Subscribe/Unsubscribe/Close semantics.
func TestLifecycle(t *testing.T) {
	b := &fakeBackend{dist: map[trajectory.TrajID]float64{}}
	h := New(b, Options{})
	s := mustSub(t, h, testReq())
	if h.Stats().Active != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
	if got, ok := h.Get(s.ID()); !ok || got != s {
		t.Fatal("Get did not return the live subscription")
	}

	req := testReq()
	req.WithMatches = true
	if _, err := h.Subscribe(context.Background(), req); err == nil {
		t.Fatal("WithMatches subscription must be rejected")
	}

	if !h.Unsubscribe(s.ID()) || h.Unsubscribe(s.ID()) {
		t.Fatal("Unsubscribe must succeed once")
	}
	if _, _, closed := s.Next(0); !closed {
		t.Fatal("Next on an unsubscribed subscription must report closed")
	}
	if h.Stats().Active != 0 {
		t.Fatalf("stats after unsubscribe: %+v", h.Stats())
	}

	s2 := mustSub(t, h, testReq())
	h.Close()
	if _, _, closed := s2.Next(0); !closed {
		t.Fatal("Close must close live subscriptions")
	}
	if _, err := h.Subscribe(context.Background(), testReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	// Feeds after Close are dropped without blocking.
	h.FeedInsert(0, 1, []geo.Point{{X: 0, Y: 0}}, trajectory.NewActivitySet(1))
	h.FeedDelete(0, 1)
}

package enginetest

import (
	"math/rand"
	"sync"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

// requireByteIdentical asserts the two result lists agree exactly — same
// IDs, bit-identical distances. The sharded engine computes every distance
// with the same matcher over the same coordinates as the single index, so
// even float equality must hold; any divergence means the scatter-gather
// merge or the cross-shard bound sharing pruned inexactly.
func requireByteIdentical(t *testing.T, label string, want, got []query.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: sharded returned %d results, single index %d\nsingle : %v\nsharded: %v",
			label, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d differs\nsingle : %v\nsharded: %v", label, i, want, got)
		}
	}
}

// TestShardedDifferentialLA is the acceptance gate for the sharded serving
// layer: on the LA preset, a 4-shard scatter-gather engine (with planning
// and cross-shard bound sharing active) must return byte-identical top-k
// results to the unpartitioned dynamic engine — statically, with live
// inserts and deletes applied through both, and again after compaction.
func TestShardedDifferentialLA(t *testing.T) {
	ds, err := dataset.Generate(dataset.LA(0.03))
	if err != nil {
		t.Fatalf("LA preset: %v", err)
	}
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 12, Seed: 5})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}
	baseN := len(ds.Trajs) * 4 / 5
	base := ds.Sample(baseN)
	base.Name = ds.Name
	stream := ds.Trajs[baseN:]

	single, err := delta.NewDynamic(base, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	router, err := shard.NewRouter(base, shard.Config{
		Shards: 4,
		Delta:  delta.Config{CompactThreshold: -1},
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	oracle := single.NewEngine()
	sharded := router.NewEngine()

	compare := func(label string) {
		t.Helper()
		for qi, q := range qs {
			for _, ordered := range []bool{false, true} {
				var want, got []query.Result
				var err1, err2 error
				if ordered {
					want, err1 = oracle.SearchOATSQ(q, 9)
					got, err2 = sharded.SearchOATSQ(q, 9)
				} else {
					want, err1 = oracle.SearchATSQ(q, 9)
					got, err2 = sharded.SearchATSQ(q, 9)
				}
				if err1 != nil || err2 != nil {
					t.Fatalf("%s q%d ordered=%v: single err=%v sharded err=%v", label, qi, ordered, err1, err2)
				}
				requireByteIdentical(t, label, want, got)
			}
		}
	}

	compare("static")

	// Live phase: stream the held-out trajectories through both indexes,
	// interleaving deletes of existing IDs (the same sequence on both
	// sides) and differential searches while the deltas are hot.
	rng := rand.New(rand.NewSource(11))
	for i, tr := range stream {
		gid, err := router.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			t.Fatalf("router insert %d: %v", i, err)
		}
		oid, err := single.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			t.Fatalf("single insert %d: %v", i, err)
		}
		if gid != oid {
			t.Fatalf("insert %d: router ID %d != single ID %d", i, gid, oid)
		}
		if i%7 == 3 {
			victim := trajectory.TrajID(rng.Intn(int(gid)))
			if err := router.Delete(victim); err != nil {
				t.Fatalf("router delete %d: %v", victim, err)
			}
			if err := single.Delete(victim); err != nil {
				t.Fatalf("single delete %d: %v", victim, err)
			}
		}
		if i%25 == 10 {
			compare("live")
		}
	}
	compare("post-stream")

	if err := router.CompactAll(); err != nil {
		t.Fatalf("CompactAll: %v", err)
	}
	if err := single.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	compare("compacted")
}

// TestShardedParallelStress serves a sharded engine through ParallelEngine
// while inserts and deletes stream through the router — the concurrency
// gate for the scatter-gather path (run under -race in CI). Results are
// not compared here (mutations land mid-flight); the differential test
// above owns exactness.
func TestShardedParallelStress(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) * 3 / 4
	base := ds.Sample(baseN)
	base.Name = ds.Name
	router, err := shard.NewRouter(base, shard.Config{
		Shards: 4,
		Delta:  delta.Config{CompactThreshold: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	pe := query.NewParallelEngine(router.NewEngine(), 4)
	qs := workload(t, ds, 16)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, tr := range ds.Trajs[baseN:] {
			if _, err := router.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if i%5 == 2 {
				if err := router.Delete(trajectory.TrajID(i)); err != nil {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
		}
	}()
	for round := 0; round < 4; round++ {
		if _, err := pe.SearchBatch(qs, 9, round%2 == 1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	wg.Wait()
	st := router.Stats()
	if st.NextID != len(ds.Trajs) {
		t.Fatalf("NextID = %d, want %d", st.NextID, len(ds.Trajs))
	}
}

package enginetest

import (
	"testing"

	"activitytraj/internal/harness"
	"activitytraj/internal/query"
)

// TestParallelWorkloadMatchesSequential: running a workload across four
// goroutines with cloned engines must produce the same aggregate work
// statistics (candidates, scored) as the sequential run — clones share
// only immutable structures, so results cannot depend on scheduling.
func TestParallelWorkloadMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	st, err := harness.BuildSetup(ds, gatCfgDefault())
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 12)
	for _, e := range st.Engines {
		ce, ok := e.(harness.CloneableEngine)
		if !ok {
			t.Fatalf("%s does not support cloning", e.Name())
		}
		seq, err := harness.RunWorkload(st.TS, e, qs, 5, false)
		if err != nil {
			t.Fatalf("%s sequential: %v", e.Name(), err)
		}
		par, err := harness.RunWorkloadParallel(st.TS, ce, qs, 5, false, 4)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.Name(), err)
		}
		if par.Stats.Candidates != seq.Stats.Candidates || par.Stats.Scored != seq.Stats.Scored {
			t.Fatalf("%s: parallel stats %+v != sequential %+v", e.Name(), par.Stats, seq.Stats)
		}
	}
}

// TestParallelResultsIdentical: per-query results from a cloned engine
// running concurrently must equal the originals exactly.
func TestParallelResultsIdentical(t *testing.T) {
	ds := testDataset(t)
	st, err := harness.BuildSetup(ds, gatCfgDefault())
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 10)
	gat := st.Engine("GAT").(harness.CloneableEngine)

	want := make([][]query.Result, len(qs))
	for i, q := range qs {
		rs, err := gat.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rs
	}
	type res struct {
		i  int
		rs []query.Result
	}
	ch := make(chan res, len(qs))
	for w := 0; w < 4; w++ {
		go func(w int) {
			eng := gat.Clone()
			for i := w; i < len(qs); i += 4 {
				rs, err := eng.SearchATSQ(qs[i], 5)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					ch <- res{i, nil}
					continue
				}
				ch <- res{i, rs}
			}
		}(w)
	}
	for range qs {
		r := <-ch
		if r.rs == nil {
			continue
		}
		if len(r.rs) != len(want[r.i]) {
			t.Fatalf("query %d: %d results vs %d", r.i, len(r.rs), len(want[r.i]))
		}
		for j := range r.rs {
			if r.rs[j] != want[r.i][j] {
				t.Fatalf("query %d result %d: %+v vs %+v", r.i, j, r.rs[j], want[r.i][j])
			}
		}
	}
}

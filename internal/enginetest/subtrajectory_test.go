package enginetest

import (
	"context"
	"errors"
	"math"
	"reflect"
	"slices"
	"testing"

	"activitytraj/internal/core"
	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/matcher"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

// bruteSubDist is the O(n²) reference the subtrajectory mode is pinned
// against: enumerate EVERY legal window and score each with the
// whole-trajectory algorithms over rows restricted to it. It shares no code
// with the span DP's run enumeration or pruning (the whole-trajectory
// algorithms themselves are pinned against exponential brutes in the
// matcher's property tests).
func bruteSubDist(m *matcher.Matcher, n int, rows []matcher.QueryRow, ordered bool, minSpan, maxSpan int) float64 {
	best := matcher.Inf
	for s := 0; s < n; s++ {
		for e := s; e < n; e++ {
			length := e - s + 1
			if minSpan > 0 && length < minSpan {
				continue
			}
			if maxSpan > 0 && length > maxSpan {
				continue
			}
			sub := matcher.RestrictRows(rows, int32(s), int32(e))
			var d float64
			if ordered {
				d = m.MinOrderMatch(length, sub, matcher.Inf)
			} else {
				d = m.MinMatch(sub, matcher.Inf)
			}
			if d < best {
				best = d
			}
		}
	}
	return best
}

// bruteSubTopK scores every trajectory of ds against q with bruteSubDist
// and returns the ascending (Dist, ID) top-k — a full-scan oracle that
// touches no index, no sketch filter, and no shared bound.
func bruteSubTopK(ds *trajectory.Dataset, q query.Query, k int, ordered bool, minSpan, maxSpan int) []query.Result {
	var m matcher.Matcher
	var rs []query.Result
	for id := range ds.Trajs {
		tr := &ds.Trajs[id]
		rows := matcher.BuildRowsFromPoints(q.Pts, tr.Pts)
		d := bruteSubDist(&m, len(tr.Pts), rows, ordered, minSpan, maxSpan)
		if math.IsInf(d, 1) {
			continue
		}
		rs = append(rs, query.Result{ID: trajectory.TrajID(id), Dist: d})
	}
	slices.SortFunc(rs, func(a, b query.Result) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

// TestEnginesAgreeSubtrajectory pins all four engine families against the
// brute-force window oracle across span-limit shapes, ordered and
// unordered. With no limits the subtrajectory distance degenerates to the
// whole-trajectory one, so that case doubles as a regression gate for the
// classic mode running through the new code path.
func TestEnginesAgreeSubtrajectory(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gatCfgDefault())
	qs := workload(t, ds, 8)
	spans := []struct {
		name             string
		minSpan, maxSpan int
	}{
		{"unlimited", 0, 0},
		{"max5", 0, 5},
		{"max12", 0, 12},
		{"min3max8", 3, 8},
	}
	for _, sp := range spans {
		for _, ordered := range []bool{false, true} {
			for qi, q := range qs {
				want := bruteSubTopK(ds, q, 9, ordered, sp.minSpan, sp.maxSpan)
				for _, e := range engines {
					resp, err := e.Search(context.Background(), query.Request{
						Query: q, K: 9, Ordered: ordered,
						Subtrajectory: true,
						MinSpanPoints: sp.minSpan, MaxSpanPoints: sp.maxSpan,
					})
					if err != nil {
						t.Fatalf("%s q%d %s ordered=%v: %v", sp.name, qi, e.Name(), ordered, err)
					}
					if !sameDists(distVector(want), distVector(resp.Results)) {
						t.Fatalf("%s q%d %s ordered=%v disagrees with brute\nbrute: %v\n%s : %v",
							sp.name, qi, e.Name(), ordered, want, e.Name(), resp.Results)
					}
				}
			}
		}
	}
}

// TestSubtrajectoryTiersByteIdenticalLA is the cross-tier acceptance gate
// on the LA preset: static GAT, the dynamic (delta) engine, and the 4-shard
// scatter-gather engine must return byte-identical subtrajectory results —
// same IDs, bit-identical distances, identical per-query-point covers AND
// identical winning spans.
func TestSubtrajectoryTiersByteIdenticalLA(t *testing.T) {
	ds, err := dataset.Generate(dataset.LA(0.03))
	if err != nil {
		t.Fatalf("LA preset: %v", err)
	}
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 10, Seed: 42})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}

	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatalf("trajstore: %v", err)
	}
	idx, err := core.Build(ts, gatCfgDefault())
	if err != nil {
		t.Fatalf("gat build: %v", err)
	}
	static := core.NewEngine(idx)

	dyn, err := delta.NewDynamic(ds, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	router, err := shard.NewRouter(ds, shard.Config{Shards: 4})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	tiers := []query.Engine{static, dyn.NewEngine(), router.NewEngine()}
	names := []string{"gat", "delta", "shard"}

	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			req := query.Request{
				Query: q, K: 7, Ordered: ordered,
				Subtrajectory: true, MaxSpanPoints: 12,
				WithMatches: true,
			}
			var ref query.Response
			for ti, e := range tiers {
				resp, err := e.Search(context.Background(), req)
				if err != nil {
					t.Fatalf("q%d ordered=%v %s: %v", qi, ordered, names[ti], err)
				}
				if len(resp.Spans) != len(resp.Results) {
					t.Fatalf("q%d ordered=%v %s: %d spans for %d results",
						qi, ordered, names[ti], len(resp.Spans), len(resp.Results))
				}
				for i, span := range resp.Spans {
					if w := int(span[1] - span[0] + 1); span[1] >= span[0] && w > 12 {
						t.Fatalf("q%d ordered=%v %s: result %d span %v wider than 12 points",
							qi, ordered, names[ti], i, span)
					}
				}
				if ti == 0 {
					ref = resp
					continue
				}
				requireByteIdentical(t, names[ti], ref.Results, resp.Results)
				if !reflect.DeepEqual(ref.Matches, resp.Matches) {
					t.Fatalf("q%d ordered=%v: %s covers differ from gat\ngat : %v\n%s: %v",
						qi, ordered, names[ti], ref.Matches, names[ti], resp.Matches)
				}
				if !reflect.DeepEqual(ref.Spans, resp.Spans) {
					t.Fatalf("q%d ordered=%v: %s spans differ from gat\ngat : %v\n%s: %v",
						qi, ordered, names[ti], ref.Spans, names[ti], resp.Spans)
				}
			}
		}
	}
}

// TestSubtrajectoryRequestValidation: malformed span options must fail
// identically across tiers (never silently diverge into different result
// sets).
func TestSubtrajectoryRequestValidation(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gatCfgDefault())
	dyn, err := delta.NewDynamic(ds, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	router, err := shard.NewRouter(ds, shard.Config{Shards: 4})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	all := append([]query.Engine{}, engines...)
	all = append(all, dyn.NewEngine(), router.NewEngine())
	q := workload(t, ds, 1)[0]

	bad := []query.Request{
		{Query: q, K: 5, Subtrajectory: true, MinSpanPoints: -1},
		{Query: q, K: 5, Subtrajectory: true, MaxSpanPoints: -2},
		{Query: q, K: 5, Subtrajectory: true, MinSpanPoints: 9, MaxSpanPoints: 3},
		{Query: q, K: 5, MaxSpanPoints: 4}, // limits without the mode
	}
	for _, e := range all {
		for bi, req := range bad {
			if _, err := e.Search(context.Background(), req); err == nil {
				t.Fatalf("%s: bad request %d accepted", e.Name(), bi)
			}
		}
	}
}

// TestSubtrajectoryCancelledMidSearch mirrors TestGATCancelledMidSearch for
// the subtrajectory path: the countdown context must stop the span-scored
// search at a deterministic batch boundary with Truncated set.
func TestSubtrajectoryCancelledMidSearch(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4, Lambda: 1})
	e := engines[3] // GAT
	qs := workload(t, ds, 3)
	for qi, q := range qs {
		// Budget 3: the pre-loop check and two loop-top checks pass; the
		// third loop iteration is cancelled — after exactly two batches.
		ctx := newCountdownCtx(3)
		resp, err := e.Search(ctx, query.Request{
			Query: q, K: 9, Subtrajectory: true, MaxSpanPoints: 8,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("q%d: want context.Canceled, got %v", qi, err)
		}
		if !resp.Truncated {
			t.Fatalf("q%d: cancelled subtrajectory response not marked Truncated", qi)
		}
		if resp.Stats.Batches != 2 {
			t.Fatalf("q%d: want exactly 2 batches before the countdown tripped, got %d", qi, resp.Stats.Batches)
		}
	}
}

// FuzzSubtrajectoryVsBrute fuzzes random queries and span limits against
// the O(n²) window oracle on a small corpus — the differential CI lane for
// the subtrajectory mode (run for a bounded time in ci.yml's fuzz block).
func FuzzSubtrajectoryVsBrute(f *testing.F) {
	ds, err := dataset.Generate(dataset.Config{
		Name:            "fuzz",
		Seed:            11,
		NumTrajectories: 80,
		NumVenues:       300,
		VocabSize:       120,
		RegionW:         30,
		RegionH:         30,
		Clusters:        5,
		TrajLenMean:     12,
		TrajLenStd:      5,
	})
	if err != nil {
		f.Fatalf("generate: %v", err)
	}
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		f.Fatalf("trajstore: %v", err)
	}
	idx, err := core.Build(ts, gatCfgDefault())
	if err != nil {
		f.Fatalf("gat build: %v", err)
	}
	engine := core.NewEngine(idx)

	f.Add(int64(1), uint8(0), uint8(0), false)
	f.Add(int64(2), uint8(0), uint8(6), true)
	f.Add(int64(3), uint8(2), uint8(9), false)
	f.Add(int64(4), uint8(1), uint8(1), true)

	f.Fuzz(func(t *testing.T, seed int64, minS, maxS uint8, ordered bool) {
		qs, err := queries.Generate(ds, queries.Config{
			NumQueries:   1,
			NumPoints:    2,
			ActsPerPoint: 2,
			DiameterKm:   10,
			Seed:         seed,
		})
		if err != nil || len(qs) == 0 {
			t.Skip()
		}
		minSpan, maxSpan := int(minS%24), int(maxS%24)
		req := query.Request{
			Query: qs[0], K: 7, Ordered: ordered,
			Subtrajectory: true,
			MinSpanPoints: minSpan, MaxSpanPoints: maxSpan,
		}
		if req.ValidateSpan() != nil {
			t.Skip() // contradictory limits are rejected, nothing to compare
		}
		resp, err := engine.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		want := bruteSubTopK(ds, qs[0], 7, ordered, minSpan, maxSpan)
		if !sameDists(distVector(want), distVector(resp.Results)) {
			t.Fatalf("seed=%d min=%d max=%d ordered=%v\nbrute: %v\nGAT  : %v",
				seed, minSpan, maxSpan, ordered, want, resp.Results)
		}
	})
}

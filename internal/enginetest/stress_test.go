package enginetest

import (
	"sync"
	"testing"

	"activitytraj/internal/harness"
	"activitytraj/internal/query"
)

// TestParallelEngineStress hammers one ParallelEngine — and through it the
// sharded buffer pool, the shared HICL cache and the shared APL cache —
// from many client goroutines at once, mixing single searches and batches,
// ATSQ and OATSQ. Run with -race this is the concurrency-safety gate for
// the whole serving stack; the result checks catch cross-clone state leaks.
func TestParallelEngineStress(t *testing.T) {
	ds := testDataset(t)
	st, err := harness.BuildSetup(ds, gatCfgDefault())
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 16)
	gat := st.Engine("GAT").(harness.CloneableEngine)

	// Reference answers from a private sequential engine.
	ref := gat.Clone()
	want := make([][]query.Result, len(qs))
	for i, q := range qs {
		rs, err := ref.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rs
	}

	pe := query.NewParallelEngine(gat, 4)
	const clients = 6
	const rounds = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (c + r) % 3 {
				case 0: // whole batch
					got, err := pe.SearchBatch(qs, 5, false)
					if err != nil {
						t.Errorf("client %d round %d: %v", c, r, err)
						return
					}
					for i := range qs {
						if !sameResults(got[i], want[i]) {
							t.Errorf("client %d round %d query %d: %v != %v", c, r, i, got[i], want[i])
							return
						}
					}
				case 1: // single searches
					for i := c % len(qs); i < len(qs); i += clients {
						got, err := pe.SearchATSQ(qs[i], 5)
						if err != nil {
							t.Errorf("client %d round %d: %v", c, r, err)
							return
						}
						if !sameResults(got, want[i]) {
							t.Errorf("client %d round %d query %d: %v != %v", c, r, i, got, want[i])
							return
						}
					}
				case 2: // ordered variant, results just need to not error
					if _, err := pe.SearchOATSQ(qs[c%len(qs)], 5); err != nil {
						t.Errorf("client %d round %d OATSQ: %v", c, r, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	st2 := pe.LastStats()
	if st2.Candidates == 0 {
		t.Fatal("no work recorded")
	}
}

func sameResults(a, b []query.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package enginetest

import (
	"math"
	"sync"
	"testing"

	"activitytraj/internal/delta"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// TestDynamicMixedStress is the concurrency gate for the dynamic-index
// write path: concurrent Insert, Delete, Search (single and batched through
// ParallelEngine) and explicit CompactNow, racing against auto-compaction.
// Run with -race this exercises the generation swap (searches must finish
// on their acquired generation), the active layer's read/write locking and
// the frozen-layer handoff. Afterwards the merged view must be byte-exact
// against a static rebuild of the equivalent corpus.
func TestDynamicMixedStress(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) / 2
	base := ds.Sample(baseN)
	base.Name = ds.Name

	d, err := delta.NewDynamic(base, delta.Config{
		GAT:              gatCfgDefault(),
		CompactThreshold: 32, // force several auto-compactions during the run
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 12)
	pe := query.NewParallelEngine(d.NewEngine(), 3)

	// Deterministic delete set: every 7th base trajectory.
	var dead []trajectory.TrajID
	for id := 3; id < baseN; id += 7 {
		dead = append(dead, trajectory.TrajID(id))
	}

	var wg sync.WaitGroup

	// Inserter: streams the held-out half.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range ds.Trajs[baseN:] {
			if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	// Deleter: tombstones base trajectories while searches run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range dead {
			if err := d.Delete(id); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()

	// Compactor: explicit compactions racing the automatic ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := d.CompactNow(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	// Searchers: single searches and whole batches. Results changing between
	// rounds is expected (the corpus is mutating); errors and races are not.
	const searchers = 4
	for c := 0; c < searchers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if (c+r)%2 == 0 {
					if _, err := pe.SearchBatch(qs, 5, false); err != nil {
						t.Errorf("searcher %d round %d batch: %v", c, r, err)
						return
					}
				} else {
					for qi := c % len(qs); qi < len(qs); qi += searchers {
						if _, err := pe.SearchATSQ(qs[qi], 5); err != nil {
							t.Errorf("searcher %d round %d: %v", c, r, err)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := d.LastCompactErr(); err != nil {
		t.Fatalf("background compaction: %v", err)
	}

	// Quiesce: fold everything into the base and verify exactness against a
	// static rebuild of the equivalent corpus (deletes as empty husks).
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.DeltaTrajectories != 0 || st.Tombstones != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if st.BaseTrajectories != len(ds.Trajs) {
		t.Fatalf("base has %d trajectories, want %d", st.BaseTrajectories, len(ds.Trajs))
	}

	refDS := &trajectory.Dataset{Name: ds.Name, Vocab: ds.Vocab, Trajs: make([]trajectory.Trajectory, len(ds.Trajs))}
	copy(refDS.Trajs, ds.Trajs)
	for _, id := range dead {
		refDS.Trajs[id] = trajectory.Trajectory{ID: id}
	}
	ts, err := evaluate.BuildTrajStore(refDS, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := gat.Build(ts, gatCfgDefault())
	if err != nil {
		t.Fatal(err)
	}
	ref := gat.NewEngine(idx)
	dyn := d.NewEngine()
	for qi, q := range qs {
		want, err := ref.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dyn.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("q%d: %d results != %d", qi, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
				t.Fatalf("q%d result %d: got %v want %v", qi, i, got[i], want[i])
			}
		}
	}
}

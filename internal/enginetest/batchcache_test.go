package enginetest

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// skewedRequests builds a batch with heavy duplication — the skewed
// workload the cross-query planner targets: few distinct queries, many
// repetitions, shuffled so duplicates are NOT adjacent on input (the
// planner must bring them together itself).
func skewedRequests(t *testing.T, ds *trajectory.Dataset, distinct, total int) []query.Request {
	t.Helper()
	qs := workload(t, ds, distinct)
	reqs := make([]query.Request, total)
	for i := range reqs {
		q := qs[(i*7+i/distinct)%distinct] // deterministic non-adjacent shuffle
		reqs[i] = query.Request{Query: q, K: 5, WithMatches: i%3 == 0}
	}
	return reqs
}

// TestSuperbatchByteIdentical pins the planner's exactness invariant:
// SearchAll with cross-query grouping and superbatch warming must answer
// every request — results, match covers, truncation marker — byte-identical
// to serial single-query execution on a fresh engine. Grouping reorders
// which worker runs which request and pre-warms shared pages; it must never
// change an answer.
func TestSuperbatchByteIdentical(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gatCfgDefault())
	gatEng := engines[3].(query.CloneableEngine)
	reqs := skewedRequests(t, ds, 6, 48)

	// Serial reference: every request through Search on one engine.
	serial := gatEng.Clone()
	want := make([]query.Response, len(reqs))
	for i, req := range reqs {
		resp, err := serial.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("serial request %d: %v", i, err)
		}
		want[i] = resp
	}

	check := func(t *testing.T, got []query.Response) {
		t.Helper()
		for i := range got {
			if !reflect.DeepEqual(got[i].Results, want[i].Results) {
				t.Fatalf("request %d results differ:\n got %+v\nwant %+v", i, got[i].Results, want[i].Results)
			}
			if !reflect.DeepEqual(got[i].Matches, want[i].Matches) {
				t.Fatalf("request %d matches differ", i)
			}
			if got[i].Truncated != want[i].Truncated {
				t.Fatalf("request %d truncation differs", i)
			}
		}
	}

	t.Run("planned", func(t *testing.T) {
		pe := query.NewParallelEngine(gatEng.Clone().(query.CloneableEngine), 4)
		got, err := pe.SearchAll(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		check(t, got)
	})

	t.Run("planned with result cache", func(t *testing.T) {
		pe := query.NewParallelEngine(gatEng.Clone().(query.CloneableEngine), 4)
		pe.SetResultCache(query.NewResultCache(64, query.StaticEpoch{}))
		got, err := pe.SearchAll(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		check(t, got)
		var hits, misses int
		for _, r := range got {
			hits += r.Stats.ResultCacheHits
			misses += r.Stats.ResultCacheMisses
		}
		if hits == 0 {
			t.Fatal("no result-cache hits on a workload of 48 requests over 6 distinct queries")
		}
		if hits+misses != len(reqs) {
			t.Fatalf("hits %d + misses %d != %d requests", hits, misses, len(reqs))
		}
	})

	t.Run("planning disabled", func(t *testing.T) {
		pe := query.NewParallelEngine(gatEng.Clone().(query.CloneableEngine), 4)
		pe.SetBatchPlanning(false)
		got, err := pe.SearchAll(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		check(t, got)
	})
}

// TestSuperbatchCancellation: cancelling mid-batch must abandon the
// remaining requests promptly (including within a planned group), return
// the context error, and leave the pool fully serviceable for the next
// batch.
func TestSuperbatchCancellation(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gatCfgDefault())
	gatEng := engines[3].(query.CloneableEngine)
	reqs := skewedRequests(t, ds, 6, 64)
	pe := query.NewParallelEngine(gatEng, 2)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := pe.SearchAll(ctx, reqs); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Microsecond)
			cancel()
		}()
		resps, err := pe.SearchAll(ctx, reqs)
		// The race may legally finish the whole batch first; what is pinned
		// is that a cancelled run reports it and a finished run is complete.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
		if err == nil {
			for i, r := range resps {
				if len(r.Results) == 0 {
					t.Fatalf("request %d empty on a nil-error batch", i)
				}
			}
		}
	})

	// The pool must be intact afterwards: a fresh batch succeeds.
	if _, err := pe.SearchAll(context.Background(), reqs[:8]); err != nil {
		t.Fatalf("batch after cancellation: %v", err)
	}
}

// TestResultCacheMutationInvalidation is the cache's correctness gate under
// mutation: searches served through an epoch-invalidated cache must equal a
// cache-free engine over the same dynamic index at every quiesced point,
// across inserts, deletes and explicit compactions. A stale entry surviving
// an epoch flip would surface as a divergence after the mutation that
// obsoleted it.
func TestResultCacheMutationInvalidation(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) * 2 / 3
	base := ds.Sample(baseN)
	base.Name = ds.Name
	d, err := delta.NewDynamic(base, delta.Config{
		GAT:              gatCfgDefault(),
		CompactThreshold: -1, // explicit compactions only: keep rounds deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 8)
	reqs := make([]query.Request, len(qs))
	for i, q := range qs {
		reqs[i] = query.Request{Query: q, K: 5}
	}

	cached := query.NewParallelEngine(d.NewEngine(), 2)
	cached.SetResultCache(query.NewResultCache(128, d))
	plain := d.NewEngine()

	compare := func(round string) {
		t.Helper()
		for pass := 0; pass < 2; pass++ { // second pass serves from the cache
			for i, req := range reqs {
				got, err := cached.Search(context.Background(), req)
				if err != nil {
					t.Fatalf("%s pass %d request %d (cached): %v", round, pass, i, err)
				}
				want, err := plain.Search(context.Background(), req)
				if err != nil {
					t.Fatalf("%s pass %d request %d (plain): %v", round, pass, i, err)
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Fatalf("%s pass %d request %d: cached results %+v != plain %+v",
						round, pass, i, got.Results, want.Results)
				}
			}
		}
	}

	compare("initial")
	next := baseN
	insertOne := func() {
		t.Helper()
		if next >= len(ds.Trajs) {
			return
		}
		if _, err := d.Insert(trajectory.Trajectory{Pts: ds.Trajs[next].Pts}); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 6; i++ {
			insertOne()
		}
		compare("insert")
		if err := d.Delete(trajectory.TrajID(round*11 + 2)); err != nil {
			t.Fatal(err)
		}
		compare("delete")
		if round%2 == 1 {
			if err := d.CompactNow(); err != nil {
				t.Fatal(err)
			}
			compare("compact")
		}
	}
	if rc := cached.ResultCache(); rc.Stats().Hits == 0 {
		t.Fatal("differential run never hit the cache — the test is not exercising it")
	}
}

// TestResultCacheConcurrentMutation races cached searches against writers
// (run under -race): no torn responses, no errors, and after the writers
// quiesce the cache must agree with a cache-free engine — any entry pinned
// to a pre-mutation epoch would diverge here.
func TestResultCacheConcurrentMutation(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) / 2
	base := ds.Sample(baseN)
	base.Name = ds.Name
	d, err := delta.NewDynamic(base, delta.Config{
		GAT:              gatCfgDefault(),
		CompactThreshold: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload(t, ds, 6)
	reqs := make([]query.Request, len(qs))
	for i, q := range qs {
		reqs[i] = query.Request{Query: q, K: 5}
	}
	cached := query.NewParallelEngine(d.NewEngine(), 3)
	cached.SetResultCache(query.NewResultCache(64, d))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, tr := range ds.Trajs[baseN:] {
			if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		for id := 1; id < baseN; id += 9 {
			if err := d.Delete(trajectory.TrajID(id)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	for r := 0; ; r++ {
		select {
		case <-done:
		default:
			if _, err := cached.SearchAll(context.Background(), reqs); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			continue
		}
		break
	}
	if t.Failed() {
		return
	}
	// Quiesced: the cache and a plain engine must now agree exactly.
	plain := d.NewEngine()
	for pass := 0; pass < 2; pass++ {
		for i, req := range reqs {
			got, err := cached.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("pass %d request %d: cached %+v != plain %+v", pass, i, got.Results, want.Results)
			}
		}
	}
}

// Differential coverage for the per-request options of the redesigned
// Search(ctx, Request) surface: Region, InitialBound and WithMatches must
// behave identically across every engine family (IL is again the oracle),
// and the match covers must reconstruct the reported distances exactly.
package enginetest

import (
	"context"
	"math"
	"testing"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

// allEngineFamilies builds the four classic engines plus the dynamic and
// 4-shard engines over the same dataset, so option tests sweep every
// Search implementation in the repository.
func allEngineFamilies(t testing.TB, ds *trajectory.Dataset) []query.Engine {
	t.Helper()
	_, engines := buildEngines(t, ds, gatCfgDefault())
	d, err := delta.NewDynamic(ds, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	r, err := shard.NewRouter(ds, shard.Config{Shards: 4})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return append(engines, d.NewEngine(), r.NewEngine())
}

// TestRegionAgreesAcrossEngines: a spatial match filter must produce
// identical result vectors from the cell-pruning GAT engines, the shard
// planner, and the post-filtering baselines; and a region covering the
// whole space must change nothing.
func TestRegionAgreesAcrossEngines(t *testing.T) {
	ds := testDataset(t)
	engines := allEngineFamilies(t, ds)
	qs := workload(t, ds, 12)
	ctx := context.Background()
	everywhere := geo.NewRect(-1e6, -1e6, 1e6, 1e6)

	for qi, q := range qs {
		// A region clipped around the query's envelope: large enough to
		// keep matches, small enough to actually filter.
		env := geo.BoundingRect(locsOf(q))
		region := geo.NewRect(env.MinX-3, env.MinY-3, env.MaxX+3, env.MaxY+1)

		for _, ordered := range []bool{false, true} {
			var ref, refAll []float64
			for _, e := range engines {
				resp, err := e.Search(ctx, query.Request{Query: q, K: 9, Ordered: ordered, Region: &region})
				if err != nil {
					t.Fatalf("q%d %s: %v", qi, e.Name(), err)
				}
				dv := distVector(resp.Results)
				if ref == nil {
					ref = dv
				} else if !sameDists(ref, dv) {
					t.Fatalf("q%d ordered=%v: %s region results disagree\nIL : %v\n%s: %v",
						qi, ordered, e.Name(), ref, e.Name(), dv)
				}

				all, err := e.Search(ctx, query.Request{Query: q, K: 9, Ordered: ordered, Region: &everywhere})
				if err != nil {
					t.Fatalf("q%d %s: %v", qi, e.Name(), err)
				}
				noRegion, err := e.Search(ctx, query.Request{Query: q, K: 9, Ordered: ordered})
				if err != nil {
					t.Fatalf("q%d %s: %v", qi, e.Name(), err)
				}
				if !sameDists(distVector(all.Results), distVector(noRegion.Results)) {
					t.Fatalf("q%d ordered=%v: %s all-covering region changed results", qi, ordered, e.Name())
				}
				if refAll == nil {
					refAll = distVector(noRegion.Results)
				}
			}
			// The filtered k-th distance can never beat the unrestricted
			// one (removing candidate points only raises match distances).
			if len(ref) > 0 && len(refAll) > 0 && ref[0] < refAll[0]-1e-9 {
				t.Fatalf("q%d ordered=%v: region top-1 %v beats unrestricted %v", qi, ordered, ref[0], refAll[0])
			}
		}
	}
}

func locsOf(q query.Query) []geo.Point {
	out := make([]geo.Point, len(q.Pts))
	for i, p := range q.Pts {
		out[i] = p.Loc
	}
	return out
}

// TestInitialBoundExactPrefix: seeding the threshold with B must return
// exactly the unbounded results at distance <= B — the bound prunes beyond
// it, never inside it — for every engine family.
func TestInitialBoundExactPrefix(t *testing.T) {
	ds := testDataset(t)
	engines := allEngineFamilies(t, ds)
	qs := workload(t, ds, 10)
	ctx := context.Background()
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			for _, e := range engines {
				full, err := e.Search(ctx, query.Request{Query: q, K: 9, Ordered: ordered})
				if err != nil {
					t.Fatalf("q%d %s: %v", qi, e.Name(), err)
				}
				if len(full.Results) < 2 {
					continue
				}
				b := full.Results[len(full.Results)/2].Dist
				if b == 0 {
					continue
				}
				bounded, err := e.Search(ctx, query.Request{Query: q, K: 9, Ordered: ordered, InitialBound: b})
				if err != nil {
					t.Fatalf("q%d %s bounded: %v", qi, e.Name(), err)
				}
				var want []query.Result
				for _, r := range full.Results {
					if r.Dist <= b {
						want = append(want, r)
					}
				}
				if len(bounded.Results) != len(want) {
					t.Fatalf("q%d ordered=%v %s: bound %v kept %d results, want %d\nfull   : %v\nbounded: %v",
						qi, ordered, e.Name(), b, len(bounded.Results), len(want), full.Results, bounded.Results)
				}
				for i := range want {
					if bounded.Results[i] != want[i] {
						t.Fatalf("q%d ordered=%v %s: bounded result %d = %v, want %v",
							qi, ordered, e.Name(), i, bounded.Results[i], want[i])
					}
				}
			}
		}
	}
}

// TestWithMatchesReconstructsDistance: the returned covers must (a) be one
// per query point per result, (b) cover each query point's activity set
// with that trajectory's points, (c) sum their point distances to exactly
// the reported match distance, and (d) comply with the query order for
// Ordered requests. Every engine family must satisfy all four.
func TestWithMatchesReconstructsDistance(t *testing.T) {
	ds := testDataset(t)
	engines := allEngineFamilies(t, ds)
	qs := workload(t, ds, 8)
	ctx := context.Background()
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			for _, e := range engines {
				resp, err := e.Search(ctx, query.Request{Query: q, K: 5, Ordered: ordered, WithMatches: true})
				if err != nil {
					t.Fatalf("q%d %s: %v", qi, e.Name(), err)
				}
				if len(resp.Matches) != len(resp.Results) {
					t.Fatalf("q%d %s: %d match sets for %d results", qi, e.Name(), len(resp.Matches), len(resp.Results))
				}
				for ri, r := range resp.Results {
					covers := resp.Matches[ri]
					if len(covers) != len(q.Pts) {
						t.Fatalf("q%d %s result %d: %d covers for %d query points", qi, e.Name(), ri, len(covers), len(q.Pts))
					}
					tr := &ds.Trajs[r.ID]
					var sum float64
					prevMax := int32(0)
					for pi, qp := range q.Pts {
						var acc trajectory.ActivitySet
						for _, idx := range covers[pi] {
							if int(idx) >= len(tr.Pts) {
								t.Fatalf("q%d %s result %d: match index %d out of range", qi, e.Name(), ri, idx)
							}
							p := tr.Pts[idx]
							sum += geo.Dist(qp.Loc, p.Loc)
							acc = acc.Union(p.Acts.Intersect(qp.Acts))
						}
						if len(acc) != len(qp.Acts) {
							t.Fatalf("q%d %s result %d point %d: cover %v covers %v, want %v",
								qi, e.Name(), ri, pi, covers[pi], acc, qp.Acts)
						}
						if ordered && len(covers[pi]) > 0 {
							if covers[pi][0] < prevMax {
								t.Fatalf("q%d %s result %d: cover %d starts at %d before previous end %d",
									qi, e.Name(), ri, pi, covers[pi][0], prevMax)
							}
							prevMax = covers[pi][len(covers[pi])-1]
						}
					}
					if math.Abs(sum-r.Dist) > 1e-9*(1+r.Dist) {
						t.Fatalf("q%d %s result %d: cover distance %v != reported %v", qi, e.Name(), ri, sum, r.Dist)
					}
				}
			}
		}
	}
}

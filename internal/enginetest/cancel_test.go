package enginetest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/gat"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
)

// countdownCtx is a deterministic mid-search cancellation driver: Err()
// returns nil for the first budget calls and context.Canceled afterwards.
// Engines poll Err() at every batch boundary, so a budget larger than the
// number of pre-loop checks but smaller than the total cancels the search
// provably mid-flight — no sleeps, no races. Done() flips with the budget
// for any selector watching it.
type countdownCtx struct {
	context.Context
	budget    atomic.Int64
	done      chan struct{}
	closeOnce sync.Once
}

func newCountdownCtx(budget int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), done: make(chan struct{})}
	c.budget.Store(budget)
	return c
}

func (c *countdownCtx) Err() error {
	if c.budget.Add(-1) < 0 {
		c.closeOnce.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// expiredCtx returns a context whose deadline passed long ago.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	t.Cleanup(cancel)
	return ctx
}

// TestGATCancelledMidSearch drives the GAT engine with a countdown context:
// the search must return context.Canceled at a batch boundary, flag the
// response Truncated, and keep the partial work it had done (at least one
// batch ran before the cancellation tripped).
func TestGATCancelledMidSearch(t *testing.T) {
	ds := testDataset(t)
	// Lambda 1 maximizes batch boundaries, so the countdown trips well
	// before the search would naturally finish.
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4, Lambda: 1})
	e := engines[3] // GAT
	qs := workload(t, ds, 3)
	for qi, q := range qs {
		// Budget 3: the pre-loop check and two loop-top checks pass; the
		// third loop iteration is cancelled — after two batches of work.
		ctx := newCountdownCtx(3)
		resp, err := e.Search(ctx, query.Request{Query: q, K: 9})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("q%d: want context.Canceled, got %v", qi, err)
		}
		if !resp.Truncated {
			t.Fatalf("q%d: cancelled response not marked Truncated", qi)
		}
		if resp.Stats.Batches != 2 {
			t.Fatalf("q%d: want exactly 2 batches before the countdown tripped, got %d", qi, resp.Stats.Batches)
		}
	}
}

// TestExpiredDeadlineTouchesNoPage: a context that is already past its
// deadline must fail fast from every engine family WITHOUT touching a
// single disk page (or retrieving any candidate) — the pre-work check the
// latency-bounded serving path depends on.
func TestExpiredDeadlineTouchesNoPage(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gatCfgDefault())
	qs := workload(t, ds, 1)

	d, err := delta.NewDynamic(ds, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	r, err := shard.NewRouter(ds, shard.Config{Shards: 4})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	all := append([]query.Engine{}, engines...)
	all = append(all, d.NewEngine(), r.NewEngine())
	pe := query.NewParallelEngine(r.NewEngine(), 2)
	all = append(all, pe)

	for _, e := range all {
		resp, err := e.Search(expiredCtx(t), query.Request{Query: qs[0], K: 9})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: want DeadlineExceeded, got %v", e.Name(), err)
		}
		if !resp.Truncated {
			t.Fatalf("%s: expired-deadline response not marked Truncated", e.Name())
		}
		if resp.Stats.PageReads != 0 || resp.Stats.Candidates != 0 || resp.Stats.CacheMisses != 0 {
			t.Fatalf("%s: expired deadline touched storage: %+v", e.Name(), resp.Stats)
		}
		if len(resp.Results) != 0 {
			t.Fatalf("%s: expired deadline returned results: %v", e.Name(), resp.Results)
		}
	}
}

// TestShardedCancelledMidSearch: the scatter-gather search shares one
// countdown context across its concurrent shard searches; once it trips,
// in-flight sibling searches are cancelled and the call reports
// context.Canceled with Truncated set.
func TestShardedCancelledMidSearch(t *testing.T) {
	ds := testDataset(t)
	r, err := shard.NewRouter(ds, shard.Config{
		Shards: 4,
		Delta:  delta.Config{GAT: gat.Config{Depth: 6, MemLevels: 4, Lambda: 1}},
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	eng := r.NewEngine()
	qs := workload(t, ds, 3)
	for qi, q := range qs {
		// The fan-out polls the context at the planner plus at every batch
		// boundary of every shard search (Lambda 1 again); a 4-shard
		// search makes far more than 6 checks, so the countdown reliably
		// trips while shards are in flight.
		ctx := newCountdownCtx(6)
		resp, err := eng.Search(ctx, query.Request{Query: q, K: 9})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("q%d: want context.Canceled, got %v", qi, err)
		}
		if !resp.Truncated {
			t.Fatalf("q%d: cancelled response not marked Truncated", qi)
		}
	}
}

// TestParallelEngineAbortsBatchOnCancellation: SearchAll must stop handing
// out new requests once the shared context cancels mid-batch — workers
// abandon the remaining queue instead of draining it.
func TestParallelEngineAbortsBatchOnCancellation(t *testing.T) {
	ds := testDataset(t)
	r, err := shard.NewRouter(ds, shard.Config{Shards: 2})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	pe := query.NewParallelEngine(r.NewEngine(), 2)
	qs := workload(t, ds, 6)
	reqs := make([]query.Request, 0, len(qs)*8)
	for i := 0; i < 8; i++ {
		for _, q := range qs {
			reqs = append(reqs, query.Request{Query: q, K: 9})
		}
	}
	ctx := newCountdownCtx(10)
	resps, err := pe.SearchAll(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d response slots, want %d", len(resps), len(reqs))
	}
	abandoned := 0
	for _, resp := range resps {
		if resp.Results == nil && !resp.Truncated {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Fatal("cancellation mid-batch abandoned no request — the batch ran to completion")
	}

	// A pre-cancelled context never borrows an engine at all.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, err := pe.Search(cctx, query.Request{Query: qs[0], K: 9})
	if !errors.Is(err, context.Canceled) || !resp.Truncated {
		t.Fatalf("pre-cancelled single search: %+v %v", resp, err)
	}
}

// TestDynamicEngineCancelled pins the delta engine path: cancellation flows
// through to the inner GAT search across the generation indirection.
func TestDynamicEngineCancelled(t *testing.T) {
	ds := testDataset(t)
	d, err := delta.NewDynamic(ds, delta.Config{
		GAT:              gat.Config{Depth: 6, MemLevels: 4, Lambda: 1},
		CompactThreshold: -1,
	})
	if err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	eng := d.NewEngine()
	q := workload(t, ds, 1)[0]
	ctx := newCountdownCtx(3)
	resp, err := eng.Search(ctx, query.Request{Query: q, K: 9})
	if !errors.Is(err, context.Canceled) || !resp.Truncated {
		t.Fatalf("delta engine: err=%v truncated=%v", err, resp.Truncated)
	}
	if resp.Stats.Batches != 2 {
		t.Fatalf("delta engine: want 2 batches before cancellation, got %d", resp.Stats.Batches)
	}
}

package enginetest

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/subscribe"
	"activitytraj/internal/trajectory"
)

// subSearcher is the fresh-search oracle a subscription must stay
// byte-identical to.
type subSearcher interface {
	Search(ctx context.Context, req query.Request) (query.Response, error)
}

// innerRegion returns a rectangle covering the middle of the dataset's
// spatial extent, so region-filtered subscriptions see a non-trivial subset.
func innerRegion(ds *trajectory.Dataset) geo.Rect {
	var b geo.Rect
	first := true
	for _, tr := range ds.Trajs {
		for _, p := range tr.Pts {
			if first {
				b = geo.RectFromPoint(p.Loc)
				first = false
				continue
			}
			b = b.ExtendPoint(p.Loc)
		}
	}
	w, h := b.Width(), b.Height()
	return geo.Rect{
		MinX: b.MinX + 0.2*w, MinY: b.MinY + 0.2*h,
		MaxX: b.MaxX - 0.2*w, MaxY: b.MaxY - 0.2*h,
	}
}

// verifySubs pins the exactness invariant: every subscription's live top-k
// must be byte-identical (IDs and distance bits) to a from-scratch Search
// of the same request.
func verifySubs(t *testing.T, step int, eng subSearcher, subs []*subscribe.Subscription) {
	t.Helper()
	for i, s := range subs {
		want, err := eng.Search(context.Background(), s.Request())
		if err != nil {
			t.Fatalf("step %d sub %d: fresh search: %v", step, i, err)
		}
		got := s.TopK()
		if len(got) != len(want.Results) {
			t.Fatalf("step %d sub %d: live top-k has %d results, fresh search %d\nlive: %v\nfresh: %v",
				step, i, len(got), len(want.Results), got, want.Results)
		}
		for j := range got {
			if got[j].ID != want.Results[j].ID ||
				math.Float64bits(got[j].Dist) != math.Float64bits(want.Results[j].Dist) {
				t.Fatalf("step %d sub %d result %d: live %v != fresh %v", step, i, j, got[j], want.Results[j])
			}
		}
	}
}

// drainEvents advances each subscription's cursor, checking sequence
// monotonicity and that replaying join/leave events reproduces exactly the
// membership of the final event's TopK snapshot.
type eventTracker struct {
	cursor  uint64
	members map[trajectory.TrajID]bool
}

func (et *eventTracker) drain(t *testing.T, step int, s *subscribe.Subscription) {
	t.Helper()
	evs, _, _ := s.Next(et.cursor)
	if len(evs) == 0 {
		return
	}
	for _, ev := range evs {
		if ev.Seq != et.cursor+1 {
			t.Fatalf("step %d: event seq %d after cursor %d (gap without resync)", step, ev.Seq, et.cursor)
		}
		et.cursor = ev.Seq
		switch ev.Kind {
		case subscribe.EventJoin:
			if et.members[ev.ID] {
				t.Fatalf("step %d: join of already-member %d", step, ev.ID)
			}
			et.members[ev.ID] = true
		case subscribe.EventLeave:
			if !et.members[ev.ID] {
				t.Fatalf("step %d: leave of non-member %d", step, ev.ID)
			}
			delete(et.members, ev.ID)
		default:
			t.Fatalf("step %d: unexpected event kind %v with buffer never exceeded", step, ev.Kind)
		}
	}
	last := evs[len(evs)-1]
	if len(et.members) != len(last.TopK) {
		t.Fatalf("step %d: event replay has %d members, snapshot %d", step, len(et.members), len(last.TopK))
	}
	for _, r := range last.TopK {
		if !et.members[r.ID] {
			t.Fatalf("step %d: snapshot member %d missing from event replay", step, r.ID)
		}
	}
}

// standingRequests builds a diverse subscription workload over qs: plain
// ATSQ, ordered, subtrajectory-mode, region-filtered and bound-seeded.
func standingRequests(t *testing.T, eng subSearcher, ds *trajectory.Dataset, qs []query.Query) []query.Request {
	t.Helper()
	region := innerRegion(ds)
	reqs := []query.Request{
		{Query: qs[0], K: 5},
		{Query: qs[1], K: 3, Ordered: true},
		{Query: qs[2], K: 4, Subtrajectory: true, MaxSpanPoints: 10},
		{Query: qs[3], K: 6, Region: &region},
	}
	// A bound-seeded subscription: cap at the current 4th distance so the
	// top-k is genuinely truncated by the bound.
	resp, err := eng.Search(context.Background(), query.Request{Query: qs[4], K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) > 3 {
		reqs = append(reqs, query.Request{Query: qs[4], K: 8, InitialBound: resp.Results[3].Dist})
	}
	return reqs
}

// matchInsert builds a trajectory matching q at distance zero: one point
// per query location carrying exactly its activities. It MUST enter every
// non-full or nonzero-k-th top-k over q.
func matchInsert(q query.Query) trajectory.Trajectory {
	pts := make([]trajectory.Point, len(q.Pts))
	for i, qp := range q.Pts {
		pts[i] = trajectory.Point{Loc: qp.Loc, Acts: qp.Acts}
	}
	return trajectory.Trajectory{Pts: pts}
}

// TestSubscriptionDifferential is the exactness gate for the subscription
// engine on a single dynamic index: a randomized insert/delete stream —
// including targeted distance-zero inserts, member deletes that force
// bounded re-searches, and a compaction mid-stream — with every
// subscription's top-k verified byte-identical to a from-scratch search
// after every mutation.
func TestSubscriptionDifferential(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) * 2 / 3
	base := ds.Sample(baseN)
	base.Name = ds.Name

	d, err := delta.NewDynamic(base, delta.Config{GAT: gatCfgDefault(), CompactThreshold: 48})
	if err != nil {
		t.Fatal(err)
	}
	hub := subscribe.NewDynamicHub(d, subscribe.Options{EventBuffer: 128})
	defer hub.Close()
	verify := d.NewEngine()

	qs := workload(t, ds, 6)
	reqs := standingRequests(t, verify, ds, qs)
	subs := make([]*subscribe.Subscription, len(reqs))
	trackers := make([]*eventTracker, len(reqs))
	for i, req := range reqs {
		if subs[i], err = hub.Subscribe(context.Background(), req); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		trackers[i] = &eventTracker{members: map[trajectory.TrajID]bool{}}
		for _, r := range subs[i].TopK() {
			trackers[i].members[r.ID] = true
		}
	}
	verifySubs(t, -1, verify, subs)

	rng := rand.New(rand.NewSource(123))
	pool := ds.Trajs[baseN:]
	pi := 0
	var live []trajectory.TrajID
	for id := 0; id < baseN; id++ {
		live = append(live, trajectory.TrajID(id))
	}

	const steps = 90
	for step := 0; step < steps; step++ {
		switch {
		case step == steps/2:
			// Compaction mid-stream: no events, but the generation swap must
			// leave every live top-k still exact.
			if err := d.CompactNow(); err != nil {
				t.Fatalf("step %d: compact: %v", step, err)
			}
		case step%17 == 5:
			// Targeted insert: a distance-zero match for one standing query.
			// The prefilter must NOT reject it (missing it would break the
			// differential below).
			id, err := d.Insert(matchInsert(reqs[step%len(reqs)].Query))
			if err != nil {
				t.Fatalf("step %d: targeted insert: %v", step, err)
			}
			live = append(live, id)
		case step%11 == 7:
			// Member delete: forces the bounded re-search path.
			if tk := subs[step%len(subs)].TopK(); len(tk) > 0 {
				if err := d.Delete(tk[rng.Intn(len(tk))].ID); err != nil {
					t.Fatalf("step %d: member delete: %v", step, err)
				}
			}
		case rng.Intn(10) < 3 && len(live) > 0:
			if err := d.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
		default:
			tr := pool[pi%len(pool)]
			pi++
			id, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts})
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			live = append(live, id)
		}
		hub.Sync()
		verifySubs(t, step, verify, subs)
		for i, s := range subs {
			trackers[i].drain(t, step, s)
		}
	}

	st := hub.Stats()
	if st.PrefilterRejected == 0 {
		t.Fatalf("prefilter never rejected an insert: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatalf("no insert was ever admitted to a top-k: %+v", st)
	}
	if st.Researches == 0 {
		t.Fatalf("no member delete triggered a re-search: %+v", st)
	}
	if st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("dropped/errored events on a single index: %+v", st)
	}
}

// TestShardedSubscriptionDifferential runs the same exactness gate on the
// sharded tier: per-shard mutation observers feed one hub whose dispatcher
// resolves shard-local IDs to global ones, and every subscription must stay
// byte-identical to a from-scratch scatter-gather search.
func TestShardedSubscriptionDifferential(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) * 2 / 3
	base := ds.Sample(baseN)
	base.Name = ds.Name

	r, err := shard.NewRouter(base, shard.Config{
		Shards: 3,
		Delta:  delta.Config{GAT: gatCfgDefault(), CompactThreshold: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := r.NewHub(subscribe.Options{EventBuffer: 128})
	defer hub.Close()
	verify := r.NewEngine()

	qs := workload(t, ds, 6)
	reqs := standingRequests(t, verify, ds, qs)
	subs := make([]*subscribe.Subscription, len(reqs))
	for i, req := range reqs {
		if subs[i], err = hub.Subscribe(context.Background(), req); err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
	}
	verifySubs(t, -1, verify, subs)

	rng := rand.New(rand.NewSource(321))
	pool := ds.Trajs[baseN:]
	pi := 0
	var live []trajectory.TrajID
	for id := 0; id < baseN; id++ {
		live = append(live, trajectory.TrajID(id))
	}

	const steps = 50
	for step := 0; step < steps; step++ {
		switch {
		case step == steps/2:
			if err := r.CompactAll(); err != nil {
				t.Fatalf("step %d: compact: %v", step, err)
			}
		case step%13 == 4:
			id, err := r.Insert(matchInsert(reqs[step%len(reqs)].Query))
			if err != nil {
				t.Fatalf("step %d: targeted insert: %v", step, err)
			}
			live = append(live, id)
		case step%9 == 6:
			if tk := subs[step%len(subs)].TopK(); len(tk) > 0 {
				if err := r.Delete(tk[rng.Intn(len(tk))].ID); err != nil {
					t.Fatalf("step %d: member delete: %v", step, err)
				}
			}
		case rng.Intn(10) < 3 && len(live) > 0:
			if err := r.Delete(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
		default:
			tr := pool[pi%len(pool)]
			pi++
			id, err := r.Insert(trajectory.Trajectory{Pts: tr.Pts})
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			live = append(live, id)
		}
		hub.Sync()
		verifySubs(t, step, verify, subs)
	}

	st := hub.Stats()
	if st.PrefilterRejected == 0 || st.Admitted == 0 {
		t.Fatalf("sharded hub never exercised prefilter/admission: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("sharded hub dropped events (ID resolution failed): %+v", st)
	}
}

// TestSubscribedMutationStress is the -race gate: concurrent inserters,
// deleters, a compactor, churning subscribers and event readers all run
// against one hub; afterwards the surviving subscriptions must still be
// byte-identical to fresh searches.
func TestSubscribedMutationStress(t *testing.T) {
	ds := testDataset(t)
	baseN := len(ds.Trajs) / 2
	base := ds.Sample(baseN)
	base.Name = ds.Name

	d, err := delta.NewDynamic(base, delta.Config{GAT: gatCfgDefault(), CompactThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	hub := subscribe.NewDynamicHub(d, subscribe.Options{EventBuffer: 16})
	defer hub.Close()

	qs := workload(t, ds, 8)
	durable := make([]*subscribe.Subscription, 4)
	for i := range durable {
		if durable[i], err = hub.Subscribe(context.Background(), query.Request{Query: qs[i], K: 5}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Inserter: streams the held-out half.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range ds.Trajs[baseN:] {
			if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	// Deleter: tombstones base trajectories.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := 3; id < baseN; id += 7 {
			if err := d.Delete(trajectory.TrajID(id)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	// Compactor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := d.CompactNow(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	// Churning subscribers: subscribe, read a few event pages, unsubscribe.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				s, err := hub.Subscribe(context.Background(), query.Request{Query: qs[4+(c+r)%4], K: 3})
				if err != nil {
					t.Errorf("churn subscribe: %v", err)
					return
				}
				var cursor uint64
				for i := 0; i < 4; i++ {
					evs, wait, closed := s.Next(cursor)
					if closed {
						break
					}
					for _, ev := range evs {
						cursor = ev.Seq
					}
					if evs == nil && wait != nil {
						select {
						case <-wait:
						default:
						}
					}
				}
				if !hub.Unsubscribe(s.ID()) {
					t.Errorf("churn unsubscribe lost sub %d", s.ID())
					return
				}
			}
		}(c)
	}
	// Concurrent event readers on the durable subscriptions.
	for i := range durable {
		wg.Add(1)
		go func(s *subscribe.Subscription) {
			defer wg.Done()
			var cursor uint64
			for r := 0; r < 50; r++ {
				evs, _, _ := s.Next(cursor)
				for _, ev := range evs {
					if ev.Seq <= cursor && ev.Kind != subscribe.EventResync {
						t.Errorf("non-monotone event seq %d after %d", ev.Seq, cursor)
						return
					}
					cursor = ev.Seq
				}
			}
		}(durable[i])
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	hub.Sync()
	verify := d.NewEngine()
	verifySubs(t, -1, verify, durable)
	if st := hub.Stats(); st.Active != int64(len(durable)) {
		t.Fatalf("expected %d active subscriptions after churn, got %+v", len(durable), st)
	}
}

// Package enginetest cross-checks the four engines (GAT, IL, RT, IRT) on
// shared workloads: since they differ only in candidate retrieval, their
// top-k distance vectors must be identical for every query. IL is the
// trivially-correct oracle (it scores every containing trajectory).
package enginetest

import (
	"math"
	"testing"

	"activitytraj/internal/baseline"
	"activitytraj/internal/core"
	"activitytraj/internal/dataset"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

func testDataset(t testing.TB) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name:            "mini",
		Seed:            99,
		NumTrajectories: 400,
		NumVenues:       900,
		VocabSize:       300,
		RegionW:         40,
		RegionH:         40,
		Clusters:        8,
		TrajLenMean:     14,
		TrajLenStd:      6,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	return ds
}

func gatCfgDefault() gat.Config { return gat.Config{Depth: 6, MemLevels: 4} }

func buildEngines(t testing.TB, ds *trajectory.Dataset, gatCfg gat.Config) (*evaluate.TrajStore, []query.Engine) {
	t.Helper()
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatalf("trajstore: %v", err)
	}
	idx, err := core.Build(ts, gatCfg)
	if err != nil {
		t.Fatalf("gat build: %v", err)
	}
	engines := []query.Engine{
		baseline.BuildIL(ts),
		baseline.BuildRT(ts, 0, 0),
		baseline.BuildIRT(ts, 0, 0),
		core.NewEngine(idx),
	}
	return ts, engines
}

func workload(t testing.TB, ds *trajectory.Dataset, n int) []query.Query {
	t.Helper()
	qs, err := queries.Generate(ds, queries.Config{
		NumQueries:   n,
		NumPoints:    3,
		ActsPerPoint: 2,
		DiameterKm:   8,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}
	return qs
}

func distVector(rs []query.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Dist
	}
	return out
}

func sameDists(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Engines share the matcher, so distances should agree to fp noise.
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

// TestEnginesAgreeATSQ is the central correctness gate: every engine must
// return the same top-k distances as the exhaustive IL oracle.
func TestEnginesAgreeATSQ(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4})
	qs := workload(t, ds, 25)
	for qi, q := range qs {
		var ref []float64
		for _, e := range engines {
			rs, err := e.SearchATSQ(q, 9)
			if err != nil {
				t.Fatalf("q%d %s: %v", qi, e.Name(), err)
			}
			dv := distVector(rs)
			if ref == nil {
				ref = dv
				continue
			}
			if !sameDists(ref, dv) {
				t.Fatalf("q%d: %s disagrees with IL\nIL : %v\n%s: %v", qi, e.Name(), ref, e.Name(), dv)
			}
		}
	}
}

// TestEnginesAgreeOATSQ repeats the gate for the order-sensitive query.
func TestEnginesAgreeOATSQ(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4})
	qs := workload(t, ds, 25)
	for qi, q := range qs {
		var ref []float64
		for _, e := range engines {
			rs, err := e.SearchOATSQ(q, 9)
			if err != nil {
				t.Fatalf("q%d %s: %v", qi, e.Name(), err)
			}
			dv := distVector(rs)
			if ref == nil {
				ref = dv
				continue
			}
			if !sameDists(ref, dv) {
				t.Fatalf("q%d: %s disagrees with IL\nIL : %v\n%s: %v", qi, e.Name(), ref, e.Name(), dv)
			}
		}
	}
}

// TestGATVariantsAgree checks that the ablation switches (loose lower
// bound, no TAS) and different grid depths do not change results, only
// work done.
func TestGATVariantsAgree(t *testing.T) {
	ds := testDataset(t)
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatalf("trajstore: %v", err)
	}
	cfgs := []gat.Config{
		{Depth: 6, MemLevels: 4},
		{Depth: 6, MemLevels: 4, LooseLowerBound: true},
		{Depth: 6, MemLevels: 4, DisableTAS: true},
		{Depth: 5, MemLevels: 5},
		{Depth: 8, MemLevels: 4, Lambda: 4, NearCells: 2},
	}
	var engines []query.Engine
	for _, c := range cfgs {
		idx, err := gat.Build(ts, c)
		if err != nil {
			t.Fatalf("build %+v: %v", c, err)
		}
		engines = append(engines, gat.NewEngine(idx))
	}
	qs := workload(t, ds, 12)
	for qi, q := range qs {
		var ref []float64
		for vi, e := range engines {
			rs, err := e.SearchATSQ(q, 9)
			if err != nil {
				t.Fatalf("q%d variant %d: %v", qi, vi, err)
			}
			dv := distVector(rs)
			if ref == nil {
				ref = dv
			} else if !sameDists(ref, dv) {
				t.Fatalf("q%d: variant %d (%+v) disagrees\nbase: %v\ngot : %v", qi, vi, cfgs[vi], ref, dv)
			}
		}
	}
}

// TestUnmatchableQuery: an activity absent from the dataset yields empty
// results from every engine (and no panic/livelock).
func TestUnmatchableQuery(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4})
	q := query.Query{Pts: []query.Point{
		{Loc: ds.Trajs[0].Pts[0].Loc, Acts: trajectory.NewActivitySet(trajectory.ActivityID(ds.Vocab.Size() + 5))},
	}}
	for _, e := range engines {
		for _, ordered := range []bool{false, true} {
			var rs []query.Result
			var err error
			if ordered {
				rs, err = e.SearchOATSQ(q, 5)
			} else {
				rs, err = e.SearchATSQ(q, 5)
			}
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if len(rs) != 0 {
				t.Fatalf("%s ordered=%v: expected empty results, got %v", e.Name(), ordered, rs)
			}
		}
	}
}

// TestKLargerThanMatches: k greater than the number of matching
// trajectories returns all matches, consistently across engines.
func TestKLargerThanMatches(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4})
	qs := workload(t, ds, 5)
	for qi, q := range qs {
		var ref []float64
		for _, e := range engines {
			rs, err := e.SearchATSQ(q, 10_000)
			if err != nil {
				t.Fatalf("q%d %s: %v", qi, e.Name(), err)
			}
			dv := distVector(rs)
			if ref == nil {
				ref = dv
			} else if !sameDists(ref, dv) {
				t.Fatalf("q%d: %s returned %d results vs IL %d", qi, e.Name(), len(dv), len(ref))
			}
		}
	}
}

// TestLemma3AcrossEngines: for each query, the OATSQ top-1 distance is at
// least the ATSQ top-1 distance (Dmm lower-bounds Dmom).
func TestLemma3AcrossEngines(t *testing.T) {
	ds := testDataset(t)
	_, engines := buildEngines(t, ds, gat.Config{Depth: 6, MemLevels: 4})
	qs := workload(t, ds, 10)
	e := engines[3] // GAT
	for qi, q := range qs {
		a, err := e.SearchATSQ(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := e.SearchOATSQ(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) > 0 && len(o) > 0 && o[0].Dist < a[0].Dist-1e-9 {
			t.Fatalf("q%d: Dmom top1 %v < Dmm top1 %v violates Lemma 3", qi, o[0].Dist, a[0].Dist)
		}
	}
}

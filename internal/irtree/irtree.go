// Package irtree implements the IR-tree of Cong, Jensen & Wu (VLDB 2009) as
// used by the paper's IRT baseline: an R-tree whose every node carries an
// inverted file over the activities (keywords) of the objects below it.
// During best-first search, a node none of whose activities intersect the
// query can be pruned before its children are ever touched — the only
// difference from the plain R-tree baseline.
//
// The tree is built once over the full point set (STR packing); the paper's
// baselines never mutate their indexes after construction.
package irtree

import (
	"container/heap"
	"math"
	"slices"
	"sort"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

// Entry is one indexed trajectory point: location, opaque payload ID and
// the activity set attached to the point.
type Entry struct {
	Loc  geo.Point
	ID   int64
	Acts trajectory.ActivitySet
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 64

type node struct {
	leaf     bool
	bounds   geo.Rect
	rects    []geo.Rect // child bounds (internal) or entry points (leaf)
	children []*node
	entries  []Entry
	// inv is the node's inverted file: for each activity present in the
	// subtree, the ascending slot numbers of children (internal nodes) or
	// entries (leaves) whose subtree/point contains it.
	inv map[trajectory.ActivityID][]int32
}

func (n *node) count() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.children)
}

// Tree is an immutable IR-tree.
type Tree struct {
	root   *node
	size   int
	height int
	nodes  int
}

// Build constructs an IR-tree over entries with the given fan-out using STR
// packing, then assembles the per-node inverted files bottom-up.
func Build(entries []Entry, maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	t := &Tree{size: len(entries)}
	if len(entries) == 0 {
		t.root = &node{leaf: true, inv: map[trajectory.ActivityID][]int32{}}
		t.height, t.nodes = 1, 1
		return t
	}
	level := packLeaves(entries, maxEntries)
	t.nodes = len(level)
	t.height = 1
	for len(level) > 1 {
		level = packInternal(level, maxEntries)
		t.nodes += len(level)
		t.height++
	}
	t.root = level[0]
	return t
}

func packLeaves(entries []Entry, maxEntries int) []*node {
	es := make([]Entry, len(entries))
	copy(es, entries)
	n := len(es)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * maxEntries
	sort.Slice(es, func(i, j int) bool { return es[i].Loc.X < es[j].Loc.X })
	var leaves []*node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		slice := es[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Loc.Y < slice[j].Loc.Y })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := min(ls+maxEntries, len(slice))
			nd := &node{leaf: true, inv: map[trajectory.ActivityID][]int32{}}
			for slot, e := range slice[ls:le] {
				nd.entries = append(nd.entries, e)
				nd.rects = append(nd.rects, geo.RectFromPoint(e.Loc))
				for _, a := range e.Acts {
					nd.inv[a] = append(nd.inv[a], int32(slot))
				}
			}
			nd.bounds = boundsOf(nd.rects)
			leaves = append(leaves, nd)
		}
	}
	return leaves
}

func packInternal(level []*node, maxEntries int) []*node {
	items := make([]*node, len(level))
	copy(items, level)
	n := len(items)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * maxEntries
	sort.Slice(items, func(i, j int) bool { return items[i].bounds.Center().X < items[j].bounds.Center().X })
	var parents []*node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		slice := items[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := min(ls+maxEntries, len(slice))
			p := &node{leaf: false, inv: map[trajectory.ActivityID][]int32{}}
			for slot, c := range slice[ls:le] {
				p.children = append(p.children, c)
				p.rects = append(p.rects, c.bounds)
				for a := range c.inv {
					p.inv[a] = append(p.inv[a], int32(slot))
				}
			}
			for a := range p.inv {
				slices.Sort(p.inv[a])
			}
			p.bounds = boundsOf(p.rects)
			parents = append(parents, p)
		}
	}
	return parents
}

func boundsOf(rs []geo.Rect) geo.Rect {
	b := rs[0]
	for _, r := range rs[1:] {
		b = b.Union(r)
	}
	return b
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height.
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// MemBytes approximates the heap footprint including the inverted files.
func (t *Tree) MemBytes() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		total += 64 + int64(n.count())*48
		for a, slots := range n.inv {
			_ = a
			total += 24 + int64(len(slots))*4
		}
		for _, e := range n.entries {
			total += int64(len(e.Acts)) * 4
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}

// NearestIter enumerates entries that carry at least one activity of the
// filter set, in ascending distance from q. An empty filter disables
// activity pruning (plain NN).
type NearestIter struct {
	q       geo.Point
	filter  trajectory.ActivitySet
	pq      nnHeap
	visited int
}

type nnItem struct {
	dist  float64
	node  *node
	entry Entry
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewNearestIter returns an activity-filtered nearest iterator.
func (t *Tree) NewNearestIter(q geo.Point, filter trajectory.ActivitySet) *NearestIter {
	it := &NearestIter{q: q, filter: filter}
	if t.size > 0 && nodeMatches(t.root, filter) {
		it.pq = append(it.pq, nnItem{dist: t.root.bounds.MinDist(q), node: t.root})
	}
	return it
}

// nodeMatches consults the node's inverted file: does the subtree contain
// any activity of the filter?
func nodeMatches(n *node, filter trajectory.ActivitySet) bool {
	if len(filter) == 0 {
		return true
	}
	for _, a := range filter {
		if len(n.inv[a]) > 0 {
			return true
		}
	}
	return false
}

// matchingSlots returns the ascending union of the node's inverted-file
// postings for the filter activities; nil filter selects every slot.
func matchingSlots(n *node, filter trajectory.ActivitySet) []int32 {
	if len(filter) == 0 {
		out := make([]int32, n.count())
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	var out []int32
	for _, a := range filter {
		out = append(out, n.inv[a]...)
	}
	slices.Sort(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Next returns the next nearest matching entry.
func (it *NearestIter) Next() (Entry, float64, bool) {
	for len(it.pq) > 0 {
		item := heap.Pop(&it.pq).(nnItem)
		if item.node == nil {
			return item.entry, item.dist, true
		}
		it.visited++
		n := item.node
		for _, slot := range matchingSlots(n, it.filter) {
			d := n.rects[slot].MinDist(it.q)
			if n.leaf {
				heap.Push(&it.pq, nnItem{dist: d, entry: n.entries[slot]})
			} else {
				heap.Push(&it.pq, nnItem{dist: d, node: n.children[slot]})
			}
		}
	}
	return Entry{}, 0, false
}

// PeekDist returns the lower bound on all unreturned matching entries.
func (it *NearestIter) PeekDist() (float64, bool) {
	if len(it.pq) == 0 {
		return 0, false
	}
	return it.pq[0].dist, true
}

// NodesVisited returns the number of nodes expanded so far.
func (it *NearestIter) NodesVisited() int { return it.visited }

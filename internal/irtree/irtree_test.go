package irtree

import (
	"math/rand"
	"sort"
	"testing"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		nActs := 1 + rng.Intn(3)
		ids := make([]trajectory.ActivityID, nActs)
		for j := range ids {
			ids[j] = trajectory.ActivityID(rng.Intn(20))
		}
		out[i] = Entry{
			Loc:  geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			ID:   int64(i),
			Acts: trajectory.NewActivitySet(ids...),
		}
	}
	return out
}

// TestFilteredNearestAgainstBruteForce: the filtered iterator must return
// exactly the entries carrying at least one filter activity, in ascending
// distance order.
func TestFilteredNearestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := randomEntries(rng, 1200)
	tr := Build(entries, 16)
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		filter := trajectory.NewActivitySet(
			trajectory.ActivityID(rng.Intn(20)),
			trajectory.ActivityID(rng.Intn(20)),
		)
		type distID struct {
			d  float64
			id int64
		}
		var want []distID
		for _, e := range entries {
			if e.Acts.Intersects(filter) {
				want = append(want, distID{geo.Dist(q, e.Loc), e.ID})
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].d < want[j].d })

		it := tr.NewNearestIter(q, filter)
		for i := 0; ; i++ {
			e, d, ok := it.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("trial %d: iterator ended after %d of %d", trial, i, len(want))
				}
				break
			}
			if !e.Acts.Intersects(filter) {
				t.Fatalf("trial %d: entry %d lacks filter activities", trial, e.ID)
			}
			if absF(d-want[i].d) > 1e-9 {
				t.Fatalf("trial %d pos %d: dist %v, want %v", trial, i, d, want[i].d)
			}
		}
	}
}

// TestUnfilteredIteratesAll: an empty filter disables pruning.
func TestUnfilteredIteratesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	entries := randomEntries(rng, 300)
	tr := Build(entries, 8)
	it := tr.NewNearestIter(geo.Point{X: 50, Y: 50}, nil)
	n := 0
	prev := -1.0
	for {
		_, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("distance regression %v after %v", d, prev)
		}
		prev = d
		n++
	}
	if n != len(entries) {
		t.Fatalf("iterated %d of %d", n, len(entries))
	}
	if it.NodesVisited() == 0 {
		t.Fatal("NodesVisited must be accounted")
	}
}

// TestAbsentActivityPrunesRoot: a filter no entry matches must visit
// nothing at all — the inverted-file pruning the IRT baseline relies on.
func TestAbsentActivityPrunesRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := Build(randomEntries(rng, 500), 16)
	it := tr.NewNearestIter(geo.Point{}, trajectory.NewActivitySet(999))
	if _, _, ok := it.Next(); ok {
		t.Fatal("absent activity must match nothing")
	}
	if it.NodesVisited() != 0 {
		t.Fatalf("visited %d nodes for an absent activity", it.NodesVisited())
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 8)
	it := tr.NewNearestIter(geo.Point{}, nil)
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree must yield nothing")
	}
	if tr.MemBytes() <= 0 || tr.NodeCount() != 1 || tr.Height() != 1 {
		t.Fatalf("empty-tree accounting: mem=%d nodes=%d height=%d", tr.MemBytes(), tr.NodeCount(), tr.Height())
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

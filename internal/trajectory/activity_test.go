package trajectory

import (
	"testing"
	"testing/quick"
)

func TestNewActivitySet(t *testing.T) {
	s := NewActivitySet(5, 1, 5, 3, 1)
	want := ActivitySet{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewActivitySet = %v, want %v", s, want)
	}
}

func TestSetPredicates(t *testing.T) {
	s := NewActivitySet(1, 3, 5, 9)
	if !s.Contains(3) || s.Contains(4) {
		t.Fatal("Contains misclassified")
	}
	if !s.ContainsAll(NewActivitySet(1, 9)) || s.ContainsAll(NewActivitySet(1, 2)) {
		t.Fatal("ContainsAll misclassified")
	}
	if !s.ContainsAll(nil) {
		t.Fatal("every set contains the empty set")
	}
	if !s.Intersects(NewActivitySet(4, 5)) || s.Intersects(NewActivitySet(2, 4)) {
		t.Fatal("Intersects misclassified")
	}
}

// Reference implementations over maps for property testing.
func refUnion(a, b ActivitySet) map[ActivityID]bool {
	m := map[ActivityID]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		m[x] = true
	}
	return m
}

func setFromBytes(bs []byte) ActivitySet {
	ids := make([]ActivityID, len(bs))
	for i, b := range bs {
		ids[i] = ActivityID(b % 64)
	}
	return NewActivitySet(ids...)
}

func TestUnionIntersectProperty(t *testing.T) {
	f := func(ab, bb []byte) bool {
		a, b := setFromBytes(ab), setFromBytes(bb)
		u := a.Union(b)
		ref := refUnion(a, b)
		if len(u) != len(ref) {
			return false
		}
		for _, x := range u {
			if !ref[x] {
				return false
			}
		}
		// Intersection: every member in both; symmetric difference covered
		// by union length check.
		in := a.Intersect(b)
		for _, x := range in {
			if !a.Contains(x) || !b.Contains(x) {
				return false
			}
		}
		for _, x := range a {
			if b.Contains(x) && !in.Contains(x) {
				return false
			}
		}
		// Normalized output invariants.
		for i := 1; i < len(u); i++ {
			if u[i-1] >= u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskAgainst(t *testing.T) {
	q := NewActivitySet(2, 5, 9)
	cases := []struct {
		set  ActivitySet
		want uint32
	}{
		{NewActivitySet(2), 0b001},
		{NewActivitySet(5), 0b010},
		{NewActivitySet(9), 0b100},
		{NewActivitySet(2, 9), 0b101},
		{NewActivitySet(1, 3, 8), 0},
		{NewActivitySet(2, 5, 9, 11), 0b111},
		{nil, 0},
	}
	for _, c := range cases {
		if got := c.set.MaskAgainst(q); got != c.want {
			t.Errorf("%v.MaskAgainst(%v) = %b, want %b", c.set, q, got, c.want)
		}
	}
}

// TestMaskAgainstProperty: bit b is set iff query[b] is a member.
func TestMaskAgainstProperty(t *testing.T) {
	f := func(sb, qb []byte) bool {
		s := setFromBytes(sb)
		q := setFromBytes(qb)
		if len(q) > 32 {
			q = q[:32]
		}
		mask := s.MaskAgainst(q)
		for b, id := range q {
			has := mask&(1<<uint(b)) != 0
			if has != s.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewActivitySet(1, 2, 3)
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
}

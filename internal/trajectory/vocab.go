package trajectory

import (
	"cmp"
	"fmt"
	"slices"
)

// Vocabulary is the pre-defined activity vocabulary A of the paper. It maps
// between human-readable activity names and the dense frequency-ranked IDs
// used by every index structure. IDs are assigned by descending corpus
// frequency (ties broken by name) exactly as the Trajectory Activity Sketch
// construction requires.
type Vocabulary struct {
	names  []string // names[id] = activity name
	byName map[string]ActivityID
	freqs  []int64 // freqs[id] = corpus occurrence count
}

// VocabularyBuilder accumulates activity occurrences before frequency-ranked
// ID assignment.
type VocabularyBuilder struct {
	counts map[string]int64
}

// NewVocabularyBuilder returns an empty builder.
func NewVocabularyBuilder() *VocabularyBuilder {
	return &VocabularyBuilder{counts: make(map[string]int64)}
}

// Add records one occurrence of the named activity.
func (b *VocabularyBuilder) Add(name string) { b.counts[name]++ }

// AddN records n occurrences of the named activity.
func (b *VocabularyBuilder) AddN(name string, n int64) { b.counts[name] += n }

// Build freezes the builder into a Vocabulary with IDs assigned by
// descending frequency, ties broken lexicographically for determinism.
func (b *VocabularyBuilder) Build() *Vocabulary {
	type entry struct {
		name string
		n    int64
	}
	entries := make([]entry, 0, len(b.counts))
	for name, n := range b.counts {
		entries = append(entries, entry{name, n})
	}
	slices.SortFunc(entries, func(a, b entry) int {
		if a.n != b.n {
			return cmp.Compare(b.n, a.n)
		}
		return cmp.Compare(a.name, b.name)
	})
	v := &Vocabulary{
		names:  make([]string, len(entries)),
		byName: make(map[string]ActivityID, len(entries)),
		freqs:  make([]int64, len(entries)),
	}
	for id, e := range entries {
		v.names[id] = e.name
		v.byName[e.name] = ActivityID(id)
		v.freqs[id] = e.n
	}
	return v
}

// Size returns the cardinality C of the vocabulary.
func (v *Vocabulary) Size() int { return len(v.names) }

// Name returns the name of activity id.
func (v *Vocabulary) Name(id ActivityID) string {
	if int(id) >= len(v.names) {
		return fmt.Sprintf("<unknown:%d>", id)
	}
	return v.names[id]
}

// ID returns the ID of the named activity.
func (v *Vocabulary) ID(name string) (ActivityID, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// MustID is ID for names known to exist; it panics otherwise.
func (v *Vocabulary) MustID(name string) ActivityID {
	id, ok := v.byName[name]
	if !ok {
		panic(fmt.Sprintf("trajectory: activity %q not in vocabulary", name))
	}
	return id
}

// Freq returns the recorded corpus frequency of activity id.
func (v *Vocabulary) Freq(id ActivityID) int64 {
	if int(id) >= len(v.freqs) {
		return 0
	}
	return v.freqs[id]
}

// Names returns the full name table indexed by ActivityID. The returned
// slice is shared; callers must not modify it.
func (v *Vocabulary) Names() []string { return v.names }

// SetFromNames converts activity names to a normalized ActivitySet,
// silently skipping names not present in the vocabulary.
func (v *Vocabulary) SetFromNames(names ...string) ActivitySet {
	ids := make([]ActivityID, 0, len(names))
	for _, n := range names {
		if id, ok := v.byName[n]; ok {
			ids = append(ids, id)
		}
	}
	return NewActivitySet(ids...)
}

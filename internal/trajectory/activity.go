// Package trajectory defines the activity-trajectory data model of the
// paper: activities drawn from a pre-defined vocabulary, geo-points tagged
// with activity sets, trajectories as point sequences, and datasets with the
// statistics reported in Table IV. It also provides a compact binary codec
// so datasets can be stored and shipped between the CLI tools.
package trajectory

import "slices"

// ActivityID identifies an activity within a Vocabulary. Following the TAS
// construction in Section IV, IDs are assigned contiguously in descending
// order of occurrence frequency: ID 0 is the most frequent activity.
type ActivityID uint32

// ActivitySet is a sorted, duplicate-free set of activity IDs. The methods
// never mutate their receiver unless documented otherwise.
type ActivitySet []ActivityID

// NewActivitySet returns a normalized (sorted, deduplicated) set from ids.
func NewActivitySet(ids ...ActivityID) ActivitySet {
	s := make(ActivitySet, len(ids))
	copy(s, ids)
	s.Normalize()
	return s
}

// Normalize sorts the set in place and removes duplicates.
func (s *ActivitySet) Normalize() {
	v := *s
	slices.Sort(v)
	out := v[:0]
	for i, id := range v {
		if i == 0 || id != v[i-1] {
			out = append(out, id)
		}
	}
	*s = out
}

// Contains reports whether id is a member of s.
func (s ActivitySet) Contains(id ActivityID) bool {
	_, ok := slices.BinarySearch(s, id)
	return ok
}

// ContainsAll reports whether every element of other is a member of s.
func (s ActivitySet) ContainsAll(other ActivitySet) bool {
	i := 0
	for _, id := range other {
		for i < len(s) && s[i] < id {
			i++
		}
		if i == len(s) || s[i] != id {
			return false
		}
	}
	return true
}

// Intersects reports whether s and other share at least one element.
func (s ActivitySet) Intersects(other ActivitySet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union returns a new set containing the elements of both s and other.
func (s ActivitySet) Union(other ActivitySet) ActivitySet {
	out := make(ActivitySet, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns a new set containing the elements common to s and other.
func (s ActivitySet) Intersect(other ActivitySet) ActivitySet {
	var out ActivitySet
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// MaskAgainst returns a bitmask with bit b set iff query[b] is a member of s.
// It is the bridge between activity sets and the subset-DP of Algorithm 3,
// which operates on bitmasks over a query point's (small) activity list.
// query must be sorted; len(query) must be at most 32.
func (s ActivitySet) MaskAgainst(query ActivitySet) uint32 {
	var mask uint32
	i := 0
	for b, id := range query {
		for i < len(s) && s[i] < id {
			i++
		}
		if i < len(s) && s[i] == id {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// Clone returns an independent copy of s.
func (s ActivitySet) Clone() ActivitySet {
	out := make(ActivitySet, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and other contain exactly the same elements.
func (s ActivitySet) Equal(other ActivitySet) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

package trajectory

import (
	"fmt"

	"activitytraj/internal/geo"
)

// TrajID identifies a trajectory within a Dataset; IDs are dense in
// [0, len(Dataset.Trajs)).
type TrajID uint32

// Point is one element of an activity trajectory: a location with the
// (possibly empty) set of activities performed there (Definition 2).
type Point struct {
	Loc  geo.Point
	Acts ActivitySet
}

// Trajectory is a sequence of activity-tagged points.
type Trajectory struct {
	ID  TrajID
	Pts []Point
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Pts) }

// ActivityUnion returns the union of all activity sets along the trajectory,
// i.e. the aggregate used by the IL baseline and the TAS component.
func (t *Trajectory) ActivityUnion() ActivitySet {
	var total int
	for _, p := range t.Pts {
		total += len(p.Acts)
	}
	ids := make(ActivitySet, 0, total)
	for _, p := range t.Pts {
		ids = append(ids, p.Acts...)
	}
	ids.Normalize()
	return ids
}

// Bounds returns the bounding rectangle of the trajectory's points.
func (t *Trajectory) Bounds() geo.Rect {
	pts := make([]geo.Point, len(t.Pts))
	for i, p := range t.Pts {
		pts[i] = p.Loc
	}
	return geo.BoundingRect(pts)
}

// Dataset is an activity trajectory database D together with its vocabulary.
type Dataset struct {
	Name  string
	Vocab *Vocabulary
	Trajs []Trajectory
}

// Stats summarizes a dataset with the four quantities of the paper's
// Table IV plus derived averages.
type Stats struct {
	Trajectories     int
	Points           int // "#venue" in Table IV counts check-in points
	ActivityTokens   int // total activity occurrences across all points
	DistinctActs     int
	AvgPointsPerTraj float64
	AvgActsPerPoint  float64
}

// Stats computes dataset statistics in a single pass.
func (d *Dataset) Stats() Stats {
	var s Stats
	s.Trajectories = len(d.Trajs)
	seen := make(map[ActivityID]struct{})
	for _, tr := range d.Trajs {
		s.Points += len(tr.Pts)
		for _, p := range tr.Pts {
			s.ActivityTokens += len(p.Acts)
			for _, a := range p.Acts {
				seen[a] = struct{}{}
			}
		}
	}
	s.DistinctActs = len(seen)
	if s.Trajectories > 0 {
		s.AvgPointsPerTraj = float64(s.Points) / float64(s.Trajectories)
	}
	if s.Points > 0 {
		s.AvgActsPerPoint = float64(s.ActivityTokens) / float64(s.Points)
	}
	return s
}

// Bounds returns the bounding rectangle of every point in the dataset.
func (d *Dataset) Bounds() geo.Rect {
	var r geo.Rect
	first := true
	for _, tr := range d.Trajs {
		for _, p := range tr.Pts {
			if first {
				r = geo.RectFromPoint(p.Loc)
				first = false
			} else {
				r = r.ExtendPoint(p.Loc)
			}
		}
	}
	return r
}

// Validate checks structural invariants: dense trajectory IDs, normalized
// activity sets, and activity IDs within the vocabulary. It returns the
// first violation found.
func (d *Dataset) Validate() error {
	vsize := 0
	if d.Vocab != nil {
		vsize = d.Vocab.Size()
	}
	for i, tr := range d.Trajs {
		if tr.ID != TrajID(i) {
			return fmt.Errorf("trajectory %d has ID %d (IDs must be dense)", i, tr.ID)
		}
		for j, p := range tr.Pts {
			for k, a := range p.Acts {
				if k > 0 && p.Acts[k-1] >= a {
					return fmt.Errorf("trajectory %d point %d: activity set not normalized", i, j)
				}
				if d.Vocab != nil && int(a) >= vsize {
					return fmt.Errorf("trajectory %d point %d: activity %d outside vocabulary (size %d)", i, j, a, vsize)
				}
			}
		}
	}
	return nil
}

// Sample returns a new dataset containing the first n trajectories (re-IDed
// densely), sharing the vocabulary. It is how the scalability experiment
// (Fig. 7) derives 10K..50K subsets of the NY dataset.
func (d *Dataset) Sample(n int) *Dataset {
	if n > len(d.Trajs) {
		n = len(d.Trajs)
	}
	out := &Dataset{Name: fmt.Sprintf("%s[0:%d]", d.Name, n), Vocab: d.Vocab, Trajs: make([]Trajectory, n)}
	for i := 0; i < n; i++ {
		out.Trajs[i] = Trajectory{ID: TrajID(i), Pts: d.Trajs[i].Pts}
	}
	return out
}

package trajectory

import "activitytraj/internal/geo"

// geoPoint is a tiny constructor kept separate so codec.go reads cleanly.
func geoPoint(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

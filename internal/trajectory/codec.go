package trajectory

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary dataset format (all integers varint-encoded unless noted):
//
//	magic "ATRJ" | version u8
//	name: len + bytes
//	vocab: count, then per activity: name len + bytes, freq
//	trajectories: count, then per trajectory:
//	    point count, then per point:
//	        x float64 (fixed 8 bytes), y float64 (fixed 8 bytes),
//	        activity count, delta-encoded sorted activity IDs
//
// The codec is self-contained (stdlib only) and round-trips exactly.

const (
	datasetMagic   = "ATRJ"
	datasetVersion = 1
)

// ErrBadFormat is returned when decoding input that is not a dataset.
var ErrBadFormat = errors.New("trajectory: bad dataset format")

// WriteTo serializes the dataset to w and returns the byte count written.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	bw := cw.w.(*bufio.Writer)

	if _, err := bw.WriteString(datasetMagic); err != nil {
		return cw.n, err
	}
	cw.n += int64(len(datasetMagic))
	if err := bw.WriteByte(datasetVersion); err != nil {
		return cw.n, err
	}
	cw.n++

	writeString(cw, d.Name)
	if d.Vocab == nil {
		writeUvarint(cw, 0)
	} else {
		writeUvarint(cw, uint64(d.Vocab.Size()))
		for id, name := range d.Vocab.names {
			writeString(cw, name)
			writeUvarint(cw, uint64(d.Vocab.freqs[id]))
		}
	}
	writeUvarint(cw, uint64(len(d.Trajs)))
	for _, tr := range d.Trajs {
		writeUvarint(cw, uint64(len(tr.Pts)))
		for _, p := range tr.Pts {
			writeFloat64(cw, p.Loc.X)
			writeFloat64(cw, p.Loc.Y)
			writeUvarint(cw, uint64(len(p.Acts)))
			prev := uint64(0)
			for i, a := range p.Acts {
				if i == 0 {
					writeUvarint(cw, uint64(a))
				} else {
					writeUvarint(cw, uint64(a)-prev)
				}
				prev = uint64(a)
			}
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, bw.Flush()
}

// ReadDataset decodes a dataset written by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(datasetMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != datasetMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != datasetVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}

	d := &Dataset{}
	if d.Name, err = readString(br); err != nil {
		return nil, err
	}
	vcount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if vcount > 0 {
		v := &Vocabulary{
			names:  make([]string, vcount),
			byName: make(map[string]ActivityID, vcount),
			freqs:  make([]int64, vcount),
		}
		for i := uint64(0); i < vcount; i++ {
			name, err := readString(br)
			if err != nil {
				return nil, err
			}
			freq, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			v.names[i] = name
			v.byName[name] = ActivityID(i)
			v.freqs[i] = int64(freq)
		}
		d.Vocab = v
	}
	tcount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	d.Trajs = make([]Trajectory, tcount)
	for ti := uint64(0); ti < tcount; ti++ {
		pcount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		pts := make([]Point, pcount)
		for pi := uint64(0); pi < pcount; pi++ {
			x, err := readFloat64(br)
			if err != nil {
				return nil, err
			}
			y, err := readFloat64(br)
			if err != nil {
				return nil, err
			}
			acount, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			acts := make(ActivitySet, acount)
			prev := uint64(0)
			for ai := uint64(0); ai < acount; ai++ {
				delta, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				if ai == 0 {
					prev = delta
				} else {
					prev += delta
				}
				acts[ai] = ActivityID(prev)
			}
			pts[pi] = Point{Loc: geoPoint(x, y), Acts: acts}
		}
		d.Trajs[ti] = Trajectory{ID: TrajID(ti), Pts: pts}
	}
	return d, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
}

func writeUvarint(cw *countingWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	cw.write(buf[:n])
}

func writeString(cw *countingWriter, s string) {
	writeUvarint(cw, uint64(len(s)))
	cw.write([]byte(s))
}

func writeFloat64(cw *countingWriter, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	cw.write(buf[:])
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("%w: string length %d", ErrBadFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readFloat64(br *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

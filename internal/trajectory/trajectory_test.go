package trajectory

import (
	"bytes"
	"testing"

	"activitytraj/internal/geo"
)

func buildVocab(t *testing.T) *Vocabulary {
	t.Helper()
	b := NewVocabularyBuilder()
	b.AddN("food", 100)
	b.AddN("coffee", 50)
	b.AddN("museum", 50) // tie with coffee: name order breaks it
	b.AddN("opera", 1)
	return b.Build()
}

func TestVocabularyFrequencyRanking(t *testing.T) {
	v := buildVocab(t)
	if v.Size() != 4 {
		t.Fatalf("size = %d, want 4", v.Size())
	}
	if id := v.MustID("food"); id != 0 {
		t.Fatalf("most frequent activity must get ID 0, got %d", id)
	}
	// coffee < museum lexicographically at equal frequency.
	if v.MustID("coffee") != 1 || v.MustID("museum") != 2 {
		t.Fatalf("tie-break wrong: coffee=%d museum=%d", v.MustID("coffee"), v.MustID("museum"))
	}
	if v.MustID("opera") != 3 {
		t.Fatalf("least frequent last, got %d", v.MustID("opera"))
	}
	if v.Freq(0) != 100 || v.Name(3) != "opera" {
		t.Fatal("freq/name lookup broken")
	}
	if _, ok := v.ID("unknown"); ok {
		t.Fatal("unknown name must not resolve")
	}
	s := v.SetFromNames("opera", "food", "nope")
	if !s.Equal(NewActivitySet(0, 3)) {
		t.Fatalf("SetFromNames = %v", s)
	}
}

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	v := buildVocab(t)
	mk := func(x, y float64, names ...string) Point {
		return Point{Loc: geo.Point{X: x, Y: y}, Acts: v.SetFromNames(names...)}
	}
	return &Dataset{
		Name:  "sample",
		Vocab: v,
		Trajs: []Trajectory{
			{ID: 0, Pts: []Point{mk(0, 0, "food"), mk(1, 1, "coffee", "museum"), mk(2, 2)}},
			{ID: 1, Pts: []Point{mk(5, 5, "opera", "food"), mk(6, 6, "food")}},
		},
	}
}

func TestDatasetStats(t *testing.T) {
	ds := sampleDataset(t)
	st := ds.Stats()
	if st.Trajectories != 2 || st.Points != 5 || st.ActivityTokens != 6 || st.DistinctActs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgPointsPerTraj != 2.5 || st.AvgActsPerPoint != 1.2 {
		t.Fatalf("averages = %+v", st)
	}
}

func TestActivityUnionAndBounds(t *testing.T) {
	ds := sampleDataset(t)
	u := ds.Trajs[0].ActivityUnion()
	if !u.Equal(NewActivitySet(0, 1, 2)) {
		t.Fatalf("union = %v", u)
	}
	b := ds.Trajs[1].Bounds()
	if b != geo.NewRect(5, 5, 6, 6) {
		t.Fatalf("bounds = %+v", b)
	}
	all := ds.Bounds()
	if all != geo.NewRect(0, 0, 6, 6) {
		t.Fatalf("dataset bounds = %+v", all)
	}
}

func TestValidate(t *testing.T) {
	ds := sampleDataset(t)
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := sampleDataset(t)
	bad.Trajs[1].ID = 7
	if err := bad.Validate(); err == nil {
		t.Fatal("non-dense IDs must be rejected")
	}
	bad2 := sampleDataset(t)
	bad2.Trajs[0].Pts[0].Acts = ActivitySet{3, 1} // unsorted
	if err := bad2.Validate(); err == nil {
		t.Fatal("unnormalized activity set must be rejected")
	}
	bad3 := sampleDataset(t)
	bad3.Trajs[0].Pts[0].Acts = ActivitySet{99}
	if err := bad3.Validate(); err == nil {
		t.Fatal("out-of-vocabulary activity must be rejected")
	}
}

func TestSample(t *testing.T) {
	ds := sampleDataset(t)
	sub := ds.Sample(1)
	if len(sub.Trajs) != 1 || sub.Trajs[0].ID != 0 {
		t.Fatalf("sample = %+v", sub.Trajs)
	}
	if sub.Vocab != ds.Vocab {
		t.Fatal("sample must share the vocabulary")
	}
	if s := ds.Sample(10); len(s.Trajs) != 2 {
		t.Fatal("oversized sample must clamp")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	n, err := ds.WriteTo(&buf)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Name != ds.Name {
		t.Fatalf("name %q != %q", got.Name, ds.Name)
	}
	if got.Vocab.Size() != ds.Vocab.Size() {
		t.Fatalf("vocab size %d != %d", got.Vocab.Size(), ds.Vocab.Size())
	}
	for i := range ds.Vocab.Names() {
		id := ActivityID(i)
		if got.Vocab.Name(id) != ds.Vocab.Name(id) || got.Vocab.Freq(id) != ds.Vocab.Freq(id) {
			t.Fatalf("vocab entry %d mismatch", id)
		}
	}
	if len(got.Trajs) != len(ds.Trajs) {
		t.Fatalf("%d trajectories != %d", len(got.Trajs), len(ds.Trajs))
	}
	for ti := range ds.Trajs {
		a, b := ds.Trajs[ti], got.Trajs[ti]
		if a.ID != b.ID || len(a.Pts) != len(b.Pts) {
			t.Fatalf("traj %d shape mismatch", ti)
		}
		for pi := range a.Pts {
			if a.Pts[pi].Loc != b.Pts[pi].Loc || !a.Pts[pi].Acts.Equal(b.Pts[pi].Acts) {
				t.Fatalf("traj %d point %d mismatch: %+v vs %+v", ti, pi, a.Pts[pi], b.Pts[pi])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded dataset invalid: %v", err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadDataset(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

package rtree

import (
	"container/heap"

	"activitytraj/internal/geo"
)

// NearestIter enumerates entries in ascending distance from a query point
// using best-first traversal (Hjaltason & Samet's incremental NN). The RT
// baseline runs one iterator per query location and interleaves them.
type NearestIter struct {
	tree    *Tree
	q       geo.Point
	pq      nnHeap
	visited int // nodes popped, for the NodesVisited statistic
}

type nnItem struct {
	dist  float64
	node  *node // nil for a leaf entry
	entry Entry
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewNearestIter returns an iterator over t's entries ordered by distance
// from q. The iterator is invalidated by tree mutation.
func (t *Tree) NewNearestIter(q geo.Point) *NearestIter {
	it := &NearestIter{tree: t, q: q}
	if t.size > 0 {
		it.pq = append(it.pq, nnItem{dist: t.root.bounds().MinDist(q), node: t.root})
	}
	return it
}

// Next returns the next nearest entry and its distance. ok is false when
// the tree is exhausted.
func (it *NearestIter) Next() (e Entry, dist float64, ok bool) {
	for len(it.pq) > 0 {
		item := heap.Pop(&it.pq).(nnItem)
		if item.node == nil {
			return item.entry, item.dist, true
		}
		it.visited++
		n := item.node
		for i := 0; i < n.count(); i++ {
			d := n.rects[i].MinDist(it.q)
			if n.leaf {
				heap.Push(&it.pq, nnItem{dist: d, entry: Entry{Rect: n.rects[i], ID: n.ids[i]}})
			} else {
				heap.Push(&it.pq, nnItem{dist: d, node: n.children[i]})
			}
		}
	}
	return Entry{}, 0, false
}

// PeekDist returns the lower bound on the distance of every entry not yet
// returned — the search-radius r_i the termination test of the RT baseline
// needs. ok is false when the iterator is exhausted (no entries remain).
func (it *NearestIter) PeekDist() (float64, bool) {
	if len(it.pq) == 0 {
		return 0, false
	}
	return it.pq[0].dist, true
}

// NodesVisited returns how many internal/leaf nodes the iterator expanded.
func (it *NearestIter) NodesVisited() int { return it.visited }

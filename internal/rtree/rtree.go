// Package rtree implements an R-tree (Guttman, SIGMOD 1984) over planar
// rectangles — the index behind the paper's RT baseline, which "treats the
// points of all trajectories as a point set and indexes these points using
// an R-tree". The implementation provides dynamic insertion with quadratic
// split, deletion with condense-and-reinsert, rectangle search, STR bulk
// loading, and an incremental best-first nearest-neighbour iterator
// (Hjaltason & Samet), which the k-BCT style search of Chen et al. needs.
package rtree

import (
	"fmt"

	"activitytraj/internal/geo"
)

// Entry is one indexed item: a rectangle (a degenerate one for points) and
// an opaque 64-bit payload, typically an encoded (trajectory, point) pair.
type Entry struct {
	Rect geo.Rect
	ID   int64
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 64

type node struct {
	leaf     bool
	rects    []geo.Rect
	children []*node // non-leaf
	ids      []int64 // leaf
}

func (n *node) count() int { return len(n.rects) }

func (n *node) bounds() geo.Rect {
	r := n.rects[0]
	for _, s := range n.rects[1:] {
		r = r.Union(s)
	}
	return r
}

// Tree is an R-tree. The zero value is not usable; construct with New.
// Tree is not safe for concurrent mutation; concurrent reads are safe.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
	height     int
	nodes      int
	path       []pathEntry // scratch for Insert
}

// New returns an empty tree with the given maximum node fan-out
// (minimum fill is max/2 -, per Guttman's recommendation m = M/2).
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // R*-style 40% fill floor
		height:     1,
		nodes:      1,
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// MemBytes approximates the heap footprint of the tree structure.
func (t *Tree) MemBytes() int64 {
	// Per rect: 32 bytes; per child pointer or id: 8 bytes; node header ~48.
	var n int64
	var walk func(nd *node)
	walk = func(nd *node) {
		n += 48 + int64(nd.count())*40
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return n
}

// Insert adds e to the tree.
func (t *Tree) Insert(e Entry) {
	t.path = t.path[:0]
	leaf := t.chooseLeaf(e.Rect)
	leaf.rects = append(leaf.rects, e.Rect)
	leaf.ids = append(leaf.ids, e.ID)
	t.size++

	// Split overflowing nodes bottom-up along the recorded insertion path.
	n := leaf
	for i := len(t.path) - 1; i >= 0; i-- {
		parent, ci := t.path[i].n, t.path[i].child
		if n.count() > t.maxEntries {
			a, b := t.splitNode(n)
			parent.children[ci] = a
			parent.rects[ci] = a.bounds()
			parent.children = append(parent.children, b)
			parent.rects = append(parent.rects, b.bounds())
			t.nodes++
		} else {
			parent.rects[ci] = n.bounds()
		}
		n = parent
	}
	if n.count() > t.maxEntries { // n is the root
		a, b := t.splitNode(n)
		t.root = &node{
			leaf:     false,
			rects:    []geo.Rect{a.bounds(), b.bounds()},
			children: []*node{a, b},
		}
		t.nodes += 2
		t.height++
	}
}

type pathEntry struct {
	n     *node
	child int
}

// chooseLeaf descends to the leaf whose bounding rectangle needs the least
// enlargement to include r (ties by smaller area), recording the path.
func (t *Tree) chooseLeaf(r geo.Rect) *node {
	n := t.root
	for !n.leaf {
		best := 0
		bestEnl := n.rects[0].Enlargement(r)
		bestArea := n.rects[0].Area()
		for i := 1; i < n.count(); i++ {
			enl := n.rects[i].Enlargement(r)
			area := n.rects[i].Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		t.path = append(t.path, pathEntry{n, best})
		n = n.children[best]
	}
	return n
}

// splitNode performs Guttman's quadratic split, returning two nodes.
func (t *Tree) splitNode(n *node) (*node, *node) {
	// Pick seeds: the pair wasting the most area if grouped together.
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < n.count(); i++ {
		for j := i + 1; j < n.count(); j++ {
			d := n.rects[i].Union(n.rects[j]).Area() - n.rects[i].Area() - n.rects[j].Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	a := &node{leaf: n.leaf}
	b := &node{leaf: n.leaf}
	assign := func(dst *node, i int) {
		dst.rects = append(dst.rects, n.rects[i])
		if n.leaf {
			dst.ids = append(dst.ids, n.ids[i])
		} else {
			dst.children = append(dst.children, n.children[i])
		}
	}
	assign(a, seedA)
	assign(b, seedB)
	ra, rb := n.rects[seedA], n.rects[seedB]
	remaining := make([]int, 0, n.count()-2)
	for i := 0; i < n.count(); i++ {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force-assign when one group must take everything to reach min fill.
		if a.count()+len(remaining) == t.minEntries {
			for _, i := range remaining {
				assign(a, i)
				ra = ra.Union(n.rects[i])
			}
			break
		}
		if b.count()+len(remaining) == t.minEntries {
			for _, i := range remaining {
				assign(b, i)
				rb = rb.Union(n.rects[i])
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		bestIdx, bestDiff, bestToA := -1, -1.0, true
		for k, i := range remaining {
			da := ra.Enlargement(n.rects[i])
			db := rb.Enlargement(n.rects[i])
			diff := da - db
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = k
				bestToA = da < db || (da == db && ra.Area() < rb.Area())
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if bestToA {
			assign(a, i)
			ra = ra.Union(n.rects[i])
		} else {
			assign(b, i)
			rb = rb.Union(n.rects[i])
		}
	}
	return a, b
}

// Search invokes fn for every entry whose rectangle intersects r; fn
// returning false stops the search early.
func (t *Tree) Search(r geo.Rect, fn func(Entry) bool) {
	t.search(t.root, r, fn)
}

func (t *Tree) search(n *node, r geo.Rect, fn func(Entry) bool) bool {
	for i := 0; i < n.count(); i++ {
		if !n.rects[i].Intersects(r) {
			continue
		}
		if n.leaf {
			if !fn(Entry{Rect: n.rects[i], ID: n.ids[i]}) {
				return false
			}
		} else if !t.search(n.children[i], r, fn) {
			return false
		}
	}
	return true
}

// Delete removes one entry equal to e (same rectangle and ID). It returns
// false when no such entry exists. Underflowing nodes are condensed and
// their orphaned entries reinserted, per Guttman.
func (t *Tree) Delete(e Entry) bool {
	var orphans []Entry
	ok := t.deleteRec(t.root, e, &orphans)
	if !ok {
		return false
	}
	t.size--
	// Shrink the root while it has a single child.
	for !t.root.leaf && t.root.count() == 1 {
		t.root = t.root.children[0]
		t.height--
		t.nodes--
	}
	for _, o := range orphans {
		t.size-- // Insert will re-increment
		t.Insert(o)
	}
	return true
}

func (t *Tree) deleteRec(n *node, e Entry, orphans *[]Entry) bool {
	if n.leaf {
		for i := 0; i < n.count(); i++ {
			if n.ids[i] == e.ID && n.rects[i] == e.Rect {
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.ids = append(n.ids[:i], n.ids[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := 0; i < n.count(); i++ {
		if !n.rects[i].ContainsRect(e.Rect) {
			continue
		}
		if t.deleteRec(n.children[i], e, orphans) {
			c := n.children[i]
			if c.count() < t.minEntries && n.count() > 1 {
				// Condense: orphan the undersized child's entries.
				t.collectEntries(c, orphans)
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.children = append(n.children[:i], n.children[i+1:]...)
			} else if c.count() > 0 {
				n.rects[i] = c.bounds()
			}
			return true
		}
	}
	return false
}

func (t *Tree) collectEntries(n *node, out *[]Entry) {
	t.nodes--
	if n.leaf {
		for i := 0; i < n.count(); i++ {
			*out = append(*out, Entry{Rect: n.rects[i], ID: n.ids[i]})
		}
		return
	}
	for _, c := range n.children {
		t.collectEntries(c, out)
	}
}

// Validate checks structural invariants (bounding rectangles contain their
// subtrees, fill factors respected below the root, leaves at equal depth).
// It is used by tests and returns the first violation.
func (t *Tree) Validate() error {
	leafDepth := -1
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if !isRoot && n.count() > t.maxEntries {
			return fmt.Errorf("rtree: node with %d entries exceeds max %d", n.count(), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		for i, c := range n.children {
			if c.count() == 0 {
				return fmt.Errorf("rtree: empty internal child")
			}
			if !n.rects[i].ContainsRect(c.bounds()) {
				return fmt.Errorf("rtree: parent rect %+v does not contain child bounds %+v", n.rects[i], c.bounds())
			}
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}

package rtree

import (
	"math"
	"sort"
)

// BulkLoad builds a tree from entries using Sort-Tile-Recursive (STR)
// packing, which yields near-100% node fill and good query clustering for
// static point sets — exactly the workload of the RT baseline, whose index
// is built once over the whole check-in dataset.
func BulkLoad(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	leaves := strPack(entries, maxEntries)
	t.size = len(entries)
	t.nodes = 0
	level := make([]*node, len(leaves))
	copy(level, leaves)
	t.nodes += len(leaves)
	t.height = 1
	for len(level) > 1 {
		level = packLevel(level, maxEntries)
		t.nodes += len(level)
		t.height++
	}
	t.root = level[0]
	return t
}

// strPack tiles entries into leaf nodes.
func strPack(entries []Entry, maxEntries int) []*node {
	es := make([]Entry, len(entries))
	copy(es, entries)
	n := len(es)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * maxEntries

	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	var leaves []*node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		slice := es[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := min(ls+maxEntries, len(slice))
			leaf := &node{leaf: true}
			for _, e := range slice[ls:le] {
				leaf.rects = append(leaf.rects, e.Rect)
				leaf.ids = append(leaf.ids, e.ID)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packLevel groups nodes of one level into parents using the same STR tiling.
func packLevel(level []*node, maxEntries int) []*node {
	type nb struct {
		n *node
		b [2]float64 // center
	}
	items := make([]nb, len(level))
	for i, nd := range level {
		c := nd.bounds().Center()
		items[i] = nb{n: nd, b: [2]float64{c.X, c.Y}}
	}
	n := len(items)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * maxEntries

	sort.Slice(items, func(i, j int) bool { return items[i].b[0] < items[j].b[0] })
	var parents []*node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		slice := items[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].b[1] < slice[j].b[1] })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := min(ls+maxEntries, len(slice))
			p := &node{leaf: false}
			for _, it := range slice[ls:le] {
				p.rects = append(p.rects, it.n.bounds())
				p.children = append(p.children, it.n)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

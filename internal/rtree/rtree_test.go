package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"activitytraj/internal/geo"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		out[i] = Entry{Rect: geo.RectFromPoint(p), ID: int64(i)}
	}
	return out
}

func bruteSearch(entries []Entry, r geo.Rect) map[int64]bool {
	out := map[int64]bool{}
	for _, e := range entries {
		if e.Rect.Intersects(r) {
			out[e.ID] = true
		}
	}
	return out
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	entries := randomEntries(rng, 2000)
	tr := New(16)
	for _, e := range entries {
		tr.Insert(e)
	}
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after inserts: %v", err)
	}
	for trial := 0; trial < 50; trial++ {
		r := geo.NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		want := bruteSearch(entries, r)
		got := map[int64]bool{}
		tr.Search(r, func(e Entry) bool { got[e.ID] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("search %+v: got %d, want %d", r, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("search %+v missing %d", r, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := BulkLoad(randomEntries(rng, 500), 16)
	count := 0
	tr.Search(geo.NewRect(0, 0, 100, 100), func(Entry) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBulkLoadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomEntries(rng, 3000)
	tr := BulkLoad(entries, 32)
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid bulk-loaded tree: %v", err)
	}
	r := geo.NewRect(20, 20, 40, 45)
	want := bruteSearch(entries, r)
	got := 0
	tr.Search(r, func(e Entry) bool {
		if !want[e.ID] {
			t.Fatalf("unexpected entry %d", e.ID)
		}
		got++
		return true
	})
	if got != len(want) {
		t.Fatalf("got %d, want %d", got, len(want))
	}
	if tr.Height() < 2 || tr.NodeCount() < 10 {
		t.Fatalf("suspicious structure: height=%d nodes=%d", tr.Height(), tr.NodeCount())
	}
	if tr.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive")
	}
}

// TestNearestIterOrder: the incremental NN iterator must return every entry
// exactly once, in non-decreasing distance order, matching brute force.
func TestNearestIterOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	entries := randomEntries(rng, 1500)
	tr := BulkLoad(entries, 16)
	q := geo.Point{X: 50, Y: 50}

	type distID struct {
		d  float64
		id int64
	}
	want := make([]distID, len(entries))
	for i, e := range entries {
		want[i] = distID{e.Rect.MinDist(q), e.ID}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].d < want[j].d })

	it := tr.NewNearestIter(q)
	prev := -1.0
	for i := 0; ; i++ {
		if pd, ok := it.PeekDist(); ok && pd < prev {
			t.Fatalf("peek %v below last returned %v", pd, prev)
		}
		e, d, ok := it.Next()
		if !ok {
			if i != len(entries) {
				t.Fatalf("iterator ended after %d of %d", i, len(entries))
			}
			break
		}
		if d < prev {
			t.Fatalf("distance regression %v after %v", d, prev)
		}
		prev = d
		if absF(d-want[i].d) > 1e-9 {
			t.Fatalf("entry %d: distance %v, want %v", i, d, want[i].d)
		}
		_ = e
	}
	if it.NodesVisited() == 0 {
		t.Fatal("NodesVisited must be accounted")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries := randomEntries(rng, 800)
	tr := New(8)
	for _, e := range entries {
		tr.Insert(e)
	}
	// Delete a random half, verifying presence/absence via search.
	perm := rng.Perm(len(entries))
	for _, i := range perm[:400] {
		if !tr.Delete(entries[i]) {
			t.Fatalf("delete of %d failed", entries[i].ID)
		}
	}
	if tr.Len() != 400 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after deletes: %v", err)
	}
	deleted := map[int64]bool{}
	for _, i := range perm[:400] {
		deleted[entries[i].ID] = true
	}
	found := map[int64]bool{}
	tr.Search(geo.NewRect(-1, -1, 101, 101), func(e Entry) bool { found[e.ID] = true; return true })
	for _, e := range entries {
		if deleted[e.ID] == found[e.ID] {
			t.Fatalf("entry %d: deleted=%v found=%v", e.ID, deleted[e.ID], found[e.ID])
		}
	}
	// Deleting a non-existent entry returns false.
	if tr.Delete(Entry{Rect: geo.RectFromPoint(geo.Point{X: -50, Y: -50}), ID: 999999}) {
		t.Fatal("phantom delete must fail")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	it := tr.NewNearestIter(geo.Point{})
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree must yield nothing")
	}
	if _, ok := it.PeekDist(); ok {
		t.Fatal("empty tree has no frontier")
	}
	tr.Search(geo.NewRect(0, 0, 1, 1), func(Entry) bool {
		t.Fatal("empty tree search must not invoke callback")
		return true
	})
	if BulkLoad(nil, 8).Len() != 0 {
		t.Fatal("empty bulk load")
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

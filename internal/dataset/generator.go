// Package dataset synthesizes Foursquare-style activity trajectory
// datasets. The paper evaluates on crawled check-in histories of Los
// Angeles and New York (Table IV); those crawls are not redistributable, so
// this generator reproduces the properties the algorithms are sensitive to:
//
//   - spatial clustering of venues (Gaussian mixture around city centers),
//   - a heavily skewed activity vocabulary (Zipf-distributed draws),
//   - venues with coherent activity profiles (check-ins at a venue sample
//     from its profile, correlating activities with locations),
//   - user trajectories as venue walks biased to the user's home cluster,
//   - the published cardinalities (trajectories, check-in points, activity
//     tokens, distinct activities), preserved proportionally at any scale.
//
// Everything is driven by a single seed; generation is fully deterministic.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
)

// Config parameterizes generation.
type Config struct {
	Name            string
	Seed            int64
	NumTrajectories int
	NumVenues       int
	// VocabSize is the number of distinct activity words available; the
	// realized distinct count is lower and reported by Dataset.Stats.
	VocabSize int
	// Categories is the size of the head of the vocabulary: frequent,
	// category-like words ("food", "coffee", "nightlife") every venue
	// profile samples from. Real tip vocabularies are dominated by such
	// words, which is what makes multi-activity queries answerable at all.
	Categories int
	// ZipfS is the Zipf exponent for tail-word popularity (> 1).
	ZipfS float64
	// CatZipfS is the Zipf exponent for category popularity (> 1).
	CatZipfS float64
	// RegionW and RegionH are the city extents in kilometres.
	RegionW, RegionH float64
	// Clusters is the number of venue clusters (neighbourhoods).
	Clusters int
	// ClusterStdKm is the venue scatter around a cluster center.
	ClusterStdKm float64
	// CatsPerVenueMin/Max bound the category words per venue profile.
	CatsPerVenueMin, CatsPerVenueMax int
	// VenueActsMin/Max bound the tail words per venue profile.
	VenueActsMin, VenueActsMax int
	// TrajLenMean/Std shape the (clipped normal) points-per-trajectory
	// distribution; the minimum is 2.
	TrajLenMean, TrajLenStd float64
	// CatCheckinProb is the probability a check-in mentions each category
	// word of the venue; TailCheckinProb likewise for tail words. At least
	// one activity is always mentioned.
	CatCheckinProb, TailCheckinProb float64
	// HomeBias is the probability a walk step stays in the home cluster.
	HomeBias float64
}

func (c Config) validated() (Config, error) {
	if c.NumTrajectories <= 0 || c.NumVenues <= 0 || c.VocabSize <= 0 {
		return c, fmt.Errorf("dataset: cardinalities must be positive (%+v)", c)
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.05
	}
	if c.CatZipfS <= 1 {
		c.CatZipfS = 1.1
	}
	if c.Categories <= 0 {
		c.Categories = 60
	}
	if c.Categories >= c.VocabSize {
		c.Categories = c.VocabSize / 2
	}
	if c.RegionW <= 0 {
		c.RegionW = 60
	}
	if c.RegionH <= 0 {
		c.RegionH = 60
	}
	if c.Clusters <= 0 {
		c.Clusters = 12
	}
	if c.ClusterStdKm <= 0 {
		c.ClusterStdKm = 2.5
	}
	if c.CatsPerVenueMin <= 0 {
		c.CatsPerVenueMin = 1
	}
	if c.CatsPerVenueMax < c.CatsPerVenueMin {
		c.CatsPerVenueMax = c.CatsPerVenueMin + 1
	}
	if c.VenueActsMin <= 0 {
		c.VenueActsMin = 2
	}
	if c.VenueActsMax < c.VenueActsMin {
		c.VenueActsMax = c.VenueActsMin + 2
	}
	if c.TrajLenMean <= 0 {
		c.TrajLenMean = 20
	}
	if c.TrajLenStd <= 0 {
		c.TrajLenStd = c.TrajLenMean / 2
	}
	if c.CatCheckinProb <= 0 || c.CatCheckinProb > 1 {
		c.CatCheckinProb = 0.9
	}
	if c.TailCheckinProb <= 0 || c.TailCheckinProb > 1 {
		c.TailCheckinProb = 0.35
	}
	if c.HomeBias <= 0 || c.HomeBias > 1 {
		c.HomeBias = 0.8
	}
	return c, nil
}

type venue struct {
	loc     geo.Point
	cluster int
	cats    []uint32 // category activity ranks (head of the vocabulary)
	tails   []uint32 // tail activity ranks
}

// Generate produces a dataset per cfg.
func Generate(cfg Config) (*trajectory.Dataset, error) {
	cfg, err := cfg.validated()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	catZipf := rand.NewZipf(rng, cfg.CatZipfS, 1, uint64(cfg.Categories-1))
	tailZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-cfg.Categories-1))

	// Cluster centers with population weights.
	centers := make([]geo.Point, cfg.Clusters)
	weights := make([]float64, cfg.Clusters)
	var wsum float64
	for i := range centers {
		centers[i] = geo.Point{
			X: rng.Float64() * cfg.RegionW,
			Y: rng.Float64() * cfg.RegionH,
		}
		weights[i] = 0.2 + rng.Float64()
		wsum += weights[i]
	}
	pickCluster := func() int {
		r := rng.Float64() * wsum
		for i, w := range weights {
			if r -= w; r <= 0 {
				return i
			}
		}
		return cfg.Clusters - 1
	}

	// Venues.
	venues := make([]venue, cfg.NumVenues)
	byCluster := make([][]int, cfg.Clusters)
	for i := range venues {
		c := pickCluster()
		v := venue{
			cluster: c,
			loc: geo.Point{
				X: clamp(centers[c].X+rng.NormFloat64()*cfg.ClusterStdKm, 0, cfg.RegionW),
				Y: clamp(centers[c].Y+rng.NormFloat64()*cfg.ClusterStdKm, 0, cfg.RegionH),
			},
		}
		nc := cfg.CatsPerVenueMin + rng.Intn(cfg.CatsPerVenueMax-cfg.CatsPerVenueMin+1)
		nt := cfg.VenueActsMin + rng.Intn(cfg.VenueActsMax-cfg.VenueActsMin+1)
		seen := make(map[uint32]bool, nc+nt)
		for len(v.cats) < nc {
			a := uint32(catZipf.Uint64())
			if !seen[a] {
				seen[a] = true
				v.cats = append(v.cats, a)
			}
		}
		for len(v.tails) < nt {
			a := uint32(cfg.Categories) + uint32(tailZipf.Uint64())
			if !seen[a] {
				seen[a] = true
				v.tails = append(v.tails, a)
			}
		}
		venues[i] = v
		byCluster[c] = append(byCluster[c], i)
	}

	// Trajectories over activity ranks; the real vocabulary is assigned
	// afterwards from realized frequencies so IDs are frequency-ranked,
	// as the TAS construction requires.
	type rawPoint struct {
		loc   geo.Point
		ranks []uint32
	}
	rawTrajs := make([][]rawPoint, cfg.NumTrajectories)
	rankCount := make(map[uint32]int64)
	for ti := range rawTrajs {
		home := pickCluster()
		n := int(cfg.TrajLenMean + rng.NormFloat64()*cfg.TrajLenStd)
		if n < 2 {
			n = 2
		}
		pts := make([]rawPoint, 0, n)
		for p := 0; p < n; p++ {
			c := home
			if rng.Float64() > cfg.HomeBias {
				c = pickCluster()
			}
			vs := byCluster[c]
			if len(vs) == 0 {
				vs = byCluster[home]
			}
			if len(vs) == 0 {
				// Degenerate tiny configs: fall back to any venue.
				vs = []int{rng.Intn(len(venues))}
			}
			v := venues[vs[rng.Intn(len(vs))]]
			var ranks []uint32
			for _, a := range v.cats {
				if rng.Float64() < cfg.CatCheckinProb {
					ranks = append(ranks, a)
				}
			}
			for _, a := range v.tails {
				if rng.Float64() < cfg.TailCheckinProb {
					ranks = append(ranks, a)
				}
			}
			if len(ranks) == 0 {
				ranks = append(ranks, v.cats[rng.Intn(len(v.cats))])
			}
			for _, a := range ranks {
				rankCount[a]++
			}
			pts = append(pts, rawPoint{loc: v.loc, ranks: ranks})
		}
		rawTrajs[ti] = pts
	}

	// Vocabulary from realized frequencies.
	vb := trajectory.NewVocabularyBuilder()
	for rank, n := range rankCount {
		vb.AddN(rankName(rank), n)
	}
	vocab := vb.Build()

	ds := &trajectory.Dataset{
		Name:  cfg.Name,
		Vocab: vocab,
		Trajs: make([]trajectory.Trajectory, cfg.NumTrajectories),
	}
	for ti, pts := range rawTrajs {
		tr := trajectory.Trajectory{ID: trajectory.TrajID(ti), Pts: make([]trajectory.Point, len(pts))}
		for pi, rp := range pts {
			ids := make([]trajectory.ActivityID, 0, len(rp.ranks))
			for _, rank := range rp.ranks {
				ids = append(ids, vocab.MustID(rankName(rank)))
			}
			tr.Pts[pi] = trajectory.Point{Loc: rp.loc, Acts: trajectory.NewActivitySet(ids...)}
		}
		ds.Trajs[ti] = tr
	}
	return ds, nil
}

// MustGenerate is Generate for known-good configurations.
func MustGenerate(cfg Config) *trajectory.Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

func rankName(rank uint32) string { return fmt.Sprintf("act%06d", rank) }

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

package dataset

import (
	"testing"

	"activitytraj/internal/trajectory"
)

func genSmall(t testing.TB, seed int64) *trajectory.Dataset {
	t.Helper()
	ds, err := Generate(Config{
		Name: "t", Seed: seed, NumTrajectories: 300, NumVenues: 700,
		VocabSize: 400, RegionW: 30, RegionH: 30, Clusters: 6, TrajLenMean: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	a := genSmall(t, 7)
	if err := a.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	b := genSmall(t, 7)
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	// Deep determinism: first trajectory must match point for point.
	ta, tb := a.Trajs[0], b.Trajs[0]
	if len(ta.Pts) != len(tb.Pts) {
		t.Fatalf("trajectory shapes differ")
	}
	for i := range ta.Pts {
		if ta.Pts[i].Loc != tb.Pts[i].Loc || !ta.Pts[i].Acts.Equal(tb.Pts[i].Acts) {
			t.Fatalf("point %d differs across identical seeds", i)
		}
	}
	c := genSmall(t, 8)
	if c.Stats() == sa {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := genSmall(t, 3)
	st := ds.Stats()
	if st.Trajectories != 300 {
		t.Fatalf("trajectories = %d", st.Trajectories)
	}
	if st.AvgPointsPerTraj < 5 || st.AvgPointsPerTraj > 30 {
		t.Fatalf("avg points/traj = %v, want near 15", st.AvgPointsPerTraj)
	}
	if st.AvgActsPerPoint < 1 || st.AvgActsPerPoint > 5 {
		t.Fatalf("avg acts/point = %v", st.AvgActsPerPoint)
	}
	b := ds.Bounds()
	if b.Width() > 30.01 || b.Height() > 30.01 {
		t.Fatalf("points escape the region: %+v", b)
	}
	// Frequency ranking: ID 0 must be the most frequent activity.
	if ds.Vocab.Freq(0) < ds.Vocab.Freq(trajectory.ActivityID(ds.Vocab.Size()-1)) {
		t.Fatal("vocabulary not frequency-ranked")
	}
}

// TestHeadDominance: the category head of the vocabulary must carry a
// large share of tokens — the property that makes conjunctive multi-point
// queries answerable (see DESIGN.md calibration notes).
func TestHeadDominance(t *testing.T) {
	ds := genSmall(t, 9)
	var head, total int64
	for id := 0; id < ds.Vocab.Size(); id++ {
		f := ds.Vocab.Freq(trajectory.ActivityID(id))
		total += f
		if id < 60 {
			head += f
		}
	}
	if total == 0 || float64(head)/float64(total) < 0.4 {
		t.Fatalf("head share = %v, want >= 0.4", float64(head)/float64(total))
	}
}

func TestPresetCalibration(t *testing.T) {
	for _, preset := range []struct {
		name string
		cfg  Config
		// Table IV ratios at any scale.
		tokensPerTraj float64
	}{
		{"LA", LA(0.02), float64(LAActivities) / float64(LATrajectories)},
		{"NY", NY(0.02), float64(NYActivities) / float64(NYTrajectories)},
	} {
		ds, err := Generate(preset.cfg)
		if err != nil {
			t.Fatalf("%s: %v", preset.name, err)
		}
		st := ds.Stats()
		got := float64(st.ActivityTokens) / float64(st.Trajectories)
		if got < preset.tokensPerTraj*0.7 || got > preset.tokensPerTraj*1.3 {
			t.Errorf("%s: tokens/trajectory = %.1f, Table IV target %.1f (±30%%)",
				preset.name, got, preset.tokensPerTraj)
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", preset.name, err)
		}
	}
}

func TestScalePreset(t *testing.T) {
	full := NY(1)
	if full.NumTrajectories != NYTrajectories {
		t.Fatalf("scale 1 must keep Table IV cardinality, got %d", full.NumTrajectories)
	}
	tenth := NY(0.1)
	if tenth.NumTrajectories != NYTrajectories/10 {
		t.Fatalf("scale 0.1 trajectories = %d", tenth.NumTrajectories)
	}
	if tenth.VocabSize >= full.VocabSize || tenth.VocabSize < full.VocabSize/20 {
		t.Fatalf("vocab scaling suspicious: %d vs %d", tenth.VocabSize, full.VocabSize)
	}
	// Out-of-range scales clamp to 1.
	if LA(-3).NumTrajectories != LATrajectories || LA(7).NumTrajectories != LATrajectories {
		t.Fatal("invalid scales must clamp to full size")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
	if _, err := Generate(Config{NumTrajectories: -1, NumVenues: 10, VocabSize: 10}); err == nil {
		t.Fatal("negative cardinality must be rejected")
	}
}

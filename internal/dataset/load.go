package dataset

import (
	"fmt"
	"os"
	"strings"

	"activitytraj/internal/trajectory"
)

// LoadOrGenerate is the dataset-acquisition path shared by the command-line
// tools: when path is non-empty it reads an atsqgen-written dataset file,
// otherwise it generates the named preset ("la" or "ny") at the given
// scale.
func LoadOrGenerate(path, preset string, scale float64) (*trajectory.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open: %w", err)
		}
		defer f.Close()
		ds, err := trajectory.ReadDataset(f)
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", path, err)
		}
		return ds, nil
	}
	var cfg Config
	switch strings.ToLower(preset) {
	case "la":
		cfg = LA(scale)
	case "ny":
		cfg = NY(scale)
	default:
		return nil, fmt.Errorf("unknown preset %q (want la or ny)", preset)
	}
	return Generate(cfg)
}

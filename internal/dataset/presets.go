package dataset

import (
	"fmt"
	"math"
)

// Table IV of the paper — the cardinalities the presets are calibrated to.
const (
	LATrajectories = 31557
	LAVenues       = 215614
	LAActivities   = 3164124
	LADistinctActs = 87567

	NYTrajectories = 49027
	NYVenues       = 206416
	NYActivities   = 2056785
	NYDistinctActs = 64649
)

// LA returns the Los Angeles preset scaled by scale (1.0 reproduces the
// full Table IV cardinalities; experiments typically run at 0.05–0.2 to
// keep build times reasonable on a laptop). LA check-ins average ~100
// activity tokens per trajectory over a sprawling region.
func LA(scale float64) Config {
	return scalePreset(Config{
		Name:            "LA",
		Seed:            4021,
		NumTrajectories: LATrajectories,
		NumVenues:       LAVenues,
		VocabSize:       LADistinctActs * 11 / 10,
		Categories:      80,
		ZipfS:           1.04,
		CatZipfS:        1.1,
		RegionW:         90,
		RegionH:         70,
		Clusters:        24,
		ClusterStdKm:    1.5,
		CatsPerVenueMin: 1,
		CatsPerVenueMax: 2,
		VenueActsMin:    2,
		VenueActsMax:    4,
		TrajLenMean:     42, // ≈ 100 tokens/trajectory at ~2.4 acts/point
		TrajLenStd:      20,
		CatCheckinProb:  0.9,
		TailCheckinProb: 0.35,
		HomeBias:        0.8,
	}, scale)
}

// NY returns the New York preset: more trajectories, shorter ones
// (~42 tokens each), on a denser, smaller region.
func NY(scale float64) Config {
	return scalePreset(Config{
		Name:            "NY",
		Seed:            7177,
		NumTrajectories: NYTrajectories,
		NumVenues:       NYVenues,
		VocabSize:       NYDistinctActs * 11 / 10,
		Categories:      60,
		ZipfS:           1.05,
		CatZipfS:        1.1,
		RegionW:         60,
		RegionH:         50,
		Clusters:        18,
		ClusterStdKm:    1.2,
		CatsPerVenueMin: 1,
		CatsPerVenueMax: 2,
		VenueActsMin:    2,
		VenueActsMax:    3,
		TrajLenMean:     19, // ≈ 42 tokens/trajectory at ~2.2 acts/point
		TrajLenStd:      9,
		CatCheckinProb:  0.9,
		TailCheckinProb: 0.35,
		HomeBias:        0.8,
	}, scale)
}

func scalePreset(c Config, scale float64) Config {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if scale == 1 {
		return c
	}
	c.Name = fmt.Sprintf("%s@%.2g", c.Name, scale)
	c.NumTrajectories = atLeast(int(float64(c.NumTrajectories)*scale), 50)
	c.NumVenues = atLeast(int(float64(c.NumVenues)*scale), 200)
	// Distinct-activity counts grow sublinearly in token volume (Heaps'
	// law); a 0.8 exponent keeps the realized distinct count tracking the
	// scaled Table IV targets.
	c.VocabSize = atLeast(int(float64(c.VocabSize)*math.Pow(scale, 0.8)), 100)
	return c
}

func atLeast(v, floor int) int {
	if v < floor {
		return floor
	}
	return v
}

package invindex

import (
	"sort"

	"activitytraj/internal/trajectory"
)

// Index is an in-memory inverted index from activity ID to a posting list.
// It backs the IL baseline (activity → trajectory IDs) and the in-memory
// levels of the GAT HICL (activity → cell codes).
type Index struct {
	lists map[trajectory.ActivityID]PostingList
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{lists: make(map[trajectory.ActivityID]PostingList)}
}

// Add records id under activity a. IDs may be added in any order; Freeze
// must be called before queries if out-of-order additions were made.
func (ix *Index) Add(a trajectory.ActivityID, id uint32) {
	ix.lists[a] = append(ix.lists[a], id)
}

// Freeze normalizes every posting list (sort + dedup). It is idempotent.
func (ix *Index) Freeze() {
	for a, l := range ix.lists {
		ix.lists[a] = FromUnsorted(l)
	}
}

// Get returns the posting list for a (nil when absent). The returned list
// is shared; callers must not modify it.
func (ix *Index) Get(a trajectory.ActivityID) PostingList { return ix.lists[a] }

// Has reports whether the index has any postings for a.
func (ix *Index) Has(a trajectory.ActivityID) bool { return len(ix.lists[a]) > 0 }

// Activities returns the sorted list of activities present in the index.
func (ix *Index) Activities() []trajectory.ActivityID {
	out := make([]trajectory.ActivityID, 0, len(ix.lists))
	for a := range ix.lists {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of distinct activities indexed.
func (ix *Index) Len() int { return len(ix.lists) }

// MemBytes approximates the heap footprint of the index.
func (ix *Index) MemBytes() int64 {
	var n int64
	for _, l := range ix.lists {
		n += 16 + l.MemBytes() // map entry overhead approximation + list
	}
	return n
}

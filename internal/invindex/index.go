package invindex

import (
	"slices"

	"activitytraj/internal/trajectory"
)

// Index is an in-memory inverted index from activity ID to a hybrid posting
// Set. It backs the IL baseline (activity → trajectory IDs) and the
// in-memory levels of the GAT HICL (activity → cell codes). Pending
// additions accumulate in flat buffers; Freeze compiles them into Sets.
type Index struct {
	pending map[trajectory.ActivityID][]uint32
	sets    map[trajectory.ActivityID]*Set
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		pending: make(map[trajectory.ActivityID][]uint32),
		sets:    make(map[trajectory.ActivityID]*Set),
	}
}

// Add records id under activity a. IDs may be added in any order; Freeze
// must be called before queries.
func (ix *Index) Add(a trajectory.ActivityID, id uint32) {
	ix.pending[a] = append(ix.pending[a], id)
}

// Freeze compiles every pending addition into the activity's Set. It is
// idempotent and must precede concurrent reads.
func (ix *Index) Freeze() {
	for a, ids := range ix.pending {
		if s := ix.sets[a]; s != nil {
			for _, id := range ids {
				s.Insert(id)
			}
		} else {
			ix.sets[a] = SetFromUnsorted(ids)
		}
		delete(ix.pending, a)
	}
}

// Get returns the posting set for a (nil when absent). The returned set is
// shared; callers must not modify it.
func (ix *Index) Get(a trajectory.ActivityID) *Set { return ix.sets[a] }

// Has reports whether the index has any postings for a.
func (ix *Index) Has(a trajectory.ActivityID) bool { return ix.sets[a].Len() > 0 }

// Activities returns the sorted list of activities present in the index.
func (ix *Index) Activities() []trajectory.ActivityID {
	out := make([]trajectory.ActivityID, 0, len(ix.sets))
	for a := range ix.sets {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of distinct activities indexed.
func (ix *Index) Len() int { return len(ix.sets) }

// MemBytes approximates the heap footprint of the index.
func (ix *Index) MemBytes() int64 {
	var n int64
	for _, s := range ix.sets {
		n += 16 + s.MemBytes() // map entry overhead approximation + set
	}
	return n
}

package invindex

import (
	"testing"
	"testing/quick"

	"activitytraj/internal/trajectory"
)

func TestFromUnsorted(t *testing.T) {
	p := FromUnsorted([]uint32{5, 1, 5, 3, 1})
	want := PostingList{1, 3, 5}
	if len(p) != len(want) {
		t.Fatalf("FromUnsorted = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("FromUnsorted = %v, want %v", p, want)
		}
	}
}

func TestAppend(t *testing.T) {
	var p PostingList
	p = p.Append(1).Append(1).Append(4).Append(4).Append(9)
	if len(p) != 3 || p[0] != 1 || p[1] != 4 || p[2] != 9 {
		t.Fatalf("Append chain = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Append must panic")
		}
	}()
	p.Append(2)
}

func plFromBytes(bs []byte) PostingList {
	ids := make([]uint32, len(bs))
	for i, b := range bs {
		ids[i] = uint32(b % 48)
	}
	return FromUnsorted(ids)
}

// TestSetOpsProperty checks Intersect/Union against map references.
func TestSetOpsProperty(t *testing.T) {
	f := func(ab, bb []byte) bool {
		a, b := plFromBytes(ab), plFromBytes(bb)
		in := a.Intersect(b)
		un := a.Union(b)
		ref := map[uint32]int{}
		for _, x := range a {
			ref[x] |= 1
		}
		for _, x := range b {
			ref[x] |= 2
		}
		wantIn, wantUn := 0, len(ref)
		for _, m := range ref {
			if m == 3 {
				wantIn++
			}
		}
		if len(in) != wantIn || len(un) != wantUn {
			return false
		}
		for _, x := range in {
			if ref[x] != 3 {
				return false
			}
		}
		for i := 1; i < len(un); i++ {
			if un[i-1] >= un[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectMany(t *testing.T) {
	lists := []PostingList{
		{1, 2, 3, 4, 5, 6},
		{2, 4, 6, 8},
		{4, 6, 10},
	}
	got := IntersectMany(lists)
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Fatalf("IntersectMany = %v", got)
	}
	if IntersectMany(nil) != nil {
		t.Fatal("empty input → nil")
	}
	if got := IntersectMany([]PostingList{{1, 2}, nil}); len(got) != 0 {
		t.Fatalf("intersect with empty = %v", got)
	}
}

// TestCodecRoundTripProperty: AppendEncoded/DecodePostings round-trips.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(bs []byte) bool {
		p := plFromBytes(bs)
		buf := p.AppendEncoded(nil)
		// Append a sentinel to verify consumed-byte accounting.
		buf = append(buf, 0xAB, 0xCD)
		got, used, err := DecodePostings(buf)
		if err != nil || used != len(buf)-2 {
			return false
		}
		if len(got) != len(p) {
			return false
		}
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := PostingList{10, 20, 30}
	buf := p.AppendEncoded(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodePostings(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestIndex(t *testing.T) {
	ix := NewIndex()
	ix.Add(3, 7)
	ix.Add(3, 2)
	ix.Add(3, 7)
	ix.Add(9, 1)
	ix.Freeze()
	if got := ix.Get(3).Elements(); len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("Get(3) = %v", got)
	}
	// Incremental re-freeze: additions after a Freeze land in the same sets.
	ix.Add(3, 5)
	ix.Freeze()
	if got := ix.Get(3).Elements(); len(got) != 3 || got[1] != 5 {
		t.Fatalf("Get(3) after re-freeze = %v", got)
	}
	if !ix.Has(9) || ix.Has(4) {
		t.Fatal("Has misclassified")
	}
	acts := ix.Activities()
	if len(acts) != 2 || acts[0] != trajectory.ActivityID(3) || acts[1] != trajectory.ActivityID(9) {
		t.Fatalf("Activities = %v", acts)
	}
	if ix.Len() != 2 || ix.MemBytes() <= 0 {
		t.Fatal("Len/MemBytes broken")
	}
}

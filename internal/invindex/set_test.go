package invindex

import (
	"bytes"
	"math/rand"
	"testing"
)

// The Set container is correct exactly when it is indistinguishable from
// the naive PostingList under every operation. These tests pit the two
// against each other over random and adversarial dense/sparse inputs.

func randomIDs(rng *rand.Rand, n int, span uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % span
	}
	return out
}

// denseRun returns an adversarial dense input: a contiguous run with a few
// holes, which forces bitmap containers.
func denseRun(start uint32, n int, holeEvery int) []uint32 {
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if holeEvery > 0 && i%holeEvery == 0 {
			continue
		}
		out = append(out, start+uint32(i))
	}
	return out
}

func checkEquivalent(t *testing.T, name string, ids []uint32) {
	t.Helper()
	ref := FromUnsorted(ids)
	set := SetFromUnsorted(ids)
	if set.Len() != len(ref) {
		t.Fatalf("%s: Len %d != %d", name, set.Len(), len(ref))
	}
	if got := set.Elements(); !equalU32(got, ref) {
		t.Fatalf("%s: Elements mismatch (%d vs %d entries)", name, len(got), len(ref))
	}
	// Contains over members and near-misses.
	for _, id := range ref {
		if !set.Contains(id) {
			t.Fatalf("%s: Contains(%d) = false for member", name, id)
		}
	}
	probes := []uint32{0, 1, 1 << 16, 1<<16 - 1, ^uint32(0)}
	if len(ref) > 0 {
		probes = append(probes, ref[0]-1, ref[len(ref)-1]+1)
	}
	for _, id := range probes {
		if set.Contains(id) != ref.Contains(id) {
			t.Fatalf("%s: Contains(%d) disagrees", name, id)
		}
	}
	// Mask4 over aligned bases spanning the set.
	for _, id := range probes {
		base := id &^ 3
		var want uint32
		for b := uint32(0); b < 4; b++ {
			if ref.Contains(base + b) {
				want |= 1 << b
			}
		}
		if got := set.Mask4(base); got != want {
			t.Fatalf("%s: Mask4(%d) = %04b, want %04b", name, base, got, want)
		}
	}
	for _, id := range ref {
		base := id &^ 3
		var want uint32
		for b := uint32(0); b < 4; b++ {
			if ref.Contains(base + b) {
				want |= 1 << b
			}
		}
		if got := set.Mask4(base); got != want {
			t.Fatalf("%s: Mask4(%d) = %04b, want %04b", name, base, got, want)
		}
	}
	// Codec round trip.
	enc := set.AppendEncoded(nil)
	dec, used, err := DecodeSet(enc)
	if err != nil {
		t.Fatalf("%s: DecodeSet: %v", name, err)
	}
	if used != len(enc) {
		t.Fatalf("%s: DecodeSet consumed %d of %d bytes", name, used, len(enc))
	}
	if !equalU32(dec.Elements(), ref) {
		t.Fatalf("%s: codec round trip lost elements", name)
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSetEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := map[string][]uint32{
		"empty":            {},
		"single":           {7},
		"sparse":           randomIDs(rng, 200, 1<<30),
		"one-container":    randomIDs(rng, 500, 1<<14),
		"dense-bitmap":     denseRun(100, 20000, 7),
		"dense-aligned":    denseRun(0, 70000, 0),
		"cross-key":        denseRun(1<<16-100, 200, 3),
		"threshold-minus":  denseRun(0, setArrayMax-1, 0),
		"threshold-exact":  denseRun(0, setArrayMax, 0),
		"threshold-plus":   denseRun(0, setArrayMax+1, 0),
		"high-keys":        randomIDs(rng, 300, ^uint32(0)),
		"max-value":        {^uint32(0), ^uint32(0) - 1, 0},
		"duplicates-heavy": append(randomIDs(rng, 100, 50), randomIDs(rng, 100, 50)...),
	}
	for name, ids := range cases {
		checkEquivalent(t, name, ids)
	}
}

func TestSetInsertEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ref PostingList
	set := NewSet()
	// Mixed ascending / random inserts, crossing the bitmap threshold.
	for i := 0; i < 10000; i++ {
		var id uint32
		if i%3 == 0 {
			id = rng.Uint32() % (1 << 18)
		} else {
			id = uint32(i * 2)
		}
		wantNew := !ref.Contains(id)
		ref = ref.Insert(id)
		if got := set.Insert(id); got != wantNew {
			t.Fatalf("Insert(%d) reported new=%v, want %v", id, got, wantNew)
		}
	}
	if !equalU32(set.Elements(), ref) {
		t.Fatalf("after inserts: %d elements vs %d", set.Len(), len(ref))
	}
}

func TestSetAndOrEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][]uint32{
		{},
		randomIDs(rng, 300, 1<<12),
		randomIDs(rng, 300, 1<<28),
		denseRun(50, 9000, 5),
		denseRun(1<<20, 70000, 0),
	}
	for i, aIDs := range shapes {
		for j, bIDs := range shapes {
			aRef, bRef := FromUnsorted(aIDs), FromUnsorted(bIDs)
			aSet, bSet := SetFromUnsorted(aIDs), SetFromUnsorted(bIDs)
			if got, want := aSet.And(bSet).Elements(), aRef.Intersect(bRef); !equalU32(got, want) {
				t.Fatalf("And(%d,%d): %d elements, want %d", i, j, len(got), len(want))
			}
			if got, want := aSet.Or(bSet).Elements(), aRef.Union(bRef); !equalU32(got, want) {
				t.Fatalf("Or(%d,%d): %d elements, want %d", i, j, len(got), len(want))
			}
		}
	}
}

func TestIntersectSetsMatchesIntersectMany(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(4)
		lists := make([]PostingList, k)
		sets := make([]*Set, k)
		for i := range lists {
			var ids []uint32
			if rng.Intn(2) == 0 {
				ids = denseRun(uint32(rng.Intn(1000)), 5000+rng.Intn(5000), rng.Intn(4))
			} else {
				ids = randomIDs(rng, 500, 1<<13)
			}
			lists[i] = FromUnsorted(ids)
			sets[i] = SetFromSorted(lists[i])
		}
		want := IntersectMany(lists)
		got := IntersectSets(sets)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !equalU32(got, want) {
			t.Fatalf("trial %d: IntersectSets %d elements, want %d", trial, len(got), len(want))
		}
	}
}

func TestIntersectGallopMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := FromUnsorted(randomIDs(rng, 20, 1<<20))
	big := FromUnsorted(append(randomIDs(rng, 5000, 1<<20), small[:10]...))
	want := map[uint32]bool{}
	for _, v := range small {
		if big.Contains(v) {
			want[v] = true
		}
	}
	got := small.Intersect(big)
	if len(got) != len(want) {
		t.Fatalf("gallop intersect: %d elements, want %d", len(got), len(want))
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("gallop intersect: unexpected %d", v)
		}
	}
	// Symmetry: argument order must not matter.
	if !equalU32(got, big.Intersect(small)) {
		t.Fatal("gallop intersect not symmetric")
	}
}

func TestDecodeSetCorrupt(t *testing.T) {
	valid := SetFromSorted(PostingList{1, 2, 3, 70000}).AppendEncoded(nil)
	cases := map[string][]byte{
		"empty-truncated":  {0x80},
		"missing tag":      {0x01, 0x00},
		"bad tag":          {0x01, 0x00, 0x07, 0x01, 0x01},
		"truncated bitmap": {0x01, 0x00, 0x01, 0x05},
		"truncated array":  {0x01, 0x00, 0x00, 0x05, 0x01},
		"value overflow":   {0x01, 0x00, 0x00, 0x02, 0xFF, 0xFF, 0x07, 0xFF, 0xFF, 0x07},
		"unordered keys":   {0x02, 0x05, 0x00, 0x01, 0x01, 0x03, 0x00, 0x01, 0x01},
		"oversized key":    {0x01, 0xFF, 0xFF, 0x07, 0x00, 0x01, 0x01},
		"cut valid":        valid[:len(valid)-1],
	}
	for name, blob := range cases {
		if _, _, err := DecodeSet(blob); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if s, _, err := DecodeSet(valid); err != nil || s.Len() != 4 {
		t.Fatalf("valid stream failed: %v (%d)", err, s.Len())
	}
}

// FuzzSetVsPostingList decodes two ID lists from raw bytes and checks that
// Set and PostingList agree on every operation.
func FuzzSetVsPostingList(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0}, []byte{})
	f.Add(bytes.Repeat([]byte{3}, 64), bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		decode := func(raw []byte) []uint32 {
			var out []uint32
			for len(raw) >= 3 {
				// 24-bit values keep inputs inside a few containers so dense
				// and cross-key shapes actually occur.
				out = append(out, uint32(raw[0])|uint32(raw[1])<<8|uint32(raw[2])<<16)
				raw = raw[3:]
			}
			return out
		}
		aIDs, bIDs := decode(aRaw), decode(bRaw)
		aRef, bRef := FromUnsorted(aIDs), FromUnsorted(bIDs)
		aSet, bSet := SetFromUnsorted(aIDs), SetFromUnsorted(bIDs)
		if !equalU32(aSet.Elements(), aRef) {
			t.Fatal("Elements mismatch")
		}
		for _, id := range bIDs {
			if aSet.Contains(id) != aRef.Contains(id) {
				t.Fatalf("Contains(%d) disagrees", id)
			}
			base := id &^ 3
			var want uint32
			for b := uint32(0); b < 4; b++ {
				if aRef.Contains(base + b) {
					want |= 1 << b
				}
			}
			if aSet.Mask4(base) != want {
				t.Fatalf("Mask4(%d) disagrees", base)
			}
		}
		if !equalU32(aSet.And(bSet).Elements(), aRef.Intersect(bRef)) {
			t.Fatal("And disagrees with Intersect")
		}
		if !equalU32(aSet.Or(bSet).Elements(), aRef.Union(bRef)) {
			t.Fatal("Or disagrees with Union")
		}
		ins := aSet.clone()
		insRef := slices_Clone(aRef)
		for _, id := range bIDs {
			ins.Insert(id)
			insRef = insRef.Insert(id)
		}
		if !equalU32(ins.Elements(), insRef) {
			t.Fatal("Insert disagrees")
		}
		enc := aSet.AppendEncoded(nil)
		dec, used, err := DecodeSet(enc)
		if err != nil || used != len(enc) || !equalU32(dec.Elements(), aRef) {
			t.Fatalf("codec round trip: %v", err)
		}
	})
}

func slices_Clone(p PostingList) PostingList {
	out := make(PostingList, len(p))
	copy(out, p)
	return out
}

// FuzzDecodeSet feeds arbitrary bytes to the Set decoder: it must reject or
// decode, never panic, and an accepted stream must re-encode to a set with
// consistent cardinality.
func FuzzDecodeSet(f *testing.F) {
	f.Add(SetFromSorted(PostingList{1, 5, 65536, 200000}).AppendEncoded(nil))
	f.Add([]byte{0x01, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, _, err := DecodeSet(raw)
		if err != nil {
			return
		}
		if got := len(s.Elements()); got != s.Len() {
			t.Fatalf("decoded set reports Len %d but has %d elements", s.Len(), got)
		}
	})
}

var sinkList PostingList
var sinkSet *Set
var sinkBool bool

// Dense inputs: two long overlapping runs — the shape where bitmap
// containers win by an order of magnitude.
func denseBenchInputs() (PostingList, PostingList) {
	a := FromUnsorted(denseRun(0, 200000, 3))
	b := FromUnsorted(denseRun(50000, 200000, 2))
	return a, b
}

func BenchmarkIntersectDenseList(b *testing.B) {
	p, q := denseBenchInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkList = p.Intersect(q)
	}
}

func BenchmarkIntersectDenseSet(b *testing.B) {
	p, q := denseBenchInputs()
	ps, qs := SetFromSorted(p), SetFromSorted(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSet = ps.And(qs)
	}
}

func BenchmarkIntersectSparseList(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := FromUnsorted(randomIDs(rng, 100, 1<<24))
	q := FromUnsorted(randomIDs(rng, 100000, 1<<24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkList = p.Intersect(q)
	}
}

func BenchmarkIntersectSparseSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := SetFromUnsorted(randomIDs(rng, 100, 1<<24))
	qs := SetFromUnsorted(randomIDs(rng, 100000, 1<<24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSet = ps.And(qs)
	}
}

func BenchmarkContainsDenseList(b *testing.B) {
	p := FromUnsorted(denseRun(0, 200000, 3))
	for i := 0; i < b.N; i++ {
		sinkBool = p.Contains(uint32(i) % 200000)
	}
}

func BenchmarkContainsDenseSet(b *testing.B) {
	s := SetFromUnsorted(denseRun(0, 200000, 3))
	for i := 0; i < b.N; i++ {
		sinkBool = s.Contains(uint32(i) % 200000)
	}
}

func TestDecodeSetRejectsDuplicateValues(t *testing.T) {
	// 1 container, key 0, array tag, count 2, value 5 then delta 0 — a
	// duplicate element that would break the strictly-ascending invariant.
	if _, _, err := DecodeSet([]byte{0x01, 0x00, 0x00, 0x02, 0x05, 0x00}); err == nil {
		t.Fatal("duplicate array value accepted")
	}
}

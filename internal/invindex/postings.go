// Package invindex provides the posting containers shared by every index
// structure in the repository:
//
//   - PostingList, a flat sorted []uint32 with merge/gallop set operations
//     and a delta+varint wire codec — the iteration-friendly form used by
//     ITL trajectory lists and APL point lists;
//   - Set, a hybrid (roaring-style) container — per 64Ki-ID range either a
//     sorted uint16 array or a packed bitmap — used by the HICL cell lists,
//     the IL baseline and the delta layer's presence sets, where dense
//     probes, sibling masks and container-skipping intersections dominate.
//
// The container threshold is 4096 entries per 64Ki range (the break-even
// point between 2-byte array entries and the fixed 8 KiB bitmap).
package invindex

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
)

// PostingList is a strictly increasing list of 32-bit IDs (cell codes,
// trajectory IDs or point indexes depending on context).
type PostingList []uint32

// FromUnsorted builds a normalized posting list from arbitrary input.
func FromUnsorted(ids []uint32) PostingList {
	out := make(PostingList, len(ids))
	copy(out, ids)
	slices.Sort(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Contains reports whether id is present.
func (p PostingList) Contains(id uint32) bool {
	i := sort.Search(len(p), func(i int) bool { return p[i] >= id })
	return i < len(p) && p[i] == id
}

// Append adds id, which must be >= every existing element; duplicates are
// ignored. It returns the updated list (append semantics).
func (p PostingList) Append(id uint32) PostingList {
	if n := len(p); n > 0 {
		if p[n-1] == id {
			return p
		}
		if p[n-1] > id {
			panic(fmt.Sprintf("invindex: out-of-order append %d after %d", id, p[n-1]))
		}
	}
	return append(p, id)
}

// Insert adds id at its sorted position, ignoring duplicates, and returns
// the updated list (append semantics). Unlike Append it accepts IDs in any
// order — the mutable delta-index lists use it, since re-registration after
// a generation swap visits trajectories in arbitrary map order. The common
// in-order case stays O(1).
func (p PostingList) Insert(id uint32) PostingList {
	n := len(p)
	if n == 0 || p[n-1] < id {
		return append(p, id)
	}
	i := sort.Search(n, func(i int) bool { return p[i] >= id })
	if i < n && p[i] == id {
		return p
	}
	p = append(p, 0)
	copy(p[i+1:], p[i:])
	p[i] = id
	return p
}

// gallopRatio is the size disparity past which intersections gallop
// (exponential search in the larger list) instead of merging linearly.
const gallopRatio = 16

// Intersect returns the elements common to p and q. When one list is much
// shorter than the other it gallops through the larger list — O(m log(n/m))
// instead of O(n+m) — which is the common HICL shape: a query activity's
// list against a handful of sibling cells.
func (p PostingList) Intersect(q PostingList) PostingList {
	if len(p) > len(q) {
		p, q = q, p
	}
	if len(p) == 0 {
		return nil
	}
	var out PostingList
	if len(q) >= gallopRatio*len(p) {
		for _, v := range p {
			i := gallopSearch([]uint32(q), v)
			if i < len(q) && q[i] == v {
				out = append(out, v)
			}
			q = q[i:]
		}
		return out
	}
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			i++
		case p[i] > q[j]:
			j++
		default:
			out = append(out, p[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// gallopSearch returns the first index i with q[i] >= v, probing at
// exponentially growing strides before binary-searching the final gallop
// window — O(log d) where d is the answer's offset, instead of O(log n).
// Shared by the flat-list and container (uint16) intersection paths.
func gallopSearch[T cmp.Ordered](q []T, v T) int {
	bound := 1
	for bound < len(q) && q[bound] < v {
		bound <<= 1
	}
	lo := bound >> 1
	hi := min(bound+1, len(q))
	i, _ := slices.BinarySearch(q[lo:hi], v)
	return lo + i
}

// Union returns the elements present in either list.
func (p PostingList) Union(q PostingList) PostingList {
	out := make(PostingList, 0, len(p)+len(q))
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			out = append(out, p[i])
			i++
		case p[i] > q[j]:
			out = append(out, q[j])
			j++
		default:
			out = append(out, p[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, p[i:]...)
	out = append(out, q[j:]...)
	return out
}

// IntersectMany intersects all lists, shortest first for efficiency.
// It returns nil when lists is empty.
func IntersectMany(lists []PostingList) PostingList {
	if len(lists) == 0 {
		return nil
	}
	ordered := make([]PostingList, len(lists))
	copy(ordered, lists)
	slices.SortStableFunc(ordered, func(a, b PostingList) int { return len(a) - len(b) })
	out := ordered[0]
	for _, l := range ordered[1:] {
		if len(out) == 0 {
			return out
		}
		out = out.Intersect(l)
	}
	return out
}

// UnionMany unions all lists.
func UnionMany(lists []PostingList) PostingList {
	var out PostingList
	for _, l := range lists {
		out = out.Union(l)
	}
	return out
}

// MemBytes approximates the heap footprint of the list (4 bytes per entry;
// length rather than capacity, so the measure is deterministic across
// build paths).
func (p PostingList) MemBytes() int64 { return int64(len(p)) * 4 }

// AppendEncoded appends the delta+varint encoding of p to dst and returns
// the extended buffer. Layout: uvarint count, then uvarint first element and
// uvarint gaps.
func (p PostingList) AppendEncoded(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	prev := uint32(0)
	for i, v := range p {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(v))
		} else {
			dst = binary.AppendUvarint(dst, uint64(v-prev))
		}
		prev = v
	}
	return dst
}

// DecodePostings decodes one posting list from buf, returning the list and
// the number of bytes consumed.
func DecodePostings(buf []byte) (PostingList, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("invindex: truncated posting count")
	}
	off := used
	out := make(PostingList, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, used := binary.Uvarint(buf[off:])
		if used <= 0 {
			return nil, 0, fmt.Errorf("invindex: truncated posting %d/%d", i, n)
		}
		off += used
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		out = append(out, uint32(prev))
	}
	return out, off, nil
}

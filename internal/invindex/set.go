package invindex

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"
)

// Set is a hybrid (roaring-style) posting container: 32-bit IDs are split
// into a high-16 "key" and a low-16 value, and each key's values live in
// either a sorted uint16 array (sparse) or a packed 8 KiB bitmap (dense).
// Compared to a flat PostingList it answers Contains/Mask4 probes in O(1)
// for dense ranges, intersects dense runs with word-wide ANDs, and skips
// whole 64Ki ranges that the other operand does not touch.
//
// Sets are the in-memory form of the GAT HICL levels, the decoded form of
// the on-disk HICL lists, the IL baseline's per-activity lists, and the
// delta layer's presence sets. A Set is mutable through Insert; every
// shared Set in this repository is frozen (no further writes) before it
// becomes visible to concurrent readers.
type Set struct {
	keys  []uint16
	conts []container
	n     int
}

// container holds the low-16 values of one key. Exactly one of vals/bits is
// non-nil: vals is a sorted uint16 array, bits a 1024-word bitmap.
type container struct {
	vals []uint16
	bits []uint64
	n    int
}

const (
	// setArrayMax is the cardinality past which an array container converts
	// to a bitmap (the break-even point: 4096 * 2 bytes == 8 KiB bitmap).
	setArrayMax = 4096
	// setBitmapWords is the fixed word count of a bitmap container.
	setBitmapWords = 1 << 16 / 64
)

func (c *container) contains(low uint16) bool {
	if c.bits != nil {
		return c.bits[low>>6]&(1<<(low&63)) != 0
	}
	_, ok := slices.BinarySearch(c.vals, low)
	return ok
}

// insert adds low, reporting whether it was new, converting to bitmap form
// past the array threshold. The in-order append case stays O(1).
func (c *container) insert(low uint16) bool {
	if c.bits != nil {
		w, m := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&m != 0 {
			return false
		}
		c.bits[w] |= m
		c.n++
		return true
	}
	if k := len(c.vals); k == 0 || c.vals[k-1] < low {
		c.vals = append(c.vals, low)
	} else {
		i, ok := slices.BinarySearch(c.vals, low)
		if ok {
			return false
		}
		c.vals = slices.Insert(c.vals, i, low)
	}
	c.n++
	if c.n > setArrayMax {
		c.toBitmap()
	}
	return true
}

func (c *container) toBitmap() {
	bm := make([]uint64, setBitmapWords)
	for _, v := range c.vals {
		bm[v>>6] |= 1 << (v & 63)
	}
	c.bits = bm
	c.vals = nil
}

// appendTo appends the container's values (offset by base) in ascending
// order.
func (c *container) appendTo(dst []uint32, base uint32) []uint32 {
	if c.bits != nil {
		for w, word := range c.bits {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				dst = append(dst, base|uint32(w<<6+b))
				word &= word - 1
			}
		}
		return dst
	}
	for _, v := range c.vals {
		dst = append(dst, base|uint32(v))
	}
	return dst
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{} }

// SetFromSorted builds a Set from ascending, duplicate-free IDs (the
// invariant PostingList already maintains).
func SetFromSorted(ids []uint32) *Set {
	s := &Set{}
	for i := 0; i < len(ids); {
		key := uint16(ids[i] >> 16)
		j := i
		for j < len(ids) && uint16(ids[j]>>16) == key {
			j++
		}
		c := container{n: j - i}
		if c.n > setArrayMax {
			c.bits = make([]uint64, setBitmapWords)
			for _, id := range ids[i:j] {
				c.bits[uint16(id)>>6] |= 1 << (id & 63)
			}
		} else {
			c.vals = make([]uint16, c.n)
			for k, id := range ids[i:j] {
				c.vals[k] = uint16(id)
			}
		}
		s.keys = append(s.keys, key)
		s.conts = append(s.conts, c)
		s.n += c.n
		i = j
	}
	return s
}

// SetFromUnsorted builds a Set from arbitrary input.
func SetFromUnsorted(ids []uint32) *Set {
	return SetFromSorted(FromUnsorted(ids))
}

// Len returns the cardinality.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Empty reports whether the set has no elements (true for a nil Set).
func (s *Set) Empty() bool { return s.Len() == 0 }

func (s *Set) findKey(key uint16) int {
	i, ok := slices.BinarySearch(s.keys, key)
	if !ok {
		return -1
	}
	return i
}

// Contains reports whether id is present. Safe on a nil Set.
func (s *Set) Contains(id uint32) bool {
	if s == nil || len(s.keys) == 0 {
		return false
	}
	i := s.findKey(uint16(id >> 16))
	if i < 0 {
		return false
	}
	return s.conts[i].contains(uint16(id))
}

// Insert adds id, reporting whether it was new.
func (s *Set) Insert(id uint32) bool {
	key, low := uint16(id>>16), uint16(id)
	i, ok := slices.BinarySearch(s.keys, key)
	if !ok {
		s.keys = slices.Insert(s.keys, i, key)
		s.conts = slices.Insert(s.conts, i, container{})
	}
	if !s.conts[i].insert(low) {
		return false
	}
	s.n++
	return true
}

// Mask4 returns a 4-bit mask of which of base..base+3 are present, for base
// aligned to 4 (the quad-tree child probe: all four siblings share one key,
// and in bitmap form one word). Safe on a nil Set.
func (s *Set) Mask4(base uint32) uint32 {
	if s == nil || len(s.keys) == 0 {
		return 0
	}
	i := s.findKey(uint16(base >> 16))
	if i < 0 {
		return 0
	}
	c := &s.conts[i]
	low := uint16(base)
	if c.bits != nil {
		return uint32(c.bits[low>>6]>>(low&63)) & 0xF
	}
	var mask uint32
	j, _ := slices.BinarySearch(c.vals, low)
	for ; j < len(c.vals) && c.vals[j] <= low+3; j++ {
		mask |= 1 << (c.vals[j] - low)
	}
	return mask
}

// AppendTo appends all elements in ascending order. Safe on a nil Set.
func (s *Set) AppendTo(dst []uint32) []uint32 {
	if s == nil {
		return dst
	}
	for i := range s.conts {
		dst = s.conts[i].appendTo(dst, uint32(s.keys[i])<<16)
	}
	return dst
}

// Elements returns all elements as a PostingList.
func (s *Set) Elements() PostingList {
	return PostingList(s.AppendTo(make([]uint32, 0, s.Len())))
}

// MemBytes approximates the heap footprint.
func (s *Set) MemBytes() int64 {
	if s == nil {
		return 0
	}
	n := int64(len(s.keys))*2 + int64(len(s.conts))*40
	for i := range s.conts {
		n += int64(len(s.conts[i].vals))*2 + int64(len(s.conts[i].bits))*8
	}
	return n
}

// And returns the intersection of s and t as a new Set. Whole containers
// whose key the other set lacks are skipped without inspection.
func (s *Set) And(t *Set) *Set {
	out := &Set{}
	if s.Empty() || t.Empty() {
		return out
	}
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			i++
		case s.keys[i] > t.keys[j]:
			j++
		default:
			if c := andContainers(&s.conts[i], &t.conts[j]); c.n > 0 {
				out.keys = append(out.keys, s.keys[i])
				out.conts = append(out.conts, c)
				out.n += c.n
			}
			i, j = i+1, j+1
		}
	}
	return out
}

// Or returns the union of s and t as a new Set.
func (s *Set) Or(t *Set) *Set {
	if s.Empty() {
		return t.clone()
	}
	if t.Empty() {
		return s.clone()
	}
	out := &Set{}
	i, j := 0, 0
	push := func(key uint16, c container) {
		out.keys = append(out.keys, key)
		out.conts = append(out.conts, c)
		out.n += c.n
	}
	for i < len(s.keys) || j < len(t.keys) {
		switch {
		case j >= len(t.keys) || (i < len(s.keys) && s.keys[i] < t.keys[j]):
			push(s.keys[i], s.conts[i].clone())
			i++
		case i >= len(s.keys) || s.keys[i] > t.keys[j]:
			push(t.keys[j], t.conts[j].clone())
			j++
		default:
			push(s.keys[i], orContainers(&s.conts[i], &t.conts[j]))
			i, j = i+1, j+1
		}
	}
	return out
}

func (s *Set) clone() *Set {
	if s == nil {
		return &Set{}
	}
	out := &Set{
		keys:  slices.Clone(s.keys),
		conts: make([]container, len(s.conts)),
		n:     s.n,
	}
	for i := range s.conts {
		out.conts[i] = s.conts[i].clone()
	}
	return out
}

func (c *container) clone() container {
	return container{vals: slices.Clone(c.vals), bits: slices.Clone(c.bits), n: c.n}
}

func andContainers(a, b *container) container {
	switch {
	case a.bits != nil && b.bits != nil:
		bm := make([]uint64, setBitmapWords)
		n := 0
		for w := range bm {
			bm[w] = a.bits[w] & b.bits[w]
			n += bits.OnesCount64(bm[w])
		}
		c := container{bits: bm, n: n}
		if n <= setArrayMax {
			c.toArray()
		}
		return c
	case a.bits != nil: // b is the array: probe its values against the bitmap
		a, b = b, a
		fallthrough
	case b.bits != nil:
		vals := make([]uint16, 0, min(len(a.vals), 64))
		for _, v := range a.vals {
			if b.bits[v>>6]&(1<<(v&63)) != 0 {
				vals = append(vals, v)
			}
		}
		return container{vals: vals, n: len(vals)}
	default:
		vals := intersectU16(a.vals, b.vals)
		return container{vals: vals, n: len(vals)}
	}
}

func (c *container) toArray() {
	vals := make([]uint16, 0, c.n)
	for w, word := range c.bits {
		for word != 0 {
			vals = append(vals, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.vals = vals
	c.bits = nil
}

func orContainers(a, b *container) container {
	if a.bits != nil || b.bits != nil || a.n+b.n > setArrayMax {
		bm := make([]uint64, setBitmapWords)
		for _, src := range []*container{a, b} {
			if src.bits != nil {
				for w := range bm {
					bm[w] |= src.bits[w]
				}
			} else {
				for _, v := range src.vals {
					bm[v>>6] |= 1 << (v & 63)
				}
			}
		}
		n := 0
		for _, w := range bm {
			n += bits.OnesCount64(w)
		}
		c := container{bits: bm, n: n}
		if n <= setArrayMax {
			c.toArray()
		}
		return c
	}
	vals := make([]uint16, 0, a.n+b.n)
	i, j := 0, 0
	for i < len(a.vals) && j < len(b.vals) {
		switch {
		case a.vals[i] < b.vals[j]:
			vals = append(vals, a.vals[i])
			i++
		case a.vals[i] > b.vals[j]:
			vals = append(vals, b.vals[j])
			j++
		default:
			vals = append(vals, a.vals[i])
			i, j = i+1, j+1
		}
	}
	vals = append(vals, a.vals[i:]...)
	vals = append(vals, b.vals[j:]...)
	return container{vals: vals, n: len(vals)}
}

// intersectU16 intersects two sorted uint16 arrays, galloping when the
// smaller side is much smaller than the larger.
func intersectU16(p, q []uint16) []uint16 {
	if len(p) > len(q) {
		p, q = q, p
	}
	if len(p) == 0 {
		return nil
	}
	out := make([]uint16, 0, len(p))
	if len(q) >= gallopRatio*len(p) {
		for _, v := range p {
			i := gallopSearch(q, v)
			if i < len(q) && q[i] == v {
				out = append(out, v)
			}
			q = q[i:]
		}
		return out
	}
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] < q[j]:
			i++
		case p[i] > q[j]:
			j++
		default:
			out = append(out, p[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// IntersectSets intersects all sets — shortest first, skipping whole
// containers absent from the running result — and returns the elements as a
// PostingList. It returns nil when sets is empty.
func IntersectSets(sets []*Set) PostingList {
	if len(sets) == 0 {
		return nil
	}
	ordered := make([]*Set, len(sets))
	copy(ordered, sets)
	slices.SortStableFunc(ordered, func(a, b *Set) int { return a.Len() - b.Len() })
	out := ordered[0]
	for _, t := range ordered[1:] {
		if out.Empty() {
			return PostingList{}
		}
		out = out.And(t)
	}
	return out.Elements()
}

// --- wire codec ---

// AppendEncoded appends the Set wire encoding to dst: uvarint container
// count, then per container a uvarint key, a mode tag, and either the
// delta+varint value array or the raw 8 KiB bitmap (with a uvarint
// cardinality prefix). Dense containers cost at most 8 KiB regardless of
// cardinality, which is what keeps dense HICL levels compact on disk.
func (s *Set) AppendEncoded(dst []byte) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.conts)))
	for i := range s.conts {
		c := &s.conts[i]
		dst = binary.AppendUvarint(dst, uint64(s.keys[i]))
		if c.bits != nil {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(c.n))
			for _, w := range c.bits {
				dst = binary.LittleEndian.AppendUint64(dst, w)
			}
			continue
		}
		dst = append(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(len(c.vals)))
		prev := uint16(0)
		for k, v := range c.vals {
			if k == 0 {
				dst = binary.AppendUvarint(dst, uint64(v))
			} else {
				dst = binary.AppendUvarint(dst, uint64(v-prev))
			}
			prev = v
		}
	}
	return dst
}

// DecodeSet decodes one Set from buf, returning the set and the bytes
// consumed.
func DecodeSet(buf []byte) (*Set, int, error) {
	nc, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("invindex: truncated set header")
	}
	off := used
	s := &Set{
		keys:  make([]uint16, 0, nc),
		conts: make([]container, 0, nc),
	}
	var prevKey int = -1
	for ci := uint64(0); ci < nc; ci++ {
		key, used := binary.Uvarint(buf[off:])
		if used <= 0 || key > 0xFFFF {
			return nil, 0, fmt.Errorf("invindex: bad set key in container %d", ci)
		}
		off += used
		if int(key) <= prevKey {
			return nil, 0, fmt.Errorf("invindex: unordered set key %d", key)
		}
		prevKey = int(key)
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("invindex: truncated set container %d", ci)
		}
		tag := buf[off]
		off++
		count, used := binary.Uvarint(buf[off:])
		if used <= 0 {
			return nil, 0, fmt.Errorf("invindex: truncated set count in container %d", ci)
		}
		off += used
		var c container
		switch tag {
		case 1:
			if len(buf[off:]) < setBitmapWords*8 {
				return nil, 0, fmt.Errorf("invindex: truncated set bitmap in container %d", ci)
			}
			c.bits = make([]uint64, setBitmapWords)
			n := 0
			for w := range c.bits {
				c.bits[w] = binary.LittleEndian.Uint64(buf[off:])
				n += bits.OnesCount64(c.bits[w])
				off += 8
			}
			if uint64(n) != count {
				return nil, 0, fmt.Errorf("invindex: set bitmap cardinality mismatch (%d != %d)", n, count)
			}
			c.n = n
		case 0:
			if count > 1<<16 {
				return nil, 0, fmt.Errorf("invindex: oversized set array (%d)", count)
			}
			c.vals = make([]uint16, 0, count)
			prev := uint64(0)
			for k := uint64(0); k < count; k++ {
				d, used := binary.Uvarint(buf[off:])
				if used <= 0 {
					return nil, 0, fmt.Errorf("invindex: truncated set value %d/%d", k, count)
				}
				off += used
				if k == 0 {
					prev = d
				} else {
					if d == 0 {
						return nil, 0, fmt.Errorf("invindex: duplicate set value %d", prev)
					}
					prev += d
				}
				if prev > 0xFFFF {
					return nil, 0, fmt.Errorf("invindex: set value overflow (%d)", prev)
				}
				c.vals = append(c.vals, uint16(prev))
			}
			c.n = len(c.vals)
		default:
			return nil, 0, fmt.Errorf("invindex: unknown set container tag %d", tag)
		}
		s.keys = append(s.keys, uint16(key))
		s.conts = append(s.conts, c)
		s.n += c.n
	}
	return s, off, nil
}

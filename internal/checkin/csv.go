package checkin

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"activitytraj/internal/geo"
)

// CSV layout: user,timestamp,lat,lon,venue,tip — timestamp in RFC 3339 or
// "2006-01-02 15:04:05". A header row is detected and skipped when its
// first field is "user".
//
// ParseCSV streams the file and returns every record; malformed rows abort
// with a line-numbered error so data problems surface instead of silently
// skewing datasets.
func ParseCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	var out []Record
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("checkin: csv line %d: %w", line, err)
		}
		if line == 1 && row[0] == "user" {
			continue
		}
		ts, err := parseTime(row[1])
		if err != nil {
			return nil, fmt.Errorf("checkin: csv line %d: time %q: %w", line, row[1], err)
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("checkin: csv line %d: lat %q: %w", line, row[2], err)
		}
		lon, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("checkin: csv line %d: lon %q: %w", line, row[3], err)
		}
		if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			return nil, fmt.Errorf("checkin: csv line %d: coordinates out of range (%v, %v)", line, lat, lon)
		}
		out = append(out, Record{
			User:  row[0],
			Time:  ts,
			Loc:   geo.LatLon{Lat: lat, Lon: lon},
			Venue: row[4],
			Tip:   row[5],
		})
	}
	return out, nil
}

func parseTime(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized layout")
}

package checkin

import (
	"strings"
	"testing"
	"time"

	"activitytraj/internal/geo"
)

func TestExtractActivities(t *testing.T) {
	cases := []struct {
		tip  string
		want []string
	}{
		{"Great coffee and amazing brunch!", []string{"great", "coffee", "amazing", "brunch"}},
		{"the THE The", nil},
		{"", nil},
		{"a of to", nil},
		{"try the pizza, try the pasta", []string{"pizza", "pasta"}},
		{"wi-fi is ok", nil}, // "wi", "fi", "is", "ok" all too short / stopwords
		{"Ünïcödé Fün!!", []string{"ünïcödé", "fün"}},
		{"go2sleep zzz", []string{"sleep", "zzz"}}, // digits split tokens
	}
	for _, c := range cases {
		got := ExtractActivities(c.tip)
		if len(got) != len(c.want) {
			t.Errorf("ExtractActivities(%q) = %v, want %v", c.tip, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ExtractActivities(%q) = %v, want %v", c.tip, got, c.want)
				break
			}
		}
	}
}

func sampleRecords() []Record {
	t0 := time.Date(2012, 6, 1, 9, 0, 0, 0, time.UTC)
	nyc := func(dLat, dLon float64) geo.LatLon {
		return geo.LatLon{Lat: 40.7 + dLat, Lon: -74.0 + dLon}
	}
	return []Record{
		// alice checks in out of order in the slice; times must win.
		{User: "alice", Time: t0.Add(2 * time.Hour), Loc: nyc(0.01, 0.01), Venue: "v2", Tip: "lovely museum visit"},
		{User: "alice", Time: t0, Loc: nyc(0, 0), Venue: "v1", Tip: "great coffee spot"},
		{User: "alice", Time: t0.Add(5 * time.Hour), Loc: nyc(0.02, 0.03), Venue: "v3", Tip: "dinner with live jazz"},
		{User: "bob", Time: t0, Loc: nyc(0.005, 0.005), Venue: "v1", Tip: "coffee again"},
		{User: "bob", Time: t0.Add(time.Hour), Loc: nyc(0.015, 0.01), Venue: "v4", Tip: "shopping haul"},
		// carol has a single check-in: dropped by MinTrajectoryLen.
		{User: "carol", Time: t0, Loc: nyc(0.03, 0.03), Venue: "v5", Tip: "quick snack"},
	}
}

func TestBuildDataset(t *testing.T) {
	ds, err := BuildDataset(sampleRecords(), Options{Name: "nyc-sample"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	// alice and bob survive; carol dropped. Users sorted → alice is 0.
	if len(ds.Trajs) != 2 {
		t.Fatalf("trajectories = %d, want 2", len(ds.Trajs))
	}
	alice := ds.Trajs[0]
	if len(alice.Pts) != 3 {
		t.Fatalf("alice has %d points", len(alice.Pts))
	}
	// Chronological order: coffee → museum → dinner.
	if !alice.Pts[0].Acts.Contains(ds.Vocab.MustID("coffee")) {
		t.Fatal("alice's first stop should be the coffee check-in (chronological order)")
	}
	if !alice.Pts[2].Acts.Contains(ds.Vocab.MustID("dinner")) {
		t.Fatal("alice's last stop should be dinner")
	}
	// Projection: planar distance alice stop0→stop2 should approximate the
	// haversine distance of the raw coordinates.
	raw := geo.Haversine(geo.LatLon{Lat: 40.7, Lon: -74.0}, geo.LatLon{Lat: 40.72, Lon: -73.97})
	planar := geo.Dist(alice.Pts[0].Loc, alice.Pts[2].Loc)
	if planar < raw*0.99 || planar > raw*1.01 {
		t.Fatalf("projection error: planar %v vs haversine %v", planar, raw)
	}
	// Vocabulary is frequency-ranked: "coffee" (2 occurrences) must have a
	// lower ID than "jazz" (1 occurrence).
	if ds.Vocab.MustID("coffee") >= ds.Vocab.MustID("jazz") {
		t.Fatal("vocabulary not frequency-ranked")
	}
}

func TestBuildDatasetOptions(t *testing.T) {
	ds, err := BuildDataset(sampleRecords(), Options{MinTrajectoryLen: 1, MaxActsPerPoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Trajs) != 3 {
		t.Fatalf("with MinTrajectoryLen=1 carol should survive: %d", len(ds.Trajs))
	}
	for _, tr := range ds.Trajs {
		for _, p := range tr.Pts {
			if len(p.Acts) > 1 {
				t.Fatalf("MaxActsPerPoint=1 violated: %v", p.Acts)
			}
		}
	}
	if _, err := BuildDataset(nil, Options{}); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := BuildDataset(sampleRecords()[:0], Options{}); err == nil {
		t.Fatal("empty slice must error")
	}
}

func TestParseCSV(t *testing.T) {
	input := `user,timestamp,lat,lon,venue,tip
alice,2012-06-01T09:00:00Z,40.7,-74.0,v1,"great coffee spot"
bob,2012-06-01 10:30:00,40.71,-73.99,v2,"lovely museum"
`
	recs, err := ParseCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records", len(recs))
	}
	if recs[0].User != "alice" || recs[0].Venue != "v1" || recs[0].Loc.Lat != 40.7 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Time.Hour() != 10 {
		t.Fatalf("record 1 time = %v", recs[1].Time)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"alice,not-a-time,40.7,-74.0,v1,tip\n",
		"alice,2012-06-01T09:00:00Z,abc,-74.0,v1,tip\n",
		"alice,2012-06-01T09:00:00Z,40.7,xyz,v1,tip\n",
		"alice,2012-06-01T09:00:00Z,95.0,-74.0,v1,tip\n", // lat out of range
		"alice,2012-06-01T09:00:00Z,40.7\n",              // wrong field count
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

// TestEndToEndSearch: a dataset assembled from raw check-ins must be
// directly searchable (integration with the rest of the stack).
func TestEndToEndSearch(t *testing.T) {
	ds, err := BuildDataset(sampleRecords(), Options{Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	// Import here would create a cycle with evaluate→…; the enginetest and
	// root-package tests cover index construction over arbitrary datasets.
	// Here we assert the dataset invariants the indexes rely on.
	st := ds.Stats()
	if st.Trajectories != 2 || st.DistinctActs == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Package cache provides a sharded, concurrency-safe LRU cache used for
// cross-query reuse of decoded index structures: disk-level HICL posting
// lists (internal/gat) and decoded Activity Posting Lists (internal/evaluate).
// Sharding by key hash keeps lock contention low when many engine clones
// serve queries concurrently; each shard is an independent LRU with its own
// mutex, so the cost of a lookup never scales with the shard count.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stats counts cache traffic. Counters only ever increase; use Sub for
// per-query accounting via snapshots.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Sub returns s - old.
func (s Stats) Sub(old Stats) Stats {
	return Stats{
		Hits:      s.Hits - old.Hits,
		Misses:    s.Misses - old.Misses,
		Evictions: s.Evictions - old.Evictions,
	}
}

// Sharded is a fixed-capacity LRU cache split into power-of-two shards.
// All methods are safe for concurrent use. Values must be treated as
// immutable once inserted: Get returns the cached value itself, which may
// be read by any number of goroutines at once.
type Sharded[K comparable, V any] struct {
	shards []shard[K, V]
	mask   uint64
	hash   func(K) uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *entry[K, V]
	items    map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// defaultShards is sized for typical core counts; contention halves with
// every doubling, and 16 shards already make the lock negligible next to
// the decode work the cache saves.
const defaultShards = 16

// New returns a cache holding up to capacity entries in total, hashed into
// shards with hash. capacity must be >= 1; shards is rounded up to a power
// of two and capped so every shard holds at least one entry. Pass shards
// <= 0 for a sensible default.
func New[K comparable, V any](capacity, shards int, hash func(K) uint64) *Sharded[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	c := &Sharded[K, V]{
		shards: make([]shard[K, V], n),
		mask:   uint64(n - 1),
		hash:   hash,
	}
	base := capacity / n
	extra := capacity % n
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		if cap < 1 {
			cap = 1
		}
		c.shards[i] = shard[K, V]{
			capacity: cap,
			lru:      list.New(),
			items:    make(map[K]*list.Element, cap),
		}
	}
	return c
}

func (c *Sharded[K, V]) shardFor(key K) *shard[K, V] {
	return &c.shards[c.hash(key)&c.mask]
}

// Get returns the value cached under key and whether it was present,
// promoting the entry to most-recently-used.
func (c *Sharded[K, V]) Get(key K) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[K, V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put inserts or refreshes key → val, evicting the shard's least-recently-
// used entry if the shard is full.
func (c *Sharded[K, V]) Put(key K, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	var evicted bool
	if s.lru.Len() >= s.capacity {
		el := s.lru.Back()
		e := el.Value.(*entry[K, V])
		delete(s.items, e.key)
		s.lru.Remove(el)
		evicted = true
	}
	s.items[key] = s.lru.PushFront(&entry[K, V]{key: key, val: val})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Peek reports whether key is resident without bumping its LRU position or
// touching the hit/miss counters — a side-effect-free probe for readahead
// planning.
func (c *Sharded[K, V]) Peek(key K) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

// GetOrFill returns the cached value for key, calling fill to compute and
// insert it on a miss. Under concurrent misses for the same key fill may run
// more than once; the last completed fill wins, which is harmless for the
// idempotent decode work this cache fronts. A fill error is returned without
// caching anything.
func (c *Sharded[K, V]) GetOrFill(key K, fill func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := fill()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}

// Len returns the total number of cached entries.
func (c *Sharded[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry capacity across shards.
func (c *Sharded[K, V]) Capacity() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].capacity
	}
	return n
}

// Shards returns the number of shards (a power of two).
func (c *Sharded[K, V]) Shards() int { return len(c.shards) }

// Reset empties the cache and zeroes the counters.
func (c *Sharded[K, V]) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.lru.Init()
		s.items = make(map[K]*list.Element, s.capacity)
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// Stats returns a snapshot of the traffic counters.
func (c *Sharded[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Uint64Hash is a ready-made hash for integer-like keys (trajectory IDs,
// packed segment references): SplitMix64's finalizer, cheap and well mixed
// so shard assignment is uniform even for dense sequential keys.
func Uint64Hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package cache

import (
	"fmt"
	"sync"
	"testing"
)

func idHash(k uint64) uint64 { return Uint64Hash(k) }

// singleShard returns a cache with exactly one shard so LRU order is
// globally observable.
func singleShard(capacity int) *Sharded[uint64, int] {
	return New[uint64, int](capacity, 1, idHash)
}

func TestLRUEviction(t *testing.T) {
	c := singleShard(2)
	c.Put(1, 10)
	c.Put(2, 20)
	if _, ok := c.Get(1); !ok { // promote 1; 2 becomes LRU
		t.Fatal("1 must be cached")
	}
	c.Put(3, 30) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 must have been evicted (LRU)")
	}
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("1 lost: %v %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatalf("3 lost: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// hits: get(1), get(1), get(3); misses: get(2)
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := singleShard(2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(1, 11) // refresh, not insert: nothing evicted
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("refresh lost: %d", v)
	}
	c.Put(3, 30) // 2 is LRU now
	if _, ok := c.Get(2); ok {
		t.Fatal("2 must have been evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestGetOrFill(t *testing.T) {
	c := singleShard(4)
	fills := 0
	get := func() (int, error) {
		return c.GetOrFill(7, func() (int, error) {
			fills++
			return 42, nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || v != 42 {
			t.Fatalf("get %d: %v %v", i, v, err)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	// Errors are not cached.
	wantErr := fmt.Errorf("boom")
	if _, err := c.GetOrFill(8, func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get(8); ok {
		t.Fatal("failed fill must not cache")
	}
}

func TestCapacityDistribution(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards, wantShards int
	}{
		{100, 0, 16},
		{100, 3, 4},
		{5, 16, 4}, // shards capped at capacity, rounded to power of two
		{1, 16, 1},
	} {
		c := New[uint64, int](tc.capacity, tc.shards, idHash)
		if c.Shards() != tc.wantShards {
			t.Errorf("New(%d,%d): shards = %d, want %d", tc.capacity, tc.shards, c.Shards(), tc.wantShards)
		}
		if c.Capacity() < tc.capacity {
			t.Errorf("New(%d,%d): capacity = %d, want >= %d", tc.capacity, tc.shards, c.Capacity(), tc.capacity)
		}
	}
}

func TestReset(t *testing.T) {
	c := New[uint64, int](64, 4, idHash)
	for i := uint64(0); i < 32; i++ {
		c.Put(i, int(i))
	}
	c.Get(0)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	if _, ok := c.Get(0); ok {
		t.Fatal("reset must drop entries")
	}
}

func TestStatsSub(t *testing.T) {
	c := singleShard(8)
	c.Put(1, 1)
	c.Get(1)
	snap := c.Stats()
	c.Get(1)
	c.Get(2)
	d := c.Stats().Sub(snap)
	if d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("diff = %+v", d)
	}
}

// TestConcurrentStress hammers one cache from many goroutines with
// overlapping key ranges; run under -race this checks the locking, and the
// invariant checks catch lost or corrupted entries.
func TestConcurrentStress(t *testing.T) {
	c := New[uint64, [2]uint64](256, 8, idHash)
	const workers = 8
	const ops = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := uint64((w*31 + i) % 512)
				if v, ok := c.Get(k); ok {
					if v[0] != k || v[1] != k*2 {
						t.Errorf("corrupt value for %d: %v", k, v)
						return
					}
				} else {
					c.Put(k, [2]uint64{k, k * 2})
				}
				if i%97 == 0 {
					_, _ = c.GetOrFill(k+1000, func() ([2]uint64, error) {
						return [2]uint64{k + 1000, (k + 1000) * 2}, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}

package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKnown(t *testing.T) {
	cases := []struct {
		ix, iy, z uint32
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {3, 3, 15}, {0xffff, 0xffff, 0xffffffff},
	}
	for _, c := range cases {
		if z := Encode(c.ix, c.iy); z != c.z {
			t.Errorf("Encode(%d,%d) = %d, want %d", c.ix, c.iy, z, c.z)
		}
		ix, iy := Decode(c.z)
		if ix != c.ix || iy != c.iy {
			t.Errorf("Decode(%d) = (%d,%d), want (%d,%d)", c.z, ix, iy, c.ix, c.iy)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ix, iy uint16) bool {
		x, y := Decode(Encode(uint32(ix), uint32(iy)))
		return x == uint32(ix) && y == uint32(iy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestParentChildren: every child's parent is the original; the four
// children are distinct and contiguous.
func TestParentChildren(t *testing.T) {
	f := func(z16 uint16) bool {
		z := uint32(z16)
		ch := Children(z)
		for i, c := range ch {
			if Parent(c) != z {
				return false
			}
			if c != z<<2+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestChildrenAreQuadrants: decoding the children of a cell yields the
// 2×2 block of coordinates at the refined level.
func TestChildrenAreQuadrants(t *testing.T) {
	f := func(ix8, iy8 uint8) bool {
		ix, iy := uint32(ix8), uint32(iy8)
		z := Encode(ix, iy)
		seen := map[[2]uint32]bool{}
		for _, c := range Children(z) {
			cx, cy := Decode(c)
			if cx>>1 != ix || cy>>1 != iy {
				return false
			}
			seen[[2]uint32{cx, cy}] = true
		}
		return len(seen) == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestry(t *testing.T) {
	z := Encode(1234, 567) // a level-11+ code
	if !IsAncestor(z, 11, z, 11) {
		t.Fatal("a cell is its own ancestor")
	}
	if !IsAncestor(Parent(z), 10, z, 11) {
		t.Fatal("parent must be an ancestor")
	}
	if !IsAncestor(AncestorAt(z, 5), 6, z, 11) {
		t.Fatal("AncestorAt(5) must be an ancestor at level 6")
	}
	if IsAncestor(z, 11, Parent(z), 10) {
		t.Fatal("child is not an ancestor of its parent")
	}
	other := Encode(1235, 567)
	if IsAncestor(other, 11, z, 11) {
		t.Fatal("sibling is not an ancestor")
	}
}

// Package zorder implements the Z-order (Morton) space-filling curve used to
// assign "a unique numerical ID" to grid cells, as required by the GAT index
// (Section IV of the paper). The curve maps two-dimensional cell coordinates
// to a one-dimensional integer domain while preserving locality, and makes
// parent/child navigation in the cell hierarchy a matter of bit shifts.
package zorder

// MaxLevel is the deepest supported grid level: a level-l grid has 2^l × 2^l
// cells, so 16 levels index up to 65536 × 65536 cells with 32-bit codes.
const MaxLevel = 16

// Interleave spreads the low 16 bits of x into the even bit positions of the
// result ("part1by1" in the bit-twiddling literature).
func Interleave(x uint32) uint32 {
	x &= 0x0000ffff
	x = (x | x<<8) & 0x00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f
	x = (x | x<<2) & 0x33333333
	x = (x | x<<1) & 0x55555555
	return x
}

// Deinterleave extracts the even bit positions of z back into a compact
// 16-bit integer; it is the inverse of Interleave.
func Deinterleave(z uint32) uint32 {
	z &= 0x55555555
	z = (z | z>>1) & 0x33333333
	z = (z | z>>2) & 0x0f0f0f0f
	z = (z | z>>4) & 0x00ff00ff
	z = (z | z>>8) & 0x0000ffff
	return z
}

// Encode returns the Z-order code of the cell at column ix, row iy.
// Codes at a fixed grid level are dense in [0, 4^level).
func Encode(ix, iy uint32) uint32 {
	return Interleave(ix) | Interleave(iy)<<1
}

// Decode returns the column and row of the cell with Z-order code z.
func Decode(z uint32) (ix, iy uint32) {
	return Deinterleave(z), Deinterleave(z >> 1)
}

// Parent returns the code of the enclosing cell one level up: the four
// children of a cell at level l-1 are exactly codes {4p, 4p+1, 4p+2, 4p+3}
// at level l.
func Parent(z uint32) uint32 { return z >> 2 }

// Children returns the four child codes of z one level down, in Z order.
func Children(z uint32) [4]uint32 {
	base := z << 2
	return [4]uint32{base, base + 1, base + 2, base + 3}
}

// AncestorAt returns the code of z's ancestor that is levels levels above it.
func AncestorAt(z uint32, levels int) uint32 { return z >> (2 * uint(levels)) }

// IsAncestor reports whether a (at level la) is an ancestor of, or equal to,
// z (at level lz). It returns false when la > lz.
func IsAncestor(a uint32, la int, z uint32, lz int) bool {
	if la > lz {
		return false
	}
	return AncestorAt(z, lz-la) == a
}

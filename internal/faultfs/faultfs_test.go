package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"activitytraj/internal/wal"
)

func mustCreate(t *testing.T, f *FS, name string) wal.File {
	t.Helper()
	file, err := f.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	return file
}

func TestCrashOnWriteLandsPartialPrefix(t *testing.T) {
	dir := t.TempDir()
	f := New(nil, Plan{CrashOnWrite: 2, WritePartial: 3})
	file := mustCreate(t, f, filepath.Join(dir, "a"))
	if _, err := file.Write([]byte("first")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := file.Write([]byte("second")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 2 err = %v, want ErrCrashed", err)
	}
	if !f.Crashed() {
		t.Fatal("crash latch not set")
	}
	// Every later operation fails, and later writes land nothing.
	if _, err := file.Write([]byte("third")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if _, err := f.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	if err := f.MkdirAll(filepath.Join(dir, "d")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdir err = %v", err)
	}
	if _, err := f.Open(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v", err)
	}
	if _, err := f.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readdir err = %v", err)
	}
	if err := f.Remove(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove err = %v", err)
	}
	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v", err)
	}
	// Close stays allowed (a dead process's descriptors get closed too).
	if err := file.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
	// The crashing write left exactly its 3-byte prefix after the first
	// write — the torn frame recovery must handle.
	got, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "firstsec" {
		t.Fatalf("on-disk bytes = %q, want %q", got, "firstsec")
	}
}

func TestFailSyncIsTransient(t *testing.T) {
	dir := t.TempDir()
	f := New(nil, Plan{FailSync: 2})
	file := mustCreate(t, f, filepath.Join(dir, "a"))
	if err := file.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := file.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 err = %v, want ErrInjected", err)
	}
	if f.Crashed() {
		t.Fatal("FailSync must not latch the crash")
	}
	// The fault is one-shot: later syncs and writes succeed.
	if err := file.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	if _, err := file.Write([]byte("x")); err != nil {
		t.Fatalf("write after transient fault: %v", err)
	}
}

func TestCrashOnSyncAndOpCounters(t *testing.T) {
	dir := t.TempDir()
	f := New(nil, Plan{CrashOnSync: 1})
	file := mustCreate(t, f, filepath.Join(dir, "a"))
	if _, err := file.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync err = %v, want ErrCrashed", err)
	}
	// Data written before the crashed fsync stays on disk (only the ack is
	// modeled as lost).
	if got, err := os.ReadFile(filepath.Join(dir, "a")); err != nil || string(got) != "durable" {
		t.Fatalf("on-disk bytes = %q (%v)", got, err)
	}
	w, s, c, rn, rm := f.Ops()
	if w != 1 || s != 1 || c != 1 || rn != 0 || rm != 0 {
		t.Fatalf("ops = %d writes %d syncs %d creates %d renames %d removes", w, s, c, rn, rm)
	}
}

func TestCrashOnRenameAndRemovePreventEffect(t *testing.T) {
	dir := t.TempDir()
	f := New(nil, Plan{CrashOnRename: 1})
	file := mustCreate(t, f, filepath.Join(dir, "a"))
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename err = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("crashed rename must leave the source: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatalf("crashed rename must not create the target: %v", err)
	}

	f2 := New(nil, Plan{CrashOnRemove: 1})
	if err := f2.Remove(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove err = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("crashed remove must leave the file: %v", err)
	}
}

// TestHealthyPassThrough: a plan with no faults behaves exactly like the
// base filesystem.
func TestHealthyPassThrough(t *testing.T) {
	dir := t.TempDir()
	f := New(nil, Plan{})
	if err := f.MkdirAll(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	file := mustCreate(t, f, filepath.Join(dir, "sub", "a"))
	if _, err := file.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := f.ReadDir(filepath.Join(dir, "sub"))
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("readdir = %v (%v)", names, err)
	}
	rc, err := f.Open(filepath.Join(dir, "sub", "a"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q (%v)", got, err)
	}
	if err := f.Rename(filepath.Join(dir, "sub", "a"), filepath.Join(dir, "sub", "b")); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove(filepath.Join(dir, "sub", "b")); err != nil {
		t.Fatal(err)
	}
	if f.Crashed() {
		t.Fatal("healthy run reported a crash")
	}
}

// Package faultfs wraps a wal.FS with deterministic fault injection: short
// writes, fsync errors, and crash latches triggered at exact operation
// counts. It exists so the durability stack's recovery path is tested
// against the failures it claims to survive — a crash mid-record, mid
// segment rotation, or mid compaction-swap — rather than only against
// clean restarts.
//
// A "crash" models the process dying: the triggering operation takes
// partial effect (a short write leaves its prefix on disk, a crashed
// rename/remove simply doesn't happen), and every operation after it fails
// with ErrCrashed. The test then simulates the restart by reopening the
// same directory through a fresh, healthy filesystem.
package faultfs

import (
	"errors"
	"io"
	"sync"

	"activitytraj/internal/wal"
)

// ErrCrashed is returned by every operation after the crash point fires.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrInjected is returned by operations that fail without crashing (the
// transient-fault plan fields).
var ErrInjected = errors.New("faultfs: injected fault")

// Plan declares the faults to inject. Counts are 1-based occurrence
// indexes across the whole filesystem ("crash on the 3rd write"); zero
// disables that fault. At most one crash fires: the first trigger reached.
type Plan struct {
	// CrashOnWrite crashes during the Nth File.Write; WritePartial bytes of
	// that write reach the file first (a torn frame).
	CrashOnWrite int
	WritePartial int
	// CrashOnSync crashes during the Nth fsync — File.Sync and FS.SyncDir
	// share the counter (the data written before it stays on disk — fsync
	// reordering is not modeled, only the ack).
	CrashOnSync int
	// FailSync makes the Nth fsync (File.Sync or FS.SyncDir) return
	// ErrInjected without crashing: the transient fsync-failure path, after
	// which a fail-stop log must reject further appends.
	FailSync int
	// CrashOnCreate crashes on the Nth FS.Create before the file exists
	// (e.g. mid segment-rotation, after the old segment was sealed).
	CrashOnCreate int
	// CrashOnRename crashes on the Nth FS.Rename before it happens (e.g.
	// mid compaction-swap, after the snapshot was written but before the
	// manifest commit point).
	CrashOnRename int
	// CrashOnRemove crashes on the Nth FS.Remove before it happens (e.g.
	// mid WAL prune).
	CrashOnRemove int
}

// FS injects Plan's faults over a base filesystem.
type FS struct {
	base wal.FS
	plan Plan

	mu      sync.Mutex
	writes  int
	syncs   int
	creates int
	renames int
	removes int
	crashed bool
}

// New wraps base (nil selects the real filesystem) with plan.
func New(base wal.FS, plan Plan) *FS {
	if base == nil {
		base = wal.OSFS()
	}
	return &FS{base: base, plan: plan}
}

// Crashed reports whether the crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns the operation counts seen so far (writes, syncs, creates,
// renames, removes) — how tests discover the op indexes worth crashing at.
func (f *FS) Ops() (writes, syncs, creates, renames, removes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs, f.creates, f.renames, f.removes
}

// gate bumps *count and reports whether the operation must fail (the latch
// is set) and whether this very call tripped it. Caller holds f.mu.
func (f *FS) gate(count *int, at int) (crashed, tripped bool) {
	if f.crashed {
		return true, false
	}
	*count++
	if at > 0 && *count == at {
		f.crashed = true
		return true, true
	}
	return false, false
}

func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.base.MkdirAll(dir)
}

func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	crash, _ := f.gate(&f.creates, f.plan.CrashOnCreate)
	f.mu.Unlock()
	if crash {
		return nil, ErrCrashed
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.base.Open(name)
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.base.ReadDir(dir)
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	crash, _ := f.gate(&f.removes, f.plan.CrashOnRemove)
	f.mu.Unlock()
	if crash {
		return ErrCrashed
	}
	return f.base.Remove(name)
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	crash, _ := f.gate(&f.renames, f.plan.CrashOnRename)
	f.mu.Unlock()
	if crash {
		return ErrCrashed
	}
	return f.base.Rename(oldname, newname)
}

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	crash, _ := f.gate(&f.syncs, f.plan.CrashOnSync)
	fail := !crash && f.plan.FailSync > 0 && f.syncs == f.plan.FailSync
	f.mu.Unlock()
	if crash {
		return ErrCrashed
	}
	if fail {
		return ErrInjected
	}
	return f.base.SyncDir(dir)
}

var _ wal.FS = (*FS)(nil)

// faultFile threads writes and syncs through the plan.
type faultFile struct {
	fs *FS
	f  wal.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	crash, tripped := ff.fs.gate(&ff.fs.writes, ff.fs.plan.CrashOnWrite)
	partial := ff.fs.plan.WritePartial
	ff.fs.mu.Unlock()
	if crash {
		// The crashing write itself lands a prefix — the torn frame the
		// recovery path must truncate. Later writes land nothing.
		if tripped && partial > 0 {
			if partial > len(p) {
				partial = len(p)
			}
			n, _ := ff.f.Write(p[:partial])
			return n, ErrCrashed
		}
		return 0, ErrCrashed
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	crash, _ := ff.fs.gate(&ff.fs.syncs, ff.fs.plan.CrashOnSync)
	fail := !crash && ff.fs.plan.FailSync > 0 && ff.fs.syncs == ff.fs.plan.FailSync
	ff.fs.mu.Unlock()
	if crash {
		return ErrCrashed
	}
	if fail {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	// Closing is allowed even after a crash: the OS closes a dead process's
	// descriptors, and callers' cleanup paths should not double-fault.
	return ff.f.Close()
}

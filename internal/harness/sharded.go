package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
)

// ShardWorkers converts a total worker budget into the engine-clone pool
// size for a K-shard router: every search already fans out across up to K
// shard goroutines, so the pool gets workers/K clones (at least one). This
// is the division the sharded experiment applies so K shards × W workers
// never oversubscribes the host — a 1-core CI runner with K=4, W=4 runs one
// in-flight search fanned over 4 shards, not 16 goroutines.
func ShardWorkers(workers, shards int) int {
	if shards < 1 {
		shards = 1
	}
	clones := workers / shards
	if clones < 1 {
		clones = 1
	}
	return clones
}

// RunShardedWorkload executes qs against a fresh scatter-gather engine over
// r, serving through a pool of ShardWorkers(workers, K) engine clones (see
// ShardWorkers for why the budget divides). Shard caches are reset first so
// runs are measured from a cold cache.
func RunShardedWorkload(r *shard.Router, qs []query.Query, k int, ordered bool, workers int) (WorkloadResult, error) {
	eng := r.NewEngine()
	eng.ResetCaches()
	pe := query.NewParallelEngine(eng, ShardWorkers(workers, r.NumShards()))
	res := WorkloadResult{Method: eng.Name(), Queries: len(qs)}
	reqs := make([]query.Request, len(qs))
	for i, q := range qs {
		reqs[i] = query.Request{Query: q, K: k, Ordered: ordered}
	}
	start := time.Now()
	resps, err := pe.SearchAll(context.Background(), reqs)
	res.TotalTime = time.Since(start)
	for _, rp := range resps {
		res.Stats.Add(rp.Stats)
	}
	return res, err
}

// Sharded measures the sharded serving layer: the same ATSQ workload runs
// against spatially partitioned GAT routers at each shard count of
// Options.Shards, under every worker budget of Options.Workers (budgets
// divide across shards — see ShardWorkers). Alongside throughput it reports
// the planner's behaviour: how many shards an average query actually
// touched versus skipped (region lower bound above the query's reachable
// radius), and the per-search page traffic, which shrinks as shards not
// contributing to the top-k terminate early on the shared global bound.
func (s *Suite) Sharded(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 83})
		if err != nil {
			return err
		}
		// Repeat the workload so multi-worker pools stay busy.
		reps := qs
		for len(reps) < 64 {
			reps = append(reps, qs...)
		}
		tab := NewTable(
			fmt.Sprintf("Sharded serving — ATSQ on %s (%d queries, worker budget divides across shards)", dsName, len(reps)),
			"shards", "workers", "clones", "qps", "ms/query", "shards hit", "skipped", "pages/search")
		for _, k := range s.opts.Shards {
			r, err := shard.NewRouter(ds, shard.Config{Shards: k})
			if err != nil {
				return fmt.Errorf("harness: %d-shard router for %s: %w", k, dsName, err)
			}
			for _, workers := range s.opts.Workers {
				res, err := RunShardedWorkload(r, reps, s.opts.K, false, workers)
				if err != nil {
					return err
				}
				nq := float64(res.Queries)
				tab.AddRow(
					fmt.Sprint(k),
					fmt.Sprint(workers),
					fmt.Sprint(ShardWorkers(workers, k)),
					fmt.Sprintf("%.0f", nq/res.TotalTime.Seconds()),
					ms(res.AvgMs()),
					cnt(float64(res.Stats.ShardsSearched)/nq),
					cnt(float64(res.Stats.ShardsSkipped)/nq),
					cnt(res.AvgPageReads()),
				)
			}
		}
		tab.Write(w)
	}
	return nil
}

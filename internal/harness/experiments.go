package harness

import (
	"fmt"
	"io"

	"activitytraj/internal/dataset"
	"activitytraj/internal/gat"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Options configures a run of the experiment suite.
type Options struct {
	// Scale shrinks the LA/NY presets (1.0 = the full Table IV
	// cardinalities). Experiments default to 0.2 — small enough to keep
	// the whole suite in the minutes range, large enough that workloads
	// have well over k matches (below ~0.1 the spatial methods degrade to
	// exhaustive scans because the k-th match distance explodes).
	Scale float64
	// Queries is the workload size per configuration (the paper uses 50).
	Queries int
	// K is the default result count (Table V: 9).
	K int
	// Datasets selects "LA", "NY" or both.
	Datasets []string
	// Seed offsets workload generation.
	Seed int64
	// Workers is the worker-count sweep of the throughput experiment.
	// WithDefaults sets it to 1, 2, 4, 8 when empty (matching the
	// atsqbench -workers default). For the sharded experiment each entry
	// is a TOTAL budget that divides across the shard fan-out; see
	// ShardWorkers.
	Workers []int
	// Shards is the shard-count sweep of the sharded experiment.
	// WithDefaults sets it to 1, 2, 4 when empty.
	Shards []int
}

// WithDefaults fills unset options with the suite defaults.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.2
	}
	if o.Queries <= 0 {
		o.Queries = 15
	}
	if o.K <= 0 {
		o.K = queries.DefaultK
	}
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"LA", "NY"}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4}
	}
	return o
}

// Suite caches datasets and engine setups across experiments.
type Suite struct {
	opts   Options
	setups map[string]*Setup
	data   map[string]*trajectory.Dataset
}

// NewSuite returns an empty suite.
func NewSuite(opts Options) *Suite {
	return &Suite{
		opts:   opts.WithDefaults(),
		setups: make(map[string]*Setup),
		data:   make(map[string]*trajectory.Dataset),
	}
}

// Options returns the effective options.
func (s *Suite) Options() Options { return s.opts }

// Dataset returns (building and caching) the named preset dataset.
func (s *Suite) Dataset(name string) (*trajectory.Dataset, error) {
	if ds, ok := s.data[name]; ok {
		return ds, nil
	}
	var cfg dataset.Config
	switch name {
	case "LA":
		cfg = dataset.LA(s.opts.Scale)
	case "NY":
		cfg = dataset.NY(s.opts.Scale)
	default:
		return nil, fmt.Errorf("harness: unknown dataset %q", name)
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	s.data[name] = ds
	return ds, nil
}

// Setup returns (building and caching) the four-engine setup for a dataset.
func (s *Suite) Setup(name string) (*Setup, error) {
	if st, ok := s.setups[name]; ok {
		return st, nil
	}
	ds, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	st, err := BuildSetup(ds, gat.Config{})
	if err != nil {
		return nil, err
	}
	s.setups[name] = st
	return st, nil
}

func (s *Suite) workload(ds *trajectory.Dataset, cfg queries.Config) ([]query.Query, error) {
	cfg.NumQueries = s.opts.Queries
	if cfg.Seed == 0 {
		cfg.Seed = s.opts.Seed
	}
	return queries.Generate(ds, cfg)
}

// sweep runs one parameter sweep for one dataset and query type, writing a
// latency table and a work table (candidates / page reads).
func (s *Suite) sweep(
	w io.Writer,
	title string,
	dsName string,
	ordered bool,
	paramName string,
	paramValues []string,
	makeWorkload func(value string) ([]query.Query, int, error),
) error {
	st, err := s.Setup(dsName)
	if err != nil {
		return err
	}
	qt := "ATSQ"
	if ordered {
		qt = "OATSQ"
	}
	lat := NewTable(
		fmt.Sprintf("%s — %s on %s (avg ms/query, %d queries)", title, qt, dsName, s.opts.Queries),
		append([]string{paramName}, MethodNames...)...)
	work := NewTable(
		fmt.Sprintf("%s — %s on %s (avg candidates | pages read)", title, qt, dsName),
		append([]string{paramName}, MethodNames...)...)
	for _, v := range paramValues {
		qs, k, err := makeWorkload(v)
		if err != nil {
			return err
		}
		latRow := []string{v}
		workRow := []string{v}
		for _, e := range st.Engines {
			res, err := RunWorkload(st.TS, e, qs, k, ordered)
			if err != nil {
				return err
			}
			latRow = append(latRow, ms(res.AvgMs()))
			workRow = append(workRow, fmt.Sprintf("%s | %s", cnt(res.AvgCandidates()), cnt(res.AvgPageReads())))
		}
		lat.AddRow(latRow...)
		work.AddRow(workRow...)
	}
	lat.Write(w)
	work.Write(w)
	return nil
}

// EffectOfK reproduces Figure 3: k ∈ {5,10,15,20,25}.
func (s *Suite) EffectOfK(w io.Writer) error {
	ks := []int{5, 10, 15, 20, 25}
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		base, err := s.workload(ds, queries.Config{})
		if err != nil {
			return err
		}
		for _, ordered := range []bool{false, true} {
			values := make([]string, len(ks))
			for i, k := range ks {
				values[i] = fmt.Sprint(k)
			}
			kmap := map[string]int{}
			for i, k := range ks {
				kmap[values[i]] = k
			}
			err := s.sweep(w, "Fig.3 effect of k", dsName, ordered, "k", values,
				func(v string) ([]query.Query, int, error) { return base, kmap[v], nil })
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// EffectOfQ reproduces Figure 4: |Q| ∈ {2..6}.
func (s *Suite) EffectOfQ(w io.Writer) error {
	sizes := []int{2, 3, 4, 5, 6}
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		for _, ordered := range []bool{false, true} {
			values := make([]string, len(sizes))
			for i, n := range sizes {
				values[i] = fmt.Sprint(n)
			}
			smap := map[string]int{}
			for i, n := range sizes {
				smap[values[i]] = n
			}
			err := s.sweep(w, "Fig.4 effect of |Q|", dsName, ordered, "|Q|", values,
				func(v string) ([]query.Query, int, error) {
					qs, err := s.workload(ds, queries.Config{NumPoints: smap[v]})
					return qs, s.opts.K, err
				})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// EffectOfPhi reproduces Figure 5: |q.Φ| ∈ {1..5}.
func (s *Suite) EffectOfPhi(w io.Writer) error {
	sizes := []int{1, 2, 3, 4, 5}
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		for _, ordered := range []bool{false, true} {
			values := make([]string, len(sizes))
			for i, n := range sizes {
				values[i] = fmt.Sprint(n)
			}
			smap := map[string]int{}
			for i, n := range sizes {
				smap[values[i]] = n
			}
			err := s.sweep(w, "Fig.5 effect of |q.Φ|", dsName, ordered, "|q.Φ|", values,
				func(v string) ([]query.Query, int, error) {
					qs, err := s.workload(ds, queries.Config{ActsPerPoint: smap[v]})
					return qs, s.opts.K, err
				})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// EffectOfDiameter reproduces Figure 6: δ(Q) ∈ {5,10,20,30,50} km.
// Diameters are capped to the dataset region at small scales.
func (s *Suite) EffectOfDiameter(w io.Writer) error {
	diams := []float64{5, 10, 20, 30, 50}
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		for _, ordered := range []bool{false, true} {
			values := make([]string, len(diams))
			dmap := map[string]float64{}
			for i, d := range diams {
				values[i] = fmt.Sprintf("%.0fkm", d)
				dmap[values[i]] = d
			}
			err := s.sweep(w, "Fig.6 effect of δ(Q)", dsName, ordered, "diam", values,
				func(v string) ([]query.Query, int, error) {
					qs, err := s.workload(ds, queries.Config{DiameterKm: dmap[v]})
					return qs, s.opts.K, err
				})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Scalability reproduces Figure 7: prefixes of the NY dataset at 20%, 40%,
// 60%, 80% and 100% of its trajectories (the paper's 10K..50K).
func (s *Suite) Scalability(w io.Writer) error {
	ny, err := s.Dataset("NY")
	if err != nil {
		return err
	}
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, ordered := range []bool{false, true} {
		qt := "ATSQ"
		if ordered {
			qt = "OATSQ"
		}
		lat := NewTable(
			fmt.Sprintf("Fig.7 effect of |D| — %s on NY samples (avg ms/query)", qt),
			append([]string{"|D|"}, MethodNames...)...)
		for _, f := range fracs {
			n := int(float64(len(ny.Trajs)) * f)
			sub := ny.Sample(n)
			st, err := BuildSetup(sub, gat.Config{})
			if err != nil {
				return err
			}
			qs, err := s.workload(sub, queries.Config{Seed: s.opts.Seed + 31})
			if err != nil {
				return err
			}
			row := []string{fmt.Sprint(n)}
			for _, e := range st.Engines {
				res, err := RunWorkload(st.TS, e, qs, s.opts.K, ordered)
				if err != nil {
					return err
				}
				row = append(row, ms(res.AvgMs()))
			}
			lat.AddRow(row...)
		}
		lat.Write(w)
	}
	return nil
}

// Granularity reproduces Figure 8: GAT grid depth d ∈ {5,6,7,8}
// (32..256 partitions per axis), reporting ATSQ/OATSQ latency and the
// index memory cost.
func (s *Suite) Granularity(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		ts, err := s.Setup(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 97})
		if err != nil {
			return err
		}
		tab := NewTable(
			fmt.Sprintf("Fig.8 partition granularity — GAT on %s", dsName),
			"#partition", "ATSQ ms", "OATSQ ms", "mem MB", "HICL MB", "ITL MB")
		for _, d := range []int{5, 6, 7, 8} {
			idx, err := gat.Build(ts.TS, gat.Config{Depth: d, MemLevels: 6})
			if err != nil {
				return err
			}
			e := gat.NewEngine(idx)
			a, err := RunWorkload(ts.TS, e, qs, s.opts.K, false)
			if err != nil {
				return err
			}
			o, err := RunWorkload(ts.TS, e, qs, s.opts.K, true)
			if err != nil {
				return err
			}
			bd := idx.Breakdown()
			tab.AddRow(fmt.Sprint(1<<d), ms(a.AvgMs()), ms(o.AvgMs()),
				mb(bd.Total), mb(bd.HICL), mb(bd.ITL))
		}
		tab.Write(w)
	}
	return nil
}

// DatasetStats reproduces Table IV for the generated datasets, alongside
// the paper's published cardinalities scaled by Options.Scale.
func (s *Suite) DatasetStats(w io.Writer) error {
	tab := NewTable(
		fmt.Sprintf("Table IV dataset statistics (scale %.3g; paper targets scaled alongside)", s.opts.Scale),
		"dataset", "#trajectory", "target", "#points", "#activity", "target", "#distinct", "target")
	targets := map[string][4]int{
		"LA": {dataset.LATrajectories, dataset.LAVenues, dataset.LAActivities, dataset.LADistinctActs},
		"NY": {dataset.NYTrajectories, dataset.NYVenues, dataset.NYActivities, dataset.NYDistinctActs},
	}
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		st := ds.Stats()
		tg := targets[dsName]
		scale := s.opts.Scale
		tab.AddRow(dsName,
			fmt.Sprint(st.Trajectories), fmt.Sprint(int(float64(tg[0])*scale)),
			fmt.Sprint(st.Points),
			fmt.Sprint(st.ActivityTokens), fmt.Sprint(int(float64(tg[2])*scale)),
			fmt.Sprint(st.DistinctActs), fmt.Sprint(int(float64(tg[3])*scale)),
		)
	}
	tab.Write(w)
	return nil
}

// Ablations measures the design choices GAT layers together: the tight
// lower bound of Algorithm 2 vs the naive queue-head bound (A1) and the
// TAS pre-filter (A2), reporting candidates, page reads and latency.
func (s *Suite) Ablations(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		st, err := s.Setup(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 13})
		if err != nil {
			return err
		}
		variants := []struct {
			name string
			cfg  gat.Config
		}{
			{"GAT (full)", gat.Config{}},
			{"loose LB (A1)", gat.Config{LooseLowerBound: true}},
			{"no TAS (A2)", gat.Config{DisableTAS: true}},
		}
		tab := NewTable(
			fmt.Sprintf("Ablations — GAT variants on %s (ATSQ, avg per query)", dsName),
			"variant", "ms", "candidates", "sketch-rej", "hdr-rej", "pages", "KB-decoded")
		for _, v := range variants {
			idx, err := gat.Build(st.TS, v.cfg)
			if err != nil {
				return err
			}
			e := gat.NewEngine(idx)
			res, err := RunWorkload(st.TS, e, qs, s.opts.K, false)
			if err != nil {
				return err
			}
			tab.AddRow(v.name, ms(res.AvgMs()), cnt(res.AvgCandidates()),
				cnt(float64(res.Stats.SketchRejected)/float64(res.Queries)),
				cnt(float64(res.Stats.HeaderOnlyRejects)/float64(res.Queries)),
				cnt(res.AvgPageReads()),
				ms(res.AvgKBDecoded()))
		}
		tab.Write(w)
	}
	return nil
}

// All runs every experiment in paper order.
func (s *Suite) All(w io.Writer) error {
	steps := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"stats", s.DatasetStats},
		{"k", s.EffectOfK},
		{"q", s.EffectOfQ},
		{"phi", s.EffectOfPhi},
		{"diameter", s.EffectOfDiameter},
		{"scale", s.Scalability},
		{"granularity", s.Granularity},
		{"ablations", s.Ablations},
		{"throughput", s.Throughput},
		{"mixed", s.Mixed},
		{"sharded", s.Sharded},
		{"watch", s.Watch},
	}
	for _, st := range steps {
		fmt.Fprintf(w, "==== experiment: %s ====\n\n", st.name)
		if err := st.fn(w); err != nil {
			return fmt.Errorf("experiment %s: %w", st.name, err)
		}
	}
	return nil
}

// Run dispatches one named experiment ("all" runs the suite).
func (s *Suite) Run(name string, w io.Writer) error {
	switch name {
	case "all":
		return s.All(w)
	case "stats":
		return s.DatasetStats(w)
	case "k":
		return s.EffectOfK(w)
	case "q":
		return s.EffectOfQ(w)
	case "phi":
		return s.EffectOfPhi(w)
	case "diameter":
		return s.EffectOfDiameter(w)
	case "scale":
		return s.Scalability(w)
	case "granularity":
		return s.Granularity(w)
	case "ablations":
		return s.Ablations(w)
	case "throughput":
		return s.Throughput(w)
	case "mixed":
		return s.Mixed(w)
	case "sharded":
		return s.Sharded(w)
	case "cluster":
		return s.Cluster(w)
	case "watch":
		return s.Watch(w)
	default:
		return fmt.Errorf("harness: unknown experiment %q (want all|stats|k|q|phi|diameter|scale|granularity|ablations|throughput|mixed|sharded|cluster|watch)", name)
	}
}

package harness

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// MixedOptions configures a mixed read/write run against a dynamic index.
type MixedOptions struct {
	// ReadFraction is the probability an operation is a search (0.95 models
	// a read-heavy service, 0.5 a write-heavy backfill).
	ReadFraction float64
	// Ops is the total operation count across all workers.
	Ops int
	// K is the search result count.
	K int
	// Workers is the number of concurrent client goroutines (each owns an
	// engine clone). <= 0 selects 1.
	Workers int
	// Seed drives the per-worker operation mix.
	Seed int64
}

// LatencySummary reports tail latency over one operation class.
type LatencySummary struct {
	Count              int
	P50, P95, P99, Max time.Duration
}

func summarize(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	slices.Sort(ds)
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(ds)-1))
		return ds[i]
	}
	return LatencySummary{
		Count: len(ds),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   ds[len(ds)-1],
	}
}

// MixedResult aggregates one mixed read/write run.
type MixedResult struct {
	Ops         int
	Duration    time.Duration
	Search      LatencySummary
	Insert      LatencySummary
	Compactions int64             // compactions completed during the run
	SearchStats query.SearchStats // summed over all searches of the run
}

// PagesPerSearch returns the mean simulated disk pages touched per search.
func (r MixedResult) PagesPerSearch() float64 {
	if r.Search.Count == 0 {
		return 0
	}
	return float64(r.SearchStats.PageReads) / float64(r.Search.Count)
}

// RunMixedWorkload hammers a dynamic index with a search/insert mix:
// Workers goroutines each draw operations — a search from qs (round-robin)
// with probability ReadFraction, otherwise the next trajectory from stream
// (falling back to a search once the stream is exhausted) — until Ops
// operations have run. It reports per-class tail latency, which captures
// the cost of generation swaps and compactions happening mid-run.
func RunMixedWorkload(d *delta.Dynamic, stream []trajectory.Trajectory, qs []query.Query, opt MixedOptions) (MixedResult, error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Ops <= 0 {
		opt.Ops = 2 * len(stream)
	}
	if opt.K <= 0 {
		opt.K = queries.DefaultK
	}
	before := d.Stats().Compactions

	var opCursor, streamCursor, qCursor atomic.Int64
	var mu sync.Mutex
	var searchLat, insertLat []time.Duration
	var aggStats query.SearchStats
	var firstErr error
	var wg sync.WaitGroup
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			eng := d.NewEngine()
			var sl, il []time.Duration
			var sst query.SearchStats
			var err error
			for {
				if int(opCursor.Add(1)) > opt.Ops {
					break
				}
				insert := rng.Float64() >= opt.ReadFraction
				if insert {
					si := int(streamCursor.Add(1)) - 1
					if si < len(stream) {
						t0 := time.Now()
						_, err = d.Insert(trajectory.Trajectory{Pts: stream[si].Pts})
						il = append(il, time.Since(t0))
					} else {
						insert = false // stream drained: serve a read instead
					}
				}
				if !insert {
					q := qs[int(qCursor.Add(1)-1)%len(qs)]
					t0 := time.Now()
					var resp query.Response
					resp, err = eng.Search(ctx, query.Request{Query: q, K: opt.K})
					sl = append(sl, time.Since(t0))
					sst.Add(resp.Stats)
				}
				if err != nil {
					break
				}
			}
			mu.Lock()
			searchLat = append(searchLat, sl...)
			insertLat = append(insertLat, il...)
			aggStats.Add(sst)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res := MixedResult{
		Ops:         len(searchLat) + len(insertLat),
		Duration:    time.Since(start),
		Search:      summarize(searchLat),
		Insert:      summarize(insertLat),
		Compactions: d.Stats().Compactions - before,
		SearchStats: aggStats,
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, d.LastCompactErr()
}

// Mixed measures dynamic-index serving under live ingestion: each dataset
// starts with 80% of its trajectories compiled into the base index, the
// remaining 20% arrive through Insert while searches run concurrently, at
// a read-heavy (95/5) and a write-heavy (50/50) search/insert mix. The
// compaction threshold is sized so generation swaps happen mid-run, so the
// search tail latencies include searches that overlapped a compaction.
// This extends the paper (whose index is built once) toward the streaming
// regime of production check-in services.
func (s *Suite) Mixed(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 53})
		if err != nil {
			return err
		}
		baseN := len(ds.Trajs) * 4 / 5
		stream := ds.Trajs[baseN:]
		tab := NewTable(
			fmt.Sprintf("Mixed read/write — %s (%d base + %d streamed, %d workers)",
				dsName, baseN, len(stream), 4),
			"mix", "ops", "compactions", "pages/search",
			"search p50", "p95", "p99", "max (ms)",
			"insert p50", "p95", "max (ms)")
		for _, readFrac := range []float64{0.95, 0.5} {
			base := ds.Sample(baseN)
			base.Name = ds.Name
			// Compact roughly twice over the run: the expected insert count
			// is the write share of the op budget, capped by the stream.
			expInserts := int(float64(4*len(stream)) * (1 - readFrac))
			if expInserts > len(stream) {
				expInserts = len(stream)
			}
			d, err := delta.NewDynamic(base, delta.Config{
				CompactThreshold: max(expInserts/2, 1),
			})
			if err != nil {
				return err
			}
			res, err := RunMixedWorkload(d, stream, qs, MixedOptions{
				ReadFraction: readFrac,
				Ops:          4 * len(stream),
				K:            s.opts.K,
				Workers:      4,
				Seed:         s.opts.Seed,
			})
			if err != nil {
				return fmt.Errorf("harness: mixed %s %.0f/%.0f: %w",
					dsName, readFrac*100, (1-readFrac)*100, err)
			}
			tab.AddRow(
				fmt.Sprintf("%.0f/%.0f", readFrac*100, (1-readFrac)*100),
				fmt.Sprint(res.Ops),
				fmt.Sprint(res.Compactions),
				cnt(res.PagesPerSearch()),
				lms(res.Search.P50), lms(res.Search.P95), lms(res.Search.P99), lms(res.Search.Max),
				lms(res.Insert.P50), lms(res.Insert.P95), lms(res.Insert.Max),
			)
		}
		tab.Write(w)
	}
	return nil
}

// lms formats a latency in milliseconds.
func lms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

package harness

import (
	"fmt"
	"io"

	"activitytraj/internal/queries"
)

// Throughput measures concurrent query execution: each engine runs the
// same workload with 1, 2, 4 and 8 worker goroutines (engine clones over
// the shared, immutable indexes) and reports queries per second. This is
// an extension beyond the paper — production trajectory services field
// many queries at once — enabled by the read-only nature of all four
// index structures.
func (s *Suite) Throughput(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		st, err := s.Setup(dsName)
		if err != nil {
			return err
		}
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 71})
		if err != nil {
			return err
		}
		// Repeat the workload so each measurement has enough queries to
		// keep all workers busy.
		reps := qs
		for len(reps) < 64 {
			reps = append(reps, qs...)
		}
		// WithDefaults guarantees a non-empty sweep.
		sweep := s.opts.Workers
		tab := NewTable(
			fmt.Sprintf("Throughput — ATSQ on %s (queries/sec, %d queries)", dsName, len(reps)),
			"workers", "IL", "RT", "IRT", "GAT")
		for _, workers := range sweep {
			row := []string{fmt.Sprint(workers)}
			for _, e := range st.Engines {
				ce, ok := e.(CloneableEngine)
				if !ok {
					row = append(row, "n/a")
					continue
				}
				res, err := RunWorkloadParallel(st.TS, ce, reps, s.opts.K, false, workers)
				if err != nil {
					return err
				}
				qps := float64(res.Queries) / res.TotalTime.Seconds()
				row = append(row, fmt.Sprintf("%.0f", qps))
			}
			tab.AddRow(row...)
		}
		tab.Write(w)
	}
	return nil
}

package harness

import (
	"bytes"
	"strings"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/gat"
	"activitytraj/internal/queries"
)

func tinySuite() *Suite {
	return NewSuite(Options{Scale: 0.008, Queries: 3, K: 3, Datasets: []string{"NY"}, Seed: 2})
}

func TestSuiteDatasetCaching(t *testing.T) {
	s := tinySuite()
	a, err := s.Dataset("NY")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset("NY")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset must be cached")
	}
	if _, err := s.Dataset("XX"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestRunWorkload(t *testing.T) {
	s := tinySuite()
	st, err := s.Setup("NY")
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Dataset("NY")
	qs, err := queries.Generate(ds, queries.Config{NumQueries: 3, NumPoints: 2, ActsPerPoint: 2, DiameterKm: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range st.Engines {
		res, err := RunWorkload(st.TS, e, qs, 3, false)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Queries != 3 || res.Method != e.Name() {
			t.Fatalf("result = %+v", res)
		}
		if res.AvgMs() < 0 || res.AvgCandidates() < 0 {
			t.Fatalf("negative averages: %+v", res)
		}
	}
	if st.Engine("GAT") == nil || st.Engine("nope") != nil {
		t.Fatal("Engine lookup broken")
	}
}

func TestDatasetStatsExperiment(t *testing.T) {
	s := tinySuite()
	var buf bytes.Buffer
	if err := s.DatasetStats(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table IV") || !strings.Contains(out, "NY") {
		t.Fatalf("output missing expected content:\n%s", out)
	}
}

func TestGranularityExperiment(t *testing.T) {
	s := tinySuite()
	var buf bytes.Buffer
	if err := s.Granularity(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"32", "64", "128", "256", "mem MB"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("granularity output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunDispatch(t *testing.T) {
	s := tinySuite()
	var buf bytes.Buffer
	if err := s.Run("stats", &buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("nonsense", &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "a", "bb")
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "333") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestBuildSetupAblationConfigs(t *testing.T) {
	cfg := dataset.NY(0.006)
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildSetup(ds, gat.Config{Depth: 5, MemLevels: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Engines) != 4 {
		t.Fatalf("engines = %d", len(st.Engines))
	}
	names := map[string]bool{}
	for _, e := range st.Engines {
		names[e.Name()] = true
	}
	for _, want := range MethodNames {
		if !names[want] {
			t.Fatalf("missing engine %s", want)
		}
	}
}

package harness

import (
	"fmt"
	"sync"
	"time"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/query"
)

// CloneableEngine is an engine that can spawn independent copies sharing
// its immutable index structures. All four engines implement it; clones
// read the shared trajectory store, whose buffer pool is concurrency-safe.
type CloneableEngine interface {
	query.Engine
	Clone() query.Engine
}

// RunWorkloadParallel executes qs across workers goroutines, each with its
// own engine clone, and aggregates the outcome. Total wall time divided by
// the query count gives effective throughput, not per-query latency.
func RunWorkloadParallel(ts *evaluate.TrajStore, e CloneableEngine, qs []query.Query, k int, ordered bool, workers int) (WorkloadResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(qs) && len(qs) > 0 {
		workers = len(qs)
	}
	ts.ResetPool()
	res := WorkloadResult{Method: e.Name(), Queries: len(qs)}

	type partial struct {
		stats query.SearchStats
		err   error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := e.Clone()
			for qi := w; qi < len(qs); qi += workers {
				var err error
				if ordered {
					_, err = eng.SearchOATSQ(qs[qi], k)
				} else {
					_, err = eng.SearchATSQ(qs[qi], k)
				}
				if err != nil {
					parts[w].err = fmt.Errorf("worker %d query %d: %w", w, qi, err)
					return
				}
				parts[w].stats.Add(eng.LastStats())
			}
		}(w)
	}
	wg.Wait()
	res.TotalTime = time.Since(start)
	for _, p := range parts {
		if p.err != nil {
			return res, p.err
		}
		res.Stats.Add(p.stats)
	}
	return res, nil
}

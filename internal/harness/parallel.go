package harness

import (
	"time"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/query"
)

// CloneableEngine is an engine that can spawn independent copies sharing
// its immutable index structures. All four engines implement it; clones
// read the shared trajectory store, whose buffer pool and APL cache are
// concurrency-safe.
type CloneableEngine = query.CloneableEngine

// RunWorkloadParallel executes qs across a ParallelEngine with the given
// worker count and aggregates the outcome. Total wall time divided by the
// query count gives effective throughput, not per-query latency.
func RunWorkloadParallel(ts *evaluate.TrajStore, e CloneableEngine, qs []query.Query, k int, ordered bool, workers int) (WorkloadResult, error) {
	if workers < 1 {
		workers = 1
	}
	resetCaches(ts, e)
	pe := query.NewParallelEngine(e, workers)
	res := WorkloadResult{Method: e.Name(), Queries: len(qs)}
	start := time.Now()
	_, err := pe.SearchBatch(qs, k, ordered)
	res.TotalTime = time.Since(start)
	res.Stats = pe.LastStats()
	return res, err
}

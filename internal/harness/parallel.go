package harness

import (
	"context"
	"time"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/query"
)

// CloneableEngine is an engine that can spawn independent copies sharing
// its immutable index structures. All four engines implement it; clones
// read the shared trajectory store, whose buffer pool and APL cache are
// concurrency-safe.
type CloneableEngine = query.CloneableEngine

// RunWorkloadParallel executes qs across a ParallelEngine with the given
// worker count and aggregates the outcome. Total wall time divided by the
// query count gives effective throughput, not per-query latency.
func RunWorkloadParallel(ts *evaluate.TrajStore, e CloneableEngine, qs []query.Query, k int, ordered bool, workers int) (WorkloadResult, error) {
	if workers < 1 {
		workers = 1
	}
	resetCaches(ts, e)
	pe := query.NewParallelEngine(e, workers)
	res := WorkloadResult{Method: e.Name(), Queries: len(qs)}
	reqs := make([]query.Request, len(qs))
	for i, q := range qs {
		reqs[i] = query.Request{Query: q, K: k, Ordered: ordered}
	}
	start := time.Now()
	resps, err := pe.SearchAll(context.Background(), reqs)
	res.TotalTime = time.Since(start)
	for _, r := range resps {
		res.Stats.Add(r.Stats)
	}
	return res, err
}

// Package harness builds engine line-ups, runs query workloads against
// them with wall-clock and statistics accounting, and renders the paper's
// tables and figures as text. Every experiment of Section VII (Figures 3–8,
// Tables IV–V) and the design-choice ablations have a runner here; the
// atsqbench command and the repository's testing.B benches are thin
// wrappers around this package.
package harness

import (
	"context"
	"fmt"
	"time"

	"activitytraj/internal/baseline"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Setup is one dataset with the four engines built over a shared store.
type Setup struct {
	DS      *trajectory.Dataset
	TS      *evaluate.TrajStore
	Engines []query.Engine // IL, RT, IRT, GAT — the paper's ordering
	GATIdx  *gat.Index
}

// MethodNames lists engine names in presentation order.
var MethodNames = []string{"IL", "RT", "IRT", "GAT"}

// BuildSetup constructs the shared trajectory store and all four engines.
func BuildSetup(ds *trajectory.Dataset, gatCfg gat.Config) (*Setup, error) {
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		return nil, fmt.Errorf("harness: trajstore for %s: %w", ds.Name, err)
	}
	idx, err := gat.Build(ts, gatCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: gat for %s: %w", ds.Name, err)
	}
	return &Setup{
		DS: ds,
		TS: ts,
		Engines: []query.Engine{
			baseline.BuildIL(ts),
			baseline.BuildRT(ts, 0, 0),
			baseline.BuildIRT(ts, 0, 0),
			gat.NewEngine(idx),
		},
		GATIdx: idx,
	}, nil
}

// Engine returns the engine with the given name.
func (s *Setup) Engine(name string) query.Engine {
	for _, e := range s.Engines {
		if e.Name() == name {
			return e
		}
	}
	return nil
}

// WorkloadResult aggregates one engine's run over a workload.
type WorkloadResult struct {
	Method    string
	Queries   int
	TotalTime time.Duration
	Stats     query.SearchStats // summed over queries
}

// AvgMs returns the mean per-query latency in milliseconds.
func (w WorkloadResult) AvgMs() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.TotalTime.Microseconds()) / 1000 / float64(w.Queries)
}

// AvgCandidates returns the mean candidates per query.
func (w WorkloadResult) AvgCandidates() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.Stats.Candidates) / float64(w.Queries)
}

// AvgPageReads returns the mean simulated disk pages touched per query.
func (w WorkloadResult) AvgPageReads() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.Stats.PageReads) / float64(w.Queries)
}

// AvgKBDecoded returns the mean kibibytes of segment data decoded per query
// (posting blocks, coordinate points, HICL lists).
func (w WorkloadResult) AvgKBDecoded() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.Stats.BytesDecoded) / 1024 / float64(w.Queries)
}

// cacheResetter is implemented by engines holding cross-query caches of
// their own (beyond the TrajStore's) that cold-cache runs must clear.
type cacheResetter interface{ ResetCaches() }

// resetCaches puts the shared storage layer and any engine-owned caches in
// the cold state, so engines are measured identically regardless of run
// order.
func resetCaches(ts *evaluate.TrajStore, e query.Engine) {
	ts.ResetPool()
	if cr, ok := e.(cacheResetter); ok {
		cr.ResetCaches()
	}
}

// RunWorkload executes qs against e and aggregates timing and statistics.
// The shared buffer pool and caches are reset first so engines are measured
// from a cold cache regardless of run order.
func RunWorkload(ts *evaluate.TrajStore, e query.Engine, qs []query.Query, k int, ordered bool) (WorkloadResult, error) {
	resetCaches(ts, e)
	ctx := context.Background()
	res := WorkloadResult{Method: e.Name(), Queries: len(qs)}
	for qi, q := range qs {
		start := time.Now()
		resp, err := e.Search(ctx, query.Request{Query: q, K: k, Ordered: ordered})
		res.TotalTime += time.Since(start)
		if err != nil {
			return res, fmt.Errorf("harness: %s query %d: %w", e.Name(), qi, err)
		}
		res.Stats.Add(resp.Stats)
	}
	return res, nil
}

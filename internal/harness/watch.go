package harness

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/subscribe"
	"activitytraj/internal/trajectory"
)

// WatchOptions configures a standing-query run against a dynamic index.
type WatchOptions struct {
	// Subscribers is how many standing queries are registered (cycling over
	// the workload queries).
	Subscribers int
	// Mutations is the total mutation count (inserts + deletes).
	Mutations int
	// DeleteFraction is the probability a mutation deletes a previously
	// inserted trajectory instead of inserting the next one.
	DeleteFraction float64
	// K is each subscription's result count.
	K int
	// Seed drives the mutation mix.
	Seed int64
}

// WatchResult aggregates one standing-query run.
type WatchResult struct {
	Mutations int
	Duration  time.Duration
	// Delivery is the latency from an insert being applied to the index to a
	// consumer goroutine holding the resulting join event — the full
	// observer → dispatcher → prefilter/score → ring → wake path.
	Delivery LatencySummary
	Stats    subscribe.Stats
}

// RejectRate returns the fraction of (mutation, subscription) evaluations
// the admissible prefilter discarded without exact scoring.
func (r WatchResult) RejectRate() float64 {
	if evals := r.Stats.PrefilterRejected + r.Stats.Scored; evals > 0 {
		return float64(r.Stats.PrefilterRejected) / float64(evals)
	}
	return 0
}

// RunWatchWorkload registers opt.Subscribers standing queries on d, streams
// a mixed insert/delete workload through it, and measures event-delivery
// latency at concurrent consumers (one goroutine per subscription, blocking
// in Subscription.Next like a streaming handler would).
func RunWatchWorkload(d *delta.Dynamic, stream []trajectory.Trajectory, qs []query.Query, opt WatchOptions) (WatchResult, error) {
	if opt.K <= 0 {
		opt.K = queries.DefaultK
	}
	if opt.Mutations <= 0 {
		opt.Mutations = len(stream)
	}
	hub := subscribe.NewDynamicHub(d, subscribe.Options{})
	defer hub.Close()

	subs := make([]*subscribe.Subscription, opt.Subscribers)
	for i := range subs {
		s, err := hub.Subscribe(context.Background(), query.Request{Query: qs[i%len(qs)], K: opt.K})
		if err != nil {
			return WatchResult{}, err
		}
		subs[i] = s
	}

	// insertAt is written under its mutex across the whole insert, so a
	// consumer that sees the join event (which can only exist after the
	// insert applied) always finds the timestamp.
	var tmu sync.Mutex
	insertAt := make(map[trajectory.TrajID]time.Time)
	var lmu sync.Mutex
	var delivery []time.Duration
	var cwg sync.WaitGroup
	for _, s := range subs {
		cwg.Add(1)
		go func(s *subscribe.Subscription) {
			defer cwg.Done()
			var cursor uint64
			for {
				evs, wait, closed := s.Next(cursor)
				now := time.Now()
				for _, ev := range evs {
					cursor = ev.Seq
					if ev.Kind != subscribe.EventJoin {
						continue
					}
					tmu.Lock()
					t0, ok := insertAt[ev.ID]
					tmu.Unlock()
					if ok {
						lmu.Lock()
						delivery = append(delivery, now.Sub(t0))
						lmu.Unlock()
					}
				}
				if closed {
					return
				}
				if len(evs) == 0 {
					<-wait
				}
			}
		}(s)
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	var live []trajectory.TrajID
	si := 0
	start := time.Now()
	for m := 0; m < opt.Mutations; m++ {
		if rng.Float64() < opt.DeleteFraction && len(live) > 0 {
			i := rng.Intn(len(live))
			if err := d.Delete(live[i]); err != nil {
				return WatchResult{}, err
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		tr := stream[si%len(stream)]
		si++
		tmu.Lock()
		t0 := time.Now()
		id, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			tmu.Unlock()
			return WatchResult{}, err
		}
		insertAt[id] = t0
		tmu.Unlock()
		live = append(live, id)
	}
	hub.Sync()
	dur := time.Since(start)
	st := hub.Stats()
	hub.Close() // closes subscriptions; consumers drain and exit
	cwg.Wait()

	return WatchResult{
		Mutations: opt.Mutations,
		Duration:  dur,
		Delivery:  summarize(delivery),
		Stats:     st,
	}, nil
}

// Watch measures the subscription engine under live ingestion: standing
// queries are maintained incrementally while a mixed 80/20 insert/delete
// stream mutates the index, sweeping the subscriber count. The table
// reports the reverse-Algorithm-2 prefilter's reject rate (the lever that
// keeps per-insert maintenance sublinear in subscribers), the member-delete
// re-search count, and join-event delivery latency percentiles as seen by
// blocking consumers. This extends the paper's one-shot query model to the
// continuous-query regime of a live check-in service.
func (s *Suite) Watch(w io.Writer) error {
	for _, dsName := range s.opts.Datasets {
		ds, err := s.Dataset(dsName)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{Seed: s.opts.Seed + 71})
		if err != nil {
			return err
		}
		baseN := len(ds.Trajs) * 4 / 5
		stream := ds.Trajs[baseN:]
		tab := NewTable(
			fmt.Sprintf("Standing queries — %s (%d base, %d mutations, 20%% deletes)",
				dsName, baseN, len(stream)),
			"subscribers", "events", "reject-rate", "scored", "admitted", "re-searches",
			"deliver p50", "p95", "p99", "max (ms)")
		for _, nsubs := range []int{1, 10, 100} {
			base := ds.Sample(baseN)
			base.Name = ds.Name
			d, err := delta.NewDynamic(base, delta.Config{
				CompactThreshold: max(len(stream)/2, 1),
			})
			if err != nil {
				return err
			}
			res, err := RunWatchWorkload(d, stream, qs, WatchOptions{
				Subscribers:    nsubs,
				Mutations:      len(stream),
				DeleteFraction: 0.2,
				K:              s.opts.K,
				Seed:           s.opts.Seed,
			})
			if err != nil {
				return fmt.Errorf("harness: watch %s subs=%d: %w", dsName, nsubs, err)
			}
			tab.AddRow(
				fmt.Sprint(nsubs),
				fmt.Sprint(res.Stats.Events),
				fmt.Sprintf("%.2f", res.RejectRate()),
				fmt.Sprint(res.Stats.Scored),
				fmt.Sprint(res.Stats.Admitted),
				fmt.Sprint(res.Stats.Researches),
				lms(res.Delivery.P50), lms(res.Delivery.P95), lms(res.Delivery.P99), lms(res.Delivery.Max),
			)
		}
		tab.Write(w)
	}
	return nil
}

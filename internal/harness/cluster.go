package harness

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"time"

	"activitytraj/internal/cluster"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

// benchReplica is one in-process shard server: a volatile cluster node
// behind a real HTTP listener, so the router path being measured includes
// serialization and the loopback network stack.
type benchReplica struct {
	node *cluster.Node
	srv  *httptest.Server
}

// kill takes the replica off the network the hard way — the listener
// closes, in-flight and future connections fail — which is the failure the
// router's failover tier is built for.
func (r *benchReplica) kill() {
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
	}
	if r.node != nil {
		r.node.Close()
		r.node = nil
	}
}

type benchCluster struct {
	router   *cluster.Router
	replicas [][]*benchReplica // [shard][replica]
}

func (bc *benchCluster) close() {
	if bc.router != nil {
		bc.router.Close()
	}
	for _, g := range bc.replicas {
		for _, rep := range g {
			rep.kill()
		}
	}
}

// bootBenchCluster starts shards × nReplicas volatile node servers and a
// router over them. Backoff and breaker tuning are modest rather than
// test-fast: the degraded phase is supposed to show the real cost of
// failing over, not hide it.
func bootBenchCluster(ds *trajectory.Dataset, shards, nReplicas, workers int) (*benchCluster, error) {
	l, err := shard.PlanLayout(ds, shards, 0)
	if err != nil {
		return nil, fmt.Errorf("plan layout: %w", err)
	}
	bc := &benchCluster{}
	urls := make([][]string, shards)
	for si := 0; si < shards; si++ {
		var group []*benchReplica
		for ri := 0; ri < nReplicas; ri++ {
			n, _, err := cluster.OpenNode(ds, l, cluster.NodeConfig{Shard: si})
			if err != nil {
				bc.close()
				return nil, fmt.Errorf("shard %d replica %d: %w", si, ri, err)
			}
			srv := httptest.NewServer(cluster.NewNodeServer(n, cluster.NodeServerOptions{
				Workers: workers,
				Vocab:   ds.Vocab,
			}).Handler())
			group = append(group, &benchReplica{node: n, srv: srv})
			urls[si] = append(urls[si], srv.URL)
		}
		bc.replicas = append(bc.replicas, group)
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Topology:         cluster.TopologyOf(l, urls),
		TryTimeout:       5 * time.Second,
		Backoff:          cluster.Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond},
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		// Replica failures are the scenario under test, not news: keep the
		// failover chatter out of the latency tables.
		ErrorLog: log.New(io.Discard, "", 0),
	})
	if err != nil {
		bc.close()
		return nil, fmt.Errorf("router: %w", err)
	}
	bc.router = r
	return bc, nil
}

// timedRun pushes qs through the router one at a time, recording per-query
// wall time. It returns the latency list, the responses (for the exactness
// cross-check between phases), and how many answers were partial.
func timedRun(r *cluster.Router, qs []query.Query, k int) ([]time.Duration, []query.Response, int, error) {
	lats := make([]time.Duration, 0, len(qs))
	resps := make([]query.Response, 0, len(qs))
	partial := 0
	for i, q := range qs {
		start := time.Now()
		resp, err := r.Search(context.Background(), query.Request{Query: q, K: k})
		if err != nil {
			return nil, nil, 0, fmt.Errorf("query %d: %w", i, err)
		}
		lats = append(lats, time.Since(start))
		resps = append(resps, resp)
		if resp.Partial {
			partial++
		}
	}
	return lats, resps, partial, nil
}

// sameResults reports whether two response lists carry byte-identical
// (ID, distance) result sequences.
func sameResults(a, b []query.Response) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Results) != len(b[i].Results) {
			return false
		}
		for j := range a[i].Results {
			x, y := a[i].Results[j], b[i].Results[j]
			if x.ID != y.ID || x.Dist != y.Dist {
				return false
			}
		}
	}
	return true
}

// Cluster measures the cluster tier's serving latency under failure: the
// same ATSQ workload runs against an in-process multi-shard, two-replica
// cluster three times — all replicas healthy, one replica of every shard
// killed (failover path, answers must stay byte-identical), and finally one
// whole shard dark (degraded mode, answers marked partial). Reported as
// p50/p95/p99/max per phase; the degraded tail shows what breaker trips and
// retries cost. Not part of "all": it boots live HTTP listeners.
func (s *Suite) Cluster(w io.Writer) error {
	fmt.Fprintln(w, "Experiment: cluster tier — search latency healthy vs. degraded")
	fmt.Fprintln(w)

	shards := 1
	for _, k := range s.opts.Shards {
		if k > shards {
			shards = k
		}
	}
	if shards < 2 {
		shards = 2
	}
	const nReplicas = 2
	k := s.opts.K

	for _, name := range s.opts.Datasets {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		qs, err := s.workload(ds, queries.Config{})
		if err != nil {
			return err
		}
		bc, err := bootBenchCluster(ds, shards, nReplicas, ShardWorkers(2*shards, shards))
		if err != nil {
			return err
		}

		run := func() ([]time.Duration, []query.Response, int, error) {
			return timedRun(bc.router, qs, k)
		}

		// Untimed warmup so node-side caches are in comparable shape for
		// every measured phase.
		if _, _, _, err := run(); err != nil {
			bc.close()
			return fmt.Errorf("%s: warmup: %w", name, err)
		}

		healthyLat, healthyResp, _, err := run()
		if err != nil {
			bc.close()
			return fmt.Errorf("%s: healthy phase: %w", name, err)
		}

		// Kill replica 0 of every shard: each shard still has a live
		// replica, so the router must fail over without losing exactness.
		for _, g := range bc.replicas {
			g[0].kill()
		}
		downLat, downResp, downPartial, err := run()
		if err != nil {
			bc.close()
			return fmt.Errorf("%s: one-replica-down phase: %w", name, err)
		}
		if !sameResults(healthyResp, downResp) {
			bc.close()
			return fmt.Errorf("%s: failover answers diverged from healthy answers", name)
		}
		if downPartial != 0 {
			bc.close()
			return fmt.Errorf("%s: %d answers marked partial with a live replica per shard", name, downPartial)
		}

		// Kill the last shard's surviving replica too: that shard is now
		// dark and the router serves degraded (partial) answers.
		bc.replicas[shards-1][1].kill()
		darkLat, _, darkPartial, err := run()
		if err != nil {
			bc.close()
			return fmt.Errorf("%s: shard-down phase: %w", name, err)
		}
		bc.close()

		tbl := NewTable(
			fmt.Sprintf("%s: router search latency (ms), %d shards x %d replicas, %d queries, k=%d",
				name, shards, nReplicas, len(qs), k),
			"scenario", "p50", "p95", "p99", "max", "partial")
		for _, row := range []struct {
			label   string
			lats    []time.Duration
			partial int
		}{
			{"all replicas healthy", healthyLat, 0},
			{"1 replica/shard down", downLat, downPartial},
			{fmt.Sprintf("shard %d dark (degraded)", shards-1), darkLat, darkPartial},
		} {
			sum := summarize(row.lats)
			tbl.AddRow(row.label,
				ms(float64(sum.P50)/float64(time.Millisecond)),
				ms(float64(sum.P95)/float64(time.Millisecond)),
				ms(float64(sum.P99)/float64(time.Millisecond)),
				ms(float64(sum.Max)/float64(time.Millisecond)),
				fmt.Sprintf("%d/%d", row.partial, len(qs)))
		}
		tbl.Write(w)
	}
	return nil
}

package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned text tables for experiment output: one row per
// swept parameter value, one column per method — the textual equivalent of
// the paper's figure panels.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 3
	}
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", max(total, len(t.Title))))
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+3, c)
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i]+3, cell)
			} else {
				fmt.Fprint(w, cell)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func ms(v float64) string  { return fmt.Sprintf("%.2f", v) }
func cnt(v float64) string { return fmt.Sprintf("%.0f", v) }
func mb(v int64) string    { return fmt.Sprintf("%.1f", float64(v)/(1<<20)) }

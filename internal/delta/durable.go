package delta

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"path/filepath"
	"strings"

	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// Durability configures crash recovery for a Dynamic index. The zero value
// (empty Dir) disables it: mutations live only in memory, exactly as before.
//
// With a Dir set, every Insert/Delete is appended to a write-ahead log
// before it is applied and acknowledged under the chosen sync mode, each
// successful compaction persists the new base generation as a snapshot plus
// a manifest recording the last WAL sequence number it absorbs, and WAL
// segments wholly covered by the snapshot are pruned. OpenOrCreate reverses
// the process: load the manifest's snapshot, replay the WAL past it, and
// the index resumes exactly where the acknowledged mutation stream ended.
type Durability struct {
	// Dir is the index's data directory (snapshot, manifest and WAL
	// segments all live here). Empty disables durability.
	Dir string
	// Sync is the WAL fsync policy (see wal.SyncMode). The zero value,
	// SyncAlways, makes every acknowledged mutation crash-durable.
	Sync wal.SyncMode
	// SegmentBytes overrides the WAL segment rotation size (0 = default).
	SegmentBytes int64
	// FS overrides the filesystem; nil selects the real one. Tests inject
	// internal/faultfs here.
	FS wal.FS
}

func (du Durability) fs() wal.FS {
	if du.FS != nil {
		return du.FS
	}
	return wal.OSFS()
}

// WAL record kinds.
const (
	recInsert = 1 // body: encoded point list (the ID is implied by replay order)
	recDelete = 2 // body: uvarint trajectory ID
)

const (
	manifestName = "MANIFEST"
	snapPrefix   = "snap-"
	snapSuffix   = ".atrj"
)

// manifest is the durable commit record of a compaction: which snapshot
// file holds the base generation and the last WAL sequence number baked
// into it. It is replaced atomically (write-to-temp + rename), so recovery
// always sees either the old compaction or the new one, never a mix.
type manifest struct {
	Version  int    `json:"version"`
	Snapshot string `json:"snapshot"`
	LastSeq  uint64 `json:"last_seq"`
}

func snapName(lastSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, lastSeq, snapSuffix)
}

// RecoveryInfo describes what OpenOrCreate rebuilt.
type RecoveryInfo struct {
	// SnapshotSeq is the last WAL seq baked into the loaded snapshot
	// (0 when the index started from the bootstrap dataset).
	SnapshotSeq uint64
	// Replayed is the number of WAL records applied on top of the snapshot.
	Replayed int64
	// LastSeq is the sequence number the recovered index resumes after.
	LastSeq uint64
	// Torn reports that the WAL ended in a torn tail (the signature of a
	// crash mid-append) which recovery truncated.
	Torn bool
	// TornSegment names the truncated segment when Torn.
	TornSegment string
}

// OpenOrCreate opens a durable Dynamic index from cfg.Durability.Dir,
// recovering any state a previous process left behind: it loads the
// manifest's snapshot if one exists (otherwise it starts from bootstrap,
// which must then be the same dataset every call — it is the seq-0 corpus),
// replays WAL records past the snapshot, repairs any torn tail, and arms
// the log for new appends. With durability disabled (empty Dir) it is
// exactly NewDynamic.
//
// The recovered corpus is the acknowledged mutation prefix: every mutation
// whose Insert/Delete returned nil under SyncAlways/SyncGroup is present,
// and recovery never applies a mutation out of order or partially.
func OpenOrCreate(bootstrap *trajectory.Dataset, cfg Config) (*Dynamic, RecoveryInfo, error) {
	var ri RecoveryInfo
	if cfg.Durability.Dir == "" {
		d, err := newDynamicBase(bootstrap, cfg)
		return d, ri, err
	}
	fsys := cfg.Durability.fs()
	dir := cfg.Durability.Dir
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, ri, fmt.Errorf("delta: mkdir %s: %w", dir, err)
	}
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, ri, err
	}
	ds := bootstrap
	if man != nil {
		ds, err = readSnapshot(fsys, filepath.Join(dir, man.Snapshot))
		if err != nil {
			return nil, ri, err
		}
		ri.SnapshotSeq = man.LastSeq
	}
	d, err := newDynamicBase(ds, cfg)
	if err != nil {
		return nil, ri, err
	}

	// Replay the log past the snapshot. Replay is read-only and tolerates a
	// torn tail itself, so the tear is observed (for RecoveryInfo) before
	// wal.Open repairs it below.
	ri.LastSeq = ri.SnapshotSeq
	info, err := wal.Replay(fsys, dir, func(r wal.Record) error {
		if r.Seq <= ri.SnapshotSeq {
			return nil // already baked into the snapshot
		}
		if r.Seq != ri.LastSeq+1 {
			return fmt.Errorf("%w: record seq %d does not continue snapshot seq %d", wal.ErrCorrupt, r.Seq, ri.LastSeq)
		}
		if err := d.applyRecord(r); err != nil {
			return err
		}
		ri.LastSeq = r.Seq
		ri.Replayed++
		return nil
	})
	if err != nil {
		return nil, ri, fmt.Errorf("delta: replay wal: %w", err)
	}
	ri.Torn = info.Torn
	ri.TornSegment = info.TornSegment

	// FirstSeq re-seeds numbering when the snapshot absorbed and pruned the
	// whole log: without it an empty WAL would restart at seq 1 and the
	// NEXT recovery would silently skip every new record at or below
	// SnapshotSeq.
	l, err := wal.Open(wal.Options{
		Dir:          dir,
		Sync:         cfg.Durability.Sync,
		SegmentBytes: cfg.Durability.SegmentBytes,
		FS:           fsys,
		FirstSeq:     ri.LastSeq + 1,
	})
	if err != nil {
		return nil, ri, err
	}
	if got := l.LastSeq(); got != ri.LastSeq {
		l.Close()
		return nil, ri, fmt.Errorf("%w: wal resumes at seq %d but replay recovered %d", wal.ErrCorrupt, got+1, ri.LastSeq)
	}
	d.log = l
	d.fsys = fsys
	return d, ri, nil
}

// applyRecord applies one replayed WAL record without re-logging it.
// Inserts re-derive their IDs from replay order — the WAL is appended under
// the same lock that assigns IDs, so the orders agree by construction.
func (d *Dynamic) applyRecord(r wal.Record) error {
	switch r.Kind {
	case recInsert:
		pts, err := decodeInsertBody(r.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", r.Seq, err)
		}
		d.mu.Lock()
		gen := d.gen.Load()
		id := trajectory.TrajID(d.nextID)
		d.nextID++
		gen.active.insert(id, trajectory.Trajectory{ID: id, Pts: pts})
		d.mu.Unlock()
		return nil
	case recDelete:
		id, err := decodeDeleteBody(r.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", r.Seq, err)
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		if int(id) >= d.nextID {
			return fmt.Errorf("%w: record %d deletes unknown trajectory %d", wal.ErrCorrupt, r.Seq, id)
		}
		gen := d.gen.Load()
		if gen.ov.Tombstoned(id) ||
			(int(id) < len(gen.ds.Trajs) && len(gen.ds.Trajs[id].Pts) == 0) {
			return nil
		}
		gen.active.delete(id)
		return nil
	default:
		return fmt.Errorf("%w: record %d has unknown kind %d", wal.ErrCorrupt, r.Seq, r.Kind)
	}
}

// Close seals the WAL (outstanding records are fsynced) and detaches it;
// the in-memory index keeps serving searches but rejects further mutations
// when durable. Closing a non-durable index is a no-op.
func (d *Dynamic) Close() error {
	if d.log == nil {
		return nil
	}
	return d.log.Close()
}

// durableEpilogue persists a completed compaction: write the new base as a
// snapshot, commit it by atomically replacing the manifest, then garbage —
// stale snapshots and WAL segments the snapshot covers. Failures after the
// manifest rename are reported but leave a fully consistent store (the
// garbage is retried on the next compaction).
func (d *Dynamic) durableEpilogue(ds *trajectory.Dataset, lastSeq uint64) error {
	if d.log == nil {
		return nil
	}
	dir := d.cfg.Durability.Dir
	snap := snapName(lastSeq)
	err := wal.WriteFileAtomic(d.fsys, filepath.Join(dir, snap), func(w io.Writer) error {
		_, err := ds.WriteTo(w)
		return err
	})
	if err != nil {
		return fmt.Errorf("delta: write snapshot: %w", err)
	}
	man := manifest{Version: 1, Snapshot: snap, LastSeq: lastSeq}
	err = wal.WriteFileAtomic(d.fsys, filepath.Join(dir, manifestName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(man)
	})
	if err != nil {
		return fmt.Errorf("delta: commit manifest: %w", err)
	}
	// The manifest rename is the commit point; everything below is cleanup.
	names, err := d.fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("delta: prune snapshots: %w", err)
	}
	for _, n := range names {
		if n != snap && strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) {
			if err := d.fsys.Remove(filepath.Join(dir, n)); err != nil {
				return fmt.Errorf("delta: prune snapshot %s: %w", n, err)
			}
		}
	}
	if err := d.log.Prune(lastSeq); err != nil {
		return err
	}
	return nil
}

func readManifest(fsys wal.FS, dir string) (*manifest, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // no directory yet: a fresh index
	}
	if err != nil {
		// Any other listing error must fail the open: treating it as "no
		// manifest" would silently restart a durable store from scratch.
		return nil, fmt.Errorf("delta: list %s: %w", dir, err)
	}
	found := false
	for _, n := range names {
		if n == manifestName {
			found = true
			break
		}
	}
	if !found {
		return nil, nil
	}
	f, err := fsys.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("delta: open manifest: %w", err)
	}
	defer f.Close()
	var man manifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return nil, fmt.Errorf("delta: decode manifest: %w", err)
	}
	if man.Version != 1 || man.Snapshot == "" {
		return nil, fmt.Errorf("delta: unsupported manifest (version %d)", man.Version)
	}
	return &man, nil
}

func readSnapshot(fsys wal.FS, path string) (*trajectory.Dataset, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("delta: open snapshot: %w", err)
	}
	defer f.Close()
	ds, err := trajectory.ReadDataset(f)
	if err != nil {
		return nil, fmt.Errorf("delta: read snapshot %s: %w", filepath.Base(path), err)
	}
	return ds, nil
}

// ForEachPts calls fn with every live trajectory's points (base and delta,
// tombstoned and husked ones skipped). It is how a recovered shard rebuilds
// its spatial bounds. fn must not retain or mutate pts.
func (d *Dynamic) ForEachPts(fn func(id trajectory.TrajID, pts []trajectory.Point)) {
	gen := d.acquire()
	defer gen.release()
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range gen.ds.Trajs {
		tr := &gen.ds.Trajs[i]
		if len(tr.Pts) == 0 || gen.ov.Tombstoned(tr.ID) {
			continue
		}
		fn(tr.ID, tr.Pts)
	}
	for _, l := range gen.ov.layers {
		for id, e := range l.trajs {
			if gen.ov.Tombstoned(id) {
				continue
			}
			fn(id, e.src.Pts)
		}
	}
}

// --- record codecs ---
//
// Insert bodies mirror the dataset codec's point encoding: uvarint point
// count, then per point two fixed float64 coordinates, a uvarint activity
// count, and delta-encoded activity IDs (first absolute, then gaps — the
// set is normalized, so gaps are >= 1). Delete bodies are a single uvarint
// trajectory ID. Integrity is the WAL frame CRC's job, not the codec's.

func encodeInsertBody(dst []byte, pts []trajectory.Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Loc.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Loc.Y))
		dst = binary.AppendUvarint(dst, uint64(len(p.Acts)))
		prev := uint64(0)
		for k, a := range p.Acts {
			v := uint64(a)
			if k == 0 {
				dst = binary.AppendUvarint(dst, v)
			} else {
				dst = binary.AppendUvarint(dst, v-prev)
			}
			prev = v
		}
	}
	return dst
}

func decodeInsertBody(b []byte) ([]trajectory.Point, error) {
	npts, b, err := getUvarint(b)
	if err != nil {
		return nil, err
	}
	if npts > uint64(len(b)) { // each point is >= 17 bytes; cheap sanity bound
		return nil, fmt.Errorf("delta: insert record claims %d points in %d bytes", npts, len(b))
	}
	pts := make([]trajectory.Point, npts)
	for i := range pts {
		if len(b) < 16 {
			return nil, fmt.Errorf("delta: truncated insert record")
		}
		pts[i].Loc.X = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
		pts[i].Loc.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
		b = b[16:]
		var nacts uint64
		nacts, b, err = getUvarint(b)
		if err != nil {
			return nil, err
		}
		if nacts == 0 {
			continue
		}
		if nacts > uint64(len(b)) {
			return nil, fmt.Errorf("delta: insert record claims %d activities in %d bytes", nacts, len(b))
		}
		acts := make(trajectory.ActivitySet, nacts)
		prev := uint64(0)
		for k := range acts {
			var v uint64
			v, b, err = getUvarint(b)
			if err != nil {
				return nil, err
			}
			if k > 0 {
				v += prev
			}
			acts[k] = trajectory.ActivityID(v)
			prev = v
		}
		pts[i].Acts = acts
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("delta: %d trailing bytes in insert record", len(b))
	}
	return pts, nil
}

func encodeDeleteBody(dst []byte, id trajectory.TrajID) []byte {
	return binary.AppendUvarint(dst, uint64(id))
}

func decodeDeleteBody(b []byte) (trajectory.TrajID, error) {
	id, rest, err := getUvarint(b)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("delta: %d trailing bytes in delete record", len(rest))
	}
	if id > math.MaxUint32 {
		return 0, fmt.Errorf("delta: delete record id %d out of range", id)
	}
	return trajectory.TrajID(id), nil
}

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("delta: truncated varint in wal record")
	}
	return v, b[n:], nil
}

// EncodePoints appends the canonical WAL point-list encoding of pts to dst
// and returns the extended slice. It is the exact insert-record body format
// (see the codec comment above); internal/cluster reuses it for replication
// records so a node WAL and a delta WAL describe trajectories identically.
func EncodePoints(dst []byte, pts []trajectory.Point) []byte {
	return encodeInsertBody(dst, pts)
}

// DecodePoints decodes an EncodePoints body.
func DecodePoints(b []byte) ([]trajectory.Point, error) {
	return decodeInsertBody(b)
}

package delta

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/sketch"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// Config tunes a Dynamic index.
type Config struct {
	// GAT configures the immutable base index (rebuilt on every
	// compaction); the zero value uses the paper's defaults.
	GAT gat.Config
	// Store configures the base trajectory store. FilePath must be empty:
	// the dynamic index rebuilds the store on every compaction and only
	// supports the in-memory pager.
	Store evaluate.TrajStoreConfig
	// CompactThreshold is the number of delta mutations (inserts+deletes)
	// that triggers a background compaction. 0 selects
	// DefaultCompactThreshold; negative disables auto-compaction (call
	// CompactNow explicitly).
	CompactThreshold int
	// Durability persists mutations to a write-ahead log and compactions to
	// snapshots for crash recovery. The zero value disables it; a durable
	// index must be opened with OpenOrCreate, not NewDynamic.
	Durability Durability
}

// DefaultCompactThreshold is the default delta-mutation count that triggers
// a background compaction.
const DefaultCompactThreshold = 4096

// view merges up to two delta layers (frozen under active) into the single
// overlay the GAT searcher and evaluator consume. It is immutable; layer
// content consistency is guaranteed by the generation's read-locking of the
// active layer (frozen layers receive no writes).
type view struct {
	layers []*Layer // search order: frozen first, then active
	baseN  int
}

var _ gat.DeltaOverlay = (*view)(nil)

func (v *view) IDSpace() int {
	n := v.baseN
	for _, l := range v.layers {
		if l.idSpace > n {
			n = l.idSpace
		}
	}
	return n
}

func (v *view) Empty() bool {
	for _, l := range v.layers {
		// Reading len under the generation's search-time lock discipline:
		// the active layer is read-locked for the whole search, frozen
		// layers receive no writes.
		if len(l.trajs) > 0 || l.numTombs.Load() > 0 {
			return false
		}
	}
	return true
}

func (v *view) CellHasAct(level int, z uint32, a trajectory.ActivityID) bool {
	for _, l := range v.layers {
		if l.cellHasAct(level, z, a) {
			return true
		}
	}
	return false
}

func (v *view) AppendCellTrajs(dst []uint32, z uint32, a trajectory.ActivityID) []uint32 {
	for _, l := range v.layers {
		dst = l.appendCellTrajs(dst, z, a)
	}
	return dst
}

func (v *view) Tombstoned(id trajectory.TrajID) bool {
	for _, l := range v.layers {
		if l.tombstoned(id) {
			return true
		}
	}
	return false
}

func (v *view) HasTombstones() bool {
	for _, l := range v.layers {
		if l.numTombs.Load() > 0 {
			return true
		}
	}
	return false
}

func (v *view) AppendOverflow(dst []uint32) []uint32 {
	for _, l := range v.layers {
		dst = append(dst, l.overflowIDs...)
	}
	return dst
}

func (v *view) find(id trajectory.TrajID) *entry {
	for _, l := range v.layers {
		if e := l.lookup(id); e != nil {
			return e
		}
	}
	return nil
}

// TAS implements evaluate.DeltaSource.
func (v *view) TAS(id trajectory.TrajID) sketch.Sketch {
	if e := v.find(id); e != nil {
		return e.tas
	}
	return nil
}

// Postings implements evaluate.DeltaSource.
func (v *view) Postings(id trajectory.TrajID, a trajectory.ActivityID) []uint32 {
	if e := v.find(id); e != nil {
		return e.aplPostings(a)
	}
	return nil
}

// Coords implements evaluate.DeltaSource.
func (v *view) Coords(id trajectory.TrajID) []geo.Point {
	if e := v.find(id); e != nil {
		return e.pts
	}
	return nil
}

// generation is one immutable epoch of the dynamic index: a base index and
// store plus the delta layers stacked on top. Searches acquire the current
// generation, search it, and release it; compaction retires generations by
// swapping in a successor. refs/drained implement the RCU-style grace
// period after which a retired generation's caches are dropped.
type generation struct {
	epoch  uint64
	ds     *trajectory.Dataset
	ts     *evaluate.TrajStore
	idx    *gat.Index
	frozen *Layer // layer under compaction, nil otherwise
	active *Layer
	ov     *view

	refs      atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
	drained   chan struct{}
}

func newGeneration(epoch uint64, ds *trajectory.Dataset, ts *evaluate.TrajStore, idx *gat.Index, frozen, active *Layer) *generation {
	layers := make([]*Layer, 0, 2)
	if frozen != nil {
		layers = append(layers, frozen)
	}
	layers = append(layers, active)
	return &generation{
		epoch:   epoch,
		ds:      ds,
		ts:      ts,
		idx:     idx,
		frozen:  frozen,
		active:  active,
		ov:      &view{layers: layers, baseN: ts.NumTrajs()},
		drained: make(chan struct{}),
	}
}

func (g *generation) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

func (g *generation) retire() {
	g.retired.Store(true)
	if g.refs.Load() == 0 {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// Dynamic is an LSM-style dynamic GAT index: an immutable base generation
// plus an in-memory delta layer absorbing Insert/Delete, searched together
// exactly, and compacted into a fresh immutable generation in the
// background once the delta grows past Config.CompactThreshold.
//
// All methods are safe for concurrent use. Searches go through engines
// from NewEngine (each engine clone is single-goroutine, as everywhere in
// this library; wrap with query.NewParallelEngine for concurrent serving).
type Dynamic struct {
	cfg Config

	mu     sync.Mutex // serializes writers and generation swaps
	nextID int        // next trajectory ID to assign (monotone, never reused)

	compactMu   sync.Mutex  // one compaction at a time
	compacting  atomic.Bool // auto-compaction trigger latch
	autoOff     atomic.Bool // auto-compaction disabled after a failure
	compactions atomic.Int64
	// testFailBuild injects a rebuild failure so tests can exercise the
	// rollback path (in-memory builds cannot fail organically).
	testFailBuild atomic.Bool
	// compactErr holds the last background compaction error, boxed so
	// atomic.Value never sees two different concrete error types.
	compactErr atomic.Value // of errBox

	// log, when non-nil, receives every mutation before it applies (see
	// Durability); fsys is the filesystem snapshots are written through.
	// walBuf is the record-encoding scratch buffer, guarded by mu.
	log    *wal.Log
	fsys   wal.FS
	walBuf []byte

	gen atomic.Pointer[generation]

	// mutEpoch counts mutations with apply-then-bump ordering: incremented
	// after each insert/delete/compaction swap becomes visible to searches
	// and before the mutation is acknowledged — the contract
	// query.EpochSource requires for result-cache invalidation. It is NOT
	// the generation epoch (gen.epoch advances only on compaction swaps,
	// which would let a cache serve results predating unacknowledged
	// inserts as fresh).
	mutEpoch atomic.Uint64

	// obs, when non-nil, is notified of every insert/delete under mu at the
	// apply point (after the mutEpoch bump), so per-index notification order
	// equals apply order. See MutationObserver.
	obs MutationObserver
}

// MutationObserver receives insert/delete notifications from a Dynamic
// index. Callbacks fire under the index's mutation lock, immediately after
// the mutation became visible to searches (apply-then-bump order), so
// notifications arrive in exactly the order mutations applied. They must
// therefore be fast and must not call back into the index — enqueue and
// return. Idempotent re-deletes and compaction swaps do not notify (the
// corpus membership is unchanged).
type MutationObserver interface {
	// OnInsert reports a newly inserted trajectory: its assigned ID, its
	// point coordinates, and the union of its points' activities. Both
	// slices are immutable — observers may retain them.
	OnInsert(id trajectory.TrajID, pts []geo.Point, acts trajectory.ActivitySet)
	// OnDelete reports a newly effective delete (first tombstone for id).
	OnDelete(id trajectory.TrajID)
}

// SetObserver attaches (nil detaches) the index's mutation observer. The
// observer sees every mutation applied after SetObserver returns; mutations
// already applied are the caller's to discover (e.g. by searching).
func (d *Dynamic) SetObserver(obs MutationObserver) {
	d.mu.Lock()
	d.obs = obs
	d.mu.Unlock()
}

// NewDynamic builds a dynamic index over ds. The dataset is the initial
// base generation; it must satisfy (*Dataset).Validate and is treated as
// immutable afterwards. An index with Config.Durability set must be opened
// with OpenOrCreate instead, so pre-crash state is never silently ignored.
func NewDynamic(ds *trajectory.Dataset, cfg Config) (*Dynamic, error) {
	if cfg.Durability.Dir != "" {
		return nil, fmt.Errorf("delta: durable indexes must be opened with OpenOrCreate")
	}
	return newDynamicBase(ds, cfg)
}

func newDynamicBase(ds *trajectory.Dataset, cfg Config) (*Dynamic, error) {
	if cfg.Store.FilePath != "" {
		return nil, fmt.Errorf("delta: file-backed stores are not supported (compaction rebuilds the store)")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("delta: invalid dataset: %w", err)
	}
	ts, idx, err := buildBase(ds, cfg)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{cfg: cfg, nextID: len(ds.Trajs)}
	active := NewLayer(idx.Grid(), len(ds.Trajs), ts.SketchIntervals())
	d.gen.Store(newGeneration(1, ds, ts, idx, nil, active))
	return d, nil
}

func buildBase(ds *trajectory.Dataset, cfg Config) (*evaluate.TrajStore, *gat.Index, error) {
	ts, err := evaluate.BuildTrajStore(ds, cfg.Store)
	if err != nil {
		return nil, nil, fmt.Errorf("delta: build store: %w", err)
	}
	idx, err := gat.Build(ts, cfg.GAT)
	if err != nil {
		return nil, nil, fmt.Errorf("delta: build index: %w", err)
	}
	return ts, idx, nil
}

// threshold returns the effective auto-compaction threshold (<= 0 = off).
func (d *Dynamic) threshold() int {
	switch {
	case d.cfg.CompactThreshold < 0:
		return 0
	case d.cfg.CompactThreshold == 0:
		return DefaultCompactThreshold
	default:
		return d.cfg.CompactThreshold
	}
}

// acquire pins the current generation for one search. The re-check after
// incrementing closes the load-then-increment race with retire(): without
// it, a reader descheduled between Load and Add could pin a generation
// whose drained channel already fired, and search it while the retirement
// path drops its caches.
func (d *Dynamic) acquire() *generation {
	for {
		g := d.gen.Load()
		g.refs.Add(1)
		if d.gen.Load() == g {
			return g
		}
		g.release()
	}
}

// Insert adds a trajectory to the index and returns its assigned ID. The
// trajectory becomes visible to searches atomically, point activity sets
// must be normalized (see NewActivitySet) and within the dataset's
// vocabulary, and the Pts slice is retained — callers must not mutate it
// afterwards. tr.ID is ignored; IDs are assigned densely after the base
// dataset's and are stable across compactions.
//
// A non-nil error with a non-zero ID means the mutation is applied and
// visible but unacknowledged (the durability wait failed): it may or may
// not survive a crash.
func (d *Dynamic) Insert(tr trajectory.Trajectory) (trajectory.TrajID, error) {
	id, commit, err := d.InsertDeferred(tr)
	if err != nil {
		return 0, err
	}
	if err := commit(); err != nil {
		return id, err
	}
	return id, nil
}

// InsertDeferred is Insert split at the durability wait: on a nil error the
// trajectory is applied, visible to searches and logged, with its ID
// assigned — but not yet durable. The caller must then invoke commit
// (holding no locks of its own, so concurrent writers share fsyncs) to
// block until the record is durable under the configured sync policy and to
// arm auto-compaction. A commit error means applied-but-unacknowledged; an
// InsertDeferred error means nothing was applied and no ID was consumed.
// The split lets the shard router publish its ID mappings before any fsync
// wait, keeping them in step with this index on every failure path.
func (d *Dynamic) InsertDeferred(tr trajectory.Trajectory) (trajectory.TrajID, func() error, error) {
	if err := d.validate(tr); err != nil {
		return 0, nil, err
	}
	d.mu.Lock()
	// Log before apply: a mutation the WAL rejected never reaches memory,
	// so the on-disk record stream is always a superset of the in-memory
	// state — recovery replays a prefix of it and can never miss an
	// acknowledged write.
	var seq uint64
	if d.log != nil {
		d.walBuf = encodeInsertBody(d.walBuf[:0], tr.Pts)
		var err error
		if seq, err = d.log.Append(recInsert, d.walBuf); err != nil {
			d.mu.Unlock()
			return 0, nil, err
		}
	}
	gen := d.gen.Load()
	id := trajectory.TrajID(d.nextID)
	d.nextID++
	tr.ID = id
	ent := gen.active.insert(id, tr)
	d.mutEpoch.Add(1) // apply-then-bump: after visibility, before the ack
	if d.obs != nil {
		d.obs.OnInsert(id, ent.pts, ent.acts)
	}
	d.mu.Unlock()
	commit := func() error {
		if d.log != nil {
			if err := d.log.Commit(seq); err != nil {
				return err
			}
		}
		d.maybeCompact(gen)
		return nil
	}
	return id, commit, nil
}

// Delete removes trajectory id from search results. Deletes are tombstones:
// the trajectory stops matching immediately and its storage is reclaimed at
// the next compaction. Deleting an unknown ID is an error; deleting an
// already-deleted one is a no-op — including across compactions, so
// idempotent retries never inflate the tombstone count or re-trigger
// compaction of an unchanged corpus.
func (d *Dynamic) Delete(id trajectory.TrajID) error {
	d.mu.Lock()
	if int(id) >= d.nextID {
		d.mu.Unlock()
		return fmt.Errorf("delta: delete of unknown trajectory %d", id)
	}
	gen := d.gen.Load()
	// Already gone? Either tombstoned in a live layer (we hold d.mu, the
	// only tombstone writer, so reading both layers is safe) or compacted
	// away into a base husk.
	if gen.ov.Tombstoned(id) ||
		(int(id) < len(gen.ds.Trajs) && len(gen.ds.Trajs[id].Pts) == 0) {
		// No state change: idempotent re-deletes are not logged, so retries
		// never bloat the WAL or the replayed tombstone count.
		d.mu.Unlock()
		return nil
	}
	var seq uint64
	if d.log != nil {
		d.walBuf = encodeDeleteBody(d.walBuf[:0], id)
		var err error
		if seq, err = d.log.Append(recDelete, d.walBuf); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	gen.active.delete(id)
	d.mutEpoch.Add(1) // apply-then-bump: after visibility, before the ack
	if d.obs != nil {
		d.obs.OnDelete(id)
	}
	d.mu.Unlock()
	if d.log != nil {
		if err := d.log.Commit(seq); err != nil {
			return err
		}
	}
	d.maybeCompact(gen)
	return nil
}

func (d *Dynamic) validate(tr trajectory.Trajectory) error {
	gen := d.gen.Load()
	vsize := 0
	if gen.ds.Vocab != nil {
		vsize = gen.ds.Vocab.Size()
	}
	for j, p := range tr.Pts {
		// A non-finite coordinate would poison every future compaction:
		// the rebuilt dataset's bounds go NaN/Inf and grid construction
		// fails forever. Reject it at the door.
		if !finite(p.Loc.X) || !finite(p.Loc.Y) {
			return fmt.Errorf("delta: point %d has non-finite coordinates (%v, %v)", j, p.Loc.X, p.Loc.Y)
		}
		for k, a := range p.Acts {
			if k > 0 && p.Acts[k-1] >= a {
				return fmt.Errorf("delta: point %d: activity set not normalized", j)
			}
			if gen.ds.Vocab != nil && int(a) >= vsize {
				return fmt.Errorf("delta: point %d: activity %d outside vocabulary (size %d)", j, a, vsize)
			}
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// maybeCompact launches a background compaction when the active layer has
// accumulated enough mutations (at most one in flight). After a background
// failure, auto-compaction latches off — the rollback restores the delta,
// so retrying on every mutation would rebuild the whole corpus in a hot
// loop — until an explicit CompactNow succeeds.
func (d *Dynamic) maybeCompact(gen *generation) {
	t := d.threshold()
	if t <= 0 || d.autoOff.Load() || gen.active.mutations() < t {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		if err := d.CompactNow(); err != nil {
			d.compactErr.Store(errBox{err})
			d.autoOff.Store(true)
			d.compacting.Store(false)
			return
		}
		d.compacting.Store(false)
		// Writes that accumulated while the rebuild ran may already exceed
		// the threshold again; re-check so a write burst cannot leave an
		// oversized delta idle until the next mutation.
		d.maybeCompact(d.gen.Load())
	}()
}

// CompactNow rebuilds base+delta into a fresh immutable generation and
// swaps it in. It blocks until the compaction completes (auto-compaction
// calls it from a background goroutine). Searches keep running throughout:
// while the rebuild is in flight they see base + frozen delta + a fresh
// active layer; after the swap they see the new base + the active layer.
// Writers are only blocked for the two brief swap sections.
func (d *Dynamic) CompactNow() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	// Phase 1: freeze the active layer and open a fresh one.
	d.mu.Lock()
	cur := d.gen.Load()
	if cur.active.mutations() == 0 && cur.frozen == nil {
		d.mu.Unlock()
		return nil
	}
	frozen := cur.active
	fresh := NewLayer(cur.idx.Grid(), d.nextID, cur.ts.SketchIntervals())
	gen1 := newGeneration(cur.epoch+1, cur.ds, cur.ts, cur.idx, frozen, fresh)
	d.gen.Store(gen1)
	d.mutEpoch.Add(1) // generation swap: conservative cache invalidation
	cur.retire()
	// WAL appends happen under d.mu, so the log's last seq here is exactly
	// the last mutation captured by base+frozen: the snapshot built from
	// them covers every record up to and including lastSeq.
	var lastSeq uint64
	if d.log != nil {
		lastSeq = d.log.LastSeq()
	}
	d.mu.Unlock()

	// Phase 2: rebuild the base from the old dataset plus the frozen layer
	// (immutable now — no locks needed). Writers land in gen1.active and
	// survive the swap; searches stay exact over base+frozen+active.
	newDS := compactedDataset(cur.ds, frozen)
	newTS, newIdx, err := buildBase(newDS, d.cfg)
	if err == nil && d.testFailBuild.Load() {
		err = fmt.Errorf("delta: injected rebuild failure")
	}
	if err != nil {
		// Roll back: merge the frozen layer back into the active one so no
		// write is lost, and drop the frozen reference.
		d.mu.Lock()
		g := d.gen.Load()
		g.active.absorb(frozen)
		gen1r := newGeneration(g.epoch+1, g.ds, g.ts, g.idx, nil, g.active)
		d.gen.Store(gen1r)
		d.mutEpoch.Add(1)
		g.retire()
		d.mu.Unlock()
		return fmt.Errorf("delta: compaction rebuild: %w", err)
	}

	// Phase 3: swap the new base in. The active layer is rebound to the new
	// grid (cell codes change when the region is refit); in-flight searches
	// on gen1 keep the old layer object, so they stay consistent.
	d.mu.Lock()
	g := d.gen.Load()
	newActive := g.active.rebound(newIdx.Grid(), newTS.NumTrajs())
	gen2 := newGeneration(g.epoch+1, newDS, newTS, newIdx, nil, newActive)
	d.gen.Store(gen2)
	d.mutEpoch.Add(1)
	g.retire()
	d.mu.Unlock()
	d.compactions.Add(1)
	// A successful compaction re-arms auto-compaction and clears the stale
	// failure so health polls stop reporting a recovered index as failing.
	d.autoOff.Store(false)
	d.compactErr.Store(errBox{})

	// Drop the retired generations' caches once every in-flight search on
	// them has finished (cur and g share the old index and store).
	go func(a, b *generation, ts *evaluate.TrajStore, idx *gat.Index) {
		<-a.drained
		<-b.drained
		idx.ResetCache()
		ts.ResetPool()
	}(cur, g, cur.ts, cur.idx)

	// Persist the compaction: snapshot + manifest commit + WAL prune. A
	// failure here leaves the swapped-in generation serving (memory is
	// consistent) and the WAL unpruned, so recovery still replays onto the
	// previous snapshot correctly; the error propagates so auto-compaction
	// latches off and health checks surface it.
	if err := d.durableEpilogue(newDS, lastSeq); err != nil {
		return err
	}
	return nil
}

// compactedDataset merges the base dataset with a frozen delta layer:
// inserted trajectories are appended at their assigned IDs and tombstoned
// ones are reduced to empty husks, so IDs stay dense and stable forever.
func compactedDataset(base *trajectory.Dataset, frozen *Layer) *trajectory.Dataset {
	n := frozen.idSpace
	trajs := make([]trajectory.Trajectory, n)
	for i := range base.Trajs {
		if frozen.tombstoned(base.Trajs[i].ID) {
			trajs[i] = trajectory.Trajectory{ID: base.Trajs[i].ID}
			continue
		}
		trajs[i] = base.Trajs[i]
	}
	for id := range trajs[len(base.Trajs):] {
		tid := trajectory.TrajID(len(base.Trajs) + id)
		trajs[tid] = trajectory.Trajectory{ID: tid}
	}
	for id, e := range frozen.trajs {
		if frozen.tombstoned(id) {
			continue
		}
		trajs[id] = trajectory.Trajectory{ID: id, Pts: e.src.Pts}
	}
	return &trajectory.Dataset{Name: base.Name, Vocab: base.Vocab, Trajs: trajs}
}

// Stats reports the dynamic index's current shape.
type Stats struct {
	// Epoch counts generation swaps (freezes and compactions both bump it).
	Epoch uint64
	// BaseTrajectories is the base generation's trajectory count (including
	// husks of compacted-away deletes).
	BaseTrajectories int
	// DeltaTrajectories counts inserts living in the delta layers.
	DeltaTrajectories int
	// Tombstones counts pending (uncompacted) deletes.
	Tombstones int
	// Compacting reports whether a rebuild is in flight.
	Compacting bool
	// Compactions counts completed compactions.
	Compactions int64
	// IDSpace is one past the highest assigned trajectory ID.
	IDSpace int
	// MutEpoch is the mutation epoch (see Dynamic.Epoch): a monotone
	// counter bumped apply-then-ack on every insert/delete/compaction swap.
	MutEpoch uint64
}

// Stats returns a snapshot of the index's shape.
func (d *Dynamic) Stats() Stats {
	d.mu.Lock()
	gen := d.gen.Load()
	s := Stats{
		Epoch:            gen.epoch,
		BaseTrajectories: gen.ts.NumTrajs(),
		// d.compacting covers the window between the auto-compaction
		// trigger and the freeze, when gen.frozen is still nil.
		Compacting:  gen.frozen != nil || d.compacting.Load(),
		Compactions: d.compactions.Load(),
		IDSpace:     d.nextID,
		MutEpoch:    d.mutEpoch.Load(),
	}
	for _, l := range gen.ov.layers {
		l.mu.RLock()
		s.DeltaTrajectories += len(l.trajs)
		s.Tombstones += len(l.tombs)
		l.mu.RUnlock()
	}
	d.mu.Unlock()
	return s
}

// errBox wraps errors stored in compactErr (atomic.Value requires one
// consistent concrete type).
type errBox struct{ err error }

// LastCompactErr returns the most recent background-compaction failure,
// nil if none. Explicit CompactNow calls report their errors directly.
// After a background failure auto-compaction stays disabled (searches and
// writes keep working on the un-compacted layers) until a CompactNow
// succeeds.
func (d *Dynamic) LastCompactErr() error {
	if b, ok := d.compactErr.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// Dataset returns the current base dataset (not including delta inserts).
// It is immutable; compactions replace it.
func (d *Dynamic) Dataset() *trajectory.Dataset { return d.gen.Load().ds }

// Epoch implements query.EpochSource: a monotone counter bumped after every
// insert, delete and compaction swap becomes visible to searches and before
// it is acknowledged (apply-then-bump — see the mutEpoch field and
// query.EpochSource for why the generation epoch alone would be unsound).
func (d *Dynamic) Epoch() uint64 { return d.mutEpoch.Load() }

// ResetCaches puts the current generation's decoded-structure caches and
// buffer pool in the cold state, so harness runs measure the index
// identically regardless of run order.
func (d *Dynamic) ResetCaches() {
	gen := d.acquire()
	defer gen.release()
	gen.idx.ResetCache()
	gen.ts.ResetPool()
}

// Engine serves searches over a Dynamic index. Like every engine in this
// library it is single-goroutine (per-generation scratch is reused across
// searches); it implements query.CloneableEngine, so wrap it with
// query.NewParallelEngine for concurrent serving — clones share the base
// index, its caches and the delta layers, and follow generation swaps
// independently.
type Engine struct {
	d     *Dynamic
	inner *gat.Engine
	epoch uint64
	sink  query.BoundSink
	stats query.SearchStats
}

// NewEngine returns a serving engine over the dynamic index.
func (d *Dynamic) NewEngine() *Engine { return &Engine{d: d} }

// SetBoundSink attaches (nil detaches) a shared cross-search bound; it is
// forwarded to the underlying GAT engine on every search, surviving the
// generation swaps that rebuild the inner engine. See gat.Engine.SetBoundSink.
func (e *Engine) SetBoundSink(s query.BoundSink) {
	e.sink = s
	if e.inner != nil {
		e.inner.SetBoundSink(s)
	}
}

// Name implements query.Engine.
func (e *Engine) Name() string { return "GAT+delta" }

// MemBytes implements query.Engine: the base index plus the delta layers.
func (e *Engine) MemBytes() int64 {
	gen := e.d.acquire()
	defer gen.release()
	n := gen.idx.MemBytes()
	for _, l := range gen.ov.layers {
		l.mu.RLock()
		n += l.memBytes()
		l.mu.RUnlock()
	}
	return n
}

// LastStats implements query.Engine.
//
// Deprecated: read Response.Stats.
func (e *Engine) LastStats() query.SearchStats { return e.stats }

// SearchATSQ implements query.Engine over base ∪ delta.
//
// Deprecated: use Search.
func (e *Engine) SearchATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchOATSQ implements query.Engine over base ∪ delta.
//
// Deprecated: use Search.
func (e *Engine) SearchOATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k, Ordered: true})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// acquireInner pins the current generation and lazily (re)builds the inner
// GAT engine after a compaction swap, re-attaching the bound sink. The
// caller must release() the returned generation when done, and hold the
// active layer's read lock while reading through e.inner so it sees one
// consistent delta state (frozen layers receive no writes).
func (e *Engine) acquireInner() *generation {
	gen := e.d.acquire()
	if e.inner == nil || e.epoch != gen.epoch {
		e.inner = gat.NewEngineWithOverlay(gen.idx, gen.ov)
		e.inner.SetBoundSink(e.sink)
		e.epoch = gen.epoch
	}
	return gen
}

// Search implements query.Engine over base ∪ delta: the request runs on
// the current generation's inner GAT engine (rebuilt lazily after every
// compaction swap), which honors ctx between candidate batches.
func (e *Engine) Search(ctx context.Context, req query.Request) (query.Response, error) {
	gen := e.acquireInner()
	defer gen.release()
	gen.active.mu.RLock()
	defer gen.active.mu.RUnlock()
	resp, err := e.inner.Search(ctx, req)
	e.stats = resp.Stats
	return resp, err
}

// ScoreOne scores a single trajectory against req's query with an exact
// pruning threshold (see gat.Engine.ScoreFor): the returned distance is the
// request's exact distance whenever ok is true, and ok is false when the
// trajectory is absent (tombstoned, compacted-away husk, out of range) or
// the matcher abandoned it for strictly exceeding threshold. The
// subscription hub uses it to score one freshly inserted trajectory against
// a standing query without running a full search. Fetch traffic is added to
// stats.
func (e *Engine) ScoreOne(req query.Request, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, bool, error) {
	gen := e.acquireInner()
	defer gen.release()
	gen.active.mu.RLock()
	defer gen.active.mu.RUnlock()
	if gen.ov.Tombstoned(id) ||
		(int(id) < len(gen.ds.Trajs) && len(gen.ds.Trajs[id].Pts) == 0) {
		return 0, false, nil
	}
	d, out, err := e.inner.ScoreFor(req, id, threshold, stats)
	if err != nil {
		return 0, false, err
	}
	return d, out == evaluate.Scored, nil
}

// Matches re-derives the matched trajectory point indexes for one known
// result of req's query (see gat.Engine.MatchesFor); id is local to this
// index. Fetch traffic is added to stats.
func (e *Engine) Matches(req query.Request, id trajectory.TrajID, stats *query.SearchStats) ([][]int32, error) {
	gen := e.acquireInner()
	defer gen.release()
	gen.active.mu.RLock()
	defer gen.active.mu.RUnlock()
	return e.inner.MatchesFor(req, id, stats)
}

// Epoch implements query.EpochSource by delegating to the index's mutation
// counter, so a result cache over this engine invalidates on every
// insert/delete/compaction.
func (e *Engine) Epoch() uint64 { return e.d.Epoch() }

// BatchKey implements query.BatchKeyer on the current generation's inner
// GAT engine: the leaf-cell Z code of the query centroid in the current
// base grid. Keys are only locality hints consumed within one SearchAll
// call, so a concurrent compaction swapping the grid mid-batch merely
// degrades grouping quality, never correctness.
func (e *Engine) BatchKey(q query.Query) uint64 {
	gen := e.acquireInner()
	defer gen.release()
	return e.inner.BatchKey(q)
}

// WarmSuperbatch implements query.SuperbatchWarmer by forwarding to the
// current generation's inner GAT engine, which reads only the immutable
// base index — no active-layer lock is needed for a pool hint.
func (e *Engine) WarmSuperbatch(reqs []query.Request) {
	gen := e.acquireInner()
	defer gen.release()
	e.inner.WarmSuperbatch(reqs)
}

// Clone implements query.CloneableEngine.
func (e *Engine) Clone() query.Engine { return &Engine{d: e.d} }

var _ query.CloneableEngine = (*Engine)(nil)
var _ query.EpochSource = (*Engine)(nil)

// Package delta makes the GAT index dynamic. It provides:
//
//   - Layer: an in-memory, mutable mini-GAT over freshly inserted
//     trajectories — per-leaf-cell inverted trajectory lists, an in-memory
//     HICL presence map for every grid level, per-trajectory activity
//     posting lists and TAS sketches — plus a tombstone set masking
//     deletes from any layer;
//   - Dynamic: an LSM-style dynamic index layering an immutable base GAT
//     index under one or two delta layers (active, plus a frozen layer
//     while a compaction is in flight), with online Insert/Delete, exact
//     merged search, and background compaction that rebuilds base+delta
//     into a fresh immutable generation and atomically swaps it in
//     (RCU-style: in-flight searches finish on the old generation, and
//     the retired generation's caches are dropped once it drains);
//   - Engine: a query.Engine serving searches over the current generation,
//     cloneable for concurrent serving under query.ParallelEngine.
package delta

import (
	"slices"
	"sync"
	"sync/atomic"

	"activitytraj/internal/geo"
	"activitytraj/internal/grid"
	"activitytraj/internal/invindex"
	"activitytraj/internal/sketch"
	"activitytraj/internal/trajectory"
)

// entry is the in-memory record of one inserted trajectory: everything the
// evaluator needs (coordinates, per-activity point postings, TAS sketch)
// plus the source trajectory for the next compaction. Entries are immutable
// after construction.
type entry struct {
	src      trajectory.Trajectory
	pts      []geo.Point
	acts     trajectory.ActivitySet
	postings []invindex.PostingList // parallel to acts: ascending point indexes
	tas      sketch.Sketch
	overflow bool // some point lies outside the base grid's region
}

func newEntry(tr trajectory.Trajectory, sketchM int, region geo.Rect) *entry {
	e := &entry{src: tr, pts: make([]geo.Point, len(tr.Pts))}
	post := make(map[trajectory.ActivityID][]uint32)
	for pi, p := range tr.Pts {
		e.pts[pi] = p.Loc
		// Only activity-carrying points matter: register skips act-less
		// points and scoring only ever measures distances to points with
		// matching activities, so an act-less point outside the region must
		// not force the whole trajectory onto the overflow path.
		if len(p.Acts) > 0 && !region.ContainsPoint(p.Loc) {
			e.overflow = true
		}
		for _, a := range p.Acts {
			post[a] = append(post[a], uint32(pi))
		}
	}
	e.acts = make(trajectory.ActivitySet, 0, len(post))
	for a := range post {
		e.acts = append(e.acts, a)
	}
	e.acts.Normalize()
	e.postings = make([]invindex.PostingList, len(e.acts))
	for i, a := range e.acts {
		e.postings[i] = post[a]
	}
	e.tas = sketch.Build(e.acts, sketchM)
	return e
}

// aplPostings returns the point indexes carrying activity a, nil if absent.
func (e *entry) aplPostings(a trajectory.ActivityID) []uint32 {
	if i, ok := slices.BinarySearch(e.acts, a); ok {
		return e.postings[i]
	}
	return nil
}

// Layer is one mutable delta layer: a mini-GAT over the trajectories
// inserted since the last compaction, plus the tombstones of deletes issued
// since then (tombstones may target trajectories of ANY layer, including
// the immutable base).
//
// Writers (insert/delete/re-registration) run under mu's write lock;
// searches hold the read lock for their whole duration, so every search
// observes one consistent state of the layer. A frozen layer (being
// compacted) receives no writes and may be read without locking.
type Layer struct {
	mu sync.RWMutex

	g       *grid.Grid
	depth   int
	sketchM int

	// idSpace is one past the highest ID ever registered; it starts at the
	// base size below the layer, so IDs under it always resolve somewhere.
	idSpace  int
	trajs    map[trajectory.TrajID]*entry
	tombs    map[trajectory.TrajID]struct{}
	numTombs atomic.Int64 // mirror of len(tombs) readable without mu
	muts     atomic.Int64 // inserts+deletes, the auto-compaction trigger

	// hicl[l][a] is the set of level-l cells with a point carrying a;
	// index 0 is unused, mirroring the base index's level numbering. Hybrid
	// container sets keep dense levels compact and make the per-expansion
	// presence probes branchless on bitmap ranges.
	hicl []map[trajectory.ActivityID]*invindex.Set
	// itl[z][a] lists the trajectories with an a-point in leaf cell z.
	itl map[uint32]map[trajectory.ActivityID]invindex.PostingList
	// overflowIDs lists inserted trajectories with out-of-region points;
	// they are excluded from the cell structures (their clamped cells
	// could not bound their distances) and retrieved unconditionally.
	overflowIDs []uint32
}

// NewLayer returns an empty delta layer over g for trajectory IDs starting
// at baseN, sketching inserts with sketchM intervals.
func NewLayer(g *grid.Grid, baseN, sketchM int) *Layer {
	l := &Layer{
		g:       g,
		depth:   g.Depth(),
		sketchM: sketchM,
		idSpace: baseN,
		trajs:   make(map[trajectory.TrajID]*entry),
		tombs:   make(map[trajectory.TrajID]struct{}),
		itl:     make(map[uint32]map[trajectory.ActivityID]invindex.PostingList),
	}
	l.hicl = make([]map[trajectory.ActivityID]*invindex.Set, l.depth+1)
	for lev := 1; lev <= l.depth; lev++ {
		l.hicl[lev] = make(map[trajectory.ActivityID]*invindex.Set)
	}
	return l
}

// insert registers tr under id and returns the immutable entry built for
// it (mutation observers read its activity set without re-deriving it).
// The caller (Dynamic) assigns IDs monotonically and never reuses one.
func (l *Layer) insert(id trajectory.TrajID, tr trajectory.Trajectory) *entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := newEntry(tr, l.sketchM, l.g.Region())
	l.trajs[id] = e
	if int(id) >= l.idSpace {
		l.idSpace = int(id) + 1
	}
	l.register(id, e)
	l.muts.Add(1)
	return e
}

// register adds e's points to the cell structures (or the overflow list).
func (l *Layer) register(id trajectory.TrajID, e *entry) {
	if e.overflow {
		l.overflowIDs = append(l.overflowIDs, uint32(id))
		return
	}
	for _, p := range e.src.Pts {
		if len(p.Acts) == 0 {
			continue
		}
		leaf := l.g.LeafAt(p.Loc)
		cell := l.itl[leaf.Z]
		if cell == nil {
			cell = make(map[trajectory.ActivityID]invindex.PostingList)
			l.itl[leaf.Z] = cell
		}
		for _, a := range p.Acts {
			cell[a] = cell[a].Insert(uint32(id))
			z := leaf.Z
			for lev := l.depth; lev >= 1; lev-- {
				am := l.hicl[lev][a]
				if am == nil {
					am = invindex.NewSet()
					l.hicl[lev][a] = am
				}
				if !am.Insert(z) {
					break // every ancestor is registered already
				}
				z >>= 2
			}
		}
	}
}

// delete tombstones id. It reports whether the tombstone is new.
func (l *Layer) delete(id trajectory.TrajID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.tombs[id]; ok {
		return false
	}
	l.tombs[id] = struct{}{}
	l.numTombs.Add(1)
	l.muts.Add(1)
	return true
}

// mutations returns the number of inserts+deletes applied to the layer.
func (l *Layer) mutations() int { return int(l.muts.Load()) }

// rebound returns a new layer bound to grid g with base size baseN, holding
// the same entries and tombstones re-registered against g's cells. It is
// called during the compaction swap: the old layer keeps serving in-flight
// searches on the retired generation, the rebound copy serves the new one.
// The caller must exclude writers (Dynamic holds its write mutex).
func (l *Layer) rebound(g *grid.Grid, baseN int) *Layer {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nl := NewLayer(g, baseN, l.sketchM)
	if l.idSpace > nl.idSpace {
		nl.idSpace = l.idSpace
	}
	region := g.Region()
	for id, e := range l.trajs {
		ne := e
		// The region may have changed; recompute overflow against it.
		if overflow := entryOverflows(e, region); overflow != e.overflow {
			ne = &entry{src: e.src, pts: e.pts, acts: e.acts, postings: e.postings, tas: e.tas, overflow: overflow}
		}
		nl.trajs[id] = ne
		nl.register(id, ne)
	}
	for id := range l.tombs {
		nl.tombs[id] = struct{}{}
	}
	nl.numTombs.Store(int64(len(nl.tombs)))
	nl.muts.Store(l.muts.Load())
	return nl
}

// absorb merges other's entries and tombstones into l (compaction-failure
// rollback). Caller must exclude writers.
func (l *Layer) absorb(other *Layer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	for id, e := range other.trajs {
		l.trajs[id] = e
		if int(id) >= l.idSpace {
			l.idSpace = int(id) + 1
		}
		l.register(id, e)
	}
	for id := range other.tombs {
		if _, ok := l.tombs[id]; !ok {
			l.tombs[id] = struct{}{}
		}
	}
	l.numTombs.Store(int64(len(l.tombs)))
	l.muts.Add(other.muts.Load())
}

// memBytes approximates the layer's heap footprint (entries + cell lists).
func (l *Layer) memBytes() int64 {
	var n int64
	for _, e := range l.trajs {
		n += 64 + int64(len(e.pts))*16 + int64(len(e.acts))*4 + e.tas.MemBytes()
		for _, pl := range e.postings {
			n += pl.MemBytes()
		}
	}
	for _, cell := range l.itl {
		for _, pl := range cell {
			n += 16 + pl.MemBytes()
		}
	}
	for _, lev := range l.hicl {
		for _, am := range lev {
			n += 16 + am.MemBytes()
		}
	}
	n += int64(len(l.tombs)) * 8
	return n
}

// entryOverflows mirrors newEntry's overflow rule: only activity-carrying
// points can force a trajectory onto the overflow path.
func entryOverflows(e *entry, region geo.Rect) bool {
	for _, p := range e.src.Pts {
		if len(p.Acts) > 0 && !region.ContainsPoint(p.Loc) {
			return true
		}
	}
	return false
}

// --- read side (caller holds mu.RLock via the generation's search path;
// frozen layers are immutable and read lock-free) ---

func (l *Layer) cellHasAct(level int, z uint32, a trajectory.ActivityID) bool {
	if level < 1 || level >= len(l.hicl) {
		return false
	}
	return l.hicl[level][a].Contains(z)
}

func (l *Layer) appendCellTrajs(dst []uint32, z uint32, a trajectory.ActivityID) []uint32 {
	return append(dst, l.itl[z][a]...)
}

func (l *Layer) tombstoned(id trajectory.TrajID) bool {
	_, ok := l.tombs[id]
	return ok
}

func (l *Layer) lookup(id trajectory.TrajID) *entry { return l.trajs[id] }

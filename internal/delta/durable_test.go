package delta

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"activitytraj/internal/faultfs"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// durOp is one scripted step of a durability workload: an insert, a delete,
// or an explicit compaction. Mutations consume WAL sequence numbers in
// script order (the tests run single-threaded), so "the corpus recovered to
// seq S" means exactly "the first S mutations of the script".
type durOp struct {
	pts     []trajectory.Point // insert when non-nil
	del     trajectory.TrajID
	compact bool
}

// durWorkload scripts inserts of the dataset's tail onto a base prefix,
// with a distinct live base trajectory deleted after every 5th insert
// (distinct targets keep every delete a real mutation — idempotent
// re-deletes are not logged and would break the seq<->op mapping).
// Compactions run after mutations 15 and 35.
func durWorkload(full *trajectory.Dataset, baseN int) []durOp {
	var ops []durOp
	muts, dels := 0, 0
	for _, tr := range full.Trajs[baseN:] {
		ops = append(ops, durOp{pts: tr.Pts})
		muts++
		if muts == 15 || muts == 35 {
			ops = append(ops, durOp{compact: true})
		}
		if muts%5 == 0 && dels < baseN {
			dels++
			ops = append(ops, durOp{del: trajectory.TrajID(baseN - dels)})
			muts++
			if muts == 15 || muts == 35 {
				ops = append(ops, durOp{compact: true})
			}
		}
	}
	return ops
}

// apply runs one op, returning whether it was a mutation and its error.
func (o durOp) apply(d *Dynamic) (mutation bool, err error) {
	switch {
	case o.compact:
		return false, d.CompactNow()
	case o.pts != nil:
		_, err := d.Insert(trajectory.Trajectory{Pts: o.pts})
		return true, err
	default:
		return true, d.Delete(o.del)
	}
}

// searchParity asserts byte-identical results between two dynamic indexes
// across the workload's queries, ordered and unordered.
func searchParity(t *testing.T, label string, want, got *Dynamic, qs []query.Query, k int) {
	t.Helper()
	we, ge := want.NewEngine(), got.NewEngine()
	ctx := context.Background()
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			wr, err := we.Search(ctx, query.Request{Query: q, K: k, Ordered: ordered})
			if err != nil {
				t.Fatalf("%s q%d ref: %v", label, qi, err)
			}
			gr, err := ge.Search(ctx, query.Request{Query: q, K: k, Ordered: ordered})
			if err != nil {
				t.Fatalf("%s q%d recovered: %v", label, qi, err)
			}
			requireIdentical(t, fmt.Sprintf("%s q%d ordered=%v", label, qi, ordered), wr.Results, gr.Results)
		}
	}
}

func TestNewDynamicRejectsDurability(t *testing.T) {
	_, err := NewDynamic(laPreset(t), Config{Durability: Durability{Dir: t.TempDir()}})
	if err == nil {
		t.Fatal("NewDynamic accepted a durable config; OpenOrCreate must be the only door")
	}
}

func TestInsertRecordCodecRoundTrip(t *testing.T) {
	cases := [][]trajectory.Point{
		nil,
		{{Loc: geo.Point{X: 1, Y: 2}}},
		{{Loc: geo.Point{X: -3.5, Y: 7.25}, Acts: trajectory.ActivitySet{0, 2, 9, 1000}}},
		{{Loc: geo.Point{X: 0, Y: 0}, Acts: trajectory.ActivitySet{5}}, {Loc: geo.Point{X: 1e9, Y: -1e-9}}},
	}
	for i, pts := range cases {
		body := encodeInsertBody(nil, pts)
		got, err := decodeInsertBody(body)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(pts) {
			t.Fatalf("case %d: %d points != %d", i, len(got), len(pts))
		}
		for j := range pts {
			if got[j].Loc != pts[j].Loc || !reflect.DeepEqual(got[j].Acts, normOrNil(pts[j].Acts)) {
				t.Fatalf("case %d point %d: %+v != %+v", i, j, got[j], pts[j])
			}
		}
		// Truncations must error, never panic.
		for cut := 0; cut < len(body); cut++ {
			if _, err := decodeInsertBody(body[:cut]); err == nil && cut != len(body) {
				// Some prefixes happen to decode (fewer points claimed is
				// caught by the trailing-bytes check, so err should be set).
				t.Fatalf("case %d: truncation to %d decoded cleanly", i, cut)
			}
		}
	}
}

func normOrNil(a trajectory.ActivitySet) trajectory.ActivitySet {
	if len(a) == 0 {
		return nil
	}
	return a
}

// TestDurableRecoverCleanShutdown: close and reopen without a crash — the
// recovered index must be byte-identical to a never-closed twin, and
// ingestion must resume with the next ID.
func TestDurableRecoverCleanShutdown(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5
	dir := t.TempDir()
	cfg := Config{CompactThreshold: -1, Durability: Durability{Dir: dir, SegmentBytes: 4096}}

	d, ri, err := OpenOrCreate(prefix(full, baseN), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Replayed != 0 || ri.SnapshotSeq != 0 {
		t.Fatalf("fresh open reported recovery: %+v", ri)
	}
	twin, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := durWorkload(full, baseN)
	muts := 0
	for _, op := range ops {
		m, err := op.apply(d)
		if err != nil {
			t.Fatalf("mutation %d: %v", muts, err)
		}
		if m {
			muts++
		}
		if !op.compact {
			if _, err := op.apply(twin); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, ri, err := OpenOrCreate(prefix(full, baseN), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if ri.LastSeq != uint64(muts) {
		t.Fatalf("recovered to seq %d, want %d (info %+v)", ri.LastSeq, muts, ri)
	}
	if ri.SnapshotSeq != 35 {
		t.Fatalf("snapshot covers seq %d, want 35 (info %+v)", ri.SnapshotSeq, ri)
	}
	if got, want := d2.Stats().IDSpace, twin.Stats().IDSpace; got != want {
		t.Fatalf("recovered IDSpace %d != twin %d", got, want)
	}
	qs := testWorkload(t, full, 8, 7)
	searchParity(t, "clean-shutdown", twin, d2, qs, 10)

	// Ingestion resumes exactly where it left off.
	id, err := d2.Insert(trajectory.Trajectory{Pts: full.Trajs[0].Pts})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := twin.Insert(trajectory.Trajectory{Pts: full.Trajs[0].Pts})
	if err != nil {
		t.Fatal(err)
	}
	if id != id2 {
		t.Fatalf("post-recovery insert assigned %d, twin assigned %d", id, id2)
	}
	searchParity(t, "post-recovery-insert", twin, d2, qs, 10)
}

// TestDurableCrashMatrix is the table-driven crash-matrix test: for every
// injected crash point — mid-record (clean and torn), mid-rotation,
// mid-compaction-swap, mid-prune, mid-fsync — SIGKILL-equivalent the index
// by latching the filesystem, "restart" by reopening the directory, and
// assert the recovered corpus is a strict prefix of the attempted mutation
// stream that (a) contains every acknowledged mutation and (b) searches
// byte-identically to an uncrashed twin that applied the same prefix.
func TestDurableCrashMatrix(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5
	ops := durWorkload(full, baseN)
	qs := testWorkload(t, full, 6, 11)

	cases := []struct {
		name  string
		plan  faultfs.Plan
		crash bool
	}{
		{"first-record", faultfs.Plan{CrashOnWrite: 2}, true}, // write 1 is the segment header
		{"mid-record-clean", faultfs.Plan{CrashOnWrite: 9}, true},
		{"mid-record-torn-small", faultfs.Plan{CrashOnWrite: 9, WritePartial: 5}, true},
		{"mid-record-torn-large", faultfs.Plan{CrashOnWrite: 21, WritePartial: 40}, true},
		{"mid-record-torn-header-only", faultfs.Plan{CrashOnWrite: 15, WritePartial: 3}, true},
		{"mid-rotation-create", faultfs.Plan{CrashOnCreate: 3}, true},
		{"mid-rotation-header", faultfs.Plan{CrashOnCreate: 0, CrashOnWrite: 40, WritePartial: 2}, true},
		{"mid-compaction-snapshot-rename", faultfs.Plan{CrashOnRename: 1}, true},
		{"mid-compaction-manifest-rename", faultfs.Plan{CrashOnRename: 2}, true},
		{"mid-prune-remove", faultfs.Plan{CrashOnRemove: 1}, true},
		{"mid-commit-fsync", faultfs.Plan{CrashOnSync: 4}, true},
		{"late-fsync", faultfs.Plan{CrashOnSync: 30}, true},
		{"transient-fsync-error", faultfs.Plan{FailSync: 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(nil, tc.plan)
			cfg := Config{CompactThreshold: -1, Durability: Durability{
				Dir: dir, SegmentBytes: 2048, FS: ffs,
			}}
			d, _, err := OpenOrCreate(prefix(full, baseN), cfg)
			if err != nil {
				// The plan can fire during the fresh open itself (e.g. the
				// very first create); nothing was acknowledged, recovery of
				// an empty directory is covered by other cases.
				t.Skipf("fault fired during open: %v", err)
			}
			acked := 0   // mutations whose call returned nil
			attempt := 0 // mutations that reached the index at all
			failed := false
			for _, op := range ops {
				m, err := op.apply(d)
				if m {
					attempt++
					if err == nil {
						if failed {
							t.Fatalf("%s: mutation %d succeeded after an earlier failure (not fail-stop)", tc.name, attempt)
						}
						acked++
					} else {
						failed = true
					}
				}
			}
			if tc.crash && !ffs.Crashed() {
				w, s, c, rn, rm := ffs.Ops()
				t.Fatalf("plan %+v never fired (ops: %d writes %d syncs %d creates %d renames %d removes)", tc.plan, w, s, c, rn, rm)
			}
			if !failed && tc.crash {
				t.Fatalf("crash fired but every mutation was acknowledged")
			}

			// "Restart": reopen through a healthy filesystem.
			cfg.Durability.FS = nil
			d2, ri, err := OpenOrCreate(prefix(full, baseN), cfg)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer d2.Close()
			s := int(ri.LastSeq)
			if s < acked {
				t.Fatalf("recovered seq %d < %d acknowledged mutations (info %+v)", s, acked, ri)
			}
			if s > attempt {
				t.Fatalf("recovered seq %d > %d attempted mutations", s, attempt)
			}

			// Twin: a fresh in-memory index applying the same prefix.
			twin, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			applied := 0
			for _, op := range ops {
				if op.compact {
					continue
				}
				if applied == s {
					break
				}
				if _, err := op.apply(twin); err != nil {
					t.Fatal(err)
				}
				applied++
			}
			if got, want := d2.Stats().IDSpace, twin.Stats().IDSpace; got != want {
				t.Fatalf("recovered IDSpace %d != twin %d", got, want)
			}
			searchParity(t, tc.name, twin, d2, qs, 10)

			// The recovered index must accept and persist new mutations.
			if _, err := d2.Insert(trajectory.Trajectory{Pts: full.Trajs[1].Pts}); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
			if _, err := twin.Insert(trajectory.Trajectory{Pts: full.Trajs[1].Pts}); err != nil {
				t.Fatal(err)
			}
			searchParity(t, tc.name+"/post-insert", twin, d2, qs, 10)
		})
	}
}

// TestDurableEmptyWALResumesAfterSnapshot: when a crash leaves a snapshot
// but not a single intact post-snapshot WAL record (prune keeps only the
// newest segment; a torn tail can erase it entirely), reopening must resume
// sequence numbering after the snapshot — numbering restarting at 1 would
// make the NEXT recovery silently skip every new acknowledged mutation.
func TestDurableEmptyWALResumesAfterSnapshot(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) / 2
	dir := t.TempDir()
	cfg := Config{CompactThreshold: -1, Durability: Durability{Dir: dir}}

	d, _, err := OpenOrCreate(prefix(full, baseN), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN+i].Pts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}

	d2, ri, err := OpenOrCreate(prefix(full, baseN), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ri.SnapshotSeq != 3 || ri.LastSeq != 3 || ri.Replayed != 0 {
		t.Fatalf("recovery info %+v, want snapshot seq 3 with nothing replayed", ri)
	}
	if _, err := d2.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN+3].Pts}); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3, ri, err := OpenOrCreate(prefix(full, baseN), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if ri.Replayed != 1 || ri.LastSeq != 4 {
		t.Fatalf("post-snapshot insert skipped on replay: %+v", ri)
	}
	if got, want := d3.Stats().IDSpace, baseN+4; got != want {
		t.Fatalf("recovered IDSpace %d, want %d", got, want)
	}
}

// TestDurableFailStop: after an injected fsync error the index must refuse
// further mutations (never acknowledging writes of unknown durability)
// while searches keep serving.
func TestDurableFailStop(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) / 2
	ffs := faultfs.New(nil, faultfs.Plan{FailSync: 1})
	d, _, err := OpenOrCreate(prefix(full, baseN), Config{
		CompactThreshold: -1,
		Durability:       Durability{Dir: t.TempDir(), FS: ffs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN].Pts}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("first insert should fail with the injected error, got %v", err)
	}
	if _, err := d.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN].Pts}); err == nil {
		t.Fatal("insert after a sync failure succeeded (not fail-stop)")
	}
	if err := d.Delete(0); err == nil {
		t.Fatal("delete after a sync failure succeeded (not fail-stop)")
	}
	e := d.NewEngine()
	qs := testWorkload(t, full, 2, 3)
	if _, err := e.Search(context.Background(), query.Request{Query: qs[0], K: 5}); err != nil {
		t.Fatalf("search after WAL failure: %v", err)
	}
}

// TestDurableSyncModes: each sync policy survives a clean close/reopen with
// full parity (the crash matrix pins down SyncAlways; this pins the others'
// replay paths).
func TestDurableSyncModes(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5
	ops := durWorkload(full, baseN)
	qs := testWorkload(t, full, 4, 5)
	for _, mode := range []wal.SyncMode{wal.SyncGroup, wal.SyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{CompactThreshold: -1, Durability: Durability{
				Dir: t.TempDir(), Sync: mode, SegmentBytes: 4096,
			}}
			d, _, err := OpenOrCreate(prefix(full, baseN), cfg)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				if _, err := op.apply(d); err != nil {
					t.Fatal(err)
				}
				if !op.compact {
					if _, err := op.apply(twin); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, _, err := OpenOrCreate(prefix(full, baseN), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			searchParity(t, mode.String(), twin, d2, qs, 10)
		})
	}
}

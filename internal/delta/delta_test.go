package delta

import (
	"math"
	"testing"
	"time"

	"activitytraj/internal/dataset"
	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
	"activitytraj/internal/geo"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// laPreset generates a shrunken LA dataset shared by the exactness tests.
func laPreset(t testing.TB) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.LA(0.02))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

func testWorkload(t testing.TB, ds *trajectory.Dataset, n int, seed int64) []query.Query {
	t.Helper()
	qs, err := queries.Generate(ds, queries.Config{NumQueries: n, Seed: seed})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}
	return qs
}

// staticEngine builds a plain (immutable) GAT engine over ds.
func staticEngine(t testing.TB, ds *trajectory.Dataset) *gat.Engine {
	t.Helper()
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatalf("trajstore: %v", err)
	}
	idx, err := gat.Build(ts, gat.Config{})
	if err != nil {
		t.Fatalf("gat build: %v", err)
	}
	return gat.NewEngine(idx)
}

// prefix returns a dataset holding only the first n trajectories.
func prefix(ds *trajectory.Dataset, n int) *trajectory.Dataset {
	sub := ds.Sample(n)
	sub.Name = ds.Name
	return sub
}

// requireIdentical asserts byte-identical top-k results: same IDs in the
// same order with bit-equal distances.
func requireIdentical(t *testing.T, label string, want, got []query.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results != %d results\nwant %v\ngot  %v", label, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
			t.Fatalf("%s: result %d differs\nwant %v\ngot  %v", label, i, want, got)
		}
	}
}

// searchBoth runs the same query on both engines and requires identical
// answers for ATSQ and OATSQ.
func searchBoth(t *testing.T, label string, ref query.Engine, dyn query.Engine, q query.Query, k int) {
	t.Helper()
	for _, ordered := range []bool{false, true} {
		var want, got []query.Result
		var err error
		if ordered {
			want, err = ref.SearchOATSQ(q, k)
		} else {
			want, err = ref.SearchATSQ(q, k)
		}
		if err != nil {
			t.Fatalf("%s ref: %v", label, err)
		}
		if ordered {
			got, err = dyn.SearchOATSQ(q, k)
		} else {
			got, err = dyn.SearchATSQ(q, k)
		}
		if err != nil {
			t.Fatalf("%s dyn: %v", label, err)
		}
		requireIdentical(t, label, want, got)
	}
}

// TestInsertEqualsRebuild: search after N online inserts must return
// byte-identical top-k to a full build over the same corpus (the ISSUE's
// exactness acceptance criterion).
func TestInsertEqualsRebuild(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5

	d, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range full.Trajs[baseN:] {
		id, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			t.Fatal(err)
		}
		if id != tr.ID {
			t.Fatalf("insert assigned ID %d, want %d", id, tr.ID)
		}
	}

	ref := staticEngine(t, full)
	dyn := d.NewEngine()
	for qi, q := range testWorkload(t, full, 12, 5) {
		searchBoth(t, "q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}
	st := d.Stats()
	if st.DeltaTrajectories != len(full.Trajs)-baseN {
		t.Fatalf("delta holds %d trajectories, want %d", st.DeltaTrajectories, len(full.Trajs)-baseN)
	}
	// Every query should have exercised the merged path at least once in
	// aggregate; check the stat surfaced.
	if dyn.LastStats().Candidates == 0 {
		t.Fatal("no candidates recorded")
	}
}

// huskify returns a copy of ds with the given trajectories reduced to empty
// husks — the reference corpus for tombstone masking.
func huskify(ds *trajectory.Dataset, dead []trajectory.TrajID) *trajectory.Dataset {
	out := &trajectory.Dataset{Name: ds.Name, Vocab: ds.Vocab, Trajs: make([]trajectory.Trajectory, len(ds.Trajs))}
	copy(out.Trajs, ds.Trajs)
	for _, id := range dead {
		out.Trajs[id] = trajectory.Trajectory{ID: id}
	}
	return out
}

// TestDeleteTombstonesMaskResults: deletes of base and delta trajectories
// must behave exactly like a rebuild without them.
func TestDeleteTombstonesMaskResults(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5

	d, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range full.Trajs[baseN:] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}

	qs := testWorkload(t, full, 8, 11)
	dyn := d.NewEngine()

	// Delete the top result of the first few queries: some from the base
	// layer, some from the delta layer.
	var dead []trajectory.TrajID
	for _, q := range qs[:4] {
		rs, err := dyn.SearchATSQ(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			dead = append(dead, r.ID)
		}
	}
	seen := map[trajectory.TrajID]bool{}
	var baseDead, deltaDead int
	for _, id := range dead {
		if seen[id] {
			continue
		}
		seen[id] = true
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
		if int(id) < baseN {
			baseDead++
		} else {
			deltaDead++
		}
	}
	if baseDead == 0 || deltaDead == 0 {
		t.Logf("warning: tombstones cover base=%d delta=%d; both layers should be exercised", baseDead, deltaDead)
	}

	ref := staticEngine(t, huskify(full, dead))
	for qi, q := range qs {
		searchBoth(t, "q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}

	// Deleting an unknown ID errors; double-delete does not, and leaves the
	// tombstone count unchanged.
	if err := d.Delete(trajectory.TrajID(len(full.Trajs) + 100)); err == nil {
		t.Fatal("delete of unknown ID succeeded")
	}
	tombs := d.Stats().Tombstones
	if err := d.Delete(dead[0]); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if got := d.Stats().Tombstones; got != tombs {
		t.Fatalf("double delete inflated tombstones: %d -> %d", tombs, got)
	}

	// Idempotent deletes across a compaction: re-deleting an ID already
	// reduced to a base husk must not create a new tombstone (which would
	// count toward the compaction threshold for an unchanged corpus).
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	for _, id := range dead {
		if err := d.Delete(id); err != nil {
			t.Fatalf("post-compaction re-delete: %v", err)
		}
	}
	if st := d.Stats(); st.Tombstones != 0 {
		t.Fatalf("re-deletes of compacted husks created %d tombstones", st.Tombstones)
	}
	for qi, q := range qs {
		searchBoth(t, "post-compaction q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}
}

// TestCompactionPreservesTopK: explicit compaction must not change any
// answer, must fold tombstones away, and must keep serving subsequent
// inserts exactly.
func TestCompactionPreservesTopK(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) / 2
	holdout := (len(full.Trajs) - baseN) / 2

	d, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range full.Trajs[baseN : baseN+holdout] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	var dead []trajectory.TrajID
	dead = append(dead, trajectory.TrajID(1), trajectory.TrajID(baseN+1))
	for _, id := range dead {
		if err := d.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	qs := testWorkload(t, full, 8, 17)
	dyn := d.NewEngine()
	before := make([][]query.Result, len(qs))
	for qi, q := range qs {
		rs, err := dyn.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		before[qi] = rs
	}

	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if st.DeltaTrajectories != 0 || st.Tombstones != 0 {
		t.Fatalf("delta not drained after compaction: %+v", st)
	}
	if st.BaseTrajectories != baseN+holdout {
		t.Fatalf("base has %d trajectories, want %d", st.BaseTrajectories, baseN+holdout)
	}

	for qi, q := range qs {
		rs, err := dyn.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "post-compaction", before[qi], rs)
	}

	// Keep ingesting after the swap; answers must still match a rebuild
	// over the equivalent corpus.
	for _, tr := range full.Trajs[baseN+holdout:] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	ref := staticEngine(t, huskify(full, dead))
	for qi, q := range qs {
		searchBoth(t, "post-compaction-insert q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}

	// A no-op compaction is fine.
	preEpoch := d.Stats().Epoch
	d2 := d.NewEngine()
	if _, err := d2.SearchATSQ(qs[0], 3); err != nil {
		t.Fatal(err)
	}
	if err := d.CompactNow(); err == nil {
		// Second compaction folds the new inserts in; a third with an empty
		// delta must be a no-op.
		if err := d.CompactNow(); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().Epoch; got < preEpoch {
			t.Fatalf("epoch went backwards: %d -> %d", preEpoch, got)
		}
	}
}

// TestOverflowInserts: trajectories with points outside the base grid's
// region must still be found exactly (they bypass the clamped cells).
func TestOverflowInserts(t *testing.T) {
	full := laPreset(t)
	d, err := NewDynamic(full, Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	bounds := full.Bounds()
	// A trajectory well outside the region, carrying common activities.
	far := geo.Point{X: bounds.MaxX + 50, Y: bounds.MaxY + 50}
	acts := full.Trajs[0].ActivityUnion()
	if len(acts) > 3 {
		acts = acts[:3]
	}
	outTraj := trajectory.Trajectory{Pts: []trajectory.Point{{Loc: far, Acts: acts}}}
	id, err := d.Insert(outTraj)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: full rebuild over the corpus including the far trajectory
	// (the rebuild refits its grid, so nothing overflows there).
	refDS := &trajectory.Dataset{Name: full.Name, Vocab: full.Vocab,
		Trajs: append(append([]trajectory.Trajectory{}, full.Trajs...), trajectory.Trajectory{ID: id, Pts: outTraj.Pts})}
	ref := staticEngine(t, refDS)
	dyn := d.NewEngine()

	// Query right at the far point: the overflow trajectory must win.
	q := query.Query{Pts: []query.Point{{Loc: far, Acts: acts[:1]}}}
	searchBoth(t, "overflow", ref, dyn, q, 5)
	rs, err := dyn.SearchATSQ(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].ID != id {
		t.Fatalf("overflow trajectory not found: %v", rs)
	}

	// After compaction the refit grid absorbs it; answers stay identical.
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	searchBoth(t, "overflow post-compaction", ref, dyn, q, 5)
}

// TestActlessOutOfRegionPointIsNotOverflow: a point with no activities can
// never participate in matching, so an out-of-region act-less point must
// not push the trajectory onto the (unconditionally retrieved) overflow
// path — its activity-carrying points index normally and results stay
// exact.
func TestActlessOutOfRegionPointIsNotOverflow(t *testing.T) {
	full := laPreset(t)
	d, err := NewDynamic(full, Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	bounds := full.Bounds()
	src := full.Trajs[1]
	pts := append([]trajectory.Point{}, src.Pts...)
	// A GPS glitch: far outside the region, carrying no activities.
	pts = append(pts, trajectory.Point{Loc: geo.Point{X: bounds.MaxX + 80, Y: bounds.MaxY + 80}})
	id, err := d.Insert(trajectory.Trajectory{Pts: pts})
	if err != nil {
		t.Fatal(err)
	}
	gen := d.gen.Load()
	if got := gen.ov.AppendOverflow(nil); len(got) != 0 {
		t.Fatalf("act-less out-of-region point classified as overflow: %v", got)
	}
	if e := gen.ov.find(id); e == nil || e.overflow {
		t.Fatalf("entry missing or marked overflow: %+v", e)
	}

	refDS := &trajectory.Dataset{Name: full.Name, Vocab: full.Vocab,
		Trajs: append(append([]trajectory.Trajectory{}, full.Trajs...), trajectory.Trajectory{ID: id, Pts: pts})}
	ref := staticEngine(t, refDS)
	dyn := d.NewEngine()
	for qi, q := range testWorkload(t, full, 6, 31) {
		searchBoth(t, "actless q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}
}

// TestAutoCompaction: crossing the threshold triggers a background
// compaction that drains the delta without losing writes.
func TestAutoCompaction(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) / 2
	d, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range full.Trajs[baseN:] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := d.Stats()
		if st.Compactions >= 1 && !st.Compacting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after threshold: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.LastCompactErr(); err != nil {
		t.Fatal(err)
	}
	// Whatever the compaction timing, the merged view must stay exact.
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	ref := staticEngine(t, full)
	dyn := d.NewEngine()
	for qi, q := range testWorkload(t, full, 6, 23) {
		searchBoth(t, "auto q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}
	if st := d.Stats(); st.DeltaTrajectories != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
}

// TestCompactionRollback: a failing rebuild must lose no writes — the
// frozen layer is absorbed back into the active one, searches stay exact
// throughout, auto-compaction latches off instead of hot-retrying, and a
// later successful CompactNow drains everything and re-arms it.
func TestCompactionRollback(t *testing.T) {
	full := laPreset(t)
	baseN := len(full.Trajs) * 3 / 5
	half := baseN + (len(full.Trajs)-baseN)/2

	d, err := NewDynamic(prefix(full, baseN), Config{CompactThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	d.testFailBuild.Store(true)

	// Crossing the threshold triggers background compactions that all fail;
	// the rollback must keep every insert searchable.
	for _, tr := range full.Trajs[baseN:half] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CompactNow(); err == nil {
		t.Fatal("injected rebuild failure did not surface")
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Compacting {
		if time.Now().After(deadline) {
			t.Fatal("compaction did not settle after failure")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !d.autoOff.Load() && d.LastCompactErr() == nil {
		// Either the background attempt latched autoOff, or only explicit
		// CompactNow calls failed (timing-dependent); one must have tripped.
		t.Fatal("no failure recorded anywhere")
	}
	st := d.Stats()
	if st.Compactions != 0 {
		t.Fatalf("failed compactions counted as completed: %+v", st)
	}
	if st.DeltaTrajectories != half-baseN {
		t.Fatalf("rollback lost writes: delta=%d want %d", st.DeltaTrajectories, half-baseN)
	}

	// More writes while auto-compaction is latched off: no hot retries, and
	// exactness holds over the rolled-back layers.
	for _, tr := range full.Trajs[half:] {
		if _, err := d.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	ref := staticEngine(t, full)
	dyn := d.NewEngine()
	qs := testWorkload(t, full, 6, 41)
	for qi, q := range qs {
		searchBoth(t, "rolled-back q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}

	// Clearing the fault lets an explicit CompactNow drain and re-arm.
	d.testFailBuild.Store(false)
	if err := d.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.DeltaTrajectories != 0 || st.Compactions == 0 {
		t.Fatalf("recovery compaction did not drain: %+v", st)
	}
	if d.autoOff.Load() {
		t.Fatal("auto-compaction still latched off after successful compaction")
	}
	for qi, q := range qs {
		searchBoth(t, "recovered q"+string(rune('0'+qi)), ref, dyn, q, 9)
	}
}

// TestInsertValidation: malformed activity sets and out-of-vocabulary IDs
// are rejected before touching the index.
func TestInsertValidation(t *testing.T) {
	full := laPreset(t)
	d, err := NewDynamic(full, Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	bad := trajectory.Trajectory{Pts: []trajectory.Point{
		{Loc: geo.Point{X: 1, Y: 1}, Acts: trajectory.ActivitySet{3, 2}},
	}}
	if _, err := d.Insert(bad); err == nil {
		t.Fatal("unnormalized activity set accepted")
	}
	bad = trajectory.Trajectory{Pts: []trajectory.Point{
		{Loc: geo.Point{X: 1, Y: 1}, Acts: trajectory.ActivitySet{trajectory.ActivityID(full.Vocab.Size() + 7)}},
	}}
	if _, err := d.Insert(bad); err == nil {
		t.Fatal("out-of-vocabulary activity accepted")
	}
	// Non-finite coordinates would poison every future compaction (the
	// rebuilt grid's bounds go NaN); they must be rejected at insert.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad = trajectory.Trajectory{Pts: []trajectory.Point{
			{Loc: geo.Point{X: v, Y: 1}, Acts: full.Trajs[0].Pts[0].Acts},
		}}
		if _, err := d.Insert(bad); err == nil {
			t.Fatalf("non-finite coordinate %v accepted", v)
		}
	}
	if err := d.CompactNow(); err != nil {
		t.Fatalf("compaction after rejected inserts: %v", err)
	}
	if _, err := NewDynamic(full, Config{Store: evaluate.TrajStoreConfig{FilePath: "/tmp/x"}}); err == nil {
		t.Fatal("file-backed store accepted")
	}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := DistSq(c.a, c.b); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("DistSq(%v,%v) = %v, want %v", c.a, c.b, got, c.want*c.want)
		}
	}
}

func TestNewRectSwaps(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("NewRect = %+v, want %+v", r, want)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
}

func TestRectPredicates(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.ContainsPoint(Point{5, 5}) || !r.ContainsPoint(Point{0, 0}) || !r.ContainsPoint(Point{10, 10}) {
		t.Fatal("boundary and interior points must be contained")
	}
	if r.ContainsPoint(Point{10.001, 5}) {
		t.Fatal("outside point must not be contained")
	}
	if !r.Intersects(NewRect(9, 9, 20, 20)) || r.Intersects(NewRect(11, 11, 12, 12)) {
		t.Fatal("intersection misclassified")
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) || r.ContainsRect(NewRect(1, 1, 11, 9)) {
		t.Fatal("containment misclassified")
	}
}

func TestMinDistMaxDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if d := r.MinDist(Point{1, 1}); d != 0 {
		t.Fatalf("inside MinDist = %v, want 0", d)
	}
	if d := r.MinDist(Point{5, 1}); d != 3 {
		t.Fatalf("side MinDist = %v, want 3", d)
	}
	if d := r.MinDist(Point{5, 6}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("corner MinDist = %v, want 5", d)
	}
	if d := r.MaxDist(Point{0, 0}); math.Abs(d-2*math.Sqrt2) > 1e-12 {
		t.Fatalf("MaxDist = %v, want %v", d, 2*math.Sqrt2)
	}
}

// TestMinDistLowerBoundsContained: MINDIST must lower-bound the distance to
// every point inside the rectangle — the property best-first search needs.
func TestMinDistLowerBoundsContained(t *testing.T) {
	f := func(px, py, x1, y1, x2, y2, fx, fy float64) bool {
		q := Point{X: mod(px, 100), Y: mod(py, 100)}
		r := NewRect(mod(x1, 100), mod(y1, 100), mod(x2, 100), mod(y2, 100))
		// A point inside r via fractions fx, fy in [0,1).
		in := Point{
			X: r.MinX + fracOf(fx)*r.Width(),
			Y: r.MinY + fracOf(fy)*r.Height(),
		}
		return r.MinDist(q) <= Dist(q, in)+1e-9 && r.MaxDist(q) >= Dist(q, in)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionContains: the union of two rects contains both.
func TestUnionContains(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(mod(x1, 50), mod(y1, 50), mod(x2, 50), mod(y2, 50))
		b := NewRect(mod(x3, 50), mod(y3, 50), mod(x4, 50), mod(y4, 50))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) && u.Enlargement(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundingRect(t *testing.T) {
	if r := BoundingRect(nil); r != (Rect{}) {
		t.Fatalf("empty bounding rect = %+v", r)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, 0}}
	r := BoundingRect(pts)
	want := Rect{MinX: -2, MinY: 0, MaxX: 4, MaxY: 5}
	if r != want {
		t.Fatalf("BoundingRect = %+v, want %+v", r, want)
	}
}

func TestProjectionRoundTripAndAccuracy(t *testing.T) {
	origin := LatLon{Lat: 40.7, Lon: -74.0} // New York
	pr := NewProjection(origin)
	pts := []LatLon{
		{40.7, -74.0}, {40.8, -73.9}, {40.55, -74.15}, {40.9, -73.7},
	}
	for _, ll := range pts {
		p := pr.ToPlane(ll)
		back := pr.FromPlane(p)
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
	// Planar distances must agree with haversine to well under 1% at city
	// scale — the property that makes kilometre-valued query diameters
	// meaningful.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			planar := Dist(pr.ToPlane(pts[i]), pr.ToPlane(pts[j]))
			hav := Haversine(pts[i], pts[j])
			if hav > 0 && math.Abs(planar-hav)/hav > 0.01 {
				t.Fatalf("projection error %v vs %v for %v-%v", planar, hav, pts[i], pts[j])
			}
		}
	}
}

func mod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), m)
}

func fracOf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(v) - math.Floor(math.Abs(v))
}

// Package geo provides the planar geometry primitives used throughout the
// activity-trajectory library: points, axis-aligned rectangles and the
// distance functions the paper's match distances are built on.
//
// All coordinates are in kilometres on a local planar projection. The paper
// evaluates on city-scale regions (Los Angeles, New York) where an
// equirectangular projection is accurate to well under 1%; LatLon helpers are
// provided to project real check-in coordinates into this plane.
package geo

import "math"

// Point is a location on the local plane, in kilometres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in kilometres.
func Dist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons where only the ordering matters.
func DistSq(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Rect is a closed axis-aligned rectangle. A Rect is valid when
// MinX <= MaxX and MinY <= MaxY. The zero Rect is the degenerate rectangle
// containing only the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corners, swapping coordinates
// as needed so the result is valid.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectFromPoint returns the degenerate rectangle containing only p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Enlargement returns the increase in area of r required to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r.
// It is zero when p lies inside r. This is the standard MINDIST bound used
// for best-first search over spatial indexes.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDistSq(p))
}

// MinDistSq returns the squared minimum distance from p to r.
func (r Rect) MinDistSq(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of r
// (attained at one of the four corners).
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// Valid reports whether r is a well-formed rectangle.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// BoundingRect returns the smallest rectangle containing all pts.
// It returns the zero Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := RectFromPoint(pts[0])
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

package geo

import "math"

// earthRadiusKm is the mean Earth radius used by the projection helpers.
const earthRadiusKm = 6371.0088

// LatLon is a geodetic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Projection converts geodetic coordinates to local planar kilometre
// coordinates using an equirectangular projection anchored at an origin.
// At city scale (tens of kilometres) the distortion is negligible, which is
// why the paper's kilometre-valued query diameters are meaningful.
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin LatLon) *Projection {
	return &Projection{origin: origin, cosLat: math.Cos(origin.Lat * math.Pi / 180)}
}

// ToPlane projects ll to planar kilometre coordinates.
func (pr *Projection) ToPlane(ll LatLon) Point {
	const degKm = earthRadiusKm * math.Pi / 180
	return Point{
		X: (ll.Lon - pr.origin.Lon) * degKm * pr.cosLat,
		Y: (ll.Lat - pr.origin.Lat) * degKm,
	}
}

// FromPlane is the inverse of ToPlane.
func (pr *Projection) FromPlane(p Point) LatLon {
	const degKm = earthRadiusKm * math.Pi / 180
	return LatLon{
		Lat: pr.origin.Lat + p.Y/degKm,
		Lon: pr.origin.Lon + p.X/(degKm*pr.cosLat),
	}
}

// Haversine returns the great-circle distance between a and b in kilometres.
// It is used by tests to bound the projection error.
func Haversine(a, b LatLon) float64 {
	const rad = math.Pi / 180
	la1, lo1 := a.Lat*rad, a.Lon*rad
	la2, lo2 := b.Lat*rad, b.Lon*rad
	sdLat := math.Sin((la2 - la1) / 2)
	sdLon := math.Sin((lo2 - lo1) / 2)
	h := sdLat*sdLat + math.Cos(la1)*math.Cos(la2)*sdLon*sdLon
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

package queries

import (
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/trajectory"
)

func ds(t testing.TB) *trajectory.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.Config{
		Name: "q", Seed: 2, NumTrajectories: 400, NumVenues: 800,
		VocabSize: 300, RegionW: 40, RegionH: 40, Clusters: 8, TrajLenMean: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShapeAndValidity(t *testing.T) {
	d := ds(t)
	qs, err := Generate(d, Config{NumQueries: 30, NumPoints: 4, ActsPerPoint: 3, DiameterKm: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 30 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if q.Len() != 4 {
			t.Fatalf("query %d has %d points", i, q.Len())
		}
		for _, p := range q.Pts {
			if len(p.Acts) != 3 {
				t.Fatalf("query %d point has %d acts", i, len(p.Acts))
			}
		}
		if d := q.Diameter(); d > 8.0001 {
			t.Fatalf("query %d diameter %v exceeds budget", i, d)
		}
	}
}

func TestDiameterSteering(t *testing.T) {
	d := ds(t)
	small, err := Generate(d, Config{NumQueries: 20, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate(d, Config{NumQueries: 20, NumPoints: 3, ActsPerPoint: 2, DiameterKm: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sumS, sumL float64
	for _, q := range small {
		sumS += q.Diameter()
	}
	for _, q := range large {
		sumL += q.Diameter()
	}
	if sumL <= sumS {
		t.Fatalf("diameter steering failed: avg %v (δ=4) vs %v (δ=25)", sumS/20, sumL/20)
	}
}

func TestDeterminism(t *testing.T) {
	d := ds(t)
	a, err := Generate(d, Config{NumQueries: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d, Config{NumQueries: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Pts) != len(b[i].Pts) {
			t.Fatalf("query %d shape differs", i)
		}
		for j := range a[i].Pts {
			if a[i].Pts[j].Loc != b[i].Pts[j].Loc || !a[i].Pts[j].Acts.Equal(b[i].Pts[j].Acts) {
				t.Fatalf("query %d point %d differs across identical seeds", i, j)
			}
		}
	}
}

// TestSourceTrajectoryMatches: by construction the source trajectory
// contains every selected activity, so at least one ATSQ match exists.
func TestSourceTrajectoryMatches(t *testing.T) {
	d := ds(t)
	qs, err := Generate(d, Config{NumQueries: 25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		all := q.AllActs()
		found := false
		for _, tr := range d.Trajs {
			if tr.ActivityUnion().ContainsAll(all) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d has no match in the dataset", i)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.NumPoints != DefaultNumPoints || c.ActsPerPoint != DefaultActsPerPoint ||
		c.DiameterKm != DefaultDiameterKm || c.NumQueries <= 0 {
		t.Fatalf("defaults = %+v", c)
	}
	un := Config{DiameterKm: -1}.WithDefaults()
	if un.DiameterKm >= 0 {
		t.Fatal("negative diameter must remain unconstrained")
	}
}

func TestEmptyDataset(t *testing.T) {
	if _, err := Generate(&trajectory.Dataset{}, Config{NumQueries: 1}); err == nil {
		t.Fatal("empty dataset must be rejected")
	}
}

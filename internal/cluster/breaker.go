package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe request
	// has been admitted; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = time.Second
)

// Breaker is a per-replica circuit breaker. Closed, it counts consecutive
// failures (passive request outcomes and active /healthz probes feed the
// same counter) and trips open at the threshold. Open, it refuses requests
// for a cooldown, then admits exactly one probe (half-open): success snaps
// it closed, failure re-opens it for another cooldown. All methods are safe
// for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int
	openedAt time.Time
}

// NewBreaker builds a breaker tripping after threshold consecutive failures
// (<= 0 selects DefaultBreakerThreshold) and probing after cooldown (<= 0
// selects DefaultBreakerCooldown). now replaces time.Now for deterministic
// tests; nil selects the real clock.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may be sent now. Open breakers whose
// cooldown has elapsed transition to half-open and admit this one call as
// the probe; while the probe's outcome is pending, further Allow calls
// refuse.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: one probe is already in flight
		return false
	}
}

// Success records a successful request or probe: the breaker snaps closed
// and the failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records a failed request or probe. A half-open probe failure
// re-opens immediately; closed breakers trip open at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's current position (an open breaker past its
// cooldown still reports open until an Allow call promotes it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

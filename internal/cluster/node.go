package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// Node WAL record kinds. Bodies carry the GLOBAL trajectory ID explicitly —
// unlike a delta WAL, whose insert IDs are implied by replay order — so the
// records are position-independent: every replica of a shard applying the
// same serialized mutation sequence writes record-identical WALs, and
// catch-up is literally shipping segment files (see Segments/ApplySegments).
const (
	recNodeInsert = 1 // body: uvarint gid, then the delta point encoding
	recNodeDelete = 2 // body: uvarint gid
)

// NodeConfig tunes one replica of one shard.
type NodeConfig struct {
	// Shard is the layout shard index this node replicates.
	Shard int
	// Delta configures the node's dynamic index. Delta.Durability must be
	// unset: the node's replication WAL subsumes it (one durable mutation
	// stream per node, not two).
	Delta delta.Config
	// Dir is the node's replication-WAL directory. Empty runs the node
	// volatile (tests, throwaway replicas): mutations apply in memory only
	// and catch-up still works, but a restart falls back to the base corpus.
	Dir string
	// Sync is the WAL fsync policy (zero = wal.SyncAlways).
	Sync wal.SyncMode
	// SegmentBytes overrides WAL segment rotation (0 = default).
	SegmentBytes int64
	// FS overrides the filesystem; nil selects the real one.
	FS wal.FS
}

// NodeRecovery describes what OpenNode rebuilt from its WAL.
type NodeRecovery struct {
	// Replayed is the number of replication records applied on top of the
	// layout-derived base sub-corpus.
	Replayed int64
	// LastSeq is the mutation sequence the node resumes after.
	LastSeq uint64
	// Torn reports a torn WAL tail (crash mid-append) that recovery
	// truncated.
	Torn bool
}

// Node is one replica of one shard: a dynamic index over the shard's
// layout-derived sub-corpus, the local↔global ID mappings, the grown-only
// bounding rectangle, and the replication WAL. All methods are safe for
// concurrent use; mutations are serialized internally, and the node's
// correctness contract is that every replica of a shard receives the same
// mutation sequence in the same order (the router's per-shard mutation lock
// provides it), making replicas byte-identical — searches may be served by
// any of them interchangeably.
type Node struct {
	shardIdx int
	d        *delta.Dynamic

	// mu guards the ID mappings and bounds. Searches hold the read lock for
	// their whole duration (like shard.Shard) so every trajectory they can
	// observe has its global mapping in place.
	mu        sync.RWMutex
	globalIDs []trajectory.TrajID
	localOf   map[trajectory.TrajID]trajectory.TrajID
	bounds    geo.Rect
	hasPoints bool
	maxGID    trajectory.TrajID
	anyGID    bool

	// wmu serializes mutations: the WAL append and the index apply happen
	// under it, so WAL order equals apply order equals local-ID order.
	wmu  sync.Mutex
	log  *wal.Log
	buf  []byte
	dir  string
	fsys wal.FS
	// memSeq counts applied mutations (== the WAL's LastSeq when one is
	// attached; volatile nodes count in memory only). Written under wmu.
	memSeq atomic.Uint64
}

// OpenNode boots shard cfg.Shard's replica from the shared base corpus:
// derive the sub-corpus through the layout (deterministic — every replica
// gets the identical base), then replay the node's replication WAL on top.
func OpenNode(base *trajectory.Dataset, layout *shard.Layout, cfg NodeConfig) (*Node, NodeRecovery, error) {
	var ri NodeRecovery
	if cfg.Shard < 0 || cfg.Shard >= layout.NumShards() {
		return nil, ri, fmt.Errorf("cluster: shard %d out of range (layout has %d)", cfg.Shard, layout.NumShards())
	}
	if cfg.Delta.Durability.Dir != "" {
		return nil, ri, fmt.Errorf("cluster: node delta layer must not be durable (the replication WAL is the durable stream)")
	}
	sub, gids := layout.SubDataset(base, cfg.Shard)
	d, err := delta.NewDynamic(sub, cfg.Delta)
	if err != nil {
		return nil, ri, fmt.Errorf("cluster: shard %d index: %w", cfg.Shard, err)
	}
	n := &Node{
		shardIdx:  cfg.Shard,
		d:         d,
		globalIDs: gids,
		localOf:   make(map[trajectory.TrajID]trajectory.TrajID, len(gids)),
	}
	for li, gid := range gids {
		n.localOf[gid] = trajectory.TrajID(li)
		if !n.anyGID || gid > n.maxGID {
			n.maxGID, n.anyGID = gid, true
		}
		n.extend(base.Trajs[gid].Pts)
	}

	if cfg.Dir == "" {
		return n, ri, nil
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = wal.OSFS()
	}
	n.dir, n.fsys = cfg.Dir, fsys
	if err := fsys.MkdirAll(cfg.Dir); err != nil {
		return nil, ri, fmt.Errorf("cluster: mkdir %s: %w", cfg.Dir, err)
	}
	info, err := wal.Replay(fsys, cfg.Dir, func(rec wal.Record) error {
		if rec.Seq != ri.LastSeq+1 {
			return fmt.Errorf("%w: record seq %d does not continue %d", wal.ErrCorrupt, rec.Seq, ri.LastSeq)
		}
		if err := n.applyRecord(rec); err != nil {
			return err
		}
		ri.LastSeq = rec.Seq
		ri.Replayed++
		return nil
	})
	if err != nil {
		return nil, ri, fmt.Errorf("cluster: replay node wal: %w", err)
	}
	ri.Torn = info.Torn
	l, err := wal.Open(wal.Options{
		Dir:          cfg.Dir,
		Sync:         cfg.Sync,
		SegmentBytes: cfg.SegmentBytes,
		FS:           fsys,
		FirstSeq:     ri.LastSeq + 1,
	})
	if err != nil {
		return nil, ri, err
	}
	if got := l.LastSeq(); got != ri.LastSeq {
		l.Close()
		return nil, ri, fmt.Errorf("%w: node wal resumes at seq %d but replay recovered %d", wal.ErrCorrupt, got+1, ri.LastSeq)
	}
	n.log = l
	return n, ri, nil
}

// extend grows the bounds; callers hold wmu or are still single-goroutine.
func (n *Node) extend(pts []trajectory.Point) {
	for _, p := range pts {
		if !n.hasPoints {
			n.bounds = geo.RectFromPoint(p.Loc)
			n.hasPoints = true
			continue
		}
		n.bounds = n.bounds.ExtendPoint(p.Loc)
	}
}

// Shard returns the layout shard index this node replicates.
func (n *Node) Shard() int { return n.shardIdx }

// Dynamic returns the node's underlying index (engines, stats). Mutations
// MUST go through the Node, which owns the gid mappings and the WAL.
func (n *Node) Dynamic() *delta.Dynamic { return n.d }

// LastSeq returns the node's applied mutation sequence (0 = base corpus
// only). Volatile nodes count in memory.
func (n *Node) LastSeq() uint64 { return n.memSeq.Load() }

// NextGID returns one past the highest global trajectory ID the node has
// seen — the router's boot input for resuming dense gid assignment (it
// takes the max across every reachable replica).
func (n *Node) NextGID() trajectory.TrajID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.anyGID {
		return 0
	}
	return n.maxGID + 1
}

// Bounds returns the bounding rectangle of every point the shard has ever
// held here and whether any point exists.
func (n *Node) Bounds() (geo.Rect, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.bounds, n.hasPoints
}

// Trajectories returns the number of gids mapped on this node (tombstoned
// ones included).
func (n *Node) Trajectories() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.globalIDs)
}

// Insert applies one replicated insert: trajectory gid with the given
// points. It is idempotent on gid — a router retrying a fan-out the node
// already applied gets applied=false and no duplicate — and serialized with
// every other mutation, so all replicas applying the same sequence assign
// identical local IDs. The points slice is retained.
func (n *Node) Insert(gid trajectory.TrajID, pts []trajectory.Point) (applied bool, err error) {
	n.wmu.Lock()
	n.mu.RLock()
	_, known := n.localOf[gid]
	n.mu.RUnlock()
	if known {
		n.wmu.Unlock()
		return false, nil
	}
	var commit func() error
	if n.log != nil {
		n.buf = binary.AppendUvarint(n.buf[:0], uint64(gid))
		n.buf = delta.EncodePoints(n.buf, pts)
		seq, aerr := n.log.Append(recNodeInsert, n.buf)
		if aerr != nil {
			n.wmu.Unlock()
			return false, aerr
		}
		commit = func() error { return n.log.Commit(seq) }
	}
	err = n.applyInsert(gid, pts)
	n.memSeq.Add(1)
	n.wmu.Unlock()
	if err != nil {
		return false, err
	}
	if commit != nil {
		// The fsync wait runs outside wmu so concurrent fan-outs to this
		// node share group commits instead of serializing on the lock.
		if err := commit(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Delete applies one replicated delete by global ID. Unknown gids are an
// error (the caller probes ownership first); re-deleting a tombstoned
// trajectory is a no-op that still logs, keeping replica WALs identical.
func (n *Node) Delete(gid trajectory.TrajID) error {
	n.wmu.Lock()
	n.mu.RLock()
	local, known := n.localOf[gid]
	n.mu.RUnlock()
	if !known {
		n.wmu.Unlock()
		return fmt.Errorf("cluster: delete of unknown trajectory %d", gid)
	}
	var commit func() error
	if n.log != nil {
		n.buf = binary.AppendUvarint(n.buf[:0], uint64(gid))
		seq, aerr := n.log.Append(recNodeDelete, n.buf)
		if aerr != nil {
			n.wmu.Unlock()
			return aerr
		}
		commit = func() error { return n.log.Commit(seq) }
	}
	err := n.d.Delete(local)
	n.memSeq.Add(1)
	n.wmu.Unlock()
	if err != nil {
		return err
	}
	if commit != nil {
		return commit()
	}
	return nil
}

// Owns reports whether gid is mapped on this node (the router's delete
// probe; tombstoned trajectories still answer true so a re-delete routes to
// the owning shard rather than erroring as unknown).
func (n *Node) Owns(gid trajectory.TrajID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.localOf[gid]
	return ok
}

// applyInsert binds gid to the next dense local ID and inserts the
// trajectory. Callers hold wmu.
func (n *Node) applyInsert(gid trajectory.TrajID, pts []trajectory.Point) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	local, err := n.d.Insert(trajectory.Trajectory{Pts: pts})
	if err != nil {
		return err
	}
	if int(local) != len(n.globalIDs) {
		return fmt.Errorf("cluster: local ID %d out of step with mapping (%d entries); mutations bypassed the node", local, len(n.globalIDs))
	}
	n.globalIDs = append(n.globalIDs, gid)
	n.localOf[gid] = local
	if !n.anyGID || gid > n.maxGID {
		n.maxGID, n.anyGID = gid, true
	}
	n.extend(pts)
	return nil
}

// applyRecord applies one replication record without re-logging it (boot
// replay). Callers are single-goroutine or hold wmu.
func (n *Node) applyRecord(rec wal.Record) error {
	switch rec.Kind {
	case recNodeInsert:
		gid, pts, err := decodeNodeInsert(rec.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		if _, known := n.localOf[gid]; known {
			return fmt.Errorf("%w: record %d re-inserts gid %d", wal.ErrCorrupt, rec.Seq, gid)
		}
		if err := n.applyInsert(gid, pts); err != nil {
			return err
		}
		n.memSeq.Add(1)
		return nil
	case recNodeDelete:
		gid, err := decodeNodeDelete(rec.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		local, known := n.localOf[gid]
		if !known {
			return fmt.Errorf("%w: record %d deletes unknown gid %d", wal.ErrCorrupt, rec.Seq, gid)
		}
		if err := n.d.Delete(local); err != nil {
			return err
		}
		n.memSeq.Add(1)
		return nil
	default:
		return fmt.Errorf("%w: record %d has unknown kind %d", wal.ErrCorrupt, rec.Seq, rec.Kind)
	}
}

// Search runs one search on the node using the caller-owned engine (engines
// are single-goroutine; pool them per serving goroutine), translating the
// shard-local result IDs to global ones. The gid mapping is append-only and
// order-preserving (local ascending ⇔ global ascending), so the translated
// (dist, gid) order matches what a global index would produce.
func (n *Node) Search(ctx0 context.Context, e *delta.Engine, req query.Request) (query.Response, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	resp, err := e.Search(ctx0, req)
	for i := range resp.Results {
		local := resp.Results[i].ID
		if int(local) >= len(n.globalIDs) {
			return resp, fmt.Errorf("cluster: result trajectory %d has no global mapping", local)
		}
		resp.Results[i].ID = n.globalIDs[local]
	}
	return resp, err
}

// Epoch implements query.EpochSource via the underlying index.
func (n *Node) Epoch() uint64 { return n.d.Epoch() }

// Close seals the node's WAL; the in-memory index keeps serving searches.
func (n *Node) Close() error {
	if n.log == nil {
		return nil
	}
	return n.log.Close()
}

// WALSegment is one replication-WAL segment file on the catch-up wire (Data
// travels base64-encoded inside JSON).
type WALSegment struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// Segments returns the node's WAL segment files that cover mutation
// sequences > from (file granularity: the first returned segment may start
// at or before from; receivers dedupe by sequence number). The last segment
// may be mid-append — a torn final frame is fine, the receiver's replay
// stops at the last complete record. Volatile nodes have no segments to
// ship.
func (n *Node) Segments(from uint64) ([]WALSegment, error) {
	if n.log == nil {
		return nil, fmt.Errorf("cluster: volatile node has no wal segments")
	}
	names, err := wal.ListSegments(n.fsys, n.dir)
	if err != nil {
		return nil, err
	}
	// Keep every segment from the last one starting at or before from+1:
	// earlier ones hold only seqs the receiver already has.
	start := 0
	for i, name := range names {
		first, err := wal.SegmentFirstSeq(name)
		if err != nil {
			return nil, err
		}
		if first <= from+1 {
			start = i
		}
	}
	var out []WALSegment
	for _, name := range names[start:] {
		f, err := n.fsys.Open(filepath.Join(n.dir, name))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, WALSegment{Name: name, Data: data})
	}
	return out, nil
}

// ApplySegments catches the node up from a healthy replica's shipped WAL
// segments: records at or below the node's own sequence are skipped (the
// dedupe making catch-up idempotent), the rest are appended to the node's
// own WAL — sequence numbers must line up exactly, replicas are record-
// identical by construction — and applied in order. It returns the node's
// resulting sequence.
func (n *Node) ApplySegments(segs []WALSegment) (uint64, error) {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	// Materialize the shipped files in a scratch dir so wal.Replay can walk
	// them exactly as it would a local log (the first segment's name fixes
	// the starting sequence).
	tmp, err := os.MkdirTemp("", "atsq-catchup-*")
	if err != nil {
		return n.memSeq.Load(), err
	}
	defer os.RemoveAll(tmp)
	for _, seg := range segs {
		if filepath.Base(seg.Name) != seg.Name {
			return n.memSeq.Load(), fmt.Errorf("cluster: bad segment name %q", seg.Name)
		}
		if _, err := wal.SegmentFirstSeq(seg.Name); err != nil {
			return n.memSeq.Load(), err
		}
		if err := os.WriteFile(filepath.Join(tmp, seg.Name), seg.Data, 0o644); err != nil {
			return n.memSeq.Load(), err
		}
	}
	var commits []uint64
	replayErr := func() error {
		_, err := wal.Replay(wal.OSFS(), tmp, func(rec wal.Record) error {
			if rec.Seq <= n.memSeq.Load() {
				return nil // already applied here
			}
			if rec.Seq != n.memSeq.Load()+1 {
				return fmt.Errorf("cluster: catch-up gap: record seq %d after local seq %d (need earlier segments)", rec.Seq, n.memSeq.Load())
			}
			if n.log != nil {
				seq, err := n.log.Append(rec.Kind, rec.Data)
				if err != nil {
					return err
				}
				if seq != rec.Seq {
					return fmt.Errorf("cluster: local wal assigned seq %d to shipped record %d", seq, rec.Seq)
				}
				commits = append(commits, seq)
			}
			return n.applyRecord(rec)
		})
		return err
	}()
	// One commit wait for the whole batch (group commit covers the rest).
	if n.log != nil && len(commits) > 0 {
		if err := n.log.Commit(commits[len(commits)-1]); err != nil {
			return n.memSeq.Load(), err
		}
	}
	return n.memSeq.Load(), replayErr
}

// decodeNodeInsert splits an insert record body into its gid and points.
func decodeNodeInsert(b []byte) (trajectory.TrajID, []trajectory.Point, error) {
	gid, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("cluster: truncated gid in insert record")
	}
	pts, err := delta.DecodePoints(b[n:])
	if err != nil {
		return 0, nil, err
	}
	return trajectory.TrajID(gid), pts, nil
}

// decodeNodeDelete decodes a delete record body.
func decodeNodeDelete(b []byte) (trajectory.TrajID, error) {
	gid, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("cluster: malformed delete record body")
	}
	return trajectory.TrajID(gid), nil
}

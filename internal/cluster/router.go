package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/server"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

// DefaultTryTimeout bounds one HTTP attempt against one replica. A search
// with a tighter context deadline inherits it automatically (the per-try
// context is derived from the request's), so the budget is the MINIMUM of
// the two — a slow replica burns at most one try's worth of the request
// before failover moves on.
const DefaultTryTimeout = 2 * time.Second

// ErrNotFound reports a delete whose trajectory no shard owns.
var ErrNotFound = errors.New("cluster: trajectory not found")

// IncompleteError reports a search that could not cover every shard while
// the request demanded completeness (Request.RequireComplete): every
// replica of Shard was unreachable. Routers map it to 503.
type IncompleteError struct {
	Shard int
	Cause error
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable and request requires complete results: %v", e.Shard, e.Cause)
}

func (e *IncompleteError) Unwrap() error { return e.Cause }

// shardDownError marks a search fan-out leg whose every eligible replica
// failed — the degradable failure class (vs. a permanent error like a
// malformed request, which aborts the whole search).
type shardDownError struct {
	si    int
	cause error
}

func (e *shardDownError) Error() string {
	return fmt.Sprintf("shard %d: all replicas failed: %v", e.si, e.cause)
}

func (e *shardDownError) Unwrap() error { return e.cause }

// statusError is a non-2xx node reply.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.msg) }

// transientErr reports whether a node interaction's failure is worth
// retrying on a sibling replica: network faults and gateway-class statuses
// (502/503/504) are; anything else the next replica would answer the same.
func transientErr(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusBadGateway || se.code == http.StatusServiceUnavailable ||
			se.code == http.StatusGatewayTimeout
	}
	return err != nil
}

// RouterConfig wires a Router to its cluster.
type RouterConfig struct {
	Topology Topology
	// Client issues every node request; nil selects a plain http.Client
	// (per-call contexts carry the deadlines).
	Client *http.Client
	// TryTimeout bounds one attempt against one replica (0 selects
	// DefaultTryTimeout).
	TryTimeout time.Duration
	// Backoff paces successive failed tries within one shard fan-out leg.
	Backoff Backoff
	// BreakerThreshold / BreakerCooldown tune the per-replica circuit
	// breakers (0 selects the package defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval runs the background /healthz sweep (0 disables it;
	// call Probe manually). CatchupInterval likewise for WAL catch-up.
	ProbeInterval   time.Duration
	CatchupInterval time.Duration
	// ErrorLog receives replica fault and catch-up progress lines; nil uses
	// the standard logger.
	ErrorLog *log.Logger
}

// replica is one shard server the router knows, with its failure-tracking
// state: the circuit breaker gates tries, and the lagging flag — set the
// moment a mutation fan-out skips or fails the replica — excludes it from
// reads and direct mutations until WAL catch-up proves it converged.
type replica struct {
	url     string
	br      *Breaker
	lagging atomic.Bool
	lastSeq atomic.Uint64 // highest sequence the router has seen acked
}

// ReplicaStatus is one replica's externally visible health.
type ReplicaStatus struct {
	URL     string `json:"url"`
	State   string `json:"state"`
	Lagging bool   `json:"lagging"`
	LastSeq uint64 `json:"last_seq"`
}

// shardGroup is one shard's replica set plus the router-side planning state.
type shardGroup struct {
	si       int
	replicas []*replica
	// mutmu serializes mutations to this shard: every replica sees the same
	// mutation sequence in the same order, the invariant that keeps replica
	// WALs record-identical (and catch-up a plain file copy).
	mutmu sync.Mutex
	rr    atomic.Uint64 // read round-robin cursor

	// bmu guards the planning bounds — the union of every point the shard
	// has ever held. Grown on inserts; never shrunk (stale-but-larger only
	// weakens pruning, never correctness).
	bmu       sync.RWMutex
	bounds    geo.Rect
	hasPoints bool
}

func (g *shardGroup) queryLB(pts []geo.Point) float64 {
	g.bmu.RLock()
	defer g.bmu.RUnlock()
	if !g.hasPoints {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		sum += g.bounds.MinDist(p)
	}
	return sum
}

func (g *shardGroup) boundsRect() (geo.Rect, bool) {
	g.bmu.RLock()
	defer g.bmu.RUnlock()
	return g.bounds, g.hasPoints
}

func (g *shardGroup) extendRect(r geo.Rect) {
	g.bmu.Lock()
	if !g.hasPoints {
		g.bounds, g.hasPoints = r, true
	} else {
		g.bounds = g.bounds.Union(r)
	}
	g.bmu.Unlock()
}

func (g *shardGroup) extendPts(pts []trajectory.Point) {
	g.bmu.Lock()
	for _, p := range pts {
		if !g.hasPoints {
			g.bounds, g.hasPoints = geo.RectFromPoint(p.Loc), true
			continue
		}
		g.bounds = g.bounds.ExtendPoint(p.Loc)
	}
	g.bmu.Unlock()
}

// Router is the cluster's query tier: it scatter-gathers searches across
// shard replica sets with the same planning and exactness contract as the
// in-process shard.Engine, fails over within each replica set, degrades to
// partial answers when a whole shard is down, and serializes mutations per
// shard so replicas stay byte-identical. All methods are safe for
// concurrent use.
type Router struct {
	layout *shard.Layout
	groups []*shardGroup
	client *http.Client
	tryTO  time.Duration
	bo     Backoff
	errlog *log.Logger

	nextID atomic.Uint32 // next global trajectory ID
	epoch  atomic.Uint64 // bumped per mutation (result-cache invalidation)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter boots a router against the topology: it fetches every
// replica's meta, requires at least one reachable replica per shard, resumes dense
// global ID assignment from the maximum NextGID any replica reports, seeds
// the planning bounds, and marks behind-or-unreachable replicas lagging.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	layout, err := cfg.Topology.Layout()
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	tryTO := cfg.TryTimeout
	if tryTO <= 0 {
		tryTO = DefaultTryTimeout
	}
	thr := cfg.BreakerThreshold
	if thr <= 0 {
		thr = DefaultBreakerThreshold
	}
	cd := cfg.BreakerCooldown
	if cd <= 0 {
		cd = DefaultBreakerCooldown
	}
	errlog := cfg.ErrorLog
	if errlog == nil {
		errlog = log.Default()
	}
	r := &Router{
		layout: layout,
		client: client,
		tryTO:  tryTO,
		bo:     cfg.Backoff,
		errlog: errlog,
		stop:   make(chan struct{}),
	}
	for si, urls := range cfg.Topology.Shards {
		g := &shardGroup{si: si}
		for _, u := range urls {
			g.replicas = append(g.replicas, &replica{
				url: strings.TrimRight(u, "/"),
				br:  NewBreaker(thr, cd, nil),
			})
		}
		r.groups = append(r.groups, g)
	}

	var maxNext uint32
	for _, g := range r.groups {
		var maxSeq uint64
		reachable := 0
		metas := make([]*NodeMeta, len(g.replicas))
		for i, rep := range g.replicas {
			var meta NodeMeta
			if err := r.getJSON(context.Background(), rep.url+"/v1/cluster/meta", &meta); err != nil {
				r.errlog.Printf("cluster router: boot: shard %d replica %s unreachable: %v", g.si, rep.url, err)
				rep.br.Failure()
				rep.lagging.Store(true)
				continue
			}
			if meta.Shard != g.si {
				return nil, fmt.Errorf("cluster: replica %s serves shard %d, topology lists it under shard %d", rep.url, meta.Shard, g.si)
			}
			metas[i] = &meta
			reachable++
			rep.lastSeq.Store(meta.LastSeq)
			if meta.LastSeq > maxSeq {
				maxSeq = meta.LastSeq
			}
			if meta.NextGID > maxNext {
				maxNext = meta.NextGID
			}
			if meta.Bounds != nil {
				g.extendRect(geo.NewRect(meta.Bounds.MinX, meta.Bounds.MinY, meta.Bounds.MaxX, meta.Bounds.MaxY))
			}
		}
		if reachable == 0 {
			return nil, fmt.Errorf("cluster: shard %d: no reachable replica", g.si)
		}
		for i, rep := range g.replicas {
			if metas[i] != nil && metas[i].LastSeq < maxSeq {
				rep.lagging.Store(true)
			}
		}
	}
	r.nextID.Store(maxNext)

	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.loop(cfg.ProbeInterval, r.Probe)
	}
	if cfg.CatchupInterval > 0 {
		r.wg.Add(1)
		go r.loop(cfg.CatchupInterval, func() { r.CatchUp(context.Background()) })
	}
	return r, nil
}

// Layout returns the frozen partition layout the router routes by.
func (r *Router) Layout() *shard.Layout { return r.layout }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.groups) }

// NextID returns the next global trajectory ID the router would assign.
func (r *Router) NextID() trajectory.TrajID { return trajectory.TrajID(r.nextID.Load()) }

// Epoch counts the mutations this router has applied — a cache-epoch for
// result caches layered above it.
func (r *Router) Epoch() uint64 { return r.epoch.Load() }

// Replicas reports every replica's health, grouped by shard.
func (r *Router) Replicas() [][]ReplicaStatus {
	out := make([][]ReplicaStatus, len(r.groups))
	for si, g := range r.groups {
		for _, rep := range g.replicas {
			out[si] = append(out[si], ReplicaStatus{
				URL:     rep.url,
				State:   rep.br.State().String(),
				Lagging: rep.lagging.Load(),
				LastSeq: rep.lastSeq.Load(),
			})
		}
	}
	return out
}

// Close stops the background probe and catch-up loops.
func (r *Router) Close() error {
	close(r.stop)
	r.wg.Wait()
	return nil
}

func (r *Router) loop(every time.Duration, fn func()) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			fn()
		}
	}
}

// ---- search ----

// searchRequestJSON converts the engine request to the wire shape for the
// per-shard fan-out (activity IDs only; the router never needs the vocab).
func searchRequestJSON(req query.Request) server.SearchRequest {
	sreq := server.SearchRequest{
		K:             req.K,
		Ordered:       req.Ordered,
		InitialBound:  req.InitialBound,
		WithMatches:   req.WithMatches,
		Subtrajectory: req.Subtrajectory,
		MinSpanPoints: req.MinSpanPoints,
		MaxSpanPoints: req.MaxSpanPoints,
	}
	for _, p := range req.Query.Pts {
		wp := server.QueryPointJSON{X: p.Loc.X, Y: p.Loc.Y}
		for _, a := range p.Acts {
			wp.Acts = append(wp.Acts, int(a))
		}
		sreq.Points = append(sreq.Points, wp)
	}
	if req.Region != nil {
		sreq.Region = &server.RectJSON{
			MinX: req.Region.MinX, MinY: req.Region.MinY,
			MaxX: req.Region.MaxX, MaxY: req.Region.MaxY,
		}
	}
	return sreq
}

// Search runs one exact (or deliberately partial) global top-k over the
// cluster. The plan is the in-process shard engine's, over the network:
// per-shard lower bounds from the cached planning bounds pick wave 1 (every
// nearest shard concurrently), the running global k-th distance then admits
// wave-2 shards in ascending bound order and rides along as the ?bound=
// pruning hint. Within each shard the router fails over across replicas;
// when every replica of a shard is down the search degrades to a partial
// answer (Response.Partial, Stats.ShardsFailed) — still the exact top-k
// over the shards that answered — unless req.RequireComplete, which fails
// closed with *IncompleteError.
func (r *Router) Search(ctx context.Context, req query.Request) (query.Response, error) {
	q, k := req.Query, req.K
	if err := q.Validate(); err != nil {
		return query.Response{}, err
	}
	if k <= 0 {
		return query.Response{}, fmt.Errorf("cluster: k must be positive")
	}
	if err := req.ValidateSpan(); err != nil {
		return query.Response{}, err
	}
	if err := ctx.Err(); err != nil {
		return query.Response{Truncated: true}, err
	}
	locs := make([]geo.Point, len(q.Pts))
	for i, p := range q.Pts {
		locs[i] = p.Loc
	}

	type shardPlan struct {
		si int
		lb float64
	}
	plans := make([]shardPlan, 0, len(r.groups))
	minLB := math.Inf(1)
	for si, g := range r.groups {
		lb := g.queryLB(locs)
		if req.Region != nil {
			if b, ok := g.boundsRect(); !ok || !b.Intersects(*req.Region) {
				lb = math.Inf(1)
			}
		}
		plans = append(plans, shardPlan{si: si, lb: lb})
		if lb < minLB {
			minLB = lb
		}
	}
	slices.SortFunc(plans, func(a, b shardPlan) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return a.si - b.si
		}
	})

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	bound := req.Bound()
	shared := query.NewSharedTopK(k)
	subReq := searchRequestJSON(req)
	subReq.RequireComplete = false // per-shard legs are complete by definition
	body, err := json.Marshal(subReq)
	if err != nil {
		return query.Response{}, err
	}
	effTh := func() float64 { return min(shared.Threshold(), bound) }

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		agg      query.SearchStats
		firstErr error
		matches  map[trajectory.TrajID][][]int32
		failed   int
		searched int
	)
	if req.WithMatches {
		matches = make(map[trajectory.TrajID][][]int32)
	}
	run := func(si int) {
		searched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := r.searchShard(cctx, r.groups[si], body, effTh)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var down *shardDownError
				switch {
				case ctx.Err() != nil:
					// The caller hung up (or its deadline fired): that is a
					// truncation, not a shard fault.
					if firstErr == nil {
						firstErr = ctx.Err()
					}
				case errors.As(err, &down):
					failed++
					agg.ShardsFailed++
					if req.RequireComplete && firstErr == nil {
						firstErr = &IncompleteError{Shard: si, Cause: down.cause}
						cancel()
					}
				default:
					if firstErr == nil {
						firstErr = err
					}
					cancel()
				}
				return
			}
			for _, res := range resp.Results {
				gid := trajectory.TrajID(res.ID)
				shared.Offer(query.Result{ID: gid, Dist: res.Dist})
				if matches != nil && res.Matches != nil {
					matches[gid] = res.Matches
				}
			}
			agg.Add(resp.Stats)
		}()
	}

	i := 0
	if !math.IsInf(minLB, 1) && minLB <= bound {
		for ; i < len(plans) && plans[i].lb == minLB; i++ {
			run(plans[i].si)
		}
		wg.Wait()
		if firstErr == nil && ctx.Err() == nil {
			for ; i < len(plans); i++ {
				if math.IsInf(plans[i].lb, 1) || plans[i].lb > effTh() {
					break
				}
				run(plans[i].si)
			}
			wg.Wait()
		}
	}

	agg.ShardsSearched = searched
	agg.ShardsSkipped = len(plans) - searched
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			return query.Response{Results: shared.Results(), Stats: agg, Truncated: true}, firstErr
		}
		return query.Response{Stats: agg}, firstErr
	}
	resp := query.Response{Results: shared.Results(), Stats: agg, Partial: failed > 0}
	if matches != nil {
		resp.Matches = make([][][]int32, len(resp.Results))
		for i, res := range resp.Results {
			resp.Matches[i] = matches[res.ID]
		}
		if req.Subtrajectory {
			// Derived from the same covers every tier reports, so the spans
			// are byte-identical to the single-index and sharded answers.
			resp.Spans = query.SpansFromMatches(resp.Matches)
		}
	}
	return resp, nil
}

// searchShard runs one shard's leg with replica failover: replicas are
// tried round-robin (skipping lagging ones — they may miss recent inserts —
// and open breakers), each try under its own deadline, with jittered
// backoff between failed tries; two passes before the leg is declared down.
// The ?bound= hint is recomputed per try so late tries prune harder.
func (r *Router) searchShard(ctx context.Context, g *shardGroup, body []byte, boundHint func() float64) (server.SearchResponse, error) {
	var resp server.SearchResponse
	start := int(g.rr.Add(1) - 1)
	n := len(g.replicas)
	var lastErr error
	attempt := 0
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			rep := g.replicas[(start+i)%n]
			if rep.lagging.Load() || !rep.br.Allow() {
				continue
			}
			if attempt > 0 {
				if err := sleepCtx(ctx, r.bo.Delay(attempt-1)); err != nil {
					return resp, err
				}
			}
			attempt++
			url := rep.url + "/v1/search"
			if b := boundHint(); !math.IsInf(b, 1) {
				url += "?bound=" + strconv.FormatFloat(b, 'g', -1, 64)
			}
			err := r.postJSON(ctx, url, body, &resp)
			if err == nil {
				rep.br.Success()
				return resp, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return resp, ctx.Err()
			}
			if !transientErr(err) {
				// The next replica would answer identically (bad request,
				// unknown route): a permanent fault, not a failover case.
				return resp, err
			}
			rep.br.Failure()
			r.errlog.Printf("cluster router: shard %d replica %s search failed: %v", g.si, rep.url, err)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no eligible replica (all lagging or circuit-open)")
	}
	return resp, &shardDownError{si: g.si, cause: lastErr}
}

// ---- mutations ----

// Insert routes the trajectory to its shard, assigns the next global ID and
// fans the insert to every eligible replica under the shard's mutation
// lock. Replicas that are skipped (lagging, circuit-open) or fail the fan-
// out are marked lagging — they reconverge via WAL catch-up, never via a
// re-send, so a half-applied fan-out cannot reorder anyone's WAL. At least
// one replica must apply; otherwise the assigned ID is burned (IDs are
// dense but a hole is harmless) and the insert fails.
func (r *Router) Insert(ctx context.Context, pts []trajectory.Point) (trajectory.TrajID, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("cluster: trajectory has no points")
	}
	si := r.layout.Route(pts)
	g := r.groups[si]
	g.mutmu.Lock()
	defer g.mutmu.Unlock()
	gid := trajectory.TrajID(r.nextID.Add(1) - 1)
	body, err := json.Marshal(NodeInsertRequest{GID: uint32(gid), Points: server.PointsJSON(pts)})
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, rep := range g.replicas {
		if rep.lagging.Load() || !rep.br.Allow() {
			rep.lagging.Store(true)
			continue
		}
		var nresp NodeInsertResponse
		if err := r.postJSON(ctx, rep.url+"/v1/insert", body, &nresp); err != nil {
			rep.br.Failure()
			rep.lagging.Store(true)
			r.errlog.Printf("cluster router: shard %d replica %s insert gid %d failed (replica now lagging): %v", si, rep.url, gid, err)
			continue
		}
		rep.br.Success()
		rep.lastSeq.Store(nresp.LastSeq)
		applied++
	}
	if applied == 0 {
		return 0, fmt.Errorf("cluster: insert failed on every replica of shard %d (gid %d burned)", si, gid)
	}
	g.extendPts(pts)
	r.epoch.Add(1)
	return gid, nil
}

// Delete locates gid's owning shard with an ownership probe (global IDs are
// dense across shards, so only the owner knows it) and fans the delete to
// the shard's eligible replicas under its mutation lock, with the same
// lagging discipline as Insert. Unknown IDs return ErrNotFound.
func (r *Router) Delete(ctx context.Context, gid trajectory.TrajID) error {
	owner := -1
	var probeErr error
	for _, g := range r.groups {
		owns, err := r.probeOwns(ctx, g, gid)
		if err != nil {
			probeErr = fmt.Errorf("shard %d: %w", g.si, err)
			continue
		}
		if owns {
			owner = g.si
			break
		}
	}
	if owner < 0 {
		if probeErr != nil {
			// An unreachable shard might own it: failing the delete is the
			// only honest answer (a not-found would lie).
			return fmt.Errorf("cluster: cannot locate trajectory %d: %w", gid, probeErr)
		}
		return fmt.Errorf("%w: trajectory %d", ErrNotFound, gid)
	}
	g := r.groups[owner]
	g.mutmu.Lock()
	defer g.mutmu.Unlock()
	body, err := json.Marshal(server.DeleteRequest{ID: uint32(gid)})
	if err != nil {
		return err
	}
	applied := 0
	for _, rep := range g.replicas {
		if rep.lagging.Load() || !rep.br.Allow() {
			rep.lagging.Store(true)
			continue
		}
		var dresp server.DeleteResponse
		if err := r.postJSON(ctx, rep.url+"/v1/delete", body, &dresp); err != nil {
			rep.br.Failure()
			rep.lagging.Store(true)
			r.errlog.Printf("cluster router: shard %d replica %s delete gid %d failed (replica now lagging): %v", owner, rep.url, gid, err)
			continue
		}
		rep.br.Success()
		applied++
	}
	if applied == 0 {
		return fmt.Errorf("cluster: delete failed on every replica of shard %d", owner)
	}
	r.epoch.Add(1)
	return nil
}

// probeOwns asks the shard (first eligible replica, with failover) whether
// it owns gid. A shard with no answering replica is an error, not a "no" —
// the caller must not conclude the trajectory doesn't exist.
func (r *Router) probeOwns(ctx context.Context, g *shardGroup, gid trajectory.TrajID) (bool, error) {
	var lastErr error
	for _, rep := range g.replicas {
		if rep.lagging.Load() || !rep.br.Allow() {
			continue
		}
		var owns OwnsResponse
		err := r.getJSON(ctx, rep.url+"/v1/cluster/owns?gid="+strconv.FormatUint(uint64(gid), 10), &owns)
		if err == nil {
			rep.br.Success()
			return true, nil
		}
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusNotFound {
			rep.br.Success()
			return false, nil
		}
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		if transientErr(err) {
			rep.br.Failure()
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no eligible replica")
	}
	return false, lastErr
}

// ---- health & catch-up ----

// Probe sweeps every replica's /healthz once, feeding the circuit breakers:
// a healthy reply closes (or keeps closed) the breaker, a fault or
// unhealthy status counts a failure. The background loop calls this every
// ProbeInterval; tests drive it manually.
func (r *Router) Probe() {
	for _, g := range r.groups {
		for _, rep := range g.replicas {
			var h struct {
				LastSeq uint64 `json:"last_seq"`
			}
			if err := r.getJSON(context.Background(), rep.url+"/healthz", &h); err != nil {
				rep.br.Failure()
				continue
			}
			rep.br.Success()
			rep.lastSeq.Store(h.LastSeq)
		}
	}
}

// CatchUp converges every lagging-but-reachable replica by shipping WAL
// segments from a healthy sibling, then clears its lagging flag under the
// shard's mutation lock (no mutation can slip between the final shipment
// and the flag clear, so the replica resumes the fan-out with no gap).
func (r *Router) CatchUp(ctx context.Context) {
	for _, g := range r.groups {
		var donor *replica
		for _, rep := range g.replicas {
			if !rep.lagging.Load() && rep.br.State() == BreakerClosed {
				donor = rep
				break
			}
		}
		if donor == nil {
			continue
		}
		for _, rep := range g.replicas {
			if !rep.lagging.Load() {
				continue
			}
			if err := r.catchUpReplica(ctx, g, donor, rep); err != nil {
				r.errlog.Printf("cluster router: shard %d replica %s catch-up: %v", g.si, rep.url, err)
			}
		}
	}
}

func (r *Router) catchUpReplica(ctx context.Context, g *shardGroup, donor, rep *replica) error {
	var meta NodeMeta
	if err := r.getJSON(ctx, rep.url+"/v1/cluster/meta", &meta); err != nil {
		return err // still down; the probe loop keeps watching it
	}
	// Bulk phase: ship without blocking mutations until (almost) converged.
	for rounds := 0; rounds < 8; rounds++ {
		var dm NodeMeta
		if err := r.getJSON(ctx, donor.url+"/v1/cluster/meta", &dm); err != nil {
			return fmt.Errorf("donor %s: %w", donor.url, err)
		}
		if meta.LastSeq >= dm.LastSeq {
			break
		}
		seq, err := r.shipOnce(ctx, donor, rep, meta.LastSeq)
		if err != nil {
			return err
		}
		if seq <= meta.LastSeq {
			return fmt.Errorf("catch-up made no progress at seq %d", seq)
		}
		meta.LastSeq = seq
	}
	// Convergence phase: under the mutation lock the donor's sequence is
	// frozen, so one more shipment reaches it exactly; then the replica can
	// rejoin the fan-out with no possible gap.
	g.mutmu.Lock()
	defer g.mutmu.Unlock()
	var dm NodeMeta
	if err := r.getJSON(ctx, donor.url+"/v1/cluster/meta", &dm); err != nil {
		return fmt.Errorf("donor %s: %w", donor.url, err)
	}
	if meta.LastSeq < dm.LastSeq {
		seq, err := r.shipOnce(ctx, donor, rep, meta.LastSeq)
		if err != nil {
			return err
		}
		meta.LastSeq = seq
	}
	if meta.LastSeq != dm.LastSeq {
		return fmt.Errorf("replica at seq %d after final shipment, donor at %d", meta.LastSeq, dm.LastSeq)
	}
	rep.lastSeq.Store(meta.LastSeq)
	rep.lagging.Store(false)
	rep.br.Success()
	r.errlog.Printf("cluster router: shard %d replica %s caught up to seq %d", g.si, rep.url, meta.LastSeq)
	return nil
}

// shipOnce moves one batch of WAL segments donor → rep and returns rep's
// resulting sequence.
func (r *Router) shipOnce(ctx context.Context, donor, rep *replica, from uint64) (uint64, error) {
	var wresp WALResponse
	if err := r.getJSON(ctx, donor.url+"/v1/cluster/wal?from="+strconv.FormatUint(from, 10), &wresp); err != nil {
		return 0, fmt.Errorf("fetch wal from donor %s: %w", donor.url, err)
	}
	body, err := json.Marshal(CatchupRequest{Segments: wresp.Segments})
	if err != nil {
		return 0, err
	}
	var cresp CatchupResponse
	if err := r.postJSON(ctx, rep.url+"/v1/cluster/catchup", body, &cresp); err != nil {
		return 0, fmt.Errorf("apply on %s: %w", rep.url, err)
	}
	return cresp.LastSeq, nil
}

// ---- HTTP plumbing ----

func (r *Router) getJSON(ctx context.Context, url string, dst any) error {
	tctx, cancel := context.WithTimeout(ctx, r.tryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return r.doJSON(req, dst)
}

func (r *Router) postJSON(ctx context.Context, url string, body []byte, dst any) error {
	tctx, cancel := context.WithTimeout(ctx, r.tryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.doJSON(req, dst)
}

func (r *Router) doJSON(req *http.Request, dst any) error {
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var eresp server.ErrorResponse
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eresp); err == nil {
			msg = eresp.Error
		}
		return &statusError{code: resp.StatusCode, msg: msg}
	}
	if dst == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/query"
	"activitytraj/internal/server"
	"activitytraj/internal/trajectory"
)

// Cluster-internal wire types. The public search/delete shapes are reused
// from internal/server so a shard node speaks the same dialect as the
// single-process server; the types below exist only on node endpoints the
// router calls.

// NodeInsertRequest is a node's /v1/insert body: unlike the public insert,
// the GLOBAL trajectory ID is assigned upstream (by the router) and fanned
// out to every replica, so it travels in the body.
type NodeInsertRequest struct {
	GID    uint32                  `json:"gid"`
	Points []server.QueryPointJSON `json:"points"`
}

// NodeInsertResponse acknowledges a replicated insert. Applied is false
// when the node already knew the gid (an idempotent re-send).
type NodeInsertResponse struct {
	Applied bool   `json:"applied"`
	LastSeq uint64 `json:"last_seq"`
}

// NodeMeta is the /v1/cluster/meta reply: everything the router needs to
// admit a replica — which shard it replicates, how far its mutation
// sequence reaches, and the planning bounds.
type NodeMeta struct {
	Shard        int              `json:"shard"`
	LastSeq      uint64           `json:"last_seq"`
	NextGID      uint32           `json:"next_gid"`
	Trajectories int              `json:"trajectories"`
	Bounds       *server.RectJSON `json:"bounds,omitempty"`
}

// WALResponse is the /v1/cluster/wal reply: the segment files covering the
// requested suffix plus the sender's current sequence.
type WALResponse struct {
	Segments []WALSegment `json:"segments"`
	LastSeq  uint64       `json:"last_seq"`
}

// CatchupRequest is the /v1/cluster/catchup body: segments shipped from a
// healthy replica for this node to dedupe and apply.
type CatchupRequest struct {
	Segments []WALSegment `json:"segments"`
}

// CatchupResponse reports the node's sequence after applying a catch-up.
type CatchupResponse struct {
	LastSeq uint64 `json:"last_seq"`
}

// OwnsResponse is the /v1/cluster/owns reply (200 only; unknown gids 404).
type OwnsResponse struct {
	Owns bool `json:"owns"`
}

// catchupMaxBodyBytes caps /v1/cluster/catchup bodies: segment files are
// bounded by the WAL rotation size, but a catch-up may ship several.
const catchupMaxBodyBytes = 512 << 20

// NodeServerOptions tunes a NodeServer.
type NodeServerOptions struct {
	// Workers sizes the engine pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Vocab resolves activity names in requests; nil restricts requests to
	// numeric activity IDs.
	Vocab *trajectory.Vocabulary
	// Recovery, when the node was opened from a data directory, is that
	// boot's replay summary; /healthz reports it.
	Recovery *NodeRecovery
	// ErrorLog receives the server-side detail of 5xx faults (wire bodies
	// are sanitized). Nil uses the standard logger.
	ErrorLog *log.Logger
}

// NodeServer is the HTTP face of one shard replica. It serves the same
// /v1/search dialect as the single-process server (plus the router's
// ?bound= pruning hint), replica-aware mutations, and the WAL catch-up
// endpoints.
type NodeServer struct {
	node    *Node
	vocab   *trajectory.Vocabulary
	engines chan *delta.Engine
	workers int
	started time.Time
	rec     *NodeRecovery
	errlog  *log.Logger

	searches atomic.Int64
	inserts  atomic.Int64
	deletes  atomic.Int64
}

// NewNodeServer builds the HTTP server over n.
func NewNodeServer(n *Node, opts NodeServerOptions) *NodeServer {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	errlog := opts.ErrorLog
	if errlog == nil {
		errlog = log.Default()
	}
	s := &NodeServer{
		node:    n,
		vocab:   opts.Vocab,
		engines: make(chan *delta.Engine, w),
		workers: w,
		started: time.Now(),
		rec:     opts.Recovery,
		errlog:  errlog,
	}
	for i := 0; i < w; i++ {
		s.engines <- n.Dynamic().NewEngine()
	}
	return s
}

// Handler returns the node's route table.
func (s *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/insert", s.handleInsert)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/cluster/meta", s.handleMeta)
	mux.HandleFunc("/v1/cluster/wal", s.handleWAL)
	mux.HandleFunc("/v1/cluster/catchup", s.handleCatchup)
	mux.HandleFunc("/v1/cluster/owns", s.handleOwns)
	return mux
}

func (s *NodeServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":   "ok",
		"shard":    s.node.Shard(),
		"last_seq": s.node.LastSeq(),
	}
	if s.rec != nil {
		resp["recovery"] = s.rec
	}
	if err := s.node.Dynamic().LastCompactErr(); err != nil {
		// A node that silently stopped compacting serves stale generations
		// with a growing delta: flip load balancers away until it heals.
		resp["status"] = "compaction-failed"
		resp["compact_error"] = err.Error()
		server.WriteJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

func (s *NodeServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if !s.readJSON(w, r, &req, 0) {
		return
	}
	sreq, err := server.ToQueryRequest(s.vocab, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?bound= is the router's cross-shard pruning hint: the running global
	// k-th distance at dispatch time. It composes with the body's own
	// InitialBound by taking the minimum — both mean "results strictly
	// farther are already beaten elsewhere", so the hint can only prune,
	// never change what the surviving results are.
	if bstr := r.URL.Query().Get("bound"); bstr != "" {
		b, err := strconv.ParseFloat(bstr, 64)
		if err != nil || b < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad bound %q: want a non-negative float", bstr))
			return
		}
		if b > 0 && (sreq.InitialBound <= 0 || b < sreq.InitialBound) {
			sreq.InitialBound = b
		}
	}
	ctx := r.Context()
	if tstr := r.URL.Query().Get("timeout"); tstr != "" {
		d, err := time.ParseDuration(tstr)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive Go duration", tstr))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var e *delta.Engine
	select {
	case e = <-s.engines:
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			server.WriteJSON(w, http.StatusGatewayTimeout, server.SearchResponseJSON(query.Response{Truncated: true}, 0))
		} else {
			s.writeError(w, server.StatusClientClosedRequest, ctx.Err())
		}
		return
	}
	start := time.Now()
	qresp, err := s.node.Search(ctx, e, sreq)
	took := time.Since(start)
	s.engines <- e
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			server.WriteJSON(w, http.StatusGatewayTimeout, server.SearchResponseJSON(qresp, took))
		case errors.Is(err, context.Canceled):
			s.writeError(w, server.StatusClientClosedRequest, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.searches.Add(1)
	server.WriteJSON(w, http.StatusOK, server.SearchResponseJSON(qresp, took))
}

func (s *NodeServer) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req NodeInsertRequest
	if !s.readJSON(w, r, &req, 0) {
		return
	}
	pts, err := server.ToInsertPoints(s.vocab, req.Points)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	applied, err := s.node.Insert(trajectory.TrajID(req.GID), pts)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.inserts.Add(1)
	server.WriteJSON(w, http.StatusOK, NodeInsertResponse{Applied: applied, LastSeq: s.node.LastSeq()})
}

func (s *NodeServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if !s.readJSON(w, r, &req, 0) {
		return
	}
	gid := trajectory.TrajID(req.ID)
	if !s.node.Owns(gid) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("trajectory %d not on this shard", gid))
		return
	}
	if err := s.node.Delete(gid); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.deletes.Add(1)
	server.WriteJSON(w, http.StatusOK, server.DeleteResponse{Deleted: true})
}

func (s *NodeServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"uptime_sec":   time.Since(s.started).Seconds(),
		"shard":        s.node.Shard(),
		"last_seq":     s.node.LastSeq(),
		"searches":     s.searches.Load(),
		"inserts":      s.inserts.Load(),
		"deletes":      s.deletes.Load(),
		"workers":      s.workers,
		"trajectories": s.node.Trajectories(),
		"index":        s.node.Dynamic().Stats(),
	})
}

func (s *NodeServer) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	server.WriteJSON(w, http.StatusOK, s.meta())
}

func (s *NodeServer) meta() NodeMeta {
	m := NodeMeta{
		Shard:        s.node.Shard(),
		LastSeq:      s.node.LastSeq(),
		NextGID:      uint32(s.node.NextGID()),
		Trajectories: s.node.Trajectories(),
	}
	if b, ok := s.node.Bounds(); ok {
		m.Bounds = &server.RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
	}
	return m
}

func (s *NodeServer) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var from uint64
	if fstr := r.URL.Query().Get("from"); fstr != "" {
		v, err := strconv.ParseUint(fstr, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q: %v", fstr, err))
			return
		}
		from = v
	}
	segs, err := s.node.Segments(from)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, WALResponse{Segments: segs, LastSeq: s.node.LastSeq()})
}

func (s *NodeServer) handleCatchup(w http.ResponseWriter, r *http.Request) {
	var req CatchupRequest
	if !s.readJSON(w, r, &req, catchupMaxBodyBytes) {
		return
	}
	last, err := s.node.ApplySegments(req.Segments)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, CatchupResponse{LastSeq: last})
}

func (s *NodeServer) handleOwns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	gstr := r.URL.Query().Get("gid")
	gid, err := strconv.ParseUint(gstr, 10, 32)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad gid %q", gstr))
		return
	}
	if !s.node.Owns(trajectory.TrajID(gid)) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("trajectory %d not on this shard", gid))
		return
	}
	server.WriteJSON(w, http.StatusOK, OwnsResponse{Owns: true})
}

func (s *NodeServer) readJSON(w http.ResponseWriter, r *http.Request, dst any, maxBytes int64) bool {
	if status, err := server.DecodeJSON(w, r, dst, maxBytes); status != 0 {
		s.writeError(w, status, err)
		return false
	}
	return true
}

// writeError mirrors the single-process server's policy: 4xx detail travels
// verbatim, 5xx bodies are sanitized and the detail goes to the log.
func (s *NodeServer) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.errlog.Printf("cluster node: %d fault: %v", status, err)
		server.WriteJSON(w, status, server.ErrorResponse{Error: http.StatusText(status)})
		return
	}
	server.WriteJSON(w, status, server.ErrorResponse{Error: err.Error()})
}

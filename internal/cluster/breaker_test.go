package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerWalksClosedOpenHalfOpenClosed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Second, clk.now)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	// Two failures: still closed (threshold 3).
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("below threshold should stay closed")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse")
	}
	// Cooldown not elapsed yet.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker must refuse until cooldown elapses")
	}
	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	// Probe succeeds: closed again, failure count reset.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success should close the breaker")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure count should have been reset by Success")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := NewBreaker(1, time.Second, clk.now)

	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold 1 should trip on first failure")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe should be admitted after cooldown")
	}
	// Probe fails: re-open for a fresh cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open after failed probe", b.State())
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("fresh cooldown should refuse")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe should be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("second probe success should close")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(3, time.Second, nil)
	// Interleaved successes keep the consecutive count below threshold.
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes must not trip the breaker")
	}
}

// Package cluster promotes the in-process shard boundary of internal/shard
// to the network: per-shard server processes replicated N ways behind a
// router tier that scatter-gathers searches with the same exactness
// contract as the single-process engine, fails over between replicas, fans
// mutations to all live replicas (catching lagging ones up by shipping WAL
// segments), and degrades gracefully — a shard with no live replica yields
// a Partial response with the exact top-k over the surviving shards instead
// of an error, unless the request sets RequireComplete.
//
// The building blocks are deliberately small and separately testable:
// Backoff/PostRetry (capped exponential backoff with full jitter, shared
// with the atsqsearch client), Breaker (a per-replica closed/open/half-open
// circuit breaker fed by passive request outcomes and periodic /healthz
// probes), Node (one replica of one shard: a dynamic index over the
// layout-derived sub-corpus with a gid-carrying replication WAL), and
// Router (topology, planning, failover, degraded mode).
package cluster

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"activitytraj/internal/delta"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

func postTestJSON(url string, body map[string]any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(url, "application/json", bytes.NewReader(data))
}

// flakyHandler fronts a node server with a kill switch: while down, every
// request answers 503 — the transient class the router fails over on.
type flakyHandler struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"replica down (test)"}`))
		return
	}
	f.h.ServeHTTP(w, r)
}

type testReplica struct {
	node  *Node
	flaky *flakyHandler
	srv   *httptest.Server
}

type testCluster struct {
	layout   *shard.Layout
	replicas [][]*testReplica // [shard][replica]
	router   *Router
}

func (tc *testCluster) close() {
	if tc.router != nil {
		tc.router.Close()
	}
	for _, g := range tc.replicas {
		for _, rep := range g {
			rep.srv.Close()
			rep.node.Close()
		}
	}
}

// startCluster boots shards × nReplicas node servers (volatile unless dirs
// is non-nil, which must then hold one WAL directory per replica) and a
// router over them, tuned for fast tests: millisecond backoff, short
// breaker cooldown, no background loops (tests drive Probe/CatchUp).
func startCluster(t *testing.T, ds *trajectory.Dataset, shards, nReplicas int, dirs [][]string) *testCluster {
	t.Helper()
	l := testLayout(t, ds, shards)
	tc := &testCluster{layout: l}
	urls := make([][]string, shards)
	for si := 0; si < shards; si++ {
		var group []*testReplica
		for ri := 0; ri < nReplicas; ri++ {
			cfg := NodeConfig{Shard: si}
			if dirs != nil {
				cfg.Dir = dirs[si][ri]
			}
			n, rec, err := OpenNode(ds, l, cfg)
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", si, ri, err)
			}
			ns := NewNodeServer(n, NodeServerOptions{Workers: 2, Vocab: ds.Vocab, Recovery: &rec})
			fh := &flakyHandler{h: ns.Handler()}
			srv := httptest.NewServer(fh)
			group = append(group, &testReplica{node: n, flaky: fh, srv: srv})
			urls[si] = append(urls[si], srv.URL)
		}
		tc.replicas = append(tc.replicas, group)
	}
	r, err := NewRouter(RouterConfig{
		Topology:         TopologyOf(l, urls),
		TryTimeout:       5 * time.Second,
		Backoff:          Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond},
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	tc.router = r
	t.Cleanup(tc.close)
	return tc
}

// refDynamic builds the single-index oracle over the same corpus.
func refDynamic(t *testing.T, ds *trajectory.Dataset) *delta.Dynamic {
	t.Helper()
	d, err := delta.NewDynamic(ds, delta.Config{})
	if err != nil {
		t.Fatalf("reference index: %v", err)
	}
	return d
}

func routerSearch(t *testing.T, r *Router, q query.Query, k int) query.Response {
	t.Helper()
	resp, err := r.Search(context.Background(), query.Request{Query: q, K: k})
	if err != nil {
		t.Fatalf("router search: %v", err)
	}
	return resp
}

// TestClusterMatchesSingleIndex pins the tentpole exactness contract: with
// every replica healthy, the network scatter-gather answers byte-identical
// to the unpartitioned single index — ATSQ and OATSQ, and matches too.
func TestClusterMatchesSingleIndex(t *testing.T) {
	ds := testDataset(t, 300)
	tc := startCluster(t, ds, 3, 2, nil)
	ref := refDynamic(t, ds).NewEngine()

	for qi, q := range testWorkload(t, ds, 30) {
		for _, ordered := range []bool{false, true} {
			want, err := ref.Search(context.Background(), query.Request{Query: q, K: 10, Ordered: ordered})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := tc.router.Search(context.Background(), query.Request{Query: q, K: 10, Ordered: ordered})
			if err != nil {
				t.Fatalf("query %d (ordered=%v): %v", qi, ordered, err)
			}
			if got.Partial {
				t.Fatalf("query %d: partial with all replicas healthy", qi)
			}
			requireSameResults(t, "healthy cluster", want.Results, got.Results)
		}
	}

	// Matches survive the network round-trip.
	q := testWorkload(t, ds, 1)[0]
	want, err := ref.Search(context.Background(), query.Request{Query: q, K: 5, WithMatches: true})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, err := tc.router.Search(context.Background(), query.Request{Query: q, K: 5, WithMatches: true})
	if err != nil {
		t.Fatalf("matches query: %v", err)
	}
	requireSameResults(t, "matches", want.Results, got.Results)
	if len(got.Matches) != len(got.Results) {
		t.Fatalf("matches for %d of %d results", len(got.Matches), len(got.Results))
	}
	for i := range want.Matches {
		if len(want.Matches[i]) != len(got.Matches[i]) {
			t.Fatalf("result %d: %d match lists, want %d", i, len(got.Matches[i]), len(want.Matches[i]))
		}
		for pi := range want.Matches[i] {
			if len(want.Matches[i][pi]) != len(got.Matches[i][pi]) {
				t.Fatalf("result %d point %d: matches differ", i, pi)
			}
			for mi := range want.Matches[i][pi] {
				if want.Matches[i][pi][mi] != got.Matches[i][pi][mi] {
					t.Fatalf("result %d point %d: matches differ", i, pi)
				}
			}
		}
	}

	// Subtrajectory answers — distances, covers, and the winning spans the
	// router re-derives from wire matches — survive the network round-trip
	// byte-identically.
	for _, ordered := range []bool{false, true} {
		req := query.Request{
			Query: q, K: 5, Ordered: ordered,
			Subtrajectory: true, MaxSpanPoints: 10, WithMatches: true,
		}
		want, err := ref.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("reference subtrajectory (ordered=%v): %v", ordered, err)
		}
		got, err := tc.router.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("cluster subtrajectory (ordered=%v): %v", ordered, err)
		}
		requireSameResults(t, "subtrajectory", want.Results, got.Results)
		if len(got.Spans) != len(got.Results) {
			t.Fatalf("ordered=%v: %d spans for %d results", ordered, len(got.Spans), len(got.Results))
		}
		if !reflect.DeepEqual(want.Matches, got.Matches) {
			t.Fatalf("ordered=%v: subtrajectory covers differ\nref    : %v\ncluster: %v", ordered, want.Matches, got.Matches)
		}
		if !reflect.DeepEqual(want.Spans, got.Spans) {
			t.Fatalf("ordered=%v: subtrajectory spans differ\nref    : %v\ncluster: %v", ordered, want.Spans, got.Spans)
		}
	}

	// Malformed span limits are rejected at the router, matching the
	// single-index validation.
	if _, err := tc.router.Search(context.Background(), query.Request{
		Query: q, K: 5, Subtrajectory: true, MinSpanPoints: 8, MaxSpanPoints: 2,
	}); err == nil {
		t.Fatal("router accepted min span > max span")
	}
}

// TestClusterFailoverOneReplicaDown pins the robustness core: with one
// replica of EVERY shard down mid-workload, every query still succeeds
// byte-identically (failover, not degradation) — and the same holds when
// the replica dies with connection-refused instead of a clean 503.
func TestClusterFailoverOneReplicaDown(t *testing.T) {
	ds := testDataset(t, 300)
	tc := startCluster(t, ds, 2, 2, nil)
	ref := refDynamic(t, ds).NewEngine()
	qs := testWorkload(t, ds, 20)

	// Phase 1: replica 0 of each shard answers 503.
	for _, g := range tc.replicas {
		g[0].flaky.down.Store(true)
	}
	for qi, q := range qs[:10] {
		want, _ := ref.Search(context.Background(), query.Request{Query: q, K: 10})
		got := routerSearch(t, tc.router, q, 10)
		if got.Partial {
			t.Fatalf("query %d: partial despite a live replica per shard", qi)
		}
		requireSameResults(t, "failover-503", want.Results, got.Results)
	}

	// Phase 2: the same replicas hard-killed (connection refused).
	for _, g := range tc.replicas {
		g[0].flaky.down.Store(false)
		g[0].srv.Close()
	}
	for _, q := range qs[10:] {
		want, _ := ref.Search(context.Background(), query.Request{Query: q, K: 10})
		got := routerSearch(t, tc.router, q, 10)
		if got.Partial {
			t.Fatal("partial despite a live replica per shard")
		}
		requireSameResults(t, "failover-refused", want.Results, got.Results)
	}
}

// TestClusterWholeShardDown pins graceful degradation: when every replica
// of one shard is down, answers are partial — Partial set, ShardsFailed
// counting the dead shard, results the EXACT top-k over the surviving
// shards — and RequireComplete fails closed instead.
func TestClusterWholeShardDown(t *testing.T) {
	ds := testDataset(t, 300)
	tc := startCluster(t, ds, 2, 2, nil)
	for _, rep := range tc.replicas[1] {
		rep.flaky.down.Store(true)
	}
	// The surviving shard's node is the oracle for the partial answer.
	survivor := tc.replicas[0][0].node
	se := survivor.Dynamic().NewEngine()

	sawFailure := false
	for qi, q := range testWorkload(t, ds, 20) {
		got := routerSearch(t, tc.router, q, 10)
		planned := got.Stats.ShardsFailed > 0
		if planned {
			sawFailure = true
			if !got.Partial {
				t.Fatalf("query %d: shard failed but Partial unset", qi)
			}
			if got.Stats.ShardsFailed != 1 {
				t.Fatalf("query %d: ShardsFailed = %d, want 1", qi, got.Stats.ShardsFailed)
			}
			want := searchNode(t, survivor, se, q, 10)
			requireSameResults(t, "degraded", want, got.Results)

			// The same query demanding completeness fails closed.
			_, err := tc.router.Search(context.Background(), query.Request{Query: q, K: 10, RequireComplete: true})
			var inc *IncompleteError
			if !errors.As(err, &inc) {
				t.Fatalf("query %d: RequireComplete got %v, want IncompleteError", qi, err)
			}
			if inc.Shard != 1 {
				t.Fatalf("query %d: IncompleteError.Shard = %d, want 1", qi, inc.Shard)
			}
		} else if got.Partial {
			t.Fatalf("query %d: Partial set but no shard failed", qi)
		}
	}
	if !sawFailure {
		t.Fatal("test never planned the dead shard; workload too narrow")
	}
}

// TestClusterBreakerLifecycle pins the circuit walk on a live cluster: a
// flapping sole replica trips its breaker open (searches degrade), the
// cooldown admits a half-open probe, and a healthy reply closes it again
// (searches complete).
func TestClusterBreakerLifecycle(t *testing.T) {
	ds := testDataset(t, 200)
	tc := startCluster(t, ds, 2, 1, nil)
	q := testWorkload(t, ds, 1)[0]

	full := routerSearch(t, tc.router, q, 10)
	if full.Partial {
		t.Fatal("healthy cluster answered partial")
	}

	// Flap shard 1's only replica: searches planning it now degrade, and
	// after BreakerThreshold failures its breaker opens.
	tc.replicas[1][0].flaky.down.Store(true)
	for i := 0; i < 3; i++ {
		resp := routerSearch(t, tc.router, q, 10)
		if resp.Stats.ShardsFailed > 0 && !resp.Partial {
			t.Fatal("failed shard without Partial")
		}
	}
	if st := tc.router.Replicas()[1][0].State; st != "open" {
		t.Fatalf("breaker state %q after repeated failures, want open", st)
	}
	// While open, the replica isn't even tried: still partial, instantly.
	if resp := routerSearch(t, tc.router, q, 10); resp.Stats.ShardsFailed == 0 && resp.Partial {
		t.Fatal("inconsistent partial state")
	}

	// Heal the replica; once the cooldown elapses the next search admits
	// exactly one half-open probe, which succeeds and closes the breaker.
	tc.replicas[1][0].flaky.down.Store(false)
	time.Sleep(60 * time.Millisecond)
	resp := routerSearch(t, tc.router, q, 10)
	if resp.Partial {
		t.Fatal("healed replica should serve again after cooldown")
	}
	if st := tc.router.Replicas()[1][0].State; st != "closed" {
		t.Fatalf("breaker state %q after successful probe, want closed", st)
	}
	requireSameResults(t, "healed", full.Results, resp.Results)
}

// TestClusterMutationsAndCatchup pins the replication lifecycle end to end:
// inserts through the router mirror the single index (same dense gids),
// a replica that misses mutations goes lagging and serves no reads, WAL
// catch-up converges it, and afterwards it can serve the whole corpus alone.
func TestClusterMutationsAndCatchup(t *testing.T) {
	ds := testDataset(t, 200)
	dirs := [][]string{{t.TempDir(), t.TempDir()}}
	tc := startCluster(t, ds, 1, 2, dirs)
	ref := refDynamic(t, ds)
	qs := testWorkload(t, ds, 10)
	ctx := context.Background()

	donors := make([]trajectory.TrajID, 0, 6)
	for gid := range ds.Trajs {
		if len(ds.Trajs[gid].Pts) > 0 {
			donors = append(donors, trajectory.TrajID(gid))
		}
		if len(donors) == 6 {
			break
		}
	}

	// Half the inserts with both replicas healthy.
	for _, gid := range donors[:3] {
		got, err := tc.router.Insert(ctx, ds.Trajs[gid].Pts)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		want, err := ref.Insert(trajectory.Trajectory{Pts: ds.Trajs[gid].Pts})
		if err != nil {
			t.Fatalf("reference insert: %v", err)
		}
		if got != want {
			t.Fatalf("router assigned gid %d, single index %d", got, want)
		}
	}
	// Replica 1 dies; the rest of the mutations only reach replica 0.
	tc.replicas[0][1].flaky.down.Store(true)
	for _, gid := range donors[3:] {
		got, err := tc.router.Insert(ctx, ds.Trajs[gid].Pts)
		if err != nil {
			t.Fatalf("insert with replica down: %v", err)
		}
		want, _ := ref.Insert(trajectory.Trajectory{Pts: ds.Trajs[gid].Pts})
		if got != want {
			t.Fatalf("router assigned gid %d, single index %d", got, want)
		}
	}
	if err := tc.router.Delete(ctx, donors[0]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := ref.Delete(donors[0]); err != nil {
		t.Fatalf("reference delete: %v", err)
	}
	if !tc.router.Replicas()[0][1].Lagging {
		t.Fatal("failed replica should be marked lagging")
	}

	// Reads keep matching the single index throughout (served by replica 0;
	// the lagging replica is excluded).
	re := ref.NewEngine()
	for _, q := range qs {
		want, _ := re.Search(ctx, query.Request{Query: q, K: 10})
		got := routerSearch(t, tc.router, q, 10)
		requireSameResults(t, "during lag", want.Results, got.Results)
	}

	// The replica heals; catch-up ships the missed WAL suffix and clears
	// the lagging flag.
	tc.replicas[0][1].flaky.down.Store(false)
	tc.router.CatchUp(ctx)
	st := tc.router.Replicas()[0][1]
	if st.Lagging {
		t.Fatal("catch-up did not clear the lagging flag")
	}
	a, b := tc.replicas[0][0].node.LastSeq(), tc.replicas[0][1].node.LastSeq()
	if a != b {
		t.Fatalf("replicas at seq %d vs %d after catch-up", a, b)
	}

	// Kill the replica that saw everything: the caught-up one must now
	// serve the complete corpus byte-identically on its own.
	tc.replicas[0][0].flaky.down.Store(true)
	for _, q := range qs {
		want, _ := re.Search(ctx, query.Request{Query: q, K: 10})
		got := routerSearch(t, tc.router, q, 10)
		if got.Partial {
			t.Fatal("caught-up replica should serve completely")
		}
		requireSameResults(t, "after catch-up", want.Results, got.Results)
	}

	// A deleted trajectory deletes as not-found; a fresh one round-trips.
	if err := tc.router.Delete(ctx, trajectory.TrajID(1<<30)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete unknown: %v, want ErrNotFound", err)
	}
}

// TestRouterServerWire pins the HTTP surface: partial answers carry the
// X-Atsq-Partial header, require_complete maps to 503, unknown fields and
// oversized bodies are rejected at the door.
func TestRouterServerWire(t *testing.T) {
	ds := testDataset(t, 200)
	tc := startCluster(t, ds, 2, 1, nil)
	rs := NewRouterServer(tc.router, RouterServerOptions{Vocab: ds.Vocab})
	front := httptest.NewServer(rs.Handler())
	defer front.Close()

	q := testWorkload(t, ds, 1)[0]
	var pts []map[string]any
	for _, p := range q.Pts {
		acts := make([]int, 0, len(p.Acts))
		for _, a := range p.Acts {
			acts = append(acts, int(a))
		}
		pts = append(pts, map[string]any{"x": p.Loc.X, "y": p.Loc.Y, "acts": acts})
	}
	post := func(body map[string]any) *http.Response {
		t.Helper()
		resp, err := postTestJSON(front.URL+"/v1/search", body)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}

	// Healthy: 200, no partial header.
	resp := post(map[string]any{"k": 5, "points": pts})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Atsq-Partial") != "" {
		t.Fatalf("healthy: status %d partial %q", resp.StatusCode, resp.Header.Get("X-Atsq-Partial"))
	}
	resp.Body.Close()

	// Kill shard 1 entirely. Partial searches mark the header; demanding
	// completeness gets 503.
	tc.replicas[1][0].flaky.down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = post(map[string]any{"k": 5, "points": pts})
		marked := resp.Header.Get("X-Atsq-Partial") == "1"
		resp.Body.Close()
		if marked {
			break
		}
		// This query may not plan shard 1; widen with a second opinion until
		// the planner touches the dead shard.
		if time.Now().After(deadline) {
			t.Skip("workload never planned the dead shard")
		}
	}
	resp = post(map[string]any{"k": 5, "points": pts, "require_complete": true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("require_complete over dead shard: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown fields are rejected.
	resp = post(map[string]any{"k": 5, "points": pts, "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

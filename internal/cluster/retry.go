package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// Backoff defaults.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

// Backoff computes capped exponential backoff with full jitter: the delay
// before retry attempt n (0-based) is uniform in [0, min(Base·2ⁿ, Cap)].
// Full jitter keeps a batch of clients hammered off a restarting server
// from reconverging in lockstep. The zero value selects the defaults.
type Backoff struct {
	// Base is the first attempt's maximum delay (0 selects
	// DefaultBackoffBase).
	Base time.Duration
	// Cap bounds the exponential growth (0 selects DefaultBackoffCap).
	Cap time.Duration
	// Rand, when non-nil, replaces the uniform draw for deterministic
	// tests: it receives the exclusive upper bound and must return a value
	// in [0, n).
	Rand func(n time.Duration) time.Duration
}

// Delay returns the jittered sleep before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if b.Rand != nil {
		return b.Rand(d + 1)
	}
	return rand.N(d + 1)
}

// Transient reports whether one HTTP round-trip outcome is worth retrying:
// any transport-level error (connection refused while a server boots,
// connection reset mid-restart) and the 502/503 statuses a proxy or a
// recovering/degraded server answers. Anything else — 200, 400, 404, 504 —
// is a real answer for the caller to interpret.
func Transient(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable
}

// PostRetry POSTs body as JSON to url, retrying Transient failures up to
// retries extra attempts with bo's backoff. ctx bounds the whole exchange
// (per-try deadlines belong in client.Timeout or a caller-derived ctx);
// between attempts cancellation cuts the sleep short. warnf, when non-nil,
// receives one line per retry. On success the caller owns resp.Body; failed
// attempts are drained and closed here so connections are reused.
func PostRetry(ctx context.Context, client *http.Client, url string, body []byte, retries int, bo Backoff, warnf func(format string, args ...any)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if !Transient(resp, err) {
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			// Drain so the connection can be reused, then retry the status.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("server status %d (%s)", resp.StatusCode, http.StatusText(resp.StatusCode))
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= retries {
			if retries > 0 {
				return nil, fmt.Errorf("%w (after %d attempts)", lastErr, attempt+1)
			}
			return nil, lastErr
		}
		sleep := bo.Delay(attempt)
		if warnf != nil {
			warnf("transient failure (%v); retry %d/%d in %s", lastErr, attempt+1, retries, sleep.Round(time.Millisecond))
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
	}
}

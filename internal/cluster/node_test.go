package cluster

import (
	"context"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/shard"
	"activitytraj/internal/trajectory"
)

func testDataset(t testing.TB, n int) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name:            "mini",
		Seed:            99,
		NumTrajectories: n,
		NumVenues:       max(2*n, 60),
		VocabSize:       120,
		RegionW:         40,
		RegionH:         40,
		Clusters:        6,
		TrajLenMean:     10,
		TrajLenStd:      4,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

func testWorkload(t testing.TB, ds *trajectory.Dataset, n int) []query.Query {
	t.Helper()
	qs, err := queries.Generate(ds, queries.Config{
		NumQueries:   n,
		NumPoints:    3,
		ActsPerPoint: 2,
		DiameterKm:   8,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}
	return qs
}

func testLayout(t testing.TB, ds *trajectory.Dataset, shards int) *shard.Layout {
	t.Helper()
	l, err := shard.PlanLayout(ds, shards, 0)
	if err != nil {
		t.Fatalf("plan layout: %v", err)
	}
	return l
}

// mutationsFor builds new trajectories routed to shard si: fresh gids with
// point slices borrowed from base trajectories the layout places there.
func mutationsFor(t testing.TB, ds *trajectory.Dataset, l *shard.Layout, si, n int) map[trajectory.TrajID][]trajectory.Point {
	t.Helper()
	out := make(map[trajectory.TrajID][]trajectory.Point, n)
	next := trajectory.TrajID(len(ds.Trajs))
	for gid := range ds.Trajs {
		if len(out) == n {
			break
		}
		tr := ds.Trajs[gid]
		if len(tr.Pts) == 0 || l.Route(tr.Pts) != si {
			continue
		}
		out[next] = tr.Pts
		next++
	}
	if len(out) != n {
		t.Fatalf("found only %d/%d donor trajectories for shard %d", len(out), n, si)
	}
	return out
}

func searchNode(t testing.TB, n *Node, e *delta.Engine, q query.Query, k int) []query.Result {
	t.Helper()
	resp, err := n.Search(context.Background(), e, query.Request{Query: q, K: k})
	if err != nil {
		t.Fatalf("node search: %v", err)
	}
	return resp.Results
}

func requireSameResults(t *testing.T, label string, want, got []query.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d\nwant %v\ngot  %v", label, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result %d differs\nwant %v\ngot  %v", label, i, want, got)
		}
	}
}

// TestNodeReplicasConverge pins the replication contract: two nodes of the
// same shard fed the identical mutation sequence answer identically.
func TestNodeReplicasConverge(t *testing.T) {
	ds := testDataset(t, 200)
	l := testLayout(t, ds, 2)

	a, _, err := OpenNode(ds, l, NodeConfig{Shard: 0})
	if err != nil {
		t.Fatalf("node a: %v", err)
	}
	b, _, err := OpenNode(ds, l, NodeConfig{Shard: 0})
	if err != nil {
		t.Fatalf("node b: %v", err)
	}

	muts := mutationsFor(t, ds, l, 0, 8)
	var gids []trajectory.TrajID
	for gid := range muts {
		gids = append(gids, gid)
	}
	// Apply in a fixed (sorted) order to both nodes.
	for i := 0; i < len(gids); i++ {
		for j := i + 1; j < len(gids); j++ {
			if gids[j] < gids[i] {
				gids[i], gids[j] = gids[j], gids[i]
			}
		}
	}
	for _, n := range []*Node{a, b} {
		for _, gid := range gids {
			applied, err := n.Insert(gid, muts[gid])
			if err != nil || !applied {
				t.Fatalf("insert gid %d: applied=%v err=%v", gid, applied, err)
			}
		}
		// Delete one base trajectory and one fresh insert.
		if err := n.Delete(a.globalIDs[0]); err != nil {
			t.Fatalf("delete base: %v", err)
		}
		if err := n.Delete(gids[0]); err != nil {
			t.Fatalf("delete fresh: %v", err)
		}
	}
	if a.LastSeq() != b.LastSeq() {
		t.Fatalf("seq diverged: %d vs %d", a.LastSeq(), b.LastSeq())
	}
	if got, want := a.LastSeq(), uint64(len(gids)+2); got != want {
		t.Fatalf("LastSeq = %d, want %d", got, want)
	}
	if a.NextGID() != b.NextGID() {
		t.Fatalf("NextGID diverged: %d vs %d", a.NextGID(), b.NextGID())
	}

	ea, eb := a.Dynamic().NewEngine(), b.Dynamic().NewEngine()
	for qi, q := range testWorkload(t, ds, 20) {
		ra := searchNode(t, a, ea, q, 10)
		rb := searchNode(t, b, eb, q, 10)
		requireSameResults(t, "query", ra, rb)
		// Every result carries a GLOBAL ID the layout routes to this shard.
		for _, r := range ra {
			if int(r.ID) < len(ds.Trajs) {
				if l.Route(ds.Trajs[r.ID].Pts) != 0 {
					t.Fatalf("query %d: result gid %d not on shard 0", qi, r.ID)
				}
			} else if _, ok := muts[r.ID]; !ok {
				t.Fatalf("query %d: result gid %d unknown", qi, r.ID)
			}
		}
	}
}

// TestNodeInsertIdempotent pins the retry contract: re-sending an applied
// insert is a no-op that does not advance the sequence.
func TestNodeInsertIdempotent(t *testing.T) {
	ds := testDataset(t, 120)
	l := testLayout(t, ds, 2)
	n, _, err := OpenNode(ds, l, NodeConfig{Shard: 1})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	muts := mutationsFor(t, ds, l, 1, 1)
	for gid, pts := range muts {
		applied, err := n.Insert(gid, pts)
		if err != nil || !applied {
			t.Fatalf("first insert: applied=%v err=%v", applied, err)
		}
		seq, count := n.LastSeq(), n.Trajectories()
		applied, err = n.Insert(gid, pts)
		if err != nil {
			t.Fatalf("second insert: %v", err)
		}
		if applied {
			t.Fatal("second insert of same gid must report applied=false")
		}
		if n.LastSeq() != seq || n.Trajectories() != count {
			t.Fatalf("idempotent insert changed state: seq %d→%d, trajs %d→%d",
				seq, n.LastSeq(), count, n.Trajectories())
		}
	}

	// Deleting an unknown gid is an error; re-deleting a tombstoned one is a
	// logged no-op (replicas must stay record-identical).
	if err := n.Delete(trajectory.TrajID(1 << 30)); err == nil {
		t.Fatal("delete of unknown gid should error")
	}
	victim := n.globalIDs[0]
	if err := n.Delete(victim); err != nil {
		t.Fatalf("delete: %v", err)
	}
	seq := n.LastSeq()
	if err := n.Delete(victim); err != nil {
		t.Fatalf("re-delete: %v", err)
	}
	if n.LastSeq() != seq+1 {
		t.Fatalf("re-delete must still log: seq %d, want %d", n.LastSeq(), seq+1)
	}
	if !n.Owns(victim) {
		t.Fatal("tombstoned gid must still answer Owns=true")
	}
}

// TestNodeDurableRestart pins crash recovery: a reopened node replays its
// replication WAL back to the exact pre-restart state.
func TestNodeDurableRestart(t *testing.T) {
	ds := testDataset(t, 150)
	l := testLayout(t, ds, 2)
	dir := t.TempDir()

	cfg := NodeConfig{Shard: 0, Dir: dir}
	n, rec, err := OpenNode(ds, l, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec.Replayed != 0 || rec.LastSeq != 0 {
		t.Fatalf("fresh boot recovered %+v", rec)
	}
	muts := mutationsFor(t, ds, l, 0, 5)
	gids := make([]trajectory.TrajID, 0, len(muts))
	for gid := range muts {
		gids = append(gids, gid)
	}
	for _, gid := range gids {
		if _, err := n.Insert(gid, muts[gid]); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := n.Delete(gids[0]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	wantSeq := n.LastSeq()
	qs := testWorkload(t, ds, 10)
	e := n.Dynamic().NewEngine()
	var before [][]query.Result
	for _, q := range qs {
		before = append(before, searchNode(t, n, e, q, 10))
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	n2, rec2, err := OpenNode(ds, l, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec2.Replayed != int64(wantSeq) || rec2.LastSeq != wantSeq {
		t.Fatalf("recovery %+v, want %d records through seq %d", rec2, wantSeq, wantSeq)
	}
	if n2.LastSeq() != wantSeq {
		t.Fatalf("LastSeq = %d, want %d", n2.LastSeq(), wantSeq)
	}
	if n2.NextGID() != n.NextGID() {
		t.Fatalf("NextGID = %d, want %d", n2.NextGID(), n.NextGID())
	}
	e2 := n2.Dynamic().NewEngine()
	for i, q := range qs {
		requireSameResults(t, "restart", before[i], searchNode(t, n2, e2, q, 10))
	}
	n2.Close()
}

// TestNodeCatchup pins WAL shipping: a lagging replica converges to the
// healthy one via Segments→ApplySegments, idempotently.
func TestNodeCatchup(t *testing.T) {
	ds := testDataset(t, 150)
	l := testLayout(t, ds, 2)

	lead, _, err := OpenNode(ds, l, NodeConfig{Shard: 0, Dir: t.TempDir(), SegmentBytes: 256})
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	lag, _, err := OpenNode(ds, l, NodeConfig{Shard: 0, Dir: t.TempDir(), SegmentBytes: 256})
	if err != nil {
		t.Fatalf("lagger: %v", err)
	}

	muts := mutationsFor(t, ds, l, 0, 6)
	gids := make([]trajectory.TrajID, 0, len(muts))
	for gid := range muts {
		gids = append(gids, gid)
	}
	for i := 0; i < len(gids); i++ {
		for j := i + 1; j < len(gids); j++ {
			if gids[j] < gids[i] {
				gids[i], gids[j] = gids[j], gids[i]
			}
		}
	}
	// The lagger sees the first two mutations, then misses the rest.
	for i, gid := range gids {
		if _, err := lead.Insert(gid, muts[gid]); err != nil {
			t.Fatalf("lead insert: %v", err)
		}
		if i < 2 {
			if _, err := lag.Insert(gid, muts[gid]); err != nil {
				t.Fatalf("lag insert: %v", err)
			}
		}
	}
	if err := lead.Delete(gids[1]); err != nil {
		t.Fatalf("lead delete: %v", err)
	}
	if lead.LastSeq() == lag.LastSeq() {
		t.Fatal("test setup: lagger should be behind")
	}

	segs, err := lead.Segments(lag.LastSeq())
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments shipped")
	}
	got, err := lag.ApplySegments(segs)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got != lead.LastSeq() {
		t.Fatalf("caught up to seq %d, want %d", got, lead.LastSeq())
	}

	// Idempotent: applying the same shipment again changes nothing.
	if got, err = lag.ApplySegments(segs); err != nil || got != lead.LastSeq() {
		t.Fatalf("re-apply: seq %d err %v", got, err)
	}

	el, eg := lead.Dynamic().NewEngine(), lag.Dynamic().NewEngine()
	for _, q := range testWorkload(t, ds, 20) {
		requireSameResults(t, "catchup",
			searchNode(t, lead, el, q, 10), searchNode(t, lag, eg, q, 10))
	}

	// A caught-up node restarts from its own (shipped) WAL cleanly.
	if err := lag.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	lead.Close()
}

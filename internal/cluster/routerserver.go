package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"activitytraj/internal/query"
	"activitytraj/internal/server"
	"activitytraj/internal/trajectory"
)

// RouterServerOptions tunes a RouterServer.
type RouterServerOptions struct {
	// Vocab resolves activity names in requests; nil restricts requests to
	// numeric activity IDs.
	Vocab *trajectory.Vocabulary
	// ErrorLog receives the server-side detail of 5xx faults; nil uses the
	// standard logger.
	ErrorLog *log.Logger
}

// RouterServer is the cluster's public HTTP face: the same /v1 dialect as
// the single-process server, served by scatter-gather over the shard
// replica sets. Degradation is visible on the wire: partial answers carry
// the X-Atsq-Partial header and "partial" body field, and a search that
// demanded completeness over a dead shard gets 503.
type RouterServer struct {
	router  *Router
	vocab   *trajectory.Vocabulary
	errlog  *log.Logger
	started time.Time

	searches atomic.Int64
	inserts  atomic.Int64
	deletes  atomic.Int64
}

// NewRouterServer builds the HTTP server over r.
func NewRouterServer(r *Router, opts RouterServerOptions) *RouterServer {
	errlog := opts.ErrorLog
	if errlog == nil {
		errlog = log.Default()
	}
	return &RouterServer{router: r, vocab: opts.Vocab, errlog: errlog, started: time.Now()}
}

// Handler returns the router's route table.
func (s *RouterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/insert", s.handleInsert)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *RouterServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	// The router itself is healthy as long as it runs: shard availability
	// is per-request (degradation), not a router liveness question. The
	// replica table gives load balancers the full picture.
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"shards":   s.router.NumShards(),
		"replicas": s.router.Replicas(),
	})
}

func (s *RouterServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	sreq, err := server.ToQueryRequest(s.vocab, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if tstr := r.URL.Query().Get("timeout"); tstr != "" {
		d, err := time.ParseDuration(tstr)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: want a positive Go duration", tstr))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	qresp, err := s.router.Search(ctx, sreq)
	took := time.Since(start)
	if err != nil {
		var inc *IncompleteError
		switch {
		case errors.As(err, &inc):
			// RequireComplete over a dead shard fails closed: the client
			// asked for all-or-nothing and gets the honest "nothing".
			s.writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded):
			server.WriteJSON(w, http.StatusGatewayTimeout, server.SearchResponseJSON(qresp, took))
		case errors.Is(err, context.Canceled):
			s.writeError(w, server.StatusClientClosedRequest, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.searches.Add(1)
	if qresp.Partial {
		w.Header().Set(server.PartialHeader, "1")
	}
	server.WriteJSON(w, http.StatusOK, server.SearchResponseJSON(qresp, took))
}

func (s *RouterServer) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	pts, err := server.ToInsertPoints(s.vocab, req.Points)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	gid, err := s.router.Insert(r.Context(), pts)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.inserts.Add(1)
	server.WriteJSON(w, http.StatusOK, server.InsertResponse{ID: uint32(gid)})
}

func (s *RouterServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := s.router.Delete(r.Context(), trajectory.TrajID(req.ID)); err != nil {
		if errors.Is(err, ErrNotFound) {
			s.writeError(w, http.StatusNotFound, err)
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.deletes.Add(1)
	server.WriteJSON(w, http.StatusOK, server.DeleteResponse{Deleted: true})
}

func (s *RouterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"uptime_sec": time.Since(s.started).Seconds(),
		"shards":     s.router.NumShards(),
		"next_id":    uint32(s.router.NextID()),
		"epoch":      s.router.Epoch(),
		"searches":   s.searches.Load(),
		"inserts":    s.inserts.Load(),
		"deletes":    s.deletes.Load(),
		"replicas":   s.router.Replicas(),
	})
}

func (s *RouterServer) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if status, err := server.DecodeJSON(w, r, dst, 0); status != 0 {
		s.writeError(w, status, err)
		return false
	}
	return true
}

func (s *RouterServer) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 && status != http.StatusServiceUnavailable {
		// 503s describe cluster degradation the client should see verbatim;
		// other 5xx detail stays server-side.
		s.errlog.Printf("cluster router: %d fault: %v", status, err)
		server.WriteJSON(w, status, server.ErrorResponse{Error: http.StatusText(status)})
		return
	}
	server.WriteJSON(w, status, server.ErrorResponse{Error: err.Error()})
}

var _ query.EpochSource = (*Router)(nil)

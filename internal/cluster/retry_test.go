package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayCapsAndJitters(t *testing.T) {
	// Identity "jitter" exposes the raw exponential schedule.
	bo := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second,
		Rand: func(n time.Duration) time.Duration { return n - 1 }}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := bo.Delay(attempt); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	// A huge attempt number must not overflow past the cap.
	if got := bo.Delay(200); got != 2*time.Second {
		t.Fatalf("Delay(200) = %v, want cap", got)
	}
	// Real jitter stays within [0, schedule].
	real := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	for i := 0; i < 100; i++ {
		if d := real.Delay(2); d < 0 || d > 40*time.Millisecond {
			t.Fatalf("jittered Delay(2) = %v out of [0, 40ms]", d)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	if !Transient(nil, io.EOF) {
		t.Fatal("transport error should be transient")
	}
	for code, want := range map[int]bool{
		http.StatusOK: false, http.StatusBadRequest: false,
		http.StatusNotFound: false, http.StatusGatewayTimeout: false,
		http.StatusInternalServerError: false,
		http.StatusBadGateway:          true, http.StatusServiceUnavailable: true,
	} {
		if got := Transient(&http.Response{StatusCode: code}, nil); got != want {
			t.Fatalf("Transient(status %d) = %v, want %v", code, got, want)
		}
	}
}

func TestPostRetryRecoversFromTransients(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	bo := Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond}
	resp, err := PostRetry(context.Background(), srv.Client(), srv.URL, []byte(`{}`), 5, bo, nil)
	if err != nil {
		t.Fatalf("PostRetry: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestPostRetryDoesNotRetryRealAnswers(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()

	resp, err := PostRetry(context.Background(), srv.Client(), srv.URL, nil, 5, Backoff{}, nil)
	if err != nil {
		t.Fatalf("PostRetry: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestPostRetryExhaustsAndReportsAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()

	bo := Backoff{Base: time.Millisecond, Cap: time.Millisecond}
	_, err := PostRetry(context.Background(), srv.Client(), srv.URL, nil, 2, bo, nil)
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestPostRetryHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Enormous backoff: only cancellation can end the wait.
	bo := Backoff{Base: time.Hour, Cap: time.Hour,
		Rand: func(n time.Duration) time.Duration { return n - 1 }}
	start := time.Now()
	_, err := PostRetry(ctx, srv.Client(), srv.URL, nil, 5, bo, nil)
	if err == nil {
		t.Fatal("want context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; sleep not interrupted", elapsed)
	}
}

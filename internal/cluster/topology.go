package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"

	"activitytraj/internal/geo"
	"activitytraj/internal/shard"
)

// Topology is the cluster's wiring file: the frozen partition layout (every
// node and every router must agree on it, or global IDs and routing
// diverge) plus the replica URLs serving each shard. It is plain JSON so
// operators can write it by hand; `atsqserve -plan-topology` emits one from
// a dataset.
type Topology struct {
	// PartitionDepth, OriginX/Y, Side and Cuts are the shard.Layout
	// parameters (see shard.NewLayout).
	PartitionDepth int     `json:"partition_depth"`
	OriginX        float64 `json:"origin_x"`
	OriginY        float64 `json:"origin_y"`
	Side           float64 `json:"side"`
	// Cuts are the layout's sorted Z-code cut points; len(Cuts)+1 shards.
	Cuts []uint32 `json:"cuts"`
	// Shards lists each shard's replica base URLs, indexed by shard.
	Shards [][]string `json:"shards"`
}

// TopologyOf pairs a layout with per-shard replica URLs.
func TopologyOf(l *shard.Layout, shards [][]string) Topology {
	return Topology{
		PartitionDepth: l.PartitionDepth(),
		OriginX:        l.Origin().X,
		OriginY:        l.Origin().Y,
		Side:           l.Side(),
		Cuts:           l.Cuts(),
		Shards:         shards,
	}
}

// Layout rebuilds the shard layout the topology describes.
func (t Topology) Layout() (*shard.Layout, error) {
	return shard.NewLayout(t.PartitionDepth, geo.Point{X: t.OriginX, Y: t.OriginY}, t.Side, t.Cuts)
}

// Validate checks the topology's shape: a valid layout, one replica list
// per shard, and well-formed http(s) URLs throughout.
func (t Topology) Validate() error {
	l, err := t.Layout()
	if err != nil {
		return fmt.Errorf("cluster: topology layout: %w", err)
	}
	if len(t.Shards) != l.NumShards() {
		return fmt.Errorf("cluster: topology lists %d shard replica sets, layout has %d shards", len(t.Shards), l.NumShards())
	}
	for si, urls := range t.Shards {
		if len(urls) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", si)
		}
		for _, raw := range urls {
			u, err := url.Parse(raw)
			if err != nil {
				return fmt.Errorf("cluster: shard %d replica %q: %w", si, raw, err)
			}
			if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return fmt.Errorf("cluster: shard %d replica %q: want http(s)://host[:port]", si, raw)
			}
		}
	}
	return nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	var t Topology
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return t, fmt.Errorf("cluster: topology %s: %w", path, err)
	}
	return t, t.Validate()
}

// Save writes the topology as indented JSON.
func (t Topology) Save(path string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package grid

import (
	"math"
	"testing"
	"testing/quick"

	"activitytraj/internal/geo"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.Point{}, 10, 0); err == nil {
		t.Fatal("depth 0 must be rejected")
	}
	if _, err := New(geo.Point{}, 10, 17); err == nil {
		t.Fatal("depth 17 must be rejected")
	}
	if _, err := New(geo.Point{}, -1, 5); err == nil {
		t.Fatal("negative side must be rejected")
	}
	if _, err := New(geo.Point{}, math.NaN(), 5); err == nil {
		t.Fatal("NaN side must be rejected")
	}
}

// TestCellContainsPoint: the cell computed for a point must cover it.
func TestCellContainsPoint(t *testing.T) {
	g := MustNew(geo.Point{X: -5, Y: 3}, 64, 8)
	f := func(fx, fy float64, lvl8 uint8) bool {
		level := int(lvl8%8) + 1
		p := geo.Point{
			X: -5 + frac(fx)*64,
			Y: 3 + frac(fy)*64,
		}
		c := g.CellAt(level, p)
		r := g.CellRect(c)
		return r.ContainsPoint(p) && g.MinDist(p, c) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestChildrenPartitionParent: a cell's four children tile it exactly.
func TestChildrenPartitionParent(t *testing.T) {
	g := MustNew(geo.Point{}, 32, 6)
	c := g.CellAt(3, geo.Point{X: 17, Y: 9})
	parent := g.CellRect(c)
	var area float64
	for _, ch := range c.Children() {
		r := g.CellRect(ch)
		if !parent.ContainsRect(r) {
			t.Fatalf("child %v (%+v) escapes parent %v (%+v)", ch, r, c, parent)
		}
		area += r.Area()
	}
	if math.Abs(area-parent.Area()) > 1e-9 {
		t.Fatalf("children area %v != parent area %v", area, parent.Area())
	}
	for _, ch := range c.Children() {
		if ch.Parent() != c {
			t.Fatalf("child %v parent = %v, want %v", ch, ch.Parent(), c)
		}
	}
}

func TestClampOutside(t *testing.T) {
	g := MustNew(geo.Point{}, 10, 4)
	// Points outside the region map to boundary cells.
	c := g.LeafAt(geo.Point{X: -100, Y: 10000})
	r := g.CellRect(c)
	if r.MinX != 0 {
		t.Fatalf("x should clamp to first column, rect %+v", r)
	}
	if r.MaxY != 10 {
		t.Fatalf("y should clamp to last row, rect %+v", r)
	}
}

func TestCellSide(t *testing.T) {
	g := MustNew(geo.Point{}, 256, 8)
	if s := g.CellSide(8); s != 1 {
		t.Fatalf("leaf cell side = %v, want 1", s)
	}
	if s := g.CellSide(1); s != 128 {
		t.Fatalf("level-1 cell side = %v, want 128", s)
	}
	if n := g.CellsPerAxis(8); n != 256 {
		t.Fatalf("cells per axis = %d, want 256", n)
	}
}

func TestMinDistToNeighbourCell(t *testing.T) {
	g := MustNew(geo.Point{}, 16, 4) // leaf cells 1×1
	p := geo.Point{X: 0.5, Y: 0.5}
	c := g.LeafAt(geo.Point{X: 2.5, Y: 0.5}) // two cells to the right
	if d := g.MinDist(p, c); math.Abs(d-1.5) > 1e-12 {
		t.Fatalf("MinDist = %v, want 1.5", d)
	}
}

func TestFitRegion(t *testing.T) {
	r := geo.NewRect(2, 3, 12, 8)
	origin, side := FitRegion(r, 0.1)
	reg := geo.Rect{MinX: origin.X, MinY: origin.Y, MaxX: origin.X + side, MaxY: origin.Y + side}
	if !reg.ContainsRect(r) {
		t.Fatalf("fitted region %+v does not contain %+v", reg, r)
	}
	if side < 10 || side > 12 {
		t.Fatalf("side = %v, want ≈ 11 (max extent + 10%%)", side)
	}
	// Degenerate rect still yields a usable region.
	_, side = FitRegion(geo.RectFromPoint(geo.Point{X: 1, Y: 1}), 0.05)
	if side <= 0 {
		t.Fatalf("degenerate side = %v", side)
	}
}

func TestTopCells(t *testing.T) {
	g := MustNew(geo.Point{}, 8, 3)
	var area float64
	for _, c := range g.TopCells() {
		area += g.CellRect(c).Area()
	}
	if math.Abs(area-64) > 1e-9 {
		t.Fatalf("top cells must tile the region, area %v", area)
	}
}

func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	f := math.Abs(v) - math.Floor(math.Abs(v))
	if f >= 1 {
		return 0
	}
	return f
}

// Package grid implements the hierarchical quad grid underlying the GAT
// index. The space is a square region divided into 2^d × 2^d cells at the
// finest level d (the "d-Grid" of the paper); coarser levels l < d are formed
// by repeatedly merging 2×2 blocks, yielding the hierarchy the Hierarchical
// Inverted Cell List is built over. Cells are identified by (level, Z-order
// code) pairs.
package grid

import (
	"fmt"
	"math"

	"activitytraj/internal/geo"
	"activitytraj/internal/zorder"
)

// Cell identifies one cell of the hierarchy: Level 1 is the coarsest grid
// (2×2 cells), Level == Grid.Depth() is the leaf grid. Z is the Z-order code
// of the cell within its level, in [0, 4^Level).
type Cell struct {
	Level uint8
	Z     uint32
}

// String implements fmt.Stringer for debugging output.
func (c Cell) String() string { return fmt.Sprintf("L%d/%d", c.Level, c.Z) }

// Parent returns the enclosing cell one level up. It panics at level 1.
func (c Cell) Parent() Cell {
	if c.Level <= 1 {
		panic("grid: level-1 cell has no parent")
	}
	return Cell{Level: c.Level - 1, Z: zorder.Parent(c.Z)}
}

// Children returns the four cells that partition c one level down.
func (c Cell) Children() [4]Cell {
	zs := zorder.Children(c.Z)
	l := c.Level + 1
	return [4]Cell{{l, zs[0]}, {l, zs[1]}, {l, zs[2]}, {l, zs[3]}}
}

// Grid is a square hierarchical partitioning of a region of the plane.
// The zero value is not usable; construct with New.
type Grid struct {
	origin geo.Point // lower-left corner of the region
	side   float64   // side length of the square region, km
	depth  int       // number of levels; leaf level has 2^depth per axis
}

// New returns a grid covering the square with lower-left corner origin and
// the given side length, with depth levels (1 <= depth <= zorder.MaxLevel).
func New(origin geo.Point, side float64, depth int) (*Grid, error) {
	if depth < 1 || depth > zorder.MaxLevel {
		return nil, fmt.Errorf("grid: depth %d out of range [1,%d]", depth, zorder.MaxLevel)
	}
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("grid: invalid side length %v", side)
	}
	return &Grid{origin: origin, side: side, depth: depth}, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(origin geo.Point, side float64, depth int) *Grid {
	g, err := New(origin, side, depth)
	if err != nil {
		panic(err)
	}
	return g
}

// Depth returns the number of levels (the paper's d).
func (g *Grid) Depth() int { return g.depth }

// Side returns the side length of the covered region in kilometres.
func (g *Grid) Side() float64 { return g.side }

// Region returns the covered square.
func (g *Grid) Region() geo.Rect {
	return geo.Rect{MinX: g.origin.X, MinY: g.origin.Y, MaxX: g.origin.X + g.side, MaxY: g.origin.Y + g.side}
}

// CellSide returns the side length of cells at the given level.
func (g *Grid) CellSide(level int) float64 {
	return g.side / float64(uint32(1)<<uint(level))
}

// CellsPerAxis returns the number of cells per axis at the given level.
func (g *Grid) CellsPerAxis(level int) uint32 { return 1 << uint(level) }

// CellAt returns the cell containing p at the given level. Points outside
// the region are clamped to the boundary cells, so every point maps to a
// valid cell; callers that need strict containment should test
// Region().ContainsPoint first.
func (g *Grid) CellAt(level int, p geo.Point) Cell {
	n := g.CellsPerAxis(level)
	cs := g.CellSide(level)
	ix := clampIndex((p.X-g.origin.X)/cs, n)
	iy := clampIndex((p.Y-g.origin.Y)/cs, n)
	return Cell{Level: uint8(level), Z: zorder.Encode(ix, iy)}
}

// LeafAt returns the leaf-level cell containing p.
func (g *Grid) LeafAt(p geo.Point) Cell { return g.CellAt(g.depth, p) }

// CellRect returns the rectangle covered by c.
func (g *Grid) CellRect(c Cell) geo.Rect {
	cs := g.CellSide(int(c.Level))
	ix, iy := zorder.Decode(c.Z)
	minX := g.origin.X + float64(ix)*cs
	minY := g.origin.Y + float64(iy)*cs
	return geo.Rect{MinX: minX, MinY: minY, MaxX: minX + cs, MaxY: minY + cs}
}

// MinDist returns the minimum distance from p to cell c — the mdist priority
// used by the GAT best-first search.
func (g *Grid) MinDist(p geo.Point, c Cell) float64 {
	return g.CellRect(c).MinDist(p)
}

// TopCells returns all cells of the coarsest (level-1) grid.
func (g *Grid) TopCells() [4]Cell {
	return [4]Cell{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
}

func clampIndex(f float64, n uint32) uint32 {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	i := uint32(f)
	if i >= n {
		return n - 1
	}
	return i
}

// FitRegion returns a square region (origin point and side) that covers r
// with a small margin. It is a convenience for building a Grid over a
// dataset's bounding rectangle.
func FitRegion(r geo.Rect, marginFrac float64) (geo.Point, float64) {
	side := math.Max(r.Width(), r.Height())
	if side <= 0 {
		side = 1
	}
	side *= 1 + marginFrac
	c := r.Center()
	return geo.Point{X: c.X - side/2, Y: c.Y - side/2}, side
}

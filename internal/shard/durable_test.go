package shard

import (
	"context"
	"encoding/binary"
	"path/filepath"
	"sync"
	"testing"

	"activitytraj/internal/delta"
	"activitytraj/internal/faultfs"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// shardOp is one scripted router mutation (insert when pts != nil).
type shardOp struct {
	pts []trajectory.Point
	del trajectory.TrajID
}

// shardWorkload scripts inserts of the dataset's tail onto a base prefix,
// deleting a distinct live base trajectory after every 4th insert. The
// tail's spread across the region exercises routing to multiple shards.
func shardWorkload(full *trajectory.Dataset, baseN int) []shardOp {
	var ops []shardOp
	dels := 0
	for i, tr := range full.Trajs[baseN:] {
		ops = append(ops, shardOp{pts: tr.Pts})
		if i%4 == 3 && dels < baseN {
			dels++
			ops = append(ops, shardOp{del: trajectory.TrajID(baseN - dels)})
		}
	}
	return ops
}

func (o shardOp) apply(r *Router) error {
	if o.pts != nil {
		_, err := r.Insert(trajectory.Trajectory{Pts: o.pts})
		return err
	}
	return r.Delete(o.del)
}

// routerParity asserts bit-identical search results between two routers.
func routerParity(t *testing.T, label string, want, got *Router, qs []query.Query, k int) {
	t.Helper()
	we, ge := want.NewEngine(), got.NewEngine()
	ctx := context.Background()
	for qi, q := range qs {
		for _, ordered := range []bool{false, true} {
			wr, err := we.Search(ctx, query.Request{Query: q, K: k, Ordered: ordered})
			if err != nil {
				t.Fatalf("%s q%d ref: %v", label, qi, err)
			}
			gr, err := ge.Search(ctx, query.Request{Query: q, K: k, Ordered: ordered})
			if err != nil {
				t.Fatalf("%s q%d recovered: %v", label, qi, err)
			}
			requireIdentical(t, label, wr.Results, gr.Results)
		}
	}
}

func TestNewRouterRejectsDurability(t *testing.T) {
	_, err := NewRouter(testDataset(t, 40), Config{Durability: delta.Durability{Dir: t.TempDir()}})
	if err == nil {
		t.Fatal("NewRouter accepted a durable config; OpenOrCreate must be the only door")
	}
	_, _, err = OpenOrCreate(testDataset(t, 40), Config{
		Durability: delta.Durability{Dir: t.TempDir()},
		Delta:      delta.Config{Durability: delta.Durability{Dir: t.TempDir()}},
	})
	if err == nil {
		t.Fatal("OpenOrCreate accepted per-delta durability under a durable router")
	}
}

// TestRouterRecoverCleanShutdown: close and reopen a durable router — the
// recovered router must search bit-identically to an uncrashed twin and
// resume global ID assignment exactly where it left off.
func TestRouterRecoverCleanShutdown(t *testing.T) {
	full := testDataset(t, 120)
	baseN := 80
	base := full.Sample(baseN)
	cfg := Config{Shards: 3, Delta: delta.Config{CompactThreshold: -1}}
	dcfg := cfg
	dcfg.Durability = delta.Durability{Dir: t.TempDir(), SegmentBytes: 4096}

	r, ri, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ri.JournalReplayed != 0 || ri.Synthesized != 0 {
		t.Fatalf("fresh open reported recovery: %+v", ri)
	}
	twin, err := NewRouter(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := shardWorkload(full, baseN)
	for i, op := range ops {
		if err := op.apply(r); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := op.apply(twin); err != nil {
			t.Fatal(err)
		}
		// Compact mid-stream so recovery crosses shard snapshots too.
		if i == len(ops)/2 {
			if err := r.CompactAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, ri, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if ri.JournalReplayed == 0 {
		t.Fatalf("no journal records replayed: %+v", ri)
	}
	if ri.Synthesized != 0 || ri.JournalRebuilt {
		t.Fatalf("clean shutdown should not synthesize or rebuild: %+v", ri)
	}
	wantStats, gotStats := twin.Stats(), r2.Stats()
	if wantStats.NextID != gotStats.NextID {
		t.Fatalf("recovered NextID %d != twin %d", gotStats.NextID, wantStats.NextID)
	}
	for si := range wantStats.PerShard {
		if wantStats.PerShard[si].Trajectories != gotStats.PerShard[si].Trajectories {
			t.Fatalf("shard %d: recovered %d trajectories, twin %d",
				si, gotStats.PerShard[si].Trajectories, wantStats.PerShard[si].Trajectories)
		}
	}
	qs := workload(t, full, 8)
	routerParity(t, "clean-shutdown", twin, r2, qs, 10)

	// Global ID assignment resumes in lockstep.
	gid, err := r2.Insert(trajectory.Trajectory{Pts: full.Trajs[0].Pts})
	if err != nil {
		t.Fatal(err)
	}
	gid2, err := twin.Insert(trajectory.Trajectory{Pts: full.Trajs[0].Pts})
	if err != nil {
		t.Fatal(err)
	}
	if gid != gid2 {
		t.Fatalf("post-recovery insert assigned %d, twin %d", gid, gid2)
	}
	routerParity(t, "post-recovery-insert", twin, r2, qs, 10)
}

// TestRouterJournalAheadLeavesHole: a journal record whose shard record was
// lost before becoming durable (a machine crash persisting the journal
// first — the insert was never acknowledged) must replay as a hole: its
// global ID stays consumed so every later record keeps the ID it was
// acknowledged with, and the hole resolves to nothing.
func TestRouterJournalAheadLeavesHole(t *testing.T) {
	full := testDataset(t, 60)
	baseN := 40
	base := full.Sample(baseN)
	cfg := Config{Shards: 3, Delta: delta.Config{CompactThreshold: -1}}
	dcfg := cfg
	dcfg.Durability = delta.Durability{Dir: t.TempDir()}

	r, _, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN+i].Pts}); err != nil {
			t.Fatal(err)
		}
	}
	nextID := r.Stats().NextID
	si := r.routeZ(r.repZ(full.Trajs[baseN+5].Pts))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant the orphan routing record by hand: its shard insert "was lost".
	jdir := filepath.Join(dcfg.Durability.Dir, journalDirName)
	jl, err := wal.Open(wal.Options{Dir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jl.Append(recRoute, binary.AppendUvarint(nil, uint64(si))); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	r2, ri, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Holes != 1 || !ri.JournalRebuilt {
		t.Fatalf("recovery info %+v, want 1 hole and a journal rebuild", ri)
	}
	hole := trajectory.TrajID(nextID)
	if got := r2.Stats().NextID; got != nextID+1 {
		t.Fatalf("recovered NextID %d, want %d (the hole must consume its ID)", got, nextID+1)
	}
	if _, _, ok := r2.Owner(hole); ok {
		t.Fatalf("hole %d resolves to an owner", hole)
	}
	if err := r2.Delete(hole); err == nil {
		t.Fatalf("deleting hole %d succeeded", hole)
	}
	gid, err := r2.Insert(trajectory.Trajectory{Pts: full.Trajs[baseN+6].Pts})
	if err != nil {
		t.Fatal(err)
	}
	if gid != hole+1 {
		t.Fatalf("post-recovery insert assigned %d, want %d (past the hole)", gid, hole+1)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// The hole survives further recoveries as an explicit record, without
	// another rebuild and without shifting IDs.
	r3, ri, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if ri.Holes != 1 || ri.JournalRebuilt {
		t.Fatalf("second recovery info %+v, want the hole replayed with no rebuild", ri)
	}
	if got := r3.Stats().NextID; got != int(gid)+1 {
		t.Fatalf("second recovery NextID %d, want %d", got, int(gid)+1)
	}
	wantSi := r3.routeZ(r3.repZ(full.Trajs[baseN+6].Pts))
	if s, local, ok := r3.Owner(gid); !ok || s != wantSi {
		t.Fatalf("post-hole insert %d resolves to (%d, %d, %v), want shard %d", gid, s, local, ok, wantSi)
	}
}

// TestRouterConcurrentDurableInserts drives the out-of-lock durability
// waits under the race detector: concurrent inserts must overlap safely,
// assign dense global IDs, and recover cleanly.
func TestRouterConcurrentDurableInserts(t *testing.T) {
	full := testDataset(t, 120)
	baseN := 40
	base := full.Sample(baseN)
	cfg := Config{Shards: 3, Delta: delta.Config{CompactThreshold: -1}}
	dcfg := cfg
	dcfg.Durability = delta.Durability{Dir: t.TempDir(), Sync: wal.SyncGroup}

	r, _, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := full.Trajs[baseN:]
	var wg sync.WaitGroup
	errs := make([]error, len(tail))
	gids := make([]trajectory.TrajID, len(tail))
	for i := range tail {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gids[i], errs[i] = r.Insert(trajectory.Trajectory{Pts: tail[i].Pts})
		}(i)
	}
	wg.Wait()
	seen := make(map[trajectory.TrajID]bool)
	for i := range tail {
		if errs[i] != nil {
			t.Fatalf("insert %d: %v", i, errs[i])
		}
		if seen[gids[i]] {
			t.Fatalf("global ID %d assigned twice", gids[i])
		}
		seen[gids[i]] = true
	}
	if got := r.Stats().NextID; got != len(full.Trajs) {
		t.Fatalf("NextID %d, want %d", got, len(full.Trajs))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, ri, err := OpenOrCreate(base, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if ri.Synthesized != 0 || ri.Holes != 0 || ri.JournalRebuilt {
		t.Fatalf("clean shutdown recovered with %+v", ri)
	}
	if got := r2.Stats().NextID; got != len(full.Trajs) {
		t.Fatalf("recovered NextID %d, want %d", got, len(full.Trajs))
	}
	for gid := range seen {
		if _, _, ok := r2.Owner(gid); !ok {
			t.Fatalf("acknowledged insert %d has no owner after recovery", gid)
		}
	}
}

// TestRouterCrashMatrix injects crash points across the sharded stack —
// inside shard WALs, the routing journal, and shard compaction — and
// asserts the reopened router is bit-identical to a twin that applied the
// recovered mutation prefix. Routing is deterministic, so the recovered
// prefix is identified by the number of surviving global IDs.
func TestRouterCrashMatrix(t *testing.T) {
	full := testDataset(t, 120)
	baseN := 80
	base := full.Sample(baseN)
	ops := shardWorkload(full, baseN)
	qs := workload(t, full, 6)

	cases := []struct {
		name string
		plan faultfs.Plan
	}{
		{"early-write", faultfs.Plan{CrashOnWrite: 30}},
		{"torn-record", faultfs.Plan{CrashOnWrite: 40, WritePartial: 6}},
		{"journal-window", faultfs.Plan{CrashOnWrite: 41}},
		{"late-write", faultfs.Plan{CrashOnWrite: 75, WritePartial: 11}},
		{"fsync", faultfs.Plan{CrashOnSync: 35}},
		{"segment-create", faultfs.Plan{CrashOnCreate: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ffs := faultfs.New(nil, tc.plan)
			cfg := Config{Shards: 3, Delta: delta.Config{CompactThreshold: -1}}
			dcfg := cfg
			dcfg.Durability = delta.Durability{
				Dir: t.TempDir(), SegmentBytes: 2048, FS: ffs,
			}
			r, _, err := OpenOrCreate(base, dcfg)
			if err != nil {
				t.Skipf("fault fired during open: %v", err)
			}
			acked := 0
			failed := false
			for _, op := range ops {
				err := op.apply(r)
				if op.pts != nil {
					if err == nil {
						acked++
					} else {
						failed = true
					}
				}
			}
			if !ffs.Crashed() {
				w, s, c, rn, rm := ffs.Ops()
				t.Fatalf("plan %+v never fired (ops: %d writes %d syncs %d creates %d renames %d removes)", tc.plan, w, s, c, rn, rm)
			}
			if !failed {
				t.Fatal("crash fired but every insert was acknowledged")
			}

			dcfg.Durability.FS = nil
			r2, ri, err := OpenOrCreate(base, dcfg)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer r2.Close()
			recovered := r2.Stats().NextID - baseN
			if recovered < acked {
				t.Fatalf("recovered %d inserts < %d acknowledged (info %+v)", recovered, acked, ri)
			}

			// Mutations are serialized and the filesystem fail-stops, so the
			// recovered corpus is ops[0:m] for some m. Identify m by matching
			// each shard's recovered (inserts, tombstones) against a running
			// simulation of the op stream — each op changes one counter, so
			// the match is unique.
			stats := r2.Stats()
			type counts struct{ ins, del int }
			baseOwned := make([]int, len(stats.PerShard))
			for gid := range base.Trajs {
				si, _, ok := r2.Owner(trajectory.TrajID(gid))
				if !ok {
					t.Fatalf("base trajectory %d has no owner", gid)
				}
				baseOwned[si]++
			}
			want := make([]counts, len(stats.PerShard))
			for si, ss := range stats.PerShard {
				want[si] = counts{
					ins: ss.Trajectories - baseOwned[si],
					del: ss.Delta.Tombstones,
				}
			}
			sim := make([]counts, len(stats.PerShard))
			matches := func() bool {
				for si := range sim {
					if sim[si] != want[si] {
						return false
					}
				}
				return true
			}
			m := -1
			if matches() {
				m = 0
			}
			for i, op := range ops {
				if op.pts != nil {
					sim[r2.routeZ(r2.repZ(op.pts))].ins++
				} else {
					dsh, _, ok := r2.Owner(op.del)
					if !ok {
						// The delete targets a base trajectory; Owner always
						// knows it.
						t.Fatalf("op %d: unknown delete target %d", i, op.del)
					}
					sim[dsh].del++
				}
				if matches() {
					m = i + 1
					break
				}
			}
			if m < 0 {
				t.Fatalf("no op prefix matches recovered shard state %+v", want)
			}

			twin, err := NewRouter(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range ops[:m] {
				if err := op.apply(twin); err != nil {
					t.Fatal(err)
				}
			}
			routerParity(t, tc.name, twin, r2, qs, 10)

			// The recovered router must accept new mutations.
			g1, err := r2.Insert(trajectory.Trajectory{Pts: full.Trajs[1].Pts})
			if err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
			g2, err := twin.Insert(trajectory.Trajectory{Pts: full.Trajs[1].Pts})
			if err != nil {
				t.Fatal(err)
			}
			if g1 != g2 {
				t.Fatalf("post-recovery insert assigned %d, twin %d", g1, g2)
			}
			routerParity(t, tc.name+"/post-insert", twin, r2, qs, 10)
		})
	}
}

// Package shard horizontally partitions an activity-trajectory corpus into
// K spatial shards and serves exact global top-k queries over them with a
// scatter-gather search.
//
// Partitioning is by Z-order range over leaf cells: every trajectory maps
// to the leaf cell of its first point on a partition grid fitted to the
// corpus, trajectories are ordered along the Z curve, and the curve is cut
// into K contiguous ranges of near-equal trajectory count. Each shard owns
// a full single-node stack — its own TrajStore, GAT index and delta layer
// (a delta.Dynamic) — so shards ingest, search and compact independently.
//
// The Router keeps the shard map, assigns global trajectory IDs (local IDs
// are per-shard dense; the mapping preserves order, so shard-local
// (distance, ID) tie-breaks agree with global ones), and routes inserts and
// deletes to the owning shard. Searches go through Engine: the query is
// planned against per-shard lower bounds (the sum over query points of the
// minimum distance to the shard's bounding rectangle lower-bounds any match
// distance in the shard), the intersecting shards are searched
// concurrently, and every shard search feeds one shared global top-k whose
// running k-th distance is broadcast back into the in-flight searches
// (gat.Engine.SetBoundSink) so their Algorithm-2 termination bounds tighten
// mid-flight. Results are exactly those of a single-index engine over the
// unpartitioned corpus — see internal/enginetest for the differential gate.
package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// Config tunes shard construction.
type Config struct {
	// Shards is K, the number of spatial partitions. 0 selects
	// DefaultShards.
	Shards int
	// PartitionDepth is the grid level whose Z-order codes define shard
	// ranges (the partition granularity, independent of each shard's own
	// GAT grid). 0 selects DefaultPartitionDepth.
	PartitionDepth int
	// Delta configures each shard's dynamic index (base GAT/store options
	// and the auto-compaction threshold). Delta.Durability must be unset:
	// durability is configured router-wide via Durability, which derives a
	// per-shard directory for each shard's WAL and snapshots.
	Delta delta.Config
	// Durability persists the router durably under one data directory:
	// each shard's mutations in its own WAL (Dir/shard-NNN), the routing
	// journal (which shard each global insert went to) in Dir/journal, and
	// the partition layout in Dir/router.json. The zero value disables it;
	// a durable router must be opened with OpenOrCreate, not NewRouter.
	Durability delta.Durability
}

// Defaults for Config's zero values.
const (
	DefaultShards         = 4
	DefaultPartitionDepth = 8
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.PartitionDepth <= 0 {
		c.PartitionDepth = DefaultPartitionDepth
	}
	if c.PartitionDepth > 15 {
		c.PartitionDepth = 15
	}
	return c
}

// owner locates a global trajectory ID inside the shard map.
type owner struct {
	shard int32
	local trajectory.TrajID
}

// Shard is one spatial partition: a dynamic GAT index over the shard's
// sub-corpus plus the local→global ID mapping and the bounding rectangle of
// every point the shard has ever held (grown on insert, never shrunk — a
// stale-but-larger rectangle only weakens pruning, never correctness).
type Shard struct {
	d *delta.Dynamic
	// zlo/zhi is the owned Z-code range [zlo, zhi) at the partition depth.
	zlo, zhi uint32

	// idmu guards globalIDs and the bounds. Searches hold the read lock for
	// their whole duration so every trajectory they can observe has its
	// global mapping in place; Insert holds the write lock across the
	// delta-insert and the mapping append, making the two atomic to readers.
	idmu      sync.RWMutex
	globalIDs []trajectory.TrajID
	bounds    geo.Rect
	hasPoints bool
}

// Dynamic returns the shard's underlying dynamic index (stats, explicit
// compaction). Mutations MUST go through the Router, which owns global ID
// assignment.
func (sh *Shard) Dynamic() *delta.Dynamic { return sh.d }

// ZRange returns the shard's owned Z-code range [lo, hi) at the partition
// depth.
func (sh *Shard) ZRange() (lo, hi uint32) { return sh.zlo, sh.zhi }

// Bounds returns the bounding rectangle of the shard's points and whether
// the shard has ever held any point.
func (sh *Shard) Bounds() (geo.Rect, bool) {
	sh.idmu.RLock()
	defer sh.idmu.RUnlock()
	return sh.bounds, sh.hasPoints
}

// queryLB returns a lower bound on the match distance of ANY trajectory in
// the shard: each query point must match some trajectory point, every point
// of the shard lies inside bounds, and both Dmm and Dmom sum the
// per-query-point distances, so Σ MinDist(q_i, bounds) lower-bounds both.
// An empty shard bounds nothing and returns +Inf.
func (sh *Shard) queryLB(pts []geo.Point) float64 {
	sh.idmu.RLock()
	defer sh.idmu.RUnlock()
	if !sh.hasPoints {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		sum += sh.bounds.MinDist(p)
	}
	return sum
}

func (sh *Shard) extend(pts []trajectory.Point) {
	for _, p := range pts {
		if !sh.hasPoints {
			sh.bounds = geo.RectFromPoint(p.Loc)
			sh.hasPoints = true
			continue
		}
		sh.bounds = sh.bounds.ExtendPoint(p.Loc)
	}
}

// Router owns the shard map: it builds the partitions, assigns global
// trajectory IDs, routes mutations to the owning shard, and spawns
// scatter-gather engines (NewEngine). All methods are safe for concurrent
// use.
type Router struct {
	cfg    Config
	layout *Layout
	shards []*Shard

	mu     sync.Mutex // serializes writers (global ID assignment, owners)
	nextID int
	owners []owner

	// journal, when non-nil, records which shard every global insert was
	// routed to (see OpenOrCreate); jbuf is its encoding scratch, guarded
	// by mu.
	journal *wal.Log
	jbuf    []byte
}

// NewRouter partitions ds into cfg.Shards spatial shards and builds each
// shard's store, GAT index and delta layer. The dataset must satisfy
// (*Dataset).Validate and is treated as immutable afterwards. A router with
// Config.Durability set must be opened with OpenOrCreate instead.
func NewRouter(ds *trajectory.Dataset, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Durability.Dir != "" {
		return nil, fmt.Errorf("shard: durable routers must be opened with OpenOrCreate")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("shard: invalid dataset: %w", err)
	}
	r := &Router{cfg: cfg, nextID: len(ds.Trajs)}
	openShard := func(_ int, sub *trajectory.Dataset) (*delta.Dynamic, error) {
		return delta.NewDynamic(sub, cfg.Delta)
	}
	if err := r.partition(ds, nil, openShard); err != nil {
		return nil, err
	}
	return r, nil
}

// partition fits the partition grid, cuts the Z curve into cfg.Shards
// ranges of near-equal trajectory count, and builds the per-shard indexes
// through openShard. A non-nil manifest supplies a previously persisted
// grid and cut layout instead of computing one, so a reopened router routes
// exactly as the original did.
func (r *Router) partition(ds *trajectory.Dataset, man *routerManifest, openShard func(si int, sub *trajectory.Dataset) (*delta.Dynamic, error)) error {
	var (
		l   *Layout
		err error
	)
	if man != nil {
		l, err = NewLayout(r.cfg.PartitionDepth, geo.Point{X: man.OriginX, Y: man.OriginY}, man.Side, man.Cuts)
		if err != nil {
			return fmt.Errorf("shard: layout from manifest: %w", err)
		}
	} else {
		l, err = PlanLayout(ds, r.cfg.Shards, r.cfg.PartitionDepth)
		if err != nil {
			return err
		}
	}
	if l.NumShards() != r.cfg.Shards {
		return fmt.Errorf("shard: layout has %d shards, config wants %d", l.NumShards(), r.cfg.Shards)
	}
	r.layout = l

	k := r.cfg.Shards
	r.shards = make([]*Shard, k)
	r.owners = make([]owner, len(ds.Trajs))
	for si := 0; si < k; si++ {
		lo, hi := l.ZRange(si)
		sh := &Shard{zlo: lo, zhi: hi}
		sub, gids := l.SubDataset(ds, si)
		sh.globalIDs = gids
		for li, gid := range gids {
			r.owners[gid] = owner{shard: int32(si), local: trajectory.TrajID(li)}
			sh.extend(ds.Trajs[gid].Pts)
		}
		d, err := openShard(si, sub)
		if err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		sh.d = d
		r.shards[si] = sh
	}
	return nil
}

// Layout returns the router's partition layout (shared with cluster
// topologies so external processes route identically).
func (r *Router) Layout() *Layout { return r.layout }

// repZ returns the partition-grid Z code of a trajectory's representative
// (first) point; point-less trajectories map to code 0.
func (r *Router) repZ(pts []trajectory.Point) uint32 { return r.layout.RepZ(pts) }

// routeZ returns the index of the shard owning leaf code z.
func (r *Router) routeZ(z uint32) int { return r.layout.RouteZ(z) }

// NumShards returns K.
func (r *Router) NumShards() int { return len(r.shards) }

// Epoch implements query.EpochSource by summing the per-shard mutation
// counters. Each addend is monotone non-decreasing with apply-then-bump
// ordering (see delta.(*Dynamic).Epoch), so the sum is too, and an
// unchanged sum implies every component is unchanged — no shard saw an
// acknowledged mutation between two equal reads.
func (r *Router) Epoch() uint64 {
	var sum uint64
	for _, sh := range r.shards {
		sum += sh.d.Epoch()
	}
	return sum
}

// Owner locates a global trajectory ID: the owning shard's index and the
// trajectory's shard-local ID. ok is false for IDs the router never
// assigned and for recovery holes (IDs consumed by inserts that never
// became durable).
func (r *Router) Owner(gid trajectory.TrajID) (shard int, local trajectory.TrajID, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(gid) >= len(r.owners) {
		return 0, 0, false
	}
	o := r.owners[gid]
	if o.shard < 0 {
		return 0, 0, false
	}
	return int(o.shard), o.local, true
}

// Shard returns shard si (0 <= si < NumShards), for inspection.
func (r *Router) Shard(si int) *Shard { return r.shards[si] }

// Insert routes tr to the shard owning its first point's leaf cell,
// inserts it there, and returns its assigned GLOBAL trajectory ID. Global
// IDs are dense and monotone across the whole router — identical to the
// IDs a single unpartitioned DynamicIndex would assign for the same insert
// sequence. The Pts slice is retained; see delta.Dynamic.Insert for the
// structural requirements.
func (r *Router) Insert(tr trajectory.Trajectory) (trajectory.TrajID, error) {
	r.mu.Lock()
	si := r.routeZ(r.repZ(tr.Pts))
	sh := r.shards[si]
	sh.idmu.Lock()
	local, commit, err := sh.d.InsertDeferred(tr)
	if err != nil {
		sh.idmu.Unlock()
		r.mu.Unlock()
		return 0, err
	}
	if int(local) != len(sh.globalIDs) {
		sh.idmu.Unlock()
		r.mu.Unlock()
		return 0, fmt.Errorf("shard %d: local ID %d out of step with mapping (%d entries); mutations bypassed the router", si, local, len(sh.globalIDs))
	}
	gid := trajectory.TrajID(r.nextID)
	r.nextID++
	// The mapping is published the moment the delta layer applied the
	// insert — before any durability wait — so every trajectory a search
	// can observe has its global ID in place whatever the fsync outcome.
	sh.globalIDs = append(sh.globalIDs, gid)
	sh.extend(tr.Pts)
	sh.idmu.Unlock()
	r.owners = append(r.owners, owner{shard: int32(si), local: local})
	var jseq uint64
	if r.journal != nil {
		// Journal appends happen under r.mu in assignment order, so replay
		// order is exactly global ID order. Neither WAL must be durable
		// before the other: recovery re-synthesizes a shard record the
		// journal missed, and replays a journal record whose shard record
		// was lost (an unacknowledged insert) as a hole — see OpenOrCreate.
		r.jbuf = binary.AppendUvarint(r.jbuf[:0], uint64(si))
		jseq, err = r.journal.Append(recRoute, r.jbuf)
	}
	r.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// Durability waits run outside every router lock so concurrent inserts
	// overlap and share fsyncs (group commit) instead of serializing on
	// r.mu. An error past this point means applied but unacknowledged.
	if err := commit(); err != nil {
		return 0, err
	}
	if r.journal != nil {
		if err := r.journal.Commit(jseq); err != nil {
			return 0, err
		}
	}
	return gid, nil
}

// Delete tombstones the trajectory with the given GLOBAL ID in its owning
// shard. Deleting an unknown ID is an error; re-deleting is a no-op.
func (r *Router) Delete(gid trajectory.TrajID) error {
	r.mu.Lock()
	if int(gid) >= len(r.owners) {
		r.mu.Unlock()
		return fmt.Errorf("shard: delete of unknown trajectory %d", gid)
	}
	o := r.owners[gid]
	r.mu.Unlock()
	if o.shard < 0 {
		// A recovery hole: the ID belonged to an insert that never became
		// durable, so there is nothing to tombstone.
		return fmt.Errorf("shard: delete of unknown trajectory %d", gid)
	}
	// Owner entries are immutable once published and the delta layer waits
	// for durability outside its own lock, so deletes to different shards
	// overlap and concurrent deletes share fsyncs.
	return r.shards[o.shard].d.Delete(o.local)
}

// CompactAll synchronously compacts every shard's delta layer into a fresh
// base generation (shards also auto-compact independently past their
// Config.Delta.CompactThreshold).
func (r *Router) CompactAll() error {
	for si, sh := range r.shards {
		if err := sh.d.CompactNow(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return nil
}

// ShardStats describes one shard's shape.
type ShardStats struct {
	// ZLo/ZHi is the owned Z-code range [ZLo, ZHi) at the partition depth.
	ZLo, ZHi uint32
	// Trajectories counts IDs mapped to the shard (including tombstoned
	// ones and compacted-away husks).
	Trajectories int
	// Bounds is the bounding rectangle of every point the shard has held;
	// HasPoints is false for a never-populated shard (Bounds then zero).
	Bounds    geo.Rect
	HasPoints bool
	// Delta is the shard's dynamic-index snapshot.
	Delta delta.Stats
	// CompactErr is the shard's most recent background-compaction failure
	// ("" = healthy); it persists until a compaction succeeds, so health
	// endpoints can surface a shard that silently stopped compacting.
	CompactErr string
}

// Stats describes the router's current shape.
type Stats struct {
	// Shards is K.
	Shards int
	// NextID is one past the highest assigned global trajectory ID.
	NextID int
	// MutationEpoch is the summed per-shard mutation epoch (see
	// Router.Epoch) — the counter that invalidates result caches and tags
	// subscription staleness.
	MutationEpoch uint64
	// PerShard holds one entry per shard, in shard order.
	PerShard []ShardStats
}

// Stats returns a snapshot of the sharded index's shape.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	next := r.nextID
	r.mu.Unlock()
	s := Stats{Shards: len(r.shards), NextID: next, MutationEpoch: r.Epoch(), PerShard: make([]ShardStats, len(r.shards))}
	for si, sh := range r.shards {
		sh.idmu.RLock()
		ss := ShardStats{
			ZLo:          sh.zlo,
			ZHi:          sh.zhi,
			Trajectories: len(sh.globalIDs),
			Bounds:       sh.bounds,
			HasPoints:    sh.hasPoints,
		}
		sh.idmu.RUnlock()
		ss.Delta = sh.d.Stats()
		if err := sh.d.LastCompactErr(); err != nil {
			ss.CompactErr = err.Error()
		}
		s.PerShard[si] = ss
	}
	return s
}

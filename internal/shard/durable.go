package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"activitytraj/internal/delta"
	"activitytraj/internal/trajectory"
	"activitytraj/internal/wal"
)

// On-disk layout of a durable router under Config.Durability.Dir:
//
//	router.json      partition layout (grid, cuts), committed once at creation
//	journal/         routing journal: one WAL record per global insert saying
//	                 which shard it went to (global IDs are then replay order)
//	shard-NNN/       shard NNN's delta WAL, snapshots and manifest
//
// The routing journal is appended in global ID assignment order (under the
// router's writer lock) but committed outside it, so neither WAL is
// guaranteed durable before the other. Recovery tolerates both crash
// windows: a shard record the journal missed is re-synthesized and
// re-journaled, and a journal record whose shard record was lost — an
// insert that was never acknowledged — is replayed as a hole, consuming its
// global ID without binding it, so every later (possibly acknowledged)
// record keeps the exact ID it was assigned. The journal is not pruned —
// routing records are a few bytes per insert and the full history is what
// rebuilds the global ID map.

const (
	routerManifestName = "router.json"
	journalDirName     = "journal"
	// recRoute is the journal's insert record kind: body = uvarint shard
	// index.
	recRoute = 1
	// recHole marks a consumed global ID that binds to nothing (empty
	// body): a route record whose insert was lost before becoming durable,
	// rewritten explicitly so it can never rebind to a future insert.
	recHole = 2
)

func shardDirName(si int) string { return fmt.Sprintf("shard-%03d", si) }

// routerManifest persists the partition layout so a reopened router routes
// exactly as the original: same grid, same Z cuts, same base corpus size.
type routerManifest struct {
	Version        int      `json:"version"`
	Shards         int      `json:"shards"`
	PartitionDepth int      `json:"partition_depth"`
	OriginX        float64  `json:"origin_x"`
	OriginY        float64  `json:"origin_y"`
	Side           float64  `json:"side"`
	Cuts           []uint32 `json:"cuts"`
	BaseN          int      `json:"base_n"`
}

// RecoveryInfo describes what OpenOrCreate rebuilt across the router.
type RecoveryInfo struct {
	// Shards holds each shard's delta-level recovery, in shard order.
	Shards []delta.RecoveryInfo
	// JournalReplayed counts routing records applied from the journal.
	JournalReplayed int64
	// Synthesized counts shard-local inserts that had no routing record (a
	// crash between a shard's WAL append and the journal append); recovery
	// assigned them fresh global IDs in shard order and re-journaled them.
	Synthesized int
	// Holes counts global IDs consumed by journal records whose inserts no
	// shard holds — inserts lost before becoming durable, so never
	// acknowledged. Keeping their IDs as holes keeps every later record's
	// ID exactly as assigned.
	Holes int
	// JournalRebuilt reports that journal records referencing lost inserts
	// were converted to explicit hole records and the journal rewritten.
	JournalRebuilt bool
	// Torn reports a torn tail was truncated in any WAL (shard or journal).
	Torn bool
}

// jrec is one journal record kept in memory during replay, in case the
// journal must be rewritten.
type jrec struct {
	kind uint8
	body []byte
}

// OpenOrCreate opens a durable Router from cfg.Durability.Dir, recovering
// any state a previous process left behind: each shard's delta index is
// recovered from its own WAL and snapshots, the global ID map is rebuilt by
// replaying the routing journal, shard-local inserts the journal missed are
// re-assigned and re-journaled, and every shard's spatial bounds are
// re-extended from its live points. With durability disabled (empty Dir) it
// is exactly NewRouter.
//
// bootstrap is the seq-0 base corpus and must be the same dataset on every
// open (the manifest pins its size and partition layout as a guard).
func OpenOrCreate(bootstrap *trajectory.Dataset, cfg Config) (*Router, RecoveryInfo, error) {
	cfg = cfg.withDefaults()
	var ri RecoveryInfo
	if cfg.Durability.Dir == "" {
		r, err := NewRouter(bootstrap, cfg)
		return r, ri, err
	}
	if cfg.Delta.Durability.Dir != "" {
		return nil, ri, fmt.Errorf("shard: configure durability on the router (Config.Durability), not per delta")
	}
	if err := bootstrap.Validate(); err != nil {
		return nil, ri, fmt.Errorf("shard: invalid dataset: %w", err)
	}
	fsys := cfg.Durability.FS
	if fsys == nil {
		fsys = wal.OSFS()
	}
	dir := cfg.Durability.Dir
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, ri, fmt.Errorf("shard: mkdir %s: %w", dir, err)
	}
	man, err := readRouterManifest(fsys, dir)
	if err != nil {
		return nil, ri, err
	}
	if man != nil {
		if man.Shards != cfg.Shards || man.PartitionDepth != cfg.PartitionDepth {
			return nil, ri, fmt.Errorf("shard: manifest has %d shards at depth %d, config wants %d at %d (repartitioning is not supported)",
				man.Shards, man.PartitionDepth, cfg.Shards, cfg.PartitionDepth)
		}
		if man.BaseN != len(bootstrap.Trajs) {
			return nil, ri, fmt.Errorf("shard: manifest base corpus has %d trajectories, bootstrap has %d (bootstrap must not change across opens)",
				man.BaseN, len(bootstrap.Trajs))
		}
	}

	r := &Router{cfg: cfg, nextID: len(bootstrap.Trajs)}
	openShard := func(si int, sub *trajectory.Dataset) (*delta.Dynamic, error) {
		dcfg := cfg.Delta
		dcfg.Durability = delta.Durability{
			Dir:          filepath.Join(dir, shardDirName(si)),
			Sync:         cfg.Durability.Sync,
			SegmentBytes: cfg.Durability.SegmentBytes,
			FS:           cfg.Durability.FS,
		}
		d, sri, err := delta.OpenOrCreate(sub, dcfg)
		if err != nil {
			return nil, err
		}
		ri.Shards = append(ri.Shards, sri)
		ri.Torn = ri.Torn || sri.Torn
		return d, nil
	}
	if err := r.partition(bootstrap, man, openShard); err != nil {
		r.closeShards()
		return nil, ri, err
	}
	if man == nil {
		if err := writeRouterManifest(fsys, dir, r, len(bootstrap.Trajs)); err != nil {
			r.closeShards()
			return nil, ri, err
		}
	}

	// Rebuild the global ID map from the routing journal. Each route record
	// binds the next global ID to the next local slot of its shard; replay
	// order is assignment order, so the rebuilt map matches the original
	// exactly. A route record whose shard does not hold the insert — lost
	// before becoming durable, so never acknowledged — consumes its global
	// ID as a hole, keeping every later record's ID stable; a shard WAL
	// always survives as a prefix, so such records are exactly the tail of
	// their shard's journal subsequence and can never steal a live slot.
	jdir := filepath.Join(dir, journalDirName)
	var recs []jrec // kept in case the journal must be rewritten
	jinfo, err := wal.Replay(fsys, jdir, func(rec wal.Record) error {
		switch rec.Kind {
		case recRoute:
			si, err := decodeRouteBody(rec.Data)
			if err != nil {
				return fmt.Errorf("journal record %d: %w", rec.Seq, err)
			}
			if si >= len(r.shards) {
				return fmt.Errorf("%w: journal record %d routes to shard %d of %d", wal.ErrCorrupt, rec.Seq, si, len(r.shards))
			}
			sh := r.shards[si]
			if len(sh.globalIDs) >= sh.d.Stats().IDSpace {
				r.owners = append(r.owners, owner{shard: -1})
				r.nextID++
				ri.Holes++
				ri.JournalRebuilt = true
				recs = append(recs, jrec{kind: recHole})
				return nil
			}
			local := trajectory.TrajID(len(sh.globalIDs))
			gid := trajectory.TrajID(r.nextID)
			r.nextID++
			sh.globalIDs = append(sh.globalIDs, gid)
			r.owners = append(r.owners, owner{shard: int32(si), local: local})
			ri.JournalReplayed++
			recs = append(recs, jrec{kind: recRoute, body: append([]byte(nil), rec.Data...)})
			return nil
		case recHole:
			if len(rec.Data) != 0 {
				return fmt.Errorf("%w: journal hole record %d has a body", wal.ErrCorrupt, rec.Seq)
			}
			r.owners = append(r.owners, owner{shard: -1})
			r.nextID++
			ri.Holes++
			recs = append(recs, jrec{kind: recHole})
			return nil
		default:
			return fmt.Errorf("%w: journal record %d has unknown kind %d", wal.ErrCorrupt, rec.Seq, rec.Kind)
		}
	})
	if err != nil {
		r.closeShards()
		return nil, ri, fmt.Errorf("shard: replay journal: %w", err)
	}
	ri.Torn = ri.Torn || jinfo.Torn

	if ri.JournalRebuilt {
		// Rewrite the journal with the lost inserts' records as explicit
		// holes, so they can never rebind to future inserts.
		if err := rewriteJournal(fsys, jdir, recs); err != nil {
			r.closeShards()
			return nil, ri, err
		}
	}
	journal, err := wal.Open(wal.Options{
		Dir:          jdir,
		Sync:         cfg.Durability.Sync,
		SegmentBytes: cfg.Durability.SegmentBytes,
		FS:           cfg.Durability.FS,
	})
	if err != nil {
		r.closeShards()
		return nil, ri, err
	}
	r.journal = journal

	// Synthesize routing for shard-local inserts the journal never saw (at
	// most the single in-flight insert per crash, but the loop is general).
	// They are appended to the journal now, in the same deterministic order,
	// so the next recovery replays them like any other insert.
	var lastSeq uint64
	for si, sh := range r.shards {
		for len(sh.globalIDs) < sh.d.Stats().IDSpace {
			local := trajectory.TrajID(len(sh.globalIDs))
			gid := trajectory.TrajID(r.nextID)
			r.nextID++
			sh.globalIDs = append(sh.globalIDs, gid)
			r.owners = append(r.owners, owner{shard: int32(si), local: local})
			seq, err := journal.Append(recRoute, binary.AppendUvarint(nil, uint64(si)))
			if err != nil {
				r.Close()
				return nil, ri, fmt.Errorf("shard: re-journal shard %d insert: %w", si, err)
			}
			lastSeq = seq
			ri.Synthesized++
		}
	}
	if lastSeq != 0 {
		if err := journal.Commit(lastSeq); err != nil {
			r.Close()
			return nil, ri, fmt.Errorf("shard: re-journal commit: %w", err)
		}
	}

	// Re-extend every shard's bounds from the points it actually holds
	// (base partitioning covered the bootstrap; this adds recovered delta
	// inserts — and with them, the pruning bound's correctness).
	for _, sh := range r.shards {
		sh.d.ForEachPts(func(_ trajectory.TrajID, pts []trajectory.Point) {
			sh.extend(pts)
		})
	}
	return r, ri, nil
}

// Close seals the routing journal and every shard's WAL. The in-memory
// router keeps serving searches but rejects further mutations when durable.
func (r *Router) Close() error {
	var first error
	if r.journal != nil {
		first = r.journal.Close()
	}
	if err := r.closeShards(); first == nil {
		first = err
	}
	return first
}

func (r *Router) closeShards() error {
	var first error
	for _, sh := range r.shards {
		if sh == nil || sh.d == nil {
			continue
		}
		if err := sh.d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func decodeRouteBody(b []byte) (int, error) {
	si, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("%w: malformed routing record", wal.ErrCorrupt)
	}
	return int(si), nil
}

// rewriteJournal replaces the journal directory's contents with exactly the
// given records (fresh sequence numbers starting at 1).
func rewriteJournal(fsys wal.FS, jdir string, recs []jrec) error {
	names, err := fsys.ReadDir(jdir)
	if errors.Is(err, fs.ErrNotExist) {
		names = nil
	} else if err != nil {
		return fmt.Errorf("shard: rewrite journal: %w", err)
	}
	for _, n := range names {
		if err := fsys.Remove(filepath.Join(jdir, n)); err != nil {
			return fmt.Errorf("shard: rewrite journal: %w", err)
		}
	}
	l, err := wal.Open(wal.Options{Dir: jdir, FS: fsys})
	if err != nil {
		return fmt.Errorf("shard: rewrite journal: %w", err)
	}
	for _, rec := range recs {
		if _, err := l.Append(rec.kind, rec.body); err != nil {
			l.Close()
			return fmt.Errorf("shard: rewrite journal: %w", err)
		}
	}
	if err := l.Close(); err != nil {
		return fmt.Errorf("shard: rewrite journal: %w", err)
	}
	return nil
}

func readRouterManifest(fsys wal.FS, dir string) (*routerManifest, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // no directory yet: a fresh router
	}
	if err != nil {
		// Any other listing error must fail the open: treating it as "no
		// manifest" would silently restart a durable router from scratch.
		return nil, fmt.Errorf("shard: list %s: %w", dir, err)
	}
	found := false
	for _, n := range names {
		if n == routerManifestName {
			found = true
			break
		}
	}
	if !found {
		return nil, nil
	}
	f, err := fsys.Open(filepath.Join(dir, routerManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: open router manifest: %w", err)
	}
	defer f.Close()
	var man routerManifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return nil, fmt.Errorf("shard: decode router manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("shard: unsupported router manifest version %d", man.Version)
	}
	return &man, nil
}

func writeRouterManifest(fsys wal.FS, dir string, r *Router, baseN int) error {
	l := r.layout
	man := routerManifest{
		Version:        1,
		Shards:         r.cfg.Shards,
		PartitionDepth: r.cfg.PartitionDepth,
		OriginX:        l.Origin().X,
		OriginY:        l.Origin().Y,
		Side:           l.Side(),
		Cuts:           l.Cuts(),
		BaseN:          baseN,
	}
	err := wal.WriteFileAtomic(fsys, filepath.Join(dir, routerManifestName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(man)
	})
	if err != nil {
		return fmt.Errorf("shard: write router manifest: %w", err)
	}
	return nil
}

package shard

import (
	"testing"

	"activitytraj/internal/trajectory"
)

// TestLayoutRouterParity pins the replica bootstrap contract: PlanLayout +
// SubDataset derive exactly the shard membership, local ID numbering and
// local→global mapping the Router builds, and a layout rebuilt from its
// persisted parameters (NewLayout, the topology-file path) routes
// identically to the planned one.
func TestLayoutRouterParity(t *testing.T) {
	ds := testDataset(t, 400)
	const shards = 4

	r, err := NewRouter(ds, Config{Shards: shards})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	l, err := PlanLayout(ds, shards, 0)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	rl := r.Layout()
	if got, want := l.NumShards(), shards; got != want {
		t.Fatalf("NumShards = %d, want %d", got, want)
	}
	if l.Origin() != rl.Origin() || l.Side() != rl.Side() || l.PartitionDepth() != rl.PartitionDepth() {
		t.Fatalf("grid mismatch: plan (%v, %v, %d) vs router (%v, %v, %d)",
			l.Origin(), l.Side(), l.PartitionDepth(), rl.Origin(), rl.Side(), rl.PartitionDepth())
	}
	lc, rc := l.Cuts(), rl.Cuts()
	if len(lc) != len(rc) {
		t.Fatalf("cuts length %d vs %d", len(lc), len(rc))
	}
	for i := range lc {
		if lc[i] != rc[i] {
			t.Fatalf("cut %d: %d vs %d", i, lc[i], rc[i])
		}
	}

	// Rebuild from persisted parameters — the path a cluster topology file
	// takes — and check it routes every trajectory like the planned layout.
	l2, err := NewLayout(l.PartitionDepth(), l.Origin(), l.Side(), l.Cuts())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for gid := range ds.Trajs {
		if a, b := l.Route(ds.Trajs[gid].Pts), l2.Route(ds.Trajs[gid].Pts); a != b {
			t.Fatalf("gid %d: planned layout routes to %d, rebuilt to %d", gid, a, b)
		}
	}

	// SubDataset must reproduce the Router's shard membership exactly:
	// same members in the same local order, same local→global mapping.
	total := 0
	for si := 0; si < shards; si++ {
		sub, gids := l.SubDataset(ds, si)
		total += len(gids)
		if len(sub.Trajs) != len(gids) {
			t.Fatalf("shard %d: %d trajs vs %d gids", si, len(sub.Trajs), len(gids))
		}
		for li, gid := range gids {
			wsi, wlocal, ok := r.Owner(gid)
			if !ok {
				t.Fatalf("shard %d: router does not know gid %d", si, gid)
			}
			if wsi != si || int(wlocal) != li {
				t.Fatalf("gid %d: layout places at (%d,%d), router at (%d,%d)", gid, si, li, wsi, wlocal)
			}
			if sub.Trajs[li].ID != trajectory.TrajID(li) {
				t.Fatalf("shard %d local %d: sub ID %d", si, li, sub.Trajs[li].ID)
			}
			if &sub.Trajs[li].Pts[0] != &ds.Trajs[gid].Pts[0] {
				t.Fatalf("shard %d local %d: points not shared with base dataset", si, li)
			}
		}
	}
	if total != len(ds.Trajs) {
		t.Fatalf("sub-datasets cover %d of %d trajectories", total, len(ds.Trajs))
	}

	// ZRange must tile [0, MaxZ()+1) contiguously.
	var lo uint32
	for si := 0; si < shards; si++ {
		zlo, zhi := l.ZRange(si)
		if zlo != lo {
			t.Fatalf("shard %d: zlo %d, want %d", si, zlo, lo)
		}
		if zhi < zlo {
			t.Fatalf("shard %d: inverted range [%d,%d)", si, zlo, zhi)
		}
		lo = zhi
	}
	if lo != l.MaxZ()+1 {
		t.Fatalf("ranges end at %d, want %d", lo, l.MaxZ()+1)
	}
}

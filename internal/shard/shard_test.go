package shard

import (
	"math"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/queries"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

func testDataset(t testing.TB, n int) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name:            "mini",
		Seed:            99,
		NumTrajectories: n,
		NumVenues:       max(2*n, 60),
		VocabSize:       120,
		RegionW:         40,
		RegionH:         40,
		Clusters:        6,
		TrajLenMean:     10,
		TrajLenStd:      4,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

func workload(t testing.TB, ds *trajectory.Dataset, n int) []query.Query {
	t.Helper()
	qs, err := queries.Generate(ds, queries.Config{
		NumQueries:   n,
		NumPoints:    3,
		ActsPerPoint: 2,
		DiameterKm:   8,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("queries: %v", err)
	}
	return qs
}

// firstActPoint returns the trajectory's first point carrying activities.
func firstActPoint(tr trajectory.Trajectory) (trajectory.Point, bool) {
	for _, p := range tr.Pts {
		if len(p.Acts) > 0 {
			return p, true
		}
	}
	return trajectory.Point{}, false
}

// singleEngine builds the unpartitioned oracle over the same corpus.
func singleEngine(t testing.TB, ds *trajectory.Dataset) *delta.Engine {
	t.Helper()
	d, err := delta.NewDynamic(ds, delta.Config{})
	if err != nil {
		t.Fatalf("single dynamic: %v", err)
	}
	return d.NewEngine()
}

// requireIdentical asserts bit-identical results (IDs and distances).
func requireIdentical(t *testing.T, label string, want, got []query.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs single-index %d\nwant %v\ngot  %v", label, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result %d differs\nwant %v\ngot  %v", label, i, want, got)
		}
	}
}

// TestPartitionShape checks the Z-range partition invariants: every
// trajectory lands in exactly one shard, shard ranges tile the curve, and
// local IDs ascend in global ID order.
func TestPartitionShape(t *testing.T) {
	ds := testDataset(t, 300)
	r, err := NewRouter(ds, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	seen := make(map[trajectory.TrajID]bool)
	total := 0
	var prevHi uint32
	for si := 0; si < r.NumShards(); si++ {
		sh := r.Shard(si)
		lo, hi := sh.ZRange()
		if si == 0 && lo != 0 {
			t.Fatalf("shard 0 starts at %d", lo)
		}
		if si > 0 && lo != prevHi {
			t.Fatalf("shard %d range [%d,%d) does not abut previous end %d", si, lo, hi, prevHi)
		}
		if hi < lo {
			t.Fatalf("shard %d inverted range [%d,%d)", si, lo, hi)
		}
		prevHi = hi
		var prev trajectory.TrajID
		for li, gid := range sh.globalIDs {
			if seen[gid] {
				t.Fatalf("trajectory %d in two shards", gid)
			}
			seen[gid] = true
			if li > 0 && gid <= prev {
				t.Fatalf("shard %d: local order not ascending in global IDs (%d after %d)", si, gid, prev)
			}
			prev = gid
			total++
		}
	}
	if total != len(ds.Trajs) {
		t.Fatalf("partition covers %d of %d trajectories", total, len(ds.Trajs))
	}
	if prevHi != uint32(1)<<(2*uint(DefaultPartitionDepth)) {
		t.Fatalf("last shard ends at %d, want full curve", prevHi)
	}
}

// TestShardedMatchesSingle is the package-local differential gate (the
// full-preset version lives in internal/enginetest): K-shard scatter-gather
// results must be identical to the unpartitioned engine's for ATSQ and
// OATSQ across shard counts, including K larger than the corpus spread.
func TestShardedMatchesSingle(t *testing.T) {
	ds := testDataset(t, 300)
	oracle := singleEngine(t, ds)
	qs := workload(t, ds, 20)
	for _, k := range []int{1, 2, 4, 7} {
		r, err := NewRouter(ds, Config{Shards: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		e := r.NewEngine()
		for qi, q := range qs {
			for _, ordered := range []bool{false, true} {
				var want, got []query.Result
				var err1, err2 error
				if ordered {
					want, err1 = oracle.SearchOATSQ(q, 9)
					got, err2 = e.SearchOATSQ(q, 9)
				} else {
					want, err1 = oracle.SearchATSQ(q, 9)
					got, err2 = e.SearchATSQ(q, 9)
				}
				if err1 != nil || err2 != nil {
					t.Fatalf("K=%d q%d: %v / %v", k, qi, err1, err2)
				}
				requireIdentical(t, "K="+string(rune('0'+k)), want, got)
				st := e.LastStats()
				if st.ShardsSearched+st.ShardsSkipped != k {
					t.Fatalf("K=%d q%d: searched %d + skipped %d != %d", k, qi, st.ShardsSearched, st.ShardsSkipped, k)
				}
			}
		}
	}
}

// TestBoundaryStraddlingQuery pins the router edge case of a query whose
// points straddle a shard boundary: both neighbouring shards must be
// searched (their bounds both contain query points) and the merge must be
// exact.
func TestBoundaryStraddlingQuery(t *testing.T) {
	ds := testDataset(t, 300)
	oracle := singleEngine(t, ds)
	r, err := NewRouter(ds, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := r.NewEngine()
	// Build a query from points of trajectories owned by two different
	// shards, so its envelope necessarily spans the shard boundary.
	s0, s1 := r.Shard(0), r.Shard(3)
	if len(s0.globalIDs) == 0 || len(s1.globalIDs) == 0 {
		t.Skip("partition left an end shard empty")
	}
	p0, ok0 := firstActPoint(ds.Trajs[s0.globalIDs[0]])
	p1, ok1 := firstActPoint(ds.Trajs[s1.globalIDs[0]])
	if !ok0 || !ok1 {
		t.Skip("boundary trajectories carry no activities")
	}
	q := query.Query{Pts: []query.Point{
		{Loc: p0.Loc, Acts: p0.Acts},
		{Loc: p1.Loc, Acts: p1.Acts},
	}}
	if err := q.Validate(); err != nil {
		t.Skipf("constructed query invalid: %v", err)
	}
	want, err := oracle.SearchATSQ(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SearchATSQ(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "straddle", want, got)
	if st := e.LastStats(); st.ShardsSearched < 2 {
		t.Fatalf("straddling query searched only %d shard(s)", st.ShardsSearched)
	}
}

// TestEmptyShard: more shards than distinct cells leaves empty shards;
// they must be planned around (skipped), accept inserts into their region,
// and stay exact.
func TestEmptyShard(t *testing.T) {
	ds := testDataset(t, 3)
	r, err := NewRouter(ds, Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	empty := -1
	for si := 0; si < r.NumShards(); si++ {
		if _, has := r.Shard(si).Bounds(); !has {
			empty = si
			break
		}
	}
	if empty < 0 {
		t.Fatal("expected at least one empty shard with K=5 over 3 trajectories")
	}
	oracle := singleEngine(t, ds)
	e := r.NewEngine()
	qs := workload(t, ds, 5)
	for qi, q := range qs {
		want, err := oracle.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchATSQ(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "empty-shard", want, got)
		if st := e.LastStats(); st.ShardsSearched+st.ShardsSkipped != 5 {
			t.Fatalf("q%d: plan does not cover all shards: %+v", qi, st)
		}
	}
}

// TestAllTombstonedShard deletes every trajectory of one shard and checks
// searches stay exact (the shard is searched — its stale bounds still
// attract the planner — but contributes nothing).
func TestAllTombstonedShard(t *testing.T) {
	ds := testDataset(t, 200)
	r, err := NewRouter(ds, Config{Shards: 4, Delta: delta.Config{CompactThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle with the same deletes applied.
	od, err := delta.NewDynamic(ds, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	victim := r.Shard(1)
	if len(victim.globalIDs) == 0 {
		t.Fatal("shard 1 unexpectedly empty")
	}
	for _, gid := range victim.globalIDs {
		if err := r.Delete(gid); err != nil {
			t.Fatalf("router delete %d: %v", gid, err)
		}
		if err := od.Delete(gid); err != nil {
			t.Fatalf("oracle delete %d: %v", gid, err)
		}
	}
	oracle := od.NewEngine()
	e := r.NewEngine()
	for _, q := range workload(t, ds, 10) {
		want, err := oracle.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "tombstoned", want, got)
	}
}

// TestKLargerThanShardCorpus: k above any single shard's trajectory count
// must return the union's matches, identically to the single index.
func TestKLargerThanShardCorpus(t *testing.T) {
	ds := testDataset(t, 120)
	oracle := singleEngine(t, ds)
	r, err := NewRouter(ds, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := r.NewEngine()
	for _, q := range workload(t, ds, 6) {
		want, err := oracle.SearchATSQ(q, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchATSQ(q, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "bigk", want, got)
	}
}

// TestInsertRoutingAndGlobalIDs: inserts route to the shard owning their
// first point's cell, receive dense global IDs identical to a single
// index's, and become searchable with those IDs.
func TestInsertRoutingAndGlobalIDs(t *testing.T) {
	ds := testDataset(t, 150)
	base := ds.Sample(100)
	base.Name = ds.Name
	r, err := NewRouter(base, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	od, err := delta.NewDynamic(base, delta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range ds.Trajs[100:] {
		gid, err := r.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		oid, err := od.Insert(trajectory.Trajectory{Pts: tr.Pts})
		if err != nil {
			t.Fatalf("oracle insert %d: %v", i, err)
		}
		if gid != oid {
			t.Fatalf("insert %d: router assigned %d, single index %d", i, gid, oid)
		}
		// The insert landed in the shard owning its first point's cell.
		wantShard := r.routeZ(r.repZ(tr.Pts))
		if o := r.owners[gid]; int(o.shard) != wantShard {
			t.Fatalf("insert %d routed to shard %d, want %d", i, o.shard, wantShard)
		}
	}
	oracle := od.NewEngine()
	e := r.NewEngine()
	for _, q := range workload(t, ds, 10) {
		want, err := oracle.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "insert", want, got)
	}
	st := r.Stats()
	if st.NextID != 150 {
		t.Fatalf("NextID = %d, want 150", st.NextID)
	}
}

// TestDeleteUnknown mirrors the dynamic index's delete contract.
func TestDeleteUnknown(t *testing.T) {
	ds := testDataset(t, 20)
	r, err := NewRouter(ds, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(999); err == nil {
		t.Fatal("deleting unknown ID succeeded")
	}
	if err := r.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(3); err != nil {
		t.Fatalf("re-delete not idempotent: %v", err)
	}
}

// TestQueryLB sanity-checks the planner's bound: zero inside a shard's
// bounds, positive outside, +Inf for an empty shard.
func TestQueryLB(t *testing.T) {
	ds := testDataset(t, 100)
	r, err := NewRouter(ds, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sh := r.Shard(0)
	b, has := sh.Bounds()
	if !has {
		t.Fatal("shard 0 empty")
	}
	inside := b.Center()
	if lb := sh.queryLB([]geo.Point{inside}); lb != 0 {
		t.Fatalf("inside point LB = %v", lb)
	}
	outside := geo.Point{X: b.MaxX + 10, Y: b.MaxY + 10}
	if lb := sh.queryLB([]geo.Point{outside}); lb <= 0 {
		t.Fatalf("outside point LB = %v", lb)
	}
	empty := &Shard{}
	if lb := empty.queryLB([]geo.Point{inside}); !math.IsInf(lb, 1) {
		t.Fatalf("empty shard LB = %v", lb)
	}
}

// TestCompactAllKeepsResults compacts every shard and re-checks exactness.
func TestCompactAllKeepsResults(t *testing.T) {
	ds := testDataset(t, 150)
	base := ds.Sample(120)
	base.Name = ds.Name
	r, err := NewRouter(base, Config{Shards: 3, Delta: delta.Config{CompactThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	od, err := delta.NewDynamic(base, delta.Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ds.Trajs[120:] {
		if _, err := r.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
		if _, err := od.Insert(trajectory.Trajectory{Pts: tr.Pts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if err := od.CompactNow(); err != nil {
		t.Fatal(err)
	}
	oracle := od.NewEngine()
	e := r.NewEngine()
	for _, q := range workload(t, ds, 10) {
		want, err := oracle.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SearchATSQ(q, 9)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "compacted", want, got)
	}
}

package shard

import (
	"context"

	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/subscribe"
	"activitytraj/internal/trajectory"
)

// routerBackend adapts a scatter-gather Engine to subscribe.Backend. The
// engine is owned by the hub's dispatcher goroutine exclusively.
type routerBackend struct{ e *Engine }

func (b routerBackend) Search(ctx context.Context, req query.Request) (query.Response, error) {
	return b.e.Search(ctx, req)
}

func (b routerBackend) Score(req query.Request, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, bool, error) {
	return b.e.ScoreOne(req, id, threshold, stats)
}

// shardObserver forwards one shard's mutation stream (shard-local IDs) into
// the hub, tagged with the shard index for global-ID resolution.
type shardObserver struct {
	h  *subscribe.Hub
	si int32
}

func (o shardObserver) OnInsert(id trajectory.TrajID, pts []geo.Point, acts trajectory.ActivitySet) {
	o.h.FeedInsert(o.si, id, pts, acts)
}

func (o shardObserver) OnDelete(id trajectory.TrajID) { o.h.FeedDelete(o.si, id) }

// NewHub builds a subscription hub over the sharded index: every shard's
// mutation observer feeds one hub, whose dispatcher resolves shard-local
// IDs through the router's global-ID maps and maintains each standing query
// with the scatter-gather engine (seeds and member-delete re-searches fan
// out across shards exactly like one-shot searches, so subscription top-ks
// stay byte-identical to a from-scratch search).
//
// Resolution is race-free: Router.Insert holds the shard's ID-map write
// lock from before the delta apply (where the observer fires) until after
// the global mapping is appended, so by the time the dispatcher can look a
// local ID up under the read lock, its mapping is in place. A missing
// mapping therefore only occurs for mutations that bypassed the router, and
// drops the event (subscribe.Stats.Dropped) instead of corrupting a top-k.
//
// Close detaches every shard observer. Options.Resolve and Options.Detach
// are overwritten.
func (r *Router) NewHub(opts subscribe.Options) *subscribe.Hub {
	opts.Resolve = func(si int32, local trajectory.TrajID) (trajectory.TrajID, bool) {
		sh := r.shards[si]
		sh.idmu.RLock()
		defer sh.idmu.RUnlock()
		if int(local) >= len(sh.globalIDs) {
			return 0, false
		}
		return sh.globalIDs[local], true
	}
	opts.Detach = func() {
		for _, sh := range r.shards {
			sh.d.SetObserver(nil)
		}
	}
	h := subscribe.New(routerBackend{e: r.NewEngine()}, opts)
	for si, sh := range r.shards {
		sh.d.SetObserver(shardObserver{h: h, si: int32(si)})
	}
	return h
}

package shard

import (
	"fmt"
	"slices"
	"sort"

	"activitytraj/internal/geo"
	"activitytraj/internal/grid"
	"activitytraj/internal/trajectory"
)

// Layout is the deterministic partition layout shared by every process that
// must agree on trajectory placement: the partition grid (origin, side,
// depth) plus the Z-curve cuts. Two processes holding equal layouts route
// every trajectory to the same shard index and derive identical per-shard
// sub-corpora from the same base dataset — the property the cluster tier
// relies on to boot shard-server replicas independently and still serve
// byte-identical global results.
//
// A Layout is immutable after construction; all methods are safe for
// concurrent use.
type Layout struct {
	depth  int
	origin geo.Point
	side   float64
	// cuts[i] is the first Z code owned by shard i+1; shard for a code is
	// the number of cuts at or below it.
	cuts []uint32
	pg   *grid.Grid
}

// NewLayout builds a layout from its persisted parameters (the shape stored
// in router.json manifests and cluster topology files). cuts must be
// non-decreasing; its length fixes the shard count at len(cuts)+1.
func NewLayout(partitionDepth int, origin geo.Point, side float64, cuts []uint32) (*Layout, error) {
	if partitionDepth < 1 || partitionDepth > 15 {
		return nil, fmt.Errorf("shard: partition depth %d out of range [1,15]", partitionDepth)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] < cuts[i-1] {
			return nil, fmt.Errorf("shard: layout cuts not sorted at %d", i)
		}
	}
	pg, err := grid.New(origin, side, partitionDepth)
	if err != nil {
		return nil, fmt.Errorf("shard: partition grid: %w", err)
	}
	return &Layout{
		depth:  partitionDepth,
		origin: origin,
		side:   side,
		cuts:   slices.Clone(cuts),
		pg:     pg,
	}, nil
}

// PlanLayout computes the partition layout for ds: a grid fitted to the
// corpus bounds and Z-curve cuts at near-equal trajectory counts, each cut
// advanced to the next Z change so one leaf cell is never split across
// shards (insert routing is by Z). Non-positive shards/partitionDepth
// select DefaultShards/DefaultPartitionDepth. The computation is a pure
// function of (ds, shards, partitionDepth) — replanning over the same base
// corpus reproduces the layout exactly.
func PlanLayout(ds *trajectory.Dataset, shards, partitionDepth int) (*Layout, error) {
	cfg := Config{Shards: shards, PartitionDepth: partitionDepth}.withDefaults()
	origin, side := grid.FitRegion(ds.Bounds(), 0.01)
	l, err := NewLayout(cfg.PartitionDepth, origin, side, nil)
	if err != nil {
		return nil, err
	}

	// Z code of every trajectory's representative (first) point, then the
	// corpus ordered along the curve.
	zs := make([]uint32, len(ds.Trajs))
	for i := range ds.Trajs {
		zs[i] = l.RepZ(ds.Trajs[i].Pts)
	}
	order := make([]int, len(ds.Trajs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if zs[a] != zs[b] {
			if zs[a] < zs[b] {
				return -1
			}
			return 1
		}
		return a - b
	})

	maxZ := l.MaxZ()
	k := cfg.Shards
	l.cuts = make([]uint32, 0, k-1)
	for i := 1; i < k; i++ {
		at := i * len(order) / k
		var cut uint32
		if at >= len(order) {
			cut = maxZ + 1 // past every code: the tail shards stay empty
		} else {
			cut = zs[order[at]]
			// A cut equal to the previous shard's first code would empty
			// this range retroactively; advance to the next distinct code.
			for at > 0 && zs[order[at-1]] == cut {
				at++
				if at >= len(order) {
					cut = maxZ + 1
					break
				}
				cut = zs[order[at]]
			}
		}
		if n := len(l.cuts); n > 0 && cut < l.cuts[n-1] {
			cut = l.cuts[n-1]
		}
		l.cuts = append(l.cuts, cut)
	}
	return l, nil
}

// NumShards returns K.
func (l *Layout) NumShards() int { return len(l.cuts) + 1 }

// PartitionDepth returns the grid level whose Z codes define shard ranges.
func (l *Layout) PartitionDepth() int { return l.depth }

// Origin returns the partition grid's origin corner.
func (l *Layout) Origin() geo.Point { return l.origin }

// Side returns the partition grid's side length.
func (l *Layout) Side() float64 { return l.side }

// Cuts returns a copy of the Z-curve cuts (len NumShards()-1).
func (l *Layout) Cuts() []uint32 { return slices.Clone(l.cuts) }

// Grid returns the compiled partition grid.
func (l *Layout) Grid() *grid.Grid { return l.pg }

// MaxZ returns the largest leaf Z code at the partition depth.
func (l *Layout) MaxZ() uint32 { return uint32(1)<<(2*uint(l.depth)) - 1 }

// LeafZ returns the partition-grid leaf Z code of a point.
func (l *Layout) LeafZ(p geo.Point) uint32 { return l.pg.CellAt(l.depth, p).Z }

// RepZ returns the Z code of a trajectory's representative (first) point;
// point-less trajectories map to code 0.
func (l *Layout) RepZ(pts []trajectory.Point) uint32 {
	if len(pts) == 0 {
		return 0
	}
	return l.LeafZ(pts[0].Loc)
}

// RouteZ returns the index of the shard owning leaf code z.
func (l *Layout) RouteZ(z uint32) int {
	return sort.Search(len(l.cuts), func(i int) bool { return l.cuts[i] > z })
}

// Route returns the index of the shard owning a trajectory with the given
// points (by its representative point's leaf cell).
func (l *Layout) Route(pts []trajectory.Point) int { return l.RouteZ(l.RepZ(pts)) }

// ZRange returns shard si's owned Z-code range [lo, hi) at the partition
// depth.
func (l *Layout) ZRange(si int) (lo, hi uint32) {
	if si > 0 {
		lo = l.cuts[si-1]
	}
	if si == len(l.cuts) {
		hi = l.MaxZ() + 1
	} else {
		hi = l.cuts[si]
	}
	return lo, hi
}

// SubDataset extracts shard si's sub-corpus from ds: the trajectories the
// layout routes to si, re-numbered with dense local IDs ascending in global
// ID (so shard-local (distance, ID) tie-breaks agree with global ones), plus
// the parallel local→global ID mapping. Point slices are shared with ds, not
// copied. Every process applying SubDataset to the same (ds, layout, si)
// derives the identical sub-corpus — the replica bootstrap contract.
func (l *Layout) SubDataset(ds *trajectory.Dataset, si int) (*trajectory.Dataset, []trajectory.TrajID) {
	sub := &trajectory.Dataset{
		Name:  fmt.Sprintf("%s/shard%d", ds.Name, si),
		Vocab: ds.Vocab,
	}
	var gids []trajectory.TrajID
	for gid := range ds.Trajs {
		if l.Route(ds.Trajs[gid].Pts) != si {
			continue
		}
		sub.Trajs = append(sub.Trajs, trajectory.Trajectory{
			ID:  trajectory.TrajID(len(sub.Trajs)),
			Pts: ds.Trajs[gid].Pts,
		})
		gids = append(gids, trajectory.TrajID(gid))
	}
	return sub, gids
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Engine serves exact global top-k queries over a Router's shards with a
// scatter-gather search. Like every engine in this library it is
// single-goroutine from the caller's side (it implements
// query.CloneableEngine, so wrap it with query.NewParallelEngine for
// concurrent serving); internally one search fans out across the planned
// shards, each on its own per-shard delta engine.
//
// Planning and bound sharing: the per-shard lower bound Σ MinDist(q_i,
// shard bounds) first selects the nearest shards (every shard the query's
// envelope intersects has bound 0). Those searches run concurrently,
// feeding one SharedTopK whose running k-th distance is broadcast back into
// each in-flight search (BoundSink), tightening their Algorithm-2
// termination bounds mid-flight. The remaining shards are then visited in
// ascending bound order and launched only while their bound does not exceed
// the global threshold — the query's reachable radius. Because the
// threshold is monotone non-increasing and every skipped shard's bound
// strictly exceeds it, skipped shards provably hold no top-k member, so
// results are exactly the single-index engine's.
type Engine struct {
	r     *Router
	subs  []*delta.Engine
	stats query.SearchStats
	plans []shardPlan // scratch, reused across searches
	locs  []geo.Point // scratch: query point locations
}

type shardPlan struct {
	si int
	lb float64
}

// NewEngine returns a scatter-gather engine over the router's shards.
func (r *Router) NewEngine() *Engine {
	subs := make([]*delta.Engine, len(r.shards))
	for i, sh := range r.shards {
		subs[i] = sh.d.NewEngine()
	}
	return &Engine{r: r, subs: subs}
}

// Name implements query.Engine.
func (e *Engine) Name() string { return fmt.Sprintf("GATx%d", len(e.r.shards)) }

// MemBytes implements query.Engine: the sum of the shard indexes.
func (e *Engine) MemBytes() int64 {
	var n int64
	for _, sub := range e.subs {
		n += sub.MemBytes()
	}
	return n
}

// LastStats implements query.Engine: the summed statistics of the last
// search's shard fan-out, plus the ShardsSearched/ShardsSkipped plan shape.
//
// Deprecated: read Response.Stats.
func (e *Engine) LastStats() query.SearchStats { return e.stats }

// SearchATSQ implements query.Engine over the sharded corpus.
//
// Deprecated: use Search.
func (e *Engine) SearchATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchOATSQ implements query.Engine over the sharded corpus.
//
// Deprecated: use Search.
func (e *Engine) SearchOATSQ(q query.Query, k int) ([]query.Result, error) {
	resp, err := e.Search(context.Background(), query.Request{Query: q, K: k, Ordered: true})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Search implements query.Engine over the sharded corpus. Planning honors
// the request's options: shards whose bounding rectangle misses req.Region
// are skipped outright, req.InitialBound caps the reachable radius from the
// first wave on (composing with the tightening global threshold), and ctx
// flows into every shard search — once it is cancelled or a shard fails,
// the sibling in-flight searches are cancelled too and return at their next
// batch boundary. On cancellation the global results gathered so far come
// back with Truncated set, alongside ctx's error.
func (e *Engine) Search(ctx context.Context, req query.Request) (query.Response, error) {
	q, k, ordered := req.Query, req.K, req.Ordered
	if err := q.Validate(); err != nil {
		return query.Response{}, err
	}
	if err := req.ValidateSpan(); err != nil {
		return query.Response{}, err
	}
	e.stats = query.SearchStats{}
	if err := ctx.Err(); err != nil {
		return query.Response{Truncated: true}, err
	}
	locs := e.locs[:0]
	for _, p := range q.Pts {
		locs = append(locs, p.Loc)
	}
	e.locs = locs

	plans := e.plans[:0]
	minLB := math.Inf(1)
	for si, sh := range e.r.shards {
		lb := sh.queryLB(locs)
		if req.Region != nil {
			// A shard disjoint from the region holds no point that may
			// match; plan it as unreachable.
			if b, ok := sh.Bounds(); !ok || !b.Intersects(*req.Region) {
				lb = math.Inf(1)
			}
		}
		plans = append(plans, shardPlan{si: si, lb: lb})
		if lb < minLB {
			minLB = lb
		}
	}
	e.plans = plans
	slices.SortFunc(plans, func(a, b shardPlan) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return a.si - b.si
		}
	})

	// Sub-searches share a derived context: the first failure (or the
	// caller hanging up) cancels every in-flight sibling shard search. The
	// join wrapper keeps the caller's cancellation visible to the polling
	// sub-searches directly (WithCancel alone propagates through a watcher
	// goroutine, a delay the per-batch Err() polls would not see).
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sctx := joinedCtx{Context: cctx, parent: ctx}

	bound := req.Bound()
	shared := query.NewSharedTopK(k)
	subReq := query.Request{
		Query: q, K: k, Ordered: ordered,
		InitialBound: req.InitialBound, Region: req.Region,
		Subtrajectory: req.Subtrajectory,
		MinSpanPoints: req.MinSpanPoints, MaxSpanPoints: req.MaxSpanPoints,
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		agg      query.SearchStats
		firstErr error
		searched int
	)
	run := func(si int) {
		searched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := e.searchShard(sctx, si, subReq, shared)
			mu.Lock()
			agg.Add(st)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				cancel()
			}
			mu.Unlock()
		}()
	}
	// effTh is the query's current reachable radius: the running global
	// k-th distance capped by the request's initial bound.
	effTh := func() float64 { return min(shared.Threshold(), bound) }

	// Wave 1: every shard at the minimum bound (all intersecting shards
	// when the query envelope overlaps any), unless the initial bound
	// already rules them out. Wave 2: the rest in ascending bound order,
	// pruned against the now-populated global threshold; the bounds are
	// sorted and the threshold only tightens, so the first over-threshold
	// shard ends the scan.
	i := 0
	if !math.IsInf(minLB, 1) && minLB <= bound {
		for ; i < len(plans) && plans[i].lb == minLB; i++ {
			run(plans[i].si)
		}
		wg.Wait()
		if firstErr == nil && sctx.Err() == nil {
			for ; i < len(plans); i++ {
				if math.IsInf(plans[i].lb, 1) || plans[i].lb > effTh() {
					break
				}
				run(plans[i].si)
			}
			wg.Wait()
		}
	}

	agg.ShardsSearched = searched
	agg.ShardsSkipped = len(plans) - searched
	e.stats = agg
	if firstErr == nil {
		// Cancellation between the waves skips wave-2 shards that may hold
		// better matches; the merge is then incomplete and must be reported
		// truncated, never as an exact success.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) && ctx.Err() != nil {
			// The cancellation came from the caller, not a shard fault:
			// report the caller's error with the partial merge.
			firstErr = ctx.Err()
		}
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			return query.Response{Results: shared.Results(), Stats: e.stats, Truncated: true}, firstErr
		}
		return query.Response{Stats: e.stats}, firstErr
	}
	resp := query.Response{Results: shared.Results(), Stats: e.stats}
	if req.WithMatches {
		ms, err := e.fillMatches(ctx, req, resp.Results)
		resp.Matches = ms
		if req.Subtrajectory {
			resp.Spans = query.SpansFromMatches(ms)
		}
		resp.Stats = e.stats
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Cancelled mid-fill: the matches are incomplete even though
				// the result set itself is final.
				resp.Truncated = true
			}
			return resp, err
		}
	}
	return resp, nil
}

// searchShard runs one shard's search with the shared bound attached,
// holding the shard's ID-map read lock for the duration so every
// trajectory the search can observe has its global mapping in place.
func (e *Engine) searchShard(ctx context.Context, si int, req query.Request, shared *query.SharedTopK) (query.SearchStats, error) {
	sh := e.r.shards[si]
	sub := e.subs[si]
	sh.idmu.RLock()
	defer sh.idmu.RUnlock()
	sub.SetBoundSink(&translatingSink{shared: shared, ids: sh.globalIDs})
	defer sub.SetBoundSink(nil)
	resp, err := sub.Search(ctx, req)
	return resp.Stats, err
}

// ScoreOne scores a single GLOBAL trajectory ID against req with an exact
// pruning threshold (see delta.Engine.ScoreOne): the ID is routed back to
// its owning shard, whose sub-engine scores the shard-local trajectory. ok
// is false for unknown IDs, recovery holes, tombstoned trajectories, and
// candidates the matcher abandoned for strictly exceeding threshold. The
// subscription hub's insert path uses it to test one trajectory against a
// standing query without a scatter-gather search.
func (e *Engine) ScoreOne(req query.Request, gid trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, bool, error) {
	si, local, ok := e.r.Owner(gid)
	if !ok {
		return 0, false, nil
	}
	return e.subs[si].ScoreOne(req, local, threshold, stats)
}

// fillMatches answers Request.WithMatches after the scatter-gather merge:
// each global result is routed back to its owning shard, whose sub-engine
// re-derives the matched point indexes from the shard-local trajectory
// under the request's Region and span options.
func (e *Engine) fillMatches(ctx context.Context, req query.Request, rs []query.Result) ([][][]int32, error) {
	out := make([][][]int32, len(rs))
	for i := range rs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		si, local, ok := e.r.Owner(rs[i].ID)
		if !ok {
			return out, fmt.Errorf("shard: result trajectory %d has no owner", rs[i].ID)
		}
		m, err := e.subs[si].Matches(req, local, &e.stats)
		if err != nil {
			return out, err
		}
		out[i] = m
	}
	return out, nil
}

// Clone implements query.CloneableEngine: an independent engine (fresh
// per-shard sub-engines) over the same shared router.
func (e *Engine) Clone() query.Engine { return e.r.NewEngine() }

// Epoch implements query.EpochSource via the router's composed per-shard
// mutation counter (see Router.Epoch).
func (e *Engine) Epoch() uint64 { return e.r.Epoch() }

// BatchKey implements query.BatchKeyer: the partition-grid Z code of the
// query's first point, so queries scattered to the same shards group
// together and their shard sub-searches reuse each other's faulted pages.
// The partition grid is coarser than each shard's leaf grid, but the Z
// codes still order spatially — enough for a locality hint.
func (e *Engine) BatchKey(q query.Query) uint64 {
	if len(q.Pts) == 0 {
		return 0
	}
	return uint64(e.r.layout.LeafZ(q.Pts[0].Loc))
}

// ResetCaches puts every shard's decoded-structure caches and buffer pool
// in the cold state (the harness calls this between measured runs).
func (e *Engine) ResetCaches() {
	for _, sh := range e.r.shards {
		sh.d.ResetCaches()
	}
}

var _ query.CloneableEngine = (*Engine)(nil)
var _ query.EpochSource = (*Engine)(nil)

// joinedCtx derives a cancellable context whose Err() also polls the
// parent lazily: sub-searches observe the caller's cancellation at their
// very next batch-boundary check, with no propagation goroutine in
// between. Done() is the derived context's channel — the engine's internal
// cancel fires it; selectors additionally watching the parent should
// select on the parent's Done themselves.
type joinedCtx struct {
	context.Context // the engine-owned cancel context (Done, Deadline, Value)
	parent          context.Context
}

func (j joinedCtx) Err() error {
	if err := j.parent.Err(); err != nil {
		return err
	}
	return j.Context.Err()
}

// translatingSink adapts a shard search's local result stream to the
// shared global top-k: local IDs are translated through the shard's
// (order-preserving) global-ID map before they reach the collector, so
// cross-shard (distance, ID) tie-breaks are decided on global IDs.
type translatingSink struct {
	shared *query.SharedTopK
	ids    []trajectory.TrajID
}

func (t *translatingSink) Offer(r query.Result) {
	// A result without a mapping can only come from a mutation that
	// bypassed the router; dropping it under-reports rather than panicking
	// inside a scatter goroutine and taking the whole server down.
	if int(r.ID) >= len(t.ids) {
		return
	}
	r.ID = t.ids[r.ID]
	t.shared.Offer(r)
}

func (t *translatingSink) Threshold() float64 { return t.shared.Threshold() }

package shard

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"activitytraj/internal/delta"
	"activitytraj/internal/geo"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Engine serves exact global top-k queries over a Router's shards with a
// scatter-gather search. Like every engine in this library it is
// single-goroutine from the caller's side (it implements
// query.CloneableEngine, so wrap it with query.NewParallelEngine for
// concurrent serving); internally one search fans out across the planned
// shards, each on its own per-shard delta engine.
//
// Planning and bound sharing: the per-shard lower bound Σ MinDist(q_i,
// shard bounds) first selects the nearest shards (every shard the query's
// envelope intersects has bound 0). Those searches run concurrently,
// feeding one SharedTopK whose running k-th distance is broadcast back into
// each in-flight search (BoundSink), tightening their Algorithm-2
// termination bounds mid-flight. The remaining shards are then visited in
// ascending bound order and launched only while their bound does not exceed
// the global threshold — the query's reachable radius. Because the
// threshold is monotone non-increasing and every skipped shard's bound
// strictly exceeds it, skipped shards provably hold no top-k member, so
// results are exactly the single-index engine's.
type Engine struct {
	r     *Router
	subs  []*delta.Engine
	stats query.SearchStats
	plans []shardPlan // scratch, reused across searches
	locs  []geo.Point // scratch: query point locations
}

type shardPlan struct {
	si int
	lb float64
}

// NewEngine returns a scatter-gather engine over the router's shards.
func (r *Router) NewEngine() *Engine {
	subs := make([]*delta.Engine, len(r.shards))
	for i, sh := range r.shards {
		subs[i] = sh.d.NewEngine()
	}
	return &Engine{r: r, subs: subs}
}

// Name implements query.Engine.
func (e *Engine) Name() string { return fmt.Sprintf("GATx%d", len(e.r.shards)) }

// MemBytes implements query.Engine: the sum of the shard indexes.
func (e *Engine) MemBytes() int64 {
	var n int64
	for _, sub := range e.subs {
		n += sub.MemBytes()
	}
	return n
}

// LastStats implements query.Engine: the summed statistics of the last
// search's shard fan-out, plus the ShardsSearched/ShardsSkipped plan shape.
func (e *Engine) LastStats() query.SearchStats { return e.stats }

// SearchATSQ implements query.Engine over the sharded corpus.
func (e *Engine) SearchATSQ(q query.Query, k int) ([]query.Result, error) {
	return e.search(q, k, false)
}

// SearchOATSQ implements query.Engine over the sharded corpus.
func (e *Engine) SearchOATSQ(q query.Query, k int) ([]query.Result, error) {
	return e.search(q, k, true)
}

func (e *Engine) search(q query.Query, k int, ordered bool) ([]query.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	locs := e.locs[:0]
	for _, p := range q.Pts {
		locs = append(locs, p.Loc)
	}
	e.locs = locs

	plans := e.plans[:0]
	minLB := math.Inf(1)
	for si, sh := range e.r.shards {
		lb := sh.queryLB(locs)
		plans = append(plans, shardPlan{si: si, lb: lb})
		if lb < minLB {
			minLB = lb
		}
	}
	e.plans = plans
	slices.SortFunc(plans, func(a, b shardPlan) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return a.si - b.si
		}
	})

	shared := query.NewSharedTopK(k)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		agg      query.SearchStats
		firstErr error
		searched int
	)
	run := func(si int) {
		searched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := e.searchShard(si, q, k, ordered, shared)
			mu.Lock()
			agg.Add(st)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}()
	}

	// Wave 1: every shard at the minimum bound (all intersecting shards
	// when the query envelope overlaps any). Wave 2: the rest in ascending
	// bound order, pruned against the now-populated global threshold; the
	// bounds are sorted and the threshold only tightens, so the first
	// over-threshold shard ends the scan.
	i := 0
	if !math.IsInf(minLB, 1) {
		for ; i < len(plans) && plans[i].lb == minLB; i++ {
			run(plans[i].si)
		}
		wg.Wait()
		if firstErr == nil {
			for ; i < len(plans); i++ {
				if math.IsInf(plans[i].lb, 1) || plans[i].lb > shared.Threshold() {
					break
				}
				run(plans[i].si)
			}
			wg.Wait()
		}
	}

	agg.ShardsSearched = searched
	agg.ShardsSkipped = len(plans) - searched
	e.stats = agg
	if firstErr != nil {
		return nil, firstErr
	}
	return shared.Results(), nil
}

// searchShard runs one shard's search with the shared bound attached,
// holding the shard's ID-map read lock for the duration so every
// trajectory the search can observe has its global mapping in place.
func (e *Engine) searchShard(si int, q query.Query, k int, ordered bool, shared *query.SharedTopK) (query.SearchStats, error) {
	sh := e.r.shards[si]
	sub := e.subs[si]
	sh.idmu.RLock()
	defer sh.idmu.RUnlock()
	sub.SetBoundSink(&translatingSink{shared: shared, ids: sh.globalIDs})
	defer sub.SetBoundSink(nil)
	var err error
	if ordered {
		_, err = sub.SearchOATSQ(q, k)
	} else {
		_, err = sub.SearchATSQ(q, k)
	}
	return sub.LastStats(), err
}

// Clone implements query.CloneableEngine: an independent engine (fresh
// per-shard sub-engines) over the same shared router.
func (e *Engine) Clone() query.Engine { return e.r.NewEngine() }

// ResetCaches puts every shard's decoded-structure caches and buffer pool
// in the cold state (the harness calls this between measured runs).
func (e *Engine) ResetCaches() {
	for _, sh := range e.r.shards {
		sh.d.ResetCaches()
	}
}

var _ query.CloneableEngine = (*Engine)(nil)

// translatingSink adapts a shard search's local result stream to the
// shared global top-k: local IDs are translated through the shard's
// (order-preserving) global-ID map before they reach the collector, so
// cross-shard (distance, ID) tie-breaks are decided on global IDs.
type translatingSink struct {
	shared *query.SharedTopK
	ids    []trajectory.TrajID
}

func (t *translatingSink) Offer(r query.Result) {
	r.ID = t.ids[r.ID]
	t.shared.Offer(r)
}

func (t *translatingSink) Threshold() float64 { return t.shared.Threshold() }

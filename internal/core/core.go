// Package core re-exports the GAT index and engine — the paper's primary
// contribution — under the repository's canonical layout. See package gat
// for the implementation.
package core

import (
	"io"

	"activitytraj/internal/evaluate"
	"activitytraj/internal/gat"
)

// Config is the GAT configuration (see gat.Config).
type Config = gat.Config

// Index is a built GAT index.
type Index = gat.Index

// Engine is the GAT search engine; it implements query.Engine.
type Engine = gat.Engine

// Build constructs a GAT index over a trajectory store.
func Build(ts *evaluate.TrajStore, cfg Config) (*Index, error) {
	return gat.Build(ts, cfg)
}

// NewEngine wraps a built index for searching.
func NewEngine(idx *Index) *Engine { return gat.NewEngine(idx) }

// Load reconstructs a persisted index (see Index.WriteTo).
func Load(r io.Reader, ts *evaluate.TrajStore) (*Index, error) { return gat.Load(r, ts) }

// MemLevelsForBudget applies the paper's HICL memory-budget rule.
func MemLevelsForBudget(budgetBytes int64, vocabSize, depth int) int {
	return gat.MemLevelsForBudget(budgetBytes, vocabSize, depth)
}

package core_test

import (
	"bytes"
	"testing"

	"activitytraj/internal/core"
	"activitytraj/internal/dataset"
	"activitytraj/internal/evaluate"
)

// TestFacade exercises the core package's re-exported surface: build,
// search, persist, reload, and the memory-budget rule.
func TestFacade(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Name: "core", Seed: 6, NumTrajectories: 150, NumVenues: 400,
		VocabSize: 200, RegionW: 20, RegionH: 20, Clusters: 4, TrajLenMean: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := evaluate.BuildTrajStore(ds, evaluate.TrajStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.Build(ts, core.Config{Depth: 6, MemLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf, ts)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(loaded)
	if e.Name() != "GAT" {
		t.Fatalf("name = %s", e.Name())
	}
	if h := core.MemLevelsForBudget(1<<20, 200, 8); h < 1 || h > 8 {
		t.Fatalf("budget levels = %d", h)
	}
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func appendCommitted(t *testing.T, l *Log, kind uint8, body []byte) uint64 {
	t.Helper()
	seq, err := l.Append(kind, body)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(seq); err != nil {
		t.Fatalf("commit %d: %v", seq, err)
	}
	return seq
}

func collect(t *testing.T, dir string) ([]Record, ReplayInfo) {
	t.Helper()
	var recs []Record
	info, err := Replay(nil, dir, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Kind: r.Kind, Data: bytes.Clone(r.Data)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		body := []byte(fmt.Sprintf("record-%d", i))
		kind := uint8(1 + i%2)
		seq := appendCommitted(t, l, kind, body)
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
		want = append(want, Record{Seq: seq, Kind: kind, Data: bytes.Clone(body)})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir)
	if info.Torn || info.Records != 100 || info.LastSeq != 100 {
		t.Fatalf("info %+v", info)
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, []byte("a"))
	appendCommitted(t, l, 1, []byte("b"))
	l.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if seq := appendCommitted(t, l2, 1, []byte("c")); seq != 3 {
		t.Fatalf("reopened log assigned seq %d, want 3", seq)
	}
	l2.Close()
	recs, info := collect(t, dir)
	if len(recs) != 3 || info.LastSeq != 3 || info.Torn {
		t.Fatalf("got %d records, info %+v", len(recs), info)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 60)
	for i := 0; i < 20; i++ {
		appendCommitted(t, l, 1, body)
	}
	segs, err := listSegments(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d: %v", len(segs), segs)
	}
	recs, info := collect(t, dir)
	if len(recs) != 20 || info.LastSeq != 20 {
		t.Fatalf("replay after rotation: %d records, info %+v", len(recs), info)
	}

	if err := l.Prune(10); err != nil {
		t.Fatal(err)
	}
	recs, info = collect(t, dir)
	if info.LastSeq != 20 {
		t.Fatalf("prune lost the tail: %+v", info)
	}
	// Everything surviving must be replayable and contiguous; the first
	// surviving record may be <= 10 (prune removes whole segments only).
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap after prune: %d -> %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	// Pruning everything keeps the newest segment: the log must never
	// forget its position.
	if err := l.Prune(100); err != nil {
		t.Fatal(err)
	}
	segs, _ = listSegments(OSFS(), dir)
	if len(segs) == 0 {
		t.Fatal("prune removed the final segment")
	}
	l.Close()
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if seq := appendCommitted(t, l2, 1, []byte("next")); seq != 21 {
		t.Fatalf("post-prune reopen assigned %d, want 21", seq)
	}
	l2.Close()
}

// TestTornTailTruncates simulates a crash mid-append by chopping bytes off
// the final segment: replay must deliver exactly the intact prefix and
// flag the tear, and reopening must repair the file.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		appendCommitted(t, l, 1, []byte(fmt.Sprintf("r%02d", i)))
	}
	l.Close()
	segs, _ := listSegments(OSFS(), dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 1; cut < 30; cut += 7 {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, info := collect(t, dir)
		if !info.Torn {
			t.Fatalf("cut %d: tear not reported: %+v", cut, info)
		}
		if len(recs) >= 10 {
			t.Fatalf("cut %d: torn record still replayed", cut)
		}
		for i, r := range recs {
			if want := fmt.Sprintf("r%02d", i); string(r.Data) != want {
				t.Fatalf("cut %d record %d: %q want %q", cut, i, r.Data, want)
			}
		}
		// Reopen repairs the tail and appends cleanly after it.
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		seq := appendCommitted(t, l2, 2, []byte("after-tear"))
		if seq != uint64(len(recs)+1) {
			t.Fatalf("cut %d: appended seq %d after %d surviving records", cut, seq, len(recs))
		}
		recs2, info2 := collect(t, dir)
		if info2.Torn || len(recs2) != len(recs)+1 {
			t.Fatalf("cut %d: after repair got %d records, info %+v", cut, len(recs2), info2)
		}
		// Restore the intact file for the next cut.
		os.Remove(filepath.Join(dir, segName(seq)))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptionInNonFinalSegmentFails: a bad CRC behind further segments
// is real data loss, not a torn tail, and must fail loudly.
func TestCorruptionInNonFinalSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		appendCommitted(t, l, 1, bytes.Repeat([]byte("y"), 40))
	}
	l.Close()
	segs, _ := listSegments(OSFS(), dir)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(nil, dir, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncGroup, SyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Sync: mode, GatherWindow: 100 * 1000})
			if err != nil {
				t.Fatal(err)
			}
			const writers, each = 8, 25
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						seq, err := l.Append(1, []byte(fmt.Sprintf("w%d-%d", w, i)))
						if err != nil {
							t.Errorf("append: %v", err)
							return
						}
						if err := l.Commit(seq); err != nil {
							t.Errorf("commit: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			l.Close()
			recs, info := collect(t, dir)
			if len(recs) != writers*each || info.Torn {
				t.Fatalf("got %d records, info %+v", len(recs), info)
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) {
					t.Fatalf("record %d has seq %d", i, r.Seq)
				}
			}
		})
	}
}

// TestOpenFirstSeqResumesEmptyLog: an empty log opened with FirstSeq
// resumes numbering there (the snapshot absorbed and pruned everything),
// while recovered records always win over FirstSeq.
func TestOpenFirstSeqResumesEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, FirstSeq: 43})
	if err != nil {
		t.Fatal(err)
	}
	if seq := appendCommitted(t, l, 1, []byte("a")); seq != 43 {
		t.Fatalf("empty log with FirstSeq 43 assigned seq %d", seq)
	}
	l.Close()

	l2, err := Open(Options{Dir: dir, FirstSeq: 99})
	if err != nil {
		t.Fatal(err)
	}
	if seq := appendCommitted(t, l2, 1, []byte("b")); seq != 44 {
		t.Fatalf("log with records ignored them for FirstSeq: assigned seq %d, want 44", seq)
	}
	l2.Close()

	recs, info := collect(t, dir)
	if len(recs) != 2 || recs[0].Seq != 43 || info.LastSeq != 44 || info.Torn {
		t.Fatalf("got %d records, info %+v", len(recs), info)
	}
}

// failReadDirFS fails every directory listing, modeling a transient I/O or
// permission error that must never make an existing log look empty.
type failReadDirFS struct {
	FS
	err error
}

func (f failReadDirFS) ReadDir(string) ([]string, error) { return nil, f.err }

func TestReadDirErrorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendCommitted(t, l, 1, []byte("a"))
	l.Close()

	boom := errors.New("transient io error")
	ffs := failReadDirFS{FS: OSFS(), err: boom}
	if _, err := Open(Options{Dir: dir, FS: ffs}); !errors.Is(err, boom) {
		t.Fatalf("Open with failing ReadDir = %v, want the listing error", err)
	}
	if _, err := Replay(ffs, dir, func(Record) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("Replay with failing ReadDir = %v, want the listing error", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"always": SyncAlways, "": SyncAlways, "group": SyncGroup,
		"batch": SyncGroup, "off": SyncOff, "never": SyncOff,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// FuzzWALDecode: arbitrary corruption or truncation of a valid log must
// never panic the reader, and every record it still yields must be an
// exact prefix record of the original sequence — nothing past, nothing
// altered (the CRC is what enforces this).
func FuzzWALDecode(f *testing.F) {
	dir := f.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOff})
	if err != nil {
		f.Fatal(err)
	}
	var orig []Record
	for i := 0; i < 8; i++ {
		body := bytes.Repeat([]byte{byte('a' + i)}, i*3+1)
		seq, err := l.Append(uint8(i%3), body)
		if err != nil {
			f.Fatal(err)
		}
		orig = append(orig, Record{Seq: seq, Kind: uint8(i % 3), Data: bytes.Clone(body)})
	}
	l.Close()
	segs, err := listSegments(OSFS(), dir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("segments: %v %v", segs, err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint32(0), uint8(0), len(valid))
	f.Add(uint32(7), uint8(0xff), len(valid)-3)
	f.Add(uint32(100), uint8(1), 10)
	f.Fuzz(func(t *testing.T, pos uint32, xor uint8, cut int) {
		mut := bytes.Clone(valid)
		if cut < 0 {
			cut = 0
		}
		if cut > len(mut) {
			cut = len(mut)
		}
		mut = mut[:cut]
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= xor
		}
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, segs[0]), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		_, err := Replay(nil, fdir, func(r Record) error {
			if n >= len(orig) {
				t.Fatalf("yielded record %d past the original %d", n, len(orig))
			}
			w := orig[n]
			if r.Seq != w.Seq || r.Kind != w.Kind || !bytes.Equal(r.Data, w.Data) {
				t.Fatalf("record %d mutated: got {%d %d %x} want {%d %d %x}",
					n, r.Seq, r.Kind, r.Data, w.Seq, w.Kind, w.Data)
			}
			n++
			return nil
		})
		// A single-segment log can only be torn, never ErrCorrupt.
		if err != nil {
			t.Fatalf("replay of corrupted single-segment log errored: %v", err)
		}
	})
}

// BenchmarkWALAppend documents the per-record cost of each sync mode on
// the benchmark host's filesystem (the ISSUE's durability bench).
func BenchmarkWALAppend(b *testing.B) {
	body := bytes.Repeat([]byte("p"), 256)
	for _, mode := range []SyncMode{SyncOff, SyncGroup, SyncAlways} {
		b.Run("sync="+mode.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(Options{Dir: dir, Sync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq, err := l.Append(1, body)
				if err != nil {
					b.Fatal(err)
				}
				if err := l.Commit(seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

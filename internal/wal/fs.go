package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the log (and the delta layer's
// snapshot/manifest machinery) writes through. The indirection exists for
// one reason: internal/faultfs wraps it to inject short writes, fsync
// errors and crash points deterministically, so recovery is tested against
// the failures it claims to survive. Production code uses OSFS.
//
// All paths are absolute or process-relative, exactly as for the os
// package.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname (both in the same
	// directory); it is the commit point of every multi-file update.
	Rename(oldname, newname string) error
	// SyncDir flushes dir's entries to stable storage. File creation and
	// rename mutate the directory, not the file, so fsyncing file data
	// alone does not make either survive a machine crash.
	SyncDir(dir string) error
}

// File is a writable log or snapshot file.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	Close() error
}

// osFS is the production FS over the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.Create(name)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes data to name via a temporary file and a rename, so
// readers only ever observe the old or the complete new content. The data
// is fsynced before the rename and the directory after it: when
// WriteFileAtomic returns nil the new content survives a machine crash and
// cannot be reordered after later directory operations.
func WriteFileAtomic(fsys FS, name string, write func(io.Writer) error) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(name))
}

// join is filepath.Join, aliased so every path the package builds goes
// through one place.
func join(parts ...string) string { return filepath.Join(parts...) }

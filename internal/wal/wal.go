// Package wal implements a checksummed, length-prefixed write-ahead log
// for index mutations: monotonic sequence numbers, segment rotation, a
// configurable fsync policy (per-record, batched group-commit, or off), and
// torn-tail tolerance — recovery truncates the log at the first bad CRC or
// short frame in the final segment instead of failing, because a crash mid
// write legitimately leaves exactly that state behind.
//
// On-disk layout: a directory of segment files named wal-<firstseq>.seg,
// each holding a 5-byte header (magic "ATWL", version) followed by frames
//
//	u32 payload length | u32 CRC-32C of payload | payload
//	payload = u64 sequence number | u8 record kind | body
//
// Sequence numbers start at 1 and increase by exactly 1 across segment
// boundaries; a gap, a bad CRC or a short frame anywhere but the tail of
// the final segment is corruption (ErrCorrupt), not a torn write.
//
// The log is fail-stop: after any write or fsync error every subsequent
// Append and Commit returns the first error, so a caller can never
// acknowledge a mutation whose durability is unknown.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects when Commit considers a record durable.
type SyncMode int

const (
	// SyncAlways fsyncs before every Commit returns: an acknowledged
	// mutation survives any crash. Concurrent committers still share one
	// fsync when their records were covered by it.
	SyncAlways SyncMode = iota
	// SyncGroup batches group-commits: Commit waits a short gather window
	// (Options.GatherWindow) so concurrent writers amortize one fsync, then
	// syncs. Acknowledged mutations still survive any crash; the trade is
	// per-mutation latency for throughput.
	SyncGroup
	// SyncOff never fsyncs. Records are written to the OS, so they survive
	// a process crash (SIGKILL) but not a machine crash. Fastest, weakest.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses "always", "group" or "off".
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "group", "batch":
		return SyncGroup, nil
	case "off", "never":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want always|group|off)", s)
}

// Options tunes a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncMode
	// SegmentBytes rotates to a new segment once the current one exceeds
	// it. 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// GatherWindow is SyncGroup's batching delay before an fsync. 0 selects
	// DefaultGatherWindow.
	GatherWindow time.Duration
	// FirstSeq, when > 1, is the sequence number the next Append assigns
	// if the log holds no records. A snapshot that absorbed and pruned the
	// whole log sets this to its last covered seq + 1, so numbering resumes
	// after the snapshot instead of restarting at 1 (which a later replay
	// would silently skip).
	FirstSeq uint64
	// FS overrides the filesystem; nil selects the real one. Tests inject
	// internal/faultfs here.
	FS FS
}

// DefaultSegmentBytes is the default segment rotation size.
const DefaultSegmentBytes = 16 << 20

// DefaultGatherWindow is SyncGroup's default batching delay.
const DefaultGatherWindow = 2 * time.Millisecond

// ErrCorrupt reports corruption that torn-tail tolerance cannot excuse: a
// bad frame anywhere except the tail of the final segment.
var ErrCorrupt = errors.New("wal: corrupt log")

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	segMagic   = "ATWL"
	segVersion = 1
	headerLen  = len(segMagic) + 1
	frameHdr   = 8       // u32 length + u32 crc
	maxPayload = 1 << 28 // 256 MiB; anything larger is corruption
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged mutation.
type Record struct {
	Seq  uint64
	Kind uint8
	Data []byte
}

// Log is an append-only write-ahead log. Append and Commit are safe for
// concurrent use; Append assigns sequence numbers in call order.
type Log struct {
	fsys     FS
	dir      string
	mode     SyncMode
	segBytes int64
	gather   time.Duration

	mu       sync.Mutex
	f        File   // current segment, nil until the first append (lazy)
	fsize    int64  // bytes written to f
	nextSeq  uint64 // seq the next Append assigns
	appended uint64 // last seq written to the OS
	synced   uint64 // last seq known durable
	err      error  // sticky: first write/sync failure, fails everything after
	closed   bool
	scratch  []byte

	// syncMu is the group-commit door: one fsync in flight at a time, and
	// every committer whose record it covered rides along for free.
	syncMu sync.Mutex
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.GatherWindow <= 0 {
		o.GatherWindow = DefaultGatherWindow
	}
	return o
}

// Open opens (or creates) the log in opts.Dir for appending. A torn tail
// left by a crash is repaired first — the final segment is truncated to its
// last intact frame — so appends never land after garbage. Open does not
// replay records; call Replay first to rebuild state.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{
		fsys:     opts.FS,
		dir:      opts.Dir,
		mode:     opts.Sync,
		segBytes: opts.SegmentBytes,
		gather:   opts.GatherWindow,
		nextSeq:  1,
	}
	segs, err := listSegments(opts.FS, opts.Dir)
	if err != nil {
		return nil, err
	}
	// Find the last intact record, repairing torn tails backwards: a crash
	// can leave the final segment empty or entirely garbage, in which case
	// the previous segment holds the tail.
	found := false
	for len(segs) > 0 {
		name := segs[len(segs)-1]
		scan, err := scanSegment(opts.FS, opts.Dir, name, nil)
		if err != nil {
			return nil, err
		}
		if scan.torn {
			if err := truncateSegment(opts.FS, opts.Dir, name, scan.validBytes, scan.records); err != nil {
				return nil, fmt.Errorf("wal: repair torn tail of %s: %w", name, err)
			}
		}
		if scan.records > 0 {
			l.nextSeq = scan.lastSeq + 1
			found = true
			break
		}
		segs = segs[:len(segs)-1]
	}
	if !found && opts.FirstSeq > 1 {
		l.nextSeq = opts.FirstSeq
	}
	l.appended = l.nextSeq - 1
	l.synced = l.appended
	return l, nil
}

// Append writes one record and returns its sequence number. The record is
// NOT durable yet — pair every Append with a Commit on the returned
// sequence number once the in-memory application is done; the split lets
// concurrent writers share fsyncs (group commit).
func (l *Log) Append(kind uint8, body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	seq := l.nextSeq
	frame := appendFrame(l.scratch[:0], seq, kind, body)
	l.scratch = frame[:0]

	if l.f != nil && l.fsize+int64(len(frame)) > l.segBytes && l.fsize > int64(headerLen) {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if l.f == nil {
		f, err := l.fsys.Create(join(l.dir, segName(seq)))
		if err != nil {
			l.err = fmt.Errorf("wal: create segment: %w", err)
			return 0, l.err
		}
		// The new segment's directory entry must be durable before any
		// record in it can be acknowledged; fsyncing the file alone leaves
		// the file unreachable after a machine crash.
		if err := l.fsys.SyncDir(l.dir); err != nil {
			l.err = fmt.Errorf("wal: sync segment dir: %w", err)
			f.Close()
			return 0, l.err
		}
		if _, err := f.Write(segHeader()); err != nil {
			l.err = fmt.Errorf("wal: segment header: %w", err)
			f.Close()
			return 0, l.err
		}
		l.f = f
		l.fsize = int64(headerLen)
	}
	// One Write per frame: a crash mid-call leaves exactly the torn tail
	// recovery is built to truncate.
	if _, err := l.f.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	l.fsize += int64(len(frame))
	l.nextSeq++
	l.appended = seq
	return seq, nil
}

// rotateLocked seals the current segment (fsync + close, so every record in
// it is durable before the file is abandoned) and arms lazy creation of the
// next one. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: rotate sync: %w", err)
		return l.err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: rotate close: %w", err)
		return l.err
	}
	l.synced = l.appended
	l.f = nil
	l.fsize = 0
	return nil
}

// Commit blocks until the record with the given sequence number is durable
// under the configured sync policy and returns the sticky error if the log
// has failed. With SyncOff it returns immediately.
func (l *Log) Commit(seq uint64) error {
	l.mu.Lock()
	if l.err != nil && l.synced < seq {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.mode == SyncOff || l.synced >= seq {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	if l.mode == SyncGroup {
		// Gather window: let concurrent writers append before one fsync
		// covers the whole batch.
		time.Sleep(l.gather)
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.synced >= seq {
		l.mu.Unlock()
		return nil
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	f, target := l.f, l.appended
	l.mu.Unlock()
	var err error
	if f != nil {
		err = f.Sync()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		if target > l.synced {
			l.synced = target
		}
		return nil
	}
	if l.synced >= seq {
		// A rotation or Close sealed the segment holding seq between our
		// capture and the fsync; the record is durable, the stale handle's
		// error is not ours to report.
		return nil
	}
	l.err = fmt.Errorf("wal: sync: %w", err)
	return l.err
}

// LastSeq returns the sequence number of the most recently appended record
// (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Close seals the log: outstanding records are fsynced and the current
// segment is closed. Appends after Close fail.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return l.err
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: close: %w", err)
		}
		return l.err
	}
	l.synced = l.appended
	return nil
}

// Prune removes whole segments every record of which has sequence number
// <= upTo (typically the snapshot's last applied seq). The newest segment
// is always kept, so the log never forgets its position.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.fsys, l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		next, err := segFirstSeq(segs[i+1])
		if err != nil {
			return err
		}
		if next > upTo+1 {
			break
		}
		if err := l.fsys.Remove(join(l.dir, segs[i])); err != nil {
			return fmt.Errorf("wal: prune %s: %w", segs[i], err)
		}
	}
	return nil
}

// ReplayInfo describes what a Replay recovered.
type ReplayInfo struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of records delivered to the callback.
	Records int64
	// LastSeq is the final delivered record's sequence number (0 if none).
	LastSeq uint64
	// Torn reports that the final segment ended in a bad or short frame and
	// replay truncated there (the signature of a crash mid-append).
	Torn bool
	// TornSegment names the truncated segment when Torn.
	TornSegment string
}

// Replay streams every record in dir to fn in sequence order. A bad frame
// at the tail of the final segment truncates the replay there (Torn); a bad
// frame anywhere else is ErrCorrupt. A missing directory replays nothing.
// fn's Record.Data is only valid during the call.
func Replay(fsys FS, dir string, fn func(Record) error) (ReplayInfo, error) {
	if fsys == nil {
		fsys = OSFS()
	}
	var info ReplayInfo
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return info, err
	}
	info.Segments = len(segs)
	expect := uint64(0) // first segment's name fixes the starting seq
	for i, name := range segs {
		first, err := segFirstSeq(name)
		if err != nil {
			return info, err
		}
		if expect != 0 && first != expect {
			return info, fmt.Errorf("%w: segment %s does not continue seq %d", ErrCorrupt, name, expect)
		}
		last := i == len(segs)-1
		scan, err := scanSegment(fsys, dir, name, func(r Record) error {
			info.Records++
			info.LastSeq = r.Seq
			return fn(r)
		})
		if err != nil {
			return info, err
		}
		if scan.torn {
			if !last {
				return info, fmt.Errorf("%w: segment %s is torn but not final", ErrCorrupt, name)
			}
			info.Torn = true
			info.TornSegment = name
			return info, nil
		}
		if scan.records > 0 {
			expect = scan.lastSeq + 1
			continue
		}
		// A record-less segment can only be a crash's leftovers at the very
		// end of the log (lazy creation writes the first frame right after
		// the header); anywhere else it hides a lost tail.
		if !last {
			return info, fmt.Errorf("%w: empty segment %s is not final", ErrCorrupt, name)
		}
	}
	return info, nil
}

type segScan struct {
	records    int64
	lastSeq    uint64
	validBytes int64 // header + intact frames
	torn       bool
}

// scanSegment reads one segment, verifying frame CRCs and seq contiguity
// (each record's seq must be exactly previous+1, and the first must match
// the segment's name). Any anomaly stops the scan with torn=true; the
// caller decides whether torn is tolerable (final segment) or ErrCorrupt.
func scanSegment(fsys FS, dir, name string, fn func(Record) error) (segScan, error) {
	var s segScan
	first, err := segFirstSeq(name)
	if err != nil {
		return s, err
	}
	f, err := fsys.Open(join(dir, name))
	if err != nil {
		return s, fmt.Errorf("wal: open %s: %w", name, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		s.torn = true // shorter than a header: crash before the magic landed
		return s, nil
	}
	if string(hdr[:len(segMagic)]) != segMagic || hdr[len(segMagic)] != segVersion {
		s.torn = true
		return s, nil
	}
	s.validBytes = int64(headerLen)

	var fh [frameHdr]byte
	buf := make([]byte, 0, 4096)
	expect := first
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF {
				return s, nil // clean end at a frame boundary
			}
			s.torn = true
			return s, nil
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		crc := binary.LittleEndian.Uint32(fh[4:8])
		if plen < 9 || plen > maxPayload {
			s.torn = true
			return s, nil
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		payload := buf[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			s.torn = true
			return s, nil
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			s.torn = true
			return s, nil
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		if seq != expect {
			s.torn = true
			return s, nil
		}
		rec := Record{Seq: seq, Kind: payload[8], Data: payload[9:]}
		if fn != nil {
			if err := fn(rec); err != nil {
				return s, err
			}
		}
		s.records++
		s.lastSeq = seq
		s.validBytes += int64(frameHdr) + int64(plen)
		expect++
	}
}

// truncateSegment rewrites a torn segment to its intact prefix (atomically,
// via a temp file), or removes it entirely when no frame survived.
func truncateSegment(fsys FS, dir, name string, validBytes int64, records int64) error {
	path := join(dir, name)
	if records == 0 {
		return fsys.Remove(path)
	}
	src, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	return WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := io.Copy(w, io.LimitReader(src, validBytes))
		return err
	})
}

func segHeader() []byte { return append([]byte(segMagic), segVersion) }

func appendFrame(dst []byte, seq uint64, kind uint8, body []byte) []byte {
	plen := 8 + 1 + len(body)
	dst = slices.Grow(dst, frameHdr+plen)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, kind)
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[frameHdr:], castagnoli)
	binary.LittleEndian.PutUint32(dst[4:8], crc)
	return dst
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func segFirstSeq(name string) (uint64, error) {
	mid, ok := strings.CutPrefix(name, segPrefix)
	if !ok {
		return 0, fmt.Errorf("wal: not a segment name: %q", name)
	}
	mid, ok = strings.CutSuffix(mid, segSuffix)
	if !ok {
		return 0, fmt.Errorf("wal: not a segment name: %q", name)
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: bad segment name %q: %w", name, err)
	}
	return n, nil
}

// listSegments returns dir's segment file names sorted by first seq. A
// missing directory lists empty; any other listing error is returned, so a
// transient I/O or permission failure can never make an existing log look
// empty. Foreign files are ignored.
func listSegments(fsys FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // no directory yet: an empty log
	}
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	segs := names[:0]
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segs = append(segs, n)
		}
	}
	slices.SortFunc(segs, func(a, b string) int {
		sa, ea := segFirstSeq(a)
		sb, eb := segFirstSeq(b)
		if ea != nil || eb != nil {
			return strings.Compare(a, b)
		}
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return 0
	})
	return segs, nil
}

// ListSegments returns the log directory's segment file names in ascending
// first-seq order (empty when the directory does not exist). Replication
// ships these files verbatim: together with SegmentFirstSeq it lets a
// cluster node select which segment files cover a follower's missing
// suffix without opening the log.
func ListSegments(fsys FS, dir string) ([]string, error) {
	return listSegments(fsys, dir)
}

// SegmentFirstSeq parses the first sequence number a segment file name
// encodes (the name fixes where its records start — the property Replay
// relies on, and what makes a shipped subset of segments replayable).
func SegmentFirstSeq(name string) (uint64, error) {
	return segFirstSeq(name)
}

package evaluate

import (
	"context"
	"errors"
	"slices"

	"activitytraj/internal/geo"
	"activitytraj/internal/matcher"
	"activitytraj/internal/query"
	"activitytraj/internal/sketch"
	"activitytraj/internal/trajectory"
)

// DeltaSource supplies in-memory trajectory data for IDs beyond the base
// TrajStore — freshly ingested trajectories that have not been compacted
// into the immutable store yet. Implementations must be safe to read for
// the duration of a search (the dynamic index holds its write lock off
// while searches run).
type DeltaSource interface {
	// TAS returns the activity sketch of trajectory id (nil when the
	// trajectory is unknown or has no activities).
	TAS(id trajectory.TrajID) sketch.Sketch
	// Postings returns the ascending point indexes of trajectory id that
	// carry activity a, nil when absent.
	Postings(id trajectory.TrajID, a trajectory.ActivityID) []uint32
	// Coords returns the point locations of trajectory id.
	Coords(id trajectory.TrajID) []geo.Point
}

// Outcome classifies what happened to a candidate during evaluation.
type Outcome int

const (
	// Scored: the candidate passed validation and its distance was computed
	// (the distance may still be +Inf if it exceeded the pruning threshold
	// or, for OATSQ, no order-compliant match exists).
	Scored Outcome = iota
	// RejectedSketch: the TAS did not cover the query activities.
	RejectedSketch
	// RejectedAPL: the fetched APL is missing a query activity.
	RejectedAPL
	// RejectedOrder: the MIB filter proved no order-sensitive match exists.
	RejectedOrder
)

// Evaluator validates candidate trajectories and computes their match
// distances, charging disk reads to the shared TrajStore. It owns matcher,
// row-building and decode scratch space — reused across candidates so the
// scoring hot path allocates nothing once warm — and is not safe for
// concurrent use; each search goroutine owns one.
type Evaluator struct {
	ts *TrajStore
	m  matcher.Matcher
	// UseSketch enables the TAS pre-filter (GAT and the tree baselines use
	// it; IL's candidates come pre-validated by construction).
	UseSketch bool

	// delta, when set, serves candidates whose ID is at or beyond the base
	// store's trajectory count from memory instead of disk. deltaID and
	// deltaFn adapt DeltaSource.Postings to RowBuilder's per-activity
	// callback without allocating a closure per candidate.
	delta   DeltaSource
	deltaID trajectory.TrajID
	deltaFn func(a trajectory.ActivityID) []uint32

	// curAPL and aplFn adapt the current candidate's lazily-decoded APL to
	// RowBuilder's per-activity callback without a per-candidate closure;
	// prepare pre-decodes every query activity, so aplFn only reads
	// memoized blocks.
	curAPL *APL
	aplFn  func(a trajectory.ActivityID) []uint32

	// region, when non-nil, restricts matching spatially: candidate rows
	// are filtered to trajectory points inside it right after row build, so
	// out-of-region points can never satisfy a query activity. Engines set
	// it per search (SetRegion).
	region *geo.Rect

	// sub/minSpan/maxSpan select subtrajectory scoring: a candidate's
	// distance becomes the minimum over contiguous point spans of the
	// allowed length instead of the whole trajectory. Engines set them per
	// search (SetSpan), mirroring SetRegion.
	sub              bool
	minSpan, maxSpan int

	rb        matcher.RowBuilder
	coordsBuf []geo.Point
	blobBuf   []byte
	actLists  [][]uint32 // per query activity: decoded postings (scratch)
	mergePos  []int      // k-way merge cursors (scratch)
	needIdx   []uint32   // union of needed point indexes (scratch)
	sortKeys  []uint64   // batch locality sort keys (scratch)
	// allActs memoizes q.AllActs() for the query whose Pts backing array is
	// allActsPts: engines score many candidates against one query, and the
	// union does not change between them.
	allActsPts []query.Point
	allActs    trajectory.ActivitySet
}

// NewEvaluator returns an evaluator over ts with the sketch filter enabled.
func NewEvaluator(ts *TrajStore) *Evaluator {
	return &Evaluator{ts: ts, UseSketch: true}
}

// Store returns the underlying TrajStore.
func (e *Evaluator) Store() *TrajStore { return e.ts }

// SetDelta attaches a delta source: candidates with IDs at or beyond the
// base store's trajectory count are validated and scored from it, entirely
// in memory. Pass nil to detach.
func (e *Evaluator) SetDelta(d DeltaSource) {
	e.delta = d
	if d != nil && e.deltaFn == nil {
		e.deltaFn = func(a trajectory.ActivityID) []uint32 {
			return e.delta.Postings(e.deltaID, a)
		}
	}
}

// SetRegion attaches (nil detaches) the spatial match filter for the next
// searches: only trajectory points inside r may match query points. Engines
// call this at the start of every search with the request's Region, so a
// previous request's filter can never leak.
func (e *Evaluator) SetRegion(r *geo.Rect) { e.region = r }

// SetSpan installs (sub=false clears) subtrajectory scoring for the next
// searches: candidate distances become the minimum over contiguous point
// spans with minSpan <= length <= maxSpan (0 = unlimited). Engines call
// this at the start of every search with the request's span options, so a
// previous request's mode can never leak.
func (e *Evaluator) SetSpan(sub bool, minSpan, maxSpan int) {
	e.sub, e.minSpan, e.maxSpan = sub, minSpan, maxSpan
}

// filterRegion drops out-of-region points from every row, in place. coords
// is indexable by the rows' trajectory point indexes.
func (e *Evaluator) filterRegion(rows []matcher.QueryRow, coords []geo.Point) {
	for ri := range rows {
		row := &rows[ri]
		w := 0
		for i, idx := range row.Idx {
			if !e.region.ContainsPoint(coords[idx]) {
				continue
			}
			row.Idx[w] = idx
			row.Dist[w] = row.Dist[i]
			row.Mask[w] = row.Mask[i]
			w++
		}
		row.Idx = row.Idx[:w]
		row.Dist = row.Dist[:w]
		row.Mask = row.Mask[:w]
	}
}

// ScoreATSQ validates candidate id against q and, if valid, returns its
// minimum match distance Dmm (computations abandoning past threshold return
// +Inf). The stats argument is updated with the outcome.
func (e *Evaluator) ScoreATSQ(q query.Query, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, Outcome, error) {
	rows, n, out, err := e.prepare(q, id, stats)
	if out != Scored || err != nil {
		return matcher.Inf, out, err
	}
	stats.Scored++
	if e.sub {
		return e.m.MinMatchSpan(n, rows, e.minSpan, e.maxSpan, threshold), Scored, nil
	}
	return e.m.MinMatch(rows, threshold), Scored, nil
}

// ScoreOATSQ is ScoreATSQ for the order-sensitive distance Dmom. Before the
// dynamic program it applies the MIB order filter of Section VI-B and the
// Lemma 3 bound: Dmm lower-bounds Dmom, so a candidate whose (much cheaper)
// minimum match distance already exceeds the pruning threshold cannot enter
// the top-k and skips Algorithm 4 entirely.
func (e *Evaluator) ScoreOATSQ(q query.Query, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, Outcome, error) {
	rows, n, out, err := e.prepare(q, id, stats)
	if out != Scored || err != nil {
		return matcher.Inf, out, err
	}
	if !matcher.CheckMIB(rows) {
		stats.OrderRejected++
		return matcher.Inf, RejectedOrder, nil
	}
	if e.sub {
		// The span-unordered distance lower-bounds the span-ordered one
		// (Lemma 3 applies window by window), so it is the prefilter here.
		if e.m.MinMatchSpan(n, rows, e.minSpan, e.maxSpan, threshold) == matcher.Inf {
			stats.Scored++
			return matcher.Inf, Scored, nil
		}
		stats.Scored++
		return e.m.MinOrderMatchSpan(n, rows, e.minSpan, e.maxSpan, threshold), Scored, nil
	}
	if e.m.MinMatch(rows, threshold) == matcher.Inf {
		stats.Scored++
		return matcher.Inf, Scored, nil
	}
	stats.Scored++
	return e.m.MinOrderMatch(n, rows, threshold), Scored, nil
}

// prepare runs the shared validation pipeline: TAS check (memory), APL
// header fetch + containment check (cached/disk, header pages only),
// lazy posting-block decode for the query activities, sparse coordinate
// fetch (only pages holding needed points), row build. It returns the
// candidate rows and the trajectory length. The rows alias evaluator
// scratch and are valid until the next prepare.
//
// Disk and cache traffic is attributed to stats here, at the point of the
// fetch, rather than by diffing the shared pool/cache counters: local
// attribution stays exact when many searches run concurrently over the
// same store.
func (e *Evaluator) prepare(q query.Query, id trajectory.TrajID, stats *query.SearchStats) ([]matcher.QueryRow, int, Outcome, error) {
	all := e.queryActs(q)
	if e.delta != nil && int(id) >= e.ts.NumTrajs() {
		return e.prepareDelta(q, id, all, stats)
	}
	if e.UseSketch {
		if !e.ts.TAS(id).CoversAll(all) {
			stats.SketchRejected++
			return nil, 0, RejectedSketch, nil
		}
	}
	apl, blob, err := e.ts.fetchAPL(id, stats, e.blobBuf)
	e.blobBuf = blob
	if err != nil {
		return nil, 0, Scored, err
	}
	// Containment over the header's activity set: a reject never reads or
	// decodes a posting block.
	for _, a := range all {
		if !apl.Has(a) {
			stats.APLRejected++
			stats.HeaderOnlyRejects++
			return nil, 0, RejectedAPL, nil
		}
	}
	// Decode exactly the query activities' blocks (memoized on the shared
	// APL) and collect the union of point indexes the rows will touch.
	e.actLists = e.actLists[:0]
	for _, a := range all {
		list, err := apl.postings(a, stats)
		if err != nil {
			return nil, 0, Scored, err
		}
		e.actLists = append(e.actLists, list)
	}
	e.needIdx = mergeUnique(e.needIdx[:0], e.actLists, &e.mergePos)
	coords, scratch, err := e.ts.fetchCoordsSparse(id, e.needIdx, e.coordsBuf, stats)
	e.coordsBuf = scratch
	if err != nil {
		return nil, 0, Scored, err
	}
	e.curAPL = apl
	if e.aplFn == nil {
		e.aplFn = func(a trajectory.ActivityID) []uint32 {
			return e.curAPL.cachedPostings(a)
		}
	}
	rows := e.rb.Build(q.Pts, e.aplFn, coords)
	if e.region != nil {
		e.filterRegion(rows, coords)
	}
	return rows, e.ts.NumPoints(id), Scored, nil
}

// MatchSets re-derives, for an already-scored result, which trajectory
// points of id form its minimal match: one ascending index list per query
// point. It re-runs the candidate pipeline (fetch traffic is charged to
// stats), so it is meant for the final top-k only, never per candidate. The
// returned slices are freshly allocated. A candidate that no longer
// validates (it should not happen for a trajectory a search just scored)
// returns nil.
func (e *Evaluator) MatchSets(q query.Query, id trajectory.TrajID, ordered bool, stats *query.SearchStats) ([][]int32, error) {
	rows, n, out, err := e.prepare(q, id, stats)
	if out != Scored || err != nil {
		return nil, err
	}
	var covers [][]int32
	switch {
	case e.sub && ordered:
		_, covers = e.m.MinOrderMatchSpanCover(n, rows, e.minSpan, e.maxSpan)
	case e.sub:
		_, covers = e.m.MinMatchSpanCover(n, rows, e.minSpan, e.maxSpan)
	case ordered:
		_, covers = e.m.MinOrderMatchCover(n, rows)
	default:
		_, covers = e.m.MinMatchCover(rows)
	}
	return covers, nil
}

// MatchSetsAll answers Request.WithMatches for a whole result slice: one
// MatchSets call per result, honoring ctx between results. The returned
// slice is parallel to rs; on error it carries whatever was resolved so
// far.
func (e *Evaluator) MatchSetsAll(ctx context.Context, q query.Query, ordered bool, rs []query.Result, stats *query.SearchStats) ([][][]int32, error) {
	out := make([][][]int32, len(rs))
	for i := range rs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		m, err := e.MatchSets(q, rs[i].ID, ordered, stats)
		if err != nil {
			return out, err
		}
		out[i] = m
	}
	return out, nil
}

// FillMatches is the WithMatches epilogue every engine shares: resolve the
// covers for resp.Results, install them with the updated stats, and — when
// the context expired or was cancelled mid-fill — mark the response
// Truncated so partially-filled matches are never presented as a complete
// answer.
func (e *Evaluator) FillMatches(ctx context.Context, q query.Query, ordered bool, resp *query.Response, stats *query.SearchStats) error {
	ms, err := e.MatchSetsAll(ctx, q, ordered, resp.Results, stats)
	resp.Matches = ms
	if e.sub {
		resp.Spans = query.SpansFromMatches(ms)
	}
	resp.Stats = *stats
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			resp.Truncated = true
		}
		return err
	}
	return nil
}

// mergeUnique appends the ascending union of the ascending lists to dst.
// pos is cursor scratch, grown as needed.
func mergeUnique(dst []uint32, lists [][]uint32, pos *[]int) []uint32 {
	p := (*pos)[:0]
	for range lists {
		p = append(p, 0)
	}
	*pos = p
	for {
		min := uint32(0)
		found := false
		for b, l := range lists {
			if c := p[b]; c < len(l) && (!found || l[c] < min) {
				min = l[c]
				found = true
			}
		}
		if !found {
			return dst
		}
		for b, l := range lists {
			if c := p[b]; c < len(l) && l[c] == min {
				p[b]++
			}
		}
		dst = append(dst, min)
	}
}

// PrefetchBatch reorders ids in place so candidates are scored in APL page
// order (delta-resident candidates, which cost no disk, go last in ID
// order) and warms the buffer pool with the header pages of the APLs that
// are not already decoded in the cache — one ascending readahead sweep
// instead of heap-pop-order point reads. Scoring order does not affect
// results: the top-k set under (distance, ID) is order-independent, so
// engines are free to batch for locality.
func (e *Evaluator) PrefetchBatch(ids []trajectory.TrajID) {
	if len(ids) < 2 {
		if len(ids) == 1 && int(ids[0]) < e.ts.NumTrajs() && !e.ts.APLCached(ids[0]) {
			e.ts.PrefetchAPLHeader(ids[0])
		}
		return
	}
	e.sortByAPLPage(ids)
	e.prefetchHeadersSorted(ids)
}

// PrefetchHeaders warms the buffer pool with the APL header pages of ids —
// the cross-query superbatch variant of PrefetchBatch: the caller passes
// the union of several co-located queries' likely candidates, and the
// shared pages fault once here instead of once per query. ids is reordered
// in place (page order, delta candidates last) and may contain duplicates;
// the readahead is purely a pool hint and changes no search's results or
// accounting.
func (e *Evaluator) PrefetchHeaders(ids []trajectory.TrajID) {
	if len(ids) == 0 {
		return
	}
	if len(ids) == 1 {
		if int(ids[0]) < e.ts.NumTrajs() && !e.ts.APLCached(ids[0]) {
			e.ts.PrefetchAPLHeader(ids[0])
		}
		return
	}
	e.sortByAPLPage(ids)
	e.prefetchHeadersSorted(ids)
}

// sortByAPLPage reorders ids in place into APL page order, with
// delta-resident candidates (which cost no disk) last in ID order. It
// reuses the evaluator's sort-key scratch.
func (e *Evaluator) sortByAPLPage(ids []trajectory.TrajID) {
	baseN := e.ts.NumTrajs()
	keys := e.sortKeys[:0]
	for _, id := range ids {
		page := ^uint32(0) // delta candidates sort last
		if int(id) < baseN {
			page = e.ts.APLPage(id)
		}
		keys = append(keys, uint64(page)<<32|uint64(uint32(id)))
	}
	e.sortKeys = keys
	slices.Sort(keys)
	for i, k := range keys {
		ids[i] = trajectory.TrajID(uint32(k))
	}
}

// prefetchHeadersSorted issues readahead over the header pages of the
// to-be-fetched APLs among ids, which must already be in page order. It
// coalesces adjacent ranges so the pool sees few, ascending hints.
func (e *Evaluator) prefetchHeadersSorted(ids []trajectory.TrajID) {
	baseN := e.ts.NumTrajs()
	var first, past uint32
	started := false
	for _, id := range ids {
		if int(id) >= baseN {
			break
		}
		if e.ts.APLCached(id) {
			continue
		}
		f, p := e.ts.aplRefs[id].PageRange(0, e.ts.aplHdrLens[id])
		if p == f {
			continue // empty segment
		}
		switch {
		case !started:
			first, past, started = f, p, true
		case f <= past:
			if p > past {
				past = p
			}
		default:
			e.ts.store.Prefetch(first, past)
			first, past = f, p
		}
	}
	if started {
		e.ts.store.Prefetch(first, past)
	}
}

// prepareDelta is prepare for a candidate served by the delta layer: the
// same TAS → containment → row-build pipeline, but every input is already
// in memory, so no disk or cache traffic is charged.
func (e *Evaluator) prepareDelta(q query.Query, id trajectory.TrajID, all trajectory.ActivitySet, stats *query.SearchStats) ([]matcher.QueryRow, int, Outcome, error) {
	if e.UseSketch {
		if !e.delta.TAS(id).CoversAll(all) {
			stats.SketchRejected++
			return nil, 0, RejectedSketch, nil
		}
	}
	for _, a := range all {
		if e.delta.Postings(id, a) == nil {
			stats.APLRejected++
			return nil, 0, RejectedAPL, nil
		}
	}
	coords := e.delta.Coords(id)
	e.deltaID = id
	rows := e.rb.Build(q.Pts, e.deltaFn, coords)
	if e.region != nil {
		e.filterRegion(rows, coords)
	}
	return rows, len(coords), Scored, nil
}

// queryActs returns q.AllActs(), memoized on the query points' slice
// identities so per-candidate calls within one search reuse the union. The
// memo is refreshed whenever any point's Acts slice is replaced; mutating
// an ActivitySet's elements in place between searches is not supported
// (normalized sets are treated as immutable throughout the library).
func (e *Evaluator) queryActs(q query.Query) trajectory.ActivitySet {
	if e.sameQueryPts(q.Pts) {
		return e.allActs
	}
	e.allActsPts = append(e.allActsPts[:0], q.Pts...)
	e.allActs = q.AllActs()
	return e.allActs
}

func (e *Evaluator) sameQueryPts(pts []query.Point) bool {
	if len(pts) != len(e.allActsPts) {
		return false
	}
	for i := range pts {
		a, b := pts[i].Acts, e.allActsPts[i].Acts
		if len(a) != len(b) {
			return false
		}
		if len(a) > 0 && &a[0] != &b[0] {
			return false
		}
	}
	return true
}

package evaluate

import (
	"activitytraj/internal/matcher"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

// Outcome classifies what happened to a candidate during evaluation.
type Outcome int

const (
	// Scored: the candidate passed validation and its distance was computed
	// (the distance may still be +Inf if it exceeded the pruning threshold
	// or, for OATSQ, no order-compliant match exists).
	Scored Outcome = iota
	// RejectedSketch: the TAS did not cover the query activities.
	RejectedSketch
	// RejectedAPL: the fetched APL is missing a query activity.
	RejectedAPL
	// RejectedOrder: the MIB filter proved no order-sensitive match exists.
	RejectedOrder
)

// Evaluator validates candidate trajectories and computes their match
// distances, charging disk reads to the shared TrajStore. It owns matcher
// scratch space and is not safe for concurrent use.
type Evaluator struct {
	ts *TrajStore
	m  matcher.Matcher
	// UseSketch enables the TAS pre-filter (GAT and the tree baselines use
	// it; IL's candidates come pre-validated by construction).
	UseSketch bool
}

// NewEvaluator returns an evaluator over ts with the sketch filter enabled.
func NewEvaluator(ts *TrajStore) *Evaluator {
	return &Evaluator{ts: ts, UseSketch: true}
}

// Store returns the underlying TrajStore.
func (e *Evaluator) Store() *TrajStore { return e.ts }

// ScoreATSQ validates candidate id against q and, if valid, returns its
// minimum match distance Dmm (computations abandoning past threshold return
// +Inf). The stats argument is updated with the outcome.
func (e *Evaluator) ScoreATSQ(q query.Query, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, Outcome, error) {
	rows, n, out, err := e.prepare(q, id, stats)
	if out != Scored || err != nil {
		return matcher.Inf, out, err
	}
	_ = n
	stats.Scored++
	return e.m.MinMatch(rows, threshold), Scored, nil
}

// ScoreOATSQ is ScoreATSQ for the order-sensitive distance Dmom. Before the
// dynamic program it applies the MIB order filter of Section VI-B and the
// Lemma 3 bound: Dmm lower-bounds Dmom, so a candidate whose (much cheaper)
// minimum match distance already exceeds the pruning threshold cannot enter
// the top-k and skips Algorithm 4 entirely.
func (e *Evaluator) ScoreOATSQ(q query.Query, id trajectory.TrajID, threshold float64, stats *query.SearchStats) (float64, Outcome, error) {
	rows, n, out, err := e.prepare(q, id, stats)
	if out != Scored || err != nil {
		return matcher.Inf, out, err
	}
	if !matcher.CheckMIB(rows) {
		stats.OrderRejected++
		return matcher.Inf, RejectedOrder, nil
	}
	if e.m.MinMatch(rows, threshold) == matcher.Inf {
		stats.Scored++
		return matcher.Inf, Scored, nil
	}
	stats.Scored++
	return e.m.MinOrderMatch(n, rows, threshold), Scored, nil
}

// prepare runs the shared validation pipeline: TAS check (memory), APL
// fetch + containment check (disk), coordinate fetch (disk), row build.
// It returns the candidate rows and the trajectory length.
func (e *Evaluator) prepare(q query.Query, id trajectory.TrajID, stats *query.SearchStats) ([]matcher.QueryRow, int, Outcome, error) {
	all := q.AllActs()
	if e.UseSketch {
		if !e.ts.TAS(id).CoversAll(all) {
			stats.SketchRejected++
			return nil, 0, RejectedSketch, nil
		}
	}
	apl, err := e.ts.FetchAPL(id)
	if err != nil {
		return nil, 0, Scored, err
	}
	for _, a := range all {
		if !apl.Has(a) {
			stats.APLRejected++
			return nil, 0, RejectedAPL, nil
		}
	}
	coords, err := e.ts.FetchCoords(id)
	if err != nil {
		return nil, 0, Scored, err
	}
	rows := matcher.BuildRowsFromPostings(q.Pts, apl.Postings, coords)
	return rows, len(coords), Scored, nil
}

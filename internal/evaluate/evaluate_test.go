package evaluate

import (
	"math"
	"path/filepath"
	"testing"

	"activitytraj/internal/dataset"
	"activitytraj/internal/matcher"
	"activitytraj/internal/query"
	"activitytraj/internal/trajectory"
)

func smallDataset(t testing.TB) *trajectory.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "eval", Seed: 5, NumTrajectories: 120, NumVenues: 300,
		VocabSize: 200, RegionW: 20, RegionH: 20, Clusters: 4, TrajLenMean: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestTrajStoreRoundTrip: coordinates and APLs fetched from disk must
// exactly reflect the dataset.
func TestTrajStoreRoundTrip(t *testing.T) {
	ds := smallDataset(t)
	ts, err := BuildTrajStore(ds, TrajStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if ts.NumTrajs() != len(ds.Trajs) {
		t.Fatalf("NumTrajs = %d", ts.NumTrajs())
	}
	for ti := range ds.Trajs {
		tr := &ds.Trajs[ti]
		coords, err := ts.FetchCoords(tr.ID)
		if err != nil {
			t.Fatalf("coords %d: %v", ti, err)
		}
		if len(coords) != len(tr.Pts) {
			t.Fatalf("traj %d: %d coords, want %d", ti, len(coords), len(tr.Pts))
		}
		for pi := range coords {
			if coords[pi] != tr.Pts[pi].Loc {
				t.Fatalf("traj %d point %d: %v vs %v", ti, pi, coords[pi], tr.Pts[pi].Loc)
			}
		}
		apl, err := ts.FetchAPL(tr.ID)
		if err != nil {
			t.Fatalf("apl %d: %v", ti, err)
		}
		// Reconstruct postings from the raw trajectory.
		want := map[trajectory.ActivityID][]uint32{}
		for pi, p := range tr.Pts {
			for _, a := range p.Acts {
				want[a] = append(want[a], uint32(pi))
			}
		}
		for a, idxs := range want {
			got := apl.Postings(a)
			if len(got) != len(idxs) {
				t.Fatalf("traj %d act %d: postings %v, want %v", ti, a, got, idxs)
			}
			for i := range idxs {
				if got[i] != idxs[i] {
					t.Fatalf("traj %d act %d: postings %v, want %v", ti, a, got, idxs)
				}
			}
		}
		if apl.Has(trajectory.ActivityID(9999)) {
			t.Fatalf("traj %d: phantom activity", ti)
		}
	}
}

// TestTASNoFalseDismissal: the sketch must cover every activity the
// trajectory actually contains.
func TestTASNoFalseDismissal(t *testing.T) {
	ds := smallDataset(t)
	ts, err := BuildTrajStore(ds, TrajStoreConfig{SketchIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	for ti := range ds.Trajs {
		union := ds.Trajs[ti].ActivityUnion()
		if !ts.TAS(ds.Trajs[ti].ID).CoversAll(union) {
			t.Fatalf("traj %d: TAS dismissed its own activities", ti)
		}
	}
}

// TestEvaluatorAgainstDirectComputation: ScoreATSQ/ScoreOATSQ must equal
// the matcher run on rows built straight from the in-memory points.
func TestEvaluatorAgainstDirectComputation(t *testing.T) {
	ds := smallDataset(t)
	ts, err := BuildTrajStore(ds, TrajStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ev := NewEvaluator(ts)
	var m matcher.Matcher

	// A query whose activities are taken from trajectory 0.
	tr := &ds.Trajs[0]
	q := query.Query{Pts: []query.Point{
		{Loc: tr.Pts[0].Loc, Acts: trajectory.NewActivitySet(tr.Pts[0].Acts...)},
		{Loc: tr.Pts[len(tr.Pts)-1].Loc, Acts: trajectory.NewActivitySet(tr.Pts[len(tr.Pts)-1].Acts...)},
	}}
	var stats query.SearchStats
	for ti := range ds.Trajs {
		id := ds.Trajs[ti].ID
		got, out, err := ev.ScoreATSQ(q, id, math.Inf(1), &stats)
		if err != nil {
			t.Fatal(err)
		}
		rows := matcher.BuildRowsFromPoints(q.Pts, ds.Trajs[ti].Pts)
		want := m.MinMatch(rows, math.Inf(1))
		switch out {
		case Scored:
			if !eqInf(got, want) {
				t.Fatalf("traj %d: scored %v, direct %v", ti, got, want)
			}
		case RejectedSketch, RejectedAPL:
			if want != matcher.Inf {
				t.Fatalf("traj %d: rejected but direct Dmm = %v", ti, want)
			}
		}

		gotO, outO, err := ev.ScoreOATSQ(q, id, math.Inf(1), &stats)
		if err != nil {
			t.Fatal(err)
		}
		rowsO := matcher.BuildRowsFromPoints(q.Pts, ds.Trajs[ti].Pts)
		wantO := m.MinOrderMatch(len(ds.Trajs[ti].Pts), rowsO, math.Inf(1))
		if outO == Scored && !eqInf(gotO, wantO) {
			t.Fatalf("traj %d: OATSQ scored %v, direct %v", ti, gotO, wantO)
		}
		if outO != Scored && wantO != matcher.Inf {
			t.Fatalf("traj %d: OATSQ rejected but direct Dmom = %v", ti, wantO)
		}
	}
	if stats.Scored == 0 {
		t.Fatal("nothing scored")
	}
	// The evaluator attributes disk traffic at the point of the fetch:
	// scoring candidates must charge page reads, and APL refetches of the
	// same trajectories must land in the cache.
	if stats.PageReads == 0 {
		t.Fatal("scoring charged no page reads")
	}
	if stats.CacheHits == 0 {
		t.Fatal("repeat APL fetches recorded no cache hits")
	}
}

// TestFileBackedStore: the file pager path must behave identically.
func TestFileBackedStore(t *testing.T) {
	ds := smallDataset(t)
	path := filepath.Join(t.TempDir(), "trajs.db")
	ts, err := BuildTrajStore(ds, TrajStoreConfig{FilePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	coords, err := ts.FetchCoords(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != len(ds.Trajs[3].Pts) {
		t.Fatalf("file-backed coords len %d", len(coords))
	}
	if ts.DiskBytes() <= 0 || ts.MemBytes() <= 0 {
		t.Fatal("accounting broken")
	}
}

// TestPoolAccounting: fetches touch pages; ResetPool clears counters.
func TestPoolAccounting(t *testing.T) {
	ds := smallDataset(t)
	ts, err := BuildTrajStore(ds, TrajStoreConfig{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	base := ts.PoolStats()
	if _, err := ts.FetchCoords(0); err != nil {
		t.Fatal(err)
	}
	if diff := ts.PoolStats().Sub(base); diff.Touched == 0 {
		t.Fatal("fetch must touch pages")
	}
	ts.ResetPool()
	if ts.PoolStats().Touched != 0 {
		t.Fatal("ResetPool must zero counters")
	}
}

func eqInf(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) < 1e-9
}
